#include "core/access_schema.h"

#include <gtest/gtest.h>

#include "workload/social_gen.h"

namespace scalein {
namespace {

Schema GraphSchema() {
  Schema s;
  s.Relation("e", {"a", "b"});
  return s;
}

TEST(AccessSchemaTest, BuildersAndToString) {
  AccessSchema access;
  access.Add("e", {"a"}, 5)
      .AddKey("e", {"a", "b"})
      .AddEmbedded("e", {"a"}, {"b"}, 3)
      .AddFd("e", {"a"}, {"b"})
      .AddFullAccess("e", 100);
  ASSERT_EQ(access.statements().size(), 5u);
  EXPECT_TRUE(access.statements()[0].is_plain());
  EXPECT_EQ(access.statements()[1].max_tuples, 1u);
  // Embedded statements union the key into the value set (X ⊆ Y).
  EXPECT_FALSE(access.statements()[2].is_plain());
  EXPECT_EQ(access.statements()[2].value_attrs->size(), 2u);
  EXPECT_EQ(access.statements()[3].max_tuples, 1u);  // FD is N = 1
  EXPECT_TRUE(access.statements()[4].key_attrs.empty());
  EXPECT_EQ(access.ForRelation("e").size(), 5u);
  EXPECT_TRUE(access.ForRelation("ghost").empty());
}

TEST(AccessSchemaTest, ValidateCatchesUnknownNames) {
  Schema s = GraphSchema();
  AccessSchema ok;
  ok.Add("e", {"a"}, 5);
  EXPECT_TRUE(ok.Validate(s).ok());

  AccessSchema bad_rel;
  bad_rel.Add("ghost", {"a"}, 5);
  EXPECT_EQ(bad_rel.Validate(s).code(), StatusCode::kNotFound);

  AccessSchema bad_attr;
  bad_attr.Add("e", {"zz"}, 5);
  EXPECT_EQ(bad_attr.Validate(s).code(), StatusCode::kNotFound);

  AccessSchema bad_embedded;
  bad_embedded.AddEmbedded("e", {"a"}, {"zz"}, 5);
  EXPECT_EQ(bad_embedded.Validate(s).code(), StatusCode::kNotFound);
}

TEST(AccessSchemaTest, ConformanceDetectsPlainViolations) {
  Schema s = GraphSchema();
  Database db(s);
  for (int64_t i = 0; i < 4; ++i) {
    db.Insert("e", Tuple{Value::Int(1), Value::Int(i)});
  }
  db.Insert("e", Tuple{Value::Int(2), Value::Int(0)});

  AccessSchema tight;
  tight.Add("e", {"a"}, 3);
  Result<ConformanceReport> report = CheckConformance(db, s, tight);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->conforms);
  ASSERT_EQ(report->violations.size(), 1u);
  EXPECT_EQ(report->violations[0].observed, 4u);
  EXPECT_EQ(report->violations[0].key, Tuple{Value::Int(1)});

  AccessSchema loose;
  loose.Add("e", {"a"}, 4);
  Result<ConformanceReport> ok = CheckConformance(db, s, loose);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->conforms);
}

TEST(AccessSchemaTest, ConformanceCountsDistinctProjections) {
  Schema s;
  s.Relation("visit", {"id", "rid", "yy"});
  Database db(s);
  // Two tuples sharing (yy, rid) projection: distinct count is 1.
  db.Insert("visit", Tuple{Value::Int(1), Value::Int(7), Value::Int(2013)});
  db.Insert("visit", Tuple{Value::Int(2), Value::Int(7), Value::Int(2013)});
  db.Insert("visit", Tuple{Value::Int(3), Value::Int(8), Value::Int(2013)});

  AccessSchema embedded;
  embedded.AddEmbedded("visit", {"yy"}, {"rid"}, 2);
  Result<ConformanceReport> ok = CheckConformance(db, s, embedded);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->conforms);  // 2 distinct rids for 2013

  AccessSchema plain;
  plain.Add("visit", {"yy"}, 2);
  Result<ConformanceReport> bad = CheckConformance(db, s, plain);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->conforms);  // 3 tuples for 2013
}

TEST(AccessSchemaTest, FdConformance) {
  Schema s;
  s.Relation("visit", {"id", "rid", "dd"});
  Database db(s);
  db.Insert("visit", Tuple{Value::Int(1), Value::Int(7), Value::Int(3)});
  db.Insert("visit", Tuple{Value::Int(1), Value::Int(7), Value::Int(4)});
  AccessSchema access;
  access.AddFd("visit", {"id", "dd"}, {"rid"});
  Result<ConformanceReport> ok = CheckConformance(db, s, access);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->conforms);
  // Violate the FD: same (id, dd), two rids.
  db.Insert("visit", Tuple{Value::Int(1), Value::Int(9), Value::Int(3)});
  Result<ConformanceReport> bad = CheckConformance(db, s, access);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->conforms);
}

TEST(AccessSchemaTest, BuildIndexesCreatesDeclaredIndexes) {
  Schema s = GraphSchema();
  Database db(s);
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  AccessSchema access;
  access.Add("e", {"a"}, 5).AddEmbedded("e", {"b"}, {"a"}, 5);
  ASSERT_TRUE(access.BuildIndexes(&db, s).ok());
  EXPECT_NE(db.relation("e").FindIndex({0}), nullptr);
  EXPECT_NE(db.relation("e").FindProjectionIndex({1}, {0, 1}), nullptr);
}

TEST(AccessSchemaTest, SocialWorkloadConforms) {
  SocialConfig config;
  config.num_persons = 200;
  config.max_friends_per_person = 8;
  config.num_restaurants = 30;
  config.dated_visits = true;
  Database db = GenerateSocial(config);
  Schema schema = SocialSchema(true);
  AccessSchema access = SocialAccessSchema(config);
  Result<ConformanceReport> report = CheckConformance(db, schema, access);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->conforms);
  if (!report->conforms) {
    for (const auto& v : report->violations) {
      ADD_FAILURE() << v.ToString(access);
    }
  }
}

}  // namespace
}  // namespace scalein
