// Proposition 4.3: each controllability rule is *optimal* — there are
// instances where the controlling tuple it derives cannot be shrunk. For
// each rule we check two things:
//   (syntactic)  the engine's minimal antichain contains no smaller set;
//   (semantic)   fixing any strictly smaller tuple leaves the answer set
//                growing without bound over a family of conforming
//                databases — and a scale-independent query's answer count
//                is bounded by a function of M, so no bound M can work.

#include <functional>

#include <gtest/gtest.h>

#include "core/controllability.h"
#include "eval/fo_evaluator.h"
#include "query/parser.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

Formula Body(const char* text, const Schema& s) {
  Result<Formula> f = ParseFormula(text, &s);
  SI_CHECK_MSG(f.ok(), f.status().message().c_str());
  return *std::move(f);
}

ControllabilityAnalysis Analyze(const Formula& f, const Schema& s,
                                const AccessSchema& a) {
  Result<ControllabilityAnalysis> r = ControllabilityAnalysis::Analyze(f, s, a);
  SI_CHECK_MSG(r.ok(), r.status().message().c_str());
  return *std::move(r);
}

/// Answer count of `q` with `params` fixed to value 0 on a database of
/// `scale` conforming rows.
size_t AnswerCountAtScale(const FoQuery& q, const Schema& s,
                          const VarSet& params,
                          const std::function<void(Database*, int64_t)>& fill,
                          int64_t scale) {
  Database db(s);
  fill(&db, scale);
  FoEvaluator eval(&db);
  Binding binding;
  for (const Variable& v : params) binding.emplace(v, Value::Int(0));
  return eval.Evaluate(q, binding).size();
}

/// Asserts that with `params` fixed the answer count grows with the data —
/// the semantic witness that `params` cannot control the query.
void ExpectUnboundedGrowth(const FoQuery& q, const Schema& s,
                           const VarSet& params,
                           const std::function<void(Database*, int64_t)>& fill) {
  size_t small = AnswerCountAtScale(q, s, params, fill, 4);
  size_t large = AnswerCountAtScale(q, s, params, fill, 16);
  EXPECT_GT(large, small) << "answers did not grow for "
                          << VarSetToString(params);
}

TEST(OptimalityTest, AtomRule) {
  Schema s;
  s.Relation("r", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 2);
  ControllabilityAnalysis c = Analyze(Body("r(x, y)", s), s, a);
  std::vector<VarSet> minimal = c.MinimalControlSets();
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], VarSet{V("x")});
  // Semantic: with nothing fixed, the answers are all of r.
  Result<FoQuery> q = ParseFoQuery("Q(x, y) := r(x, y)", &s);
  ASSERT_TRUE(q.ok());
  ExpectUnboundedGrowth(*q, s, {}, [](Database* db, int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      db->Insert("r", Tuple{Value::Int(i), Value::Int(i)});  // conforms: N=1≤2
    }
  });
}

TEST(OptimalityTest, ConjunctionRule) {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("t", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 2);
  a.Add("t", {"a"}, 2);
  ControllabilityAnalysis c = Analyze(Body("r(x, y) and t(y, z)", s), s, a);
  // {x} is minimal: no subset (∅) is derivable.
  EXPECT_TRUE(c.IsControlledBy({V("x")}));
  EXPECT_FALSE(c.IsControlledBy({}));
  Result<FoQuery> q =
      ParseFoQuery("Q(x, y, z) := r(x, y) and t(y, z)", &s);
  ASSERT_TRUE(q.ok());
  ExpectUnboundedGrowth(*q, s, {}, [](Database* db, int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      db->Insert("r", Tuple{Value::Int(i), Value::Int(i)});
      db->Insert("t", Tuple{Value::Int(i), Value::Int(i)});
    }
  });
}

TEST(OptimalityTest, DisjunctionRuleNeedsTheUnion) {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("t", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 2);
  a.Add("t", {"b"}, 2);
  // r is x-controlled, t is y-controlled; the union {x, y} cannot shrink.
  ControllabilityAnalysis c = Analyze(Body("r(x, y) or t(x, y)", s), s, a);
  EXPECT_TRUE(c.IsControlledBy({V("x"), V("y")}));
  EXPECT_FALSE(c.IsControlledBy({V("x")}));
  EXPECT_FALSE(c.IsControlledBy({V("y")}));
  Result<FoQuery> q = ParseFoQuery("Q(x, y) := r(x, y) or t(x, y)", &s);
  ASSERT_TRUE(q.ok());
  // Fixing only x: t's side keeps contributing fresh (x', y) pairs... the
  // answers with x = 0 fixed grow through t tuples with a = 0? t is
  // b-controlled: rows (0, i) conform when each b-group stays ≤ 2. Fill so
  // that x = 0 matches ever more rows on the t side.
  ExpectUnboundedGrowth(*q, s, {V("x")}, [](Database* db, int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      db->Insert("t", Tuple{Value::Int(0), Value::Int(i)});  // b-groups size 1
    }
  });
}

TEST(OptimalityTest, ExistentialRule) {
  Schema s;
  s.Relation("r", {"a", "b", "c"});
  AccessSchema a;
  a.Add("r", {"a"}, 2);
  ControllabilityAnalysis c = Analyze(Body("exists y. r(x, y, z)", s), s, a);
  // x̄ = {x} survives; nothing smaller can.
  EXPECT_TRUE(c.IsControlledBy({V("x")}));
  EXPECT_FALSE(c.IsControlledBy({}));
  Result<FoQuery> q = ParseFoQuery("Q(x, z) := exists y. r(x, y, z)", &s);
  ASSERT_TRUE(q.ok());
  ExpectUnboundedGrowth(*q, s, {}, [](Database* db, int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      db->Insert("r", Tuple{Value::Int(i), Value::Int(0), Value::Int(i)});
    }
  });
}

TEST(OptimalityTest, UniversalRuleControlsAllFrees) {
  Schema s;
  s.Relation("S", {"A", "B"});
  s.Relation("T", {"A", "B"});
  AccessSchema a;
  a.Add("S", {"A"}, 2);
  a.Add("T", {"A", "B"}, 1);
  ControllabilityAnalysis c =
      Analyze(Body("forall z. S(x, z) implies T(x, z)", s), s, a);
  // The rule only guarantees control by all free variables ({x} here).
  EXPECT_TRUE(c.IsControlledBy({V("x")}));
  EXPECT_FALSE(c.IsControlledBy({}));
}

TEST(OptimalityTest, SafeNegationKeepsPositiveControls) {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("bl", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 2);
  a.Add("bl", {"a", "b"}, 1);
  ControllabilityAnalysis c =
      Analyze(Body("r(x, y) and not bl(x, y)", s), s, a);
  EXPECT_TRUE(c.IsControlledBy({V("x")}));
  EXPECT_FALSE(c.IsControlledBy({}));
  Result<FoQuery> q = ParseFoQuery("Q(x, y) := r(x, y) and not bl(x, y)", &s);
  ASSERT_TRUE(q.ok());
  ExpectUnboundedGrowth(*q, s, {}, [](Database* db, int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      db->Insert("r", Tuple{Value::Int(i), Value::Int(i)});
    }
  });
}

TEST(OptimalityTest, ConditionPinningIsExactlyTheDeterminedClass) {
  Schema s;
  s.Relation("r", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 2);
  // x pinned by the constant; y determined from x's class? No: y is its own
  // class, still needed. The minimal set is exactly {y}... but y is bound by
  // the atom through the chain; the full conjunction is ∅-controlled.
  ControllabilityAnalysis c =
      Analyze(Body("r(x, y) and x = 1", s), s, a);
  EXPECT_TRUE(c.IsControlledBy({}));
  // Variable-to-variable chains: w is determined by y.
  ControllabilityAnalysis chain =
      Analyze(Body("r(x, y) and x = 1 and y = w", s), s, a);
  EXPECT_TRUE(chain.IsControlledBy({}));
}

}  // namespace
}  // namespace scalein
