#include "core/controllability.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "workload/social_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

Formula Body(const char* text, const Schema& s) {
  Result<Formula> f = ParseFormula(text, &s);
  SI_CHECK_MSG(f.ok(), f.status().message().c_str());
  return *std::move(f);
}

ControllabilityAnalysis Analyze(const Formula& f, const Schema& s,
                                const AccessSchema& a) {
  Result<ControllabilityAnalysis> r = ControllabilityAnalysis::Analyze(f, s, a);
  SI_CHECK_MSG(r.ok(), r.status().message().c_str());
  return *std::move(r);
}

TEST(ControllabilityTest, AtomControlledThroughAccessStatement) {
  Schema s = SocialSchema(false);
  AccessSchema a;
  a.Add("friend", {"id1"}, 5000);
  ControllabilityAnalysis c = Analyze(Body("friend(p, id)", s), s, a);
  EXPECT_TRUE(c.IsControlledBy({V("p")}));
  EXPECT_FALSE(c.IsControlledBy({V("id")}));
  EXPECT_TRUE(c.IsControlledBy({V("p"), V("id")}));  // expansion rule
  Result<double> bound = c.StaticFetchBound({V("p")});
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(*bound, 5000);
}

TEST(ControllabilityTest, NoAccessMeansNoControl) {
  Schema s = SocialSchema(false);
  AccessSchema empty;
  ControllabilityAnalysis c = Analyze(Body("friend(p, id)", s), s, empty);
  EXPECT_FALSE(c.IsControlled());
  EXPECT_FALSE(c.IsControlledBy({V("p"), V("id")}));
}

TEST(ControllabilityTest, Example41Q1IsPControlled) {
  // The paper's running example: Q1(p, name) under the Facebook schema.
  SocialConfig config;
  config.max_friends_per_person = 5000;
  Schema s = SocialSchema(false);
  AccessSchema a;
  a.Add("friend", {"id1"}, 5000);
  a.AddKey("person", {"id"});
  Formula q1 =
      Body("exists id. friend(p, id) and person(id, name, \"NYC\")", s);
  ControllabilityAnalysis c = Analyze(q1, s, a);
  EXPECT_TRUE(c.IsControlledBy({V("p")}));
  std::vector<VarSet> minimal = c.MinimalControlSets();
  ASSERT_FALSE(minimal.empty());
  EXPECT_EQ(minimal[0], VarSet{V("p")});
  // Fetch bound: 5000 friends + one person lookup each.
  Result<double> bound = c.StaticFetchBound({V("p")});
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(*bound, 5000 + 5000 * 1);
}

TEST(ControllabilityTest, Example41Q3IsNotControlledWithoutEmbedded) {
  // Q3 adds dated visits; without embedded statements the visit atom blocks
  // controllability for (p, yy) (the existential "forgets" rid, mm, dd).
  Schema s = SocialSchema(true);
  AccessSchema a;
  a.Add("friend", {"id1"}, 5000);
  a.AddKey("person", {"id"});
  a.AddKey("restr", {"rid"});
  a.Add("restr", {"city"}, 1000);
  Formula q3 = Body(
      "exists id, rid, pn, mm, dd. friend(p, id) and "
      "visit(id, rid, yy, mm, dd) and person(id, pn, \"NYC\") and "
      "restr(rid, rn, \"NYC\", \"A\")",
      s);
  ControllabilityAnalysis c = Analyze(q3, s, a);
  EXPECT_FALSE(c.IsControlledBy({V("p"), V("yy")}));
  EXPECT_FALSE(c.IsControlledBy({V("p"), V("yy"), V("rn")}));
}

TEST(ControllabilityTest, ConditionsControlledByTheirVariables) {
  Schema s;
  s.Relation("r", {"a"});
  AccessSchema a;
  ControllabilityAnalysis c = Analyze(Body("x = y or not x = 3", s), s, a);
  EXPECT_TRUE(c.IsControlledBy({V("x"), V("y")}));
  EXPECT_FALSE(c.IsControlledBy({V("x")}));
}

TEST(ControllabilityTest, ConjunctionPropagatesBindings) {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("t", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 10);
  a.Add("t", {"a"}, 20);
  // r(x, y) ∧ t(y, z): x gives y (≤10), each y gives z (≤20).
  ControllabilityAnalysis c = Analyze(Body("r(x, y) and t(y, z)", s), s, a);
  EXPECT_TRUE(c.IsControlledBy({V("x")}));
  Result<double> bound = c.StaticFetchBound({V("x")});
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(*bound, 10 + 10 * 20);
}

TEST(ControllabilityTest, ConjunctionBothOrdersDerived) {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("t", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 10);
  a.Add("t", {"a"}, 20);
  // r(x, y) ∧ t(y, x): evaluating r first needs {x} (then y is bound and
  // t(y, x) is checkable); evaluating t first needs {y}. Both alternatives
  // of the conjunction rule must be derived.
  ControllabilityAnalysis c = Analyze(Body("r(x, y) and t(y, x)", s), s, a);
  EXPECT_TRUE(c.IsControlledBy({V("x")}));
  EXPECT_TRUE(c.IsControlledBy({V("y")}));
}

TEST(ControllabilityTest, DisjunctionUnionsControls) {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("t", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 10);
  a.Add("t", {"b"}, 20);
  ControllabilityAnalysis c = Analyze(Body("r(x, y) or t(x, y)", s), s, a);
  // r needs x, t needs y: the disjunction needs both.
  EXPECT_FALSE(c.IsControlledBy({V("x")}));
  EXPECT_FALSE(c.IsControlledBy({V("y")}));
  EXPECT_TRUE(c.IsControlledBy({V("x"), V("y")}));
}

TEST(ControllabilityTest, DisjunctionRequiresSameFreeVariables) {
  Schema s;
  s.Relation("r", {"a"});
  s.Relation("t", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 10);
  a.Add("t", {"a", "b"}, 10);
  // free(r(x)) = {x} ≠ {x, y} = free(t(x, y)): rule does not apply.
  ControllabilityAnalysis c = Analyze(Body("r(x) or t(x, y)", s), s, a);
  EXPECT_FALSE(c.IsControlledBy({V("x"), V("y")}));
}

TEST(ControllabilityTest, SafeNegation) {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("blocked", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 10);
  a.Add("blocked", {"a", "b"}, 1);
  ControllabilityAnalysis c =
      Analyze(Body("r(x, y) and not blocked(x, y)", s), s, a);
  EXPECT_TRUE(c.IsControlledBy({V("x")}));
  // Without an access path for the negated atom, the rule cannot fire.
  AccessSchema a2;
  a2.Add("r", {"a"}, 10);
  ControllabilityAnalysis c2 =
      Analyze(Body("r(x, y) and not blocked(x, y)", s), s, a2);
  EXPECT_FALSE(c2.IsControlledBy({V("x")}));
}

TEST(ControllabilityTest, SafeNegationRequiresVariablesFromPositivePart) {
  Schema s;
  s.Relation("r", {"a"});
  s.Relation("blocked", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 10);
  a.Add("blocked", {"a", "b"}, 1);
  // ¬blocked(x, w) mentions w, which the positive part never binds.
  ControllabilityAnalysis c =
      Analyze(Body("r(x) and not blocked(x, w)", s), s, a);
  EXPECT_FALSE(c.IsControlledBy({V("x"), V("w")}));
}

TEST(ControllabilityTest, ExistentialMustAvoidControls) {
  Schema s;
  s.Relation("r", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"b"}, 10);
  // r(x, y) is y-controlled; ∃y r(x, y) quantifies the controlling variable
  // away, so nothing is left to control the query with.
  ControllabilityAnalysis c = Analyze(Body("exists y. r(x, y)", s), s, a);
  EXPECT_FALSE(c.IsControlledBy({V("x")}));
}

TEST(ControllabilityTest, PaperSqlExampleUniversalRule) {
  // §4's SQL example: R(x, y) ∧ x = 1 ∧ ∀z (S(x, y, z) → T(x, y, z)).
  Schema s;
  s.Relation("R", {"A", "B"});
  s.Relation("S", {"A", "B", "C"});
  s.Relation("T", {"A", "B", "C"});
  AccessSchema a;
  a.Add("R", {"A"}, 10);
  a.Add("S", {"A", "B"}, 50);
  a.Add("T", {"A", "B", "C"}, 1);
  Formula f = Body(
      "R(x, y) and x = 1 and (forall z. S(x, y, z) implies T(x, y, z))", s);
  ControllabilityAnalysis c = Analyze(f, s, a);
  EXPECT_TRUE(c.IsControlledBy({V("x")}));

  // Dropping T's access statement breaks the universal rule (Q' must be
  // controlled); dropping S's breaks the premise enumeration.
  AccessSchema no_t;
  no_t.Add("R", {"A"}, 10).Add("S", {"A", "B"}, 50);
  EXPECT_FALSE(Analyze(f, s, no_t).IsControlledBy({V("x")}));
  AccessSchema no_s;
  no_s.Add("R", {"A"}, 10).Add("T", {"A", "B", "C"}, 1);
  EXPECT_FALSE(Analyze(f, s, no_s).IsControlledBy({V("x")}));
}

TEST(ControllabilityTest, ForallQuantifiedVariableMustBeEnumerable) {
  Schema s;
  s.Relation("S", {"A"});
  s.Relation("T", {"A", "B"});
  AccessSchema a;
  a.Add("S", {"A"}, 5);
  a.Add("T", {"A", "B"}, 1);
  // ∀z (S(x) → T(x, z)): z is not enumerated by the premise but appears in
  // the conclusion — not derivable.
  ControllabilityAnalysis c =
      Analyze(Body("forall z. S(x) implies T(x, z)", s), s, a);
  EXPECT_FALSE(c.IsControlledBy({V("x")}));
}

TEST(ControllabilityTest, QCntlDecisions) {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("t", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 10);
  a.Add("t", {"a"}, 10);
  ControllabilityAnalysis c = Analyze(Body("r(x, y) and t(y, z)", s), s, a);
  EXPECT_EQ(DecideQCntl(c, 1), Verdict::kYes);   // {x}
  EXPECT_EQ(DecideQCntl(c, 0), Verdict::kNo);
  EXPECT_EQ(DecideQCntlMin(c, V("x")), Verdict::kYes);
  EXPECT_EQ(DecideQCntlMin(c, V("z")), Verdict::kNo);  // z never needed
}

TEST(ControllabilityTest, ExplainRendersDerivation) {
  Schema s = SocialSchema(false);
  AccessSchema a;
  a.Add("friend", {"id1"}, 5000);
  a.AddKey("person", {"id"});
  Formula q1 =
      Body("exists id. friend(p, id) and person(id, name, \"NYC\")", s);
  ControllabilityAnalysis c = Analyze(q1, s, a);
  std::string explanation = c.Explain({V("p")});
  EXPECT_NE(explanation.find("exists"), std::string::npos);
  EXPECT_NE(explanation.find("atom"), std::string::npos);
  EXPECT_NE(explanation.find("friend"), std::string::npos);
}

TEST(ControllabilityTest, Proposition55DeltaRelationFullAccess) {
  // Proposition 5.5 / Example 5.6: under A(R) — the access schema extended
  // with (∆visit, ∅, k, 1), "the whole (small) update relation is readable"
  // — the maintenance query ∆Q2 becomes p-controllable, although Q2 itself
  // is not p-controllable under A alone.
  Schema s;
  s.Relation("friend", {"id1", "id2"});
  s.Relation("visit", {"id", "rid"});
  s.Relation("dvisit", {"id", "rid"});  // ∆visit
  s.Relation("restr", {"rid", "rn", "city", "rating"});
  AccessSchema a;
  a.Add("friend", {"id1"}, 5000);
  a.AddKey("restr", {"rid"});
  Formula q2 = Body(
      "exists id, rid. friend(p, id) and visit(id, rid) and "
      "restr(rid, rn, \"NYC\", \"A\")",
      s);
  EXPECT_FALSE(Analyze(q2, s, a).IsControlledBy({V("p")}));

  // ∆Q2 swaps visit for ∆visit; A(R) grants (∆visit, ∅, k, 1).
  AccessSchema a_r = a;
  a_r.AddFullAccess("dvisit", 100);  // k ≤ 100 update tuples
  Formula dq2 = Body(
      "exists id, rid. friend(p, id) and dvisit(id, rid) and "
      "restr(rid, rn, \"NYC\", \"A\")",
      s);
  ControllabilityAnalysis c = Analyze(dq2, s, a_r);
  EXPECT_TRUE(c.IsControlledBy({V("p")}));
  // And without the full-access statement it stays uncontrollable.
  EXPECT_FALSE(Analyze(dq2, s, a).IsControlledBy({V("p")}));
}

TEST(ControllabilityTest, KeyOnConstantPositionNeedsNoControls) {
  Schema s;
  s.Relation("r", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 3);
  // The controlling position holds a constant: ∅-controlled.
  ControllabilityAnalysis c = Analyze(Body("r(7, y)", s), s, a);
  EXPECT_TRUE(c.IsControlledBy({}));
}

}  // namespace
}  // namespace scalein
