#include "eval/ra_evaluator.h"

#include <gtest/gtest.h>

#include "eval/fo_evaluator.h"
#include "incremental/raa_rules.h"
#include "util/rng.h"

namespace scalein {
namespace {

Schema EmpSchema() {
  Schema s;
  s.Relation("emp", {"id", "dept", "city"});
  s.Relation("dept", {"dept", "budget"});
  return s;
}

Database EmpDb() {
  Database db(EmpSchema());
  db.Insert("emp", Tuple{Value::Int(1), Value::Str("eng"), Value::Str("NYC")});
  db.Insert("emp", Tuple{Value::Int(2), Value::Str("eng"), Value::Str("LA")});
  db.Insert("emp", Tuple{Value::Int(3), Value::Str("ops"), Value::Str("NYC")});
  db.Insert("dept", Tuple{Value::Str("eng"), Value::Int(100)});
  db.Insert("dept", Tuple{Value::Str("ops"), Value::Int(50)});
  return db;
}

RaExpr EmpRel() { return RaExpr::Relation("emp", {"id", "dept", "city"}); }
RaExpr DeptRel() { return RaExpr::Relation("dept", {"dept", "budget"}); }

TEST(RaEvaluatorTest, SelectByConstant) {
  Database db = EmpDb();
  SelectionCondition cond;
  cond.conjuncts.push_back(
      SelectionAtom::AttrEqConst("city", Value::Str("NYC")));
  Relation out = EvalRa(RaExpr::Select(EmpRel(), cond), db);
  EXPECT_EQ(out.size(), 2u);
}

TEST(RaEvaluatorTest, SelectNegatedAndAttrEqAttr) {
  Schema s;
  s.Relation("p", {"a", "b"});
  Database db(s);
  db.Insert("p", Tuple{Value::Int(1), Value::Int(1)});
  db.Insert("p", Tuple{Value::Int(1), Value::Int(2)});
  SelectionCondition eq;
  eq.conjuncts.push_back(SelectionAtom::AttrEqAttr("a", "b"));
  EXPECT_EQ(EvalRa(RaExpr::Select(RaExpr::Relation("p", {"a", "b"}), eq), db)
                .size(),
            1u);
  SelectionCondition neq;
  neq.conjuncts.push_back(SelectionAtom::AttrNeqAttr("a", "b"));
  EXPECT_EQ(EvalRa(RaExpr::Select(RaExpr::Relation("p", {"a", "b"}), neq), db)
                .size(),
            1u);
}

TEST(RaEvaluatorTest, ProjectDeduplicates) {
  Database db = EmpDb();
  Relation out = EvalRa(RaExpr::Project(EmpRel(), {"dept"}), db);
  EXPECT_EQ(out.size(), 2u);
}

TEST(RaEvaluatorTest, NaturalJoin) {
  Database db = EmpDb();
  RaExpr join = RaExpr::Join(EmpRel(), DeptRel());
  EXPECT_EQ(join.attributes(),
            (std::vector<std::string>{"id", "dept", "city", "budget"}));
  Relation out = EvalRa(join, db);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(out.Contains(Tuple{Value::Int(3), Value::Str("ops"),
                                 Value::Str("NYC"), Value::Int(50)}));
}

TEST(RaEvaluatorTest, JoinWithNoSharedAttrsIsProduct) {
  Database db = EmpDb();
  RaExpr ids = RaExpr::Project(EmpRel(), {"id"});
  RaExpr budgets = RaExpr::Project(DeptRel(), {"budget"});
  Relation out = EvalRa(RaExpr::Join(ids, budgets), db);
  EXPECT_EQ(out.size(), 6u);
}

TEST(RaEvaluatorTest, UnionAndDiffAlignByName) {
  Schema s;
  s.Relation("p", {"a", "b"});
  s.Relation("q", {"b", "a"});  // reversed column order
  Database db(s);
  db.Insert("p", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("q", Tuple{Value::Int(2), Value::Int(1)});  // same logical tuple
  db.Insert("q", Tuple{Value::Int(9), Value::Int(8)});
  RaExpr p = RaExpr::Relation("p", {"a", "b"});
  RaExpr q = RaExpr::Relation("q", {"b", "a"});
  Relation u = EvalRa(RaExpr::Union(p, q), db);
  EXPECT_EQ(u.size(), 2u);  // (1,2) appears once
  Relation d = EvalRa(RaExpr::Diff(p, q), db);
  EXPECT_EQ(d.size(), 0u);
}

TEST(RaEvaluatorTest, RenameThenJoinExpressesSelfJoin) {
  Schema s;
  s.Relation("e", {"a", "b"});
  Database db(s);
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("e", Tuple{Value::Int(2), Value::Int(3)});
  RaExpr first = RaExpr::Relation("e", {"a", "b"});
  RaExpr second = RaExpr::Rename(RaExpr::Relation("e", {"a", "b"}),
                                 {{"a", "b"}, {"b", "c"}});
  Relation out = EvalRa(RaExpr::Join(first, second), db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Tuple{Value::Int(1), Value::Int(2), Value::Int(3)}));
}

TEST(RaEvaluatorTest, OverridesSubstituteRelationContent) {
  Database db = EmpDb();
  Relation only_ops(3);
  only_ops.Insert(Tuple{Value::Int(3), Value::Str("ops"), Value::Str("NYC")});
  RaContext ctx;
  ctx.db = &db;
  ctx.overrides["emp"] = &only_ops;
  Relation out = EvalRa(EmpRel(), ctx);
  EXPECT_EQ(out.size(), 1u);
}

TEST(RaEvaluatorTest, ConstantBoundAttrsClosure) {
  SelectionCondition cond;
  cond.conjuncts.push_back(SelectionAtom::AttrEqConst("a", Value::Int(1)));
  cond.conjuncts.push_back(SelectionAtom::AttrEqAttr("a", "b"));
  cond.conjuncts.push_back(SelectionAtom::AttrEqAttr("c", "d"));
  cond.conjuncts.push_back(SelectionAtom::AttrNeqConst("e", Value::Int(2)));
  AttrSet bound = cond.ConstantBoundAttrs({"a", "b", "c", "d", "e"});
  EXPECT_EQ(bound, (AttrSet{"a", "b"}));
}

/// Cross-validation: EvalRa agrees with the FO translation evaluated by the
/// reference evaluator, on a fixed expression zoo.
TEST(RaEvaluatorTest, AgreesWithFoTranslation) {
  Schema s = EmpSchema();
  Database db = EmpDb();
  SelectionCondition nyc;
  nyc.conjuncts.push_back(SelectionAtom::AttrEqConst("city", Value::Str("NYC")));
  std::vector<RaExpr> zoo = {
      EmpRel(),
      RaExpr::Select(EmpRel(), nyc),
      RaExpr::Project(EmpRel(), {"dept", "city"}),
      RaExpr::Join(EmpRel(), DeptRel()),
      RaExpr::Diff(RaExpr::Project(EmpRel(), {"dept"}),
                   RaExpr::Project(RaExpr::Select(EmpRel(), nyc), {"dept"})),
      RaExpr::Union(RaExpr::Project(EmpRel(), {"dept"}),
                    RaExpr::Project(DeptRel(), {"dept"})),
  };
  for (const RaExpr& expr : zoo) {
    Relation via_ra = EvalRa(expr, db);
    Result<FoQuery> fo = RaToFoQuery(expr, s);
    ASSERT_TRUE(fo.ok()) << expr.ToString();
    FoEvaluator fo_eval(&db);
    AnswerSet via_fo = fo_eval.Evaluate(*fo);
    AnswerSet via_ra_set;
    for (const Tuple& t : via_ra.SortedTuples()) via_ra_set.insert(t);
    EXPECT_EQ(via_ra_set, via_fo) << expr.ToString();
  }
}

}  // namespace
}  // namespace scalein
