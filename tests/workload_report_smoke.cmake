# Smoke test for the workload observatory, run via `cmake -P` from ctest:
# session 1 drives the shell through controllable evals plus a recurring
# non-controllable query under a tiny journal size (forcing rotation);
# session 2 replays the rotated journal and renders `workload top`; then
# scripts/workload_report.py reads the same files and must (a) rank the
# non-controllable fingerprint first in its "views would help" section and
# (b) emit per-fingerprint lines byte-identical to the shell's rendering.
# Variables passed in by tests/CMakeLists.txt:
#   SHELL_BIN  — path to the scalein_shell example binary
#   PYTHON     — Python3 interpreter
#   REPORT     — path to scripts/workload_report.py
#   WORK_DIR   — scratch directory for script/journal files

set(script "${WORK_DIR}/workload_smoke_input.txt")
set(journal "${WORK_DIR}/workload_smoke_journal.jsonl")
file(REMOVE "${journal}" "${journal}.1" "${journal}.2")

# The secret relation has no access statement, so its query is rejected as
# non-controllable — three times, which must outrank the two controllable
# evals in the report. The shell binary prints the error and continues.
file(WRITE "${script}" "schema relation person(id, name, city)
schema relation friend(id1, id2)
schema relation secret(a, b)
access access friend(id1) N=50
access key person(id)
row person 1,\"ada\",\"NYC\"
row person 2,\"bob\",\"NYC\"
row friend 1,2
row secret 1,2
eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")
eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")
eval a=1 S(a, b) := secret(a, b)
eval a=1 S(a, b) := secret(a, b)
eval a=1 S(a, b) := secret(a, b)
quit
")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env
          "SCALEIN_JOURNAL_PATH=${journal}"
          "SCALEIN_JOURNAL_MAX_BYTES=400"
          "SCALEIN_SESSION_ID=workload-smoke"
          "${SHELL_BIN}"
  INPUT_FILE "${script}"
  RESULT_VARIABLE shell_rc
  OUTPUT_VARIABLE shell_out
  ERROR_VARIABLE shell_err)
if(NOT shell_rc EQUAL 0)
  message(FATAL_ERROR "shell session 1 failed (rc=${shell_rc}): ${shell_err}")
endif()
if(NOT EXISTS "${journal}")
  message(FATAL_ERROR "shell did not write the persistent journal")
endif()
if(NOT EXISTS "${journal}.1")
  message(FATAL_ERROR "400-byte cap did not rotate the journal")
endif()

# Session 2: replay the rotated journal and render the workload view.
set(workload_script "${WORK_DIR}/workload_smoke_workload.txt")
file(WRITE "${workload_script}" "workload
workload top 5
quit
")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env
          "SCALEIN_JOURNAL_PATH=${journal}"
          "SCALEIN_JOURNAL_MAX_BYTES=400"
          "${SHELL_BIN}"
  INPUT_FILE "${workload_script}"
  RESULT_VARIABLE workload_rc
  OUTPUT_VARIABLE workload_out
  ERROR_VARIABLE workload_err)
if(NOT workload_rc EQUAL 0)
  message(FATAL_ERROR
          "shell session 2 failed (rc=${workload_rc}): ${workload_err}")
endif()
foreach(needle "replayed journal:" "non-controllable" "nonctrl=3")
  string(FIND "${workload_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "workload output is missing '${needle}':\n${workload_out}")
  endif()
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${REPORT}" "${journal}"
  RESULT_VARIABLE report_rc
  OUTPUT_VARIABLE report_out
  ERROR_VARIABLE report_err)
if(NOT report_rc EQUAL 0)
  message(FATAL_ERROR
          "workload_report.py failed (rc=${report_rc}): ${report_err}")
endif()
if(NOT "${report_err}" STREQUAL "")
  message(FATAL_ERROR
          "workload_report.py reported seal problems:\n${report_err}")
endif()

# The non-controllable class must lead the "views would help" ranking.
string(FIND "${report_out}" "views would help" views_pos)
if(views_pos EQUAL -1)
  message(FATAL_ERROR "report has no 'views would help' section:\n${report_out}")
endif()
string(SUBSTRING "${report_out}" ${views_pos} -1 views_section)
string(REGEX MATCH "\n  [^\n]*" views_first "${views_section}")
string(FIND "${views_first}" "nonctrl=3" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR
          "first 'views would help' line does not rank the recurring "
          "non-controllable class (nonctrl=3):\n${views_first}\n${report_out}")
endif()

# Online/offline agreement: every per-fingerprint line the shell rendered
# must appear verbatim in the Python report (same counts, same accuracy).
string(REGEX MATCHALL "\n(  [a-f0-9]+ n=[^\n]*)" shell_lines "${workload_out}")
list(LENGTH shell_lines shell_line_count)
if(shell_line_count EQUAL 0)
  message(FATAL_ERROR
          "no per-fingerprint lines in shell output:\n${workload_out}")
endif()
foreach(line ${shell_lines})
  string(FIND "${report_out}" "${line}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "report disagrees with the shell on '${line}':\n${report_out}")
  endif()
endforeach()
message(STATUS "workload_report smoke OK (${shell_line_count} classes agree)")

# ---------------------------------------------------------------------------
# Certify exit codes: `certify <file>` must exit 0 on an intact journal and
# non-zero once any seal fails verification — the offline integrity gate CI
# relies on. (A tampered journal replayed at *startup* stays rc 0: replay
# reports tampering as a warning, it does not fail the session.)

set(certify_script "${WORK_DIR}/workload_smoke_certify.txt")
file(WRITE "${certify_script}" "certify ${journal}
quit
")
execute_process(
  COMMAND "${SHELL_BIN}"
  INPUT_FILE "${certify_script}"
  RESULT_VARIABLE certify_rc
  OUTPUT_VARIABLE certify_out)
if(NOT certify_rc EQUAL 0)
  message(FATAL_ERROR
          "certify exited ${certify_rc} on an intact journal:\n${certify_out}")
endif()
string(FIND "${certify_out}" "certificates verify" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "certify did not verify the journal:\n${certify_out}")
endif()

# Bump every sealed fetch counter on disk: the seals must catch it.
set(tampered "${WORK_DIR}/workload_smoke_tampered.jsonl")
file(READ "${journal}" journal_text)
string(REGEX REPLACE "\"actual_fetches\":[0-9]+" "\"actual_fetches\":424242"
       tampered_text "${journal_text}")
if(tampered_text STREQUAL journal_text)
  message(FATAL_ERROR "tampering produced no change — journal format drift?")
endif()
file(WRITE "${tampered}" "${tampered_text}")
set(tamper_script "${WORK_DIR}/workload_smoke_tamper_certify.txt")
file(WRITE "${tamper_script}" "certify ${tampered}
quit
")
execute_process(
  COMMAND "${SHELL_BIN}"
  INPUT_FILE "${tamper_script}"
  RESULT_VARIABLE tamper_rc
  OUTPUT_VARIABLE tamper_out)
if(tamper_rc EQUAL 0)
  message(FATAL_ERROR
          "certify exited 0 on a tampered journal:\n${tamper_out}")
endif()
string(FIND "${tamper_out}" "failed seal verification" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR
          "tampered certify did not name the seal failure:\n${tamper_out}")
endif()

# Startup replay of the tampered file: tampering is reported, not fatal.
set(replay_script "${WORK_DIR}/workload_smoke_tamper_replay.txt")
file(WRITE "${replay_script}" "workload
quit
")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env
          "SCALEIN_JOURNAL_PATH=${tampered}"
          "${SHELL_BIN}"
  INPUT_FILE "${replay_script}"
  RESULT_VARIABLE replay_rc
  OUTPUT_VARIABLE replay_out)
if(NOT replay_rc EQUAL 0)
  message(FATAL_ERROR
          "startup replay of a tampered journal must warn, not fail "
          "(rc=${replay_rc}):\n${replay_out}")
endif()
string(FIND "${replay_out}" "tampered" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR
          "replay did not report the tampered entries:\n${replay_out}")
endif()
message(STATUS "certify exit-code smoke OK")
