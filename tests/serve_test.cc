// Tests for the multi-session serve layer: the pure admission decision
// function, session envelope accounting, the wire framing, and the Server
// itself — including the determinism contract (byte-identical admission
// transcripts across thread counts for a fixed arrival script) and the
// certify round-trip for journaled refusal verdicts.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "exec/governor.h"
#include "io/shell.h"
#include "serve/admission.h"
#include "serve/message.h"
#include "serve/port.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/failpoint.h"

namespace scalein::serve {
namespace {

// ---------------------------------------------------------------------------
// DecideAdmission: the pure decision function.

SlaConfig BaseSla() {
  SlaConfig sla;
  sla.session_fetch_budget = 1000;
  sla.degrade_floor = 16;
  sla.queue_capacity = 4;
  sla.queue_class_capacity = 2;
  sla.queue_timeout_ms = 10;
  sla.max_running = 2;
  return sla;
}

AdmissionInput Arriving(double bound, uint64_t remaining) {
  AdmissionInput in;
  in.static_bound = bound;
  in.budget_remaining = remaining;
  return in;
}

TEST(DecideAdmissionTest, AdmitsWhenBoundFitsAndSlotFree) {
  AdmissionDecision d = DecideAdmission(Arriving(50, 1000), BaseSla());
  EXPECT_EQ(d.action, AdmitAction::kAdmit);
  EXPECT_EQ(d.sub_budget, 50u);
  EXPECT_EQ(d.reject, RejectReason::kNone);
}

TEST(DecideAdmissionTest, FractionalBoundRoundsUp) {
  AdmissionDecision d = DecideAdmission(Arriving(49.2, 1000), BaseSla());
  EXPECT_EQ(d.action, AdmitAction::kAdmit);
  EXPECT_EQ(d.sub_budget, 50u);
}

// The GovernorLimits footgun the controller must dodge: fetch_budget=0 means
// *disabled*, so a zero-bound query admitted from a finite envelope must get
// a sub-budget of at least 1 — never an accidentally-unlimited run.
TEST(DecideAdmissionTest, ZeroBoundClampsSubBudgetToOne) {
  AdmissionDecision d = DecideAdmission(Arriving(0, 1000), BaseSla());
  EXPECT_EQ(d.action, AdmitAction::kAdmit);
  EXPECT_EQ(d.sub_budget, 1u);
}

TEST(DecideAdmissionTest, UnlimitedEnvelopeRunsUnbudgeted) {
  AdmissionInput in = Arriving(1e9, 0);
  in.budget_unlimited = true;
  AdmissionDecision d = DecideAdmission(in, BaseSla());
  EXPECT_EQ(d.action, AdmitAction::kAdmit);
  EXPECT_EQ(d.sub_budget, 0u);  // 0 = no fetch budget armed
}

TEST(DecideAdmissionTest, NoStaticBoundRejects) {
  AdmissionDecision d = DecideAdmission(Arriving(-1, 1000), BaseSla());
  EXPECT_EQ(d.action, AdmitAction::kReject);
  EXPECT_EQ(d.reject, RejectReason::kNoStaticBound);
  EXPECT_EQ(d.retry_after_ms, 0u);  // retrying an unprovable query is futile
}

TEST(DecideAdmissionTest, DrainingRejectsBeforeAnythingElse) {
  AdmissionInput in = Arriving(1, 1000);
  in.draining = true;
  AdmissionDecision d = DecideAdmission(in, BaseSla());
  EXPECT_EQ(d.action, AdmitAction::kReject);
  EXPECT_EQ(d.reject, RejectReason::kDraining);
}

TEST(DecideAdmissionTest, OverBudgetDegradesToRemaining) {
  AdmissionDecision d = DecideAdmission(Arriving(5000, 200), BaseSla());
  EXPECT_EQ(d.action, AdmitAction::kDegrade);
  EXPECT_EQ(d.sub_budget, 200u);  // sound reduced sub-budget
}

TEST(DecideAdmissionTest, BelowDegradeFloorRejectsBudgetExhausted) {
  AdmissionDecision d = DecideAdmission(Arriving(5000, 15), BaseSla());
  EXPECT_EQ(d.action, AdmitAction::kReject);
  EXPECT_EQ(d.reject, RejectReason::kBudgetExhausted);
}

TEST(DecideAdmissionTest, DegradeDisabledRejectsInstead) {
  SlaConfig sla = BaseSla();
  sla.allow_degrade = false;
  AdmissionDecision d = DecideAdmission(Arriving(5000, 200), sla);
  EXPECT_EQ(d.action, AdmitAction::kReject);
  EXPECT_EQ(d.reject, RejectReason::kBudgetExhausted);
}

// Degraded runs are subject to the same run slots as full admits — overload
// must not leak unbounded concurrency through the degrade path.
TEST(DecideAdmissionTest, DegradeAlsoWaitsForRunSlot) {
  AdmissionInput in = Arriving(5000, 200);
  in.running = 2;  // == max_running
  AdmissionDecision d = DecideAdmission(in, BaseSla());
  EXPECT_EQ(d.action, AdmitAction::kQueue);
}

// ...but a query the budget provably cannot cover sheds without ever
// holding a queue slot, with a retry hint since in-flight refunds may help.
TEST(DecideAdmissionTest, UnservableBoundRejectsWithoutQueueing) {
  AdmissionInput in = Arriving(5000, 10);  // below degrade floor
  in.running = 2;
  AdmissionDecision d = DecideAdmission(in, BaseSla());
  EXPECT_EQ(d.action, AdmitAction::kReject);
  EXPECT_EQ(d.reject, RejectReason::kBudgetExhausted);
  EXPECT_GT(d.retry_after_ms, 0u);
}

TEST(DecideAdmissionTest, BusySlotsQueueAndFullQueueRejects) {
  AdmissionInput in = Arriving(50, 1000);
  in.running = 2;  // == max_running
  AdmissionDecision queued = DecideAdmission(in, BaseSla());
  EXPECT_EQ(queued.action, AdmitAction::kQueue);

  in.queued_total = 4;  // == queue_capacity
  AdmissionDecision shed = DecideAdmission(in, BaseSla());
  EXPECT_EQ(shed.action, AdmitAction::kReject);
  EXPECT_EQ(shed.reject, RejectReason::kQueueFull);
  EXPECT_GT(shed.retry_after_ms, 0u);  // backpressure hint scales with depth
}

TEST(DecideAdmissionTest, ClassShareFullRejectsEvenWithGlobalRoom) {
  AdmissionInput in = Arriving(50, 1000);
  in.running = 2;
  in.queued_total = 2;     // global FIFO has room...
  in.queued_in_class = 2;  // ...but this bound-class's share is spent
  AdmissionDecision d = DecideAdmission(in, BaseSla());
  EXPECT_EQ(d.action, AdmitAction::kReject);
  EXPECT_EQ(d.reject, RejectReason::kQueueClassFull);
}

TEST(DecideAdmissionTest, IsDeterministic) {
  AdmissionInput in = Arriving(123.7, 456);
  in.running = 1;
  in.queued_total = 1;
  AdmissionDecision a = DecideAdmission(in, BaseSla());
  AdmissionDecision b = DecideAdmission(in, BaseSla());
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.sub_budget, b.sub_budget);
}

TEST(ClassifyBoundTest, BucketsByMagnitude) {
  EXPECT_EQ(ClassifyBound(1), BoundClass::kSmall);
  EXPECT_EQ(ClassifyBound(100), BoundClass::kSmall);
  EXPECT_EQ(ClassifyBound(101), BoundClass::kMedium);
  EXPECT_EQ(ClassifyBound(10000), BoundClass::kMedium);
  EXPECT_EQ(ClassifyBound(10001), BoundClass::kLarge);
  EXPECT_EQ(ClassifyBound(1e6), BoundClass::kLarge);
  EXPECT_EQ(ClassifyBound(1e7), BoundClass::kHuge);
  EXPECT_EQ(ClassifyBound(-1), BoundClass::kHuge);  // unbounded
}

// ---------------------------------------------------------------------------
// SessionEnvelope accounting.

TEST(SessionEnvelopeTest, ReserveRefundRoundTrip) {
  SessionEnvelope env("s", 7, /*lease=*/100, /*ledger=*/nullptr);
  EXPECT_FALSE(env.unlimited());
  EXPECT_EQ(env.lease(), 100u);
  EXPECT_TRUE(env.Reserve(60));
  EXPECT_EQ(env.remaining(), 40u);
  EXPECT_EQ(env.reserved_inflight(), 60u);
  EXPECT_FALSE(env.Reserve(41));  // over-reserve refused
  env.Refund(/*reserved=*/60, /*spent=*/25);  // unspent 35 comes back
  EXPECT_EQ(env.remaining(), 75u);
  EXPECT_EQ(env.reserved_inflight(), 0u);
  env.Reserve(10);
  env.Refund(10, 99);  // overspend (tripped past budget probe) clamps to 0
  EXPECT_EQ(env.remaining(), 65u);
}

TEST(SessionEnvelopeTest, ZeroLeaseIsUnlimited) {
  SessionEnvelope env("s", 7, 0, nullptr);
  EXPECT_TRUE(env.unlimited());
  EXPECT_TRUE(env.Reserve(1ULL << 40));
  exec::GovernorLimits limits = env.LimitsFor(0, SlaConfig{});
  EXPECT_EQ(limits.fetch_budget, 0u);  // unbudgeted, but...
  EXPECT_TRUE(limits.has_cancel);      // ...still preemptible
}

TEST(SessionEnvelopeTest, LeaseCarvedFromLedgerAndReleasedOnClose) {
  exec::SharedLedger ledger;
  ledger.Init(150, 0);  // capacity exactly 150
  {
    SessionEnvelope a("a", 1, 100, &ledger);
    EXPECT_EQ(a.lease(), 100u);
    SessionEnvelope b("b", 2, 100, &ledger);
    EXPECT_EQ(b.lease(), 50u);  // partial: capacity bounds the sum of leases
    SessionEnvelope c("c", 3, 100, &ledger);
    EXPECT_EQ(c.lease(), 0u);
  }
  // Envelope destruction returns the leases: a new session gets a full cut.
  SessionEnvelope d("d", 4, 100, &ledger);
  EXPECT_EQ(d.lease(), 100u);
}

TEST(SessionEnvelopeTest, PreemptFlipsSharedToken) {
  SessionEnvelope env("s", 7, 100, nullptr);
  exec::GovernorLimits limits = env.LimitsFor(10, SlaConfig{});
  exec::ResourceGovernor governor;
  governor.Arm(limits);
  EXPECT_TRUE(governor.Checkpoint());
  env.Preempt();  // the copy in `limits` shares the envelope's flag
  bool tripped = false;
  for (uint32_t i = 0;
       i <= exec::ResourceGovernor::kCheckInterval && !tripped; ++i) {
    tripped = !governor.Checkpoint();
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(governor.trip().kind, exec::LimitKind::kCancelled);
}

// ---------------------------------------------------------------------------
// Wire framing.

TEST(FrameTest, EncodeDecodeRoundTripAcrossChunks) {
  const std::string frames = EncodeFrame(true, "hello\nworld\n") +
                             EncodeFrame(false, "not-found: nope\n") +
                             EncodeFrame(true, "");
  FrameDecoder decoder;
  // Feed byte-by-byte: the decoder must reassemble across arbitrary chunking.
  for (char c : frames) decoder.Feed(std::string_view(&c, 1));
  bool ok = false;
  std::string payload;
  ASSERT_TRUE(decoder.Next(&ok, &payload));
  EXPECT_TRUE(ok);
  EXPECT_EQ(payload, "hello\nworld\n");
  ASSERT_TRUE(decoder.Next(&ok, &payload));
  EXPECT_FALSE(ok);
  EXPECT_EQ(payload, "not-found: nope\n");
  ASSERT_TRUE(decoder.Next(&ok, &payload));
  EXPECT_TRUE(ok);
  EXPECT_EQ(payload, "");
  EXPECT_FALSE(decoder.Next(&ok, &payload));
}

TEST(FrameTest, CorruptPrefixSurfacesAsErrorFrame) {
  FrameDecoder decoder;
  decoder.Feed("garbage\n");
  bool ok = true;
  std::string payload;
  ASSERT_TRUE(decoder.Next(&ok, &payload));
  EXPECT_FALSE(ok);
  EXPECT_NE(payload.find("frame error"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Server: scripted end-to-end, determinism, preemption, refusal certify.

void LoadCatalog(Shell* shell) {
  const char* kCatalog[] = {
      "schema relation person(id, name, city)",
      "schema relation friend(id1, id2)",
      "schema relation secret(a, b)",
      "access access friend(id1) N=50",
      "access key person(id)",
      "row person 1,\"ada\",\"NYC\"",
      "row person 2,\"bob\",\"NYC\"",
      "row person 3,\"cyd\",\"NYC\"",
      "row friend 1,2",
      "row friend 1,3",
      "row secret 1,2",
  };
  for (const char* line : kCatalog) {
    Result<std::string> out = shell->Execute(line);
    ASSERT_TRUE(out.ok()) << line << ": " << out.status().ToString();
  }
}

constexpr const char* kFriendEval =
    "eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, "
    "\"NYC\")";
constexpr const char* kSecretEval = "eval a=1 S(a, b) := secret(a, b)";

std::string MustLine(Server* server, const std::string& sid,
                     std::string_view line) {
  Result<std::string> out = server->HandleLine(sid, line);
  EXPECT_TRUE(out.ok()) << line << ": " << out.status().ToString();
  return out.ok() ? *out : std::string();
}

TEST(ServerTest, AdmitsEvaluatesAndAccountsBudget) {
  Shell shell;
  LoadCatalog(&shell);
  Server::Options options;
  options.sla.session_fetch_budget = 120;
  Server server(&shell, options);
  ASSERT_TRUE(server.Start().ok());
  std::string open = MustLine(&server, "a", "hello");
  EXPECT_NE(open.find("budget=120"), std::string::npos);
  std::string resp = MustLine(&server, "a", kFriendEval);
  EXPECT_NE(resp.find("admit bound=100 lease=100"), std::string::npos);
  EXPECT_NE(resp.find("2 answers"), std::string::npos);
  // Only the 4 actually-fetched tuples stay charged; the rest refunds.
  std::string budget = MustLine(&server, "a", "budget");
  EXPECT_NE(budget.find("remaining=116"), std::string::npos) << budget;
}

TEST(ServerTest, RefusalVerdictsAreJournaledAndCertifiable) {
  const std::string jpath =
      ::testing::TempDir() + "serve_refusals.jsonl";
  std::error_code ec;
  std::filesystem::remove(jpath, ec);
  ::setenv("SCALEIN_JOURNAL_PATH", jpath.c_str(), 1);
  Shell shell;
  ::unsetenv("SCALEIN_JOURNAL_PATH");
  LoadCatalog(&shell);
  Server::Options options;
  options.sla.session_fetch_budget = 8;  // below degrade floor
  Server server(&shell, options);
  ASSERT_TRUE(server.Start().ok());
  MustLine(&server, "a", "hello");
  // Non-controllable: no static bound to admit against.
  std::string r1 = MustLine(&server, "a", kSecretEval);
  EXPECT_NE(r1.find("reject(no-static-bound)"), std::string::npos) << r1;
  // Controllable but the bound exceeds a lease too small to degrade into.
  std::string r2 = MustLine(&server, "a", kFriendEval);
  EXPECT_NE(r2.find("reject(budget)"), std::string::npos) << r2;
  // Both refusals sealed into the journal; certify verifies the seals.
  std::string certify = MustLine(&server, "a", "certify");
  EXPECT_NE(certify.find("2/2 certificates verify"), std::string::npos)
      << certify;
  EXPECT_NE(certify.find("tripped"), std::string::npos);
  std::filesystem::remove(jpath, ec);
}

TEST(ServerTest, QueueTimeoutShedsAndSlotReleaseReadmits) {
  Shell shell;
  LoadCatalog(&shell);
  Server::Options options;
  options.scripted = true;
  options.sla.queue_timeout_ms = 20;
  options.sla.max_running = 1;
  Server server(&shell, options);
  ASSERT_TRUE(server.Start().ok());
  MustLine(&server, "a", "hello");
  MustLine(&server, "a", "#busy 1");  // occupy the only run slot
  std::string shed = MustLine(&server, "a", kFriendEval);
  EXPECT_NE(shed.find("reject(queue-timeout)"), std::string::npos) << shed;
  EXPECT_NE(shed.find("retry-after=20ms"), std::string::npos) << shed;
  MustLine(&server, "a", "#busy 0");
  std::string ok = MustLine(&server, "a", kFriendEval);
  EXPECT_NE(ok.find("admit"), std::string::npos) << ok;
  EXPECT_EQ(server.queue_depth(), 0u);
}

// The determinism acceptance criterion: one fixed arrival script, replayed
// at different engine thread counts, must produce byte-identical admission
// transcripts (SCALEIN_SESSION_ID pins the session fingerprint half of the
// QueryIds; answer sets are canonically ordered already).
TEST(ServerTest, ScriptedTranscriptIsByteIdenticalAcrossThreadCounts) {
  ::setenv("SCALEIN_SESSION_ID", "serve-determinism", 1);
  auto run = [](unsigned threads) {
    ::setenv("SCALEIN_THREADS", std::to_string(threads).c_str(), 1);
    Shell shell;
    LoadCatalog(&shell);
    Server::Options options;
    options.scripted = true;
    options.sla.session_fetch_budget = 150;
    options.sla.queue_timeout_ms = 5;
    options.sla.max_running = 1;
    Server server(&shell, options);
    EXPECT_TRUE(server.Start().ok());
    const char* kScript[][2] = {
        {"a", "hello"},        {"b", "hello"},
        {"a", kFriendEval},    {"b", kFriendEval},
        {"a", kSecretEval},    // reject: no static bound
        {"a", kFriendEval},    // admit: refunds keep the lease alive
        {"a", "#busy 1"},      {"b", kFriendEval},  // queue-timeout shed
        {"a", "#busy 0"},      {"a", "budget"},
        {"b", "budget"},       {"a", "bye"},
        {"b", "bye"},
    };
    std::string transcript;
    for (const auto& step : kScript) {
      Result<std::string> out = server.HandleLine(step[0], step[1]);
      transcript += out.ok() ? *out : "error: " + out.status().ToString();
    }
    server.Drain();
    ::unsetenv("SCALEIN_THREADS");
    return transcript;
  };
  const std::string at1 = run(1);
  const std::string at4 = run(4);
  ::unsetenv("SCALEIN_SESSION_ID");
  EXPECT_EQ(at1, at4);
  EXPECT_NE(at1.find("reject(no-static-bound)"), std::string::npos);
  EXPECT_NE(at1.find("reject(queue-timeout)"), std::string::npos);
}

TEST(ServerTest, DrainPreemptsAndRefusesNewWork) {
  Shell shell;
  LoadCatalog(&shell);
  Server server(&shell, Server::Options{});
  ASSERT_TRUE(server.Start().ok());
  MustLine(&server, "a", "hello");
  server.Drain();
  EXPECT_TRUE(server.draining());
  std::string shed = MustLine(&server, "a", kFriendEval);
  EXPECT_NE(shed.find("reject(draining)"), std::string::npos) << shed;
  Result<std::string> reopened = server.HandleLine("z", "hello");
  EXPECT_FALSE(reopened.ok());
  server.Drain();  // idempotent
}

TEST(ServerTest, EvalBeforeHelloIsRefused) {
  Shell shell;
  LoadCatalog(&shell);
  Server server(&shell, Server::Options{});
  ASSERT_TRUE(server.Start().ok());
  Result<std::string> out = server.HandleLine("ghost", kFriendEval);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServerTest, ConcurrentSessionsEvaluateSafely) {
  Shell shell;
  LoadCatalog(&shell);
  Server::Options options;
  options.sla.max_running = 4;
  Server server(&shell, options);
  ASSERT_TRUE(server.Start().ok());
  constexpr int kSessions = 4;
  constexpr int kQueriesEach = 8;
  std::vector<std::thread> clients;
  std::vector<int> answers(kSessions, 0);
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&server, &answers, s] {
      const std::string sid = "c" + std::to_string(s);
      (void)server.HandleLine(sid, "hello");
      for (int q = 0; q < kQueriesEach; ++q) {
        Result<std::string> out = server.HandleLine(sid, kFriendEval);
        if (out.ok() && out->find("2 answers") != std::string::npos) {
          ++answers[s];
        }
      }
      (void)server.HandleLine(sid, "bye");
    });
  }
  for (std::thread& t : clients) t.join();
  for (int s = 0; s < kSessions; ++s) {
    EXPECT_EQ(answers[s], kQueriesEach) << "session " << s;
  }
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_EQ(server.running(), 0u);
}

// ---------------------------------------------------------------------------
// Port: a real loopback TCP round-trip.

TEST(PortTest, TcpRoundTripThroughFrames) {
  Shell shell;
  LoadCatalog(&shell);
  Server server(&shell, Server::Options{});
  ASSERT_TRUE(server.Start().ok());
  Port port(&server, Port::Options{});
  Status listening = port.Listen();
  if (!listening.ok()) {
    GTEST_SKIP() << "cannot bind loopback: " << listening.ToString();
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      std::string("hello\n") + kFriendEval + "\nnonsense\nbye\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  FrameDecoder decoder;
  std::vector<std::pair<bool, std::string>> frames;
  char buf[4096];
  while (frames.size() < 4) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    bool ok;
    std::string payload;
    while (decoder.Next(&ok, &payload)) frames.emplace_back(ok, payload);
  }
  ::close(fd);
  port.Shutdown();
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_TRUE(frames[0].first);  // hello
  EXPECT_NE(frames[0].second.find("session"), std::string::npos);
  EXPECT_TRUE(frames[1].first);  // eval
  EXPECT_NE(frames[1].second.find("2 answers"), std::string::npos);
  EXPECT_FALSE(frames[2].first);  // protocol error travels as '-'
  EXPECT_NE(frames[2].second.find("invalid-argument"), std::string::npos);
  EXPECT_TRUE(frames[3].first);  // bye
  EXPECT_EQ(port.accepted(), 1u);
}

TEST(PortTest, AcceptFailpointDropsConnectionNotServer) {
  Shell shell;
  LoadCatalog(&shell);
  Server server(&shell, Server::Options{});
  ASSERT_TRUE(server.Start().ok());
  Port port(&server, Port::Options{});
  Status listening = port.Listen();
  if (!listening.ok()) {
    GTEST_SKIP() << "cannot bind loopback: " << listening.ToString();
  }
  ASSERT_TRUE(
      util::Failpoints::Global().Configure("serve_accept=error").ok());
  auto dial = [&port]() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return false;
    }
    // The injected accept fault closes us immediately: recv sees EOF.
    char c;
    ssize_t n = ::recv(fd, &c, 1, 0);
    ::close(fd);
    return n == 0;
  };
  EXPECT_TRUE(dial());  // faulted connection dropped gracefully
  util::Failpoints::Global().Clear();
  // Blast radius: the server keeps serving fresh connections afterwards.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req = "hello\nbye\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  FrameDecoder decoder;
  std::vector<std::pair<bool, std::string>> frames;
  char buf[4096];
  while (frames.size() < 2) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    bool ok;
    std::string payload;
    while (decoder.Next(&ok, &payload)) frames.emplace_back(ok, payload);
  }
  ::close(fd);
  port.Shutdown();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].first);
  EXPECT_NE(frames[0].second.find("session"), std::string::npos);
  // Faulted connections are not counted as accepted — they are io_faults.
  EXPECT_EQ(port.accepted(), 1u);
  EXPECT_GE(server.shell_metrics()->GetCounter("serve.io_faults").value(), 1u);
}

}  // namespace
}  // namespace scalein::serve
