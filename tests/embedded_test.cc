#include "core/embedded_controllability.h"

#include <gtest/gtest.h>

#include "core/bounded_eval.h"
#include "eval/cq_evaluator.h"
#include "query/parser.h"
#include "workload/social_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

Cq Q3(const Schema& s) {
  Result<Cq> q = ParseCq(
      "Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

struct DatedSocial {
  SocialConfig config;
  Schema schema = SocialSchema(true);
  Database db{Schema{}};
  AccessSchema access;

  DatedSocial() {
    config.num_persons = 80;
    config.max_friends_per_person = 8;
    config.num_restaurants = 12;
    config.avg_visits_per_person = 14;
    config.num_cities = 2;  // half the world lives in NYC
    config.num_years = 1;
    config.dated_visits = true;
    config.seed = 17;
    db = GenerateSocial(config);
    access = SocialAccessSchema(config);
    SI_CHECK(access.BuildIndexes(&db, schema).ok());
  }
};

TEST(EmbeddedTest, Example46Q3BecomesScaleIndependent) {
  DatedSocial social;
  Cq q3 = Q3(social.schema);
  Result<EmbeddedCqAnalysis> analysis = EmbeddedCqAnalysis::Analyze(
      q3, social.schema, social.access, {V("p"), V("yy")});
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->IsScaleIndependent());
  EXPECT_GT(analysis->StaticFetchBound(), 0);
  std::string explanation = analysis->Explain();
  EXPECT_NE(explanation.find("chase"), std::string::npos);
}

TEST(EmbeddedTest, Q3NotScaleIndependentWithoutEmbeddedStatements) {
  DatedSocial social;
  Cq q3 = Q3(social.schema);
  // Same schema minus the two embedded statements of Example 4.6.
  AccessSchema plain_only;
  plain_only.Add("friend", {"id1"}, social.config.max_friends_per_person);
  plain_only.AddKey("person", {"id"});
  plain_only.AddKey("restr", {"rid"});
  plain_only.Add("restr", {"city"}, social.config.num_restaurants);
  Result<EmbeddedCqAnalysis> analysis = EmbeddedCqAnalysis::Analyze(
      q3, social.schema, plain_only, {V("p"), V("yy")});
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->IsScaleIndependent());
}

TEST(EmbeddedTest, Q3NotControlledByPAlone) {
  DatedSocial social;
  Cq q3 = Q3(social.schema);
  Result<EmbeddedCqAnalysis> analysis =
      EmbeddedCqAnalysis::Analyze(q3, social.schema, social.access, {V("p")});
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->IsScaleIndependent());
}

TEST(EmbeddedTest, ExecutionMatchesCqEvaluator) {
  DatedSocial social;
  Cq q3 = Q3(social.schema);
  Result<EmbeddedCqAnalysis> analysis = EmbeddedCqAnalysis::Analyze(
      q3, social.schema, social.access, {V("p"), V("yy")});
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->IsScaleIndependent());

  BoundedEvaluator bounded(&social.db);
  CqEvaluator reference(&social.db);
  int nonempty = 0;
  for (int64_t p = 0; p < 20; ++p) {
    Binding params{{V("p"), Value::Int(p)},
                   {V("yy"), Value::Int(static_cast<int64_t>(
                                 social.config.first_year))}};
    BoundedEvalStats stats;
    Result<AnswerSet> fast = bounded.EvaluateEmbedded(*analysis, params, &stats);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    AnswerSet slow = reference.Evaluate(q3, params);
    EXPECT_EQ(*fast, slow) << "p=" << p;
    if (!slow.empty()) ++nonempty;
    EXPECT_LE(static_cast<double>(stats.base_tuples_fetched),
              analysis->StaticFetchBound());
  }
  EXPECT_GT(nonempty, 0);  // the scenario actually exercises answers
}

TEST(EmbeddedTest, FetchesDoNotGrowWithDatabase) {
  uint64_t fetches[2] = {0, 0};
  int slot = 0;
  for (uint64_t persons : {100u, 1000u}) {
    SocialConfig config;
    config.num_persons = persons;
    config.max_friends_per_person = 6;
    config.num_restaurants = 25;
    config.avg_visits_per_person = 6;
    config.dated_visits = true;
    config.seed = 5;
    Schema schema = SocialSchema(true);
    Database db = GenerateSocial(config);
    AccessSchema access = SocialAccessSchema(config);
    ASSERT_TRUE(access.BuildIndexes(&db, schema).ok());
    Cq q3 = Q3(schema);
    Result<EmbeddedCqAnalysis> analysis =
        EmbeddedCqAnalysis::Analyze(q3, schema, access, {V("p"), V("yy")});
    ASSERT_TRUE(analysis.ok());
    ASSERT_TRUE(analysis->IsScaleIndependent());
    BoundedEvaluator bounded(&db);
    BoundedEvalStats stats;
    Binding params{{V("p"), Value::Int(3)},
                   {V("yy"), Value::Int(static_cast<int64_t>(config.first_year))}};
    ASSERT_TRUE(bounded.EvaluateEmbedded(*analysis, params, &stats).ok());
    fetches[slot++] = stats.base_tuples_fetched;
  }
  // The static bound is the same for both sizes; both runs stay below it,
  // and the big run is not ×10 the small one.
  EXPECT_LE(fetches[1], fetches[0] * 3 + 50);
}

TEST(EmbeddedTest, ChaseUsesVerificationWhenProjectionsPartial) {
  // Statements exposing disjoint halves of a relation force candidate
  // verification through a plain statement.
  Schema s;
  s.Relation("r", {"k", "a", "b"});
  Database db(s);
  db.Insert("r", Tuple{Value::Int(1), Value::Int(10), Value::Int(100)});
  db.Insert("r", Tuple{Value::Int(1), Value::Int(20), Value::Int(200)});
  AccessSchema access;
  access.AddEmbedded("r", {"k"}, {"a"}, 5);
  access.AddEmbedded("r", {"k"}, {"b"}, 5);
  access.Add("r", {"k"}, 10);  // plain verifier
  ASSERT_TRUE(access.BuildIndexes(&db, s).ok());
  Result<Cq> q = ParseCq("Q(a, b) :- r(k, a, b)", &s);
  ASSERT_TRUE(q.ok());
  Result<EmbeddedCqAnalysis> analysis =
      EmbeddedCqAnalysis::Analyze(*q, s, access, {V("k")});
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->IsScaleIndependent());
  BoundedEvaluator bounded(&db);
  Result<AnswerSet> answers = bounded.EvaluateEmbedded(
      *analysis, {{V("k"), Value::Int(1)}}, nullptr);
  ASSERT_TRUE(answers.ok());
  // The cross product (10,200)/(20,100) must have been filtered out.
  EXPECT_EQ(answers->size(), 2u);
  EXPECT_TRUE(answers->count(Tuple{Value::Int(10), Value::Int(100)}));
  EXPECT_TRUE(answers->count(Tuple{Value::Int(20), Value::Int(200)}));
}

TEST(EmbeddedTest, NoVerifierMeansNoPlan) {
  Schema s;
  s.Relation("r", {"k", "a", "b"});
  AccessSchema access;
  access.AddEmbedded("r", {"k"}, {"a"}, 5);
  access.AddEmbedded("r", {"k"}, {"b"}, 5);
  // No plain statement: candidates cannot be verified.
  Result<Cq> q = ParseCq("Q(a, b) :- r(k, a, b)", &s);
  ASSERT_TRUE(q.ok());
  Result<EmbeddedCqAnalysis> analysis =
      EmbeddedCqAnalysis::Analyze(*q, s, access, {V("k")});
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->IsScaleIndependent());
}

TEST(EmbeddedTest, MinimalClosuresMatchExample46) {
  DatedSocial social;
  // Example 4.6's derivation at the atom level: {id, yy} is the unique
  // minimal set (within size 2) from which the chase covers visit — the
  // 366-days statement enumerates (mm, dd) from yy, then the FD closes rid;
  // neither attribute alone suffices.
  Result<std::vector<EmbeddedClosure>> closures =
      MinimalEmbeddedClosures("visit", social.schema, social.access, 2);
  ASSERT_TRUE(closures.ok());
  ASSERT_EQ(closures->size(), 1u);
  EXPECT_EQ((*closures)[0].key_attrs, (std::vector<std::string>{"id", "yy"}));
  EXPECT_FALSE((*closures)[0].needs_verification);  // FD exposes all attrs
  EXPECT_LE((*closures)[0].candidate_bound, 366.0);

  // Without the embedded statements there are no closures at all (visit has
  // no plain statement either).
  AccessSchema plain_only;
  plain_only.Add("friend", {"id1"}, 8);
  Result<std::vector<EmbeddedClosure>> none =
      MinimalEmbeddedClosures("visit", social.schema, plain_only, 2);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(EmbeddedTest, MissingParameterRejectedAtEvaluation) {
  DatedSocial social;
  Cq q3 = Q3(social.schema);
  Result<EmbeddedCqAnalysis> analysis = EmbeddedCqAnalysis::Analyze(
      q3, social.schema, social.access, {V("p"), V("yy")});
  ASSERT_TRUE(analysis.ok());
  BoundedEvaluator bounded(&social.db);
  Result<AnswerSet> r =
      bounded.EvaluateEmbedded(*analysis, {{V("p"), Value::Int(1)}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace scalein
