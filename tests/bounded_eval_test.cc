#include "core/bounded_eval.h"

#include <gtest/gtest.h>

#include "eval/fo_evaluator.h"
#include "query/parser.h"
#include "util/rng.h"
#include "workload/social_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

FoQuery FQ(const char* text, const Schema& s) {
  Result<FoQuery> q = ParseFoQuery(text, &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

ControllabilityAnalysis Analyze(const FoQuery& q, const Schema& s,
                                const AccessSchema& a) {
  Result<ControllabilityAnalysis> r =
      ControllabilityAnalysis::Analyze(q.body, s, a);
  SI_CHECK_MSG(r.ok(), r.status().message().c_str());
  return *std::move(r);
}

struct Social {
  SocialConfig config;
  Schema schema = SocialSchema(false);
  Database db{Schema{}};
  AccessSchema access;

  explicit Social(uint64_t persons) {
    config.num_persons = persons;
    config.max_friends_per_person = 10;
    config.num_restaurants = 40;
    config.seed = 99;
    db = GenerateSocial(config);
    access = SocialAccessSchema(config);
    SI_CHECK(access.BuildIndexes(&db, schema).ok());
  }
};

TEST(BoundedEvalTest, Q1MatchesReferenceEvaluator) {
  Social social(60);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  ControllabilityAnalysis analysis = Analyze(q1, social.schema, social.access);
  BoundedEvaluator bounded(&social.db);
  FoEvaluator reference(&social.db);
  for (int64_t p = 0; p < 10; ++p) {
    Binding params{{V("p"), Value::Int(p)}};
    BoundedEvalStats stats;
    Result<AnswerSet> fast = bounded.Evaluate(q1, analysis, params, &stats);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    AnswerSet slow = reference.Evaluate(q1, params);
    EXPECT_EQ(*fast, slow) << "p = " << p;
    // Fetches stay within the static bound.
    Result<double> bound = analysis.StaticFetchBound({V("p")});
    ASSERT_TRUE(bound.ok());
    EXPECT_LE(static_cast<double>(stats.base_tuples_fetched), *bound);
  }
}

TEST(BoundedEvalTest, FetchCountIndependentOfDatabaseSize) {
  // The headline property: fetches for Q1(p0) do not grow with |D|.
  uint64_t small_fetch = 0;
  uint64_t large_fetch = 0;
  for (uint64_t persons : {200u, 2000u}) {
    Social social(persons);
    FoQuery q1 = FQ(
        "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
        social.schema);
    ControllabilityAnalysis analysis =
        Analyze(q1, social.schema, social.access);
    BoundedEvaluator bounded(&social.db);
    BoundedEvalStats stats;
    Result<AnswerSet> r = bounded.Evaluate(
        q1, analysis, {{V("p"), Value::Int(5)}}, &stats);
    ASSERT_TRUE(r.ok());
    (persons == 200u ? small_fetch : large_fetch) = stats.base_tuples_fetched;
  }
  // Both runs touch at most 2 * cap tuples; sizes differ 10x.
  EXPECT_LE(large_fetch, 2 * 10u);
  EXPECT_LE(small_fetch, 2 * 10u);
}

TEST(BoundedEvalTest, UncontrolledParametersRejected) {
  Social social(30);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  ControllabilityAnalysis analysis = Analyze(q1, social.schema, social.access);
  BoundedEvaluator bounded(&social.db);
  Result<AnswerSet> r =
      bounded.Evaluate(q1, analysis, {{V("name"), Value::Str("p3")}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BoundedEvalTest, EnforceBoundsDetectsNonConformingData) {
  Schema s;
  s.Relation("e", {"a", "b"});
  Database db(s);
  for (int64_t i = 0; i < 5; ++i) {
    db.Insert("e", Tuple{Value::Int(1), Value::Int(i)});
  }
  AccessSchema access;
  access.Add("e", {"a"}, 2);  // declared N = 2, actual 5
  FoQuery q = FQ("Q(x, y) := e(x, y)", s);
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q.body, s, access);
  ASSERT_TRUE(analysis.ok());
  BoundedEvaluator bounded(&db);
  bounded.set_enforce_bounds(true);
  Result<AnswerSet> r =
      bounded.Evaluate(q, *analysis, {{V("x"), Value::Int(1)}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  bounded.set_enforce_bounds(false);
  Result<AnswerSet> lenient =
      bounded.Evaluate(q, *analysis, {{V("x"), Value::Int(1)}});
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(lenient->size(), 5u);
}

TEST(BoundedEvalTest, FetchBudgetEnforced) {
  Social social(50);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  ControllabilityAnalysis analysis = Analyze(q1, social.schema, social.access);
  BoundedEvaluator bounded(&social.db);
  Binding params{{V("p"), Value::Int(5)}};

  // Unlimited run to learn the actual fetch count.
  BoundedEvalStats stats;
  Result<AnswerSet> full = bounded.Evaluate(q1, analysis, params, &stats);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(stats.base_tuples_fetched, 1u);

  // A generous budget succeeds; a budget one below the need fails.
  bounded.set_fetch_budget(stats.base_tuples_fetched);
  EXPECT_TRUE(bounded.Evaluate(q1, analysis, params).ok());
  bounded.set_fetch_budget(stats.base_tuples_fetched - 1);
  Result<AnswerSet> capped = bounded.Evaluate(q1, analysis, params);
  EXPECT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);
  bounded.set_fetch_budget(0);  // disable
  EXPECT_TRUE(bounded.Evaluate(q1, analysis, params).ok());
}

TEST(BoundedEvalTest, FetchBudgetStopsMidEvaluationWithPartialStats) {
  Social social(50);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  ControllabilityAnalysis analysis = Analyze(q1, social.schema, social.access);
  BoundedEvaluator bounded(&social.db);
  Binding params{{V("p"), Value::Int(5)}};
  BoundedEvalStats full;
  ASSERT_TRUE(bounded.Evaluate(q1, analysis, params, &full).ok());
  ASSERT_GT(full.base_tuples_fetched, 2u);

  // With a budget of 1 the engine must stop at the first overrun, not run
  // to completion and reject afterwards: the partial counters stay strictly
  // below the unbudgeted total.
  bounded.set_fetch_budget(1);
  BoundedEvalStats partial;
  Result<AnswerSet> r = bounded.Evaluate(q1, analysis, params, &partial);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(partial.base_tuples_fetched, 0u);
  EXPECT_LT(partial.base_tuples_fetched, full.base_tuples_fetched);
}

TEST(BoundedEvalTest, StatsAccumulateAcrossEvaluations) {
  // One stats object fed by several evaluations (the incremental
  // maintainer's usage): totals add up, the budget stays per-evaluation.
  Social social(50);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  ControllabilityAnalysis analysis = Analyze(q1, social.schema, social.access);
  BoundedEvaluator bounded(&social.db);
  Binding params{{V("p"), Value::Int(5)}};
  BoundedEvalStats once;
  ASSERT_TRUE(bounded.Evaluate(q1, analysis, params, &once).ok());
  ASSERT_GT(once.base_tuples_fetched, 0u);
  ASSERT_GT(once.index_lookups, 0u);

  BoundedEvalStats twice;
  ASSERT_TRUE(bounded.Evaluate(q1, analysis, params, &twice).ok());
  ASSERT_TRUE(bounded.Evaluate(q1, analysis, params, &twice).ok());
  EXPECT_EQ(twice.base_tuples_fetched, 2 * once.base_tuples_fetched);
  EXPECT_EQ(twice.index_lookups, 2 * once.index_lookups);
  EXPECT_EQ(twice.fetched_by_relation.at("friend"),
            2 * once.fetched_by_relation.at("friend"));

  // A budget large enough for one evaluation does not trip on the second:
  // the cap is per Evaluate call, not per stats object.
  bounded.set_fetch_budget(once.base_tuples_fetched);
  EXPECT_TRUE(bounded.Evaluate(q1, analysis, params).ok());
  EXPECT_TRUE(bounded.Evaluate(q1, analysis, params).ok());
}

TEST(BoundedEvalTest, SafeNegationExecution) {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("blocked", {"a", "b"});
  Database db(s);
  db.Insert("r", Tuple{Value::Int(1), Value::Int(10)});
  db.Insert("r", Tuple{Value::Int(1), Value::Int(11)});
  db.Insert("blocked", Tuple{Value::Int(1), Value::Int(10)});
  AccessSchema access;
  access.Add("r", {"a"}, 5);
  access.Add("blocked", {"a", "b"}, 1);
  ASSERT_TRUE(access.BuildIndexes(&db, s).ok());
  FoQuery q = FQ("Q(x, y) := r(x, y) and not blocked(x, y)", s);
  ControllabilityAnalysis analysis = Analyze(q, s, access);
  BoundedEvaluator bounded(&db);
  Result<AnswerSet> r = bounded.Evaluate(q, analysis, {{V("x"), Value::Int(1)}});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(*r->begin(), Tuple{Value::Int(11)});
}

TEST(BoundedEvalTest, UniversalRuleExecution) {
  Schema s;
  s.Relation("R", {"A", "B"});
  s.Relation("S", {"A", "B", "C"});
  s.Relation("T", {"A", "B", "C"});
  Database db(s);
  // R(1, 10): all S(1, 10, ·) ⊆ T — holds. R(1, 11): violated.
  db.Insert("R", Tuple{Value::Int(1), Value::Int(10)});
  db.Insert("R", Tuple{Value::Int(1), Value::Int(11)});
  db.Insert("S", Tuple{Value::Int(1), Value::Int(10), Value::Int(7)});
  db.Insert("T", Tuple{Value::Int(1), Value::Int(10), Value::Int(7)});
  db.Insert("S", Tuple{Value::Int(1), Value::Int(11), Value::Int(8)});
  AccessSchema access;
  access.Add("R", {"A"}, 10);
  access.Add("S", {"A", "B"}, 10);
  access.Add("T", {"A", "B", "C"}, 1);
  ASSERT_TRUE(access.BuildIndexes(&db, s).ok());
  FoQuery q = FQ(
      "Q(x, y) := R(x, y) and (forall z. S(x, y, z) implies T(x, y, z))", s);
  ControllabilityAnalysis analysis = Analyze(q, s, access);
  BoundedEvaluator bounded(&db);
  Result<AnswerSet> r = bounded.Evaluate(q, analysis, {{V("x"), Value::Int(1)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(*r->begin(), Tuple{Value::Int(10)});
  // Cross-check against the reference evaluator.
  FoEvaluator reference(&db);
  EXPECT_EQ(*r, reference.Evaluate(q, {{V("x"), Value::Int(1)}}));
}

TEST(BoundedEvalTest, DisjunctionExecution) {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("t", {"a", "b"});
  Database db(s);
  db.Insert("r", Tuple{Value::Int(1), Value::Int(10)});
  db.Insert("t", Tuple{Value::Int(1), Value::Int(20)});
  AccessSchema access;
  access.Add("r", {"a"}, 5);
  access.Add("t", {"a"}, 5);
  ASSERT_TRUE(access.BuildIndexes(&db, s).ok());
  FoQuery q = FQ("Q(x, y) := r(x, y) or t(x, y)", s);
  ControllabilityAnalysis analysis = Analyze(q, s, access);
  BoundedEvaluator bounded(&db);
  Result<AnswerSet> r = bounded.Evaluate(q, analysis, {{V("x"), Value::Int(1)}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

/// Property: wherever the analysis derives controllability, the bounded
/// executor agrees with the reference evaluator and respects the bound.
class BoundedVsNaiveProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundedVsNaiveProperty, AgreeOnConformingData) {
  Rng rng(GetParam());
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("t", {"a", "b"});
  // Build a conforming database: ≤3 tuples per key on both index attrs.
  Database db(s);
  for (int rel = 0; rel < 2; ++rel) {
    const char* name = rel == 0 ? "r" : "t";
    for (int64_t key = 0; key < 4; ++key) {
      uint64_t group = rng.Uniform(4);  // ≤ 3
      for (uint64_t g = 0; g < group; ++g) {
        db.Insert(name, Tuple{Value::Int(key),
                              Value::Int(static_cast<int64_t>(rng.Uniform(6)))});
      }
    }
  }
  AccessSchema access;
  access.Add("r", {"a"}, 3);
  access.Add("t", {"a"}, 3);
  access.Add("t", {"a", "b"}, 1);
  ASSERT_TRUE(access.BuildIndexes(&db, s).ok());

  const char* queries[] = {
      "Q(x, y) := r(x, y)",
      "Q(x, z) := exists y. r(x, y) and t(y, z)",
      "Q(x, y) := r(x, y) and not t(x, y)",
      "Q(x) := exists y. r(x, y) and t(x, y)",
      "Q(x, y) := r(x, y) and (y = 2 or y = 3)",
      "Q(x) := forall y. r(x, y) implies t(x, y)",
  };
  for (const char* text : queries) {
    FoQuery q = FQ(text, s);
    ControllabilityAnalysis analysis = Analyze(q, s, access);
    Variable x = V("x");
    if (!analysis.IsControlledBy({x})) continue;
    BoundedEvaluator bounded(&db);
    FoEvaluator reference(&db);
    for (int64_t p = 0; p < 4; ++p) {
      Binding params{{x, Value::Int(p)}};
      BoundedEvalStats stats;
      Result<AnswerSet> fast = bounded.Evaluate(q, analysis, params, &stats);
      ASSERT_TRUE(fast.ok()) << text;
      EXPECT_EQ(*fast, reference.Evaluate(q, params)) << text << " p=" << p;
      Result<double> bound = analysis.StaticFetchBound({x});
      ASSERT_TRUE(bound.ok());
      EXPECT_LE(static_cast<double>(stats.base_tuples_fetched), *bound) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedVsNaiveProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
}  // namespace scalein
