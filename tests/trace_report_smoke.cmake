# Smoke test for scripts/trace_report.py, run via `cmake -P` from ctest:
# drive the shell binary through the acceptance scenario (a bounded query,
# one governor trip, exit), post-mortem-dump on exit, then check that the
# report lists the tripped query. Variables passed in by tests/CMakeLists.txt:
#   SHELL_BIN  — path to the scalein_shell example binary
#   PYTHON     — Python3 interpreter
#   REPORT     — path to scripts/trace_report.py
#   WORK_DIR   — scratch directory for the script/dump files

set(script "${WORK_DIR}/trace_report_smoke_input.txt")
set(dump "${WORK_DIR}/trace_report_smoke_dump.json")
file(WRITE "${script}" "schema relation person(id, name, city)
schema relation friend(id1, id2)
access access friend(id1) N=50
access key person(id)
row person 1,\"ada\",\"NYC\"
row person 2,\"bob\",\"NYC\"
row friend 1,2
eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")
limit fetch=1
eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")
quit
")
file(REMOVE "${dump}")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env "SCALEIN_DUMP_PATH=${dump}" "${SHELL_BIN}"
  INPUT_FILE "${script}"
  RESULT_VARIABLE shell_rc
  OUTPUT_VARIABLE shell_out
  ERROR_VARIABLE shell_err)
if(NOT shell_rc EQUAL 0)
  message(FATAL_ERROR "shell session failed (rc=${shell_rc}): ${shell_err}")
endif()
if(NOT EXISTS "${dump}")
  message(FATAL_ERROR "shell exit did not write the post-mortem dump")
endif()

execute_process(
  COMMAND "${PYTHON}" "${REPORT}" "${dump}"
  RESULT_VARIABLE report_rc
  OUTPUT_VARIABLE report_out
  ERROR_VARIABLE report_err)
if(NOT report_rc EQUAL 0)
  message(FATAL_ERROR "trace_report.py failed (rc=${report_rc}): ${report_err}")
endif()
foreach(needle "dump reason: shell-exit" "[tripped]" "governor-trip"
        "within-bound")
  string(FIND "${report_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "report is missing '${needle}':\n${report_out}")
  endif()
endforeach()

# Offline certify: a fresh shell session (empty journal) re-verifies the
# certificates sealed by the first session straight from the dump file.
set(certify_script "${WORK_DIR}/trace_report_smoke_certify.txt")
file(WRITE "${certify_script}" "certify ${dump}
quit
")
execute_process(
  COMMAND "${SHELL_BIN}"
  INPUT_FILE "${certify_script}"
  RESULT_VARIABLE certify_rc
  OUTPUT_VARIABLE certify_out
  ERROR_VARIABLE certify_err)
if(NOT certify_rc EQUAL 0)
  message(FATAL_ERROR "offline certify failed (rc=${certify_rc}): ${certify_err}")
endif()
foreach(needle "2/2 certificates verify" "signature-ok" "tripped")
  string(FIND "${certify_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "offline certify output is missing '${needle}':\n${certify_out}")
  endif()
endforeach()
message(STATUS "trace_report smoke OK")
