#include "query/fo_to_ra.h"

#include <gtest/gtest.h>

#include "eval/fo_evaluator.h"
#include "eval/ra_evaluator.h"
#include "incremental/delta_rules.h"
#include "query/parser.h"
#include "workload/formula_gen.h"
#include "workload/update_gen.h"

namespace scalein {
namespace {

Schema GraphSchema() {
  Schema s;
  s.Relation("e", {"a", "b"}).Relation("v", {"a"});
  return s;
}

FoQuery FQ(const char* text, const Schema& s) {
  Result<FoQuery> q = ParseFoQuery(text, &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

/// Asserts the translation agrees with the reference evaluator on `db`
/// (which must have a nonempty active domain).
void CheckAgainstReference(const FoQuery& q, const Schema& s, Database* db) {
  Result<RaExpr> ra = FoToRa(q, s);
  ASSERT_TRUE(ra.ok()) << q.ToString() << ": " << ra.status().ToString();
  Relation via_ra = EvalRa(*ra, *db);
  FoEvaluator reference(db);
  AnswerSet expected = q.IsBoolean()
                           ? (reference.EvaluateBoolean(q)
                                  ? AnswerSet{Tuple{}}
                                  : AnswerSet{})
                           : reference.Evaluate(q);
  AnswerSet actual;
  for (const Tuple& t : via_ra.SortedTuples()) actual.insert(t);
  EXPECT_EQ(actual, expected) << q.ToString();
}

TEST(FoToRaTest, ConnectiveZoo) {
  Schema s = GraphSchema();
  Database db(s);
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("e", Tuple{Value::Int(2), Value::Int(3)});
  db.Insert("e", Tuple{Value::Int(3), Value::Int(3)});
  db.Insert("v", Tuple{Value::Int(1)});
  db.Insert("v", Tuple{Value::Int(3)});

  const char* queries[] = {
      "Q(x, y) := e(x, y)",
      "Q(x) := v(x) and not exists y. e(x, y)",        // sinks among v
      "Q(x) := v(x) or exists y. e(y, x)",
      "Q(x, y) := e(x, y) and x != y",
      "Q(x) := exists y. e(x, y) and not v(y)",
      "Q() := forall x. v(x) implies exists y. e(x, y)",
      "Q() := exists x. e(x, x)",
      "Q(x) := x = 3",
      "Q(x, y) := e(x, y) or e(y, x)",
      "Q(x) := forall y. e(x, y) implies x = y",
      "Q() := not exists x, y. e(x, y) and not e(y, x)",
  };
  for (const char* text : queries) {
    CheckAgainstReference(FQ(text, s), s, &db);
  }
}

TEST(FoToRaTest, AdomExprCollectsEveryColumn) {
  Schema s = GraphSchema();
  Database db(s);
  db.Insert("e", Tuple{Value::Int(7), Value::Int(8)});
  db.Insert("v", Tuple{Value::Int(9)});
  Result<RaExpr> adom = AdomExpr(s, "x");
  ASSERT_TRUE(adom.ok());
  Relation out = EvalRa(*adom, db);
  EXPECT_EQ(out.size(), 3u);
  for (int64_t c : {7, 8, 9}) {
    EXPECT_TRUE(out.Contains(Tuple{Value::Int(c)}));
  }
}

TEST(FoToRaTest, RejectsEmptySchemaAndIllFormedQueries) {
  Schema empty;
  EXPECT_FALSE(AdomExpr(empty, "x").ok());
  Schema s = GraphSchema();
  FoQuery bad;
  bad.name = "B";
  bad.head = {Variable::Named("zzz_unused")};
  bad.body = Formula::True();
  EXPECT_FALSE(FoToRa(bad, s).ok());
}

class FoToRaFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FoToRaFuzz, RandomFormulasTranslateFaithfully) {
  Rng rng(GetParam());
  FormulaGenConfig config;
  config.num_relations = 2;
  config.max_arity = 2;
  config.num_variables = 2;
  config.domain_size = 3;
  Schema schema = RandomSchema(config, &rng);
  for (int round = 0; round < 8; ++round) {
    Database db = RandomDatabase(schema, config, 6, &rng);
    if (db.ActiveDomain().empty()) continue;  // documented caveat
    FoQuery q = RandomFoQuery(schema, config, 1 + rng.Uniform(4), &rng);
    CheckAgainstReference(q, schema, &db);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoToRaFuzz,
                         ::testing::Values(3, 11, 29, 47, 83, 101));

TEST(FoToRaTest, FoQueriesMaintainableThroughGltDeltas) {
  // §5's premise via [14]: FO queries have effective maintenance queries.
  // Concretely: translate to RA, then ComputeDelta maintains the answer
  // under updates without recomputation.
  Schema s = GraphSchema();
  Database db(s);
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    db.Insert("e", Tuple{Value::Int(static_cast<int64_t>(rng.Uniform(5))),
                         Value::Int(static_cast<int64_t>(rng.Uniform(5)))});
    db.Insert("v", Tuple{Value::Int(static_cast<int64_t>(rng.Uniform(5)))});
  }
  FoQuery q = FQ("Q(x) := v(x) and not exists y. e(x, y)", s);
  Result<RaExpr> ra = FoToRa(q, s);
  ASSERT_TRUE(ra.ok());
  Relation materialized = EvalRa(*ra, db);

  for (int batch = 0; batch < 5; ++batch) {
    Update u = RandomUpdate(db, 2, 2, 5, &rng);
    Result<DeltaResult> delta = ComputeDelta(*ra, db, u);
    ASSERT_TRUE(delta.ok()) << u.ToString();
    materialized = ApplyDelta(materialized, *delta);
    ApplyUpdate(&db, u);
    Relation recomputed = EvalRa(*ra, db);
    EXPECT_TRUE(materialized.SetEquals(recomputed)) << "batch " << batch;
    // Cross-check against the FO semantics too.
    FoEvaluator reference(&db);
    AnswerSet expected = reference.Evaluate(q);
    EXPECT_EQ(materialized.size(), expected.size());
  }
}

}  // namespace
}  // namespace scalein
