#include "incremental/delta_qsi.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace scalein {
namespace {

Schema GraphSchema() {
  Schema s;
  s.Relation("e", {"a", "b"}).Relation("mark", {"a"});
  return s;
}

Cq Q(const char* text, const Schema& s) {
  Result<Cq> q = ParseCq(text, &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

std::vector<TupleRef> EdgeUniverse(int64_t n) {
  std::vector<TupleRef> out;
  for (int64_t a = 0; a < n; ++a) {
    for (int64_t b = 0; b < n; ++b) {
      out.push_back({"e", Tuple{Value::Int(a), Value::Int(b)}});
    }
  }
  return out;
}

TEST(DeltaQsiTest, SingleAtomQueryNeedsNoOldTuples) {
  // Q(x, y) :- e(x, y): a new answer's support is the inserted tuple itself.
  Schema s = GraphSchema();
  Database db(s);
  db.Insert("e", Tuple{Value::Int(0), Value::Int(1)});
  DeltaQsiOptions options;
  options.insertion_universe = EdgeUniverse(3);
  DeltaQsiDecision d =
      DecideDeltaQsiCqInsertions(Q("Q(x, y) :- e(x, y)", s), db, 0, 2, options);
  EXPECT_EQ(d.verdict, Verdict::kYes);
  EXPECT_EQ(d.worst_fetch, 0u);
}

TEST(DeltaQsiTest, JoinNeedsOldPartners) {
  // Q(x, z) :- e(x, y), e(y, z): a new edge can pair with existing edges, so
  // some old tuples must be accessible; M = 0 fails, a generous M succeeds.
  Schema s = GraphSchema();
  Database db(s);
  db.Insert("e", Tuple{Value::Int(0), Value::Int(1)});
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  Cq q = Q("Q(x, z) :- e(x, y), e(y, z)", s);
  DeltaQsiOptions options;
  options.insertion_universe = EdgeUniverse(3);
  DeltaQsiDecision no = DecideDeltaQsiCqInsertions(q, db, 0, 1, options);
  EXPECT_EQ(no.verdict, Verdict::kNo);
  ASSERT_TRUE(no.counterexample.has_value());
  DeltaQsiDecision yes = DecideDeltaQsiCqInsertions(q, db, 4, 1, options);
  EXPECT_EQ(yes.verdict, Verdict::kYes);
  EXPECT_GT(yes.worst_fetch, 0u);
  EXPECT_LE(yes.worst_fetch, 4u);
}

TEST(DeltaQsiTest, BudgetInBetweenIsTight) {
  Schema s = GraphSchema();
  Database db(s);
  // Star into vertex 0: new edge (0, z) pairs with every spoke.
  for (int64_t i = 1; i <= 3; ++i) {
    db.Insert("e", Tuple{Value::Int(i), Value::Int(0)});
  }
  Cq q = Q("Q(x, z) :- e(x, y), e(y, z)", s);
  DeltaQsiOptions options;
  options.insertion_universe = {
      {"e", Tuple{Value::Int(0), Value::Int(4)}},
  };
  // Inserting e(0,4) creates answers (1,4), (2,4), (3,4): each needs its own
  // old spoke: 3 old tuples needed.
  DeltaQsiDecision tight = DecideDeltaQsiCqInsertions(q, db, 3, 1, options);
  EXPECT_EQ(tight.verdict, Verdict::kYes);
  EXPECT_EQ(tight.worst_fetch, 3u);
  DeltaQsiDecision low = DecideDeltaQsiCqInsertions(q, db, 2, 1, options);
  EXPECT_EQ(low.verdict, Verdict::kNo);
}

TEST(DeltaQsiTest, PairsOfInsertionsJoinWithEachOther) {
  // k = 2: two fresh edges can join with each other, costing 0 old tuples.
  Schema s = GraphSchema();
  Database db(s);
  Cq q = Q("Q(x, z) :- e(x, y), e(y, z)", s);
  DeltaQsiOptions options;
  options.insertion_universe = EdgeUniverse(3);
  DeltaQsiDecision d = DecideDeltaQsiCqInsertions(q, db, 0, 2, options);
  EXPECT_EQ(d.verdict, Verdict::kYes);  // empty D: all supports are ∆-tuples
}

TEST(DeltaQsiTest, UpdateCapReportsUnknown) {
  Schema s = GraphSchema();
  Database db(s);
  db.Insert("e", Tuple{Value::Int(0), Value::Int(1)});
  Cq q = Q("Q(x, z) :- e(x, y), e(y, z)", s);
  DeltaQsiOptions options;
  options.insertion_universe = EdgeUniverse(4);
  options.max_updates = 2;
  DeltaQsiDecision d = DecideDeltaQsiCqInsertions(q, db, 100, 3, options);
  EXPECT_EQ(d.verdict, Verdict::kUnknown);
}

}  // namespace
}  // namespace scalein
