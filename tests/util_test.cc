#include <algorithm>

#include <gtest/gtest.h>

#include "query/printer.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace scalein {
namespace {

TEST(StatusTest, CodesAndMessages) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "ok");

  Status bad = Status::InvalidArgument("broken");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "invalid-argument: broken");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "resource-exhausted");
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

Result<int> Doubler(Result<int> in) {
  SI_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Doubler(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Doubler(Status::Internal("x"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(StringsTest, JoinSplitStrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a, b ,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringsTest, StrFormatAndHash) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
  uint64_t h1 = Fnv1a64("abc", 3);
  uint64_t h2 = Fnv1a64("abc", 3);
  uint64_t h3 = Fnv1a64("abd", 3);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(PrinterTest, TableAlignment) {
  TablePrinter table({"name", "count"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "1000"});
  std::string out = table.Render();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(12), "12");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace scalein
