// Randomized cross-validation of the three independent RA semantics in the
// library: the materializing evaluator, the FO translation run through the
// reference evaluator, and the GLT change-propagation engine.

#include <gtest/gtest.h>

#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "eval/fo_evaluator.h"
#include "eval/ra_evaluator.h"
#include "incremental/delta_rules.h"
#include "incremental/raa_rules.h"
#include "workload/formula_gen.h"
#include "workload/update_gen.h"

namespace scalein {
namespace {

Schema FuzzSchema() {
  Schema s;
  s.Relation("p", {"a", "b"});
  s.Relation("q", {"b", "c"});
  s.Relation("u", {"a"});
  return s;
}

class RaFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RaFuzz, EvalAgreesWithFoTranslation) {
  Rng rng(GetParam());
  Schema s = FuzzSchema();
  FormulaGenConfig config;
  config.domain_size = 3;
  for (int round = 0; round < 8; ++round) {
    RaExpr expr = RandomRaExpr(s, config, 1 + rng.Uniform(5), &rng);
    Database db = RandomDatabase(s, config, 8, &rng);
    Relation via_ra = EvalRa(expr, db);
    Result<FoQuery> fo = RaToFoQuery(expr, s);
    ASSERT_TRUE(fo.ok()) << expr.ToString();
    FoEvaluator fo_eval(&db);
    AnswerSet via_fo = fo_eval.Evaluate(*fo);
    AnswerSet via_ra_set;
    for (const Tuple& t : via_ra.SortedTuples()) via_ra_set.insert(t);
    EXPECT_EQ(via_ra_set, via_fo)
        << expr.ToString() << "\n"
        << db.ToString();
  }
}

TEST_P(RaFuzz, DeltasAgreeWithSemanticDefinition) {
  Rng rng(GetParam() + 1000);
  Schema s = FuzzSchema();
  FormulaGenConfig config;
  config.domain_size = 3;
  for (int round = 0; round < 8; ++round) {
    RaExpr expr = RandomRaExpr(s, config, 1 + rng.Uniform(5), &rng);
    Database db = RandomDatabase(s, config, 10, &rng);
    Update u = RandomUpdate(db, 1 + rng.Uniform(3), rng.Uniform(3), 3, &rng);

    Result<DeltaResult> delta = ComputeDelta(expr, db, u);
    ASSERT_TRUE(delta.ok()) << expr.ToString();

    Relation old_value = EvalRa(expr, db);
    Database db_new = db.Clone();
    ApplyUpdate(&db_new, u);
    Relation new_value = EvalRa(expr, db_new);

    Relation maintained = ApplyDelta(old_value, *delta);
    EXPECT_TRUE(maintained.SetEquals(new_value))
        << expr.ToString() << "\nupdate " << u.ToString();
    EXPECT_TRUE(delta->removed.IsSubsetOf(old_value)) << expr.ToString();
    for (size_t i = 0; i < delta->inserted.size(); ++i) {
      EXPECT_FALSE(old_value.Contains(delta->inserted.TupleAt(i)))
          << expr.ToString();
    }
  }
}

TEST_P(RaFuzz, RaaDerivationsAreSoundForFoControllability) {
  // Every (E, X) the RAA rules derive must be certified by the independent
  // FO controllability engine on the translated query.
  Rng rng(GetParam() + 2000);
  Schema s = FuzzSchema();
  FormulaGenConfig config;
  config.domain_size = 3;
  AccessSchema a;
  a.Add("p", {"a"}, 4);
  a.Add("q", {"b"}, 4);
  a.Add("u", {"a"}, 1);
  for (int round = 0; round < 8; ++round) {
    RaExpr expr = RandomRaExpr(s, config, 1 + rng.Uniform(4), &rng);
    Result<RaaAnalysis> raa = RaaAnalysis::Analyze(expr, s, a);
    ASSERT_TRUE(raa.ok()) << expr.ToString();
    if (raa->root().plain.empty()) continue;
    Result<FoQuery> fo = RaToFoQuery(expr, s);
    ASSERT_TRUE(fo.ok());
    Result<ControllabilityAnalysis> ctl =
        ControllabilityAnalysis::Analyze(fo->body, s, a);
    ASSERT_TRUE(ctl.ok());
    for (const AttrSet& x : raa->root().plain) {
      VarSet vars;
      for (const std::string& attr : x) vars.insert(Variable::Named(attr));
      EXPECT_TRUE(ctl->IsControlledBy(vars))
          << expr.ToString() << " X=" << AttrSetToString(x);
    }
  }
}

TEST_P(RaFuzz, Theorem54ExecutesDerivedClaims) {
  // End-to-end Theorem 5.4(1): for every derived (E, X), σ_{X=ā}(E) must be
  // *computable with bounded access* — execute the FO translation through the
  // bounded evaluator with the X-attributes fixed and compare against the
  // materializing RA evaluator filtered to the same values.
  Rng rng(GetParam() + 3000);
  Schema s = FuzzSchema();
  FormulaGenConfig config;
  config.domain_size = 3;
  AccessSchema a;
  a.Add("p", {"a"}, 4);
  a.Add("q", {"b"}, 4);
  a.Add("u", {"a"}, 1);
  for (int round = 0; round < 6; ++round) {
    RaExpr expr = RandomRaExpr(s, config, 1 + rng.Uniform(4), &rng);
    Database db = RandomDatabase(s, config, 10, &rng);
    Result<RaaAnalysis> raa = RaaAnalysis::Analyze(expr, s, a);
    ASSERT_TRUE(raa.ok());
    Result<FoQuery> fo = RaToFoQuery(expr, s);
    ASSERT_TRUE(fo.ok());
    Result<ControllabilityAnalysis> ctl =
        ControllabilityAnalysis::Analyze(fo->body, s, a);
    ASSERT_TRUE(ctl.ok());
    Relation materialized = EvalRa(expr, db);
    const std::vector<std::string>& attrs = expr.attributes();
    std::vector<Value> adom = db.ActiveDomain();
    if (adom.empty()) continue;

    for (const AttrSet& x : raa->root().plain) {
      Binding params;
      std::map<std::string, Value> fixed;
      for (const std::string& attr : x) {
        Value v = adom[rng.Uniform(adom.size())];
        params.emplace(Variable::Named(attr), v);
        fixed.emplace(attr, v);
      }
      BoundedEvaluator bounded(&db);
      BoundedEvalStats stats;
      Result<AnswerSet> fast = bounded.Evaluate(*fo, *ctl, params, &stats);
      ASSERT_TRUE(fast.ok()) << expr.ToString() << " X=" << AttrSetToString(x)
                             << "\n" << fast.status().ToString();
      // Reference: σ_{X=ā}(E) projected to the open columns.
      AnswerSet expected;
      for (size_t i = 0; i < materialized.size(); ++i) {
        TupleView row = materialized.TupleAt(i);
        bool match = true;
        Tuple open;
        for (size_t col = 0; col < attrs.size() && match; ++col) {
          auto it = fixed.find(attrs[col]);
          if (it != fixed.end()) {
            match = it->second == row[col];
          } else {
            open.push_back(row[col]);
          }
        }
        if (match) expected.insert(std::move(open));
      }
      EXPECT_EQ(*fast, expected)
          << expr.ToString() << " X=" << AttrSetToString(x);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaFuzz,
                         ::testing::Values(1, 7, 13, 42, 99, 123, 555, 1234));

}  // namespace
}  // namespace scalein
