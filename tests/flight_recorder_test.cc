#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "io/shell.h"
#include "obs/dump.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/failpoint.h"

namespace scalein::obs {
namespace {

/// Fixed clock for deterministic dump bytes: monotonically increasing but
/// reproducible across runs.
uint64_t FixedClock() {
  static uint64_t t = 0;
  return t += 1000;
}

uint64_t ZeroClock() { return 0; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Uninstalls the global recorder when a test exits, so a failing test does
/// not leak an installed sink into later tests.
struct GlobalRecorderGuard {
  ~GlobalRecorderGuard() { FlightRecorder::InstallGlobal(nullptr); }
};

TEST(FlightRecorderTest, AppendAndSnapshot) {
  FlightRecorder rec(8);
  rec.Append(EventKind::kQueryStart, "q1", {EventArg("bound", 100.0)});
  rec.Append(EventKind::kQueryFinish, "q1", {EventArg("fetched", uint64_t{7})});
  std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].kind, EventKind::kQueryStart);
  EXPECT_EQ(events[0].label, "q1");
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(rec.total_appended(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorderTest, WraparoundEvictsOldestFirst) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.Append(EventKind::kChaseStep, "e" + std::to_string(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_appended(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  // Strict FIFO: the survivors are the newest four, oldest → newest.
  std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
    EXPECT_EQ(events[i].label, "e" + std::to_string(6 + i));
  }
}

TEST(FlightRecorderTest, CompactAppendRendersNumericArgs) {
  FlightRecorder rec(8);
  rec.set_clock(&ZeroClock);
  rec.AppendCompact(EventKind::kQueryFinish, "bounded.eval",
                    {{"fetched", 7946057.0}, {"static_bound", 100.0},
                     {"tripped", 0.0}});
  std::string json = rec.ToJson();
  // Integral counters render exactly, not in %g's rounded form.
  EXPECT_NE(json.find("\"fetched\":7946057"), std::string::npos);
  EXPECT_EQ(json.find("e+06"), std::string::npos);
  EXPECT_NE(json.find("\"static_bound\":100"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"query-finish\""), std::string::npos);
}

TEST(FlightRecorderTest, DumpBytesDeterministicUnderFixedClock) {
  auto record = [](FlightRecorder* rec) {
    rec->Append(EventKind::kShellCommand, "eval");
    rec->Append(EventKind::kPlan, "abcd1234abcd1234",
                {EventArg("query", "Q(x) := r(x)")});
    rec->AppendCompact(EventKind::kQueryFinish, "bounded.eval",
                       {{"fetched", 7.0}, {"static_bound", 100.0}});
    rec->Append(EventKind::kGovernorTrip, "fetch",
                {EventArg("detail", "fetch budget"), EventArg("fetched",
                                                             uint64_t{100})});
  };
  FlightRecorder a(16);
  a.set_clock(&ZeroClock);
  FlightRecorder b(16);
  b.set_clock(&ZeroClock);
  record(&a);
  record(&b);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  // The joined dump is byte-identical too (metrics omitted: the registry is
  // not clocked).
  EXPECT_EQ(RenderDump("test", &a, nullptr, nullptr),
            RenderDump("test", &b, nullptr, nullptr));
}

TEST(FlightRecorderTest, FailpointFiresAreRecordedWhileInstalled) {
  GlobalRecorderGuard guard;
  util::Failpoints::Global().Clear();
  FlightRecorder rec(8);
  FlightRecorder::InstallGlobal(&rec);
  ASSERT_TRUE(util::Failpoints::Global().Configure("scan_next=error").ok());
  EXPECT_FALSE(SCALEIN_FAILPOINT("scan_next").ok());
  util::Failpoints::Global().Clear();
  FlightRecorder::InstallGlobal(nullptr);
  std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kFailpointFire);
  EXPECT_EQ(events[0].label, "scan_next");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].second, "\"error\"");
}

TEST(JournalTest, VerdictDerivation) {
  AccessCertificate cert;
  cert.static_bound = 100;
  cert.actual_fetches = 60;
  EXPECT_EQ(DeriveVerdict(cert), CertVerdict::kWithinBound);
  cert.actual_fetches = 101;
  EXPECT_EQ(DeriveVerdict(cert), CertVerdict::kExceeded);
  cert.static_bound = -1;
  EXPECT_EQ(DeriveVerdict(cert), CertVerdict::kNoStaticBound);
  cert.tripped = true;
  EXPECT_EQ(DeriveVerdict(cert), CertVerdict::kTripped);
}

TEST(JournalTest, SealAndVerifyDetectsTampering) {
  AccessCertificate cert;
  cert.query_fingerprint = Fingerprint("Q(x) := r(x)");
  cert.query_text = "Q(x) := r(x)";
  cert.static_bound = 100;
  cert.actual_fetches = 42;
  cert.index_lookups = 3;
  CertOp op;
  op.label = "atom(r)";
  op.tuples_fetched = 42;
  op.static_bound = 50;
  cert.ops.push_back(op);
  SealCertificate(&cert);
  EXPECT_EQ(cert.verdict, CertVerdict::kWithinBound);
  EXPECT_NE(cert.signature, 0u);
  EXPECT_TRUE(VerifyCertificate(cert));

  AccessCertificate forged = cert;
  forged.actual_fetches = 7;  // understate the fetch count
  EXPECT_FALSE(VerifyCertificate(forged));
  AccessCertificate relabeled = cert;
  relabeled.verdict = CertVerdict::kExceeded;  // wrong verdict, right counters
  EXPECT_FALSE(VerifyCertificate(relabeled));
}

TEST(JournalTest, RingEvictsOldestCertificates) {
  QueryJournal journal(2);
  for (int i = 0; i < 5; ++i) {
    AccessCertificate cert;
    cert.query_fingerprint = "fp" + std::to_string(i);
    SealCertificate(&cert);
    journal.Append(std::move(cert));
  }
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.dropped(), 3u);
  std::vector<AccessCertificate> certs = journal.certificates();
  ASSERT_EQ(certs.size(), 2u);
  EXPECT_EQ(certs[0].query_fingerprint, "fp3");
  EXPECT_EQ(certs[1].query_fingerprint, "fp4");
}

TEST(DumpTest, ParseMetricsDumpSpec) {
  std::string path;
  double secs = 0;
  ASSERT_TRUE(ParseMetricsDumpSpec("/tmp/m.jsonl:2.5", &path, &secs).ok());
  EXPECT_EQ(path, "/tmp/m.jsonl");
  EXPECT_DOUBLE_EQ(secs, 2.5);
  // The split is on the LAST colon: colon-bearing paths survive.
  ASSERT_TRUE(ParseMetricsDumpSpec("C:/m.jsonl:1", &path, &secs).ok());
  EXPECT_EQ(path, "C:/m.jsonl");
  EXPECT_FALSE(ParseMetricsDumpSpec("nocolon", &path, &secs).ok());
  EXPECT_FALSE(ParseMetricsDumpSpec("/tmp/m.jsonl:0", &path, &secs).ok());
  EXPECT_FALSE(ParseMetricsDumpSpec("/tmp/m.jsonl:abc", &path, &secs).ok());
}

TEST(DumpTest, MetricsDumperWritesFirstSnapshotSynchronously) {
  const std::string path = "test_metrics_dump.jsonl";
  std::remove(path.c_str());
  MetricsRegistry registry;
  registry.GetCounter("test.counter").Increment(3);
  MetricsDumper dumper;
  ASSERT_TRUE(dumper.Start(path, 3600.0, &registry).ok());
  EXPECT_TRUE(dumper.running());
  EXPECT_GE(dumper.snapshots(), 1u);
  dumper.Stop();
  EXPECT_FALSE(dumper.running());
  std::string contents = ReadFile(path);
  EXPECT_NE(contents.find("\"test.counter\": 3"), std::string::npos);
  // JSONL contract: exactly one physical line per snapshot (the registry's
  // pretty-printed JSON is flattened before appending).
  const size_t newlines =
      static_cast<size_t>(std::count(contents.begin(), contents.end(), '\n'));
  EXPECT_EQ(newlines, dumper.snapshots());
  std::remove(path.c_str());
  // Unwritable path fails loudly at Start, not silently in the background.
  MetricsDumper bad;
  EXPECT_FALSE(bad.Start("/nonexistent-dir/m.jsonl", 1.0, &registry).ok());
}

TEST(DumpTest, PostMortemWritesArmedFile) {
  const std::string path = "test_postmortem.json";
  std::remove(path.c_str());
  FlightRecorder rec(8);
  rec.set_clock(&FixedClock);
  rec.Append(EventKind::kShellCommand, "eval");
  QueryJournal journal;
  EXPECT_FALSE(WritePostMortem("before-arming"));
  ArmPostMortem(path, &rec, &journal, nullptr);
  EXPECT_TRUE(PostMortemArmed());
  EXPECT_TRUE(WritePostMortem("governor-trip"));
  DisarmPostMortem();
  EXPECT_FALSE(WritePostMortem("after-disarm"));
  std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("\"reason\":\"governor-trip\""), std::string::npos);
  EXPECT_NE(dump.find("\"recorder\":{"), std::string::npos);
  EXPECT_NE(dump.find("\"journal\":{"), std::string::npos);
  EXPECT_NE(dump.find("shell-command"), std::string::npos);
  std::remove(path.c_str());
}

/// End-to-end through the shell: a bounded query seals a within-bound
/// certificate; a governed query that trips seals a tripped one; the dump
/// carries the required distinct event kinds.
TEST(ShellObservabilityTest, EvalSealsCertificates) {
  Shell shell;
  auto must = [&shell](std::string_view line) {
    Result<std::string> out = shell.Execute(line);
    SI_CHECK_MSG(out.ok(), out.status().message().c_str());
    return *out;
  };
  must("schema relation person(id, name, city)");
  must("schema relation friend(id1, id2)");
  must("access access friend(id1) N=50");
  must("access key person(id)");
  must("row person 1,\"ada\",\"NYC\"");
  must("row person 2,\"bob\",\"NYC\"");
  must("row friend 1,2");
  const char* eval =
      "eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, "
      "\"NYC\")";
  must(eval);

  // Certificate: sealed, within bound, verifiable offline.
  std::vector<AccessCertificate> certs = shell.journal().certificates();
  ASSERT_EQ(certs.size(), 1u);
  EXPECT_EQ(certs[0].verdict, CertVerdict::kWithinBound);
  EXPECT_LE(certs[0].actual_fetches,
            static_cast<uint64_t>(certs[0].static_bound));
  EXPECT_TRUE(VerifyCertificate(certs[0]));

  // Now trip the governor: one fetch is never enough for this query.
  must("limit fetch=1");
  std::string out = must(eval);
  EXPECT_NE(out.find("tripped"), std::string::npos);
  certs = shell.journal().certificates();
  ASSERT_EQ(certs.size(), 2u);
  EXPECT_EQ(certs[1].verdict, CertVerdict::kTripped);
  EXPECT_TRUE(certs[1].tripped);
  EXPECT_FALSE(certs[1].trip_reason.empty());
  EXPECT_TRUE(VerifyCertificate(certs[1]));

  // journal / certify render both certificates.
  std::string journal_out = must("journal");
  EXPECT_NE(journal_out.find("2 certificate(s)"), std::string::npos);
  EXPECT_NE(journal_out.find("within-bound"), std::string::npos);
  EXPECT_NE(journal_out.find("tripped"), std::string::npos);
  std::string certify_out = must("certify");
  EXPECT_NE(certify_out.find("2/2 certificates verify"), std::string::npos);

  // The session's recorder saw the required distinct event kinds.
  std::set<EventKind> kinds;
  for (const FlightEvent& e : shell.recorder().events()) kinds.insert(e.kind);
  EXPECT_TRUE(kinds.count(EventKind::kShellCommand));
  EXPECT_TRUE(kinds.count(EventKind::kQueryStart));
  EXPECT_TRUE(kinds.count(EventKind::kQueryFinish));
  EXPECT_TRUE(kinds.count(EventKind::kPlan));
  EXPECT_TRUE(kinds.count(EventKind::kCertificate));
  EXPECT_TRUE(kinds.count(EventKind::kGovernorTrip));
  EXPECT_GE(kinds.size(), 6u);

  // dump writes the joined document.
  const std::string path = "test_shell_dump.json";
  std::remove(path.c_str());
  must("dump " + std::string(path));
  std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("\"reason\":\"manual\""), std::string::npos);
  EXPECT_NE(dump.find("\"certificates\":["), std::string::npos);
  EXPECT_NE(dump.find("governor-trip"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ShellObservabilityTest, SlowlogCommand) {
  Shell shell;
  EXPECT_NE(shell.Execute("slowlog")->find("off"), std::string::npos);
  EXPECT_NE(shell.Execute("slowlog 250")->find("250 ms"), std::string::npos);
  EXPECT_NE(shell.Execute("slowlog")->find("250 ms"), std::string::npos);
  EXPECT_NE(shell.Execute("slowlog off")->find("off"), std::string::npos);
  EXPECT_FALSE(shell.Execute("slowlog abc").ok());
}

TEST(ShellObservabilityTest, StatsWatchLifecycle) {
  const std::string path = "test_stats_watch.jsonl";
  std::remove(path.c_str());
  Shell shell;
  std::string off = *shell.Execute("stats watch off");
  EXPECT_NE(off.find("not running"), std::string::npos);
  std::string on = *shell.Execute("stats watch 3600 " + path);
  EXPECT_NE(on.find("watching"), std::string::npos);
  std::string stopped = *shell.Execute("stats watch off");
  EXPECT_NE(stopped.find("stopped"), std::string::npos);
  EXPECT_FALSE(ReadFile(path).empty());  // first snapshot was synchronous
  std::remove(path.c_str());
  EXPECT_FALSE(shell.Execute("stats watch -1").ok());
}

TEST(ShellObservabilityTest, ExplainQdsiAndAnalyzeRenderSpans) {
  Shell shell;
  auto must = [&shell](std::string_view line) {
    Result<std::string> out = shell.Execute(line);
    SI_CHECK_MSG(out.ok(), out.status().message().c_str());
    return *out;
  };
  must("schema relation friend(id1, id2)");
  must("access access friend(id1) N=50");
  must("row friend 1,2");
  std::string qdsi = must("explain qdsi 5 Q(x) :- friend(x, y)");
  EXPECT_NE(qdsi.find("spans:"), std::string::npos);
  EXPECT_NE(qdsi.find("qdsi.decide"), std::string::npos);
  EXPECT_NE(qdsi.find("verdict="), std::string::npos);
  EXPECT_NE(qdsi.find("work:"), std::string::npos);
  std::string analyze =
      must("explain analyze Q(x, y) := friend(x, y)");
  EXPECT_NE(analyze.find("controlled by {x}"), std::string::npos);
  EXPECT_NE(analyze.find("controllability.analyze"), std::string::npos);
}

}  // namespace
}  // namespace scalein::obs
