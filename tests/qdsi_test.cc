#include "core/qdsi.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "workload/formula_gen.h"

namespace scalein {
namespace {

Schema GraphSchema() {
  Schema s;
  s.Relation("e", {"a", "b"}).Relation("v", {"a"});
  return s;
}

Cq Q(const char* text) {
  Result<Cq> q = ParseCq(text);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

FoQuery FQ(const char* text) {
  Result<FoQuery> q = ParseFoQuery(text);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

Database Edges(std::vector<std::pair<int64_t, int64_t>> edges) {
  Database db(GraphSchema());
  for (auto [a, b] : edges) {
    db.Insert("e", Tuple{Value::Int(a), Value::Int(b)});
  }
  return db;
}

TEST(QdsiCqTest, WholeDatabaseFastPath) {
  Database db = Edges({{1, 2}, {3, 4}});
  QdsiDecision d = DecideQdsiCq(Q("Q(x) :- e(x, y)"), db, 2);
  EXPECT_EQ(d.verdict, Verdict::kYes);
  EXPECT_EQ(d.method, "whole-database");
}

TEST(QdsiCqTest, BooleanTableauBound) {
  Database db = Edges({{1, 2}, {2, 3}, {3, 4}, {4, 5}});
  // ‖Q‖ = 2 ≤ M = 2: O(1) yes per Corollary 3.2.
  QdsiDecision d = DecideQdsiCq(Q("Q() :- e(x, y), e(y, z)"), db, 2);
  EXPECT_EQ(d.verdict, Verdict::kYes);
  EXPECT_EQ(d.method, "boolean-tableau-bound");
  ASSERT_TRUE(d.witness.has_value());
  EXPECT_LE(d.witness->size(), 2u);
  EXPECT_TRUE(IsWitnessCq(Q("Q() :- e(x, y), e(y, z)"), db,
                          SubDatabase(db, *d.witness)));
}

TEST(QdsiCqTest, FalseBooleanHasEmptyWitness) {
  Database db = Edges({{1, 2}, {3, 4}});
  QdsiDecision d = DecideQdsiCq(Q("Q() :- e(x, x)"), db, 1);
  EXPECT_EQ(d.verdict, Verdict::kYes);
  ASSERT_TRUE(d.witness.has_value());
  EXPECT_TRUE(d.witness->empty());
}

TEST(QdsiCqTest, AnswerCountBound) {
  Database db = Edges({{1, 2}, {1, 3}, {2, 3}});
  // 3 distinct x-answers? answers are x ∈ {1, 2}; ‖Q‖ = 1; M = 2 suffices.
  Cq q = Q("Q(x) :- e(x, y)");
  QdsiDecision d = DecideQdsiCq(q, db, 2);
  EXPECT_EQ(d.verdict, Verdict::kYes);
  ASSERT_TRUE(d.witness.has_value());
  EXPECT_LE(d.witness->size(), 2u);
  EXPECT_TRUE(IsWitnessCq(q, db, SubDatabase(db, *d.witness)));
}

TEST(QdsiCqTest, ExactNoWhenEveryAnswerNeedsItsOwnTuple) {
  Database db = Edges({{1, 10}, {2, 20}, {3, 30}});
  Cq q = Q("Q(x) :- e(x, y)");
  QdsiDecision d = DecideQdsiCq(q, db, 2);
  EXPECT_EQ(d.verdict, Verdict::kNo);
  EXPECT_EQ(d.method, "support-cover");
}

TEST(QdsiCqTest, SharedTuplesAllowSmallWitness) {
  // All answers flow through the hub tuple e(0, 100): answers (x) for
  // x ∈ {1, 2, 3} via e(x, 0), e(0, 100).
  Database db = Edges({{1, 0}, {2, 0}, {3, 0}, {0, 100}});
  Cq q = Q("Q(x) :- e(x, y), e(y, z)");
  QdsiDecision d = DecideQdsiCq(q, db, 4 - 1 + 1);  // M = 4 = |D|... use 4
  EXPECT_EQ(d.verdict, Verdict::kYes);
  // Tight: 3 private tuples + 1 shared hub.
  QdsiDecision tight = DecideQdsiCq(q, db, 3);
  EXPECT_EQ(tight.verdict, Verdict::kNo);
}

TEST(QdsiUcqTest, AnswerCoveredThroughEitherDisjunct) {
  Database db(GraphSchema());
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("v", Tuple{Value::Int(1)});
  Result<Ucq> u = ParseUcq("Q(x) :- e(x, y)\nQ(x) :- v(x)\n");
  ASSERT_TRUE(u.ok());
  // Single answer (1), coverable by one tuple from either relation.
  QdsiDecision d = DecideQdsiUcq(*u, db, 1);
  EXPECT_EQ(d.verdict, Verdict::kYes);
  ASSERT_TRUE(d.witness.has_value());
  EXPECT_EQ(d.witness->size(), 1u);
}

TEST(QdsiFoTest, SubsetSearchFindsMinimumWitness) {
  Database db = Edges({{1, 2}, {2, 3}, {7, 7}});
  FoQuery q = FQ("Q() := exists x. e(x, x)");
  QdsiDecision d = DecideQdsiFo(q, db, 2);
  EXPECT_EQ(d.verdict, Verdict::kYes);
  ASSERT_TRUE(d.witness.has_value());
  EXPECT_EQ(d.witness->size(), 1u);
  EXPECT_TRUE(
      d.witness->count(TupleRef{"e", Tuple{Value::Int(7), Value::Int(7)}}));
}

TEST(QdsiFoTest, NonMonotoneQueryNeedsFullInput) {
  // "nonempty and no sinks" on a directed cycle: only D itself works
  // (the Proposition 3.6 fully-uses-input family).
  Database db = Edges({{1, 2}, {2, 3}, {3, 1}});
  FoQuery q = FQ(
      "Q() := (exists x, y. e(x, y)) and (forall x. "
      "((exists w. e(x, w) or e(w, x)) implies exists y. e(x, y)))");
  QdsiDecision d = DecideQdsiFo(q, db, 2);
  EXPECT_EQ(d.verdict, Verdict::kNo);
  QdsiDecision full = DecideQdsiFo(q, db, 3);
  EXPECT_EQ(full.verdict, Verdict::kYes);
  EXPECT_EQ(full.witness->size(), 3u);
}

TEST(QdsiFoTest, BudgetExhaustionReportsUnknown) {
  Database db = Edges({{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}});
  FoQuery q = FQ("Q(x) := exists y. e(x, y)");
  QdsiOptions options;
  options.max_subsets = 3;
  QdsiDecision d = DecideQdsiFo(q, db, 4, options);
  EXPECT_EQ(d.verdict, Verdict::kUnknown);
}

/// Property: on tiny instances, the CQ support-cover solver and the FO
/// subset-search solver agree (they decide the same problem).
class QdsiCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QdsiCrossCheck, CqSolverAgreesWithFoSubsetSearch) {
  Rng rng(GetParam());
  FormulaGenConfig config;
  config.num_relations = 2;
  config.max_arity = 2;
  config.num_variables = 3;
  config.domain_size = 3;
  Schema schema = RandomSchema(config, &rng);
  for (int round = 0; round < 4; ++round) {
    Database db = RandomDatabase(schema, config, 5, &rng);
    Cq q = RandomCq(schema, config, 1 + rng.Uniform(2), &rng);
    // Restrict to distinct-variable heads so the FO translation applies.
    VarSet seen;
    bool ok_head = true;
    for (const Term& t : q.head()) {
      if (!t.is_var() || !seen.insert(t.var()).second) {
        ok_head = false;
        break;
      }
    }
    if (!ok_head) continue;
    for (uint64_t m = 0; m <= db.TotalTuples(); ++m) {
      QdsiDecision via_cq = DecideQdsiCq(q, db, m);
      QdsiDecision via_fo = DecideQdsiFo(q.ToFoQuery(), db, m);
      ASSERT_NE(via_cq.verdict, Verdict::kUnknown);
      ASSERT_NE(via_fo.verdict, Verdict::kUnknown);
      EXPECT_EQ(via_cq.verdict, via_fo.verdict)
          << q.ToString() << " M=" << m << "\n"
          << db.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QdsiCrossCheck,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace scalein
