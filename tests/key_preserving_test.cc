#include "incremental/key_preserving.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace scalein {
namespace {

Schema EmpSchema() {
  Schema s;
  s.Relation("emp", {"eid", "dept"});
  s.Relation("dept", {"did", "budget"});
  return s;
}

AccessSchema Keys() {
  AccessSchema a;
  a.AddKey("emp", {"eid"});
  a.AddKey("dept", {"did"});
  return a;
}

Cq Q(const char* text, const Schema& s) {
  Result<Cq> q = ParseCq(text, &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

TEST(KeyPreservingTest, HeadCoveringAllKeysQualifies) {
  Schema s = EmpSchema();
  Cq q = Q("Q(e, d) :- emp(e, d), dept(d, b)", s);
  Result<bool> r = IsKeyPreserving(q, s, Keys());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(KeyPreservingTest, ProjectedAwayKeyDisqualifies) {
  Schema s = EmpSchema();
  // dept's key d stays, but emp's key e is projected away.
  Cq q = Q("Q(d) :- emp(e, d), dept(d, b)", s);
  Result<bool> r = IsKeyPreserving(q, s, Keys());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(KeyPreservingTest, ConstantKeyPositionsCount) {
  Schema s = EmpSchema();
  // emp's key is fixed to the constant 7: preserved without a head variable.
  Cq q = Q("Q(d) :- emp(7, d), dept(d, b)", s);
  Result<bool> r = IsKeyPreserving(q, s, Keys());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(KeyPreservingTest, NonKeyStatementsAreIgnored) {
  Schema s = EmpSchema();
  AccessSchema a;
  a.Add("emp", {"eid"}, 5);   // N = 5: an index, not a key
  a.AddKey("dept", {"did"});
  Cq q = Q("Q(e, d) :- emp(e, d), dept(d, b)", s);
  Result<bool> r = IsKeyPreserving(q, s, a);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(KeyPreservingTest, EveryOccurrenceMustBeCovered) {
  Schema s = EmpSchema();
  // Self-join: the second occurrence's key variable is existential.
  Cq q = Q("Q(e) :- emp(e, d), emp(e2, d)", s);
  Result<bool> r = IsKeyPreserving(q, s, Keys());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(KeyPreservingTest, UnknownRelationErrors) {
  Schema s = EmpSchema();
  Cq q("Q", {Term::Var(Variable::Named("x"))},
       {CqAtom{"ghost", {Term::Var(Variable::Named("x"))}}});
  EXPECT_FALSE(IsKeyPreserving(q, s, Keys()).ok());
}

}  // namespace
}  // namespace scalein
