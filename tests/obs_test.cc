#include "obs/explain.h"

#include <gtest/gtest.h>

#include "core/bounded_eval.h"
#include "exec/planner.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "workload/social_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

// ---------------------------------------------------------------------------
// JSON helpers

TEST(ObsJsonTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::JsonEscape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(obs::JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(ObsJsonTest, NumbersAreAlwaysValidJson) {
  EXPECT_EQ(obs::JsonNumber(42.0), "42");
  EXPECT_EQ(obs::JsonNumber(0.5), "0.5");
  // Non-finite values would break a JSON document.
  EXPECT_EQ(obs::JsonNumber(1.0 / 0.0), "0");
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(ObsMetricsTest, CountersGaugesHistograms) {
  obs::MetricsRegistry registry;
  registry.GetCounter("queries").Increment();
  registry.GetCounter("queries").Increment(4);
  EXPECT_EQ(registry.GetCounter("queries").value(), 5u);

  registry.GetGauge("budget_left").Set(-3);
  EXPECT_EQ(registry.GetGauge("budget_left").value(), -3);

  obs::Histogram& h = registry.GetHistogram("latency", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.5);
  EXPECT_EQ(h.bucket_counts(), (std::vector<uint64_t>{1, 1, 1}));
}

TEST(ObsMetricsTest, InstrumentPointersAreStable) {
  obs::MetricsRegistry registry;
  obs::Counter* first = &registry.GetCounter("a");
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("c" + std::to_string(i)).Increment();
  }
  EXPECT_EQ(first, &registry.GetCounter("a"));
}

// The one shared bucket-placement rule: Histogram::Observe and the workload
// aggregator both place through HistogramBucketIndex, so this pins the rule
// itself — first edge covering the value (inclusive), overflow = edges.size.
TEST(ObsMetricsTest, HistogramBucketIndexIsTheSharedPlacementRule) {
  const std::vector<double> edges = {1.0, 10.0, 100.0};
  EXPECT_EQ(obs::HistogramBucketIndex(edges, 0.5), 0u);
  EXPECT_EQ(obs::HistogramBucketIndex(edges, 1.0), 0u);  // inclusive edge
  EXPECT_EQ(obs::HistogramBucketIndex(edges, 1.5), 1u);
  EXPECT_EQ(obs::HistogramBucketIndex(edges, 10.0), 1u);
  EXPECT_EQ(obs::HistogramBucketIndex(edges, 100.0), 2u);
  EXPECT_EQ(obs::HistogramBucketIndex(edges, 1000.0), 3u);  // +inf overflow
  EXPECT_EQ(obs::HistogramBucketIndex({}, 42.0), 0u);

  // Histogram::Observe must agree with the helper, value for value.
  obs::Histogram h(edges);
  for (double v : {0.5, 1.0, 1.5, 10.0, 100.0, 1000.0}) h.Observe(v);
  EXPECT_EQ(h.bucket_counts(), (std::vector<uint64_t>{2, 2, 1, 1}));
}

// Prometheus text-exposition conformance: every series is announced by a
// # HELP line naming the original dotted metric, immediately followed by
// its # TYPE; histogram buckets are cumulative with +Inf last, then
// _sum/_count. This is the format GET /metrics ships verbatim.
TEST(ObsMetricsTest, PrometheusTextCarriesHelpAndTypeForEverySeries) {
  obs::MetricsRegistry registry;
  registry.GetCounter("serve.shed.small").Increment(2);
  registry.GetGauge("serve.queue_depth").Set(1);
  obs::Histogram& h = registry.GetHistogram("serve.e2e_ms.small", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(100.0);
  const std::string text = registry.ToPrometheusText();

  const char* kExpected[] = {
      "# HELP serve_shed_small scalein metric serve.shed.small\n"
      "# TYPE serve_shed_small counter\n"
      "serve_shed_small 2\n",
      "# HELP serve_queue_depth scalein metric serve.queue_depth\n"
      "# TYPE serve_queue_depth gauge\n"
      "serve_queue_depth 1\n",
      "# HELP serve_e2e_ms_small scalein metric serve.e2e_ms.small\n"
      "# TYPE serve_e2e_ms_small histogram\n",
      "serve_e2e_ms_small_bucket{le=\"1\"} 1\n"
      "serve_e2e_ms_small_bucket{le=\"10\"} 2\n"
      "serve_e2e_ms_small_bucket{le=\"+Inf\"} 3\n"
      "serve_e2e_ms_small_sum 105.5\n"
      "serve_e2e_ms_small_count 3\n",
  };
  for (const char* needle : kExpected) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
  }

  // Grammar sweep: every line is a comment or "<sanitized_name> <value>" —
  // no raw dots leak into series names.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.find(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string name = line.substr(0, sp);
    EXPECT_EQ(name.find('.'), std::string::npos) << line;
    EXPECT_FALSE(name.empty());
  }
}

TEST(ObsMetricsTest, JsonSnapshotIsSortedAndComplete) {
  obs::MetricsRegistry registry;
  registry.GetCounter("zeta").Increment(2);
  registry.GetCounter("alpha").Increment(1);
  registry.GetHistogram("lat", {1.0}).Observe(0.5);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"alpha\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"zeta\": 2"), std::string::npos);
  EXPECT_LT(json.find("alpha"), json.find("zeta"));
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": \"inf\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(ObsTraceTest, ScopedSpanRecordsEventWithArgs) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan span(&tracer, "plan.cq", "plan");
    ASSERT_TRUE(span.enabled());
    span.Arg("atoms", uint64_t{3});
    span.Arg("method", "greedy");
    span.Arg("exact", true);
  }
  std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "plan.cq");
  EXPECT_EQ(events[0].category, "plan");
  ASSERT_EQ(events[0].args.size(), 3u);
  EXPECT_EQ(events[0].args[0].second, "3");
  EXPECT_EQ(events[0].args[1].second, "\"greedy\"");
  EXPECT_EQ(events[0].args[2].second, "true");
}

TEST(ObsTraceTest, NullTracerIsANoOp) {
  obs::ScopedSpan span(nullptr, "x", "y");
  EXPECT_FALSE(span.enabled());
  span.Arg("ignored", uint64_t{1});  // must not crash
}

TEST(ObsTraceTest, ChromeTraceJsonShape) {
  obs::Tracer tracer;
  { obs::ScopedSpan span(&tracer, "bounded.evaluate", "core"); }
  std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bounded.evaluate\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE over a physical plan

Schema EmpSchema() {
  Schema s;
  s.Relation("emp", {"id", "dept", "city"});
  s.Relation("dept", {"dept", "budget"});
  return s;
}

Database EmpDb() {
  Database db(EmpSchema());
  db.Insert("emp", Tuple{Value::Int(1), Value::Str("eng"), Value::Str("NYC")});
  db.Insert("emp", Tuple{Value::Int(2), Value::Str("eng"), Value::Str("LA")});
  db.Insert("dept", Tuple{Value::Str("eng"), Value::Int(100)});
  return db;
}

RaExpr EmpJoinDept() {
  return RaExpr::Join(RaExpr::Relation("emp", {"id", "dept", "city"}),
                      RaExpr::Relation("dept", {"dept", "budget"}));
}

TEST(ObsExplainTest, PhysicalPlanTreeStructure) {
  Database db = EmpDb();
  exec::ExecContext ctx(&db);
  exec::Plan plan = exec::PlanRa(EmpJoinDept(), &ctx);
  Relation out =
      exec::DrainToRelation(plan.root.get(), plan.attributes.size());
  EXPECT_EQ(out.size(), 2u);

  std::vector<exec::OpCounters> ops = ctx.SnapshotOps();
  ASSERT_FALSE(ops.empty());
  // Exactly one root, every parent link points at another op in the forest
  // (the planner builds bottom-up, so a child's id may precede its parent's).
  size_t roots = 0;
  for (const exec::OpCounters& op : ops) {
    if (op.parent < 0) {
      ++roots;
    } else {
      ASSERT_LT(op.parent, static_cast<int32_t>(ops.size()));
      ASSERT_NE(op.parent, op.id);
    }
  }
  EXPECT_EQ(roots, 1u);

  std::string tree = obs::RenderOpTree(ops);
  // The join against a base relation plans as an index join over `dept` fed
  // by a scan of `emp`; the child renders indented under its parent.
  EXPECT_NE(tree.find("idx-join(dept)"), std::string::npos);
  EXPECT_NE(tree.find("\n  scan(emp)"), std::string::npos);
  EXPECT_NE(tree.find("rows=2"), std::string::npos);
}

TEST(ObsExplainTest, DisabledTimingCollectsNoWallTime) {
  Database db = EmpDb();
  exec::ExecContext ctx(&db);
  ASSERT_FALSE(ctx.timing_enabled());  // default: observation off
  exec::Plan plan = exec::PlanRa(EmpJoinDept(), &ctx);
  (void)exec::DrainToRelation(plan.root.get(), plan.attributes.size());
  for (const exec::OpCounters& op : ctx.SnapshotOps()) {
    EXPECT_EQ(op.open_ns, 0u) << op.label;
    EXPECT_EQ(op.next_ns, 0u) << op.label;
    EXPECT_EQ(op.next_calls, 0u) << op.label;
  }
  // And the rendered tree carries no time= column, so output is stable.
  EXPECT_EQ(obs::RenderOpTree(ctx.SnapshotOps()).find("time="),
            std::string::npos);
}

TEST(ObsExplainTest, EnabledTimingFillsWallTime) {
  Database db = EmpDb();
  exec::ExecContext ctx(&db);
  ctx.set_timing_enabled(true);
  exec::Plan plan = exec::PlanRa(EmpJoinDept(), &ctx);
  (void)exec::DrainToRelation(plan.root.get(), plan.attributes.size());
  std::vector<exec::OpCounters> ops = ctx.SnapshotOps();
  uint64_t total_calls = 0;
  for (const exec::OpCounters& op : ops) total_calls += op.next_calls;
  EXPECT_GT(total_calls, 0u);
}

TEST(ObsExplainTest, UntracedExecutionRecordsNoSpans) {
  // With no global tracer installed, running a query must not append trace
  // events anywhere — the instrumentation is inert, not buffering.
  ASSERT_EQ(obs::Tracer::Global(), nullptr);
  Database db = EmpDb();
  exec::ExecContext ctx(&db);
  EXPECT_EQ(ctx.tracer(), nullptr);
  exec::Plan plan = exec::PlanRa(EmpJoinDept(), &ctx);
  (void)exec::DrainToRelation(plan.root.get(), plan.attributes.size());
}

TEST(ObsExplainTest, InstalledTracerSeesPlanningSpans) {
  obs::Tracer tracer;
  obs::Tracer::InstallGlobal(&tracer);
  Database db = EmpDb();
  exec::ExecContext ctx(&db);  // captures the global tracer
  exec::Plan plan = exec::PlanRa(EmpJoinDept(), &ctx);
  (void)exec::DrainToRelation(plan.root.get(), plan.attributes.size());
  obs::Tracer::InstallGlobal(nullptr);
  bool saw_plan_span = false;
  for (const obs::TraceEvent& e : tracer.events()) {
    if (e.name == "plan.ra") saw_plan_span = true;
  }
  EXPECT_TRUE(saw_plan_span);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE over a bounded evaluation (Theorem 4.2 bound vs actual)

TEST(ObsExplainTest, BoundedEvaluationShowsStaticBoundNextToActual) {
  SocialConfig config;
  config.num_persons = 80;
  config.max_friends_per_person = 10;
  config.num_restaurants = 20;
  config.seed = 7;
  Schema schema = SocialSchema(false);
  Database db = GenerateSocial(config);
  AccessSchema access = SocialAccessSchema(config);
  ASSERT_TRUE(access.BuildIndexes(&db, schema).ok());

  Result<FoQuery> q1 = ParseFoQuery(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      &schema);
  ASSERT_TRUE(q1.ok());
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q1->body, schema, access);
  ASSERT_TRUE(analysis.ok());

  BoundedEvaluator evaluator(&db);
  BoundedEvalStats stats;
  stats.capture_ops = true;
  Result<AnswerSet> answers =
      evaluator.Evaluate(*q1, *analysis, {{V("p"), Value::Int(3)}}, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();

  // The derivation forest mirrors the formula: exists > and > two atoms,
  // each carrying its static per-node fetch bound.
  ASSERT_FALSE(stats.ops.empty());
  EXPECT_GE(stats.static_bound, 0.0);
  std::string text = obs::RenderExplainAnalyze(
      stats.ops, stats.base_tuples_fetched, stats.index_lookups,
      stats.static_bound);
  EXPECT_NE(text.find("static_bound="), std::string::npos);
  EXPECT_NE(text.find("atom(friend)"), std::string::npos);
  EXPECT_NE(text.find("atom(person)"), std::string::npos);
  EXPECT_NE(text.find("bound="), std::string::npos);
  // Actual fetches respect the Theorem 4.2 bound, per op and in total.
  double fetched_across_ops = 0;
  for (const exec::OpCounters& op : stats.ops) {
    ASSERT_GE(op.static_bound, 0.0) << op.label;
    fetched_across_ops += static_cast<double>(op.tuples_fetched);
  }
  EXPECT_LE(static_cast<double>(stats.base_tuples_fetched),
            stats.static_bound);
  EXPECT_EQ(fetched_across_ops,
            static_cast<double>(stats.base_tuples_fetched));
}

TEST(ObsExplainTest, BoundedEvaluationWithoutCaptureAddsNoOps) {
  SocialConfig config;
  config.num_persons = 40;
  config.seed = 7;
  Schema schema = SocialSchema(false);
  Database db = GenerateSocial(config);
  AccessSchema access = SocialAccessSchema(config);
  ASSERT_TRUE(access.BuildIndexes(&db, schema).ok());
  Result<FoQuery> q1 = ParseFoQuery(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      &schema);
  ASSERT_TRUE(q1.ok());
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q1->body, schema, access);
  ASSERT_TRUE(analysis.ok());
  BoundedEvaluator evaluator(&db);
  BoundedEvalStats stats;  // capture_ops defaults to false
  ASSERT_TRUE(evaluator
                  .Evaluate(*q1, *analysis, {{V("p"), Value::Int(3)}}, &stats)
                  .ok());
  EXPECT_TRUE(stats.ops.empty());
  EXPECT_GT(stats.base_tuples_fetched, 0u);  // accounting still works
}

TEST(ObsExplainTest, TotalsHeaderComparesActualToBound) {
  std::vector<exec::OpCounters> ops(1);
  ops[0].label = "scan(r)";
  ops[0].rows_out = 5;
  ops[0].tuples_fetched = 5;
  std::string text = obs::RenderExplainAnalyze(ops, 5, 0, 50.0);
  EXPECT_NE(text.find("total: fetched=5"), std::string::npos);
  EXPECT_NE(text.find("static_bound=50"), std::string::npos);
  EXPECT_NE(text.find("10.0% of bound"), std::string::npos);
  // Without a bound the comparison is omitted entirely.
  EXPECT_EQ(obs::RenderExplainAnalyze(ops, 5, 0, -1.0).find("static_bound"),
            std::string::npos);
}

}  // namespace
}  // namespace scalein
