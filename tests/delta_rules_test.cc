#include "incremental/delta_rules.h"

#include <gtest/gtest.h>

#include "eval/ra_evaluator.h"
#include "util/rng.h"
#include "workload/update_gen.h"

namespace scalein {
namespace {

Schema TwoRelSchema() {
  Schema s;
  s.Relation("p", {"a", "b"});
  s.Relation("q", {"b", "c"});
  return s;
}

TEST(UpdateTest, ValidationRules) {
  Database db(TwoRelSchema());
  db.Insert("p", Tuple{Value::Int(1), Value::Int(2)});
  Update ok;
  ok.AddInsertion("p", Tuple{Value::Int(3), Value::Int(4)});
  ok.AddDeletion("p", Tuple{Value::Int(1), Value::Int(2)});
  EXPECT_TRUE(ok.Validate(db).ok());
  EXPECT_EQ(ok.TotalTuples(), 2u);

  Update dup_insert;
  dup_insert.AddInsertion("p", Tuple{Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(dup_insert.Validate(db).ok());

  Update ghost_delete;
  ghost_delete.AddDeletion("p", Tuple{Value::Int(9), Value::Int(9)});
  EXPECT_FALSE(ghost_delete.Validate(db).ok());
}

TEST(UpdateTest, ApplyAndRevertRoundTrip) {
  Database db(TwoRelSchema());
  db.Insert("p", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("q", Tuple{Value::Int(2), Value::Int(3)});
  Database snapshot = db.Clone();
  Update u;
  u.AddInsertion("p", Tuple{Value::Int(5), Value::Int(6)});
  u.AddDeletion("q", Tuple{Value::Int(2), Value::Int(3)});
  ApplyUpdate(&db, u);
  EXPECT_TRUE(db.relation("p").Contains(Tuple{Value::Int(5), Value::Int(6)}));
  EXPECT_FALSE(db.relation("q").Contains(Tuple{Value::Int(2), Value::Int(3)}));
  RevertUpdate(&db, u);
  EXPECT_TRUE(db.Equals(snapshot));
}

/// Checks the GLT guarantees for one expression and one update:
///   removed = E(D) − E(D ⊕ ∆D), inserted = E(D ⊕ ∆D) − E(D).
void CheckDelta(const RaExpr& expr, const Database& db, const Update& u) {
  Result<DeltaResult> delta = ComputeDelta(expr, db, u);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString() << " " << expr.ToString();

  Relation old_value = EvalRa(expr, db);
  Database db_new = db.Clone();
  ApplyUpdate(&db_new, u);
  Relation new_value = EvalRa(expr, db_new);

  // Semantic deltas.
  Relation expected_removed(old_value.arity());
  for (size_t i = 0; i < old_value.size(); ++i) {
    if (!new_value.Contains(old_value.TupleAt(i))) {
      expected_removed.Insert(old_value.TupleAt(i));
    }
  }
  Relation expected_inserted(new_value.arity());
  for (size_t i = 0; i < new_value.size(); ++i) {
    if (!old_value.Contains(new_value.TupleAt(i))) {
      expected_inserted.Insert(new_value.TupleAt(i));
    }
  }
  EXPECT_TRUE(delta->removed.SetEquals(expected_removed))
      << expr.ToString() << "\nupdate " << u.ToString();
  EXPECT_TRUE(delta->inserted.SetEquals(expected_inserted))
      << expr.ToString() << "\nupdate " << u.ToString();

  // Minimality invariants (E∇ ⊆ E, E∆ ∩ E = ∅) and the maintenance identity.
  EXPECT_TRUE(delta->removed.IsSubsetOf(old_value));
  for (size_t i = 0; i < delta->inserted.size(); ++i) {
    EXPECT_FALSE(old_value.Contains(delta->inserted.TupleAt(i)));
  }
  Relation maintained = ApplyDelta(old_value, *delta);
  EXPECT_TRUE(maintained.SetEquals(new_value)) << expr.ToString();
}

std::vector<RaExpr> ExpressionZoo() {
  RaExpr p = RaExpr::Relation("p", {"a", "b"});
  RaExpr q = RaExpr::Relation("q", {"b", "c"});
  SelectionCondition cond;
  cond.conjuncts.push_back(SelectionAtom::AttrEqConst("a", Value::Int(1)));
  SelectionCondition neq;
  neq.conjuncts.push_back(SelectionAtom::AttrNeqAttr("a", "b"));
  RaExpr pb = RaExpr::Project(p, {"b"});
  RaExpr qb = RaExpr::Project(q, {"b"});
  return {
      p,
      RaExpr::Select(p, cond),
      RaExpr::Select(p, neq),
      pb,
      RaExpr::Union(pb, qb),
      RaExpr::Diff(pb, qb),
      RaExpr::Join(p, q),
      RaExpr::Project(RaExpr::Join(p, q), {"a", "c"}),
      RaExpr::Diff(RaExpr::Project(RaExpr::Join(p, q), {"b"}), qb),
      RaExpr::Rename(RaExpr::Join(p, q), {{"c", "z"}}),
  };
}

TEST(DeltaRulesTest, InsertOnlyUpdates) {
  Database db(TwoRelSchema());
  db.Insert("p", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("q", Tuple{Value::Int(2), Value::Int(3)});
  Update u;
  u.AddInsertion("p", Tuple{Value::Int(1), Value::Int(5)});
  u.AddInsertion("q", Tuple{Value::Int(5), Value::Int(9)});
  for (const RaExpr& expr : ExpressionZoo()) CheckDelta(expr, db, u);
}

TEST(DeltaRulesTest, DeleteOnlyUpdates) {
  Database db(TwoRelSchema());
  db.Insert("p", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("p", Tuple{Value::Int(4), Value::Int(2)});
  db.Insert("q", Tuple{Value::Int(2), Value::Int(3)});
  Update u;
  u.AddDeletion("p", Tuple{Value::Int(1), Value::Int(2)});
  for (const RaExpr& expr : ExpressionZoo()) CheckDelta(expr, db, u);
}

TEST(DeltaRulesTest, ProjectionSurvivesAlternativeDerivation) {
  // π_b(p) keeps b=2 alive through the second tuple: the delta must be empty.
  Database db(TwoRelSchema());
  db.Insert("p", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("p", Tuple{Value::Int(4), Value::Int(2)});
  Update u;
  u.AddDeletion("p", Tuple{Value::Int(1), Value::Int(2)});
  RaExpr pb = RaExpr::Project(RaExpr::Relation("p", {"a", "b"}), {"b"});
  Result<DeltaResult> delta = ComputeDelta(pb, db, u);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->removed.size(), 0u);
  EXPECT_EQ(delta->inserted.size(), 0u);
}

TEST(DeltaRulesTest, DiffReactsToRightSideInsertion) {
  // Inserting into E2 removes from E1 − E2.
  Database db(TwoRelSchema());
  db.Insert("p", Tuple{Value::Int(1), Value::Int(7)});
  Update u;
  u.AddInsertion("q", Tuple{Value::Int(7), Value::Int(0)});
  RaExpr diff = RaExpr::Diff(RaExpr::Project(RaExpr::Relation("p", {"a", "b"}), {"b"}),
                             RaExpr::Project(RaExpr::Relation("q", {"b", "c"}), {"b"}));
  Result<DeltaResult> delta = ComputeDelta(diff, db, u);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->removed.size(), 1u);
  EXPECT_TRUE(delta->removed.Contains(Tuple{Value::Int(7)}));
}

class DeltaRandomProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaRandomProperty, MixedRandomUpdates) {
  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    Database db(TwoRelSchema());
    // Random content.
    for (int i = 0; i < 12; ++i) {
      const char* rel = rng.Bernoulli(0.5) ? "p" : "q";
      db.Insert(rel, Tuple{Value::Int(static_cast<int64_t>(rng.Uniform(5))),
                           Value::Int(static_cast<int64_t>(rng.Uniform(5)))});
    }
    Update u = RandomUpdate(db, 1 + rng.Uniform(3), rng.Uniform(3), 5, &rng);
    for (const RaExpr& expr : ExpressionZoo()) CheckDelta(expr, db, u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaRandomProperty,
                         ::testing::Values(3, 14, 15, 92, 65, 35));

}  // namespace
}  // namespace scalein
