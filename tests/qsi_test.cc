#include "core/qsi.h"

#include <gtest/gtest.h>

#include "eval/cq_evaluator.h"
#include "query/parser.h"

namespace scalein {
namespace {

Cq Q(const char* text) {
  Result<Cq> q = ParseCq(text);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

TEST(QsiCqTest, TrivialQueryIsScaleIndependent) {
  QsiDecision d = DecideQsiCq(Q("Q() :- true"), 0);
  EXPECT_EQ(d.verdict, Verdict::kYes);
  EXPECT_EQ(d.method, "trivial");
}

TEST(QsiCqTest, DataSelectingIsNeverScaleIndependent) {
  Cq q = Q("Q(x) :- e(x, y)");
  QsiDecision d = DecideQsiCq(q, 5);
  EXPECT_EQ(d.verdict, Verdict::kNo);
  ASSERT_TRUE(d.counterexample.has_value());
  // The counterexample genuinely defeats M = 5: every answer needs its own
  // tuple and there are more than 5 answers.
  CqEvaluator eval(&*d.counterexample);
  EXPECT_GT(eval.EvaluateFull(q).size(), 5u);
  QdsiDecision probe = DecideQdsiCq(q, *d.counterexample, 5);
  EXPECT_EQ(probe.verdict, Verdict::kNo);
}

TEST(QsiCqTest, BooleanDecidedByCoreSize) {
  // Redundant atoms don't count: the core of this query has one atom.
  Cq q = Q("Q() :- e(x, y), e(x, z)");
  EXPECT_EQ(DecideQsiCq(q, 1).verdict, Verdict::kYes);
  EXPECT_EQ(DecideQsiCq(q, 0).verdict, Verdict::kNo);

  // A triangle does not collapse: core size 3.
  Cq triangle = Q("Q() :- e(a, b), e(b, c), e(c, a)");
  EXPECT_EQ(DecideQsiCq(triangle, 2).verdict, Verdict::kNo);
  EXPECT_EQ(DecideQsiCq(triangle, 3).verdict, Verdict::kYes);
}

TEST(QsiCqTest, BooleanCounterexampleIsTight) {
  Cq triangle = Q("Q() :- e(a, b), e(b, c), e(c, a)");
  QsiDecision d = DecideQsiCq(triangle, 2);
  ASSERT_TRUE(d.counterexample.has_value());
  QdsiDecision probe = DecideQdsiCq(triangle, *d.counterexample, 2);
  EXPECT_EQ(probe.verdict, Verdict::kNo);
  QdsiDecision enough = DecideQdsiCq(triangle, *d.counterexample, 3);
  EXPECT_EQ(enough.verdict, Verdict::kYes);
}

TEST(QsiUcqTest, PumpableDisjunctForcesNo) {
  Result<Ucq> u = ParseUcq("Q(x) :- e(x, y)\nQ(x) :- v(x)\n");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(DecideQsiUcq(*u, 3).verdict, Verdict::kNo);
}

TEST(QsiUcqTest, BooleanUcqCoreBound) {
  Result<Ucq> u = ParseUcq(
      "Q() :- e(x, y)\n"
      "Q() :- e(a, b), e(b, c), e(c, a)\n");
  ASSERT_TRUE(u.ok());
  // max core = 3 (triangle); M = 3 suffices for every database.
  EXPECT_EQ(DecideQsiUcq(*u, 3).verdict, Verdict::kYes);
  // M = 2: the triangle disjunct's frozen core is NOT a counterexample —
  // it satisfies the single-edge disjunct with one tuple. The sound checker
  // must not claim "no"; yes or unknown are both acceptable.
  QsiDecision d = DecideQsiUcq(*u, 2);
  EXPECT_NE(d.verdict, Verdict::kNo);
}

TEST(QsiFoTest, ConstantQueriesAreYes) {
  Result<FoQuery> q = ParseFoQuery("Q() := 1 = 1 or 2 = 3");
  ASSERT_TRUE(q.ok());
  Schema s;
  s.Relation("e", {"a", "b"});
  QsiDecision d = DecideQsiFo(*q, s, 0);
  EXPECT_EQ(d.verdict, Verdict::kYes);
  EXPECT_EQ(d.method, "constant-query");
}

TEST(QsiFoTest, CounterexampleSearchFindsNo) {
  Schema s;
  s.Relation("e", {"a", "b"});
  Result<FoQuery> q = ParseFoQuery("Q(x) := exists y. e(x, y)", &s);
  ASSERT_TRUE(q.ok());
  QsiFoOptions options;
  options.domain_size = 3;
  options.max_tuples = 3;
  // M = 1 fails on a database with two sources.
  QsiDecision d = DecideQsiFo(*q, s, 1, options);
  EXPECT_EQ(d.verdict, Verdict::kNo);
  ASSERT_TRUE(d.counterexample.has_value());
  QdsiDecision probe = DecideQdsiFo(*q, *d.counterexample, 1);
  EXPECT_EQ(probe.verdict, Verdict::kNo);
}

TEST(QsiFoTest, UndecidabilityMeansUnknownIsAcceptable) {
  Schema s;
  s.Relation("e", {"a", "b"});
  // A query that IS scale-independent for M ≥ 1 in the searched space; the
  // sound checker cannot prove it and must say unknown (never "no").
  Result<FoQuery> q = ParseFoQuery("Q() := exists x, y. e(x, y)", &s);
  ASSERT_TRUE(q.ok());
  QsiFoOptions options;
  options.domain_size = 2;
  options.max_tuples = 2;
  QsiDecision d = DecideQsiFo(*q, s, 1, options);
  EXPECT_EQ(d.verdict, Verdict::kUnknown);
}

TEST(Prop36Test, CycleQueryFullyUsesItsInput) {
  // Q = "nonempty ∧ no vertex with an incident edge lacks an out-edge":
  // on directed n-cycles every proper sub-database flips the truth value,
  // so the minimum witness is |D| — the query fully uses its input
  // (Proposition 3.6).
  Schema s;
  s.Relation("e", {"a", "b"});
  Result<FoQuery> q = ParseFoQuery(
      "Q() := (exists x, y. e(x, y)) and (forall x. "
      "((exists w. e(x, w) or e(w, x)) implies exists y. e(x, y)))",
      &s);
  ASSERT_TRUE(q.ok());
  for (int64_t n = 2; n <= 4; ++n) {
    Database db(s);
    for (int64_t i = 0; i < n; ++i) {
      db.Insert("e", Tuple{Value::Int(i), Value::Int((i + 1) % n)});
    }
    Result<uint64_t> min_witness = MinWitnessSizeFo(*q, db);
    ASSERT_TRUE(min_witness.ok());
    EXPECT_EQ(*min_witness, static_cast<uint64_t>(n)) << "cycle length " << n;
  }
}

TEST(Prop36Test, MonotoneBooleanDoesNotFullyUseInput) {
  Schema s;
  s.Relation("e", {"a", "b"});
  Result<FoQuery> q = ParseFoQuery("Q() := exists x, y. e(x, y)", &s);
  ASSERT_TRUE(q.ok());
  Database db(s);
  for (int64_t i = 0; i < 5; ++i) {
    db.Insert("e", Tuple{Value::Int(i), Value::Int(i + 1)});
  }
  Result<uint64_t> min_witness = MinWitnessSizeFo(*q, db);
  ASSERT_TRUE(min_witness.ok());
  EXPECT_EQ(*min_witness, 1u);
}

}  // namespace
}  // namespace scalein
