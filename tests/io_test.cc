#include "io/catalog.h"

#include <gtest/gtest.h>

namespace scalein {
namespace {

TEST(IoTest, ParseSchemaText) {
  Result<Schema> s = ParseSchemaText(
      "# catalog\n"
      "relation person(id, name, city)\n"
      "\n"
      "relation friend(id1, id2)   # edges\n");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(s->HasRelation("person"));
  EXPECT_EQ(s->FindRelation("friend")->arity(), 2u);
}

TEST(IoTest, ParseSchemaRejectsGarbage) {
  EXPECT_FALSE(ParseSchemaText("table person(id)").ok());
  EXPECT_FALSE(ParseSchemaText("relation person").ok());
  EXPECT_FALSE(ParseSchemaText("relation person()").ok());
  EXPECT_FALSE(
      ParseSchemaText("relation r(a)\nrelation r(b)\n").ok());  // duplicate
}

TEST(IoTest, ParseAccessSchemaText) {
  Result<Schema> s = ParseSchemaText(
      "relation person(id, name, city)\n"
      "relation friend(id1, id2)\n"
      "relation visit(id, rid, yy, mm, dd)\n");
  ASSERT_TRUE(s.ok());
  Result<AccessSchema> a = ParseAccessSchemaText(
      "access friend(id1) N=5000 T=2\n"
      "key person(id)\n"
      "access visit(yy -> yy, mm, dd) N=366\n"
      "fd visit: id, yy, mm, dd -> rid\n",
      *s);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_EQ(a->statements().size(), 4u);
  EXPECT_EQ(a->statements()[0].max_tuples, 5000u);
  EXPECT_DOUBLE_EQ(a->statements()[0].retrieval_time, 2.0);
  EXPECT_EQ(a->statements()[1].max_tuples, 1u);
  EXPECT_FALSE(a->statements()[2].is_plain());
  EXPECT_EQ(a->statements()[2].key_attrs, (std::vector<std::string>{"yy"}));
  EXPECT_EQ(a->statements()[3].max_tuples, 1u);  // fd
}

TEST(IoTest, AccessSchemaValidatedAgainstSchema) {
  Result<Schema> s = ParseSchemaText("relation r(a, b)\n");
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(ParseAccessSchemaText("access ghost(a) N=1\n", *s).ok());
  EXPECT_FALSE(ParseAccessSchemaText("access r(zz) N=1\n", *s).ok());
  EXPECT_FALSE(ParseAccessSchemaText("index r(a)\n", *s).ok());
}

TEST(IoTest, CsvValueTyping) {
  EXPECT_EQ(ParseCsvValue("42"), Value::Int(42));
  EXPECT_EQ(ParseCsvValue("-7"), Value::Int(-7));
  EXPECT_EQ(ParseCsvValue("NYC"), Value::Str("NYC"));
  EXPECT_EQ(ParseCsvValue("\"42\""), Value::Str("42"));  // quoted stays string
  EXPECT_EQ(ParseCsvValue("  hello "), Value::Str("hello"));
  EXPECT_EQ(ParseCsvValue("12ab"), Value::Str("12ab"));
  EXPECT_EQ(ParseCsvValue("-"), Value::Str("-"));
}

TEST(IoTest, LoadRelationCsvRoundTrip) {
  Result<Schema> s = ParseSchemaText("relation person(id, name, city)\n");
  ASSERT_TRUE(s.ok());
  Database db(*s);
  Status load = LoadRelationCsv(&db, "person",
                                "1,\"ada\",\"NYC\"\n"
                                "2,\"bob\",\"LA\"\n"
                                "# comment line\n"
                                "3,\"cyd\",\"NYC\"\n");
  ASSERT_TRUE(load.ok()) << load.ToString();
  EXPECT_EQ(db.relation("person").size(), 3u);
  EXPECT_TRUE(db.relation("person").Contains(
      Tuple{Value::Int(2), Value::Str("bob"), Value::Str("LA")}));

  // Render and re-load into a fresh database: identical content.
  std::string csv = RelationToCsv(db.relation("person"));
  Database db2(*s);
  ASSERT_TRUE(LoadRelationCsv(&db2, "person", csv).ok());
  EXPECT_TRUE(db.Equals(db2));
}

TEST(IoTest, LoadRejectsArityMismatch) {
  Result<Schema> s = ParseSchemaText("relation r(a, b)\n");
  ASSERT_TRUE(s.ok());
  Database db(*s);
  EXPECT_FALSE(LoadRelationCsv(&db, "r", "1,2,3\n").ok());
  EXPECT_FALSE(LoadRelationCsv(&db, "ghost", "1,2\n").ok());
}

TEST(IoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/scalein_io_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "relation r(a, b)\n").ok());
  Result<Schema> s = LoadSchemaFile(path);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->HasRelation("r"));
  EXPECT_FALSE(LoadSchemaFile(path + ".missing").ok());
}

}  // namespace
}  // namespace scalein
