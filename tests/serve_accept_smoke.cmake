# Serve acceptance scenario, run via `cmake -P` from ctest: a scripted
# scalein_served session walks one client through every admission verdict —
# admit, degrade, reject(no-static-bound), and a queue-timeout shed — then
# certifies the journal in-session, and a second (offline) shell re-verifies
# the journaled refusal verdicts from the file. Variables passed in by
# tests/CMakeLists.txt:
#   SERVED_BIN — path to the scalein_served example binary
#   SHELL_BIN  — path to the scalein_shell example binary
#   WORK_DIR   — scratch directory for catalog/script/journal files

set(catalog "${WORK_DIR}/serve_smoke_catalog.txt")
set(script "${WORK_DIR}/serve_smoke_script.txt")
set(journal "${WORK_DIR}/serve_smoke_journal.jsonl")
set(access_log "${WORK_DIR}/serve_smoke_access.jsonl")
file(REMOVE "${journal}" "${journal}.1" "${journal}.2")
file(REMOVE "${access_log}" "${access_log}.1" "${access_log}.2")

file(WRITE "${catalog}" "schema relation person(id, name, city)
schema relation friend(id1, id2)
schema relation secret(a, b)
access access friend(id1) N=50
access key person(id)
row person 1,\"ada\",\"NYC\"
row person 2,\"bob\",\"NYC\"
row person 3,\"cyd\",\"NYC\"
row friend 1,2
row friend 1,3
row secret 1,2
")

# Session budget 50: the bare friend scan (bound 50) admits, the friend-join
# (bound 100) exceeds the lease and degrades, the secret query has no static
# bound and rejects, and a synthetic busy slot turns the last arrival into a
# queue-timeout shed. The session is opened with a trace tag (echoed on
# every verdict) and one request overrides it with @req1.
file(WRITE "${script}" "a hello smoke
a eval p=1 F(p, id) := friend(p, id)
a eval @req1 p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")
a eval a=1 S(a, b) := secret(a, b)
a #busy 1
a eval p=1 F(p, id) := friend(p, id)
a #busy 0
a budget
a classes
a certify
a bye
quit
")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env
          "SCALEIN_JOURNAL_PATH=${journal}"
          "SCALEIN_ACCESS_LOG_PATH=${access_log}"
          "SCALEIN_SESSION_ID=serve-smoke"
          "SCALEIN_SLA_SESSION_BUDGET=50"
          "SCALEIN_SLA_MAX_RUNNING=1"
          "SCALEIN_SLA_QUEUE_TIMEOUT_MS=20"
          "${SERVED_BIN}" --script "${catalog}"
  INPUT_FILE "${script}"
  RESULT_VARIABLE served_rc
  OUTPUT_VARIABLE served_out
  ERROR_VARIABLE served_err)
if(NOT served_rc EQUAL 0)
  message(FATAL_ERROR
          "scripted serve session failed (rc=${served_rc}): "
          "${served_out}\n${served_err}")
endif()

# Every admission verdict must appear, each justified by its static bound;
# trace tags echo on the session banner and each verdict line, and the
# `classes` command renders the per-class tallies with the shed split out.
foreach(needle
        "session a open budget=50 tag=smoke"
        "admit bound=50 lease=50"
        "degrade bound=100 lease=48"
        " tag=req1"
        " tag=smoke"
        "reject(no-static-bound)"
        "reject(queue-timeout)"
        "retry-after=20ms"
        "classes: 4 request(s)"
        "  small n=3 admitted=1 degraded=1 rejected=0 shed=1 shed_rate=0.3333"
        "  huge n=1 admitted=0 degraded=0 rejected=1 shed=0 shed_rate=0.0000"
        "certificates verify"
        "session a closed")
  string(FIND "${served_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "serve transcript is missing '${needle}':\n${served_out}")
  endif()
endforeach()

if(NOT EXISTS "${journal}")
  message(FATAL_ERROR "serve session did not write the persistent journal")
endif()

# The structured access log: one JSONL record per request, tag-stamped.
if(NOT EXISTS "${access_log}")
  message(FATAL_ERROR "serve session did not write the access log")
endif()
file(READ "${access_log}" access_text)
foreach(needle
        "\"client_tag\":\"smoke\""
        "\"client_tag\":\"req1\""
        "\"action\":\"admit\""
        "\"action\":\"degrade\""
        "\"reject\":\"no-static-bound\""
        "\"reject\":\"queue-timeout\"")
  string(FIND "${access_text}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "access log is missing '${needle}':\n${access_text}")
  endif()
endforeach()

# Offline re-verification: the refusal verdicts the server sealed must
# survive a `certify <file>` round-trip in a fresh process (exit code 0).
set(certify_script "${WORK_DIR}/serve_smoke_certify.txt")
file(WRITE "${certify_script}" "certify ${journal}
quit
")
execute_process(
  COMMAND "${SHELL_BIN}"
  INPUT_FILE "${certify_script}"
  RESULT_VARIABLE certify_rc
  OUTPUT_VARIABLE certify_out)
if(NOT certify_rc EQUAL 0)
  message(FATAL_ERROR
          "offline certify of the serve journal failed "
          "(rc=${certify_rc}):\n${certify_out}")
endif()
foreach(needle "certificates verify" "tripped")
  string(FIND "${certify_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "offline certify output is missing '${needle}':\n${certify_out}")
  endif()
endforeach()

# The journal must carry the admission verdicts themselves (the trip_reason
# of a refusal certificate names the decision that justified it).
file(READ "${journal}" journal_text)
foreach(needle "admission: reject(no-static-bound)"
               "admission: reject(queue-timeout)")
  string(FIND "${journal_text}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "journal is missing the refusal verdict '${needle}':"
            "\n${journal_text}")
  endif()
endforeach()
message(STATUS "serve acceptance smoke OK")
