#include "core/approx.h"

#include <gtest/gtest.h>

#include "eval/cq_evaluator.h"
#include "query/parser.h"
#include "workload/setcover_gen.h"

namespace scalein {
namespace {

TEST(ApproxTest, FullBudgetGivesFullRecall) {
  SetCoverConfig config;
  config.num_elements = 12;
  config.num_sets = 5;
  config.planted_cover_size = 2;
  SetCoverInstance inst = GenerateSetCover(config);
  ApproxResult r =
      ApproximateCqAnswers(inst.query, inst.db, inst.db.TotalTuples());
  EXPECT_DOUBLE_EQ(r.Recall(), 1.0);
  EXPECT_EQ(r.answers.size(), r.exact_answers);
}

TEST(ApproxTest, ZeroBudgetGivesNothing) {
  SetCoverConfig config;
  SetCoverInstance inst = GenerateSetCover(config);
  ApproxResult r = ApproximateCqAnswers(inst.query, inst.db, 0);
  EXPECT_TRUE(r.answers.empty());
  EXPECT_TRUE(r.accessed.empty());
}

TEST(ApproxTest, AnswersAreAlwaysSound) {
  // Precision 1: every reported answer is a genuine answer (monotonicity).
  SetCoverConfig config;
  config.num_elements = 15;
  config.num_sets = 6;
  config.noise_memberships = 25;
  SetCoverInstance inst = GenerateSetCover(config);
  CqEvaluator eval(&inst.db);
  AnswerSet exact = eval.EvaluateFull(inst.query);
  for (uint64_t m : {3u, 6u, 9u, 12u}) {
    ApproxResult r = ApproximateCqAnswers(inst.query, inst.db, m);
    EXPECT_LE(r.accessed.size(), m);
    for (const Tuple& a : r.answers) {
      EXPECT_TRUE(exact.count(a)) << TupleToString(a);
    }
    // Sanity: evaluating Q over the accessed sub-database reproduces the
    // reported answers (they are derivable from what was touched).
    Database sub = SubDatabase(inst.db, r.accessed);
    CqEvaluator sub_eval(&sub);
    EXPECT_EQ(sub_eval.EvaluateFull(inst.query), r.answers);
  }
}

TEST(ApproxTest, RecallIsMonotoneInBudget) {
  SetCoverConfig config;
  config.num_elements = 20;
  config.num_sets = 8;
  config.planted_cover_size = 3;
  config.noise_memberships = 30;
  SetCoverInstance inst = GenerateSetCover(config);
  std::vector<RecallPoint> curve =
      RecallCurve(inst.query, inst.db, {0, 5, 10, 15, 20, 25, 100});
  double last = -1;
  for (const RecallPoint& p : curve) {
    EXPECT_GE(p.recall, last) << "budget " << p.budget;
    last = p.recall;
    EXPECT_LE(p.accessed, p.budget);
  }
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
}

TEST(ApproxTest, GreedySharesSupportTuples) {
  // All answers share the hub setrep tuple: with budget 1 + k we can cover
  // k answers, not k/2.
  SetCoverConfig config;
  config.num_elements = 10;
  config.num_sets = 1;
  config.planted_cover_size = 1;
  config.noise_memberships = 0;
  SetCoverInstance inst = GenerateSetCover(config);
  ApproxResult r = ApproximateCqAnswers(inst.query, inst.db, 5);
  // 1 setrep + 4 covers tuples → 4 answers.
  EXPECT_EQ(r.answers.size(), 4u);
  EXPECT_EQ(r.accessed.size(), 5u);
}

TEST(ApproxTest, EmptyAnswerSetHasRecallOne) {
  Schema s;
  s.Relation("e", {"a", "b"});
  Database db(s);
  Result<Cq> q = ParseCq("Q(x) :- e(x, x)", &s);
  ASSERT_TRUE(q.ok());
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  ApproxResult r = ApproximateCqAnswers(*q, db, 0);
  EXPECT_DOUBLE_EQ(r.Recall(), 1.0);
}

}  // namespace
}  // namespace scalein
