// AnalysisCache contract tests: repeated queries hit, DDL invalidates (both
// explicitly and via the environment fingerprint), fingerprint collisions are
// detected rather than served, and capacity evicts LRU-first.

#include "core/analysis_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "query/parser.h"
#include "workload/social_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

struct Env {
  SocialConfig config;
  Schema schema = SocialSchema(false);
  AccessSchema access;

  Env() {
    config.num_persons = 40;
    config.max_friends_per_person = 10;
    config.num_restaurants = 40;
    access = SocialAccessSchema(config);
  }
};

constexpr const char* kQ1 =
    "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")";

FoQuery FQ(const char* text, const Schema& s) {
  Result<FoQuery> q = ParseFoQuery(text, &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

TEST(AnalysisCacheTest, SecondLookupHitsAndSharesTheAnalysis) {
  Env env;
  FoQuery q = FQ(kQ1, env.schema);
  AnalysisCache cache;
  auto first = cache.GetOrAnalyze(q.body, kQ1, env.schema, env.access);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrAnalyze(q.body, kQ1, env.schema, env.access);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same shared derivation
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
  // The cached analysis is usable: Q1 is controlled by p.
  EXPECT_FALSE((*second)->MinimalControlSets().empty());
}

TEST(AnalysisCacheTest, DistinctQueriesAreDistinctEntries) {
  Env env;
  AnalysisCache cache;
  const char* q2 = "Q2(p, id) := friend(p, id)";
  FoQuery a = FQ(kQ1, env.schema);
  FoQuery b = FQ(q2, env.schema);
  ASSERT_TRUE(cache.GetOrAnalyze(a.body, kQ1, env.schema, env.access).ok());
  ASSERT_TRUE(cache.GetOrAnalyze(b.body, q2, env.schema, env.access).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(AnalysisCacheTest, InvalidateDropsEverything) {
  Env env;
  FoQuery q = FQ(kQ1, env.schema);
  AnalysisCache cache;
  ASSERT_TRUE(cache.GetOrAnalyze(q.body, kQ1, env.schema, env.access).ok());
  EXPECT_EQ(cache.size(), 1u);
  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  ASSERT_TRUE(cache.GetOrAnalyze(q.body, kQ1, env.schema, env.access).ok());
  EXPECT_EQ(cache.stats().misses, 2u);  // re-derived, not served stale
}

TEST(AnalysisCacheTest, EnvironmentDriftInvalidatesOnLookup) {
  // DDL that changes the access schema changes the environment fingerprint;
  // a lookup under the new environment must re-derive even without an
  // explicit Invalidate() call.
  Env env;
  FoQuery q = FQ(kQ1, env.schema);
  AnalysisCache cache;
  auto before = cache.GetOrAnalyze(q.body, kQ1, env.schema, env.access);
  ASSERT_TRUE(before.ok());
  const uint64_t fp_before = AnalysisCache::EnvFingerprint(env.schema,
                                                          env.access);

  env.access.Add("restr", {"city"}, 7);  // unrelated statement, new env
  const uint64_t fp_after = AnalysisCache::EnvFingerprint(env.schema,
                                                          env.access);
  EXPECT_NE(fp_before, fp_after);

  auto after = cache.GetOrAnalyze(q.body, kQ1, env.schema, env.access);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->get(), after->get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_GE(cache.stats().invalidations, 1u);
}

TEST(AnalysisCacheTest, FingerprintCollisionsServedAsMissWithoutPoisoning) {
  Env env;
  AnalysisCache cache;
  cache.set_key_hash_for_testing(
      +[](std::string_view) -> uint64_t { return 42; });  // everything collides
  const char* q2 = "Q2(p, id) := friend(p, id)";
  FoQuery a = FQ(kQ1, env.schema);
  FoQuery b = FQ(q2, env.schema);
  ASSERT_TRUE(cache.GetOrAnalyze(a.body, kQ1, env.schema, env.access).ok());
  // Same hash, different text: must re-derive b, must NOT overwrite or serve
  // a's entry.
  auto rb = cache.GetOrAnalyze(b.body, q2, env.schema, env.access);
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(cache.stats().collisions, 1u);
  EXPECT_EQ(cache.size(), 1u);  // the colliding derivation was not cached
  // a still hits.
  auto ra = cache.GetOrAnalyze(a.body, kQ1, env.schema, env.access);
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  // And b's answer was still correct despite the collision: Q2's body is a
  // single friend atom, controlled by p.
  EXPECT_FALSE((*rb)->MinimalControlSets().empty());
  cache.set_key_hash_for_testing(nullptr);
}

TEST(AnalysisCacheTest, CapacityEvictsLeastRecentlyUsed) {
  Env env;
  AnalysisCache cache(/*capacity=*/2);
  const char* qa = "Qa(p, id) := friend(p, id)";
  const char* qb = "Qb(p, name) := exists id. friend(p, id) and "
                   "person(id, name, \"NYC\")";
  const char* qc = "Qc(id, name) := person(id, name, \"NYC\")";
  FoQuery a = FQ(qa, env.schema);
  FoQuery b = FQ(qb, env.schema);
  FoQuery c = FQ(qc, env.schema);
  ASSERT_TRUE(cache.GetOrAnalyze(a.body, qa, env.schema, env.access).ok());
  ASSERT_TRUE(cache.GetOrAnalyze(b.body, qb, env.schema, env.access).ok());
  // Touch a so b becomes the LRU victim.
  ASSERT_TRUE(cache.GetOrAnalyze(a.body, qa, env.schema, env.access).ok());
  ASSERT_TRUE(cache.GetOrAnalyze(c.body, qc, env.schema, env.access).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // a survived; b was evicted.
  ASSERT_TRUE(cache.GetOrAnalyze(a.body, qa, env.schema, env.access).ok());
  EXPECT_EQ(cache.stats().hits, 2u);
  ASSERT_TRUE(cache.GetOrAnalyze(b.body, qb, env.schema, env.access).ok());
  EXPECT_EQ(cache.stats().misses, 4u);  // a, b, c, then b again
}

TEST(AnalysisCacheTest, ConcurrentFillsCoalesceIntoOneDerivation) {
  // Regression for the duplicate-derivation race: two threads missing on the
  // same key concurrently must produce exactly ONE derivation — the loser
  // blocks on the leader's in-flight fill and is served the same shared
  // object. The schedule is made deterministic with the test barrier: the
  // leader registers its in-flight entry, then spins until the follower has
  // coalesced (visible in stats) before deriving.
  Env env;
  FoQuery q = FQ(kQ1, env.schema);
  AnalysisCache cache;
  cache.set_fill_barrier_for_testing([&cache] {
    // Runs on the leader outside the cache lock, after the in-flight entry
    // is registered; stats() takes the lock, so this spin cannot deadlock
    // the follower's wait.
    while (cache.stats().coalesced < 1) std::this_thread::yield();
  });

  std::shared_ptr<const ControllabilityAnalysis> leader_result;
  std::thread leader([&] {
    auto r = cache.GetOrAnalyze(q.body, kQ1, env.schema, env.access);
    if (r.ok()) leader_result = *r;
  });
  // The follower must find the leader's in-flight entry; the barrier holds
  // the leader pre-derivation until the follower's coalesce is recorded.
  while (cache.stats().misses < 1) std::this_thread::yield();
  auto follower = cache.GetOrAnalyze(q.body, kQ1, env.schema, env.access);
  leader.join();
  cache.set_fill_barrier_for_testing(nullptr);

  ASSERT_TRUE(follower.ok());
  ASSERT_NE(leader_result, nullptr);
  EXPECT_EQ(follower->get(), leader_result.get());  // one shared derivation
  EXPECT_EQ(cache.stats().misses, 1u);     // exactly one derivation ran
  EXPECT_EQ(cache.stats().coalesced, 1u);  // the follower piggybacked
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AnalysisCacheTest, EmbeddedPlansKeyedByParameterSet) {
  SocialConfig config;
  config.dated_visits = true;
  Schema schema = SocialSchema(true);
  AccessSchema access = SocialAccessSchema(config);
  Result<Cq> q3 = ParseCq(
      "Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &schema);
  ASSERT_TRUE(q3.ok());
  const std::string text = "Q3...";
  AnalysisCache cache;
  auto py = cache.GetOrAnalyzeEmbedded(*q3, text, schema, access,
                                       {V("p"), V("yy")});
  ASSERT_TRUE(py.ok());
  EXPECT_TRUE((*py)->IsScaleIndependent());
  // Different parameter set → different entry, not a hit.
  auto p_only =
      cache.GetOrAnalyzeEmbedded(*q3, text, schema, access, {V("p")});
  ASSERT_TRUE(p_only.ok());
  EXPECT_FALSE((*p_only)->IsScaleIndependent());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
  // Same parameter set again → hit, same plan object.
  auto again = cache.GetOrAnalyzeEmbedded(*q3, text, schema, access,
                                          {V("p"), V("yy")});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(py->get(), again->get());
  EXPECT_EQ(cache.stats().hits, 1u);
}

}  // namespace
}  // namespace scalein
