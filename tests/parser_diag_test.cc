// Data-driven parser diagnostics: every file in tests/diag/ is one
// malformed query with the error substring the parser must report. The
// corpus pins down diagnostic *quality* (offsets, names, arities in the
// message), not just rejection — a regression that degrades "unknown
// relation 'q' at offset 9" to a bare "parse error" fails here.
//
// File format (see tests/diag/*.diag): '#' comment lines, then
//   kind: fo | cq
//   input: <query text>
//   want: <substring the error message must contain>
// The corpus directory is baked in via the SCALEIN_DIAG_DIR definition.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/parser.h"
#include "relational/schema.h"

namespace scalein {
namespace {

struct DiagCase {
  std::string file;
  std::string kind;
  std::string input;
  std::string want;
};

std::string ValueOf(const std::string& line, const char* key) {
  const std::string prefix = std::string(key) + ":";
  if (line.rfind(prefix, 0) != 0) return "";
  size_t start = prefix.size();
  while (start < line.size() && line[start] == ' ') ++start;
  return line.substr(start);
}

std::vector<DiagCase> LoadCorpus() {
  std::vector<DiagCase> cases;
  for (const auto& entry :
       std::filesystem::directory_iterator(SCALEIN_DIAG_DIR)) {
    if (entry.path().extension() != ".diag") continue;
    std::ifstream in(entry.path());
    DiagCase c;
    c.file = entry.path().filename().string();
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      if (std::string v = ValueOf(line, "kind"); !v.empty()) c.kind = v;
      if (std::string v = ValueOf(line, "input"); !v.empty()) c.input = v;
      if (std::string v = ValueOf(line, "want"); !v.empty()) c.want = v;
    }
    cases.push_back(std::move(c));
  }
  // Deterministic order regardless of directory enumeration.
  std::sort(cases.begin(), cases.end(),
            [](const DiagCase& a, const DiagCase& b) { return a.file < b.file; });
  return cases;
}

Schema TestSchema() {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("t", {"a", "b"});
  return s;
}

TEST(ParserDiagTest, CorpusIsSubstantial) {
  // The corpus is meant to grow; never let it silently shrink to nothing.
  EXPECT_GE(LoadCorpus().size(), 15u);
}

TEST(ParserDiagTest, EveryCaseIsWellFormed) {
  for (const DiagCase& c : LoadCorpus()) {
    SCOPED_TRACE(c.file);
    EXPECT_TRUE(c.kind == "fo" || c.kind == "cq") << "kind: " << c.kind;
    EXPECT_FALSE(c.input.empty());
    EXPECT_FALSE(c.want.empty());
  }
}

TEST(ParserDiagTest, MalformedQueriesReportTheExpectedDiagnostic) {
  Schema schema = TestSchema();
  for (const DiagCase& c : LoadCorpus()) {
    SCOPED_TRACE(c.file + ": " + c.input);
    Status status = [&] {
      if (c.kind == "cq") return ParseCq(c.input, &schema).status();
      return ParseFoQuery(c.input, &schema).status();
    }();
    ASSERT_FALSE(status.ok()) << "parser accepted a malformed query";
    EXPECT_NE(status.message().find(c.want), std::string::npos)
        << "got: " << status.message() << "\nwant substring: " << c.want;
  }
}

}  // namespace
}  // namespace scalein
