// Degradation contract of the resource governor across the engines: partial
// results carry the trip record, strict paths fail with typed statuses, and
// the shell renders both. The chaos schedules live in chaos_test.cc; these
// are the deterministic single-fault counterparts.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/bounded_eval.h"
#include "core/qdsi.h"
#include "core/witness.h"
#include "eval/cq_evaluator.h"
#include "exec/exec_context.h"
#include "exec/operators.h"
#include "exec/planner.h"
#include "incremental/maintainer.h"
#include "io/shell.h"
#include "obs/explain.h"
#include "query/parser.h"
#include "workload/social_gen.h"
#include "workload/update_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

struct Social {
  SocialConfig config;
  Schema schema = SocialSchema(false);
  Database db{Schema{}};
  AccessSchema access;

  explicit Social(uint64_t persons = 80) {
    config.num_persons = persons;
    config.max_friends_per_person = 8;
    config.num_restaurants = 30;
    config.avg_visits_per_person = 4;
    config.seed = 23;
    db = GenerateSocial(config);
    access = SocialAccessSchema(config);
    SI_CHECK(access.BuildIndexes(&db, schema).ok());
  }
};

FoQuery Q1(const Schema& s) {
  Result<FoQuery> q = ParseFoQuery(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

/// Pre-trips a governor through its cancellation token: Checkpoint consults
/// the flag only every kCheckInterval probes, so tests spin it into the
/// tripped state before handing it to an engine.
void CancelAndTrip(exec::ResourceGovernor* governor,
                   exec::CancellationToken token) {
  token.Cancel();
  for (uint32_t i = 0; i <= exec::ResourceGovernor::kCheckInterval; ++i) {
    if (!governor->Checkpoint()) break;
  }
  SI_CHECK(governor->tripped());
}

exec::ResourceGovernor CancelledGovernor() {
  exec::CancellationToken token;
  exec::GovernorLimits limits;
  limits.has_cancel = true;
  limits.cancel = token;
  exec::ResourceGovernor governor;
  governor.Arm(limits);
  CancelAndTrip(&governor, token);
  return governor;
}

TEST(DegradedBoundedEvalTest, TinyFetchBudgetYieldsPartialWithTrip) {
  Social social;
  FoQuery q1 = Q1(social.schema);
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q1.body, social.schema, social.access);
  ASSERT_TRUE(analysis.ok());
  // Pick a parameter whose evaluation actually needs more than one fetch (a
  // friendless p would complete within any budget).
  const HashIndex& friend_idx = social.db.relation("friend").EnsureIndex({0});
  int64_t p = -1;
  for (int64_t candidate = 0; candidate < 40; ++candidate) {
    Tuple key{Value::Int(candidate)};
    const std::vector<uint32_t>* bucket = friend_idx.Lookup(key);
    if (bucket != nullptr && bucket->size() >= 2) {
      p = candidate;
      break;
    }
  }
  ASSERT_GE(p, 0);
  Binding params{{V("p"), Value::Int(p)}};

  BoundedEvaluator full_eval(&social.db);
  Result<AnswerSet> full = full_eval.Evaluate(q1, *analysis, params);
  ASSERT_TRUE(full.ok());

  BoundedEvaluator tiny(&social.db);
  exec::GovernorLimits limits;
  limits.fetch_budget = 1;
  tiny.set_limits(limits);
  Result<exec::Degraded<AnswerSet>> degraded =
      tiny.EvaluateDegraded(q1, *analysis, params);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_FALSE(degraded->complete);
  EXPECT_EQ(degraded->trip.kind, exec::LimitKind::kFetchBudget);
  EXPECT_FALSE(degraded->ops.empty());  // tripping node is identifiable
  // Partial answers are a genuine subset of the full answer set.
  EXPECT_TRUE(std::includes(full->begin(), full->end(),
                            degraded->value.begin(), degraded->value.end()));

  // The strict path reports the same condition as a typed error.
  Result<AnswerSet> strict = tiny.Evaluate(q1, *analysis, params);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kResourceExhausted);
}

TEST(DegradedBoundedEvalTest, CleanRunIsCompleteAndEqual) {
  Social social;
  FoQuery q1 = Q1(social.schema);
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q1.body, social.schema, social.access);
  ASSERT_TRUE(analysis.ok());
  Binding params{{V("p"), Value::Int(3)}};
  BoundedEvaluator evaluator(&social.db);
  Result<AnswerSet> full = evaluator.Evaluate(q1, *analysis, params);
  ASSERT_TRUE(full.ok());
  Result<exec::Degraded<AnswerSet>> degraded =
      evaluator.EvaluateDegraded(q1, *analysis, params);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->complete);
  EXPECT_FALSE(degraded->trip.tripped());
  EXPECT_EQ(degraded->value, *full);
}

TEST(DegradedEmbeddedEvalTest, ApproxFallbackSuppliesAnswersOnTrip) {
  SocialConfig config;
  config.num_persons = 80;
  config.max_friends_per_person = 8;
  config.num_restaurants = 12;
  config.avg_visits_per_person = 14;
  config.num_cities = 2;
  config.num_years = 1;
  config.dated_visits = true;
  config.seed = 17;
  Schema schema = SocialSchema(true);
  Database db = GenerateSocial(config);
  AccessSchema access = SocialAccessSchema(config);
  ASSERT_TRUE(access.BuildIndexes(&db, schema).ok());
  Result<Cq> q3 = ParseCq(
      "Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &schema);
  ASSERT_TRUE(q3.ok());
  Result<EmbeddedCqAnalysis> analysis = EmbeddedCqAnalysis::Analyze(
      *q3, schema, access, {V("p"), V("yy")});
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->IsScaleIndependent());

  BoundedEvaluator evaluator(&db);
  exec::GovernorLimits limits;
  limits.fetch_budget = 1;  // far below the chase's needs: must trip
  evaluator.set_limits(limits);
  // A p with at least two friends guarantees the very first chase fetch
  // already exceeds the budget.
  const HashIndex& friend_idx = db.relation("friend").EnsureIndex({0});
  int64_t p = -1;
  for (int64_t candidate = 0; candidate < 40; ++candidate) {
    Tuple key{Value::Int(candidate)};
    const std::vector<uint32_t>* bucket = friend_idx.Lookup(key);
    if (bucket != nullptr && bucket->size() >= 2) {
      p = candidate;
      break;
    }
  }
  ASSERT_GE(p, 0);
  Binding params{{V("p"), Value::Int(p)},
                 {V("yy"), Value::Int(static_cast<int64_t>(config.first_year))}};

  Result<exec::Degraded<AnswerSet>> degraded = evaluator.EvaluateEmbeddedDegraded(
      *analysis, params, /*stats=*/nullptr, /*fallback_to_approx=*/true);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_FALSE(degraded->complete);
  EXPECT_TRUE(degraded->trip.tripped());
  EXPECT_EQ(degraded->fallback, "approx");

  // Without the fallback the partial embedded answer set is empty (the chase
  // emits nothing until fully derived) but the trip is still structured.
  Result<exec::Degraded<AnswerSet>> no_fallback =
      evaluator.EvaluateEmbeddedDegraded(*analysis, params, nullptr, false);
  ASSERT_TRUE(no_fallback.ok());
  EXPECT_FALSE(no_fallback->complete);
  EXPECT_TRUE(no_fallback->fallback.empty());
}

TEST(DegradedExecTest, OutputRowCapYieldsPartialRelation) {
  Schema schema;
  schema.Relation("emp", {"id", "dept", "city"});
  Database db(schema);
  db.Insert("emp", Tuple{Value::Int(1), Value::Str("eng"), Value::Str("NYC")});
  db.Insert("emp", Tuple{Value::Int(2), Value::Str("eng"), Value::Str("LA")});
  db.Insert("emp", Tuple{Value::Int(3), Value::Str("ops"), Value::Str("NYC")});

  exec::ExecContext ctx(&db);
  exec::GovernorLimits limits;
  limits.output_row_cap = 1;
  ctx.set_limits(limits);
  exec::Plan plan =
      exec::PlanRa(RaExpr::Relation("emp", {"id", "dept", "city"}), &ctx);
  exec::Degraded<Relation> out =
      exec::DrainToRelationDegraded(plan.root.get(), plan.attributes.size());
  EXPECT_FALSE(out.complete);
  EXPECT_EQ(out.trip.kind, exec::LimitKind::kOutputRows);
  // The row that tripped the cap is not part of the partial answer.
  EXPECT_EQ(out.value.size(), 1u);
  ASSERT_FALSE(out.ops.empty());

  // The EXPLAIN ANALYZE rendering marks the partial result and tags the
  // tripping operator in the tree.
  std::string rendered = obs::RenderExplainAnalyze(
      out.ops, out.base_tuples_fetched, out.index_lookups,
      /*static_bound=*/-1.0, out.trip);
  EXPECT_NE(rendered.find("[PARTIAL]"), std::string::npos);
  EXPECT_NE(rendered.find("tripped: output-rows"), std::string::npos);
  EXPECT_NE(rendered.find("<-- tripped"), std::string::npos);
}

TEST(DegradedWitnessTest, TrippedGovernorStopsSearchInexact) {
  Schema schema;
  schema.Relation("r", {"a", "b"});
  Database db(schema);
  for (int64_t i = 0; i < 3; ++i) {
    db.Insert("r", Tuple{Value::Int(i), Value::Int(10 + i)});
    db.Insert("r", Tuple{Value::Int(i), Value::Int(20 + i)});
  }
  Result<Cq> q = ParseCq("q(x) :- r(x, y)", &schema);
  ASSERT_TRUE(q.ok());

  exec::ResourceGovernor governor = CancelledGovernor();
  MinWitnessResult capped =
      MinimumWitnessCq(*q, db, /*budget=*/6, 64, &governor);
  EXPECT_FALSE(capped.exact);

  MinWitnessResult free_search = MinimumWitnessCq(*q, db, /*budget=*/6);
  EXPECT_TRUE(free_search.exact);
  ASSERT_TRUE(free_search.witness.has_value());
  EXPECT_EQ(free_search.witness->size(), 3u);  // one support per distinct x
}

TEST(DegradedQdsiTest, TrippedGovernorDegradesToUnknown) {
  Schema schema;
  schema.Relation("r", {"a", "b"});
  Database db(schema);
  for (int64_t i = 0; i < 3; ++i) {
    db.Insert("r", Tuple{Value::Int(i), Value::Int(10 + i)});
    db.Insert("r", Tuple{Value::Int(i), Value::Int(20 + i)});
  }
  Result<Cq> q = ParseCq("q(x) :- r(x, y)", &schema);
  ASSERT_TRUE(q.ok());

  // m below |Q(D)|·‖Q‖ and |D| forces the support-cover search, which must
  // degrade to kUnknown (a prefix cover would be an unsound yes/no).
  exec::ResourceGovernor governor = CancelledGovernor();
  QdsiOptions options;
  options.governor = &governor;
  QdsiDecision capped = DecideQdsiCq(*q, db, /*m=*/2, options);
  EXPECT_EQ(capped.verdict, Verdict::kUnknown);

  QdsiDecision free_run = DecideQdsiCq(*q, db, /*m=*/2);
  EXPECT_NE(free_run.verdict, Verdict::kUnknown);
}

TEST(DegradedMaintainerTest, OneTupleBudgetFailsResourceExhausted) {
  Social social(120);
  AccessSchema access = social.access;
  access.Add("visit", {"id"}, 64);
  ASSERT_TRUE(access.BuildIndexes(&social.db, social.schema).ok());
  Result<Cq> q2 = ParseCq(
      "Q2(p, rn) :- friend(p, id), visit(id, rid), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &social.schema);
  ASSERT_TRUE(q2.ok());
  Result<IncrementalMaintainer> m =
      IncrementalMaintainer::Create(*q2, social.schema, access, {V("p")});
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  Binding params{{V("p"), Value::Int(3)}};
  Result<AnswerSet> answers = m->InitialAnswers(&social.db, params);
  ASSERT_TRUE(answers.ok());

  exec::GovernorLimits limits;
  limits.fetch_budget = 1;  // each residual evaluation needs several lookups
  m->set_limits(limits);
  Rng rng(5);
  Update u = VisitInsertions(social.db, social.config, 20, &rng);
  Status s = m->Maintain(&social.db, u, params, &*answers, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);

  // Restoring a workable envelope restores maintenance (fresh baseline: the
  // failed attempt may have partially applied the batch).
  m->set_limits(exec::GovernorLimits{});
  Result<AnswerSet> fresh = m->InitialAnswers(&social.db, params);
  ASSERT_TRUE(fresh.ok());
  Update u2 = VisitInsertions(social.db, social.config, 5, &rng);
  EXPECT_TRUE(m->Maintain(&social.db, u2, params, &*fresh, nullptr).ok());
}

TEST(ShellGovernorTest, LimitCommandControlsTheEnvelope) {
  Shell shell;
  EXPECT_EQ(*shell.Execute("limit"), "no limits set\n");
  ASSERT_TRUE(shell.Execute("limit fetch=2 deadline=5000 rows=10").ok());
  std::string shown = *shell.Execute("limit");
  EXPECT_NE(shown.find("fetch=2"), std::string::npos);
  EXPECT_NE(shown.find("deadline=5000ms"), std::string::npos);
  EXPECT_NE(shown.find("rows=10"), std::string::npos);
  ASSERT_TRUE(shell.Execute("limit off").ok());
  EXPECT_EQ(*shell.Execute("limit"), "no limits set\n");
  EXPECT_FALSE(shell.Execute("limit frobs=3").ok());
  EXPECT_FALSE(shell.Execute("limit fetch=abc").ok());
}

Shell LoadedShell() {
  Shell shell;
  auto must = [&shell](std::string_view line) {
    Result<std::string> out = shell.Execute(line);
    SI_CHECK_MSG(out.ok(), out.status().message().c_str());
  };
  must("schema relation person(id, name, city)");
  must("schema relation friend(id1, id2)");
  must("access access friend(id1) N=50");
  must("access key person(id)");
  must("row person 1,\"ada\",\"NYC\"");
  must("row person 2,\"bob\",\"LA\"");
  must("row person 3,\"cyd\",\"NYC\"");
  must("row friend 1,2");
  must("row friend 1,3");
  return shell;
}

TEST(ShellGovernorTest, EvalDegradesAndReportsTheTrip) {
  Shell shell = LoadedShell();
  ASSERT_TRUE(shell.Execute("limit fetch=1").ok());
  Result<std::string> out = shell.Execute(
      "eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, "
      "\"NYC\")");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("partial"), std::string::npos);
  EXPECT_NE(out->find("tripped: fetch-budget"), std::string::npos);
}

TEST(ShellGovernorTest, ExplainRendersThePartialTree) {
  Shell shell = LoadedShell();
  ASSERT_TRUE(shell.Execute("limit fetch=1").ok());
  Result<std::string> out = shell.Execute(
      "explain p=1 Q(p, name) := exists id. friend(p, id) and person(id, "
      "name, \"NYC\")");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("[PARTIAL]"), std::string::npos);
  EXPECT_NE(out->find("tripped: fetch-budget"), std::string::npos);
  EXPECT_NE(out->find("partial"), std::string::npos);
}

TEST(ShellGovernorTest, StatsPromExposesTripCounters) {
  Shell shell = LoadedShell();
  ASSERT_TRUE(shell.Execute("limit fetch=1").ok());
  ASSERT_TRUE(shell
                  .Execute("eval p=1 Q(p, name) := exists id. friend(p, id) "
                           "and person(id, name, \"NYC\")")
                  .ok());
  Result<std::string> prom = shell.Execute("stats prom");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("# TYPE shell_queries counter"), std::string::npos);
  EXPECT_NE(prom->find("shell_governor_trips_fetch_budget 1"),
            std::string::npos);
  EXPECT_NE(prom->find("shell_eval_latency_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_FALSE(shell.Execute("stats bogus").ok());
}

}  // namespace
}  // namespace scalein
