// Whole-engine soundness fuzz for §4: on random databases with empirically
// derived access schemas (declared N = observed max group size, so the
// database conforms by construction), every controllability derivation the
// engine produces must execute correctly — bounded answers equal the
// reference active-domain semantics and the fetch count stays within the
// static bound. This is the Theorem 4.2 statement as a property test.

#include <gtest/gtest.h>

#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "eval/fo_evaluator.h"
#include "workload/formula_gen.h"

namespace scalein {
namespace {

/// Derives an access schema whose statements are true of `db` by
/// construction: for each relation, the full key set and a few random proper
/// subsets, each with the observed maximum bucket size as its N.
AccessSchema EmpiricalAccessSchema(Database* db, const Schema& schema,
                                   Rng* rng) {
  AccessSchema access;
  for (const RelationSchema& rs : schema.relations()) {
    Relation& rel = db->relation(rs.name());
    std::vector<std::vector<size_t>> subsets;
    // All single attributes plus the full attribute set.
    for (size_t p = 0; p < rs.arity(); ++p) subsets.push_back({p});
    std::vector<size_t> all(rs.arity());
    for (size_t p = 0; p < rs.arity(); ++p) all[p] = p;
    subsets.push_back(all);
    for (const std::vector<size_t>& positions : subsets) {
      if (rng->Bernoulli(0.25)) continue;  // leave some relations less covered
      const HashIndex& idx = rel.EnsureIndex(positions);
      uint64_t n = std::max<uint64_t>(1, idx.MaxBucketSize());
      std::vector<std::string> attrs;
      for (size_t p : positions) attrs.push_back(rs.attributes()[p]);
      access.Add(rs.name(), attrs, n);
    }
  }
  return access;
}

class ControllabilityFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ControllabilityFuzz, DerivationsExecuteCorrectly) {
  Rng rng(GetParam());
  FormulaGenConfig config;
  config.num_relations = 3;
  config.max_arity = 3;
  config.num_variables = 3;
  config.domain_size = 3;

  int derivations_exercised = 0;
  for (int round = 0; round < 12; ++round) {
    Schema schema = RandomSchema(config, &rng);
    Database db = RandomDatabase(schema, config, 10, &rng);
    AccessSchema access = EmpiricalAccessSchema(&db, schema, &rng);
    // Sanity: the derived schema really conforms.
    Result<ConformanceReport> conf = CheckConformance(db, schema, access);
    ASSERT_TRUE(conf.ok());
    ASSERT_TRUE(conf->conforms);

    FoQuery q = RandomFoQuery(schema, config, 1 + rng.Uniform(5), &rng);
    Result<ControllabilityAnalysis> analysis =
        ControllabilityAnalysis::Analyze(q.body, schema, access);
    if (!analysis.ok()) continue;  // structural mismatch in a random formula

    FoEvaluator reference(&db);
    std::vector<Value> adom = db.ActiveDomain();
    if (adom.empty()) continue;

    for (const VarSet& controls : analysis->MinimalControlSets()) {
      ++derivations_exercised;
      // Try a few random parameter tuples for this controlling set.
      for (int trial = 0; trial < 3; ++trial) {
        Binding params;
        for (const Variable& v : controls) {
          params.emplace(v, adom[rng.Uniform(adom.size())]);
        }
        BoundedEvaluator bounded(&db);
        BoundedEvalStats stats;
        Result<AnswerSet> fast =
            bounded.Evaluate(q, *analysis, params, &stats);
        ASSERT_TRUE(fast.ok())
            << q.ToString() << "\ncontrols " << VarSetToString(controls)
            << "\n" << fast.status().ToString();
        AnswerSet slow = reference.Evaluate(q, params);
        ASSERT_EQ(*fast, slow)
            << q.ToString() << "\ncontrols " << VarSetToString(controls)
            << "\nderivation:\n" << analysis->Explain(controls)
            << db.ToString();
        Result<double> bound = analysis->StaticFetchBound(controls);
        ASSERT_TRUE(bound.ok());
        EXPECT_LE(static_cast<double>(stats.base_tuples_fetched), *bound)
            << q.ToString();
      }
    }
  }
  // The generator must actually exercise the engine, not skip everything.
  EXPECT_GT(derivations_exercised, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllabilityFuzz,
                         ::testing::Values(2, 9, 17, 31, 57, 73, 111, 222, 333,
                                           444));

}  // namespace
}  // namespace scalein
