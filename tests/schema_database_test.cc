#include "relational/database.h"

#include <gtest/gtest.h>

namespace scalein {
namespace {

Schema TwoRelations() {
  Schema s;
  s.Relation("r", {"a", "b"}).Relation("s", {"x"});
  return s;
}

TEST(SchemaTest, AttributePositions) {
  RelationSchema rs("person", {"id", "name", "city"});
  EXPECT_EQ(rs.arity(), 3u);
  EXPECT_EQ(rs.AttributePosition("name"), 1u);
  EXPECT_EQ(rs.AttributePosition("nope"), std::nullopt);
  Result<std::vector<size_t>> positions = rs.AttributePositions({"city", "id"});
  ASSERT_TRUE(positions.ok());
  EXPECT_EQ(*positions, (std::vector<size_t>{2, 0}));
  EXPECT_FALSE(rs.AttributePositions({"ghost"}).ok());
  EXPECT_EQ(rs.ToString(), "person(id, name, city)");
}

TEST(SchemaTest, DuplicateRelationRejected) {
  Schema s;
  EXPECT_TRUE(s.AddRelation(RelationSchema("r", {"a"})).ok());
  Status dup = s.AddRelation(RelationSchema("r", {"b"}));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, Lookup) {
  Schema s = TwoRelations();
  EXPECT_TRUE(s.HasRelation("r"));
  EXPECT_FALSE(s.HasRelation("t"));
  EXPECT_NE(s.FindRelation("s"), nullptr);
  EXPECT_EQ(s.FindRelation("t"), nullptr);
  EXPECT_TRUE(s.GetRelation("r").ok());
  EXPECT_EQ(s.GetRelation("t").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, InsertRemoveAndSize) {
  Database db(TwoRelations());
  EXPECT_TRUE(db.Insert("r", Tuple{Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(db.Insert("r", Tuple{Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(db.Insert("s", Tuple{Value::Int(9)}));
  EXPECT_EQ(db.TotalTuples(), 2u);
  EXPECT_TRUE(db.Remove("s", Tuple{Value::Int(9)}));
  EXPECT_EQ(db.TotalTuples(), 1u);
}

TEST(DatabaseTest, ActiveDomainSortedDistinct) {
  Database db(TwoRelations());
  db.Insert("r", Tuple{Value::Int(3), Value::Int(1)});
  db.Insert("s", Tuple{Value::Int(3)});
  db.Insert("s", Tuple{Value::Int(2)});
  std::vector<Value> adom = db.ActiveDomain();
  ASSERT_EQ(adom.size(), 3u);
  EXPECT_EQ(adom[0], Value::Int(1));
  EXPECT_EQ(adom[1], Value::Int(2));
  EXPECT_EQ(adom[2], Value::Int(3));
}

TEST(DatabaseTest, CloneEqualsAndSubset) {
  Database db(TwoRelations());
  db.Insert("r", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("s", Tuple{Value::Int(5)});
  Database copy = db.Clone();
  EXPECT_TRUE(copy.Equals(db));
  EXPECT_TRUE(copy.IsSubsetOf(db));
  copy.Insert("s", Tuple{Value::Int(6)});
  EXPECT_FALSE(copy.Equals(db));
  EXPECT_TRUE(db.IsSubsetOf(copy));
  EXPECT_FALSE(copy.IsSubsetOf(db));
}

}  // namespace
}  // namespace scalein
