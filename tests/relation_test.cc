#include "relational/relation.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace scalein {
namespace {

Tuple T2(int64_t a, int64_t b) { return Tuple{Value::Int(a), Value::Int(b)}; }

TEST(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(T2(1, 2)));
  EXPECT_FALSE(r.Insert(T2(1, 2)));
  EXPECT_TRUE(r.Insert(T2(1, 3)));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(T2(1, 2)));
  EXPECT_FALSE(r.Contains(T2(2, 1)));
}

TEST(RelationTest, RemoveSwapsAndKeepsContent) {
  Relation r(2);
  for (int64_t i = 0; i < 10; ++i) r.Insert(T2(i, i * i));
  EXPECT_TRUE(r.Remove(T2(3, 9)));
  EXPECT_FALSE(r.Remove(T2(3, 9)));
  EXPECT_EQ(r.size(), 9u);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(r.Contains(T2(i, i * i)), i != 3);
  }
}

TEST(RelationTest, IndexLookupAfterBulkLoad) {
  Relation r(2);
  for (int64_t i = 0; i < 100; ++i) r.Insert(T2(i % 10, i));
  const HashIndex& idx = r.EnsureIndex({0});
  const std::vector<uint32_t>* rows = idx.Lookup(Tuple{Value::Int(3)});
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 10u);
  for (uint32_t row : *rows) {
    EXPECT_EQ(r.TupleAt(row)[0], Value::Int(3));
  }
  EXPECT_EQ(idx.MaxBucketSize(), 10u);
}

TEST(RelationTest, IndexMaintainedAcrossInsertAndRemove) {
  Relation r(2);
  r.EnsureIndex({0});  // index exists before any data
  Rng rng(123);
  std::set<Tuple> reference;
  for (int step = 0; step < 2000; ++step) {
    Tuple t = T2(static_cast<int64_t>(rng.Uniform(20)),
                 static_cast<int64_t>(rng.Uniform(20)));
    if (rng.Bernoulli(0.6)) {
      r.Insert(t);
      reference.insert(t);
    } else {
      r.Remove(t);
      reference.erase(t);
    }
  }
  EXPECT_EQ(r.size(), reference.size());
  // Every key's bucket must match the reference exactly.
  const HashIndex* idx = r.FindIndex({0});
  ASSERT_NE(idx, nullptr);
  for (int64_t key = 0; key < 20; ++key) {
    std::set<Tuple> expected;
    for (const Tuple& t : reference) {
      if (t[0] == Value::Int(key)) expected.insert(t);
    }
    const std::vector<uint32_t>* rows = idx->Lookup(Tuple{Value::Int(key)});
    std::set<Tuple> actual;
    if (rows != nullptr) {
      for (uint32_t row : *rows) actual.insert(ToTuple(r.TupleAt(row)));
    }
    EXPECT_EQ(actual, expected) << "key " << key;
  }
}

TEST(RelationTest, IndexPositionsCanonicalized) {
  Relation r(3);
  r.Insert(Tuple{Value::Int(1), Value::Int(2), Value::Int(3)});
  const HashIndex& a = r.EnsureIndex({2, 0});
  const HashIndex* b = r.FindIndex({0, 2});
  EXPECT_EQ(&a, b);
  // Key order follows sorted positions: (pos0, pos2).
  EXPECT_NE(a.Lookup(Tuple{Value::Int(1), Value::Int(3)}), nullptr);
}

TEST(RelationTest, ProjectionIndexDistinctness) {
  Relation r(3);
  // Rows sharing key 7 with duplicate (b) projections.
  r.Insert(Tuple{Value::Int(7), Value::Int(1), Value::Int(10)});
  r.Insert(Tuple{Value::Int(7), Value::Int(1), Value::Int(20)});
  r.Insert(Tuple{Value::Int(7), Value::Int(2), Value::Int(30)});
  r.Insert(Tuple{Value::Int(8), Value::Int(9), Value::Int(40)});
  const ProjectionIndex& p = r.EnsureProjectionIndex({0}, {1});
  EXPECT_EQ(p.GroupSize(Tuple{Value::Int(7)}), 2u);
  EXPECT_EQ(p.GroupSize(Tuple{Value::Int(8)}), 1u);
  EXPECT_EQ(p.MaxGroupSize(), 2u);

  // Removing one of the duplicates keeps the projection present.
  r.Remove(Tuple{Value::Int(7), Value::Int(1), Value::Int(10)});
  EXPECT_EQ(p.GroupSize(Tuple{Value::Int(7)}), 2u);
  r.Remove(Tuple{Value::Int(7), Value::Int(1), Value::Int(20)});
  EXPECT_EQ(p.GroupSize(Tuple{Value::Int(7)}), 1u);
}

TEST(RelationTest, CloneIsIndependent) {
  Relation r(1);
  r.Insert(Tuple{Value::Int(1)});
  Relation copy = r.Clone();
  copy.Insert(Tuple{Value::Int(2)});
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_TRUE(r.IsSubsetOf(copy));
  EXPECT_FALSE(copy.IsSubsetOf(r));
}

TEST(RelationTest, SetEqualsIgnoresInsertionOrder) {
  Relation a(1);
  Relation b(1);
  a.Insert(Tuple{Value::Int(1)});
  a.Insert(Tuple{Value::Int(2)});
  b.Insert(Tuple{Value::Int(2)});
  b.Insert(Tuple{Value::Int(1)});
  EXPECT_TRUE(a.SetEquals(b));
  b.Remove(Tuple{Value::Int(1)});
  EXPECT_FALSE(a.SetEquals(b));
}

TEST(RelationTest, SortedTuplesDeterministic) {
  Relation r(2);
  r.Insert(T2(2, 1));
  r.Insert(T2(1, 2));
  r.Insert(T2(1, 1));
  std::vector<Tuple> sorted = r.SortedTuples();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0], T2(1, 1));
  EXPECT_EQ(sorted[1], T2(1, 2));
  EXPECT_EQ(sorted[2], T2(2, 1));
}

TEST(TupleTest, ProjectAndHash) {
  Tuple t{Value::Int(1), Value::Str("a"), Value::Int(3)};
  Tuple p = ProjectTuple(t, {2, 0});
  EXPECT_EQ(p, (Tuple{Value::Int(3), Value::Int(1)}));
  EXPECT_EQ(HashTuple(t), HashTuple(ToTuple(TupleView(t))));
  EXPECT_NE(HashTuple(t), HashTuple(p));
  EXPECT_EQ(TupleToString(p), "(3, 1)");
}

}  // namespace
}  // namespace scalein
