#include "incremental/raa_rules.h"

#include <gtest/gtest.h>

#include "core/controllability.h"

namespace scalein {
namespace {

Schema TwoRelSchema() {
  Schema s;
  s.Relation("p", {"a", "b"});
  s.Relation("q", {"b", "c"});
  return s;
}

AccessSchema BothKeyed() {
  AccessSchema a;
  a.Add("p", {"a"}, 10);
  a.Add("q", {"b"}, 10);
  return a;
}

RaaAnalysis Analyze(const RaExpr& e, const Schema& s, const AccessSchema& a) {
  Result<RaaAnalysis> r = RaaAnalysis::Analyze(e, s, a);
  SI_CHECK_MSG(r.ok(), r.status().message().c_str());
  return *std::move(r);
}

TEST(RaaRulesTest, BaseRelationRules) {
  Schema s = TwoRelSchema();
  RaaAnalysis r =
      Analyze(RaExpr::Relation("p", {"a", "b"}), s, BothKeyed());
  EXPECT_TRUE(r.IsScaleIndependent({"a"}));
  EXPECT_FALSE(r.IsScaleIndependent({"b"}));
  // (R∇, ∅) and (R∆, ∅): deltas arrive with the update.
  EXPECT_TRUE(r.IsIncrementallyScaleIndependent({}));
}

TEST(RaaRulesTest, SelectionDropsConstantBoundAttrs) {
  Schema s = TwoRelSchema();
  SelectionCondition cond;
  cond.conjuncts.push_back(SelectionAtom::AttrEqConst("a", Value::Int(1)));
  RaExpr e = RaExpr::Select(RaExpr::Relation("p", {"a", "b"}), cond);
  RaaAnalysis r = Analyze(e, s, BothKeyed());
  // σ_{a=1}(p): the controlling attribute a is supplied by the condition.
  EXPECT_TRUE(r.IsScaleIndependent({}));
}

TEST(RaaRulesTest, ProjectionRestrictsControls) {
  Schema s = TwoRelSchema();
  RaExpr p = RaExpr::Relation("p", {"a", "b"});
  RaaAnalysis keeps = Analyze(RaExpr::Project(p, {"a"}), s, BothKeyed());
  EXPECT_TRUE(keeps.IsScaleIndependent({"a"}));
  // Projecting the controlling attribute away kills the derivation.
  RaaAnalysis drops = Analyze(RaExpr::Project(p, {"b"}), s, BothKeyed());
  EXPECT_FALSE(drops.IsScaleIndependent({"b"}));
}

TEST(RaaRulesTest, JoinCombinesControls) {
  Schema s = TwoRelSchema();
  RaExpr join = RaExpr::Join(RaExpr::Relation("p", {"a", "b"}),
                             RaExpr::Relation("q", {"b", "c"}));
  RaaAnalysis r = Analyze(join, s, BothKeyed());
  // a gives b through p, b gives c through q.
  EXPECT_TRUE(r.IsScaleIndependent({"a"}));
  EXPECT_FALSE(r.IsScaleIndependent({"c"}));
}

TEST(RaaRulesTest, UnionNeedsBothSides) {
  Schema s;
  s.Relation("p", {"a", "b"});
  s.Relation("r", {"a", "b"});
  AccessSchema a;
  a.Add("p", {"a"}, 10);
  // r has no access statement at all.
  RaExpr u = RaExpr::Union(RaExpr::Relation("p", {"a", "b"}),
                           RaExpr::Relation("r", {"a", "b"}));
  RaaAnalysis none = Analyze(u, s, a);
  EXPECT_FALSE(none.IsScaleIndependent({"a", "b"}));
  a.Add("r", {"b"}, 10);
  RaaAnalysis both = Analyze(u, s, a);
  EXPECT_TRUE(both.IsScaleIndependent({"a", "b"}));
  EXPECT_FALSE(both.IsScaleIndependent({"a"}));
}

TEST(RaaRulesTest, DiffNeedsFullyControlledSubtrahend) {
  Schema s;
  s.Relation("p", {"a", "b"});
  s.Relation("r", {"a", "b"});
  AccessSchema a;
  a.Add("p", {"a"}, 10);
  RaExpr d = RaExpr::Diff(RaExpr::Relation("p", {"a", "b"}),
                          RaExpr::Relation("r", {"a", "b"}));
  EXPECT_FALSE(Analyze(d, s, a).IsScaleIndependent({"a"}));
  a.Add("r", {"a", "b"}, 1);
  EXPECT_TRUE(Analyze(d, s, a).IsScaleIndependent({"a"}));
}

TEST(RaaRulesTest, RenameMapsControls) {
  Schema s = TwoRelSchema();
  RaExpr renamed =
      RaExpr::Rename(RaExpr::Relation("p", {"a", "b"}), {{"a", "key"}});
  RaaAnalysis r = Analyze(renamed, s, BothKeyed());
  EXPECT_TRUE(r.IsScaleIndependent({"key"}));
  EXPECT_FALSE(r.IsScaleIndependent({"a"}));
}

TEST(RaaRulesTest, IncrementalJoinRule) {
  Schema s = TwoRelSchema();
  RaExpr join = RaExpr::Join(RaExpr::Relation("p", {"a", "b"}),
                             RaExpr::Relation("q", {"b", "c"}));
  RaaAnalysis r = Analyze(join, s, BothKeyed());
  // (E1 ⋈ E2)∇ / ∆ need plain control of both sides; with both keyed the
  // derivable controlling set is {a} (Y1 = {a}, Y2 = {b} folds into a's b).
  EXPECT_TRUE(r.IsIncrementallyScaleIndependent({"a"}));
  EXPECT_FALSE(r.IsIncrementallyScaleIndependent({}));
}

TEST(RaaRulesTest, Theorem54CrossValidatesWithFoControllability) {
  // Whenever the RAA rules derive (E, X), the FO translation of E must be
  // controlled by the corresponding variables under the same access schema.
  Schema s = TwoRelSchema();
  AccessSchema a = BothKeyed();
  RaExpr p = RaExpr::Relation("p", {"a", "b"});
  RaExpr q = RaExpr::Relation("q", {"b", "c"});
  SelectionCondition cond;
  cond.conjuncts.push_back(SelectionAtom::AttrEqConst("a", Value::Int(1)));
  std::vector<RaExpr> zoo = {
      p,
      RaExpr::Select(p, cond),
      RaExpr::Project(p, {"a"}),
      RaExpr::Join(p, q),
      RaExpr::Project(RaExpr::Join(p, q), {"a", "c"}),
  };
  for (const RaExpr& e : zoo) {
    RaaAnalysis raa = Analyze(e, s, a);
    Result<FoQuery> fo = RaToFoQuery(e, s);
    ASSERT_TRUE(fo.ok());
    Result<ControllabilityAnalysis> fo_ctl =
        ControllabilityAnalysis::Analyze(fo->body, s, a);
    ASSERT_TRUE(fo_ctl.ok());
    for (const AttrSet& x : raa.root().plain) {
      VarSet vars;
      for (const std::string& attr : x) vars.insert(Variable::Named(attr));
      EXPECT_TRUE(fo_ctl->IsControlledBy(vars))
          << e.ToString() << " X=" << AttrSetToString(x);
    }
  }
}

TEST(RaaRulesTest, ToStringListsFamilies) {
  Schema s = TwoRelSchema();
  RaaAnalysis r = Analyze(RaExpr::Relation("p", {"a", "b"}), s, BothKeyed());
  std::string text = r.ToString();
  EXPECT_NE(text.find("plain="), std::string::npos);
  EXPECT_NE(text.find("decrement="), std::string::npos);
}

}  // namespace
}  // namespace scalein
