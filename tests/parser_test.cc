#include "query/parser.h"

#include <gtest/gtest.h>

namespace scalein {
namespace {

TEST(ParserTest, SimpleCq) {
  Result<Cq> q = ParseCq("Q1(p, name) :- friend(p, id), person(id, name, \"NYC\")");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->name(), "Q1");
  EXPECT_EQ(q->head().size(), 2u);
  ASSERT_EQ(q->atoms().size(), 2u);
  EXPECT_EQ(q->atoms()[0].relation, "friend");
  EXPECT_EQ(q->atoms()[1].args[2], Term::Const(Value::Str("NYC")));
}

TEST(ParserTest, CqEqualityNormalization) {
  Result<Cq> q = ParseCq("Q(x) :- r(x, y), y = 3");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->atoms().size(), 1u);
  EXPECT_EQ(q->atoms()[0].args[1], Term::Const(Value::Int(3)));
}

TEST(ParserTest, CqVariableUnification) {
  Result<Cq> q = ParseCq("Q(x) :- r(x, y), s(z), y = z");
  ASSERT_TRUE(q.ok());
  // y and z collapse to one variable.
  ASSERT_EQ(q->atoms().size(), 2u);
  EXPECT_EQ(q->atoms()[0].args[1], q->atoms()[1].args[0]);
}

TEST(ParserTest, CqTransitiveConstantPropagation) {
  Result<Cq> q = ParseCq("Q(x) :- r(x, y), y = z, z = 5, s(z)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms()[0].args[1], Term::Const(Value::Int(5)));
  EXPECT_EQ(q->atoms()[1].args[0], Term::Const(Value::Int(5)));
}

TEST(ParserTest, CqContradictoryEqualityRejected) {
  EXPECT_FALSE(ParseCq("Q(x) :- r(x, y), y = 1, y = 2").ok());
  EXPECT_FALSE(ParseCq("Q() :- r(x), x = 1, x = y, y = 2").ok());
}

TEST(ParserTest, CqHeadConstantViaEquality) {
  Result<Cq> q = ParseCq("Q(x, y) :- r(x, y), x = 7");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->head()[0], Term::Const(Value::Int(7)));
  EXPECT_TRUE(q->head()[1].is_var());
}

TEST(ParserTest, UnsafeCqRejected) {
  Result<Cq> q = ParseCq("Q(x, w) :- r(x)");
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, BooleanCq) {
  Result<Cq> q = ParseCq("Q() :- r(x, x)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsBoolean());
  EXPECT_EQ(q->atoms()[0].args[0], q->atoms()[0].args[1]);
}

TEST(ParserTest, SchemaValidation) {
  Schema s;
  s.Relation("r", {"a", "b"});
  EXPECT_TRUE(ParseCq("Q(x) :- r(x, y)", &s).ok());
  EXPECT_FALSE(ParseCq("Q(x) :- r(x)", &s).ok());        // arity
  EXPECT_FALSE(ParseCq("Q(x) :- ghost(x)", &s).ok());    // unknown relation
  EXPECT_TRUE(ParseFoQuery("Q(x) := exists y. r(x, y)", &s).ok());
  EXPECT_FALSE(ParseFoQuery("Q(x) := exists y. r(x, y, y)", &s).ok());
}

TEST(ParserTest, Ucq) {
  Result<Ucq> u = ParseUcq(
      "Q(x) :- r(x, y)\n"
      "Q(x) :- s(x)\n");
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_EQ(u->disjuncts().size(), 2u);
  EXPECT_EQ(u->HeadArity(), 1u);
}

TEST(ParserTest, UcqMismatchedHeadsRejected) {
  EXPECT_FALSE(ParseUcq("Q(x) :- r(x, y)\nP(x) :- s(x)\n").ok());
  EXPECT_FALSE(ParseUcq("Q(x) :- r(x, y)\nQ(x, y) :- r(x, y)\n").ok());
  EXPECT_FALSE(ParseUcq("").ok());
}

TEST(ParserTest, FoPrecedence) {
  // not binds tighter than and, and tighter than or, or tighter than implies.
  Result<Formula> f = ParseFormula("not r(x) and s(x) or t(x) implies u(x)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), FormulaKind::kImplies);
  EXPECT_EQ(f->premise().kind(), FormulaKind::kOr);
  EXPECT_EQ(f->premise().operands()[0].kind(), FormulaKind::kAnd);
  EXPECT_EQ(f->premise().operands()[0].operands()[0].kind(), FormulaKind::kNot);
}

TEST(ParserTest, QuantifierScopeExtendsRight) {
  Result<Formula> f = ParseFormula("exists x. r(x) and s(x)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), FormulaKind::kExists);
  EXPECT_EQ(f->body().kind(), FormulaKind::kAnd);
  EXPECT_TRUE(f->FreeVariables().empty());
}

TEST(ParserTest, MultiVariableQuantifier) {
  Result<Formula> f = ParseFormula("exists x, y. r(x, y)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->quantified().size(), 2u);
}

TEST(ParserTest, Inequality) {
  Result<Formula> f = ParseFormula("x != y");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), FormulaKind::kNot);
  EXPECT_EQ(f->child().kind(), FormulaKind::kEq);
}

TEST(ParserTest, ErrorsCarryOffsets) {
  Result<Formula> f = ParseFormula("r(x) and");
  EXPECT_FALSE(f.ok());
  Result<Cq> q = ParseCq("Q(x) :- r(x) extra");
  EXPECT_FALSE(q.ok());
  Result<Formula> g = ParseFormula("r(\"unterminated)");
  EXPECT_FALSE(g.ok());
}

TEST(ParserTest, NegativeIntegerConstants) {
  Result<Cq> q = ParseCq("Q(x) :- r(x, -5)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms()[0].args[1], Term::Const(Value::Int(-5)));
}

TEST(ParserTest, KeywordAsTermRejected) {
  EXPECT_FALSE(ParseCq("Q(not) :- r(not)").ok());
}

}  // namespace
}  // namespace scalein
