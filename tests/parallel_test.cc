// Morsel-parallel execution tests: the worker pool's scheduling contract,
// sharded-index/plain-index equivalence, and the headline determinism
// property — batch bounded evaluation produces byte-identical answers AND
// byte-identical access accounting at every thread count, so Theorem 4.2
// verdicts never depend on parallelism.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "core/embedded_controllability.h"
#include "par/worker_pool.h"
#include "query/parser.h"
#include "workload/social_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

FoQuery FQ(const char* text, const Schema& s) {
  Result<FoQuery> q = ParseFoQuery(text, &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

struct Social {
  SocialConfig config;
  Schema schema = SocialSchema(false);
  Database db{Schema{}};
  AccessSchema access;

  explicit Social(uint64_t persons) {
    config.num_persons = persons;
    config.max_friends_per_person = 10;
    config.num_restaurants = 40;
    config.seed = 99;
    db = GenerateSocial(config);
    access = SocialAccessSchema(config);
    SI_CHECK(access.BuildIndexes(&db, schema).ok());
  }
};

/// Restores the global pool to sequential when a test scope ends, so thread
/// counts never leak between tests.
struct ScopedThreads {
  explicit ScopedThreads(size_t n) { par::WorkerPool::Global().Resize(n); }
  ~ScopedThreads() { par::WorkerPool::Global().Resize(1); }
};

TEST(WorkerPoolTest, ExecutesEveryTaskExactlyOnce) {
  par::WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  constexpr size_t kTasks = 1000;
  // Distinct indices → no two lanes touch the same slot; ParallelFor's
  // completion barrier publishes the writes back to this thread.
  std::vector<int> hits(kTasks, 0);
  pool.ParallelFor(kTasks, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i], 1) << i;
  EXPECT_EQ(pool.tasks_executed(), kTasks);
  EXPECT_EQ(pool.parallel_for_calls(), 1u);
}

TEST(WorkerPoolTest, SequentialPoolRunsInline) {
  par::WorkerPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkerPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  par::WorkerPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    // A task that itself fans out must not deadlock the fixed pool.
    pool.ParallelFor(8, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(WorkerPoolTest, CurrentLaneIsMinusOneOutsideAndBoundedInside) {
  EXPECT_EQ(par::CurrentLane(), -1);
  par::WorkerPool pool(3);
  std::atomic<bool> ok{true};
  pool.ParallelFor(64, [&](size_t) {
    const int lane = par::CurrentLane();
    if (lane < 0 || lane >= 3) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(par::CurrentLane(), -1);
}

TEST(WorkerPoolTest, ResizeChangesLaneCount) {
  par::WorkerPool pool(1);
  pool.Resize(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::atomic<int> n{0};
  pool.ParallelFor(100, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 100);
  pool.Resize(1);
  EXPECT_EQ(pool.threads(), 1u);
}

TEST(WorkerPoolTest, SplitRangesPartitionsExactly) {
  for (size_t total : {0u, 1u, 7u, 64u, 1000u}) {
    for (size_t pieces : {1u, 3u, 8u, 2000u}) {
      auto ranges = par::SplitRanges(total, pieces);
      size_t covered = 0;
      size_t expect_begin = 0;
      for (const auto& [begin, end] : ranges) {
        EXPECT_EQ(begin, expect_begin);
        EXPECT_LT(begin, end);
        covered += end - begin;
        expect_begin = end;
      }
      EXPECT_EQ(covered, total) << total << "/" << pieces;
      EXPECT_LE(ranges.size(), pieces);
    }
  }
}

TEST(ShardedIndexTest, LookupMatchesPlainIndex) {
  ScopedThreads threads(4);
  Relation r(2);
  for (int64_t i = 0; i < 500; ++i) {
    r.Insert(Tuple{Value::Int(i % 37), Value::Int(i)});
  }
  r.Shard(4);
  const HashIndex& plain = r.EnsureIndex({0});
  const ShardedHashIndex& sharded = r.EnsureShardedIndex({0});
  EXPECT_EQ(sharded.NumKeys(), plain.NumKeys());
  for (int64_t k = -2; k < 40; ++k) {
    Tuple key{Value::Int(k)};
    const std::vector<uint32_t>* p = plain.Lookup(key);
    const std::vector<uint32_t>* s = sharded.Lookup(key);
    if (p == nullptr) {
      EXPECT_EQ(s, nullptr) << k;
      continue;
    }
    ASSERT_NE(s, nullptr) << k;
    std::set<uint32_t> ps(p->begin(), p->end());
    std::set<uint32_t> ss(s->begin(), s->end());
    EXPECT_EQ(ps, ss) << k;
  }
}

TEST(ShardedIndexTest, MaintainedAcrossInsertAndRemove) {
  Relation r(2);
  r.Shard(3);
  for (int64_t i = 0; i < 100; ++i) {
    r.Insert(Tuple{Value::Int(i % 10), Value::Int(i)});
  }
  r.EnsureShardedIndex({0});  // exists before the mutations below
  for (int64_t i = 0; i < 100; i += 2) {
    r.Remove(Tuple{Value::Int(i % 10), Value::Int(i)});
  }
  for (int64_t i = 100; i < 120; ++i) {
    r.Insert(Tuple{Value::Int(i % 10), Value::Int(i)});
  }
  const ShardedHashIndex& sharded = *r.FindShardedIndex({0});
  const HashIndex& plain = r.EnsureIndex({0});
  for (int64_t k = 0; k < 10; ++k) {
    Tuple key{Value::Int(k)};
    const std::vector<uint32_t>* p = plain.Lookup(key);
    const std::vector<uint32_t>* s = sharded.Lookup(key);
    ASSERT_NE(p, nullptr);
    ASSERT_NE(s, nullptr);
    std::set<uint32_t> ps(p->begin(), p->end());
    std::set<uint32_t> ss(s->begin(), s->end());
    EXPECT_EQ(ps, ss) << k;
  }
}

TEST(ShardedIndexTest, ShardedProbesAnswerBoundedQ1) {
  // Same answers with sharding enabled: the metered probe path routes to the
  // sharded index when the relation is sharded, and results are identical.
  Social social(120);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q1.body, social.schema, social.access);
  ASSERT_TRUE(analysis.ok());

  BoundedEvaluator bounded(&social.db);
  std::vector<AnswerSet> unsharded;
  std::vector<uint64_t> unsharded_fetches;
  for (int64_t p = 0; p < 20; ++p) {
    BoundedEvalStats stats;
    Result<AnswerSet> r = bounded.Evaluate(
        q1, *analysis, {{V("p"), Value::Int(p)}}, &stats);
    ASSERT_TRUE(r.ok());
    unsharded.push_back(*std::move(r));
    unsharded_fetches.push_back(stats.base_tuples_fetched);
  }

  social.db.relation("friend").Shard(4);
  social.db.relation("person").Shard(4);
  for (int64_t p = 0; p < 20; ++p) {
    BoundedEvalStats stats;
    Result<AnswerSet> r = bounded.Evaluate(
        q1, *analysis, {{V("p"), Value::Int(p)}}, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, unsharded[static_cast<size_t>(p)]) << p;
    EXPECT_EQ(stats.base_tuples_fetched,
              unsharded_fetches[static_cast<size_t>(p)])
        << p;
  }
}

/// The determinism contract the benchmarks and the TSan CI lane pin down:
/// answers and accounting are identical at 1 and 4 threads.
TEST(ParallelBatchTest, BatchEvalIdenticalAcrossThreadCounts) {
  Social social(300);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q1.body, social.schema, social.access);
  ASSERT_TRUE(analysis.ok());
  for (const std::string& rel : {std::string("friend"), std::string("person"),
                                 std::string("restr")}) {
    social.db.relation(rel).Shard(4);
  }

  std::vector<Binding> batch;
  for (int64_t p = 0; p < 64; ++p) {
    batch.push_back({{V("p"), Value::Int(p)}});
  }
  BoundedEvaluator bounded(&social.db);

  // Reference: a plain sequential loop of Evaluate calls.
  std::vector<AnswerSet> expected;
  BoundedEvalStats expected_stats;
  for (const Binding& params : batch) {
    Result<AnswerSet> r =
        bounded.Evaluate(q1, *analysis, params, &expected_stats);
    ASSERT_TRUE(r.ok());
    expected.push_back(*std::move(r));
  }

  for (size_t threads : {1u, 4u}) {
    ScopedThreads scoped(threads);
    BoundedEvalStats stats;
    std::vector<Result<AnswerSet>> results =
        bounded.EvaluateBatch(q1, *analysis, batch, &stats);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << i;
      EXPECT_EQ(*results[i], expected[i]) << "threads=" << threads;
    }
    EXPECT_EQ(stats.base_tuples_fetched, expected_stats.base_tuples_fetched)
        << "threads=" << threads;
    EXPECT_EQ(stats.index_lookups, expected_stats.index_lookups)
        << "threads=" << threads;
    EXPECT_EQ(stats.fetched_by_relation, expected_stats.fetched_by_relation)
        << "threads=" << threads;
  }
}

TEST(ParallelBatchTest, EmbeddedBatchIdenticalAcrossThreadCounts) {
  SocialConfig config;
  config.num_persons = 120;
  config.max_friends_per_person = 8;
  config.num_restaurants = 12;
  config.avg_visits_per_person = 10;
  config.num_cities = 2;
  config.num_years = 1;
  config.dated_visits = true;
  config.seed = 17;
  Schema schema = SocialSchema(true);
  Database db = GenerateSocial(config);
  AccessSchema access = SocialAccessSchema(config);
  ASSERT_TRUE(access.BuildIndexes(&db, schema).ok());

  Result<Cq> q3 = ParseCq(
      "Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &schema);
  ASSERT_TRUE(q3.ok());
  Result<EmbeddedCqAnalysis> analysis =
      EmbeddedCqAnalysis::Analyze(*q3, schema, access, {V("p"), V("yy")});
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->IsScaleIndependent());

  std::vector<Binding> batch;
  for (int64_t p = 0; p < 40; ++p) {
    batch.push_back({{V("p"), Value::Int(p)}, {V("yy"), Value::Int(0)}});
  }
  BoundedEvaluator bounded(&db);

  std::vector<AnswerSet> expected;
  BoundedEvalStats expected_stats;
  for (const Binding& params : batch) {
    Result<AnswerSet> r =
        bounded.EvaluateEmbedded(*analysis, params, &expected_stats);
    ASSERT_TRUE(r.ok());
    expected.push_back(*std::move(r));
  }

  for (size_t threads : {1u, 4u}) {
    ScopedThreads scoped(threads);
    BoundedEvalStats stats;
    std::vector<Result<AnswerSet>> results =
        bounded.EvaluateEmbeddedBatch(*analysis, batch, &stats);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << i;
      EXPECT_EQ(*results[i], expected[i]) << "threads=" << threads;
    }
    EXPECT_EQ(stats.base_tuples_fetched, expected_stats.base_tuples_fetched)
        << "threads=" << threads;
    EXPECT_EQ(stats.index_lookups, expected_stats.index_lookups)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace scalein
