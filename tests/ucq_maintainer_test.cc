#include "incremental/ucq_maintainer.h"

#include <gtest/gtest.h>

#include "eval/cq_evaluator.h"
#include "query/parser.h"
#include "util/rng.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

struct Fixture {
  Schema schema;
  Database db{Schema{}};
  AccessSchema access;
  Ucq q{"Q", {Cq("Q", {}, {})}};

  Fixture() {
    schema.Relation("likes", {"p", "item"});
    schema.Relation("owns", {"p", "item"});
    schema.Relation("item", {"item", "tag"});
    db = Database(schema);
    access.Add("likes", {"p"}, 16);
    access.Add("owns", {"p"}, 16);
    access.AddKey("item", {"item"});
    access.Add("likes", {"p", "item"}, 1);
    access.Add("owns", {"p", "item"}, 1);
    access.Add("item", {"item", "tag"}, 1);
    Result<Ucq> parsed = ParseUcq(
        "Q(p, item) :- likes(p, item), item(item, \"hot\")\n"
        "Q(p, item) :- owns(p, item), item(item, \"hot\")\n",
        &schema);
    SI_CHECK_MSG(parsed.ok(), parsed.status().message().c_str());
    q = *std::move(parsed);

    Rng rng(8);
    for (int64_t i = 0; i < 30; ++i) {
      db.Insert("item",
                Tuple{Value::Int(i),
                      Value::Str(rng.Bernoulli(0.4) ? "hot" : "cold")});
    }
    for (int64_t p = 0; p < 10; ++p) {
      for (int k = 0; k < 4; ++k) {
        db.Insert("likes", Tuple{Value::Int(p),
                                 Value::Int(static_cast<int64_t>(rng.Uniform(30)))});
        db.Insert("owns", Tuple{Value::Int(p),
                                Value::Int(static_cast<int64_t>(rng.Uniform(30)))});
      }
    }
    SI_CHECK(access.BuildIndexes(&db, schema).ok());
  }

  AnswerSet Recompute(const Binding& params) {
    CqEvaluator eval(&db);
    return eval.EvaluateFull(q, params);
  }
};

TEST(UcqMaintainerTest, CreationAndSupport) {
  Fixture f;
  Result<UcqMaintainer> m =
      UcqMaintainer::Create(f.q, f.schema, f.access, {V("p")});
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_TRUE(m->SupportsInsertions("likes"));
  EXPECT_TRUE(m->SupportsInsertions("owns"));
  EXPECT_TRUE(m->SupportsDeletions());
}

TEST(UcqMaintainerTest, MaintainRequiresInitialize) {
  Fixture f;
  Result<UcqMaintainer> m =
      UcqMaintainer::Create(f.q, f.schema, f.access, {V("p")});
  ASSERT_TRUE(m.ok());
  Update u;
  Result<AnswerSet> r = m->Maintain(&f.db, u, {{V("p"), Value::Int(1)}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(UcqMaintainerTest, UnionSurvivesSingleDisjunctDeletion) {
  Fixture f;
  // Craft an item both liked and owned by person 1.
  f.db.Insert("item", Tuple{Value::Int(99), Value::Str("hot")});
  f.db.Insert("likes", Tuple{Value::Int(1), Value::Int(99)});
  f.db.Insert("owns", Tuple{Value::Int(1), Value::Int(99)});

  Result<UcqMaintainer> m =
      UcqMaintainer::Create(f.q, f.schema, f.access, {V("p")});
  ASSERT_TRUE(m.ok());
  Binding params{{V("p"), Value::Int(1)}};
  Result<AnswerSet> initial = m->Initialize(&f.db, params);
  ASSERT_TRUE(initial.ok());
  Tuple both{Value::Int(1), Value::Int(99)};
  ASSERT_TRUE(initial->count(both));

  // Deleting the like must keep the answer (still owned)...
  Update drop_like;
  drop_like.AddDeletion("likes", Tuple{Value::Int(1), Value::Int(99)});
  Result<AnswerSet> after_like = m->Maintain(&f.db, drop_like, params);
  ASSERT_TRUE(after_like.ok()) << after_like.status().ToString();
  EXPECT_TRUE(after_like->count(both));
  EXPECT_EQ(*after_like, f.Recompute(params));

  // ...and deleting the ownership too finally removes it.
  Update drop_own;
  drop_own.AddDeletion("owns", Tuple{Value::Int(1), Value::Int(99)});
  Result<AnswerSet> after_own = m->Maintain(&f.db, drop_own, params);
  ASSERT_TRUE(after_own.ok());
  EXPECT_FALSE(after_own->count(both));
  EXPECT_EQ(*after_own, f.Recompute(params));
}

TEST(UcqMaintainerTest, RandomMixedStreamMatchesRecomputation) {
  Fixture f;
  Result<UcqMaintainer> m =
      UcqMaintainer::Create(f.q, f.schema, f.access, {V("p")});
  ASSERT_TRUE(m.ok());
  Binding params{{V("p"), Value::Int(2)}};
  ASSERT_TRUE(m->Initialize(&f.db, params).ok());

  Rng rng(77);
  for (int batch = 0; batch < 6; ++batch) {
    Update u;
    // A few random insertions into likes/owns.
    for (int i = 0; i < 4; ++i) {
      const char* rel = rng.Bernoulli(0.5) ? "likes" : "owns";
      Tuple t{Value::Int(static_cast<int64_t>(rng.Uniform(10))),
              Value::Int(static_cast<int64_t>(rng.Uniform(31)))};
      if (!f.db.relation(rel).Contains(t)) {
        bool dup = false;
        auto it = u.insertions.find(rel);
        if (it != u.insertions.end()) {
          for (const Tuple& existing : it->second) dup |= existing == t;
        }
        if (!dup) u.AddInsertion(rel, t);
      }
    }
    // A couple of deletions.
    for (int i = 0; i < 2; ++i) {
      const char* rel = rng.Bernoulli(0.5) ? "likes" : "owns";
      const Relation& r = f.db.relation(rel);
      if (r.empty()) continue;
      Tuple t = ToTuple(r.TupleAt(rng.Uniform(r.size())));
      bool dup = false;
      auto it = u.deletions.find(rel);
      if (it != u.deletions.end()) {
        for (const Tuple& existing : it->second) dup |= existing == t;
      }
      if (!dup) u.AddDeletion(rel, t);
    }
    Result<AnswerSet> maintained = m->Maintain(&f.db, u, params);
    ASSERT_TRUE(maintained.ok()) << maintained.status().ToString();
    EXPECT_EQ(*maintained, f.Recompute(params)) << "batch " << batch;
  }
}

}  // namespace
}  // namespace scalein
