#include "workload/social_gen.h"

#include <gtest/gtest.h>

#include "workload/formula_gen.h"
#include "workload/setcover_gen.h"
#include "workload/update_gen.h"

namespace scalein {
namespace {

TEST(SocialGenTest, DeterministicForSameSeed) {
  SocialConfig config;
  config.num_persons = 50;
  Database a = GenerateSocial(config);
  Database b = GenerateSocial(config);
  EXPECT_TRUE(a.Equals(b));
  config.seed = 43;
  Database c = GenerateSocial(config);
  EXPECT_FALSE(a.Equals(c));
}

TEST(SocialGenTest, RespectsFriendCap) {
  SocialConfig config;
  config.num_persons = 100;
  config.max_friends_per_person = 5;
  Database db = GenerateSocial(config);
  Relation& friends = db.relation("friend");
  const HashIndex& by_person = friends.EnsureIndex({0});
  EXPECT_LE(by_person.MaxBucketSize(), 5u);
}

TEST(SocialGenTest, DatedVisitsKeepFd) {
  SocialConfig config;
  config.num_persons = 60;
  config.dated_visits = true;
  config.avg_visits_per_person = 8;
  Database db = GenerateSocial(config);
  Schema schema = SocialSchema(true);
  AccessSchema access = SocialAccessSchema(config);
  Result<ConformanceReport> report = CheckConformance(db, schema, access);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->conforms);
}

TEST(SocialGenTest, UndatedConformance) {
  SocialConfig config;
  config.num_persons = 120;
  config.max_friends_per_person = 7;
  Database db = GenerateSocial(config);
  Result<ConformanceReport> report =
      CheckConformance(db, SocialSchema(false), SocialAccessSchema(config));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->conforms);
}

TEST(SetCoverGenTest, PlantedCoverExists) {
  SetCoverConfig config;
  config.num_elements = 20;
  config.num_sets = 8;
  config.planted_cover_size = 3;
  SetCoverInstance inst = GenerateSetCover(config);
  // Every element is covered by one of the first `planted_cover_size` sets.
  Relation& covers = inst.db.relation("covers");
  const HashIndex& by_elem = covers.EnsureIndex({1});
  for (uint64_t x = 0; x < config.num_elements; ++x) {
    const std::vector<uint32_t>* rows =
        by_elem.Lookup(Tuple{Value::Int(static_cast<int64_t>(x))});
    ASSERT_NE(rows, nullptr) << "element " << x << " uncovered";
    bool planted = false;
    for (uint32_t r : *rows) {
      if (covers.TupleAt(r)[0].AsInt() <
          static_cast<int64_t>(config.planted_cover_size)) {
        planted = true;
      }
    }
    EXPECT_TRUE(planted);
  }
}

TEST(FormulaGenTest, RandomCqIsSafeAndDeterministic) {
  FormulaGenConfig config;
  Rng rng1(5);
  Rng rng2(5);
  Schema s1 = RandomSchema(config, &rng1);
  Schema s2 = RandomSchema(config, &rng2);
  Cq q1 = RandomCq(s1, config, 3, &rng1);
  Cq q2 = RandomCq(s2, config, 3, &rng2);
  EXPECT_EQ(q1.ToString(), q2.ToString());
  EXPECT_TRUE(q1.IsSafe());
}

TEST(FormulaGenTest, RandomFoQueryIsWellFormed) {
  FormulaGenConfig config;
  Rng rng(9);
  Schema s = RandomSchema(config, &rng);
  for (int i = 0; i < 20; ++i) {
    FoQuery q = RandomFoQuery(s, config, 1 + rng.Uniform(6), &rng);
    EXPECT_TRUE(q.IsWellFormed()) << q.ToString();
  }
}

TEST(UpdateGenTest, RandomUpdateIsValid) {
  FormulaGenConfig config;
  Rng rng(4);
  Schema s = RandomSchema(config, &rng);
  Database db = RandomDatabase(s, config, 15, &rng);
  for (int i = 0; i < 10; ++i) {
    Update u = RandomUpdate(db, 2, 2, config.domain_size, &rng);
    EXPECT_TRUE(u.Validate(db).ok()) << u.ToString();
  }
}

TEST(UpdateGenTest, VisitInsertionsKeepConformance) {
  SocialConfig config;
  config.num_persons = 60;
  config.dated_visits = true;
  Database db = GenerateSocial(config);
  Rng rng(3);
  for (int batch = 0; batch < 3; ++batch) {
    Update u = VisitInsertions(db, config, 15, &rng);
    EXPECT_TRUE(u.Validate(db).ok());
    ApplyUpdate(&db, u);
  }
  Result<ConformanceReport> report =
      CheckConformance(db, SocialSchema(true), SocialAccessSchema(config));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->conforms);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Zipf(50, 0.8), 50u);
    EXPECT_LT(rng.Zipf(50, 0.0), 50u);
    EXPECT_LT(rng.Zipf(1, 1.5), 1u);
  }
}

TEST(RngTest, UniformBoundsAndDeterminism) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Uniform(13);
    EXPECT_LT(va, 13u);
    EXPECT_EQ(va, b.Uniform(13));
  }
  Rng c(7);
  for (int i = 0; i < 100; ++i) {
    int64_t v = c.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

}  // namespace
}  // namespace scalein
