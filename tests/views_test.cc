#include "views/view_exec.h"
#include "views/vqsi.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "eval/containment.h"
#include "eval/cq_evaluator.h"
#include "incremental/delta_rules.h"
#include "query/parser.h"
#include "workload/social_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

struct SocialViews {
  SocialConfig config;
  Schema schema = SocialSchema(false);
  Database db{Schema{}};
  AccessSchema access;
  ViewSet views;
  Cq q2;

  SocialViews() {
    config.num_persons = 150;
    config.max_friends_per_person = 8;
    config.num_restaurants = 40;
    config.avg_visits_per_person = 5;
    config.seed = 77;
    db = GenerateSocial(config);
    access = SocialAccessSchema(config);
    // Example 1.1(c): V1 = NYC restaurants, V2 = visits by NYC residents.
    views.Define("V1(rid, rn, rating) :- restr(rid, rn, \"NYC\", rating)",
                 schema)
        .Define("V2(id, rid) :- visit(id, rid), person(id, pn, \"NYC\")",
                schema);
    Result<Cq> q = ParseCq(
        "Q2(p, rn) :- friend(p, id), visit(id, rid), "
        "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
        &schema);
    SI_CHECK(q.ok());
    q2 = *std::move(q);
  }
};

TEST(ViewDefTest, MaterializeAndRefresh) {
  SocialViews f;
  Result<Database> extended = MaterializeViews(f.db, f.views);
  ASSERT_TRUE(extended.ok());
  EXPECT_GT(extended->relation("V1").size(), 0u);
  EXPECT_GT(extended->relation("V2").size(), 0u);
  // V1 extent equals direct evaluation of its definition.
  CqEvaluator eval(&f.db);
  AnswerSet direct = eval.EvaluateFull(f.views.Find("V1")->definition);
  EXPECT_EQ(extended->relation("V1").size(), direct.size());

  // Refresh after a base change.
  f.db.Insert("restr", Tuple{Value::Int(999), Value::Str("new"),
                             Value::Str("NYC"), Value::Str("A")});
  Result<Database> again = MaterializeViews(f.db, f.views);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->relation("V1").size(), direct.size() + 1);
}

TEST(ViewDefTest, RejectsBadDefinitions) {
  Schema s;
  s.Relation("r", {"a", "b"});
  ViewSet views;
  ViewDef clash;
  clash.name = "r";
  Result<Cq> body = ParseCq("r2(x) :- r(x, y)", &s);
  ASSERT_TRUE(body.ok());
  clash.definition = *body;
  EXPECT_EQ(views.Add(clash, s).code(), StatusCode::kAlreadyExists);

  ViewDef dup_head;
  dup_head.name = "v";
  Result<Cq> dup = ParseCq("v(x, x) :- r(x, y)", &s);
  ASSERT_TRUE(dup.ok());
  dup_head.definition = *dup;
  EXPECT_EQ(views.Add(dup_head, s).code(), StatusCode::kInvalidArgument);
}

TEST(RewritingTest, ExpansionUnfoldsViews) {
  SocialViews f;
  Result<Cq> rw = ParseCq(
      "Q2p(p, rn) :- friend(p, id), V2(id, rid), V1(rid, rn, \"A\")");
  ASSERT_TRUE(rw.ok());
  Result<Cq> expanded = ExpandRewriting(*rw, f.views);
  ASSERT_TRUE(expanded.ok());
  // friend + (visit, person) + restr = 4 atoms.
  EXPECT_EQ(expanded->TableauSize(), 4u);
  EXPECT_EQ(BaseAtomCount(*rw, f.views), 1u);
  EXPECT_TRUE(CqEquivalent(*expanded, f.q2));
}

TEST(RewritingTest, SearchFindsExample11cRewriting) {
  SocialViews f;
  RewritingSearchOptions options;
  options.max_view_atoms = 2;
  options.max_base_atoms = 2;
  RewritingSearchResult result =
      FindRewritings(f.q2, f.views, f.schema, options);
  ASSERT_FALSE(result.rewritings.empty());
  // Some found rewriting must have a single base atom (the friend atom).
  bool found_small_base = false;
  for (const Cq& rw : result.rewritings) {
    Result<Cq> exp = ExpandRewriting(rw, f.views);
    ASSERT_TRUE(exp.ok());
    EXPECT_TRUE(CqEquivalent(*exp, f.q2)) << rw.ToString();
    if (BaseAtomCount(rw, f.views) <= 1) found_small_base = true;
  }
  EXPECT_TRUE(found_small_base);
}

TEST(RewritingTest, NoRewritingWhenViewsIrrelevant) {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("unrelated", {"x"});
  ViewSet views;
  views.Define("V(x) :- unrelated(x)", s);
  Result<Cq> q = ParseCq("Q(a) :- r(a, b)", &s);
  ASSERT_TRUE(q.ok());
  RewritingSearchOptions options;
  options.max_base_atoms = 0;  // force view-only rewritings
  RewritingSearchResult result = FindRewritings(*q, views, s, options);
  EXPECT_TRUE(result.rewritings.empty());
}

TEST(VqsiTest, UnconstrainedVariableAnalysis) {
  SocialViews f;
  Result<Cq> rw = ParseCq(
      "Q2p(p, rn) :- friend(p, id), V2(id, rid), V1(rid, rn, \"A\")");
  ASSERT_TRUE(rw.ok());
  // Both p and rn connect to the base friend atom through view joins
  // (the paper's analysis of Q2': rn is unconstrained).
  VarSet unconstrained = UnconstrainedDistinguishedVars(*rw, f.views);
  EXPECT_TRUE(unconstrained.count(V("rn")));
  EXPECT_TRUE(unconstrained.count(V("p")));

  // A view-only rewriting has no unconstrained variables.
  Result<Cq> view_only = ParseCq("Q(rid, rn) :- V1(rid, rn, \"A\")");
  ASSERT_TRUE(view_only.ok());
  EXPECT_TRUE(UnconstrainedDistinguishedVars(*view_only, f.views).empty());
}

TEST(VqsiTest, CompleteRewritingGivesYesWithMZero) {
  // Query answerable from views alone: VQSI yes with M = 0.
  Schema s;
  s.Relation("restr", {"rid", "name", "city", "rating"});
  ViewSet views;
  views.Define("V1(rid, rn, rating) :- restr(rid, rn, \"NYC\", rating)", s);
  Result<Cq> q =
      ParseCq("Q(rid, rn) :- restr(rid, rn, \"NYC\", \"A\")", &s);
  ASSERT_TRUE(q.ok());
  VqsiDecision d = DecideVqsiCq(*q, views, s, 0);
  EXPECT_EQ(d.verdict, Verdict::kYes);
  ASSERT_TRUE(d.rewriting.has_value());
  EXPECT_EQ(BaseAtomCount(*d.rewriting, views), 0u);
}

TEST(VqsiTest, NoWhenBasePartUnavoidable) {
  SocialViews f;
  // Q2 needs the friend atom; its distinguished variables stay connected to
  // it, so the Theorem 6.1 characterization answers no for any M.
  VqsiDecision d = DecideVqsiCq(f.q2, f.views, f.schema, 10);
  EXPECT_EQ(d.verdict, Verdict::kNo);
}

TEST(VqsiTest, Corollary62ParameterizedCheck) {
  SocialViews f;
  // With p fixed, the base part friend(p, id) is p-controlled: Example 6.3.
  Result<ViewScaleIndependenceResult> r = CheckViewScaleIndependence(
      f.q2, f.views, f.schema, f.access, {V("p")});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->holds);
  ASSERT_TRUE(r->rewriting.has_value());
  EXPECT_LE(BaseAtomCount(*r->rewriting, f.views), 1u);

  // Without the friend access statement there is no controlled base part.
  AccessSchema no_friend;
  no_friend.AddKey("person", {"id"});
  no_friend.AddKey("restr", {"rid"});
  Result<ViewScaleIndependenceResult> fails = CheckViewScaleIndependence(
      f.q2, f.views, f.schema, no_friend, {V("p")});
  ASSERT_TRUE(fails.ok());
  EXPECT_FALSE(fails->holds);
}

TEST(ViewExecTest, Example63BoundedBaseAccess) {
  SocialViews f;
  Result<ViewExecutor> exec =
      ViewExecutor::Create(f.db, f.schema, f.views, f.access);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  Result<Cq> rw = ParseCq(
      "Q2p(p, rn) :- friend(p, id), V2(id, rid), V1(rid, rn, \"A\")");
  ASSERT_TRUE(rw.ok());

  CqEvaluator reference(&f.db);
  for (int64_t p = 0; p < 10; ++p) {
    Binding params{{V("p"), Value::Int(p)}};
    ViewExecStats stats;
    Result<AnswerSet> via_views = exec->Evaluate(*rw, params, &stats);
    ASSERT_TRUE(via_views.ok()) << via_views.status().ToString();
    AnswerSet direct = reference.Evaluate(f.q2, params);
    EXPECT_EQ(*via_views, direct) << "p=" << p;
    // Base access bounded by the friend cap; views are free.
    EXPECT_LE(stats.base_tuples_fetched, f.config.max_friends_per_person);
  }
}

TEST(ViewExecTest, IncrementalViewMaintenanceIsBounded) {
  SocialViews f;
  Result<ViewExecutor> exec =
      ViewExecutor::Create(f.db, f.schema, f.views, f.access);
  ASSERT_TRUE(exec.ok());

  // Insertion-only base update: both views have bounded maintenance plans
  // (person-by-id lookups), so the incremental path must run.
  Update u;
  u.AddInsertion("restr", Tuple{Value::Int(5555), Value::Str("inc"),
                                Value::Str("NYC"), Value::Str("A")});
  u.AddInsertion("visit", Tuple{Value::Int(1), Value::Int(5555)});
  BoundedEvalStats stats;
  bool incremental = false;
  ASSERT_TRUE(exec->ApplyBaseUpdate(u, &stats, &incremental).ok());
  EXPECT_TRUE(incremental);
  // Maintenance touched a handful of base tuples, not the whole database.
  EXPECT_LE(stats.base_tuples_fetched, 16u);

  // Extents match a from-scratch materialization.
  Database updated = f.db.Clone();
  ApplyUpdate(&updated, u);
  Result<Database> fresh = MaterializeViews(updated, f.views);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(exec->extended_db().relation("V1").SetEquals(
      fresh->relation("V1")));
  EXPECT_TRUE(exec->extended_db().relation("V2").SetEquals(
      fresh->relation("V2")));
}

TEST(ViewExecTest, DeletionsFallBackToFullRefresh) {
  SocialViews f;
  Result<ViewExecutor> exec =
      ViewExecutor::Create(f.db, f.schema, f.views, f.access);
  ASSERT_TRUE(exec.ok());
  // V2's membership re-check needs a visit access path, which the plain
  // social access schema does not declare → deletions use the full refresh.
  const Relation& visit = f.db.relation("visit");
  ASSERT_GT(visit.size(), 0u);
  Update u;
  u.AddDeletion("visit", ToTuple(visit.TupleAt(0)));
  bool incremental = true;
  ASSERT_TRUE(exec->ApplyBaseUpdate(u, nullptr, &incremental).ok());
  EXPECT_FALSE(incremental);

  Database updated = f.db.Clone();
  ApplyUpdate(&updated, u);
  Result<Database> fresh = MaterializeViews(updated, f.views);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(exec->extended_db().relation("V2").SetEquals(
      fresh->relation("V2")));
}

TEST(ViewExecTest, BaseUpdatePropagatesThroughRefresh) {
  SocialViews f;
  Result<ViewExecutor> exec =
      ViewExecutor::Create(f.db, f.schema, f.views, f.access);
  ASSERT_TRUE(exec.ok());
  Result<Cq> rw = ParseCq(
      "Q2p(p, rn) :- friend(p, id), V2(id, rid), V1(rid, rn, \"A\")");
  ASSERT_TRUE(rw.ok());
  Binding params{{V("p"), Value::Int(2)}};
  Result<AnswerSet> before = exec->Evaluate(*rw, params);
  ASSERT_TRUE(before.ok());

  // Give person 2's first friend a visit to a fresh A-rated NYC restaurant.
  const Relation& friends = f.db.relation("friend");
  int64_t friend_id = -1;
  for (size_t i = 0; i < friends.size(); ++i) {
    if (friends.TupleAt(i)[0] == Value::Int(2)) {
      friend_id = friends.TupleAt(i)[1].AsInt();
      break;
    }
  }
  ASSERT_GE(friend_id, 0);
  Update u;
  u.AddInsertion("restr", Tuple{Value::Int(7777), Value::Str("fresh"),
                                Value::Str("NYC"), Value::Str("A")});
  u.AddInsertion("visit", Tuple{Value::Int(friend_id), Value::Int(7777)});
  ASSERT_TRUE(exec->ApplyBaseUpdate(u).ok());

  Result<AnswerSet> after = exec->Evaluate(*rw, params);
  ASSERT_TRUE(after.ok());
  // The new restaurant shows up iff the friend lives in NYC; either way the
  // result matches direct evaluation on the updated base.
  Database updated = f.db.Clone();
  ApplyUpdate(&updated, u);
  CqEvaluator reference(&updated);
  EXPECT_EQ(*after, reference.Evaluate(f.q2, params));
  EXPECT_TRUE(std::includes(after->begin(), after->end(), before->begin(),
                            before->end()));
}

}  // namespace
}  // namespace scalein
