#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace scalein::util {
namespace {

/// Clears the process-global registry when a test exits (the registry is
/// shared; a leaked armed site would leak faults into later tests).
struct GlobalFailpointGuard {
  ~GlobalFailpointGuard() { Failpoints::Global().Clear(); }
};

TEST(FailpointSpecTest, ParsesEveryClauseForm) {
  std::vector<FailpointConfig> configs;
  uint64_t seed = 0;
  Status s = ParseFailpointSpec(
      "scan_next=error;index_probe=error(25%);chase_step=error(every:50);"
      "delta_apply=delay(2ms);seed=7",
      &configs, &seed);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(seed, 7u);

  EXPECT_EQ(configs[0].site, "scan_next");
  EXPECT_EQ(configs[0].action, FailAction::kError);
  EXPECT_EQ(configs[0].trigger, FailTrigger::kAlways);

  EXPECT_EQ(configs[1].site, "index_probe");
  EXPECT_EQ(configs[1].trigger, FailTrigger::kProbability);
  EXPECT_DOUBLE_EQ(configs[1].probability, 0.25);

  EXPECT_EQ(configs[2].site, "chase_step");
  EXPECT_EQ(configs[2].trigger, FailTrigger::kEveryNth);
  EXPECT_EQ(configs[2].every_n, 50u);

  EXPECT_EQ(configs[3].site, "delta_apply");
  EXPECT_EQ(configs[3].action, FailAction::kDelay);
  EXPECT_EQ(configs[3].delay_ms, 2u);
}

TEST(FailpointSpecTest, RejectsMalformedSpecs) {
  std::vector<FailpointConfig> configs;
  uint64_t seed = 0;
  EXPECT_FALSE(ParseFailpointSpec("scan_next", &configs, &seed).ok());
  EXPECT_FALSE(ParseFailpointSpec("scan_next=explode", &configs, &seed).ok());
  EXPECT_FALSE(
      ParseFailpointSpec("scan_next=error(150%)", &configs, &seed).ok());
  EXPECT_FALSE(
      ParseFailpointSpec("scan_next=error(every:0)", &configs, &seed).ok());
  EXPECT_FALSE(ParseFailpointSpec("seed=abc", &configs, &seed).ok());
}

TEST(FailpointTest, DisarmedSitesAreFreeAndOk) {
  GlobalFailpointGuard guard;
  Failpoints::Global().Clear();
  EXPECT_FALSE(Failpoints::armed());
  EXPECT_TRUE(SCALEIN_FAILPOINT("scan_next").ok());
}

TEST(FailpointTest, AlwaysTriggerFiresEveryHit) {
  GlobalFailpointGuard guard;
  Failpoints& fp = Failpoints::Global();
  ASSERT_TRUE(fp.Configure("scan_next=error").ok());
  EXPECT_TRUE(Failpoints::armed());
  for (int i = 0; i < 5; ++i) {
    Status s = SCALEIN_FAILPOINT("scan_next");
    EXPECT_EQ(s.code(), StatusCode::kInternal);
    EXPECT_NE(s.message().find("scan_next"), std::string::npos);
  }
  // Unconfigured sites stay OK while others are armed.
  EXPECT_TRUE(SCALEIN_FAILPOINT("view_refresh").ok());
  EXPECT_EQ(fp.hits(), 5u);
  EXPECT_EQ(fp.fires(), 5u);
}

TEST(FailpointTest, EveryNthIsDeterministic) {
  GlobalFailpointGuard guard;
  Failpoints& fp = Failpoints::Global();
  ASSERT_TRUE(fp.Configure("chase_step=error(every:3)").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(!fp.Hit("chase_step").ok());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST(FailpointTest, ProbabilityStreamReplaysFromSeed) {
  GlobalFailpointGuard guard;
  Failpoints& fp = Failpoints::Global();
  auto run = [&fp](const std::string& spec) {
    EXPECT_TRUE(fp.Configure(spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(!fp.Hit("scan_next").ok());
    return fired;
  };
  std::vector<bool> a = run("scan_next=error(30%);seed=11");
  std::vector<bool> b = run("scan_next=error(30%);seed=11");
  std::vector<bool> c = run("scan_next=error(30%);seed=12");
  EXPECT_EQ(a, b);          // same (spec, seed) → identical schedule
  EXPECT_NE(a, c);          // different seed → different draws
  size_t fires = 0;
  for (bool f : a) fires += f;
  EXPECT_GT(fires, 20u);    // ~60 expected; loose two-sided sanity bounds
  EXPECT_LT(fires, 120u);
}

TEST(FailpointTest, ClearDisarms) {
  GlobalFailpointGuard guard;
  Failpoints& fp = Failpoints::Global();
  ASSERT_TRUE(fp.Configure("scan_next=error").ok());
  EXPECT_FALSE(fp.Hit("scan_next").ok());
  fp.Clear();
  EXPECT_FALSE(Failpoints::armed());
  EXPECT_TRUE(SCALEIN_FAILPOINT("scan_next").ok());
}

TEST(FailpointTest, InitFromEnvArmsFromVariable) {
  GlobalFailpointGuard guard;
  Failpoints& fp = Failpoints::Global();
  ::setenv("SCALEIN_FAILPOINTS", "index_probe=error", 1);
  EXPECT_TRUE(fp.InitFromEnv().ok());
  EXPECT_TRUE(Failpoints::armed());
  EXPECT_FALSE(fp.Hit("index_probe").ok());
  ::unsetenv("SCALEIN_FAILPOINTS");
  fp.Clear();
  // Unset variable: no-op, stays disarmed.
  EXPECT_TRUE(fp.InitFromEnv().ok());
  EXPECT_FALSE(Failpoints::armed());
}

}  // namespace
}  // namespace scalein::util
