#include "exec/governor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace scalein::exec {
namespace {

TEST(GovernorTest, UnarmedGovernorNeverTrips) {
  ResourceGovernor governor;
  governor.Arm(GovernorLimits{});
  EXPECT_FALSE(governor.limits().any());
  for (uint64_t i = 1; i <= 1000; ++i) {
    EXPECT_TRUE(governor.OnFetch(i, nullptr));
    EXPECT_TRUE(governor.OnOutput(1, nullptr));
    EXPECT_TRUE(governor.Checkpoint());
  }
  EXPECT_FALSE(governor.tripped());
}

TEST(GovernorTest, FetchBudgetTripsStrictlyAboveBudget) {
  ResourceGovernor governor;
  GovernorLimits limits;
  limits.fetch_budget = 5;
  governor.Arm(limits);
  // The budget itself is allowed (Q(D_Q) with |D_Q| ≤ M); only exceeding it
  // trips.
  EXPECT_TRUE(governor.OnFetch(5, nullptr));
  EXPECT_FALSE(governor.OnFetch(6, nullptr));
  ASSERT_TRUE(governor.tripped());
  EXPECT_EQ(governor.trip().kind, LimitKind::kFetchBudget);
  EXPECT_EQ(governor.trip().fetched_at_trip, 6u);
  EXPECT_EQ(governor.trip().ToStatus().code(), StatusCode::kResourceExhausted);
}

TEST(GovernorTest, OutputRowCapTrips) {
  ResourceGovernor governor;
  GovernorLimits limits;
  limits.output_row_cap = 3;
  governor.Arm(limits);
  EXPECT_TRUE(governor.OnOutput(3, nullptr));
  EXPECT_FALSE(governor.OnOutput(1, nullptr));
  EXPECT_EQ(governor.trip().kind, LimitKind::kOutputRows);
  EXPECT_EQ(governor.rows_emitted(), 4u);
  EXPECT_EQ(governor.trip().ToStatus().code(), StatusCode::kResourceExhausted);
}

TEST(GovernorTest, DeadlineTripsAfterExpiry) {
  ResourceGovernor governor;
  GovernorLimits limits;
  limits.deadline_ms = 1;
  governor.Arm(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The clock is only consulted every kCheckInterval probes, so a trip can
  // be detected up to 63 probes late — never more.
  bool tripped = false;
  for (uint32_t i = 0; i <= ResourceGovernor::kCheckInterval && !tripped; ++i) {
    tripped = !governor.Checkpoint();
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(governor.trip().kind, LimitKind::kDeadline);
  EXPECT_EQ(governor.trip().ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernorTest, CancellationTokenObservedAtCheckpoints) {
  CancellationToken token;
  ResourceGovernor governor;
  GovernorLimits limits;
  limits.has_cancel = true;
  limits.cancel = token;
  governor.Arm(limits);
  EXPECT_TRUE(governor.Checkpoint());
  token.Cancel();
  bool tripped = false;
  for (uint32_t i = 0; i <= ResourceGovernor::kCheckInterval && !tripped; ++i) {
    tripped = !governor.Checkpoint();
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(governor.trip().kind, LimitKind::kCancelled);
  EXPECT_EQ(governor.trip().ToStatus().code(), StatusCode::kCancelled);
}

TEST(GovernorTest, FirstTripSticks) {
  ResourceGovernor governor;
  GovernorLimits limits;
  limits.fetch_budget = 1;
  limits.output_row_cap = 1;
  governor.Arm(limits);
  EXPECT_FALSE(governor.OnFetch(2, nullptr));
  // A later output overrun does not overwrite the recorded trip.
  EXPECT_FALSE(governor.OnOutput(5, nullptr));
  EXPECT_EQ(governor.trip().kind, LimitKind::kFetchBudget);
}

TEST(GovernorTest, RearmingClearsTheTrip) {
  ResourceGovernor governor;
  GovernorLimits limits;
  limits.output_row_cap = 1;
  governor.Arm(limits);
  EXPECT_FALSE(governor.OnOutput(2, nullptr));
  governor.Arm(limits);
  EXPECT_FALSE(governor.tripped());
  EXPECT_EQ(governor.rows_emitted(), 0u);
  EXPECT_TRUE(governor.OnOutput(1, nullptr));
}

TEST(GovernorTest, PinnedResolvesRelativeDeadlineOnce) {
  GovernorLimits limits;
  limits.deadline_ms = 60'000;
  GovernorLimits pinned = limits.Pinned();
  EXPECT_GT(pinned.deadline_ns, 0u);
  // Pinning again keeps the already-absolute deadline (shared batch clock).
  GovernorLimits again = pinned.Pinned();
  EXPECT_EQ(again.deadline_ns, pinned.deadline_ns);
  // Unset limits stay unset.
  EXPECT_EQ(GovernorLimits{}.Pinned().deadline_ns, 0u);
}

// A zero fetch budget means "unlimited", NOT "zero allowance". The serve
// admission controller relies on this: it must never hand a drained session
// envelope a fetch_budget of 0 expecting it to refuse fetches (DecideAdmission
// clamps sub-budgets to >= 1 for exactly this reason).
TEST(GovernorTest, ZeroFetchBudgetIsDisabledNotZeroAllowance) {
  ResourceGovernor governor;
  GovernorLimits limits;
  limits.fetch_budget = 0;
  governor.Arm(limits);
  EXPECT_FALSE(governor.limits().any());
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(governor.OnFetch(100, nullptr));
  }
  EXPECT_FALSE(governor.tripped());
}

// An envelope whose deadline already passed at admission time (e.g. a query
// that sat in the admission queue past its SLA) must trip at the very first
// check window, before meaningful work happens.
TEST(GovernorTest, PreExpiredDeadlineAtAdmissionTripsImmediately) {
  ResourceGovernor governor;
  GovernorLimits limits;
  limits.deadline_ms = 1;
  GovernorLimits pinned = limits.Pinned();
  // Pin the absolute deadline first, then let it expire before arming —
  // exactly the shape of a queued query admitted after its deadline.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  governor.Arm(pinned);
  bool tripped = false;
  for (uint32_t i = 0; i <= ResourceGovernor::kCheckInterval && !tripped; ++i) {
    tripped = !governor.Checkpoint();
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(governor.trip().kind, LimitKind::kDeadline);
  EXPECT_EQ(governor.trip().fetched_at_trip, 0u);
}

// Cancellation racing the first Charge: the token flips before the governor
// sees any fetch. The first check window must observe it, and the trip must
// report kCancelled (not some later limit the doomed work would have hit).
TEST(GovernorTest, CancellationBeforeFirstChargeWinsTheRace) {
  CancellationToken token;
  token.Cancel();
  ResourceGovernor governor;
  GovernorLimits limits;
  limits.fetch_budget = 1;  // would also trip — cancellation must win
  limits.has_cancel = true;
  limits.cancel = token;
  governor.Arm(limits);
  bool tripped = false;
  uint32_t probes = 0;
  for (; probes <= ResourceGovernor::kCheckInterval && !tripped; ++probes) {
    tripped = !governor.OnFetch(1, nullptr);
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(governor.trip().kind, LimitKind::kCancelled);
  // The observation is bounded by one check window.
  EXPECT_LE(probes, ResourceGovernor::kCheckInterval + 1);
}

// Cancellation from another thread concurrent with a charge loop: the loop
// must terminate (the trip is observed) without any additional coordination.
TEST(GovernorTest, CancellationFromAnotherThreadStopsChargeLoop) {
  CancellationToken token;
  ResourceGovernor governor;
  GovernorLimits limits;
  limits.has_cancel = true;
  limits.cancel = token;
  governor.Arm(limits);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.Cancel();
  });
  // Unbounded-looking loop: only the token can stop it.
  while (governor.OnFetch(1, nullptr)) {
  }
  canceller.join();
  EXPECT_EQ(governor.trip().kind, LimitKind::kCancelled);
}

TEST(GovernorTest, TripInfoRendersKindAndDetail) {
  ResourceGovernor governor;
  GovernorLimits limits;
  limits.fetch_budget = 2;
  governor.Arm(limits);
  EXPECT_FALSE(governor.OnFetch(3, nullptr));
  std::string text = governor.trip().ToString();
  EXPECT_NE(text.find("fetch-budget"), std::string::npos);
  EXPECT_EQ(std::string(LimitKindName(LimitKind::kDeadline)), "deadline");
  EXPECT_FALSE(TripInfo{}.tripped());
  EXPECT_TRUE(TripInfo{}.ToStatus().ok());
}

}  // namespace
}  // namespace scalein::exec
