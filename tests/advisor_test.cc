#include "core/advisor.h"

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "query/parser.h"
#include "util/failpoint.h"
#include "workload/social_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

FoQuery FQ(const char* text, const Schema& s) {
  Result<FoQuery> q = ParseFoQuery(text, &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

TEST(AdvisorTest, EmptyWorkloadTriviallySatisfied) {
  Schema s;
  s.Relation("r", {"a", "b"});
  Result<AdvisorResult> r = AdviseAccessSchema({}, s, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
  EXPECT_TRUE(r->design.statements().empty());
}

TEST(AdvisorTest, SingleAtomNeedsOneStatement) {
  Schema s;
  s.Relation("r", {"a", "b"});
  WorkloadQuery wq{FQ("Q(x, y) := r(x, y)", s), {V("x")}};
  Result<AdvisorResult> r = AdviseAccessSchema({wq}, s, nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  ASSERT_EQ(r->design.statements().size(), 1u);
  EXPECT_EQ(r->design.statements()[0].relation, "r");
  EXPECT_EQ(r->design.statements()[0].key_attrs,
            (std::vector<std::string>{"a"}));
}

TEST(AdvisorTest, JoinWorkloadGetsTwoStatements) {
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("t", {"a", "b"});
  WorkloadQuery wq{FQ("Q(x, z) := exists y. r(x, y) and t(y, z)", s), {V("x")}};
  Result<AdvisorResult> r = AdviseAccessSchema({wq}, s, nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  EXPECT_EQ(r->design.statements().size(), 2u);
  // The design must actually make the query controlled.
  Result<ControllabilityAnalysis> check =
      ControllabilityAnalysis::Analyze(wq.query.body, s, r->design);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->IsControlledBy({V("x")}));
}

TEST(AdvisorTest, SharedStatementServesTwoQueries) {
  Schema s;
  s.Relation("r", {"a", "b"});
  WorkloadQuery q1{FQ("Q(x, y) := r(x, y)", s), {V("x")}};
  WorkloadQuery q2{FQ("P(x) := exists y. r(x, y)", s), {V("x")}};
  Result<AdvisorResult> r = AdviseAccessSchema({q1, q2}, s, nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  EXPECT_EQ(r->design.statements().size(), 1u);
}

TEST(AdvisorTest, SampleCalibratesBounds) {
  SocialConfig config;
  config.num_persons = 100;
  config.max_friends_per_person = 6;
  Schema s = SocialSchema(false);
  Database sample = GenerateSocial(config);
  WorkloadQuery wq{
      FQ("Q1(p, name) := exists id. friend(p, id) and person(id, name, "
         "\"NYC\")",
         s),
      {V("p")}};
  Result<AdvisorResult> r = AdviseAccessSchema({wq}, s, &sample);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  // Calibrated Ns: friend-by-id1 is at most the cap; person-by-id is 1.
  for (const AccessStatement& stmt : r->design.statements()) {
    if (stmt.relation == "friend") {
      EXPECT_LE(stmt.max_tuples, config.max_friends_per_person);
    }
    if (stmt.relation == "person") {
      EXPECT_EQ(stmt.max_tuples, 1u);
    }
  }
  EXPECT_GT(r->total_fetch_bound, 0);
}

TEST(AdvisorTest, ImpossibleWorkloadReportsNotFound) {
  Schema s;
  s.Relation("r", {"a", "b"});
  // Asking for control by a variable that never constrains anything: the
  // answer enumerates all of r regardless, so no (selective) design works
  // within the statement budget.
  WorkloadQuery wq{FQ("Q(x, y) := r(x, y)", s), {}};
  AdvisorOptions options;
  options.default_bound = 10;  // small N: full-relation access not offered
  Result<AdvisorResult> r = AdviseAccessSchema({wq}, s, nullptr, options);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
}

TEST(AdvisorTest, CandidateFailpointAbortsSearch) {
  util::Failpoints::Global().Clear();
  ASSERT_TRUE(
      util::Failpoints::Global().Configure("advisor_candidates=error").ok());
  Schema s;
  s.Relation("r", {"a", "b"});
  WorkloadQuery wq{FQ("Q(x, y) := r(x, y)", s), {V("x")}};
  Result<AdvisorResult> r = AdviseAccessSchema({wq}, s, nullptr);
  util::Failpoints::Global().Clear();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("advisor_candidates"),
            std::string::npos);
}

TEST(AdvisorTest, SearchEmitsFlightRecorderEvent) {
  obs::FlightRecorder recorder;
  obs::FlightRecorder::InstallGlobal(&recorder);
  Schema s;
  s.Relation("r", {"a", "b"});
  WorkloadQuery wq{FQ("Q(x, y) := r(x, y)", s), {V("x")}};
  Result<AdvisorResult> r = AdviseAccessSchema({wq}, s, nullptr);
  obs::FlightRecorder::InstallGlobal(nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  bool saw_search = false;
  for (const obs::FlightEvent& e : recorder.events()) {
    if (e.kind == obs::EventKind::kAdvisorSearch) saw_search = true;
  }
  EXPECT_TRUE(saw_search);
}

}  // namespace
}  // namespace scalein
