#include "query/formula.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }
Term TV(const char* name) { return Term::Var(V(name)); }
Term TC(int64_t c) { return Term::Const(Value::Int(c)); }

TEST(FormulaTest, FreeVariablesOfAtomsAndEq) {
  Formula atom = Formula::Atom("r", {TV("x"), TC(3), TV("y")});
  EXPECT_EQ(atom.FreeVariables(), (VarSet{V("x"), V("y")}));
  Formula eq = Formula::Eq(TV("x"), TC(1));
  EXPECT_EQ(eq.FreeVariables(), (VarSet{V("x")}));
}

TEST(FormulaTest, QuantifiersBindVariables) {
  Formula f = Formula::Exists(
      {V("y")}, Formula::Atom("r", {TV("x"), TV("y")}));
  EXPECT_EQ(f.FreeVariables(), (VarSet{V("x")}));
  Formula g = Formula::Forall({V("x")}, f);
  EXPECT_TRUE(g.FreeVariables().empty());
}

TEST(FormulaTest, SizeCountsNodes) {
  Formula f = Formula::And(Formula::Atom("r", {TV("x")}),
                           Formula::Not(Formula::Atom("s", {TV("x")})));
  EXPECT_EQ(f.Size(), 4u);  // and, atom, not, atom
}

TEST(FormulaTest, StructuralEquality) {
  Formula a = Formula::And(Formula::Atom("r", {TV("x")}),
                           Formula::Eq(TV("x"), TC(1)));
  Formula b = Formula::And(Formula::Atom("r", {TV("x")}),
                           Formula::Eq(TV("x"), TC(1)));
  Formula c = Formula::And(Formula::Atom("r", {TV("y")}),
                           Formula::Eq(TV("x"), TC(1)));
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

TEST(FormulaTest, SubstituteFreeOnly) {
  // ∃y r(x, y): substituting y must not touch the bound occurrence.
  Formula f = Formula::Exists({V("y")}, Formula::Atom("r", {TV("x"), TV("y")}));
  Formula sub = f.Substitute({{V("x"), TC(7)}, {V("y"), TC(9)}});
  EXPECT_EQ(sub.kind(), FormulaKind::kExists);
  const Formula& atom = sub.body();
  EXPECT_EQ(atom.args()[0], TC(7));
  EXPECT_TRUE(atom.args()[1].is_var());
}

TEST(FormulaTest, SubstituteAvoidsCapture) {
  // ∃y r(x, y) with x := y must rename the bound y.
  Formula f = Formula::Exists({V("y")}, Formula::Atom("r", {TV("x"), TV("y")}));
  Formula sub = f.Substitute({{V("x"), TV("y")}});
  ASSERT_EQ(sub.kind(), FormulaKind::kExists);
  const Formula& atom = sub.body();
  ASSERT_TRUE(atom.args()[0].is_var());
  ASSERT_TRUE(atom.args()[1].is_var());
  EXPECT_EQ(atom.args()[0].var(), V("y"));          // the substituted-in y
  EXPECT_NE(atom.args()[1].var(), V("y"));          // the renamed bound var
  EXPECT_EQ(sub.quantified()[0], atom.args()[1].var());
  EXPECT_EQ(sub.FreeVariables(), (VarSet{V("y")}));
}

TEST(FormulaTest, IsEqualityCondition) {
  EXPECT_TRUE(Formula::True().IsEqualityCondition());
  EXPECT_TRUE(Formula::Eq(TV("x"), TV("y")).IsEqualityCondition());
  EXPECT_TRUE(Formula::Not(Formula::Eq(TV("x"), TC(1))).IsEqualityCondition());
  EXPECT_TRUE(Formula::Or(Formula::Eq(TV("x"), TC(1)),
                          Formula::Eq(TV("x"), TC(2)))
                  .IsEqualityCondition());
  EXPECT_FALSE(Formula::Atom("r", {TV("x")}).IsEqualityCondition());
  EXPECT_FALSE(
      Formula::And(Formula::Eq(TV("x"), TC(1)), Formula::Atom("r", {TV("x")}))
          .IsEqualityCondition());
}

TEST(FormulaTest, ToStringRoundTripsThroughParser) {
  const char* queries[] = {
      "Q(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      "Q() := forall x. r(x) implies exists y. s(x, y)",
      "Q(x) := r(x) and not (s(x) or t(x))",
      "Q(x) := r(x) and x != 3",
  };
  for (const char* text : queries) {
    Result<FoQuery> q = ParseFoQuery(text);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status().ToString();
    Result<FoQuery> again = ParseFoQuery(q->ToString());
    ASSERT_TRUE(again.ok()) << q->ToString();
    EXPECT_TRUE(q->body.Equals(again->body)) << q->ToString();
  }
}

TEST(FormulaTest, VarSetOperations) {
  VarSet a{V("x"), V("y")};
  VarSet b{V("y"), V("z")};
  EXPECT_EQ(VarUnion(a, b), (VarSet{V("x"), V("y"), V("z")}));
  EXPECT_EQ(VarMinus(a, b), (VarSet{V("x")}));
  EXPECT_EQ(VarIntersect(a, b), (VarSet{V("y")}));
  EXPECT_TRUE(VarSubset(VarSet{V("x")}, a));
  EXPECT_FALSE(VarSubset(a, b));
  EXPECT_EQ(VarSetToString(VarSet{V("y"), V("x")}), "{x, y}");
}

TEST(FormulaTest, FreshVariablesAreDistinct) {
  Variable a = Variable::Fresh("v");
  Variable b = Variable::Fresh("v");
  EXPECT_NE(a, b);
  EXPECT_NE(a.name(), b.name());
}

TEST(FoQueryTest, WellFormedness) {
  Result<FoQuery> q = ParseFoQuery("Q(x) := r(x)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsWellFormed());
  // Head must list exactly the free variables.
  EXPECT_FALSE(ParseFoQuery("Q(x, y) := r(x)").ok());
  EXPECT_FALSE(ParseFoQuery("Q() := r(x)").ok());
}

}  // namespace
}  // namespace scalein
