#include "eval/cq_evaluator.h"

#include <gtest/gtest.h>

#include "eval/fo_evaluator.h"
#include "query/parser.h"
#include "workload/formula_gen.h"

namespace scalein {
namespace {

Schema GraphSchema() {
  Schema s;
  s.Relation("e", {"a", "b"}).Relation("v", {"a"});
  return s;
}

TEST(CqEvaluatorTest, JoinWithConstants) {
  Schema s = GraphSchema();
  Database db(s);
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("e", Tuple{Value::Int(2), Value::Int(3)});
  db.Insert("e", Tuple{Value::Int(2), Value::Int(4)});
  CqEvaluator eval(&db);
  Result<Cq> q = ParseCq("Q(z) :- e(1, y), e(y, z)", &s);
  ASSERT_TRUE(q.ok());
  AnswerSet answers = eval.Evaluate(*q);
  EXPECT_EQ(answers.size(), 2u);
  EXPECT_TRUE(answers.count(Tuple{Value::Int(3)}));
  EXPECT_TRUE(answers.count(Tuple{Value::Int(4)}));
}

TEST(CqEvaluatorTest, RepeatedVariableInAtom) {
  Schema s = GraphSchema();
  Database db(s);
  db.Insert("e", Tuple{Value::Int(1), Value::Int(1)});
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  CqEvaluator eval(&db);
  Result<Cq> q = ParseCq("Q(x) :- e(x, x)", &s);
  ASSERT_TRUE(q.ok());
  AnswerSet answers = eval.Evaluate(*q);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(*answers.begin(), Tuple{Value::Int(1)});
}

TEST(CqEvaluatorTest, BooleanEarlyExit) {
  Schema s = GraphSchema();
  Database db(s);
  for (int64_t i = 0; i < 100; ++i) {
    db.Insert("e", Tuple{Value::Int(i), Value::Int(i + 1)});
  }
  CqEvaluator eval(&db);
  Result<Cq> q = ParseCq("Q() :- e(x, y), e(y, z)", &s);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(eval.EvaluateBoolean(*q));
  // Early exit examines far fewer candidates than the full evaluation.
  EXPECT_LT(eval.tuples_examined(), 50u);
}

TEST(CqEvaluatorTest, BindingAndFullHead) {
  Schema s = GraphSchema();
  Database db(s);
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("e", Tuple{Value::Int(3), Value::Int(4)});
  CqEvaluator eval(&db);
  Result<Cq> q = ParseCq("Q(x, y) :- e(x, y)", &s);
  ASSERT_TRUE(q.ok());
  Binding bind{{Variable::Named("x"), Value::Int(1)}};
  AnswerSet open = eval.Evaluate(*q, bind);
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(*open.begin(), Tuple{Value::Int(2)});
  AnswerSet full = eval.EvaluateFull(*q, bind);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(*full.begin(), (Tuple{Value::Int(1), Value::Int(2)}));
}

TEST(CqEvaluatorTest, UcqUnion) {
  Schema s = GraphSchema();
  Database db(s);
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("v", Tuple{Value::Int(9)});
  CqEvaluator eval(&db);
  Result<Ucq> u = ParseUcq("Q(x) :- e(x, y)\nQ(x) :- v(x)\n", &s);
  ASSERT_TRUE(u.ok());
  AnswerSet answers = eval.EvaluateFull(*u);
  EXPECT_EQ(answers.size(), 2u);
}

TEST(CqEvaluatorTest, UnknownRelationYieldsEmpty) {
  Schema s = GraphSchema();
  Database db(s);
  CqEvaluator eval(&db);
  Cq q("Q", {Term::Var(Variable::Named("x"))},
       {CqAtom{"ghost", {Term::Var(Variable::Named("x"))}}});
  EXPECT_TRUE(eval.Evaluate(q).empty());
}

/// Property: on random small instances, the CQ evaluator agrees with the
/// naive FO reference semantics (for distinct-variable heads both use
/// satisfying-assignment answers).
class CqVsFoProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqVsFoProperty, AgreesWithReferenceEvaluator) {
  Rng rng(GetParam());
  FormulaGenConfig config;
  config.num_relations = 2;
  config.max_arity = 2;
  config.num_variables = 3;
  config.domain_size = 3;
  Schema schema = RandomSchema(config, &rng);
  for (int round = 0; round < 10; ++round) {
    Database db = RandomDatabase(schema, config, 8, &rng);
    Cq q = RandomCq(schema, config, 1 + rng.Uniform(3), &rng);
    // Use distinct-variable heads only so ToFoQuery applies.
    VarSet seen;
    bool distinct_var_head = true;
    for (const Term& t : q.head()) {
      if (!t.is_var() || !seen.insert(t.var()).second) {
        distinct_var_head = false;
        break;
      }
    }
    if (!distinct_var_head) continue;
    CqEvaluator cq_eval(&db);
    FoEvaluator fo_eval(&db);
    AnswerSet via_cq = cq_eval.EvaluateFull(q);
    AnswerSet via_fo = fo_eval.Evaluate(q.ToFoQuery());
    EXPECT_EQ(via_cq, via_fo) << q.ToString() << "\n" << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqVsFoProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace scalein
