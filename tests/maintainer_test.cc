#include "incremental/maintainer.h"

#include <gtest/gtest.h>

#include "eval/cq_evaluator.h"
#include "query/parser.h"
#include "workload/update_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

struct SocialFixture {
  SocialConfig config;
  Schema schema = SocialSchema(false);
  Database db{Schema{}};
  AccessSchema access;
  Cq q2;

  SocialFixture() {
    config.num_persons = 120;
    config.max_friends_per_person = 8;
    config.num_restaurants = 30;
    config.avg_visits_per_person = 4;
    config.seed = 31;
    db = GenerateSocial(config);
    access = SocialAccessSchema(config);
    // Q2 maintenance additionally needs visit lookups by id and by rid, and a
    // restaurant-by-city path for the membership re-check direction.
    access.Add("visit", {"id"}, 64);
    access.Add("visit", {"rid"}, 4 * config.num_persons);
    SI_CHECK(access.BuildIndexes(&db, schema).ok());
    Result<Cq> q = ParseCq(
        "Q2(p, rn) :- friend(p, id), visit(id, rid), "
        "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
        &schema);
    SI_CHECK(q.ok());
    q2 = *std::move(q);
  }
};

TEST(MaintainerTest, Example11bInsertionsAreSupported) {
  SocialFixture f;
  Result<IncrementalMaintainer> m =
      IncrementalMaintainer::Create(f.q2, f.schema, f.access, {V("p")});
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_TRUE(m->SupportsInsertions("visit"));
  // Example 1.1(b): each inserted visit tuple triggers a bounded number of
  // lookups (friend-of-p check, person city check, restaurant lookup).
  EXPECT_GT(m->FetchBoundPerInsertedTuple("visit"), 0);
}

TEST(MaintainerTest, InsertionsMatchRecomputation) {
  SocialFixture f;
  Result<IncrementalMaintainer> m =
      IncrementalMaintainer::Create(f.q2, f.schema, f.access, {V("p")});
  ASSERT_TRUE(m.ok());
  Binding params{{V("p"), Value::Int(3)}};
  Result<AnswerSet> answers = m->InitialAnswers(&f.db, params);
  ASSERT_TRUE(answers.ok());

  Rng rng(7);
  for (int batch = 0; batch < 5; ++batch) {
    Update u = VisitInsertions(f.db, f.config, 10, &rng);
    BoundedEvalStats stats;
    Status s = m->Maintain(&f.db, u, params, &*answers, &stats);
    ASSERT_TRUE(s.ok()) << s.ToString();
    CqEvaluator eval(&f.db);
    AnswerSet recomputed = eval.EvaluateFull(f.q2, params);
    EXPECT_EQ(*answers, recomputed) << "batch " << batch;
  }
}

TEST(MaintainerTest, FetchesScaleWithUpdateNotDatabase) {
  // 3|∆D|-style accounting: base accesses per batch depend on |∆D| and the
  // static bounds, not on |D|.
  uint64_t fetches[2] = {0, 0};
  int slot = 0;
  for (uint64_t persons : {100u, 1000u}) {
    SocialConfig config;
    config.num_persons = persons;
    config.max_friends_per_person = 8;
    config.num_restaurants = 30;
    config.avg_visits_per_person = 4;
    config.seed = 12;
    Schema schema = SocialSchema(false);
    Database db = GenerateSocial(config);
    AccessSchema access = SocialAccessSchema(config);
    access.Add("visit", {"id"}, 64);
    ASSERT_TRUE(access.BuildIndexes(&db, schema).ok());
    Result<Cq> q = ParseCq(
        "Q2(p, rn) :- friend(p, id), visit(id, rid), "
        "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
        &schema);
    ASSERT_TRUE(q.ok());
    Result<IncrementalMaintainer> m =
        IncrementalMaintainer::Create(*q, schema, access, {V("p")});
    ASSERT_TRUE(m.ok());
    Binding params{{V("p"), Value::Int(3)}};
    Result<AnswerSet> answers = m->InitialAnswers(&db, params);
    ASSERT_TRUE(answers.ok());
    Rng rng(9);
    Update u = VisitInsertions(db, config, 20, &rng);
    BoundedEvalStats stats;
    ASSERT_TRUE(m->Maintain(&db, u, params, &*answers, &stats).ok());
    fetches[slot++] = stats.base_tuples_fetched;
  }
  // Same |∆D|, 10x the data: fetch counts stay in the same ballpark.
  EXPECT_LE(fetches[1], fetches[0] * 3 + 100);
}

TEST(MaintainerTest, DeletionsRequireMembershipRecheckPath) {
  SocialFixture f;
  // The fixture's access schema includes visit-by-id and visit-by-rid, which
  // makes the membership query (p + head vars fixed) controllable.
  Result<IncrementalMaintainer> m =
      IncrementalMaintainer::Create(f.q2, f.schema, f.access, {V("p")});
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->SupportsDeletions());

  // Without the visit access statements, deletions must be refused.
  AccessSchema weaker = SocialAccessSchema(f.config);
  Result<IncrementalMaintainer> weak =
      IncrementalMaintainer::Create(f.q2, f.schema, weaker, {V("p")});
  ASSERT_TRUE(weak.ok());
  EXPECT_FALSE(weak->SupportsDeletions());
  Update del;
  del.AddDeletion("visit", ToTuple(f.db.relation("visit").TupleAt(0)));
  AnswerSet dummy;
  Status s = weak->Maintain(&f.db, del, {{V("p"), Value::Int(3)}}, &dummy);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(MaintainerTest, MixedUpdatesMatchRecomputation) {
  SocialFixture f;
  Result<IncrementalMaintainer> m =
      IncrementalMaintainer::Create(f.q2, f.schema, f.access, {V("p")});
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->SupportsDeletions());
  Binding params{{V("p"), Value::Int(5)}};
  Result<AnswerSet> answers = m->InitialAnswers(&f.db, params);
  ASSERT_TRUE(answers.ok());

  Rng rng(21);
  for (int batch = 0; batch < 5; ++batch) {
    Update u = VisitInsertions(f.db, f.config, 6, &rng);
    // Mix in deletions of existing visit tuples.
    const Relation& visit = f.db.relation("visit");
    for (int d = 0; d < 4 && visit.size() > 0; ++d) {
      Tuple victim = ToTuple(visit.TupleAt(rng.Uniform(visit.size())));
      bool already = false;
      for (const auto& [rel, rows] : u.deletions) {
        for (const Tuple& t : rows) {
          if (rel == "visit" && t == victim) already = true;
        }
      }
      if (!already) u.AddDeletion("visit", victim);
    }
    Status s = m->Maintain(&f.db, u, params, &*answers);
    ASSERT_TRUE(s.ok()) << s.ToString();
    CqEvaluator eval(&f.db);
    EXPECT_EQ(*answers, eval.EvaluateFull(f.q2, params)) << "batch " << batch;
  }
}

TEST(MaintainerTest, FriendInsertionsAlsoMaintained) {
  SocialFixture f;
  Result<IncrementalMaintainer> m =
      IncrementalMaintainer::Create(f.q2, f.schema, f.access, {V("p")});
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->SupportsInsertions("friend"));
  Binding params{{V("p"), Value::Int(3)}};
  Result<AnswerSet> answers = m->InitialAnswers(&f.db, params);
  ASSERT_TRUE(answers.ok());
  // New friendship for person 3: may surface new restaurants.
  Update u;
  int64_t target = 77;
  if (!f.db.relation("friend").Contains(
          Tuple{Value::Int(3), Value::Int(target)})) {
    u.AddInsertion("friend", Tuple{Value::Int(3), Value::Int(target)});
  }
  ASSERT_TRUE(m->Maintain(&f.db, u, params, &*answers).ok());
  CqEvaluator eval(&f.db);
  EXPECT_EQ(*answers, eval.EvaluateFull(f.q2, params));
}

}  // namespace
}  // namespace scalein
