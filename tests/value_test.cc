#include "relational/value.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace scalein {
namespace {

TEST(ValueTest, IntBasics) {
  Value v = Value::Int(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_FALSE(v.is_string());
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, NegativeInt) {
  Value v = Value::Int(-7);
  EXPECT_EQ(v.AsInt(), -7);
  EXPECT_EQ(v.ToString(), "-7");
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, StringBasics) {
  Value v = Value::Str("NYC");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "NYC");
  EXPECT_EQ(v.ToString(), "\"NYC\"");
}

TEST(ValueTest, StringInterningGivesEquality) {
  Value a = Value::Str("hello");
  Value b = Value::Str("hello");
  Value c = Value::Str("world");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueTest, IntAndStringNeverEqual) {
  // Interned string ids could collide numerically with int payloads; the kind
  // tag must keep them apart.
  Value s = Value::Str("zero-ish");
  Value i = Value::Int(0);
  EXPECT_NE(s, i);
}

TEST(ValueTest, OrderingIntsBeforeStringsAndLexicographic) {
  Value i1 = Value::Int(5);
  Value i2 = Value::Int(9);
  Value s1 = Value::Str("abc");
  Value s2 = Value::Str("abd");
  EXPECT_LT(i1, i2);
  EXPECT_LT(i2, s1);
  EXPECT_LT(s1, s2);
  EXPECT_FALSE(s2 < s1);
}

TEST(ValueTest, OrderingIsByContentNotInternId) {
  // Intern "zzz" before "aaa": order must still be lexicographic.
  Value z = Value::Str("zzz$order");
  Value a = Value::Str("aaa$order");
  EXPECT_LT(a, z);
}

TEST(ValueTest, UsableInOrderedAndUnorderedContainers) {
  std::set<Value> ordered{Value::Int(3), Value::Int(1), Value::Str("x")};
  EXPECT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered.begin()->AsInt(), 1);

  std::unordered_set<Value, ValueHash> hashed;
  for (int i = 0; i < 100; ++i) hashed.insert(Value::Int(i % 10));
  EXPECT_EQ(hashed.size(), 10u);
}

TEST(ValueTest, EmptyStringIsValid) {
  Value v = Value::Str("");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "");
  EXPECT_EQ(v, Value::Str(""));
}

}  // namespace
}  // namespace scalein
