#include "obs/workload.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/shell.h"
#include "obs/correlation.h"
#include "obs/journal.h"
#include "util/failpoint.h"

namespace scalein::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void RemoveJournalFiles(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  for (int gen = 1; gen <= JournalStore::kRotations; ++gen) {
    std::filesystem::remove(path + "." + std::to_string(gen), ec);
  }
}

AccessCertificate MakeCert(int i) {
  AccessCertificate cert;
  cert.query_fingerprint = "fp" + std::to_string(i % 2);
  cert.query_id = "deadbeefdeadbeef-" + std::to_string(i + 1);
  cert.query_text = "Q(x) := r(x)";
  cert.static_bound = 100;
  cert.actual_fetches = static_cast<uint64_t>(10 + i);
  cert.index_lookups = 2;
  SealCertificate(&cert);
  return cert;
}

std::string Must(Shell* shell, std::string_view line) {
  Result<std::string> out = shell->Execute(line);
  SI_CHECK_MSG(out.ok(), out.status().message().c_str());
  return *out;
}

Shell LoadedShell() {
  Shell shell;
  Must(&shell, "schema relation person(id, name, city)");
  Must(&shell, "schema relation friend(id1, id2)");
  Must(&shell, "schema relation secret(a, b)");
  Must(&shell, "access access friend(id1) N=50");
  Must(&shell, "access key person(id)");
  Must(&shell, "row person 1,\"ada\",\"NYC\"");
  Must(&shell, "row person 2,\"bob\",\"LA\"");
  Must(&shell, "row person 3,\"cyd\",\"NYC\"");
  Must(&shell, "row friend 1,2");
  Must(&shell, "row friend 1,3");
  Must(&shell, "row secret 1,2");
  return shell;
}

constexpr const char* kFriendQuery =
    "eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, "
    "\"NYC\")";
// No access statement covers `secret`, so Theorem 4.2 rejects this query as
// non-controllable at evaluation time.
constexpr const char* kSecretQuery = "eval a=1 S(a, b) := secret(a, b)";

TEST(JournalStoreTest, RoundTripPreservesOrderAndSeals) {
  const std::string path = ::testing::TempDir() + "journal_roundtrip.jsonl";
  RemoveJournalFiles(path);
  {
    JournalStore store(path);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(store.Append(MakeCert(i), /*latency_ms=*/1.5 * (i + 1),
                               /*noncontrollable=*/i == 2)
                      .ok());
    }
    EXPECT_EQ(store.appended(), 3u);
    EXPECT_EQ(store.rotations(), 0u);
  }
  // A fresh store over the same path replays append order, siblings intact.
  JournalStore reloaded(path);
  JournalLoadReport report;
  Result<std::vector<JournalEntry>> entries = reloaded.Load(&report);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ(report.sealed_ok, 3u);
  EXPECT_EQ(report.tampered, 0u);
  EXPECT_EQ(report.malformed, 0u);
  for (int i = 0; i < 3; ++i) {
    const JournalEntry& e = (*entries)[i];
    EXPECT_TRUE(e.seal_ok);
    EXPECT_TRUE(VerifyCertificate(e.cert));
    EXPECT_EQ(e.cert.actual_fetches, static_cast<uint64_t>(10 + i));
    EXPECT_EQ(e.cert.query_id,
              "deadbeefdeadbeef-" + std::to_string(i + 1));
    EXPECT_DOUBLE_EQ(e.latency_ms, 1.5 * (i + 1));
    EXPECT_EQ(e.noncontrollable, i == 2);
  }
  RemoveJournalFiles(path);
}

TEST(JournalStoreTest, RotatesAtSizeAndLoadsSurvivorsOldestFirst) {
  const std::string path = ::testing::TempDir() + "journal_rotation.jsonl";
  RemoveJournalFiles(path);
  JournalStore store(path, /*max_bytes=*/400);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.Append(MakeCert(i), -1.0, false).ok());
  }
  EXPECT_GT(store.rotations(), 0u);
  EXPECT_TRUE(std::filesystem::exists(path + ".1"));
  JournalLoadReport report;
  Result<std::vector<JournalEntry>> entries = store.Load(&report);
  ASSERT_TRUE(entries.ok());
  // Rotation drops the oldest generation, never the newest entries; what
  // survives still verifies and still reads back in append order.
  ASSERT_GT(entries->size(), 0u);
  ASSERT_LT(entries->size(), 8u);
  EXPECT_EQ(report.sealed_ok, entries->size());
  for (size_t i = 1; i < entries->size(); ++i) {
    EXPECT_LT((*entries)[i - 1].cert.actual_fetches,
              (*entries)[i].cert.actual_fetches);
  }
  EXPECT_EQ(entries->back().cert.actual_fetches, 17u);
  RemoveJournalFiles(path);
}

TEST(JournalStoreTest, TamperedEntryIsReportedNotFatal) {
  const std::string path = ::testing::TempDir() + "journal_tamper.jsonl";
  RemoveJournalFiles(path);
  JournalStore store(path);
  ASSERT_TRUE(store.Append(MakeCert(0), -1.0, false).ok());
  ASSERT_TRUE(store.Append(MakeCert(1), -1.0, false).ok());
  // Bump a sealed counter on disk: the seal must catch it on reload.
  std::string text = ReadFile(path);
  size_t pos = text.find("\"actual_fetches\":10");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 19, "\"actual_fetches\":99");
  { std::ofstream out(path, std::ios::trunc); out << text; }

  JournalLoadReport report;
  Result<std::vector<JournalEntry>> entries = store.Load(&report);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ(report.tampered, 1u);
  EXPECT_EQ(report.sealed_ok, 1u);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("seal mismatch"), std::string::npos);
  EXPECT_FALSE((*entries)[0].seal_ok);
  EXPECT_TRUE((*entries)[1].seal_ok);
  // The offline JSONL reader (certify <file>) parses the same lines.
  Result<std::vector<AccessCertificate>> certs =
      CertificatesFromJsonl(ReadFile(path));
  ASSERT_TRUE(certs.ok());
  EXPECT_EQ(certs->size(), 2u);
  EXPECT_FALSE(VerifyCertificate((*certs)[0]));
  EXPECT_TRUE(VerifyCertificate((*certs)[1]));
  RemoveJournalFiles(path);
}

TEST(WorkloadShellTest, NonControllableEvalIsTalliedAndJournaled) {
  Shell shell = LoadedShell();
  Must(&shell, kFriendQuery);
  // The evaluation fails — and that failure is workload signal.
  Result<std::string> failed = shell.Execute(kSecretQuery);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("not controlled"),
            std::string::npos);
  EXPECT_EQ(shell.workload().noncontrollable_total(), 1u);
  EXPECT_EQ(shell.workload().observations(), 2u);
  std::string top = Must(&shell, "workload top 5");
  EXPECT_NE(top.find("2 observation(s), 1 non-controllable"),
            std::string::npos);
  EXPECT_NE(top.find("nonctrl=1"), std::string::npos);
  // The rejected query still sealed a no-static-bound certificate.
  std::vector<AccessCertificate> certs = shell.journal().certificates();
  ASSERT_EQ(certs.size(), 2u);
  EXPECT_EQ(certs[1].verdict, CertVerdict::kNoStaticBound);
  EXPECT_TRUE(VerifyCertificate(certs[1]));
  std::string detail =
      Must(&shell, "workload fingerprint " + certs[1].query_fingerprint);
  EXPECT_NE(detail.find("nonctrl=1"), std::string::npos);
  EXPECT_NE(detail.find(certs[1].query_id), std::string::npos);
}

TEST(WorkloadShellTest, TopRenderingIsByteIdenticalAcrossThreadCounts) {
  auto run = [](size_t threads) {
    Shell shell = LoadedShell();
    Must(&shell, "threads " + std::to_string(threads));
    for (int i = 0; i < 3; ++i) Must(&shell, kFriendQuery);
    (void)shell.Execute(kSecretQuery);
    (void)shell.Execute(kSecretQuery);
    std::string out = Must(&shell, "workload top 5");
    Must(&shell, "threads 1");
    return out;
  };
  const std::string at1 = run(1);
  const std::string at4 = run(4);
  EXPECT_EQ(at1, at4);
  EXPECT_NE(at1.find("5 observation(s), 2 non-controllable"),
            std::string::npos);
}

TEST(WorkloadShellTest, JournalPersistsWorkloadAcrossSessions) {
  const std::string path = ::testing::TempDir() + "journal_sessions.jsonl";
  RemoveJournalFiles(path);
  ::setenv("SCALEIN_JOURNAL_PATH", path.c_str(), 1);
  std::string live;
  {
    Shell shell = LoadedShell();
    for (int i = 0; i < 2; ++i) Must(&shell, kFriendQuery);
    (void)shell.Execute(kSecretQuery);
    live = Must(&shell, "workload top 5");
    ASSERT_NE(shell.journal_store(), nullptr);
    EXPECT_EQ(shell.journal_store()->appended(), 3u);
  }
  {
    // A fresh session replays the journal: same aggregates, same bytes,
    // before it has evaluated anything itself.
    Shell shell;
    EXPECT_EQ(shell.workload().observations(), 3u);
    EXPECT_EQ(shell.workload().noncontrollable_total(), 1u);
    EXPECT_EQ(Must(&shell, "workload top 5"), live);
    std::string bare = Must(&shell, "workload");
    EXPECT_NE(bare.find("replayed journal: 3 entries (3 sealed, 0 tampered, "
                        "0 malformed)"),
              std::string::npos);
  }
  ::unsetenv("SCALEIN_JOURNAL_PATH");
  RemoveJournalFiles(path);
}

// Journal durability faults must degrade to warnings: the answer is correct
// whether or not its certificate reached disk, so a failed append (disk
// full, I/O error) warns in the eval output but never fails the evaluation.
TEST(WorkloadShellTest, JournalAppendFailureWarnsButEvaluationSucceeds) {
  const std::string path = ::testing::TempDir() + "journal_faulty.jsonl";
  RemoveJournalFiles(path);
  ::setenv("SCALEIN_JOURNAL_PATH", path.c_str(), 1);
  Shell shell = LoadedShell();
  ASSERT_TRUE(
      util::Failpoints::Global().Configure("journal_append=error").ok());
  Result<std::string> out = shell.Execute(kFriendQuery);
  util::Failpoints::Global().Clear();
  ::unsetenv("SCALEIN_JOURNAL_PATH");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("1 answers"), std::string::npos) << *out;
  EXPECT_NE(out->find("warning: journal append failed"), std::string::npos)
      << *out;
  // The in-memory journal still carries the sealed certificate; only the
  // persistent store missed it.
  EXPECT_EQ(shell.journal().certificates().size(), 1u);
  ASSERT_NE(shell.journal_store(), nullptr);
  EXPECT_EQ(shell.journal_store()->appended(), 0u);
  RemoveJournalFiles(path);
}

// Same contract one layer down: a rotation failure surfaces as the Append
// status (which the shell renders as a warning), and a later fault-free
// append recovers without losing the store.
TEST(JournalStoreTest, RotateFailpointFailsAppendThenRecovers) {
  const std::string path = ::testing::TempDir() + "journal_rotfail.jsonl";
  RemoveJournalFiles(path);
  JournalStore store(path, /*max_bytes=*/64);  // every append rotates
  ASSERT_TRUE(store.Append(MakeCert(0), 1.0, false).ok());
  ASSERT_TRUE(
      util::Failpoints::Global().Configure("journal_rotate=error").ok());
  Status s = store.Append(MakeCert(1), 1.0, false);
  util::Failpoints::Global().Clear();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("journal_rotate"), std::string::npos);
  EXPECT_TRUE(store.Append(MakeCert(2), 1.0, false).ok());
  RemoveJournalFiles(path);
}

TEST(WorkloadShellTest, QueryIdJoinsCertificateEventsAndMetrics) {
  Shell shell = LoadedShell();
  Must(&shell, kFriendQuery);
  std::vector<AccessCertificate> certs = shell.journal().certificates();
  ASSERT_EQ(certs.size(), 1u);
  const std::string qid = certs[0].query_id;
  ASSERT_FALSE(qid.empty());
  EXPECT_EQ(qid, RenderQueryId(QueryId{SessionFingerprint(), 1}));
  // Every recorder event emitted inside the evaluation carries the same id.
  bool saw_correlated_certificate = false;
  for (const FlightEvent& e : shell.recorder().events()) {
    if (e.kind != EventKind::kCertificate) continue;
    saw_correlated_certificate = true;
    EXPECT_EQ(RenderQueryId(QueryId{e.qid_session, e.qid_seq}), qid);
  }
  EXPECT_TRUE(saw_correlated_certificate);
  // Outside an evaluation nothing is in flight.
  EXPECT_FALSE(CurrentQueryId().valid());
  // The workload gauges are live after the eval.
  EXPECT_NE(Must(&shell, "stats prom").find("workload_fingerprints 1"),
            std::string::npos);
  // A second eval mints the next sequence number.
  Must(&shell, kFriendQuery);
  certs = shell.journal().certificates();
  ASSERT_EQ(certs.size(), 2u);
  EXPECT_EQ(certs[1].query_id,
            RenderQueryId(QueryId{SessionFingerprint(), 2}));
}

}  // namespace
}  // namespace scalein::obs
