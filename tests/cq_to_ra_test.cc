#include "query/cq_to_ra.h"

#include <gtest/gtest.h>

#include "eval/cq_evaluator.h"
#include "eval/ra_evaluator.h"
#include "query/parser.h"
#include "workload/formula_gen.h"

namespace scalein {
namespace {

Schema GraphSchema() {
  Schema s;
  s.Relation("e", {"a", "b"}).Relation("lab", {"a", "tag"});
  return s;
}

/// Asserts the RA translation computes the same answers as the CQ evaluator.
void CheckEquivalent(const Cq& q, const Schema& s, Database* db) {
  Result<RaExpr> ra = CqToRa(q, s);
  ASSERT_TRUE(ra.ok()) << q.ToString() << ": " << ra.status().ToString();
  Relation via_ra = EvalRa(*ra, *db);
  CqEvaluator eval(db);
  AnswerSet via_cq = eval.EvaluateFull(q);
  AnswerSet via_ra_set;
  for (const Tuple& t : via_ra.SortedTuples()) via_ra_set.insert(t);
  EXPECT_EQ(via_ra_set, via_cq) << q.ToString() << "\n" << ra->ToString();
}

TEST(CqToRaTest, JoinChainWithConstantsAndRepeats) {
  Schema s = GraphSchema();
  Database db(s);
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("e", Tuple{Value::Int(2), Value::Int(3)});
  db.Insert("e", Tuple{Value::Int(3), Value::Int(3)});
  db.Insert("lab", Tuple{Value::Int(2), Value::Str("hot")});
  db.Insert("lab", Tuple{Value::Int(3), Value::Str("cold")});

  const char* queries[] = {
      "Q(x, y) :- e(x, y)",
      "Q(x, z) :- e(x, y), e(y, z)",
      "Q(x) :- e(x, x)",                          // repeated variable
      "Q(x) :- e(x, y), lab(y, \"hot\")",          // constant
      "Q(y) :- e(1, y)",                           // constant in key position
      "Q(x, y, t) :- e(x, y), lab(x, t), lab(y, t)",  // triangle-ish join
  };
  for (const char* text : queries) {
    Result<Cq> q = ParseCq(text, &s);
    ASSERT_TRUE(q.ok()) << text;
    CheckEquivalent(*q, s, &db);
  }
}

TEST(CqToRaTest, BooleanQueryYieldsZeroArity) {
  Schema s = GraphSchema();
  Database db(s);
  db.Insert("e", Tuple{Value::Int(1), Value::Int(1)});
  Result<Cq> q = ParseCq("Q() :- e(x, x)", &s);
  ASSERT_TRUE(q.ok());
  Result<RaExpr> ra = CqToRa(*q, s);
  ASSERT_TRUE(ra.ok());
  EXPECT_TRUE(ra->attributes().empty());
  Relation out = EvalRa(*ra, db);
  EXPECT_EQ(out.size(), 1u);  // true: one empty tuple
  db.Remove("e", Tuple{Value::Int(1), Value::Int(1)});
  EXPECT_EQ(EvalRa(*ra, db).size(), 0u);  // false
}

TEST(CqToRaTest, RejectsNonVariableAndDuplicateHeads) {
  Schema s = GraphSchema();
  Result<Cq> const_head = ParseCq("Q(x, 1) :- e(x, y)", &s);
  ASSERT_TRUE(const_head.ok());
  EXPECT_FALSE(CqToRa(*const_head, s).ok());
  // Trivial CQ has no RA form.
  Result<Cq> trivial = ParseCq("Q() :- true", &s);
  ASSERT_TRUE(trivial.ok());
  EXPECT_EQ(CqToRa(*trivial, s).status().code(), StatusCode::kUnimplemented);
}

TEST(CqToRaTest, AttributeNamedLikeVariable) {
  // Schema attributes that coincide with variable names must not confuse the
  // renaming plan.
  Schema s;
  s.Relation("r", {"x", "y"});
  Database db(s);
  db.Insert("r", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("r", Tuple{Value::Int(2), Value::Int(1)});
  Result<Cq> q = ParseCq("Q(y, x) :- r(y, x)", &s);  // swapped usage
  ASSERT_TRUE(q.ok());
  CheckEquivalent(*q, s, &db);
}

class CqToRaFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqToRaFuzz, RandomCqsTranslateFaithfully) {
  Rng rng(GetParam());
  FormulaGenConfig config;
  config.num_relations = 2;
  config.max_arity = 3;
  config.num_variables = 3;
  config.domain_size = 3;
  Schema schema = RandomSchema(config, &rng);
  for (int round = 0; round < 10; ++round) {
    Database db = RandomDatabase(schema, config, 10, &rng);
    Cq q = RandomCq(schema, config, 1 + rng.Uniform(3), &rng);
    // Need distinct-variable heads for the translation.
    VarSet seen;
    bool ok_head = true;
    for (const Term& t : q.head()) {
      if (!t.is_var() || !seen.insert(t.var()).second) {
        ok_head = false;
        break;
      }
    }
    if (!ok_head) continue;
    CheckEquivalent(q, schema, &db);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqToRaFuzz,
                         ::testing::Values(4, 19, 28, 37, 91, 107));

}  // namespace
}  // namespace scalein
