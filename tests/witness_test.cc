#include "core/witness.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "workload/setcover_gen.h"

namespace scalein {
namespace {

Schema GraphSchema() {
  Schema s;
  s.Relation("e", {"a", "b"}).Relation("v", {"a"});
  return s;
}

Cq Q(const char* text) {
  Result<Cq> q = ParseCq(text);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

TEST(WitnessTest, SubDatabaseAndAllTuples) {
  Database db(GraphSchema());
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("v", Tuple{Value::Int(1)});
  std::vector<TupleRef> all = AllTuples(db);
  EXPECT_EQ(all.size(), 2u);
  TupleSet just_v{{"v", Tuple{Value::Int(1)}}};
  Database sub = SubDatabase(db, just_v);
  EXPECT_EQ(sub.TotalTuples(), 1u);
  EXPECT_TRUE(sub.relation("v").Contains(Tuple{Value::Int(1)}));
  EXPECT_TRUE(sub.relation("e").empty());
}

TEST(WitnessTest, WitnessProblemCq) {
  Database db(GraphSchema());
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("e", Tuple{Value::Int(3), Value::Int(4)});
  Cq q = Q("Q(x) :- e(x, y)");
  // Dropping one e-tuple loses an answer.
  TupleSet partial{{"e", Tuple{Value::Int(1), Value::Int(2)}}};
  EXPECT_FALSE(IsWitnessCq(q, db, SubDatabase(db, partial)));
  TupleSet full{{"e", Tuple{Value::Int(1), Value::Int(2)}},
                {"e", Tuple{Value::Int(3), Value::Int(4)}}};
  EXPECT_TRUE(IsWitnessCq(q, db, SubDatabase(db, full)));
}

TEST(WitnessTest, AnswerSupportsAreMinimal) {
  Database db(GraphSchema());
  // Answer 1 is derivable through two different middle vertices.
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("e", Tuple{Value::Int(1), Value::Int(3)});
  db.Insert("e", Tuple{Value::Int(2), Value::Int(9)});
  db.Insert("e", Tuple{Value::Int(3), Value::Int(9)});
  Cq q = Q("Q(x) :- e(x, y), e(y, z)");
  std::vector<TupleSet> supports =
      AnswerSupports(q, db, Tuple{Value::Int(1)});
  EXPECT_EQ(supports.size(), 2u);
  for (const TupleSet& s : supports) EXPECT_EQ(s.size(), 2u);
}

TEST(WitnessTest, SupportOfSelfLoopIsSingleton) {
  Database db(GraphSchema());
  db.Insert("e", Tuple{Value::Int(5), Value::Int(5)});
  Cq q = Q("Q(x) :- e(x, y), e(y, x)");
  std::vector<TupleSet> supports =
      AnswerSupports(q, db, Tuple{Value::Int(5)});
  ASSERT_EQ(supports.size(), 1u);
  EXPECT_EQ(supports[0].size(), 1u);  // both atoms map to the same tuple
}

TEST(WitnessTest, GreedyWitnessCoversAllAnswers) {
  SetCoverConfig config;
  config.num_elements = 12;
  config.num_sets = 5;
  config.planted_cover_size = 2;
  config.noise_memberships = 10;
  SetCoverInstance inst = GenerateSetCover(config);
  TupleSet witness = GreedyWitnessCq(inst.query, inst.db);
  EXPECT_TRUE(IsWitnessCq(inst.query, inst.db, SubDatabase(inst.db, witness)));
}

TEST(WitnessTest, MinimumWitnessMatchesPlantedCover) {
  SetCoverConfig config;
  config.num_elements = 10;
  config.num_sets = 6;
  config.planted_cover_size = 2;
  config.noise_memberships = 0;  // planted cover is exactly optimal
  SetCoverInstance inst = GenerateSetCover(config);
  MinWitnessResult result =
      MinimumWitnessCq(inst.query, inst.db, /*budget=*/100);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(result.exact);
  // Minimum = one covers-tuple per element + the planted number of setreps.
  EXPECT_EQ(result.witness->size(),
            config.num_elements + config.planted_cover_size);
  EXPECT_TRUE(
      IsWitnessCq(inst.query, inst.db, SubDatabase(inst.db, *result.witness)));
}

TEST(WitnessTest, MinimumWitnessRespectsBudget) {
  SetCoverConfig config;
  config.num_elements = 10;
  config.num_sets = 6;
  config.planted_cover_size = 2;
  config.noise_memberships = 0;
  SetCoverInstance inst = GenerateSetCover(config);
  MinWitnessResult impossible =
      MinimumWitnessCq(inst.query, inst.db, /*budget=*/5);
  EXPECT_FALSE(impossible.witness.has_value());
  EXPECT_TRUE(impossible.exact);
}

TEST(WitnessTest, GreedyNeverBeatsExact) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SetCoverConfig config;
    config.num_elements = 8;
    config.num_sets = 5;
    config.planted_cover_size = 2;
    config.noise_memberships = 12;
    config.seed = seed;
    SetCoverInstance inst = GenerateSetCover(config);
    TupleSet greedy = GreedyWitnessCq(inst.query, inst.db);
    MinWitnessResult exact = MinimumWitnessCq(inst.query, inst.db, 1000);
    ASSERT_TRUE(exact.witness.has_value());
    EXPECT_LE(exact.witness->size(), greedy.size()) << "seed " << seed;
  }
}

TEST(WitnessTest, BooleanSupports) {
  Database db(GraphSchema());
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  Cq q = Q("Q() :- e(x, y)");
  MinWitnessResult result = MinimumWitnessCq(q, db, 10);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_EQ(result.witness->size(), 1u);

  // When the query is false, the empty witness suffices.
  Cq loop = Q("Q() :- e(x, x)");
  MinWitnessResult empty = MinimumWitnessCq(loop, db, 10);
  ASSERT_TRUE(empty.witness.has_value());
  EXPECT_TRUE(empty.witness->empty());
}

}  // namespace
}  // namespace scalein
