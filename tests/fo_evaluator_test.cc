#include "eval/fo_evaluator.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace scalein {
namespace {

Schema GraphSchema() {
  Schema s;
  s.Relation("e", {"a", "b"}).Relation("v", {"a"});
  return s;
}

Database Path3() {
  // v = {1,2,3}, e = {(1,2), (2,3)}.
  Database db(GraphSchema());
  for (int64_t i = 1; i <= 3; ++i) db.Insert("v", Tuple{Value::Int(i)});
  db.Insert("e", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("e", Tuple{Value::Int(2), Value::Int(3)});
  return db;
}

FoQuery Q(const char* text, const Schema& s) {
  Result<FoQuery> q = ParseFoQuery(text, &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

TEST(FoEvaluatorTest, AtomAndJoin) {
  Schema s = GraphSchema();
  Database db = Path3();
  FoEvaluator eval(&db);
  AnswerSet twohop = eval.Evaluate(Q("Q(x, z) := exists y. e(x, y) and e(y, z)", s));
  ASSERT_EQ(twohop.size(), 1u);
  EXPECT_EQ(*twohop.begin(), (Tuple{Value::Int(1), Value::Int(3)}));
}

TEST(FoEvaluatorTest, NegationAndUniversal) {
  Schema s = GraphSchema();
  Database db = Path3();
  FoEvaluator eval(&db);
  // Sinks: vertices with no outgoing edge.
  AnswerSet sinks = eval.Evaluate(Q("Q(x) := v(x) and not exists y. e(x, y)", s));
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(*sinks.begin(), Tuple{Value::Int(3)});

  EXPECT_FALSE(eval.EvaluateBoolean(Q("Q() := forall x. exists y. e(x, y)", s)));
  EXPECT_TRUE(eval.EvaluateBoolean(
      Q("Q() := forall x. v(x) implies (x = 3 or exists y. e(x, y))", s)));
}

TEST(FoEvaluatorTest, ActiveDomainSemantics) {
  Schema s = GraphSchema();
  Database db = Path3();
  FoEvaluator eval(&db);
  // x = x holds for every active-domain element.
  AnswerSet all = eval.Evaluate(Q("Q(x) := x = x", s));
  EXPECT_EQ(all.size(), 3u);
}

TEST(FoEvaluatorTest, BindingFixesParameters) {
  Schema s = GraphSchema();
  Database db = Path3();
  FoEvaluator eval(&db);
  FoQuery q = Q("Q(x, y) := e(x, y)", s);
  AnswerSet from1 = eval.Evaluate(q, {{Variable::Named("x"), Value::Int(1)}});
  ASSERT_EQ(from1.size(), 1u);
  EXPECT_EQ(*from1.begin(), Tuple{Value::Int(2)});  // only the open column
}

TEST(FoEvaluatorTest, QuantifierShadowingRestoresOuterBinding) {
  Schema s = GraphSchema();
  Database db = Path3();
  FoEvaluator eval(&db);
  // Inner ∃x shadows the free x; after it, the outer x must be intact.
  FoQuery q = Q("Q(x) := (exists x. e(x, x)) or e(x, 2)", s);
  AnswerSet answers = eval.Evaluate(q);
  // No self loops, so only the right disjunct fires: x = 1.
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(*answers.begin(), Tuple{Value::Int(1)});
}

TEST(FoEvaluatorTest, EmptyDatabase) {
  Schema s = GraphSchema();
  Database db(s);
  FoEvaluator eval(&db);
  EXPECT_TRUE(eval.Evaluate(Q("Q(x) := v(x)", s)).empty());
  // Universal over an empty adom is vacuously true.
  EXPECT_TRUE(eval.EvaluateBoolean(Q("Q() := forall x. v(x)", s)));
  EXPECT_FALSE(eval.EvaluateBoolean(Q("Q() := exists x. x = x", s)));
}

TEST(FoEvaluatorTest, ImplicationTruthTable) {
  Schema s = GraphSchema();
  Database db = Path3();
  FoEvaluator eval(&db);
  EXPECT_TRUE(eval.EvaluateBoolean(Q("Q() := e(1, 2) implies e(2, 3)", s)));
  EXPECT_TRUE(eval.EvaluateBoolean(Q("Q() := e(9, 9) implies e(8, 8)", s)));
  EXPECT_FALSE(eval.EvaluateBoolean(Q("Q() := e(1, 2) implies e(9, 9)", s)));
}

TEST(FoEvaluatorTest, StringConstants) {
  Schema s;
  s.Relation("person", {"id", "city"});
  Database db(s);
  db.Insert("person", Tuple{Value::Int(1), Value::Str("NYC")});
  db.Insert("person", Tuple{Value::Int(2), Value::Str("LA")});
  FoEvaluator eval(&db);
  AnswerSet nyc = eval.Evaluate(Q("Q(id) := person(id, \"NYC\")", s));
  ASSERT_EQ(nyc.size(), 1u);
  EXPECT_EQ(*nyc.begin(), Tuple{Value::Int(1)});
}

}  // namespace
}  // namespace scalein
