# Offline serve-report smoke, run via `cmake -P` from ctest: a scripted
# scalein_served session writes a structured access log plus the certificate
# journal, renders its own per-class tallies with the `classes` command, and
# then scripts/serve_report.py re-derives the same tallies offline from the
# access log. The per-class lines must match the shell's byte for byte —
# that is the report's contract (render_classes mirrors
# Server::RenderClasses). Variables passed in by tests/CMakeLists.txt:
#   SERVED_BIN — path to the scalein_served example binary
#   PYTHON     — python3 interpreter
#   REPORT     — path to scripts/serve_report.py
#   WORK_DIR   — scratch directory for catalog/script/log files

set(catalog "${WORK_DIR}/serve_report_catalog.txt")
set(script "${WORK_DIR}/serve_report_script.txt")
set(journal "${WORK_DIR}/serve_report_journal.jsonl")
set(access_log "${WORK_DIR}/serve_report_access.jsonl")
file(REMOVE "${journal}" "${journal}.1" "${journal}.2")
file(REMOVE "${access_log}" "${access_log}.1" "${access_log}.2")

file(WRITE "${catalog}" "schema relation person(id, name, city)
schema relation friend(id1, id2)
schema relation secret(a, b)
access access friend(id1) N=50
access key person(id)
row person 1,\"ada\",\"NYC\"
row person 2,\"bob\",\"NYC\"
row person 3,\"cyd\",\"NYC\"
row friend 1,2
row friend 1,3
row secret 1,2
")

# One request per admission outcome (admit / degrade / reject / shed), all
# tagged, so every report section has something to say.
file(WRITE "${script}" "a hello smoke
a eval p=1 F(p, id) := friend(p, id)
a eval @req1 p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")
a eval a=1 S(a, b) := secret(a, b)
a #busy 1
a eval p=1 F(p, id) := friend(p, id)
a #busy 0
a classes
a bye
quit
")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env
          "SCALEIN_JOURNAL_PATH=${journal}"
          "SCALEIN_ACCESS_LOG_PATH=${access_log}"
          "SCALEIN_SESSION_ID=serve-report-smoke"
          "SCALEIN_SLA_SESSION_BUDGET=50"
          "SCALEIN_SLA_MAX_RUNNING=1"
          "SCALEIN_SLA_QUEUE_TIMEOUT_MS=20"
          "${SERVED_BIN}" --script "${catalog}"
  INPUT_FILE "${script}"
  RESULT_VARIABLE served_rc
  OUTPUT_VARIABLE served_out
  ERROR_VARIABLE served_err)
if(NOT served_rc EQUAL 0)
  message(FATAL_ERROR
          "scripted serve session failed (rc=${served_rc}): "
          "${served_out}\n${served_err}")
endif()
if(NOT EXISTS "${access_log}")
  message(FATAL_ERROR "serve session did not write the access log")
endif()

# Pull the shell's own `classes` rendering out of the transcript: the
# header plus the four per-class lines.
string(REGEX MATCH "classes: [0-9]+ request\\(s\\)" classes_header
       "${served_out}")
if(classes_header STREQUAL "")
  message(FATAL_ERROR
          "serve transcript has no classes header:\n${served_out}")
endif()
string(REGEX MATCHALL
       "\n(  (small|medium|large|huge) n=[^\n]*)" class_lines
       "${served_out}")
list(LENGTH class_lines class_line_count)
if(NOT class_line_count EQUAL 4)
  message(FATAL_ERROR
          "expected 4 per-class lines in the serve transcript, got "
          "${class_line_count}:\n${served_out}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${REPORT}" "${access_log}" --journal "${journal}"
  RESULT_VARIABLE report_rc
  OUTPUT_VARIABLE report_out
  ERROR_VARIABLE report_err)
if(NOT report_rc EQUAL 0)
  message(FATAL_ERROR
          "serve_report.py failed (rc=${report_rc}): "
          "${report_out}\n${report_err}")
endif()

# The offline report must reproduce the shell's per-class lines verbatim —
# header and all four rows, byte for byte.
foreach(needle "${classes_header}" ${class_lines})
  string(FIND "${report_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "serve report does not reproduce the shell's classes line "
            "'${needle}'.\nshell transcript:\n${served_out}\n"
            "report output:\n${report_out}")
  endif()
endforeach()

# And the rest of the report's contract: clean load, phase percentiles,
# tag tallies, and a journal join where every record finds a sealed,
# fetch-consistent certificate.
foreach(needle
        "records: 4 (0 malformed)"
        "phase latency (ms):"
        "slowest requests"
        "bound slack"
        "client tags:"
        "  smoke n=3"
        "  req1 n=1"
        "journal join"
        "tampered=0"
        "missing=0"
        "fetch_mismatches=0")
  string(FIND "${report_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "serve report is missing '${needle}':\n${report_out}")
  endif()
endforeach()
message(STATUS "serve report smoke OK")
