// Chaos harness: golden queries from every engine run under randomized
// failpoint schedules (error/delay injections at scan_next, index_probe,
// chase_step, delta_apply, view_refresh), some additionally under tight
// governor envelopes. The contract under fault injection:
//   - a run either succeeds with the exact golden answer, or fails with a
//     typed Status from the expected set — never a crash, never a wrong
//     answer reported as success (the CI chaos lane runs this suite under
//     ASan+UBSan);
//   - degraded (governor-tripped) partial answers are subsets of the truth.
// Schedules are generated from a counter-seeded mt19937_64 and replayed
// through the registry's own seeded stream, so every failure here is
// reproducible from the schedule index alone.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "core/qdsi.h"
#include "core/qsi.h"
#include "eval/cq_evaluator.h"
#include "eval/fo_evaluator.h"
#include "exec/exec_context.h"
#include "exec/operators.h"
#include "exec/planner.h"
#include "incremental/maintainer.h"
#include "par/worker_pool.h"
#include "query/parser.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "views/view_exec.h"
#include "workload/social_gen.h"
#include "workload/update_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

constexpr int kSchedulesPerEngine = 52;  // 5 engines → 260 runs total

/// Builds a random `;`-separated failpoint spec. Each site independently
/// gets one of the clause forms (or is left disarmed); the registry seed is
/// the schedule id, so the probability draws replay too.
std::string RandomSchedule(uint64_t schedule) {
  std::mt19937_64 rng(schedule * 0x9e3779b97f4a7c15ull + 0xc0ffee);
  const char* sites[] = {"scan_next", "index_probe", "chase_step",
                         "delta_apply", "view_refresh"};
  std::string spec;
  for (const char* site : sites) {
    if (rng() % 3 == 0) continue;  // leave this site disarmed
    if (!spec.empty()) spec += ";";
    spec += site;
    switch (rng() % 6) {
      case 0:
        spec += "=error";
        break;
      case 1:
      case 2:
        spec += "=error(" + std::to_string(1 + rng() % 50) + "%)";
        break;
      case 3:
      case 4:
        spec += "=error(every:" + std::to_string(2 + rng() % 20) + ")";
        break;
      case 5:
        spec += "=delay(1ms)";
        break;
    }
  }
  if (!spec.empty()) spec += ";";
  spec += "seed=" + std::to_string(schedule);
  return spec;
}

/// Every failure under chaos must be a *typed* error from the governed /
/// injected set — anything else means an engine mangled a fault.
void ExpectChaosStatus(const Status& s, const std::string& spec) {
  EXPECT_TRUE(s.code() == StatusCode::kInternal ||
              s.code() == StatusCode::kResourceExhausted ||
              s.code() == StatusCode::kDeadlineExceeded ||
              s.code() == StatusCode::kCancelled)
      << "unexpected failure shape under schedule '" << spec
      << "': " << s.ToString();
}

/// Arms the global registry for one run; disarms on scope exit.
class ScheduleScope {
 public:
  explicit ScheduleScope(const std::string& spec) {
    SI_CHECK(util::Failpoints::Global().Configure(spec).ok());
  }
  ~ScheduleScope() { util::Failpoints::Global().Clear(); }
};

struct Social {
  SocialConfig config;
  Schema schema = SocialSchema(false);
  Database db{Schema{}};
  AccessSchema access;

  explicit Social(uint64_t persons, uint64_t seed, uint64_t visits = 4) {
    config.num_persons = persons;
    config.max_friends_per_person = 6;
    config.num_restaurants = 20;
    config.avg_visits_per_person = visits;
    config.seed = seed;
    db = GenerateSocial(config);
    access = SocialAccessSchema(config);
    SI_CHECK(access.BuildIndexes(&db, schema).ok());
  }
};

TEST(ChaosTest, RaPipelineSurvivesSchedules) {
  Schema schema;
  schema.Relation("emp", {"id", "dept", "city"});
  schema.Relation("dept", {"dept", "budget"});
  Database db(schema);
  for (int64_t i = 0; i < 12; ++i) {
    db.Insert("emp", Tuple{Value::Int(i), Value::Str(i % 2 ? "eng" : "ops"),
                           Value::Str(i % 3 ? "NYC" : "LA")});
  }
  db.Insert("dept", Tuple{Value::Str("eng"), Value::Int(100)});
  db.Insert("dept", Tuple{Value::Str("ops"), Value::Int(50)});
  RaExpr expr = RaExpr::Join(RaExpr::Relation("emp", {"id", "dept", "city"}),
                             RaExpr::Relation("dept", {"dept", "budget"}));

  exec::ExecContext golden_ctx(&db);
  exec::Plan golden_plan = exec::PlanRa(expr, &golden_ctx);
  Relation golden = exec::DrainToRelation(golden_plan.root.get(),
                                          golden_plan.attributes.size());
  ASSERT_TRUE(golden_ctx.ok());
  ASSERT_EQ(golden.size(), 12u);

  for (int i = 0; i < kSchedulesPerEngine; ++i) {
    const std::string spec = RandomSchedule(1000 + i);
    ScheduleScope scope(spec);
    exec::ExecContext ctx(&db);
    exec::Plan plan = exec::PlanRa(expr, &ctx);
    Relation out =
        exec::DrainToRelation(plan.root.get(), plan.attributes.size());
    if (ctx.ok()) {
      EXPECT_EQ(out.SortedTuples(), golden.SortedTuples()) << spec;
    } else {
      ExpectChaosStatus(ctx.status(), spec);
    }
  }
}

TEST(ChaosTest, BoundedEvalSurvivesSchedulesAndBudgets) {
  Social social(60, 41);
  Result<FoQuery> q1 = ParseFoQuery(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      &social.schema);
  ASSERT_TRUE(q1.ok());
  Result<ControllabilityAnalysis> analysis = ControllabilityAnalysis::Analyze(
      q1->body, social.schema, social.access);
  ASSERT_TRUE(analysis.ok());
  FoEvaluator reference(&social.db);

  for (int i = 0; i < kSchedulesPerEngine; ++i) {
    const std::string spec = RandomSchedule(2000 + i);
    Binding params{{V("p"), Value::Int(i % 15)}};
    AnswerSet golden = reference.Evaluate(*q1, params);

    ScheduleScope scope(spec);
    BoundedEvaluator evaluator(&social.db);
    if (i % 3 == 0) {
      // Every third run also arms a tight governor: faults and resource
      // trips compose, and partial answers stay sound.
      exec::GovernorLimits limits;
      limits.fetch_budget = 1 + static_cast<uint64_t>(i % 7);
      evaluator.set_limits(limits);
      Result<exec::Degraded<AnswerSet>> degraded =
          evaluator.EvaluateDegraded(*q1, *analysis, params);
      if (degraded.ok()) {
        EXPECT_TRUE(std::includes(golden.begin(), golden.end(),
                                  degraded->value.begin(),
                                  degraded->value.end()))
            << spec;
        if (degraded->complete) {
          EXPECT_EQ(degraded->value, golden) << spec;
        }
      } else {
        ExpectChaosStatus(degraded.status(), spec);
      }
      continue;
    }
    Result<AnswerSet> out = evaluator.Evaluate(*q1, *analysis, params);
    if (out.ok()) {
      EXPECT_EQ(*out, golden) << spec;
    } else {
      ExpectChaosStatus(out.status(), spec);
    }
  }
}

TEST(ChaosTest, EmbeddedCqSurvivesSchedules) {
  SocialConfig config;
  config.num_persons = 50;
  config.max_friends_per_person = 6;
  config.num_restaurants = 10;
  config.avg_visits_per_person = 8;
  config.num_cities = 2;
  config.num_years = 1;
  config.dated_visits = true;
  config.seed = 19;
  Schema schema = SocialSchema(true);
  Database db = GenerateSocial(config);
  AccessSchema access = SocialAccessSchema(config);
  ASSERT_TRUE(access.BuildIndexes(&db, schema).ok());
  Result<Cq> q3 = ParseCq(
      "Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &schema);
  ASSERT_TRUE(q3.ok());
  Result<EmbeddedCqAnalysis> analysis =
      EmbeddedCqAnalysis::Analyze(*q3, schema, access, {V("p"), V("yy")});
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->IsScaleIndependent());
  BoundedEvaluator evaluator(&db);

  for (int i = 0; i < kSchedulesPerEngine; ++i) {
    const std::string spec = RandomSchedule(3000 + i);
    Binding params{
        {V("p"), Value::Int(i % 20)},
        {V("yy"), Value::Int(static_cast<int64_t>(config.first_year))}};
    Result<AnswerSet> golden = evaluator.EvaluateEmbedded(*analysis, params);
    ASSERT_TRUE(golden.ok());

    ScheduleScope scope(spec);
    Result<AnswerSet> out = evaluator.EvaluateEmbedded(*analysis, params);
    if (out.ok()) {
      EXPECT_EQ(*out, *golden) << spec;
    } else {
      ExpectChaosStatus(out.status(), spec);
    }
  }
}

TEST(ChaosTest, IncrementalMaintenanceSurvivesSchedules) {
  Social social(80, 57);
  AccessSchema access = social.access;
  access.Add("visit", {"id"}, 64);
  access.Add("visit", {"rid"}, 4 * social.config.num_persons);
  ASSERT_TRUE(access.BuildIndexes(&social.db, social.schema).ok());
  Result<Cq> q2 = ParseCq(
      "Q2(p, rn) :- friend(p, id), visit(id, rid), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &social.schema);
  ASSERT_TRUE(q2.ok());
  Result<IncrementalMaintainer> m =
      IncrementalMaintainer::Create(*q2, social.schema, access, {V("p")});
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  Binding params{{V("p"), Value::Int(3)}};
  Result<AnswerSet> answers = m->InitialAnswers(&social.db, params);
  ASSERT_TRUE(answers.ok());
  CqEvaluator reference(&social.db);
  Rng update_rng(13);

  for (int i = 0; i < kSchedulesPerEngine; ++i) {
    const std::string spec = RandomSchedule(4000 + i);
    Update u = VisitInsertions(social.db, social.config, 3, &update_rng);
    Status s;
    {
      ScheduleScope scope(spec);
      s = m->Maintain(&social.db, u, params, &*answers, nullptr);
    }
    if (s.ok()) {
      EXPECT_EQ(*answers, reference.EvaluateFull(*q2, params)) << spec;
    } else {
      ExpectChaosStatus(s, spec);
      // A failed batch may have stopped anywhere (before or after the
      // update applied); re-baseline and keep going, as a caller would.
      *answers = reference.EvaluateFull(*q2, params);
    }
  }
}

TEST(ChaosTest, ViewExecutionSurvivesSchedules) {
  Social social(60, 91, /*visits=*/5);
  ViewSet views;
  views.Define("V1(rid, rn, rating) :- restr(rid, rn, \"NYC\", rating)",
               social.schema);
  Schema ext_schema = ExtendedSchema(social.schema, views);
  Result<Cq> rewriting =
      ParseCq("QV(rn, rating) :- V1(rid, rn, rating)", &ext_schema);
  ASSERT_TRUE(rewriting.ok());

  int64_t next_rid = 100000;
  for (int i = 0; i < kSchedulesPerEngine; ++i) {
    const std::string spec = RandomSchedule(5000 + i);
    // Fresh executor per schedule: a failed refresh/maintenance run may
    // leave extents stale, exactly like a restarted process would resolve.
    Result<ViewExecutor> exec_result = ViewExecutor::Create(
        social.db, social.schema, views, social.access);
    ASSERT_TRUE(exec_result.ok()) << exec_result.status().ToString();
    ViewExecutor& view_exec = *exec_result;
    // Goldens are computed *disarmed* — the reference CqEvaluator runs
    // through the exec pipeline, so it would absorb injected faults too.
    CqEvaluator reference(const_cast<Database*>(&view_exec.extended_db()));
    AnswerSet golden = reference.EvaluateFull(*rewriting);
    Update u;
    u.insertions["restr"].push_back(Tuple{Value::Int(next_rid++),
                                          Value::Str("chaos"),
                                          Value::Str("NYC"), Value::Str("A")});

    Result<AnswerSet> out = AnswerSet{};
    Status apply_status;
    {
      ScheduleScope scope(spec);
      out = view_exec.Evaluate(*rewriting, {});
      apply_status = view_exec.ApplyBaseUpdate(u);
    }
    if (out.ok()) {
      EXPECT_EQ(*out, golden) << spec;
    } else {
      ExpectChaosStatus(out.status(), spec);
    }
    if (apply_status.ok()) {
      AnswerSet expected =
          reference.EvaluateFull(views.Find("V1")->definition);
      const Relation& extent = view_exec.extended_db().relation("V1");
      EXPECT_EQ(extent.size(), expected.size()) << spec;
    } else {
      ExpectChaosStatus(apply_status, spec);
    }
  }
}

TEST(ChaosTest, ConcurrentUpdatesVersusQueriesKeepAccountingExact) {
  // Storm schedule for the morsel-parallel layer: reader tasks evaluate
  // bounded Q1 on the worker pool under a shared lock while writer tasks
  // mutate `friend` under the exclusive lock. Relation is not reader-safe
  // during mutation, so the readers/writers contract *is* the lock — this
  // test (run under TSan in CI) pins down that the library side (interner,
  // metered sharded probes, per-context accounting) is race-free under it.
  Social social(80, 7);
  for (const char* rel : {"friend", "person"}) {
    social.db.relation(rel).Shard(4);
  }
  Result<FoQuery> q1 = ParseFoQuery(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      &social.schema);
  ASSERT_TRUE(q1.ok());
  Result<ControllabilityAnalysis> analysis = ControllabilityAnalysis::Analyze(
      q1->body, social.schema, social.access);
  ASSERT_TRUE(analysis.ok());
  BoundedEvaluator bounded(&social.db);
  // Prewarm every index the plan probes: Ensure* is const-but-mutating, so
  // index builds must not race with shared-lock readers.
  {
    BoundedEvalStats warm;
    ASSERT_TRUE(
        bounded.Evaluate(*q1, *analysis, {{V("p"), Value::Int(0)}}, &warm)
            .ok());
  }

  const size_t initial_friends = social.db.relation("friend").size();
  std::shared_mutex db_mu;
  constexpr size_t kTasks = 200;
  std::vector<Status> reader_status(kTasks, Status::OK());
  std::atomic<uint64_t> answers_seen{0};
  // Writers insert disjoint fresh tuples, so the final state is independent
  // of interleaving: initial + every written tuple.
  std::vector<Tuple> written(kTasks);
  par::WorkerPool pool(4);
  pool.ParallelFor(kTasks, [&](size_t i) {
    if (i % 4 == 0) {  // writer lane
      Tuple t{Value::Int(static_cast<int64_t>(1000 + i)),
              Value::Int(static_cast<int64_t>(2000 + i))};
      std::unique_lock<std::shared_mutex> lock(db_mu);
      social.db.relation("friend").Insert(t);
      written[i] = std::move(t);
    } else {  // reader lane
      Binding params{{V("p"), Value::Int(static_cast<int64_t>(i % 40))}};
      std::shared_lock<std::shared_mutex> lock(db_mu);
      BoundedEvalStats stats;
      Result<AnswerSet> r = bounded.Evaluate(*q1, *analysis, params, &stats);
      if (!r.ok()) {
        reader_status[i] = r.status();
      } else {
        answers_seen.fetch_add(r->size(), std::memory_order_relaxed);
      }
    }
  });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_TRUE(reader_status[i].ok())
        << i << ": " << reader_status[i].ToString();
  }
  // Final-state equality: exactly the disjoint writes landed.
  const Relation& friends = social.db.relation("friend");
  size_t writes = 0;
  for (size_t i = 0; i < kTasks; ++i) {
    if (i % 4 != 0) continue;
    ++writes;
    EXPECT_TRUE(friends.Contains(written[i])) << i;
  }
  EXPECT_EQ(friends.size(), initial_friends + writes);
  // Post-storm sanity: sequential evaluation still within the static bound.
  BoundedEvalStats stats;
  Result<AnswerSet> after =
      bounded.Evaluate(*q1, *analysis, {{V("p"), Value::Int(3)}}, &stats);
  ASSERT_TRUE(after.ok());
  Result<double> bound = analysis->StaticFetchBound({V("p")});
  ASSERT_TRUE(bound.ok());
  EXPECT_LE(static_cast<double>(stats.base_tuples_fetched), *bound);
}

TEST(ChaosTest, GovernedParallelFanOutSurvivesFailpointsAndUpdates) {
  // The sub-budget lease/replay protocol under simultaneous stress: each
  // iteration runs a governor-armed evaluation whose conjunct frontier fans
  // out on the 4-lane global pool, with failpoints armed inside the metered
  // worker paths, while a free-running writer thread grows the frontier
  // under the exclusive side of the readers/writers lock. The TSan CI lane
  // runs this schedule; the soundness contract is the usual chaos one —
  // exact golden answer, a sound partial subset, or a typed error.
  Schema schema;
  schema.Relation("friend", {"a", "b"});
  schema.Relation("person", {"id", "name", "city"});
  Database db(schema);
  for (int64_t k = 0; k < 64; ++k) {
    db.Insert("friend", Tuple{Value::Int(0), Value::Int(k)});
    db.Insert("person",
              Tuple{Value::Int(k), Value::Str("n" + std::to_string(k)),
                    Value::Str(k % 2 == 0 ? "NYC" : "LA")});
  }
  AccessSchema access;
  access.Add("friend", {"a"}, 4096);
  access.AddKey("person", {"id"});
  ASSERT_TRUE(access.BuildIndexes(&db, schema).ok());
  Result<FoQuery> q = ParseFoQuery(
      "Q(p, b, name) := friend(p, b) and person(b, name, \"NYC\")", &schema);
  ASSERT_TRUE(q.ok());
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q->body, schema, access);
  ASSERT_TRUE(analysis.ok());
  Binding params{{V("p"), Value::Int(0)}};

  par::WorkerPool::Global().Resize(4);
  std::shared_mutex db_mu;
  std::atomic<bool> stop{false};
  // The writer only adds LA persons, so the golden answer set (the NYC
  // filter) is invariant while the fetch frontier — and therefore every
  // trip position — keeps moving.
  std::thread writer([&] {
    int64_t next = 100000;
    while (!stop.load(std::memory_order_relaxed)) {
      {
        std::unique_lock<std::shared_mutex> lock(db_mu);
        db.Insert("friend", Tuple{Value::Int(0), Value::Int(next)});
        db.Insert("person", Tuple{Value::Int(next), Value::Str("w"),
                                  Value::Str("LA")});
        ++next;
      }
      std::this_thread::yield();
    }
  });

  for (int i = 0; i < 40; ++i) {
    const std::string spec = RandomSchedule(7000 + i);
    AnswerSet golden;
    {
      std::shared_lock<std::shared_mutex> lock(db_mu);
      BoundedEvaluator plain(&db);
      Result<AnswerSet> g = plain.Evaluate(*q, *analysis, params);
      ASSERT_TRUE(g.ok()) << g.status().ToString();
      golden = *std::move(g);
    }
    ScheduleScope scope(spec);
    BoundedEvaluator evaluator(&db);
    exec::GovernorLimits limits;
    limits.fetch_budget = 1 + static_cast<uint64_t>((i * 13) % 200);
    evaluator.set_limits(limits);
    std::shared_lock<std::shared_mutex> lock(db_mu);
    Result<exec::Degraded<AnswerSet>> degraded =
        evaluator.EvaluateDegraded(*q, *analysis, params);
    if (degraded.ok()) {
      EXPECT_TRUE(std::includes(golden.begin(), golden.end(),
                                degraded->value.begin(),
                                degraded->value.end()))
          << spec;
      if (degraded->complete) {
        EXPECT_EQ(degraded->value, golden) << spec;
      }
    } else {
      ExpectChaosStatus(degraded.status(), spec);
    }
  }
  stop.store(true);
  writer.join();
  par::WorkerPool::Global().Resize(1);
}

TEST(ChaosTest, DecisionProceduresDegradeToUnknownUnderFaults) {
  // The §3 search-loop sites: a fault mid-search must degrade the verdict to
  // kUnknown with the Status surfaced in `error` — never forge a yes/no.
  Schema schema;
  schema.Relation("r", {"a", "b"});
  Database db(schema);
  for (int64_t i = 1; i <= 3; ++i) {
    db.Insert("r", Tuple{Value::Int(i), Value::Int(1)});
  }

  // qdsi_subset: the FO subset search, one hit per candidate subset.
  Result<FoQuery> fo = ParseFoQuery("Q() := exists x. exists y. r(x, y)",
                                    &schema);
  ASSERT_TRUE(fo.ok());
  const QdsiDecision fo_golden = DecideQdsiFo(*fo, db, 1);
  {
    ScheduleScope scope("qdsi_subset=error;seed=1");
    QdsiDecision d = DecideQdsiFo(*fo, db, 1);
    EXPECT_EQ(d.verdict, Verdict::kUnknown);
    EXPECT_FALSE(d.error.ok());
  }
  EXPECT_EQ(DecideQdsiFo(*fo, db, 1).verdict, fo_golden.verdict);

  // qdsi_support: the CQ support-cover branch, one hit per answer.
  Result<Cq> cq = ParseCq("Q(a) :- r(a, b)", &schema);
  ASSERT_TRUE(cq.ok());
  const QdsiDecision cq_golden = DecideQdsiCq(*cq, db, 2);
  {
    ScheduleScope scope("qdsi_support=error;seed=1");
    QdsiDecision d = DecideQdsiCq(*cq, db, 2);
    EXPECT_EQ(d.verdict, Verdict::kUnknown);
    EXPECT_FALSE(d.error.ok());
  }
  EXPECT_EQ(DecideQdsiCq(*cq, db, 2).verdict, cq_golden.verdict);

  // qsi_candidate: the QSI(FO) counterexample enumeration, one hit per
  // candidate database.
  QsiFoOptions options;
  options.domain_size = 2;
  options.max_tuples = 2;
  options.max_databases = 50;
  {
    ScheduleScope scope("qsi_candidate=error;seed=1");
    QsiDecision d = DecideQsiFo(*fo, schema, 1, options);
    EXPECT_EQ(d.verdict, Verdict::kUnknown);
    EXPECT_FALSE(d.error.ok());
  }
  // Probabilistic schedules across all three sites: any verdict must be the
  // disarmed golden or kUnknown, never the opposite definite answer.
  for (int i = 0; i < 20; ++i) {
    const std::string spec =
        "qsi_candidate=error(" + std::to_string(10 + i * 4 % 80) +
        "%);qdsi_subset=error(every:" + std::to_string(1 + i % 5) +
        ");qdsi_support=error(" + std::to_string(5 + i * 7 % 90) +
        "%);seed=" + std::to_string(i);
    ScheduleScope scope(spec);
    QdsiDecision d = DecideQdsiFo(*fo, db, 1);
    EXPECT_TRUE(d.verdict == fo_golden.verdict ||
                d.verdict == Verdict::kUnknown)
        << spec;
    QdsiDecision c = DecideQdsiCq(*cq, db, 2);
    EXPECT_TRUE(c.verdict == cq_golden.verdict ||
                c.verdict == Verdict::kUnknown)
        << spec;
  }
}

}  // namespace
}  // namespace scalein
