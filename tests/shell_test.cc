#include "io/shell.h"

#include <gtest/gtest.h>

namespace scalein {
namespace {

/// Runs a command that must succeed, returning its output.
std::string Must(Shell* shell, std::string_view line) {
  Result<std::string> out = shell->Execute(line);
  SI_CHECK_MSG(out.ok(), out.status().message().c_str());
  return *out;
}

Shell LoadedShell() {
  Shell shell;
  Must(&shell, "schema relation person(id, name, city)");
  Must(&shell, "schema relation friend(id1, id2)");
  Must(&shell, "access access friend(id1) N=50");
  Must(&shell, "access key person(id)");
  Must(&shell, "row person 1,\"ada\",\"NYC\"");
  Must(&shell, "row person 2,\"bob\",\"LA\"");
  Must(&shell, "row person 3,\"cyd\",\"NYC\"");
  Must(&shell, "row friend 1,2");
  Must(&shell, "row friend 1,3");
  return shell;
}

TEST(ShellTest, SchemaAndShow) {
  Shell shell = LoadedShell();
  std::string out = Must(&shell, "show");
  EXPECT_NE(out.find("person(id, name, city)"), std::string::npos);
  EXPECT_NE(out.find("N=50"), std::string::npos);
  EXPECT_NE(out.find("|D| = 5 tuples"), std::string::npos);
}

TEST(ShellTest, CommentsAndBlanksIgnored) {
  Shell shell;
  EXPECT_EQ(Must(&shell, "   "), "");
  EXPECT_EQ(Must(&shell, "# a comment"), "");
}

TEST(ShellTest, AnalyzeReportsControllingSets) {
  Shell shell = LoadedShell();
  std::string out = Must(
      &shell,
      "analyze Q(p, name) := exists id. friend(p, id) and person(id, name, "
      "\"NYC\")");
  EXPECT_NE(out.find("controlled by {p}"), std::string::npos);
  EXPECT_NE(out.find("fetch bound 100"), std::string::npos);  // 50 + 50*1
}

TEST(ShellTest, EvalReturnsAnswersAndFetchCount) {
  Shell shell = LoadedShell();
  std::string out = Must(
      &shell,
      "eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, "
      "\"NYC\")");
  EXPECT_NE(out.find("\"cyd\""), std::string::npos);
  EXPECT_EQ(out.find("\"bob\""), std::string::npos);  // bob is in LA
  EXPECT_NE(out.find("base tuples fetched"), std::string::npos);
}

TEST(ShellTest, ExplainRendersOperatorTreeWithBounds) {
  Shell shell = LoadedShell();
  std::string out = Must(
      &shell,
      "explain p=1 Q(p, name) := exists id. friend(p, id) and person(id, "
      "name, \"NYC\")");
  // Header compares actual fetches against the static Theorem 4.2 bound.
  EXPECT_NE(out.find("total: fetched="), std::string::npos);
  EXPECT_NE(out.find("static_bound=100"), std::string::npos);
  EXPECT_NE(out.find("% of bound"), std::string::npos);
  // Tree has the derivation nodes, each with its own per-node bound.
  EXPECT_NE(out.find("atom(friend)"), std::string::npos);
  EXPECT_NE(out.find("atom(person)"), std::string::npos);
  EXPECT_NE(out.find("bound="), std::string::npos);
  EXPECT_NE(out.find("rows="), std::string::npos);
  // explain collects wall time; answers are still reported.
  EXPECT_NE(out.find("time="), std::string::npos);
  EXPECT_NE(out.find("(1 answers)"), std::string::npos);
}

TEST(ShellTest, StatsReflectsExecutedQueries) {
  Shell shell = LoadedShell();
  std::string before = Must(&shell, "stats");
  EXPECT_EQ(before.find("shell.queries"), std::string::npos);
  const char* eval =
      "eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, "
      "\"NYC\")";
  Must(&shell, eval);
  Must(&shell, eval);
  std::string after = Must(&shell, "stats");
  EXPECT_NE(after.find("\"shell.queries\": 2"), std::string::npos);
  EXPECT_NE(after.find("\"shell.base_tuples_fetched\""), std::string::npos);
  EXPECT_NE(after.find("\"shell.fetched.friend\""), std::string::npos);
  EXPECT_NE(after.find("\"shell.eval_latency_ms\""), std::string::npos);
  EXPECT_NE(after.find("\"le\": "), std::string::npos);
}

TEST(ShellTest, QdsiCommand) {
  Shell shell = LoadedShell();
  std::string out = Must(&shell, "qdsi 5 Q(x) :- friend(x, y)");
  EXPECT_NE(out.find("yes"), std::string::npos);
  Result<std::string> bad = shell.Execute("qdsi abc Q(x) :- friend(x, y)");
  EXPECT_FALSE(bad.ok());
}

TEST(ShellTest, ConformanceCommand) {
  Shell shell = LoadedShell();
  std::string out = Must(&shell, "conformance");
  EXPECT_NE(out.find("conforms: yes"), std::string::npos);
  // Violate the friend cap declared as N=50? Tighter: redeclare N=1 and check.
  Must(&shell, "access access friend(id1) N=1");
  std::string bad = Must(&shell, "conformance");
  EXPECT_NE(bad.find("conforms: no"), std::string::npos);
}

TEST(ShellTest, ErrorsAreReportedNotFatal) {
  Shell shell = LoadedShell();
  EXPECT_FALSE(shell.Execute("bogus command").ok());
  EXPECT_FALSE(shell.Execute("row ghost 1,2").ok());
  EXPECT_FALSE(shell.Execute("analyze Q( :=").ok());
  EXPECT_FALSE(shell.Execute("schema relation person(dup)").ok());
  // The shell still works afterwards.
  EXPECT_NE(Must(&shell, "show").find("person"), std::string::npos);
}

TEST(ShellTest, SchemaFrozenAfterData) {
  Shell shell = LoadedShell();
  Result<std::string> r = shell.Execute("schema relation extra(x)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShellTest, HelpListsCommands) {
  Shell shell;
  std::string out = Must(&shell, "help");
  EXPECT_NE(out.find("analyze"), std::string::npos);
  EXPECT_NE(out.find("qdsi"), std::string::npos);
}

}  // namespace
}  // namespace scalein
