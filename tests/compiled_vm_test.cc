// Differential harness for the register-bytecode VM (exec/vm.h): the
// compiled path must be byte-identical to the interpreter — answers, fetch
// totals, per-relation and per-op accounting, trip records, and sealed
// access certificates — at any thread count, with and without governor
// trips. Every comparison here runs at threads {1, 4}.

#include "exec/vm.h"

#include <gtest/gtest.h>

#include "core/analysis_cache.h"
#include "core/bounded_eval.h"
#include "exec/compiler.h"
#include "io/shell.h"
#include "obs/journal.h"
#include "par/worker_pool.h"
#include "query/parser.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "workload/social_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

FoQuery FQ(const char* text, const Schema& s) {
  Result<FoQuery> q = ParseFoQuery(text, &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

std::shared_ptr<const ControllabilityAnalysis> Analyze(const FoQuery& q,
                                                       const Schema& s,
                                                       const AccessSchema& a) {
  Result<ControllabilityAnalysis> r =
      ControllabilityAnalysis::Analyze(q.body, s, a);
  SI_CHECK_MSG(r.ok(), r.status().message().c_str());
  return std::make_shared<const ControllabilityAnalysis>(*std::move(r));
}

VarSet VarsOf(const Binding& params) {
  VarSet vars;
  for (const auto& [v, val] : params) {
    (void)val;
    vars.insert(v);
  }
  return vars;
}

/// Restores a single-lane pool when a test returns (other tests in this
/// binary assume the default).
struct PoolGuard {
  ~PoolGuard() { par::WorkerPool::Global().Resize(1); }
};

/// Seals a certificate from one evaluation's stats exactly like the shell
/// does; byte-comparing the payloads of the interpreted and compiled runs is
/// the certificate-equality check CI's bench gate also enforces.
std::string SealedPayload(const BoundedEvalStats& stats, bool tripped,
                          const exec::TripInfo& trip) {
  obs::AccessCertificate cert;
  cert.query_fingerprint = "fp-differential";
  cert.query_id = "s0-q0";
  cert.query_text = "Q";
  cert.static_bound = stats.static_bound;
  cert.actual_fetches = stats.base_tuples_fetched;
  cert.index_lookups = stats.index_lookups;
  cert.ops.reserve(stats.ops.size());
  for (const exec::OpCounters& op : stats.ops) {
    obs::CertOp co;
    co.label = op.label;
    co.rows_out = op.rows_out;
    co.tuples_fetched = op.tuples_fetched;
    co.index_lookups = op.index_lookups;
    co.static_bound = op.static_bound;
    cert.ops.push_back(std::move(co));
  }
  cert.tripped = tripped;
  if (tripped) cert.trip_reason = trip.ToString();
  obs::SealCertificate(&cert);
  EXPECT_TRUE(obs::VerifyCertificate(cert));
  return obs::CertificatePayload(cert);
}

void ExpectSameStats(const BoundedEvalStats& a, const BoundedEvalStats& b,
                     const char* label) {
  EXPECT_EQ(a.base_tuples_fetched, b.base_tuples_fetched) << label;
  EXPECT_EQ(a.index_lookups, b.index_lookups) << label;
  EXPECT_EQ(a.fetched_by_relation, b.fetched_by_relation) << label;
  EXPECT_EQ(a.static_bound, b.static_bound) << label;
  ASSERT_EQ(a.ops.size(), b.ops.size()) << label;
  for (size_t i = 0; i < a.ops.size(); ++i) {
    const exec::OpCounters& x = a.ops[i];
    const exec::OpCounters& y = b.ops[i];
    EXPECT_EQ(x.label, y.label) << label << " op " << i;
    EXPECT_EQ(x.id, y.id) << label << " op " << i;
    EXPECT_EQ(x.parent, y.parent) << label << " op " << i;
    EXPECT_EQ(x.rows_out, y.rows_out) << label << " op " << x.label;
    EXPECT_EQ(x.tuples_fetched, y.tuples_fetched) << label << " op " << x.label;
    EXPECT_EQ(x.index_lookups, y.index_lookups) << label << " op " << x.label;
    EXPECT_EQ(x.static_bound, y.static_bound) << label << " op " << x.label;
  }
}

void ExpectSameTrip(const exec::TripInfo& a, const exec::TripInfo& b,
                    const char* label) {
  EXPECT_EQ(a.kind, b.kind) << label;
  EXPECT_EQ(a.detail, b.detail) << label;
  EXPECT_EQ(a.op_id, b.op_id) << label;
  EXPECT_EQ(a.op_label, b.op_label) << label;
  EXPECT_EQ(a.fetched_at_trip, b.fetched_at_trip) << label;
}

/// The core differential: runs `q` interpreted and compiled under identical
/// configuration at threads {1, 4} and asserts byte-identity of every
/// observable (including the degraded/tripped path and sealed certificates).
void ExpectPlainDifferentialEqual(const FoQuery& q,
                                  std::shared_ptr<const ControllabilityAnalysis>
                                      analysis,
                                  Database* db, const Binding& params,
                                  const exec::GovernorLimits& limits,
                                  bool enforce) {
  Result<std::shared_ptr<const exec::CompiledProgram>> compiled =
      exec::CompilePlain(q, analysis, VarsOf(params));
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  PoolGuard guard;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    par::WorkerPool::Global().Resize(threads);
    const std::string label =
        "threads=" + std::to_string(threads);

    BoundedEvaluator interp(db);
    interp.set_limits(limits);
    interp.set_enforce_bounds(enforce);
    BoundedEvalStats istats;
    istats.capture_ops = true;
    Result<exec::Degraded<AnswerSet>> iref =
        interp.EvaluateDegraded(q, *analysis, params, &istats);

    exec::CompiledEvaluator vm(db);
    vm.set_limits(limits);
    vm.set_enforce_bounds(enforce);
    BoundedEvalStats vstats;
    vstats.capture_ops = true;
    Result<exec::Degraded<AnswerSet>> vref =
        vm.EvaluateDegraded(**compiled, params, &vstats);

    ASSERT_EQ(iref.ok(), vref.ok())
        << label << " interp: " << iref.status().ToString()
        << " vm: " << vref.status().ToString();
    if (!iref.ok()) {
      EXPECT_EQ(iref.status().code(), vref.status().code()) << label;
      EXPECT_EQ(iref.status().message(), vref.status().message()) << label;
      continue;
    }
    EXPECT_EQ(iref->value, vref->value) << label;
    EXPECT_EQ(iref->complete, vref->complete) << label;
    EXPECT_EQ(iref->base_tuples_fetched, vref->base_tuples_fetched) << label;
    EXPECT_EQ(iref->index_lookups, vref->index_lookups) << label;
    ExpectSameTrip(iref->trip, vref->trip, label.c_str());
    ExpectSameStats(istats, vstats, label.c_str());
    EXPECT_EQ(SealedPayload(istats, !iref->complete, iref->trip),
              SealedPayload(vstats, !vref->complete, vref->trip))
        << label;
  }
}

struct Social {
  SocialConfig config;
  Schema schema = SocialSchema(false);
  Database db{Schema{}};
  AccessSchema access;

  explicit Social(uint64_t persons) {
    config.num_persons = persons;
    config.max_friends_per_person = 10;
    config.num_restaurants = 40;
    config.seed = 99;
    db = GenerateSocial(config);
    access = SocialAccessSchema(config);
    SI_CHECK(access.BuildIndexes(&db, schema).ok());
  }
};

TEST(CompiledVmTest, Q1DifferentialAcrossParams) {
  Social social(120);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  std::shared_ptr<const ControllabilityAnalysis> analysis =
      Analyze(q1, social.schema, social.access);
  for (int64_t p = 0; p < 12; ++p) {
    ExpectPlainDifferentialEqual(q1, analysis, &social.db,
                                 {{V("p"), Value::Int(p)}}, {},
                                 /*enforce=*/false);
  }
}

TEST(CompiledVmTest, FetchBudgetTripsAreByteIdentical) {
  Social social(120);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  std::shared_ptr<const ControllabilityAnalysis> analysis =
      Analyze(q1, social.schema, social.access);
  Binding params{{V("p"), Value::Int(5)}};
  // Budgets from "trips immediately" to "just enough": every stopping point
  // must agree (same trip record, same partial answers, same certificate).
  for (uint64_t budget = 1; budget <= 12; ++budget) {
    exec::GovernorLimits limits;
    limits.fetch_budget = budget;
    ExpectPlainDifferentialEqual(q1, analysis, &social.db, params, limits,
                                 /*enforce=*/false);
  }
}

TEST(CompiledVmTest, OutputRowCapTripsAreByteIdentical) {
  Social social(120);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  std::shared_ptr<const ControllabilityAnalysis> analysis =
      Analyze(q1, social.schema, social.access);
  for (uint64_t cap : {uint64_t{1}, uint64_t{2}, uint64_t{100}}) {
    exec::GovernorLimits limits;
    limits.output_row_cap = cap;
    ExpectPlainDifferentialEqual(q1, analysis, &social.db,
                                 {{V("p"), Value::Int(3)}}, limits,
                                 /*enforce=*/false);
  }
}

TEST(CompiledVmTest, EnforceBoundsErrorsAreByteIdentical) {
  Schema s;
  s.Relation("e", {"a", "b"});
  Database db(s);
  for (int64_t i = 0; i < 5; ++i) {
    db.Insert("e", Tuple{Value::Int(1), Value::Int(i)});
  }
  AccessSchema access;
  access.Add("e", {"a"}, 2);  // declared N = 2, actual 5
  FoQuery q = FQ("Q(x, y) := e(x, y)", s);
  std::shared_ptr<const ControllabilityAnalysis> analysis =
      Analyze(q, s, access);
  ExpectPlainDifferentialEqual(q, analysis, &db, {{V("x"), Value::Int(1)}},
                               {}, /*enforce=*/true);
}

TEST(CompiledVmTest, PropertyShapesDifferential) {
  // Same shape corpus as the interpreter's property test: conjunctions,
  // safe negation, conditions, bare atoms — everything the compiler accepts
  // must agree with the interpreter on every observable.
  const char* queries[] = {
      "Q(x, y) := r(x, y)",
      "Q(x, z) := exists y. r(x, y) and t(y, z)",
      "Q(x, y) := r(x, y) and not t(x, y)",
      "Q(x) := exists y. r(x, y) and t(x, y)",
      "Q(x, y) := r(x, y) and (y = 2 or y = 3)",
  };
  for (uint64_t seed : {101u, 202u, 303u, 404u}) {
    Rng rng(seed);
    Schema s;
    s.Relation("r", {"a", "b"});
    s.Relation("t", {"a", "b"});
    Database db(s);
    for (int rel = 0; rel < 2; ++rel) {
      const char* name = rel == 0 ? "r" : "t";
      for (int64_t key = 0; key < 24; ++key) {
        uint64_t group = rng.Uniform(4);
        for (uint64_t g = 0; g < group; ++g) {
          db.Insert(name,
                    Tuple{Value::Int(key),
                          Value::Int(static_cast<int64_t>(rng.Uniform(6)))});
        }
      }
    }
    AccessSchema access;
    access.Add("r", {"a"}, 3);
    access.Add("t", {"a"}, 3);
    access.Add("t", {"a", "b"}, 1);
    ASSERT_TRUE(access.BuildIndexes(&db, s).ok());
    for (const char* text : queries) {
      FoQuery q = FQ(text, s);
      std::shared_ptr<const ControllabilityAnalysis> analysis =
          Analyze(q, s, access);
      if (!analysis->IsControlledBy({V("x")})) continue;
      SCOPED_TRACE(text);
      for (int64_t p = 0; p < 6; ++p) {
        ExpectPlainDifferentialEqual(q, analysis, &db,
                                     {{V("x"), Value::Int(p)}}, {},
                                     /*enforce=*/false);
      }
    }
  }
}

TEST(CompiledVmTest, WideFrontierFanOutDifferential) {
  // ≥ 16 partial bindings after the first expand forces the governed morsel
  // fan-out at threads=4; accounting must still be byte-identical.
  Schema s;
  s.Relation("r", {"a", "b"});
  s.Relation("t", {"a", "b"});
  Database db(s);
  for (int64_t i = 0; i < 40; ++i) {
    db.Insert("r", Tuple{Value::Int(1), Value::Int(i)});
    db.Insert("t", Tuple{Value::Int(i), Value::Int(i % 7)});
  }
  AccessSchema access;
  access.Add("r", {"a"}, 64);
  access.Add("t", {"a"}, 64);
  ASSERT_TRUE(access.BuildIndexes(&db, s).ok());
  FoQuery q = FQ("Q(x, z) := exists y. r(x, y) and t(y, z)", s);
  std::shared_ptr<const ControllabilityAnalysis> analysis =
      Analyze(q, s, access);
  ExpectPlainDifferentialEqual(q, analysis, &db, {{V("x"), Value::Int(1)}},
                               {}, /*enforce=*/false);
  // And under a budget that trips mid-fan-out.
  for (uint64_t budget : {uint64_t{5}, uint64_t{20}, uint64_t{45}}) {
    exec::GovernorLimits limits;
    limits.fetch_budget = budget;
    ExpectPlainDifferentialEqual(q, analysis, &db, {{V("x"), Value::Int(1)}},
                                 limits, /*enforce=*/false);
  }
}

TEST(CompiledVmTest, BatchEvaluationDifferential) {
  Social social(80);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  std::shared_ptr<const ControllabilityAnalysis> analysis =
      Analyze(q1, social.schema, social.access);
  std::vector<Binding> batch;
  for (int64_t p = 0; p < 20; ++p) batch.push_back({{V("p"), Value::Int(p)}});
  Result<std::shared_ptr<const exec::CompiledProgram>> compiled =
      exec::CompilePlain(q1, analysis, {V("p")});
  ASSERT_TRUE(compiled.ok());
  PoolGuard guard;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    par::WorkerPool::Global().Resize(threads);
    BoundedEvaluator interp(&social.db);
    BoundedEvalStats istats;
    std::vector<Result<AnswerSet>> iout =
        interp.EvaluateBatch(q1, *analysis, batch, &istats);
    exec::CompiledEvaluator vm(&social.db);
    BoundedEvalStats vstats;
    std::vector<Result<AnswerSet>> vout =
        vm.EvaluateBatch(**compiled, batch, &vstats);
    ASSERT_EQ(iout.size(), vout.size());
    for (size_t i = 0; i < iout.size(); ++i) {
      ASSERT_EQ(iout[i].ok(), vout[i].ok()) << i;
      if (iout[i].ok()) {
        EXPECT_EQ(*iout[i], *vout[i]) << i;
      }
    }
    ExpectSameStats(istats, vstats, "batch");
  }
}

// ---------------------------------------------------------------------------
// Embedded (Proposition 4.5 chase) differential.

Cq Q3(const Schema& s) {
  Result<Cq> q = ParseCq(
      "Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

struct DatedSocial {
  SocialConfig config;
  Schema schema = SocialSchema(true);
  Database db{Schema{}};
  AccessSchema access;

  DatedSocial() {
    config.num_persons = 80;
    config.max_friends_per_person = 8;
    config.num_restaurants = 12;
    config.avg_visits_per_person = 14;
    config.num_cities = 2;
    config.num_years = 1;
    config.dated_visits = true;
    config.seed = 17;
    db = GenerateSocial(config);
    access = SocialAccessSchema(config);
    SI_CHECK(access.BuildIndexes(&db, schema).ok());
  }

  std::shared_ptr<const EmbeddedCqAnalysis> Analysis() {
    Result<EmbeddedCqAnalysis> a = EmbeddedCqAnalysis::Analyze(
        Q3(schema), schema, access, {V("p"), V("yy")});
    SI_CHECK_MSG(a.ok(), a.status().message().c_str());
    SI_CHECK(a->IsScaleIndependent());
    return std::make_shared<const EmbeddedCqAnalysis>(*std::move(a));
  }

  Binding Params(int64_t p) {
    return {{V("p"), Value::Int(p)},
            {V("yy"),
             Value::Int(static_cast<int64_t>(config.first_year))}};
  }
};

TEST(CompiledVmTest, EmbeddedDifferentialAcrossParams) {
  DatedSocial social;
  std::shared_ptr<const EmbeddedCqAnalysis> analysis = social.Analysis();
  Result<std::shared_ptr<const exec::CompiledProgram>> compiled =
      exec::CompileEmbedded(analysis);
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  PoolGuard guard;
  int nonempty = 0;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    par::WorkerPool::Global().Resize(threads);
    for (int64_t p = 0; p < 20; ++p) {
      BoundedEvaluator interp(&social.db);
      BoundedEvalStats istats;
      istats.capture_ops = true;
      Result<AnswerSet> iref =
          interp.EvaluateEmbedded(*analysis, social.Params(p), &istats);
      exec::CompiledEvaluator vm(&social.db);
      BoundedEvalStats vstats;
      vstats.capture_ops = true;
      Result<AnswerSet> vref =
          vm.EvaluateEmbedded(**compiled, social.Params(p), &vstats);
      ASSERT_EQ(iref.ok(), vref.ok()) << "p=" << p;
      ASSERT_TRUE(iref.ok()) << iref.status().ToString();
      EXPECT_EQ(*iref, *vref) << "p=" << p;
      if (!iref->empty()) ++nonempty;
      ExpectSameStats(istats, vstats, "embedded");
    }
  }
  EXPECT_GT(nonempty, 0);
}

TEST(CompiledVmTest, EmbeddedDegradedTripsAreByteIdentical) {
  DatedSocial social;
  std::shared_ptr<const EmbeddedCqAnalysis> analysis = social.Analysis();
  Result<std::shared_ptr<const exec::CompiledProgram>> compiled =
      exec::CompileEmbedded(analysis);
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  PoolGuard guard;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    par::WorkerPool::Global().Resize(threads);
    for (uint64_t budget : {uint64_t{1}, uint64_t{3}, uint64_t{10}}) {
      exec::GovernorLimits limits;
      limits.fetch_budget = budget;
      BoundedEvaluator interp(&social.db);
      interp.set_limits(limits);
      BoundedEvalStats istats;
      istats.capture_ops = true;
      Result<exec::Degraded<AnswerSet>> iref = interp.EvaluateEmbeddedDegraded(
          *analysis, social.Params(3), &istats);
      exec::CompiledEvaluator vm(&social.db);
      vm.set_limits(limits);
      BoundedEvalStats vstats;
      vstats.capture_ops = true;
      Result<exec::Degraded<AnswerSet>> vref =
          vm.EvaluateEmbeddedDegraded(**compiled, social.Params(3), &vstats);
      ASSERT_EQ(iref.ok(), vref.ok()) << "budget=" << budget;
      if (!iref.ok()) {
        EXPECT_EQ(iref.status().code(), vref.status().code());
        EXPECT_EQ(iref.status().message(), vref.status().message());
        continue;
      }
      EXPECT_EQ(iref->value, vref->value) << "budget=" << budget;
      EXPECT_EQ(iref->complete, vref->complete) << "budget=" << budget;
      ExpectSameTrip(iref->trip, vref->trip, "embedded degraded");
      ExpectSameStats(istats, vstats, "embedded degraded");
      EXPECT_EQ(SealedPayload(istats, !iref->complete, iref->trip),
                SealedPayload(vstats, !vref->complete, vref->trip));
    }
  }
}

TEST(CompiledVmTest, FailpointInjectedChaseErrorsAreByteIdentical) {
  DatedSocial social;
  std::shared_ptr<const EmbeddedCqAnalysis> analysis = social.Analysis();
  Result<std::shared_ptr<const exec::CompiledProgram>> compiled =
      exec::CompileEmbedded(analysis);
  ASSERT_TRUE(compiled.ok());
  struct FailpointGuard {
    ~FailpointGuard() { util::Failpoints::Global().Clear(); }
  } fp_guard;
  util::Failpoints& fp = util::Failpoints::Global();
  PoolGuard guard;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    par::WorkerPool::Global().Resize(threads);
    // The every-2 stream is global; reset it per engine so both see the
    // same fire schedule.
    ASSERT_TRUE(fp.Configure("chase_step=error(every:2)").ok());
    BoundedEvaluator interp(&social.db);
    Result<AnswerSet> iref =
        interp.EvaluateEmbedded(*analysis, social.Params(3));
    ASSERT_TRUE(fp.Configure("chase_step=error(every:2)").ok());
    exec::CompiledEvaluator vm(&social.db);
    Result<AnswerSet> vref = vm.EvaluateEmbedded(**compiled, social.Params(3));
    ASSERT_EQ(iref.ok(), vref.ok());
    if (!iref.ok()) {
      EXPECT_EQ(iref.status().code(), vref.status().code());
      EXPECT_EQ(iref.status().message(), vref.status().message());
    }
  }
  fp.Clear();
}

// ---------------------------------------------------------------------------
// Plan-set lifecycle: modes, failure caching, DDL invalidation.

TEST(CompiledVmTest, PlanSetModesAndFailureCaching) {
  Social social(40);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  std::shared_ptr<const ControllabilityAnalysis> analysis =
      Analyze(q1, social.schema, social.access);
  exec::CompiledPlanSet set;
  std::string why;
  bool failed = false;

  // kOff never compiles.
  EXPECT_EQ(set.GetOrCompilePlain(exec::CompiledPlanSet::Mode::kOff, q1,
                                  analysis, {V("p")}, &why, &failed),
            nullptr);
  EXPECT_FALSE(failed);
  EXPECT_EQ(set.compiles(), 0u);

  // kAuto defers the first sighting, compiles on the second.
  EXPECT_EQ(set.GetOrCompilePlain(exec::CompiledPlanSet::Mode::kAuto, q1,
                                  analysis, {V("p")}, &why, &failed),
            nullptr);
  EXPECT_FALSE(failed);
  EXPECT_NE(why.find("deferred"), std::string::npos);
  EXPECT_NE(set.GetOrCompilePlain(exec::CompiledPlanSet::Mode::kAuto, q1,
                                  analysis, {V("p")}, &why, &failed),
            nullptr);
  EXPECT_EQ(set.compiles(), 1u);

  // Cached: a third call returns the same program without recompiling.
  std::shared_ptr<const exec::CompiledProgram> again = set.GetOrCompilePlain(
      exec::CompiledPlanSet::Mode::kOn, q1, analysis, {V("p")}, &why, &failed);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(set.compiles(), 1u);

  // A parameter set the analysis does not control is a cached failure: one
  // rejection, then served from the failure slot, flagged for the
  // fallback counter both times.
  FoQuery q_uncontrolled = q1;
  failed = false;
  EXPECT_EQ(set.GetOrCompilePlain(exec::CompiledPlanSet::Mode::kOn,
                                  q_uncontrolled, analysis, {V("name")}, &why,
                                  &failed),
            nullptr);
  EXPECT_TRUE(failed);
  failed = false;
  EXPECT_EQ(set.GetOrCompilePlain(exec::CompiledPlanSet::Mode::kOn,
                                  q_uncontrolled, analysis, {V("name")}, &why,
                                  &failed),
            nullptr);
  EXPECT_TRUE(failed);
  EXPECT_EQ(set.compiles(), 1u);
}

TEST(CompiledVmTest, AnalysisCacheDropsCompiledPlansOnInvalidation) {
  Social social(40);
  FoQuery q1 = FQ(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      social.schema);
  AnalysisCache cache;
  std::shared_ptr<exec::CompiledPlanSet> set1;
  Result<std::shared_ptr<const ControllabilityAnalysis>> a1 =
      cache.GetOrAnalyze(q1.body, "q1", social.schema, social.access, {},
                         &set1);
  ASSERT_TRUE(a1.ok());
  ASSERT_NE(set1, nullptr);
  std::string why;
  std::shared_ptr<const exec::CompiledProgram> p1 = set1->GetOrCompilePlain(
      exec::CompiledPlanSet::Mode::kOn, q1, *a1, {V("p")}, &why);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(set1->compiles(), 1u);

  // A cache hit hands back the same plan set (no recompilation).
  std::shared_ptr<exec::CompiledPlanSet> set_hit;
  ASSERT_TRUE(cache.GetOrAnalyze(q1.body, "q1", social.schema, social.access,
                                 {}, &set_hit)
                  .ok());
  EXPECT_EQ(set_hit.get(), set1.get());

  // DDL: the entry is dropped, and with it the attached bytecode. The next
  // analyze returns a *fresh, empty* plan set — the VM can never execute a
  // program lowered from the dropped derivation.
  cache.Invalidate();
  std::shared_ptr<exec::CompiledPlanSet> set2;
  Result<std::shared_ptr<const ControllabilityAnalysis>> a2 =
      cache.GetOrAnalyze(q1.body, "q1", social.schema, social.access, {},
                         &set2);
  ASSERT_TRUE(a2.ok());
  ASSERT_NE(set2, nullptr);
  EXPECT_NE(set2.get(), set1.get());
  EXPECT_EQ(set2->compiles(), 0u);
  std::shared_ptr<const exec::CompiledProgram> p2 = set2->GetOrCompilePlain(
      exec::CompiledPlanSet::Mode::kOn, q1, *a2, {V("p")}, &why);
  ASSERT_NE(p2, nullptr);
  EXPECT_NE(p2.get(), p1.get());  // recompiled against the fresh derivation
  EXPECT_EQ(set2->compiles(), 1u);
}

TEST(CompiledVmTest, ShellRecompilesAfterMidSessionDdl) {
  // End-to-end DDL regression: `access` DDL between two compiled evals must
  // invalidate the bytecode with the derivation. The second eval recompiles
  // against the new bounds and still answers correctly — never executes the
  // stale program, never errors.
  Shell shell;
  auto run = [&](const std::string& line) {
    Result<std::string> out = shell.Execute(line);
    SI_CHECK_MSG(out.ok(), (line + ": " + out.status().message()).c_str());
    return *std::move(out);
  };
  run("schema relation e(a, b)");
  run("access access e(a) N=10");
  run("row e 1,10");
  run("row e 1,11");
  run("compile on");
  const std::string first = run("eval x=1 Q(x, y) := e(x, y)");
  EXPECT_NE(first.find("(2 answers"), std::string::npos) << first;

  // DDL mid-session: tighten the declared bound. The cached entry (and its
  // compiled program) must be dropped.
  run("access access e(a) N=5");
  const std::string second = run("eval x=1 Q(x, y) := e(x, y)");
  EXPECT_NE(second.find("(2 answers"), std::string::npos) << second;

  // Both evals ran compiled (mode on): two hits, no fallbacks.
  const std::string status = run("compile status");
  EXPECT_NE(status.find("hits=2"), std::string::npos) << status;
  EXPECT_NE(status.find("fallbacks=0"), std::string::npos) << status;

  // And the EXPLAIN disassembly reflects the *new* static bound, proving
  // the program was recompiled, not served stale.
  const std::string explained = run("explain x=1 Q(x, y) := e(x, y)");
  EXPECT_NE(explained.find("compiled:"), std::string::npos) << explained;
  EXPECT_NE(explained.find("static_bound=5"), std::string::npos) << explained;
}

TEST(CompiledVmTest, ShellCompileOffMatchesInterpreterOutput) {
  // SCALEIN_COMPILE=off / `compile off` must restore today's behavior: the
  // rendered output of an eval is identical either way.
  auto session = [&](const char* mode) {
    Shell shell;
    auto run = [&](const std::string& line) {
      Result<std::string> out = shell.Execute(line);
      SI_CHECK_MSG(out.ok(), out.status().message().c_str());
      return *std::move(out);
    };
    run("schema relation e(a, b)");
    run("access access e(a) N=10");
    run("row e 1,10");
    run("row e 1,11");
    run("row e 2,20");
    run(std::string("compile ") + mode);
    return run("eval x=1 Q(x, y) := e(x, y)");
  };
  EXPECT_EQ(session("on"), session("off"));
}

TEST(CompiledVmTest, UnsupportedShapeFallsBackInShell) {
  // "or" derivations are outside the compiled grammar: with compile on the
  // eval still succeeds (interpreted) and the fallback counter advances.
  Shell shell;
  auto run = [&](const std::string& line) {
    Result<std::string> out = shell.Execute(line);
    SI_CHECK_MSG(out.ok(), out.status().message().c_str());
    return *std::move(out);
  };
  run("schema relation r(a, b)");
  run("schema relation t(a, b)");
  run("access access r(a) N=5");
  run("access access t(a) N=5");
  run("row r 1,10");
  run("row t 1,20");
  run("compile on");
  const std::string out = run("eval x=1 Q(x, y) := r(x, y) or t(x, y)");
  EXPECT_NE(out.find("(2 answers"), std::string::npos) << out;
  const std::string status = run("compile status");
  EXPECT_NE(status.find("hits=0"), std::string::npos) << status;
  EXPECT_NE(status.find("fallbacks=1"), std::string::npos) << status;
}

}  // namespace
}  // namespace scalein
