// Governed parallelism tests: the sub-budget lease / charge-log replay
// protocol (exec/governed_parallel.h) must make a governor-armed bounded
// evaluation at any thread count byte-identical to the single-threaded run —
// same answers, same Degraded<T> partial extent, same trip record (kind,
// detail, tripping op, fetched_at_trip), same accounting, and the same
// sealed access certificate. The sweep below drives every deterministic
// trip class (fetch budget mid-fan-out, pre-expired deadline, pre-cancelled
// token, output row cap) across SCALEIN_THREADS ∈ {1, 2, 4, 8}.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "core/embedded_controllability.h"
#include "exec/governor.h"
#include "obs/journal.h"
#include "par/worker_pool.h"
#include "query/parser.h"
#include "workload/social_gen.h"

namespace scalein {
namespace {

Variable V(const char* name) { return Variable::Named(name); }

FoQuery FQ(const char* text, const Schema& s) {
  Result<FoQuery> q = ParseFoQuery(text, &s);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

struct ScopedThreads {
  explicit ScopedThreads(size_t n) { par::WorkerPool::Global().Resize(n); }
  ~ScopedThreads() { par::WorkerPool::Global().Resize(1); }
};

// A star fixture sized to exercise every protocol path: person 0 has
// kFriends friends, so the conjunct-expansion frontier is far past the
// fan-out threshold, a 450-tuple budget trips mid-fan-out, and at narrow
// ledgers (low thread counts) worker lanes genuinely starve and re-execute.
constexpr int64_t kFriends = 400;
constexpr const char* kQueryText =
    "Q(p, b, name) := friend(p, b) and person(b, name, \"NYC\")";

Schema FanSchema() {
  Schema s;
  s.Relation("friend", {"a", "b"});
  s.Relation("person", {"id", "name", "city"});
  return s;
}

Database FanDb(const Schema& s) {
  Database db(s);
  for (int64_t k = 0; k < kFriends; ++k) {
    db.Insert("friend", Tuple{Value::Int(0), Value::Int(k)});
    db.Insert("person",
              Tuple{Value::Int(k), Value::Str("n" + std::to_string(k)),
                    Value::Str(k % 2 == 0 ? "NYC" : "LA")});
  }
  return db;
}

AccessSchema FanAccess() {
  AccessSchema a;
  a.Add("friend", {"a"}, 512);
  a.AddKey("person", {"id"});
  return a;
}

struct RunResult {
  exec::Degraded<AnswerSet> degraded;
  BoundedEvalStats stats;
  obs::AccessCertificate cert;
};

/// One governed evaluation plus the certificate the shell would seal for it
/// (CertOp carries no timing fields, so payload equality is exactly the
/// "same per-op accounting" claim).
RunResult RunGoverned(Database* db, const FoQuery& q,
                      const ControllabilityAnalysis& analysis,
                      const Binding& params,
                      const exec::GovernorLimits& limits) {
  BoundedEvaluator evaluator(db);
  evaluator.set_limits(limits);
  RunResult out;
  out.stats.capture_ops = true;
  Result<exec::Degraded<AnswerSet>> r =
      evaluator.EvaluateDegraded(q, analysis, params, &out.stats);
  SI_CHECK_MSG(r.ok(), r.status().message().c_str());
  out.degraded = *std::move(r);
  out.cert.query_fingerprint = "governed-parallel-test";
  out.cert.query_text = kQueryText;
  out.cert.static_bound = out.stats.static_bound;
  out.cert.actual_fetches = out.stats.base_tuples_fetched;
  out.cert.index_lookups = out.stats.index_lookups;
  out.cert.ops.reserve(out.stats.ops.size());
  for (const exec::OpCounters& op : out.stats.ops) {
    obs::CertOp co;
    co.label = op.label;
    co.rows_out = op.rows_out;
    co.tuples_fetched = op.tuples_fetched;
    co.index_lookups = op.index_lookups;
    co.static_bound = op.static_bound;
    out.cert.ops.push_back(std::move(co));
  }
  out.cert.tripped = !out.degraded.complete;
  if (out.cert.tripped) out.cert.trip_reason = out.degraded.trip.ToString();
  obs::SealCertificate(&out.cert);
  return out;
}

void ExpectSameOutcome(const RunResult& ref, const RunResult& got) {
  EXPECT_EQ(got.degraded.value, ref.degraded.value);
  EXPECT_EQ(got.degraded.complete, ref.degraded.complete);
  EXPECT_EQ(got.degraded.trip.kind, ref.degraded.trip.kind);
  EXPECT_EQ(got.degraded.trip.detail, ref.degraded.trip.detail);
  EXPECT_EQ(got.degraded.trip.op_id, ref.degraded.trip.op_id);
  EXPECT_EQ(got.degraded.trip.op_label, ref.degraded.trip.op_label);
  EXPECT_EQ(got.degraded.trip.fetched_at_trip, ref.degraded.trip.fetched_at_trip);
  EXPECT_EQ(got.stats.base_tuples_fetched, ref.stats.base_tuples_fetched);
  EXPECT_EQ(got.stats.index_lookups, ref.stats.index_lookups);
  EXPECT_EQ(got.stats.fetched_by_relation, ref.stats.fetched_by_relation);
  EXPECT_EQ(got.stats.static_bound, ref.stats.static_bound);
  // Byte-identical certificate: payload covers every sealed field, and the
  // FNV-1a signature re-derives from the payload alone.
  EXPECT_EQ(obs::CertificatePayload(got.cert),
            obs::CertificatePayload(ref.cert));
  EXPECT_EQ(got.cert.signature, ref.cert.signature);
  EXPECT_EQ(got.cert.verdict, ref.cert.verdict);
}

TEST(GovernedParallelTest, TripsAndCertificatesIdenticalAcrossThreadCounts) {
  Schema schema = FanSchema();
  Database db = FanDb(schema);
  AccessSchema access = FanAccess();
  ASSERT_TRUE(access.BuildIndexes(&db, schema).ok());
  FoQuery q = FQ(kQueryText, schema);
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q.body, schema, access);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  Binding params{{V("p"), Value::Int(0)}};

  exec::CancellationToken cancelled;
  cancelled.Cancel();

  std::vector<std::pair<const char*, exec::GovernorLimits>> scenarios;
  {
    exec::GovernorLimits clean;
    clean.fetch_budget = 1ULL << 30;
    scenarios.emplace_back("clean-governed", clean);
  }
  {
    // Trips at the 51st person probe (400 friend tuples + 51 > 450), deep
    // inside the fan-out region; at 2 lanes the shared ledger (50 remaining
    // + 2 chunks of slack) also starves lanes, exercising re-execution.
    exec::GovernorLimits budget;
    budget.fetch_budget = 450;
    scenarios.emplace_back("fetch-budget-mid-fanout", budget);
  }
  {
    // Absolute deadline in the past: detected at the first amortized time
    // check (probe kCheckInterval), the deterministic deadline case.
    exec::GovernorLimits deadline;
    deadline.deadline_ns = 1;
    scenarios.emplace_back("pre-expired-deadline", deadline);
  }
  {
    exec::GovernorLimits cancel;
    cancel.has_cancel = true;
    cancel.cancel = cancelled;
    scenarios.emplace_back("pre-cancelled", cancel);
  }
  {
    exec::GovernorLimits rows;
    rows.output_row_cap = 5;
    scenarios.emplace_back("output-row-cap", rows);
  }

  for (const auto& [name, limits] : scenarios) {
    SCOPED_TRACE(name);
    RunResult ref;
    {
      ScopedThreads scoped(1);
      ref = RunGoverned(&db, q, *analysis, params, limits);
    }
    if (std::string(name) == "clean-governed") {
      EXPECT_TRUE(ref.degraded.complete);
      EXPECT_EQ(ref.degraded.value.size(), 200u);  // the NYC half
    } else {
      EXPECT_FALSE(ref.degraded.complete);
    }
    if (std::string(name) == "fetch-budget-mid-fanout") {
      EXPECT_EQ(ref.degraded.trip.kind, exec::LimitKind::kFetchBudget);
    }
    if (std::string(name) == "pre-expired-deadline") {
      EXPECT_EQ(ref.degraded.trip.kind, exec::LimitKind::kDeadline);
    }
    if (std::string(name) == "pre-cancelled") {
      EXPECT_EQ(ref.degraded.trip.kind, exec::LimitKind::kCancelled);
    }
    if (std::string(name) == "output-row-cap") {
      EXPECT_EQ(ref.degraded.trip.kind, exec::LimitKind::kOutputRows);
      EXPECT_EQ(ref.degraded.value.size(), 5u);
    }
    for (size_t threads : {2u, 4u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ScopedThreads scoped(threads);
      RunResult got = RunGoverned(&db, q, *analysis, params, limits);
      ExpectSameOutcome(ref, got);
    }
  }
}

TEST(GovernedParallelTest, UngovernedFanOutMatchesSequentialAndReportsLanes) {
  Schema schema = FanSchema();
  Database db = FanDb(schema);
  AccessSchema access = FanAccess();
  ASSERT_TRUE(access.BuildIndexes(&db, schema).ok());
  FoQuery q = FQ(kQueryText, schema);
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q.body, schema, access);
  ASSERT_TRUE(analysis.ok());
  Binding params{{V("p"), Value::Int(0)}};

  BoundedEvaluator evaluator(&db);
  BoundedEvalStats seq_stats;
  AnswerSet expected;
  {
    ScopedThreads scoped(1);
    Result<AnswerSet> r = evaluator.Evaluate(q, *analysis, params, &seq_stats);
    ASSERT_TRUE(r.ok());
    expected = *std::move(r);
  }
  EXPECT_TRUE(seq_stats.fetched_by_lane.empty());

  ScopedThreads scoped(4);
  BoundedEvalStats par_stats;
  Result<AnswerSet> r = evaluator.Evaluate(q, *analysis, params, &par_stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, expected);
  EXPECT_EQ(par_stats.base_tuples_fetched, seq_stats.base_tuples_fetched);
  EXPECT_EQ(par_stats.index_lookups, seq_stats.index_lookups);
  EXPECT_EQ(par_stats.fetched_by_relation, seq_stats.fetched_by_relation);
  // Per-lane observability: the fan-out reports raw per-lane probe traffic
  // without perturbing the deterministic totals above.
  ASSERT_FALSE(par_stats.fetched_by_lane.empty());
  uint64_t lane_total = 0;
  for (const auto& [lane, fetched] : par_stats.fetched_by_lane) {
    EXPECT_GE(lane, 0);
    EXPECT_LT(lane, 4);
    lane_total += fetched;
  }
  EXPECT_GT(lane_total, 0u);
}

TEST(GovernedParallelTest, EmbeddedBudgetTripIdenticalAcrossThreadCounts) {
  SocialConfig config;
  config.num_persons = 120;
  config.max_friends_per_person = 40;
  config.num_restaurants = 12;
  config.avg_visits_per_person = 10;
  config.num_cities = 2;
  config.num_years = 1;
  config.dated_visits = true;
  config.seed = 17;
  Schema schema = SocialSchema(true);
  Database db = GenerateSocial(config);
  AccessSchema access = SocialAccessSchema(config);
  ASSERT_TRUE(access.BuildIndexes(&db, schema).ok());
  Result<Cq> q3 = ParseCq(
      "Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &schema);
  ASSERT_TRUE(q3.ok());
  Result<EmbeddedCqAnalysis> analysis =
      EmbeddedCqAnalysis::Analyze(*q3, schema, access, {V("p"), V("yy")});
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->IsScaleIndependent());

  // A parameter whose chase frontier is wide enough to fan out.
  const HashIndex& friend_idx = db.relation("friend").EnsureIndex({0});
  int64_t p = -1;
  for (int64_t candidate = 0; candidate < 120; ++candidate) {
    const std::vector<uint32_t>* bucket =
        friend_idx.Lookup(Tuple{Value::Int(candidate)});
    if (bucket != nullptr && bucket->size() >= 16) {
      p = candidate;
      break;
    }
  }
  ASSERT_GE(p, 0) << "fixture produced no person with a wide friend frontier";
  Binding params{{V("p"), Value::Int(p)}, {V("yy"), Value::Int(0)}};

  BoundedEvaluator evaluator(&db);
  BoundedEvalStats clean_stats;
  {
    ScopedThreads scoped(1);
    Result<AnswerSet> clean =
        evaluator.EvaluateEmbedded(*analysis, params, &clean_stats);
    ASSERT_TRUE(clean.ok());
  }
  ASSERT_GT(clean_stats.base_tuples_fetched, 4u);

  exec::GovernorLimits limits;
  limits.fetch_budget = clean_stats.base_tuples_fetched / 2;
  evaluator.set_limits(limits);

  exec::Degraded<AnswerSet> ref;
  BoundedEvalStats ref_stats;
  {
    ScopedThreads scoped(1);
    Result<exec::Degraded<AnswerSet>> r =
        evaluator.EvaluateEmbeddedDegraded(*analysis, params, &ref_stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ref = *std::move(r);
  }
  EXPECT_FALSE(ref.complete);
  EXPECT_EQ(ref.trip.kind, exec::LimitKind::kFetchBudget);

  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ScopedThreads scoped(threads);
    BoundedEvalStats stats;
    Result<exec::Degraded<AnswerSet>> r =
        evaluator.EvaluateEmbeddedDegraded(*analysis, params, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->value, ref.value);
    EXPECT_EQ(r->complete, ref.complete);
    EXPECT_EQ(r->trip.kind, ref.trip.kind);
    EXPECT_EQ(r->trip.detail, ref.trip.detail);
    EXPECT_EQ(r->trip.fetched_at_trip, ref.trip.fetched_at_trip);
    EXPECT_EQ(stats.base_tuples_fetched, ref_stats.base_tuples_fetched);
    EXPECT_EQ(stats.index_lookups, ref_stats.index_lookups);
    EXPECT_EQ(stats.fetched_by_relation, ref_stats.fetched_by_relation);
  }
}

TEST(SharedLedgerTest, AcquireGrantsUpToCapacityThenZero) {
  exec::SharedLedger ledger;
  EXPECT_TRUE(ledger.unlimited());
  EXPECT_EQ(ledger.Acquire(1000), 1000u);  // unlimited: granted in full
  ledger.Init(100, 2);  // capacity = 100 + 2 chunks of slack = 228
  EXPECT_FALSE(ledger.unlimited());
  EXPECT_EQ(ledger.Acquire(200), 200u);
  EXPECT_EQ(ledger.Acquire(200), 28u);  // partial final grant
  EXPECT_EQ(ledger.Acquire(1), 0u);     // exhausted
}

// Release() is the serve-layer refund path: a session envelope returns the
// unspent part of its lease when a query finishes (or the whole lease when
// the session closes), making the units acquirable again.
TEST(SharedLedgerTest, ReleaseRefundsUnspentLeaseUnits) {
  exec::SharedLedger ledger;
  ledger.Init(100, 0);  // no lane slack: capacity is exactly 100
  EXPECT_EQ(ledger.Acquire(100), 100u);
  EXPECT_EQ(ledger.Acquire(1), 0u);  // drained
  ledger.Release(60);                // refund the unspent part of the lease
  EXPECT_EQ(ledger.Acquire(100), 60u);
  EXPECT_EQ(ledger.Acquire(1), 0u);
}

TEST(SharedLedgerTest, ReleaseClampsAtCapacityAndIgnoresUnlimited) {
  exec::SharedLedger unlimited;
  unlimited.Release(1ULL << 40);  // no-op: unlimited ledger has no pool
  EXPECT_TRUE(unlimited.unlimited());
  EXPECT_EQ(unlimited.Acquire(7), 7u);

  exec::SharedLedger ledger;
  ledger.Init(10, 0);
  EXPECT_EQ(ledger.Acquire(10), 10u);
  // An over-refund (buggy caller double-releasing) must not mint new budget
  // beyond what was actually reserved.
  ledger.Release(1000);
  uint64_t regained = ledger.Acquire(1000);
  EXPECT_LE(regained, 10u);
  EXPECT_GE(regained, 10u);  // the legitimate 10 do come back
}

TEST(SubBudgetTest, ChargesThroughChunkedLeasesUntilStarved) {
  exec::SharedLedger ledger;
  ledger.Init(0, 1);  // exactly one chunk of slack
  exec::SubBudget lease;
  lease.Attach(&ledger);
  for (uint64_t i = 0; i < exec::SubBudget::kChunk; ++i) {
    EXPECT_TRUE(lease.Charge(1)) << i;
  }
  EXPECT_FALSE(lease.Charge(1));  // ledger dry: the lane is starved

  exec::SubBudget detached;  // no ledger: every charge is free
  EXPECT_TRUE(detached.Charge(1ULL << 20));
}

}  // namespace
}  // namespace scalein
