#include "eval/containment.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace scalein {
namespace {

Cq Q(const char* text) {
  Result<Cq> q = ParseCq(text);
  SI_CHECK_MSG(q.ok(), q.status().message().c_str());
  return *std::move(q);
}

TEST(ContainmentTest, SpecializationIsContained) {
  // Q2 asks for a path through a fixed midpoint: Q2 ⊆ Q1.
  Cq q1 = Q("Q(x, z) :- e(x, y), e(y, z)");
  Cq q2 = Q("Q(x, z) :- e(x, 5), e(5, z)");
  EXPECT_TRUE(CqContains(q1, q2));
  EXPECT_FALSE(CqContains(q2, q1));
}

TEST(ContainmentTest, SelfJoinCollapse) {
  // A length-2 walk query contains the self-loop query; not conversely.
  Cq walk = Q("Q(x) :- e(x, y), e(y, x)");
  Cq loop = Q("Q(x) :- e(x, x)");
  EXPECT_TRUE(CqContains(walk, loop));
  EXPECT_FALSE(CqContains(loop, walk));
}

TEST(ContainmentTest, EquivalenceUpToRedundantAtoms) {
  Cq q1 = Q("Q(x) :- e(x, y)");
  Cq q2 = Q("Q(x) :- e(x, y), e(x, z)");
  EXPECT_TRUE(CqEquivalent(q1, q2));
}

TEST(ContainmentTest, ConstantsBlockHomomorphisms) {
  Cq general = Q("Q(x) :- r(x, y)");
  Cq with_const = Q("Q(x) :- r(x, 1)");
  EXPECT_TRUE(CqContains(general, with_const));
  EXPECT_FALSE(CqContains(with_const, general));
  EXPECT_FALSE(CqEquivalent(general, with_const));
}

TEST(ContainmentTest, MinimizeRemovesRedundantAtoms) {
  Cq q = Q("Q(x) :- e(x, y), e(x, z), e(x, w)");
  Cq core = MinimizeCq(q);
  EXPECT_EQ(core.TableauSize(), 1u);
  EXPECT_TRUE(CqEquivalent(q, core));
}

TEST(ContainmentTest, MinimizeKeepsNecessaryAtoms) {
  Cq q = Q("Q(x, z) :- e(x, y), e(y, z)");
  Cq core = MinimizeCq(q);
  EXPECT_EQ(core.TableauSize(), 2u);
}

TEST(ContainmentTest, BooleanCycleCores) {
  // Directed cycles are their own cores: no proper endomorphism exists.
  Cq c4 = Q("Q() :- e(a, b), e(b, c), e(c, d), e(d, a)");
  EXPECT_EQ(MinimizeCq(c4).TableauSize(), 4u);
  Cq c3 = Q("Q() :- e(a, b), e(b, c), e(c, a)");
  EXPECT_EQ(MinimizeCq(c3).TableauSize(), 3u);
}

TEST(ContainmentTest, ZigzagFoldsOntoOneEdge) {
  // The zigzag e(x,y), e(z,y), e(z,w) folds onto a single edge via the
  // endomorphism z ↦ x, w ↦ y — a collapse that requires variable folding,
  // which MinimizeCq must find.
  Cq zigzag = Q("Q() :- e(x, y), e(z, y), e(z, w)");
  Cq core = MinimizeCq(zigzag);
  EXPECT_EQ(core.TableauSize(), 1u);
  EXPECT_TRUE(CqEquivalent(core, zigzag));
}

TEST(ContainmentTest, MinimizePreservesHeadVariables) {
  // With x and w distinguished, the zigzag can only fold z; the two outer
  // edges must survive.
  Cq zigzag = Q("Q(x, w) :- e(x, y), e(z, y), e(z, w)");
  Cq core = MinimizeCq(zigzag);
  EXPECT_TRUE(CqEquivalent(core, zigzag));
  EXPECT_EQ(core.HeadVars(), zigzag.HeadVars());
  EXPECT_GE(core.TableauSize(), 2u);
}

TEST(ContainmentTest, FreezeRoundTrip) {
  Cq q = Q("Q(x) :- e(x, y), v(y)");
  FrozenCq frozen = FreezeCq(q);
  EXPECT_EQ(frozen.db.TotalTuples(), 2u);
  ASSERT_EQ(frozen.frozen_head.size(), 1u);
  Term back = UnfreezeValue(frozen.frozen_head[0]);
  ASSERT_TRUE(back.is_var());
  EXPECT_EQ(back.var(), Variable::Named("x"));
  // Real constants survive unfreezing unchanged.
  EXPECT_EQ(UnfreezeValue(Value::Int(5)), Term::Const(Value::Int(5)));
  EXPECT_EQ(UnfreezeValue(Value::Str("NYC")), Term::Const(Value::Str("NYC")));
}

TEST(ContainmentTest, UcqContainment) {
  Result<Ucq> big = ParseUcq("Q(x) :- e(x, y)\nQ(x) :- v(x)\n");
  Result<Ucq> small = ParseUcq("Q(x) :- e(x, 3)\n");
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(UcqContains(*big, *small));
  EXPECT_FALSE(UcqContains(*small, *big));
  EXPECT_FALSE(UcqEquivalent(*big, *small));
  EXPECT_TRUE(UcqEquivalent(*big, *big));
}

TEST(ContainmentTest, TrivialityIsSyntactic) {
  EXPECT_TRUE(IsTrivialCq(Q("Q() :- true")));
  EXPECT_FALSE(IsTrivialCq(Q("Q() :- r(x)")));
}

}  // namespace
}  // namespace scalein
