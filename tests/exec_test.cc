#include "exec/planner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/cq_evaluator.h"
#include "eval/ra_evaluator.h"
#include "exec/exec_context.h"
#include "exec/operators.h"
#include "query/parser.h"

namespace scalein {
namespace {

Schema EmpSchema() {
  Schema s;
  s.Relation("emp", {"id", "dept", "city"});
  s.Relation("dept", {"dept", "budget"});
  return s;
}

Database EmpDb() {
  Database db(EmpSchema());
  db.Insert("emp", Tuple{Value::Int(1), Value::Str("eng"), Value::Str("NYC")});
  db.Insert("emp", Tuple{Value::Int(2), Value::Str("eng"), Value::Str("LA")});
  db.Insert("emp", Tuple{Value::Int(3), Value::Str("ops"), Value::Str("NYC")});
  db.Insert("dept", Tuple{Value::Str("eng"), Value::Int(100)});
  db.Insert("dept", Tuple{Value::Str("ops"), Value::Int(50)});
  return db;
}

RaExpr EmpRel() { return RaExpr::Relation("emp", {"id", "dept", "city"}); }
RaExpr DeptRel() { return RaExpr::Relation("dept", {"dept", "budget"}); }

Relation Drain(const RaExpr& expr, exec::ExecContext* ctx) {
  exec::Plan plan = exec::PlanRa(expr, ctx);
  return exec::DrainToRelation(plan.root.get(), plan.attributes.size());
}

TEST(ExecContextTest, ScanChargesEveryRow) {
  Database db = EmpDb();
  exec::ExecContext ctx(&db);
  Relation out = Drain(EmpRel(), &ctx);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(ctx.base_tuples_fetched(), 3u);
  EXPECT_EQ(ctx.index_lookups(), 0u);
  EXPECT_EQ(ctx.fetched_by_relation().at("emp"), 3u);
}

TEST(ExecContextTest, ConstantSelectionBecomesIndexLookup) {
  Database db = EmpDb();
  SelectionCondition cond;
  cond.conjuncts.push_back(
      SelectionAtom::AttrEqConst("city", Value::Str("NYC")));
  exec::ExecContext ctx(&db);
  Relation out = Drain(RaExpr::Select(EmpRel(), cond), &ctx);
  EXPECT_EQ(out.size(), 2u);
  // One hash-index probe fetching exactly the NYC bucket — not a scan.
  EXPECT_EQ(ctx.index_lookups(), 1u);
  EXPECT_EQ(ctx.base_tuples_fetched(), 2u);
}

TEST(ExecContextTest, EmbeddedShapeBecomesProjectionLookup) {
  Database db = EmpDb();
  SelectionCondition cond;
  cond.conjuncts.push_back(
      SelectionAtom::AttrEqConst("city", Value::Str("NYC")));
  exec::ExecContext ctx(&db);
  // π_{dept}(σ_{city=NYC}(emp)): the shape of an embedded access statement.
  Relation out =
      Drain(RaExpr::Project(RaExpr::Select(EmpRel(), cond), {"dept"}), &ctx);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(Tuple{Value::Str("eng")}));
  EXPECT_TRUE(out.Contains(Tuple{Value::Str("ops")}));
  // A projection index fetches the distinct projections, not the base rows.
  EXPECT_EQ(ctx.index_lookups(), 1u);
  EXPECT_EQ(ctx.base_tuples_fetched(), 2u);
}

TEST(ExecContextTest, JoinAgainstBaseRelationUsesIndexProbes) {
  Database db = EmpDb();
  exec::ExecContext ctx(&db);
  Relation out = Drain(RaExpr::Join(EmpRel(), DeptRel()), &ctx);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(out.Contains(Tuple{Value::Int(3), Value::Str("ops"),
                                 Value::Str("NYC"), Value::Int(50)}));
  // Left side scanned (3 emp rows), right side probed through the index on
  // dept.dept once per left row — never a full dept scan per row.
  EXPECT_EQ(ctx.index_lookups(), 3u);
  EXPECT_EQ(ctx.fetched_by_relation().at("emp"), 3u);
  EXPECT_EQ(ctx.fetched_by_relation().at("dept"), 3u);
}

TEST(ExecContextTest, FetchBudgetStopsExecutionMidStream) {
  Database db = EmpDb();
  exec::ExecContext ctx(&db);
  ctx.set_fetch_budget(2);
  Relation out = Drain(EmpRel(), &ctx);
  EXPECT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.status().code(), StatusCode::kResourceExhausted);
  // The scan stopped as soon as the budget tripped: it never touched all
  // three rows.
  EXPECT_LT(out.size(), 3u);
  EXPECT_LE(ctx.base_tuples_fetched(), 3u);
}

TEST(ExecContextTest, OverridesResolveBeforeDatabase) {
  Database db = EmpDb();
  Relation delta(3);
  delta.Insert(Tuple{Value::Int(9), Value::Str("eng"), Value::Str("NYC")});
  exec::ExecContext ctx(&db);
  ctx.AddOverride("emp", &delta);
  // The plan joins ∆emp (the override) against the stored dept relation —
  // the shape the incremental maintainer relies on.
  Relation out = Drain(RaExpr::Join(EmpRel(), DeptRel()), &ctx);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Tuple{Value::Int(9), Value::Str("eng"),
                                 Value::Str("NYC"), Value::Int(100)}));
  EXPECT_EQ(ctx.fetched_by_relation().at("emp"), 1u);
}

TEST(ExecContextTest, UnknownRelationPlansEmpty) {
  Database db = EmpDb();
  exec::ExecContext ctx(&db);
  Relation out = Drain(RaExpr::Relation("ghost", {"x"}), &ctx);
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(ctx.base_tuples_fetched(), 0u);
}

TEST(ExecContextTest, PerOperatorCountersCoverAllCharges) {
  Database db = EmpDb();
  exec::ExecContext ctx(&db);
  (void)Drain(RaExpr::Join(EmpRel(), DeptRel()), &ctx);
  uint64_t per_op = 0;
  for (const exec::OpCounters& op : ctx.ops()) per_op += op.tuples_fetched;
  EXPECT_EQ(per_op, ctx.base_tuples_fetched());
}

TEST(ExecContextTest, PerOperatorAggregationAcrossPlans) {
  // One context can execute several plans; SnapshotOps keeps every plan's
  // forest (ids equal vector positions, parent links stay in range) and the
  // per-op fetch totals keep matching the context-wide accounting.
  Database db = EmpDb();
  exec::ExecContext ctx(&db);
  (void)Drain(EmpRel(), &ctx);
  (void)Drain(RaExpr::Join(EmpRel(), DeptRel()), &ctx);
  std::vector<exec::OpCounters> ops = ctx.SnapshotOps();
  ASSERT_GE(ops.size(), 2u);
  uint64_t per_op_fetched = 0;
  uint64_t per_op_lookups = 0;
  size_t roots = 0;
  for (const exec::OpCounters& op : ops) {
    EXPECT_EQ(op.id, static_cast<int32_t>(&op - ops.data()));
    if (op.parent < 0) {
      ++roots;
    } else {
      EXPECT_LT(op.parent, static_cast<int32_t>(ops.size()));
      EXPECT_NE(op.parent, op.id);
    }
    per_op_fetched += op.tuples_fetched;
    per_op_lookups += op.index_lookups;
  }
  EXPECT_EQ(roots, 2u);  // one root per drained plan
  EXPECT_EQ(per_op_fetched, ctx.base_tuples_fetched());
  EXPECT_EQ(per_op_lookups, ctx.index_lookups());
}

TEST(ExecContextTest, DebugStringListsTotalsAndPerOpCounters) {
  Database db = EmpDb();
  exec::ExecContext ctx(&db);
  Relation out = Drain(EmpRel(), &ctx);
  ASSERT_EQ(out.size(), 3u);
  std::string s = ctx.DebugString();
  EXPECT_NE(s.find("fetched=3"), std::string::npos);
  EXPECT_NE(s.find("lookups=0"), std::string::npos);
  EXPECT_NE(s.find("scan(emp): out=3 fetched=3"), std::string::npos);
}

TEST(PlannerTest, HashJoinHandlesDerivedRightSide) {
  Database db = EmpDb();
  // Right side is a union — not an access path, so the planner must fall
  // back to a hash join and still produce the right answer.
  RaExpr depts = RaExpr::Union(RaExpr::Project(DeptRel(), {"dept"}),
                               RaExpr::Project(DeptRel(), {"dept"}));
  exec::ExecContext ctx(&db);
  Relation out = Drain(RaExpr::Join(RaExpr::Project(EmpRel(), {"id", "dept"}),
                                    depts),
                       &ctx);
  EXPECT_EQ(out.size(), 3u);
}

TEST(PlannerTest, CartesianProductMaterializesRightOnce) {
  Database db = EmpDb();
  exec::ExecContext ctx(&db);
  Relation out = Drain(RaExpr::Join(RaExpr::Project(EmpRel(), {"id"}),
                                    RaExpr::Project(DeptRel(), {"budget"})),
                       &ctx);
  EXPECT_EQ(out.size(), 6u);
  // 3 emp rows + 2 dept rows: the product does NOT rescan dept per emp row.
  EXPECT_EQ(ctx.base_tuples_fetched(), 5u);
}

TEST(PlannerTest, MatchesReferenceEvaluatorOnExpressionZoo) {
  Database db = EmpDb();
  SelectionCondition nyc;
  nyc.conjuncts.push_back(
      SelectionAtom::AttrEqConst("city", Value::Str("NYC")));
  SelectionCondition self_neq;
  self_neq.conjuncts.push_back(SelectionAtom::AttrNeqConst("dept", Value::Str("eng")));
  std::vector<RaExpr> zoo = {
      EmpRel(),
      RaExpr::Select(EmpRel(), nyc),
      RaExpr::Select(EmpRel(), self_neq),
      RaExpr::Project(EmpRel(), {"dept", "city"}),
      RaExpr::Rename(EmpRel(), {{"id", "eid"}}),
      RaExpr::Join(EmpRel(), DeptRel()),
      RaExpr::Join(RaExpr::Select(EmpRel(), nyc), DeptRel()),
      RaExpr::Union(RaExpr::Project(EmpRel(), {"dept"}),
                    RaExpr::Project(DeptRel(), {"dept"})),
      RaExpr::Diff(RaExpr::Project(DeptRel(), {"dept"}),
                   RaExpr::Project(RaExpr::Select(EmpRel(), nyc), {"dept"})),
      RaExpr::Project(
          RaExpr::Join(RaExpr::Join(EmpRel(), DeptRel()),
                       RaExpr::Rename(RaExpr::Project(EmpRel(), {"id", "city"}),
                                      {{"id", "id2"}})),
          {"id", "budget"}),
  };
  for (const RaExpr& expr : zoo) {
    Relation reference = EvalRa(expr, db);
    exec::ExecContext ctx(&db);
    Relation engine = Drain(expr, &ctx);
    EXPECT_EQ(engine.SortedTuples(), reference.SortedTuples())
        << expr.ToString();
  }
}

TEST(PlannerTest, CqPlanAnswersMatchEvaluatorAndProbeIndexes) {
  Schema s = EmpSchema();
  Database db = EmpDb();
  Result<Cq> q = ParseCq("Q(id, budget) :- emp(id, d, \"NYC\"), dept(d, budget)",
                         &s);
  ASSERT_TRUE(q.ok());
  CqEvaluator eval(&db);
  AnswerSet reference = eval.EvaluateFull(*q, Binding{});

  exec::ExecContext ctx(&db);
  exec::CqPlan plan = exec::PlanCq(*q, &ctx);
  ASSERT_NE(plan.root, nullptr);
  // Drain the full binding rows and project onto the head variables.
  std::vector<size_t> head_cols;
  for (const Term& t : q->head()) {
    ASSERT_TRUE(t.is_var());
    auto it = std::find(plan.columns.begin(), plan.columns.end(), t.var());
    ASSERT_NE(it, plan.columns.end());
    head_cols.push_back(static_cast<size_t>(it - plan.columns.begin()));
  }
  AnswerSet engine;
  plan.root->Open();
  Tuple row;
  while (plan.root->Next(&row)) {
    Tuple head;
    for (size_t c : head_cols) head.push_back(row[c]);
    engine.insert(std::move(head));
  }
  EXPECT_EQ(engine, reference);
  EXPECT_GT(ctx.index_lookups(), 0u);
}

TEST(OperatorTest, CompiledConditionHonorsNegation) {
  SelectionCondition cond;
  cond.conjuncts.push_back(SelectionAtom::AttrEqConst("a", Value::Int(1)));
  cond.conjuncts.push_back(SelectionAtom::AttrNeqAttr("a", "b"));
  exec::CompiledCondition cc =
      exec::CompiledCondition::Compile(cond, {"a", "b"});
  Tuple yes{Value::Int(1), Value::Int(2)};
  Tuple no_eq{Value::Int(2), Value::Int(3)};
  Tuple no_neq{Value::Int(1), Value::Int(1)};
  EXPECT_TRUE(cc.Eval(yes));
  EXPECT_FALSE(cc.Eval(no_eq));
  EXPECT_FALSE(cc.Eval(no_neq));
}

}  // namespace
}  // namespace scalein
