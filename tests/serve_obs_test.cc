// Tests for the server observability plane: the structured access log
// (rotation, loader tolerance, field round-trips), the request lifecycle
// correlation contract (one QueryId joining the access-log line, the sealed
// journal certificate, the serve-phase flight event, and the retroactive
// trace spans), client trace tags (hello/eval grammar, echo, validation),
// the per-class `classes` rendering, and the /metrics + /healthz scrape
// endpoint.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "io/shell.h"
#include "obs/correlation.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/access_log.h"
#include "serve/metrics_http.h"
#include "serve/server.h"

namespace scalein::serve {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void RemoveGenerations(const std::string& path) {
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  std::filesystem::remove(path + ".2");
}

void LoadCatalog(Shell* shell) {
  const char* kCatalog[] = {
      "schema relation person(id, name, city)",
      "schema relation friend(id1, id2)",
      "schema relation secret(a, b)",
      "access access friend(id1) N=50",
      "access key person(id)",
      "row person 1,\"ada\",\"NYC\"",
      "row person 2,\"bob\",\"NYC\"",
      "row person 3,\"cyd\",\"NYC\"",
      "row friend 1,2",
      "row friend 1,3",
      "row secret 1,2",
  };
  for (const char* line : kCatalog) {
    Result<std::string> out = shell->Execute(line);
    ASSERT_TRUE(out.ok()) << line << ": " << out.status().ToString();
  }
}

constexpr const char* kFriendEval =
    "eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, "
    "\"NYC\")";
constexpr const char* kSecretEval = "eval a=1 S(a, b) := secret(a, b)";

std::string MustLine(Server* server, const std::string& sid,
                     std::string_view line) {
  Result<std::string> out = server->HandleLine(sid, line);
  EXPECT_TRUE(out.ok()) << line << ": " << out.status().ToString();
  return out.ok() ? *out : std::string();
}

// ---------------------------------------------------------------------------
// AccessLog: rotation, round-trip, loader tolerance.

TEST(AccessLogTest, RotatesLikeTheJournalAndLoadsOldestFirst) {
  const std::string path = TempPath("serve_obs_access_rot.jsonl");
  RemoveGenerations(path);
  AccessLog log(path, /*max_bytes=*/400);
  AccessLogRecord rec;
  rec.session_id = "s";
  rec.bound_class = BoundClass::kSmall;
  rec.action = AdmitAction::kAdmit;
  for (int i = 0; i < 30; ++i) {
    rec.query_id = "qid-" + std::to_string(i);
    ASSERT_TRUE(log.Append(rec).ok());
  }
  EXPECT_EQ(log.appended(), 30u);
  EXPECT_GT(log.rotations(), 0u);
  EXPECT_TRUE(std::filesystem::exists(path + ".1"));

  AccessLogLoadReport report;
  Result<std::vector<AccessLogRecord>> loaded =
      LoadAccessLogRecords(path, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(report.malformed, 0u);
  EXPECT_GT(report.files, 1u);
  // The 400-byte cap keeps only the newest generations: some history is
  // gone, and what survives replays in exact append order ending at the
  // final record.
  ASSERT_FALSE(loaded->empty());
  EXPECT_LT(loaded->size(), 30u);
  int prev = -1;
  for (const AccessLogRecord& r : *loaded) {
    const int n = std::atoi(r.query_id.c_str() + 4);
    EXPECT_GT(n, prev) << "records out of append order";
    prev = n;
  }
  EXPECT_EQ(loaded->back().query_id, "qid-29");
  RemoveGenerations(path);
}

TEST(AccessLogTest, RecordFieldsRoundTripThroughJsonl) {
  const std::string path = TempPath("serve_obs_access_rt.jsonl");
  RemoveGenerations(path);
  AccessLog log(path);

  AccessLogRecord shed;
  shed.query_id = "cafe1234-7";
  shed.client_tag = "probe.a-1";
  shed.session_id = "conn3";
  shed.bound_class = BoundClass::kMedium;
  shed.action = AdmitAction::kReject;
  shed.reject = RejectReason::kQueueTimeout;
  shed.static_bound = 2500;
  shed.queue_wait_ms = 10.25;
  shed.e2e_ms = 11.5;
  shed.bytes_out = 64;
  ASSERT_TRUE(log.Append(shed).ok());

  AccessLogRecord tripped;
  tripped.query_id = "cafe1234-8";
  tripped.session_id = "conn3";
  tripped.bound_class = BoundClass::kLarge;
  tripped.action = AdmitAction::kDegrade;
  tripped.static_bound = 125000;
  tripped.lease = 200;
  tripped.fetches = 200;
  tripped.answers = 3;
  tripped.exec_ms = 1.75;
  tripped.e2e_ms = 2.0;
  tripped.tripped = true;
  tripped.trip_reason = "fetch-budget";
  tripped.degraded = true;
  ASSERT_TRUE(log.Append(tripped).ok());

  Result<std::vector<AccessLogRecord>> loaded = LoadAccessLogRecords(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  const AccessLogRecord& a = (*loaded)[0];
  EXPECT_EQ(a.query_id, "cafe1234-7");
  EXPECT_EQ(a.client_tag, "probe.a-1");
  EXPECT_EQ(a.session_id, "conn3");
  EXPECT_EQ(a.bound_class, BoundClass::kMedium);
  EXPECT_EQ(a.action, AdmitAction::kReject);
  EXPECT_EQ(a.reject, RejectReason::kQueueTimeout);
  EXPECT_DOUBLE_EQ(a.static_bound, 2500);
  EXPECT_DOUBLE_EQ(a.queue_wait_ms, 10.25);
  EXPECT_EQ(a.bytes_out, 64u);
  const AccessLogRecord& b = (*loaded)[1];
  EXPECT_EQ(b.action, AdmitAction::kDegrade);
  EXPECT_EQ(b.reject, RejectReason::kNone);
  EXPECT_EQ(b.lease, 200u);
  EXPECT_EQ(b.fetches, 200u);
  EXPECT_EQ(b.answers, 3u);
  EXPECT_TRUE(b.tripped);
  EXPECT_EQ(b.trip_reason, "fetch-budget");
  EXPECT_TRUE(b.degraded);
  EXPECT_TRUE(b.client_tag.empty());
  RemoveGenerations(path);
}

TEST(AccessLogTest, LoaderToleratesTamperAndTruncation) {
  const std::string path = TempPath("serve_obs_access_bad.jsonl");
  RemoveGenerations(path);
  AccessLogRecord good;
  good.query_id = "good-1";
  good.session_id = "s";
  good.bound_class = BoundClass::kSmall;
  good.action = AdmitAction::kAdmit;
  {
    std::ofstream out(path);
    out << "this line is not json at all\n";
    out << AccessLogRecordJson(good) << "\n";
    // Valid JSON, but not an access-log record (no class/action).
    out << "{\"query_id\":\"imposter\"}\n";
    // A crash-truncated tail: half a record, no closing brace.
    out << "{\"query_id\":\"trunc";
  }
  AccessLogLoadReport report;
  Result<std::vector<AccessLogRecord>> loaded =
      LoadAccessLogRecords(path, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(report.records, 1u);
  EXPECT_EQ(report.malformed, 3u);
  EXPECT_EQ(report.errors.size(), 3u);
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].query_id, "good-1");
  // A missing log is an empty log, not an error.
  Result<std::vector<AccessLogRecord>> missing =
      LoadAccessLogRecords(TempPath("serve_obs_access_nothere.jsonl"));
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
  RemoveGenerations(path);
}

// ---------------------------------------------------------------------------
// Lifecycle correlation: one QueryId joins every artifact.

TEST(ServeObsTest, QueryIdJoinsAccessLogJournalFlightEventsAndSpans) {
  const std::string apath = TempPath("serve_obs_access_join.jsonl");
  const std::string jpath = TempPath("serve_obs_journal_join.jsonl");
  RemoveGenerations(apath);
  RemoveGenerations(jpath);
  ::setenv("SCALEIN_JOURNAL_PATH", jpath.c_str(), 1);
  Shell shell;
  ::unsetenv("SCALEIN_JOURNAL_PATH");
  LoadCatalog(&shell);

  obs::FlightRecorder recorder;
  obs::FlightRecorder::InstallGlobal(&recorder);
  obs::Tracer tracer;
  obs::Tracer::InstallGlobal(&tracer);

  Server::Options options;
  options.sla.session_fetch_budget = 120;
  options.access_log_path = apath;
  Server server(&shell, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.access_log(), nullptr);

  std::string open = MustLine(&server, "a", "hello smoke-tag");
  EXPECT_NE(open.find(" tag=smoke-tag"), std::string::npos) << open;
  std::string admit_resp = MustLine(&server, "a", kFriendEval);
  EXPECT_NE(admit_resp.find("admit bound=100 lease=100"), std::string::npos);
  EXPECT_NE(admit_resp.find(" tag=smoke-tag"), std::string::npos);
  // Per-request @tag overrides the session tag for this one request.
  std::string reject_resp =
      MustLine(&server, "a", "eval @req-7 a=1 S(a, b) := secret(a, b)");
  EXPECT_NE(reject_resp.find("reject(no-static-bound)"), std::string::npos);
  EXPECT_NE(reject_resp.find(" tag=req-7"), std::string::npos);

  obs::Tracer::InstallGlobal(nullptr);
  obs::FlightRecorder::InstallGlobal(nullptr);
  server.Drain();

  // Access log: one terminal record per request, in decision order.
  Result<std::vector<AccessLogRecord>> loaded = LoadAccessLogRecords(apath);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  const AccessLogRecord& admit = (*loaded)[0];
  EXPECT_EQ(admit.action, AdmitAction::kAdmit);
  EXPECT_EQ(admit.bound_class, BoundClass::kSmall);
  EXPECT_EQ(admit.client_tag, "smoke-tag");
  EXPECT_EQ(admit.session_id, "a");
  EXPECT_DOUBLE_EQ(admit.static_bound, 100);
  EXPECT_EQ(admit.lease, 100u);
  EXPECT_EQ(admit.fetches, 4u);
  EXPECT_EQ(admit.answers, 2u);
  EXPECT_FALSE(admit.query_id.empty());
  EXPECT_GT(admit.bytes_out, 0u);
  EXPECT_GE(admit.e2e_ms, admit.exec_ms);
  const AccessLogRecord& reject = (*loaded)[1];
  EXPECT_EQ(reject.action, AdmitAction::kReject);
  EXPECT_EQ(reject.reject, RejectReason::kNoStaticBound);
  EXPECT_EQ(reject.bound_class, BoundClass::kHuge);
  EXPECT_EQ(reject.client_tag, "req-7");
  EXPECT_NE(reject.query_id, admit.query_id);

  // Journal: each access-log query_id resolves to a sealed certificate line
  // carrying the same (non-sealed) client_tag sibling.
  std::map<std::string, std::string> journal_tags;
  std::ifstream in(jpath);
  ASSERT_TRUE(in.is_open());
  std::string line;
  while (std::getline(in, line)) {
    Result<obs::JsonValue> parsed = obs::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    journal_tags[parsed->StringOr("query_id", "")] =
        parsed->StringOr("client_tag", "");
  }
  ASSERT_EQ(journal_tags.count(admit.query_id), 1u);
  EXPECT_EQ(journal_tags[admit.query_id], "smoke-tag");
  ASSERT_EQ(journal_tags.count(reject.query_id), 1u);
  EXPECT_EQ(journal_tags[reject.query_id], "req-7");

  // Flight recorder: a qid-stamped serve-phase event per terminal verdict.
  bool saw_admit_event = false;
  bool saw_reject_event = false;
  for (const obs::FlightEvent& e : recorder.events()) {
    if (e.kind != obs::EventKind::kServePhase) continue;
    obs::QueryId qid;
    qid.session = e.qid_session;
    qid.seq = e.qid_seq;
    const std::string rendered = obs::RenderQueryId(qid);
    if (e.label == "admit" && rendered == admit.query_id) {
      saw_admit_event = true;
      EXPECT_GT(e.num_count, 0u);
    }
    if (e.label == "reject" && rendered == reject.query_id) {
      saw_reject_event = true;
    }
  }
  EXPECT_TRUE(saw_admit_event);
  EXPECT_TRUE(saw_reject_event);

  // Tracer: retroactive phase spans in category "serve", stamped with the
  // same query_id (and the client tag when present).
  bool saw_request_span = false;
  bool saw_exec_span = false;
  for (const obs::TraceEvent& e : tracer.events()) {
    if (e.category != "serve") continue;
    bool matches_qid = false;
    bool matches_tag = false;
    for (const auto& arg : e.args) {
      if (arg.first == "query_id" &&
          arg.second == "\"" + admit.query_id + "\"") {
        matches_qid = true;
      }
      if (arg.first == "client_tag" && arg.second == "\"smoke-tag\"") {
        matches_tag = true;
      }
    }
    if (e.name == "serve.request" && matches_qid && matches_tag) {
      saw_request_span = true;
    }
    if (e.name == "serve.exec" && matches_qid) saw_exec_span = true;
  }
  EXPECT_TRUE(saw_request_span);
  EXPECT_TRUE(saw_exec_span);

  RemoveGenerations(apath);
  RemoveGenerations(jpath);
}

// ---------------------------------------------------------------------------
// Trace tags: grammar, echo, and the untagged byte-compatibility contract.

TEST(ServeObsTest, TraceTagValidationAndUntaggedBytes) {
  Shell shell;
  LoadCatalog(&shell);
  Server::Options options;
  options.sla.session_fetch_budget = 120;
  Server server(&shell, options);
  ASSERT_TRUE(server.Start().ok());

  // Invalid tags are protocol errors, before any session state changes.
  EXPECT_FALSE(server.HandleLine("a", "hello bad tag!").ok());
  EXPECT_FALSE(server.HandleLine("a", "hello " + std::string(65, 'x')).ok());
  std::string open = MustLine(&server, "a", "hello");
  EXPECT_EQ(open.find(" tag="), std::string::npos);
  EXPECT_FALSE(server.HandleLine("a", "eval @no/slash p=1 F(p, id) := "
                                      "friend(p, id)")
                   .ok());
  // Untagged responses keep their exact historical shape: no tag echo.
  std::string resp = MustLine(&server, "a", kFriendEval);
  EXPECT_NE(resp.find("admit bound=100 lease=100"), std::string::npos);
  EXPECT_EQ(resp.find(" tag="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-class tallies: the `classes` rendering, shed vs rejected split.

TEST(ServeObsTest, ClassesCommandSplitsShedFromRejected) {
  Shell shell;
  LoadCatalog(&shell);
  Server::Options options;
  options.sla.session_fetch_budget = 120;
  Server server(&shell, options);
  ASSERT_TRUE(server.Start().ok());
  (void)MustLine(&server, "a", "hello");
  (void)MustLine(&server, "a", kFriendEval);  // small, admitted
  (void)MustLine(&server, "a", kSecretEval);  // huge, rejected (contract)
  server.Drain();
  std::string shed = MustLine(&server, "a", kFriendEval);  // small, shed
  EXPECT_NE(shed.find("reject(draining)"), std::string::npos) << shed;

  // Positional, wall-clock-free, byte-for-byte — the exact rendering
  // scripts/serve_report.py recomputes from the access log.
  EXPECT_EQ(MustLine(&server, "a", "classes"),
            "classes: 3 request(s)\n"
            "  small n=2 admitted=1 degraded=0 rejected=0 shed=1 "
            "shed_rate=0.5000\n"
            "  medium n=0 admitted=0 degraded=0 rejected=0 shed=0 "
            "shed_rate=0.0000\n"
            "  large n=0 admitted=0 degraded=0 rejected=0 shed=0 "
            "shed_rate=0.0000\n"
            "  huge n=1 admitted=0 degraded=0 rejected=1 shed=0 "
            "shed_rate=0.0000\n");
}

// ---------------------------------------------------------------------------
// MetricsHttp: the scrape side door.

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpTest, ServesPrometheusTextAndDrainAwareHealth) {
  obs::MetricsRegistry registry;
  registry.GetCounter("serve.shed.small").Increment(3);
  registry.GetHistogram("serve.e2e_ms.small", obs::DefaultLatencyBucketsMs())
      .Observe(1.5);
  std::atomic<bool> draining{false};
  MetricsHttp http(&registry, [&draining] { return draining.load(); },
                   MetricsHttp::Options{});
  ASSERT_TRUE(http.Listen().ok());
  ASSERT_NE(http.port(), 0);

  const std::string metrics = HttpGet(http.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("Connection: close"), std::string::npos);
  EXPECT_NE(metrics.find("# HELP serve_shed_small scalein metric "
                         "serve.shed.small"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE serve_shed_small counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("serve_shed_small 3"), std::string::npos);
  EXPECT_NE(metrics.find("serve_e2e_ms_small_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("serve_e2e_ms_small_count 1"), std::string::npos);

  const std::string healthy = HttpGet(http.port(), "/healthz");
  EXPECT_NE(healthy.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(healthy.find("ok\n"), std::string::npos);
  draining.store(true);
  const std::string drained = HttpGet(http.port(), "/healthz");
  EXPECT_NE(drained.find("HTTP/1.0 503 Service Unavailable"),
            std::string::npos);
  EXPECT_NE(drained.find("draining\n"), std::string::npos);

  const std::string missing = HttpGet(http.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);

  EXPECT_EQ(http.scrapes(), 4u);
  EXPECT_EQ(registry.GetCounter("serve.scrapes").value(), 4u);
  http.Shutdown();
}

// The per-class SLO series the server maintains: one histogram observation
// per terminal request, placed by the shared bucket rule.
TEST(ServeObsTest, PerClassSloHistogramsRecordTerminalRequests) {
  Shell shell;
  LoadCatalog(&shell);
  Server::Options options;
  options.sla.session_fetch_budget = 120;
  Server server(&shell, options);
  ASSERT_TRUE(server.Start().ok());
  (void)MustLine(&server, "a", "hello");
  (void)MustLine(&server, "a", kFriendEval);
  (void)MustLine(&server, "a", kSecretEval);
  obs::MetricsRegistry* metrics = server.shell_metrics();
  EXPECT_EQ(metrics
                ->GetHistogram("serve.e2e_ms.small",
                               obs::DefaultLatencyBucketsMs())
                .count(),
            1u);
  EXPECT_EQ(metrics
                ->GetHistogram("serve.e2e_ms.huge",
                               obs::DefaultLatencyBucketsMs())
                .count(),
            1u);
  EXPECT_EQ(metrics
                ->GetHistogram("serve.queue_wait_ms.small",
                               obs::DefaultLatencyBucketsMs())
                .count(),
            1u);
  // Contract rejections are not sheds: no shed counter for either class.
  EXPECT_EQ(metrics->GetCounter("serve.shed.huge").value(), 0u);
  server.Drain();
  (void)server.HandleLine("a", kFriendEval);  // sheds as draining
  EXPECT_EQ(metrics->GetCounter("serve.shed.small").value(), 1u);
}

}  // namespace
}  // namespace scalein::serve
