// Explorer for the §3 decision problems: QDSI witnesses at different budgets
// on a planted set-cover instance (the Theorem 3.3 hardness shape), plus QSI
// verdicts with generated counterexamples.
//
// Build & run:  ./build/examples/qdsi_explorer

#include <cstdio>

#include "core/qsi.h"
#include "query/parser.h"
#include "query/printer.h"
#include "workload/setcover_gen.h"

using namespace scalein;

int main() {
  SetCoverConfig config;
  config.num_elements = 15;
  config.num_sets = 6;
  config.planted_cover_size = 3;
  config.noise_memberships = 20;
  SetCoverInstance inst = GenerateSetCover(config);
  std::printf("query: %s\n", inst.query.ToString().c_str());
  std::printf("|D| = %zu tuples, %llu elements to cover\n\n",
              inst.db.TotalTuples(),
              static_cast<unsigned long long>(config.num_elements));

  // Sweep the budget M and watch the verdict flip: the minimum witness is
  // |elements| + (minimum set cover).
  TablePrinter table({"M", "verdict", "witness size", "method", "work"});
  for (uint64_t m : {10u, 15u, 17u, 18u, 20u, 30u, 45u}) {
    QdsiDecision d = DecideQdsiCq(inst.query, inst.db, m);
    table.AddRow({std::to_string(m), VerdictName(d.verdict),
                  d.witness.has_value() ? std::to_string(d.witness->size())
                                        : "-",
                  d.method, std::to_string(d.work)});
  }
  std::printf("QDSI sweep:\n");
  table.Print();

  // Greedy vs exact witness size.
  TupleSet greedy = GreedyWitnessCq(inst.query, inst.db);
  MinWitnessResult exact = MinimumWitnessCq(inst.query, inst.db, 1000);
  std::printf("\ngreedy witness: %zu tuples; exact minimum: %zu tuples\n",
              greedy.size(),
              exact.witness.has_value() ? exact.witness->size() : 0);

  // QSI: over ALL databases the data-selecting query is hopeless (§3).
  QsiDecision qsi = DecideQsiCq(inst.query, 100);
  std::printf("\nQSI(Q, M=100): %s (%s)\n", VerdictName(qsi.verdict),
              qsi.method.c_str());
  if (qsi.counterexample.has_value()) {
    std::printf("counterexample has %zu tuples (needs more than M)\n",
                qsi.counterexample->TotalTuples());
  }

  // Boolean queries behave completely differently (Corollary 3.2).
  Result<Cq> boolean = ParseCq("B() :- setrep(s), covers(s, x)");
  SI_CHECK(boolean.ok());
  QdsiDecision bd = DecideQdsiCq(*boolean, inst.db, 2);
  std::printf("\nBoolean variant with M = 2: %s via %s (witness %zu tuples)\n",
              VerdictName(bd.verdict), bd.method.c_str(),
              bd.witness.has_value() ? bd.witness->size() : 0);
  QsiDecision bq = DecideQsiCq(*boolean, 2);
  std::printf("Boolean QSI with M = 2: %s (core-size bound)\n",
              VerdictName(bq.verdict));
  return 0;
}
