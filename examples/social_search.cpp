// The paper's running scenario (Examples 1.1, 4.1, 4.6) end to end on a
// synthetic Facebook-style social graph:
//   Q1 — friends of p in NYC: plain-controllable, scale-independent given p.
//   Q3 — A-rated NYC restaurants visited by p's NYC friends in a given year:
//        underivable with plain statements, derivable with the embedded
//        366-days statement and the one-visit-per-day FD.
//
// Build & run:  ./build/examples/social_search

#include <cstdio>

#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "core/embedded_controllability.h"
#include "query/parser.h"
#include "query/printer.h"
#include "workload/social_gen.h"

using namespace scalein;

int main() {
  SocialConfig config;
  config.num_persons = 5000;
  config.max_friends_per_person = 50;
  config.num_restaurants = 300;
  config.avg_visits_per_person = 8;
  config.dated_visits = true;
  Schema schema = SocialSchema(/*dated_visits=*/true);
  std::printf("generating social graph (%llu persons)...\n",
              static_cast<unsigned long long>(config.num_persons));
  Database db = GenerateSocial(config);
  AccessSchema access = SocialAccessSchema(config);
  SI_CHECK(access.BuildIndexes(&db, schema).ok());
  std::printf("|D| = %zu tuples\naccess schema:\n%s\n", db.TotalTuples(),
              access.ToString().c_str());

  Result<ConformanceReport> conf = CheckConformance(db, schema, access);
  SI_CHECK(conf.ok());
  std::printf("database conforms to access schema: %s\n\n",
              conf->conforms ? "yes" : "NO");

  // ---- Q1 (Example 1.1(a) / 4.1) ----
  Result<FoQuery> q1 = ParseFoQuery(
      "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
      &schema);
  SI_CHECK(q1.ok());
  Result<ControllabilityAnalysis> a1 =
      ControllabilityAnalysis::Analyze(q1->body, schema, access);
  SI_CHECK(a1.ok());
  Variable p = Variable::Named("p");
  std::printf("Q1: %s\n", q1->ToString().c_str());
  std::printf("  p-controlled: %s\n", a1->IsControlledBy({p}) ? "yes" : "no");
  std::printf("%s", a1->Explain({p}).c_str());

  BoundedEvaluator evaluator(&db);
  BoundedEvalStats stats1;
  Result<AnswerSet> r1 =
      evaluator.Evaluate(*q1, *a1, {{p, Value::Int(42)}}, &stats1);
  SI_CHECK(r1.ok());
  std::printf("  Q1(p=42): %zu NYC friends, %llu tuples fetched (bound %.0f)\n\n",
              r1->size(),
              static_cast<unsigned long long>(stats1.base_tuples_fetched),
              *a1->StaticFetchBound({p}));

  // ---- Q3 (Example 4.6) ----
  Result<Cq> q3 = ParseCq(
      "Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &schema);
  SI_CHECK(q3.ok());
  Variable yy = Variable::Named("yy");

  // Without the embedded statements, (p, yy) does not control Q3.
  AccessSchema plain_only;
  plain_only.Add("friend", {"id1"}, config.max_friends_per_person);
  plain_only.AddKey("person", {"id"});
  plain_only.AddKey("restr", {"rid"});
  Result<EmbeddedCqAnalysis> without = EmbeddedCqAnalysis::Analyze(
      *q3, schema, plain_only, {p, yy});
  SI_CHECK(without.ok());
  std::printf("Q3: %s\n", q3->ToString().c_str());
  std::printf("  (p,yy)-scale-independent without embedded statements: %s\n",
              without->IsScaleIndependent() ? "yes" : "no");

  // With (visit, yy[yy,mm,dd], 366) and the FD id,yy,mm,dd -> rid it works.
  Result<EmbeddedCqAnalysis> with =
      EmbeddedCqAnalysis::Analyze(*q3, schema, access, {p, yy});
  SI_CHECK(with.ok());
  std::printf("  (p,yy)-scale-independent with embedded statements:    %s\n",
              with->IsScaleIndependent() ? "yes" : "no");
  std::printf("%s", with->Explain().c_str());

  BoundedEvalStats stats3;
  Result<AnswerSet> r3 = evaluator.EvaluateEmbedded(
      *with,
      {{p, Value::Int(42)},
       {yy, Value::Int(static_cast<int64_t>(config.first_year))}},
      &stats3);
  SI_CHECK(r3.ok());
  std::printf(
      "  Q3(p=42, yy=%llu): %zu restaurants, %llu data units fetched "
      "(bound %.0f)\n",
      static_cast<unsigned long long>(config.first_year), r3->size(),
      static_cast<unsigned long long>(stats3.base_tuples_fetched),
      with->StaticFetchBound());
  for (const Tuple& t : *r3) {
    std::printf("    %s\n", TupleToString(t).c_str());
  }
  return 0;
}
