// Scale independence using views (§6 / Examples 1.1(c) and 6.3): rewrite Q2
// over the materialized views V1 (NYC restaurants) and V2 (visits by NYC
// residents), then answer it touching at most F base tuples (the friend cap)
// regardless of |D|.
//
// Build & run:  ./build/examples/view_rewriting

#include <cstdio>

#include "eval/cq_evaluator.h"
#include "query/parser.h"
#include "views/view_exec.h"
#include "views/vqsi.h"
#include "workload/social_gen.h"

using namespace scalein;

int main() {
  SocialConfig config;
  config.num_persons = 10000;
  config.max_friends_per_person = 50;
  config.num_restaurants = 400;
  config.avg_visits_per_person = 6;
  Schema schema = SocialSchema(false);
  std::printf("generating social graph...\n");
  Database db = GenerateSocial(config);
  AccessSchema access = SocialAccessSchema(config);
  std::printf("|D| = %zu tuples\n\n", db.TotalTuples());

  ViewSet views;
  views.Define("V1(rid, rn, rating) :- restr(rid, rn, \"NYC\", rating)", schema)
      .Define("V2(id, rid) :- visit(id, rid), person(id, pn, \"NYC\")", schema);

  Result<Cq> q2 = ParseCq(
      "Q2(p, rn) :- friend(p, id), visit(id, rid), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &schema);
  SI_CHECK(q2.ok());

  // Search for equivalent rewritings over {V1, V2}.
  RewritingSearchOptions search;
  search.max_view_atoms = 2;
  search.max_base_atoms = 2;
  RewritingSearchResult found = FindRewritings(*q2, views, schema, search);
  std::printf("rewritings found (%llu candidates checked):\n",
              static_cast<unsigned long long>(found.candidates_checked));
  for (const Cq& rw : found.rewritings) {
    std::printf("  %s   [base atoms: %zu]\n", rw.ToString().c_str(),
                BaseAtomCount(rw, views));
  }

  // Theorem 6.1: without fixing p, Q2 is not scale-independent using V
  // (its distinguished variables stay connected to the base friend atom).
  VqsiDecision vqsi = DecideVqsiCq(*q2, views, schema, 10);
  std::printf("\nVQSI (all databases, M = 10): %s\n", VerdictName(vqsi.verdict));

  // Corollary 6.2(2): with p fixed it works — the base part friend(p, id)
  // is p-controlled under the friend cap.
  Variable p = Variable::Named("p");
  Result<ViewScaleIndependenceResult> cor =
      CheckViewScaleIndependence(*q2, views, schema, access, {p});
  SI_CHECK(cor.ok());
  std::printf("p-scale-independent using views under A: %s\n",
              cor->holds ? "yes" : "no");
  SI_CHECK(cor->holds);
  std::printf("witnessing rewriting: %s\n\n",
              cor->rewriting->ToString().c_str());

  // Execute through the materialized views with fetch accounting.
  Result<ViewExecutor> exec = ViewExecutor::Create(db, schema, views, access);
  SI_CHECK(exec.ok());
  std::printf("materialized |V1| = %zu, |V2| = %zu\n",
              exec->extended_db().relation("V1").size(),
              exec->extended_db().relation("V2").size());

  CqEvaluator direct(&db);
  for (int64_t person = 1; person <= 3; ++person) {
    Binding params{{p, Value::Int(person)}};
    ViewExecStats stats;
    Result<AnswerSet> via_views = exec->Evaluate(*cor->rewriting, params, &stats);
    SI_CHECK(via_views.ok());
    AnswerSet reference = direct.Evaluate(*q2, params);
    std::printf(
        "Q2(p=%lld): %zu answers | base fetches %llu (<= friend cap %llu), "
        "view fetches %llu | matches direct: %s\n",
        static_cast<long long>(person), via_views->size(),
        static_cast<unsigned long long>(stats.base_tuples_fetched),
        static_cast<unsigned long long>(config.max_friends_per_person),
        static_cast<unsigned long long>(stats.view_tuples_fetched),
        *via_views == reference ? "yes" : "NO");
  }
  return 0;
}
