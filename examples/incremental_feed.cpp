// Incremental scale independence (§5 / Example 1.1(b)): maintain
//   Q2(p, rn) = A-rated NYC restaurants visited by p's NYC friends
// under a stream of visit insertions, accessing a bounded number of base
// tuples per inserted tuple instead of recomputing from scratch.
//
// Build & run:  ./build/examples/incremental_feed

#include <chrono>
#include <cstdio>

#include "eval/cq_evaluator.h"
#include "incremental/maintainer.h"
#include "query/parser.h"
#include "workload/update_gen.h"

using namespace scalein;

int main() {
  SocialConfig config;
  config.num_persons = 20000;
  config.max_friends_per_person = 50;
  config.num_restaurants = 500;
  config.avg_visits_per_person = 6;
  Schema schema = SocialSchema(false);
  std::printf("generating social graph...\n");
  Database db = GenerateSocial(config);
  AccessSchema access = SocialAccessSchema(config);
  access.Add("visit", {"id"}, 4 * config.avg_visits_per_person + 64);
  SI_CHECK(access.BuildIndexes(&db, schema).ok());
  std::printf("|D| = %zu tuples\n", db.TotalTuples());

  Result<Cq> q2 = ParseCq(
      "Q2(p, rn) :- friend(p, id), visit(id, rid), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &schema);
  SI_CHECK(q2.ok());
  Variable p = Variable::Named("p");

  Result<IncrementalMaintainer> maintainer =
      IncrementalMaintainer::Create(*q2, schema, access, {p});
  SI_CHECK(maintainer.ok());
  std::printf("visit insertions boundedly maintainable: %s\n",
              maintainer->SupportsInsertions("visit") ? "yes" : "no");
  std::printf("static fetch bound per inserted visit tuple: %.0f\n",
              maintainer->FetchBoundPerInsertedTuple("visit"));

  Binding params{{p, Value::Int(7)}};
  Result<AnswerSet> answers = maintainer->InitialAnswers(&db, params);
  SI_CHECK(answers.ok());
  std::printf("initial |Q2(7, D)| = %zu (precomputed once, offline)\n\n",
              answers->size());

  Rng rng(2024);
  std::printf("%-6s  %-8s  %-14s  %-12s  %-10s\n", "batch", "|dD|",
              "base fetches", "answers", "ms");
  for (int batch = 0; batch < 8; ++batch) {
    Update u = VisitInsertions(db, config, 50, &rng);
    BoundedEvalStats stats;
    auto start = std::chrono::steady_clock::now();
    Status s = maintainer->Maintain(&db, u, params, &*answers, &stats);
    auto elapsed = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    SI_CHECK_MSG(s.ok(), s.ToString().c_str());
    std::printf("%-6d  %-8zu  %-14llu  %-12zu  %-10.3f\n", batch,
                u.TotalTuples(),
                static_cast<unsigned long long>(stats.base_tuples_fetched),
                answers->size(), elapsed);
  }

  // Sanity: the maintained answer equals recomputation.
  CqEvaluator reference(&db);
  AnswerSet recomputed = reference.EvaluateFull(*q2, params);
  std::printf("\nmaintained == recomputed: %s\n",
              *answers == recomputed ? "yes" : "NO");
  return 0;
}
