// Interactive shell over the scalein library: load a catalog, declare access
// statements, load CSV data, then analyze and run queries with bounded data
// access. Reads commands from stdin (pipe a script for batch use); the
// command interpreter itself lives in src/io/shell.h.
//
//   ./build/examples/scalein_shell <<'EOF'
//   schema relation person(id, name, city)
//   schema relation friend(id1, id2)
//   access access friend(id1) N=50
//   access key person(id)
//   row person 1,"ada","NYC"
//   row person 2,"bob","NYC"
//   row friend 1,2
//   analyze Q(p, name) := exists id. friend(p, id) and person(id, name, "NYC")
//   eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, "NYC")
//   qdsi 1 Q(x) :- friend(x, y)
//   EOF

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "io/shell.h"
#include "obs/dump.h"
#include "util/strings.h"

namespace {

// SIGTERM/SIGINT: flush the post-mortem dump before dying. WritePostMortem
// only touches the pre-armed leaked state (no allocation, no locks held by
// this thread), so the handler is as close to async-signal-safe as a JSON
// dump can be; _exit skips destructors that would re-write the dump.
extern "C" void HandleTermSignal(int /*signum*/) {
  (void)scalein::obs::WritePostMortem("signal");
  std::_Exit(1);
}

}  // namespace

int main() {
  std::signal(SIGTERM, HandleTermSignal);
  std::signal(SIGINT, HandleTermSignal);
  scalein::Shell shell;
  std::string line;
  int rc = 0;
  std::printf("scalein shell — 'help' for commands\n");
  while (std::getline(std::cin, line)) {
    if (scalein::StripWhitespace(line) == "quit") break;
    scalein::Result<std::string> out = shell.Execute(line);
    if (out.ok()) {
      std::fputs(out->c_str(), stdout);
    } else {
      std::printf("error: %s\n", out.status().ToString().c_str());
      // Integrity failures (a `certify` that found tampered certificates)
      // must fail the batch run; ordinary command errors keep the shell —
      // and its exit code — usable for scripted negative tests.
      if (out.status().code() == scalein::StatusCode::kDataLoss) rc = 1;
    }
  }
  return rc;
}
