// Interactive shell over the scalein library: load a catalog, declare access
// statements, load CSV data, then analyze and run queries with bounded data
// access. Reads commands from stdin (pipe a script for batch use); the
// command interpreter itself lives in src/io/shell.h.
//
//   ./build/examples/scalein_shell <<'EOF'
//   schema relation person(id, name, city)
//   schema relation friend(id1, id2)
//   access access friend(id1) N=50
//   access key person(id)
//   row person 1,"ada","NYC"
//   row person 2,"bob","NYC"
//   row friend 1,2
//   analyze Q(p, name) := exists id. friend(p, id) and person(id, name, "NYC")
//   eval p=1 Q(p, name) := exists id. friend(p, id) and person(id, name, "NYC")
//   qdsi 1 Q(x) :- friend(x, y)
//   EOF

#include <cstdio>
#include <iostream>
#include <string>

#include "io/shell.h"
#include "util/strings.h"

int main() {
  scalein::Shell shell;
  std::string line;
  std::printf("scalein shell — 'help' for commands\n");
  while (std::getline(std::cin, line)) {
    if (scalein::StripWhitespace(line) == "quit") break;
    scalein::Result<std::string> out = shell.Execute(line);
    if (out.ok()) {
      std::fputs(out->c_str(), stdout);
    } else {
      std::printf("error: %s\n", out.status().ToString().c_str());
    }
  }
  return 0;
}
