// Multi-session query server over the scalein library: loads a catalog
// script, then serves concurrent client sessions with bound-based admission
// control (src/serve). Every arriving query's static Theorem 4.2 bound is
// compared to the session's SLA fetch lease up front and the server
// deterministically admits, queues, degrades, or rejects it — overload sheds
// by *proof*, not by falling over.
//
// TCP mode (default):
//   SCALEIN_SERVE_PORT=7474 ./build/examples/scalein_served catalog.txt
//   — listens on 127.0.0.1:$SCALEIN_SERVE_PORT (0/unset: ephemeral, printed
//   on stdout). Clients send newline-terminated protocol lines (hello /
//   eval ... / budget / bye, see src/serve/server.h) and receive
//   length-prefixed frames (src/serve/message.h). SIGTERM/SIGINT drains
//   gracefully: in-flight queries are preempted via their governor
//   cancellation tokens, queued work sheds as draining.
//
// Scripted mode (CI acceptance / deterministic replay):
//   ./build/examples/scalein_served --script catalog.txt < arrivals.txt
//   — each stdin line is "<session-id> <protocol-line>"; responses print to
//   stdout. Single-threaded, so for a fixed arrival script the admission
//   transcript is byte-identical at any SCALEIN_THREADS. The `#busy <n>`
//   directive models occupied run slots to exercise queue/queue-timeout.
//
// SLA knobs (all env): SCALEIN_SLA_SESSION_BUDGET, SCALEIN_SLA_SERVER_BUDGET,
// SCALEIN_SLA_QUERY_DEADLINE_MS, SCALEIN_SLA_ROW_CAP, SCALEIN_SLA_DEGRADE,
// SCALEIN_SLA_DEGRADE_FLOOR, SCALEIN_SLA_QUEUE_CAP,
// SCALEIN_SLA_QUEUE_CLASS_CAP, SCALEIN_SLA_QUEUE_TIMEOUT_MS,
// SCALEIN_SLA_MAX_RUNNING. See docs/usage.md.
//
// Observability plane: SCALEIN_ACCESS_LOG_PATH arms the structured JSONL
// access log (rotated at SCALEIN_ACCESS_LOG_MAX_BYTES;
// scripts/serve_report.py reads it offline); SCALEIN_METRICS_PORT (TCP mode
// only) opens a loopback HTTP scrape endpoint serving GET /metrics
// (Prometheus text) and GET /healthz (drain-aware). See
// docs/observability.md.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include <memory>

#include "io/shell.h"
#include "serve/metrics_http.h"
#include "serve/port.h"
#include "serve/server.h"
#include "util/strings.h"

namespace {

std::atomic<bool> g_stop{false};

extern "C" void HandleTermSignal(int /*signum*/) {
  g_stop.store(true, std::memory_order_relaxed);
}

int Fail(const char* what, const scalein::Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool scripted = false;
  const char* catalog_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--script") == 0) {
      scripted = true;
    } else {
      catalog_path = argv[i];
    }
  }

  scalein::Shell shell;
  if (catalog_path != nullptr) {
    std::ifstream in(catalog_path);
    if (!in) {
      std::fprintf(stderr, "cannot open catalog '%s'\n", catalog_path);
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (scalein::StripWhitespace(line).empty()) continue;
      scalein::Result<std::string> out = shell.Execute(line);
      if (!out.ok()) return Fail("catalog", out.status());
    }
  }

  scalein::serve::Server::Options options;
  options.sla = scalein::serve::SlaConfig::FromEnv();
  options.scripted = scripted;
  scalein::serve::Server server(&shell, options);
  if (scalein::Status s = server.Start(); !s.ok()) return Fail("start", s);
  std::printf("%s\n", options.sla.ToString().c_str());

  if (scripted) {
    // Deterministic single-threaded replay: "<sid> <protocol-line>" per
    // stdin line; the full response transcript goes to stdout.
    std::string line;
    int rc = 0;
    while (std::getline(std::cin, line)) {
      std::string_view stripped = scalein::StripWhitespace(line);
      if (stripped.empty()) continue;
      if (stripped == "quit") break;
      const size_t sp = stripped.find(' ');
      if (sp == std::string_view::npos) {
        std::fprintf(stderr, "script: expected '<sid> <line>', got '%s'\n",
                     std::string(stripped).c_str());
        return 1;
      }
      const std::string sid(stripped.substr(0, sp));
      scalein::Result<std::string> out =
          server.HandleLine(sid, stripped.substr(sp + 1));
      if (out.ok()) {
        std::fputs(out->c_str(), stdout);
      } else {
        std::printf("error: %s\n", out.status().ToString().c_str());
        if (out.status().code() == scalein::StatusCode::kDataLoss) rc = 1;
      }
    }
    server.Drain();
    return rc;
  }

  std::signal(SIGTERM, HandleTermSignal);
  std::signal(SIGINT, HandleTermSignal);
  scalein::serve::Port::Options port_options;
  if (const char* p = std::getenv("SCALEIN_SERVE_PORT");
      p != nullptr && p[0] != '\0') {
    port_options.port = static_cast<uint16_t>(std::atoi(p));
  }
  scalein::serve::Port port(&server, port_options);
  if (scalein::Status s = port.Listen(); !s.ok()) return Fail("listen", s);
  std::printf("listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(port.port()));
  // Scrape side door (TCP mode only, so scripted transcripts stay pure):
  // SCALEIN_METRICS_PORT arms GET /metrics + /healthz on loopback.
  std::unique_ptr<scalein::serve::MetricsHttp> metrics_http;
  if (const char* mp = std::getenv("SCALEIN_METRICS_PORT");
      mp != nullptr && mp[0] != '\0') {
    scalein::serve::MetricsHttp::Options http_options;
    http_options.port = static_cast<uint16_t>(std::atoi(mp));
    metrics_http = std::make_unique<scalein::serve::MetricsHttp>(
        server.shell_metrics(), [&server] { return server.draining(); },
        http_options);
    if (scalein::Status s = metrics_http->Listen(); !s.ok()) {
      return Fail("metrics listen", s);
    }
    std::printf("metrics on 127.0.0.1:%u\n",
                static_cast<unsigned>(metrics_http->port()));
  }
  std::fflush(stdout);
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("draining\n");
  server.Drain();
  // Keep /healthz answering 503 "draining" while connections wind down;
  // shut the scrape door last.
  port.Shutdown();
  if (metrics_http != nullptr) metrics_http->Shutdown();
  return 0;
}
