// A second domain: order analytics. Shows the full adoption path on a
// schema that is not the paper's social graph — declare constraints you
// actually have (keys, per-customer order caps, one-shipment-per-order FD),
// let the advisor propose the missing indexes, then run parameterized
// analytics with bounded data access.
//
// Build & run:  ./build/examples/orders_analytics

#include <cstdio>

#include "core/advisor.h"
#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "core/embedded_controllability.h"
#include "query/parser.h"
#include "util/rng.h"

using namespace scalein;

namespace {

Database MakeOrders(const Schema& schema, uint64_t customers,
                    uint64_t max_orders_per_customer) {
  Database db(schema);
  Rng rng(2026);
  static const char* kRegions[] = {"EU", "US", "APAC"};
  static const char* kStatus[] = {"open", "shipped", "returned"};
  for (uint64_t c = 0; c < customers; ++c) {
    db.Insert("customer",
              Tuple{Value::Int(static_cast<int64_t>(c)),
                    Value::Str("c" + std::to_string(c)),
                    Value::Str(kRegions[rng.Uniform(3)])});
  }
  int64_t order_id = 0;
  for (uint64_t c = 0; c < customers; ++c) {
    uint64_t orders = rng.Uniform(max_orders_per_customer + 1);
    for (uint64_t o = 0; o < orders; ++o, ++order_id) {
      db.Insert("orders",
                Tuple{Value::Int(order_id), Value::Int(static_cast<int64_t>(c)),
                      Value::Str(kStatus[rng.Uniform(3)])});
      // One shipment per order: the FD oid → carrier holds by construction.
      db.Insert("shipment",
                Tuple{Value::Int(order_id),
                      Value::Str(rng.Bernoulli(0.5) ? "fastship" : "slowship")});
    }
  }
  return db;
}

}  // namespace

int main() {
  Schema schema;
  schema.Relation("customer", {"cid", "name", "region"});
  schema.Relation("orders", {"oid", "cid", "status"});
  schema.Relation("shipment", {"oid", "carrier"});

  const uint64_t kMaxOrders = 40;
  Database db = MakeOrders(schema, 20000, kMaxOrders);
  std::printf("orders database: |D| = %zu tuples\n\n", db.TotalTuples());

  // The constraints we can honestly declare about this data.
  AccessSchema access;
  access.AddKey("customer", {"cid"});
  access.Add("orders", {"cid"}, kMaxOrders);   // per-customer order cap
  access.AddKey("orders", {"oid"});
  access.AddFd("shipment", {"oid"}, {"carrier"});  // one shipment per order
  access.Add("shipment", {"oid"}, 1);
  SI_CHECK(access.BuildIndexes(&db, schema).ok());
  Result<ConformanceReport> conf = CheckConformance(db, schema, access);
  SI_CHECK(conf.ok() && conf->conforms);

  // Analytics query: returned orders of a given customer and who shipped
  // them. Controlled by {c}: cap × key lookups.
  Result<FoQuery> q = ParseFoQuery(
      "Q(c, oid, carrier) := orders(oid, c, \"returned\") and "
      "shipment(oid, carrier)",
      &schema);
  SI_CHECK(q.ok());
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q->body, schema, access);
  SI_CHECK(analysis.ok());
  Variable c = Variable::Named("c");
  std::printf("returned-orders query controlled by {c}: %s (fetch bound %.0f)\n",
              analysis->IsControlledBy({c}) ? "yes" : "no",
              *analysis->StaticFetchBound({c}));

  BoundedEvaluator evaluator(&db);
  BoundedEvalStats stats;
  Result<AnswerSet> answers =
      evaluator.Evaluate(*q, *analysis, {{c, Value::Int(7)}}, &stats);
  SI_CHECK(answers.ok());
  std::printf("Q(c=7): %zu rows, %llu base tuples fetched\n\n", answers->size(),
              static_cast<unsigned long long>(stats.base_tuples_fetched));

  // A query our declared schema does NOT cover: orders by region. Ask the
  // advisor what to build.
  Result<FoQuery> regional = ParseFoQuery(
      "R(region, oid) := exists c, n, st. customer(c, n, region) and "
      "orders(oid, c, st)",
      &schema);
  SI_CHECK(regional.ok());
  Result<ControllabilityAnalysis> before =
      ControllabilityAnalysis::Analyze(regional->body, schema, access);
  SI_CHECK(before.ok());
  Variable region = Variable::Named("region");
  std::printf("regional query controlled by {region} under declared schema: %s\n",
              before->IsControlledBy({region}) ? "yes" : "no");

  AdvisorOptions options;
  options.default_bound = 10000;
  options.max_statements = 3;
  Result<AdvisorResult> advice = AdviseAccessSchema(
      {{*regional, {region}}}, schema, &db, options);
  SI_CHECK(advice.ok());
  if (advice->found) {
    std::printf("advisor proposes:\n%s", advice->design.ToString().c_str());
    std::printf("(total fetch bound %.0f — the region column is low-"
                "selectivity, so the honest N is large; scale independence "
                "holds but with a big constant, which is the advisor telling "
                "you this query wants a view, not an index)\n",
                advice->total_fetch_bound);
  } else {
    std::printf("advisor: no sufficient design within the configured bounds — "
                "a materialized view (§6) is the right tool for this query\n");
  }
  return 0;
}
