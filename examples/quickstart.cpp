// Quickstart: declare a schema and an access schema, check that a query is
// controllable (§4), and evaluate it with bounded data access (Theorem 4.2).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "query/parser.h"

using namespace scalein;  // examples only; library code never does this

int main() {
  // 1. A relational schema: people and who-follows-whom.
  Schema schema;
  schema.Relation("person", {"id", "name", "city"});
  schema.Relation("follows", {"src", "dst"});

  // 2. A small database instance.
  Database db(schema);
  db.Insert("person", Tuple{Value::Int(1), Value::Str("ada"), Value::Str("NYC")});
  db.Insert("person", Tuple{Value::Int(2), Value::Str("bob"), Value::Str("LA")});
  db.Insert("person", Tuple{Value::Int(3), Value::Str("cyd"), Value::Str("NYC")});
  db.Insert("follows", Tuple{Value::Int(1), Value::Int(2)});
  db.Insert("follows", Tuple{Value::Int(1), Value::Int(3)});
  db.Insert("follows", Tuple{Value::Int(2), Value::Int(3)});

  // 3. The access schema: what can be fetched efficiently, and how much.
  //    (follows, {src}, 5000, 1): given a src, at most 5000 followees, via an
  //    index. (person, {id}, 1, 1): id is a key.
  AccessSchema access;
  access.Add("follows", {"src"}, 5000);
  access.AddKey("person", {"id"});
  if (Status s = access.BuildIndexes(&db, schema); !s.ok()) {
    std::printf("index build failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 4. A query: NYC people that `p` follows — the shape of the paper's Q1.
  Result<FoQuery> q = ParseFoQuery(
      "Q(p, name) := exists d. follows(p, d) and person(d, name, \"NYC\")",
      &schema);
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.status().ToString().c_str());
    return 1;
  }

  // 5. Controllability analysis: is the query p-controlled under the access
  //    schema? If yes, fixing p makes it scale-independent.
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q->body, schema, access);
  if (!analysis.ok()) {
    std::printf("analysis error: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  Variable p = Variable::Named("p");
  std::printf("controlled by {p}: %s\n",
              analysis->IsControlledBy({p}) ? "yes" : "no");
  std::printf("derivation:\n%s", analysis->Explain({p}).c_str());

  // 6. Bounded evaluation for p = 1: answers plus exact fetch accounting.
  BoundedEvaluator evaluator(&db);
  BoundedEvalStats stats;
  Result<AnswerSet> answers =
      evaluator.Evaluate(*q, *analysis, {{p, Value::Int(1)}}, &stats);
  if (!answers.ok()) {
    std::printf("evaluation error: %s\n", answers.status().ToString().c_str());
    return 1;
  }
  std::printf("Q(1) = %s\n", AnswerSetToString(*answers).c_str());
  std::printf("base tuples fetched: %llu (static bound %.0f)\n",
              static_cast<unsigned long long>(stats.base_tuples_fetched),
              *analysis->StaticFetchBound({p}));
  return 0;
}
