#ifndef SCALEIN_OBS_JSON_H_
#define SCALEIN_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace scalein::obs {

/// Escapes `s` for inclusion inside a JSON string literal: `"` and `\` are
/// backslash-escaped, control characters (< 0x20) become `\n`/`\t`/`\r`/
/// `\b`/`\f` or the generic `\u00XX` form. The output is valid regardless of
/// the input bytes, which matters because metric keys and span names can
/// carry user-supplied relation names.
std::string JsonEscape(std::string_view s);

/// Renders a double as a JSON number (no NaN/Inf — those are clamped to
/// `null`-safe 0, since JSON has no spelling for them).
std::string JsonNumber(double value);

/// A parsed JSON document node. Minimal by design: the library only reads
/// back its *own* dumps (journal/flight-recorder JSON, bench sidecars), so
/// numbers are doubles (every emitter goes through JsonNumber's %.6g, which
/// round-trips), strings are fully unescaped, and object key order is not
/// preserved.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Member access on objects; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Convenience getters with defaults, for tolerant dump readers.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;
};

/// Parses one JSON document (object/array/scalar; trailing whitespace only).
/// Rejects malformed input with InvalidArgument. `\uXXXX` escapes outside
/// ASCII are decoded as UTF-8.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace scalein::obs

#endif  // SCALEIN_OBS_JSON_H_
