#ifndef SCALEIN_OBS_JSON_H_
#define SCALEIN_OBS_JSON_H_

#include <string>
#include <string_view>

namespace scalein::obs {

/// Escapes `s` for inclusion inside a JSON string literal: `"` and `\` are
/// backslash-escaped, control characters (< 0x20) become `\n`/`\t`/`\r`/
/// `\b`/`\f` or the generic `\u00XX` form. The output is valid regardless of
/// the input bytes, which matters because metric keys and span names can
/// carry user-supplied relation names.
std::string JsonEscape(std::string_view s);

/// Renders a double as a JSON number (no NaN/Inf — those are clamped to
/// `null`-safe 0, since JSON has no spelling for them).
std::string JsonNumber(double value);

}  // namespace scalein::obs

#endif  // SCALEIN_OBS_JSON_H_
