#ifndef SCALEIN_OBS_DUMP_H_
#define SCALEIN_OBS_DUMP_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace scalein::obs {

/// Renders the post-mortem dump document: one JSON object joining the flight
/// recorder's event ring, the query journal's certificates, and a metrics
/// snapshot, prefixed by why the dump was taken. Every section is optional
/// (nullptr omits it); field order is fixed, so with a fixed recorder clock
/// the bytes are deterministic.
///
///   {"reason":"...","recorder":{...},"journal":{...},"metrics":{...}}
std::string RenderDump(std::string_view reason, const FlightRecorder* recorder,
                       const QueryJournal* journal,
                       const MetricsRegistry* metrics);

/// Creates any missing parent directories of `path` (the file itself is not
/// touched). A clear Status — not a silent drop — when creation fails. Used
/// for operator-configured sinks (SCALEIN_DUMP_PATH, SCALEIN_JOURNAL_PATH,
/// explicit `dump <path>`); the low-level writers below deliberately do NOT
/// auto-create, so a typo'd path still fails loudly where tests expect it.
Status EnsureParentDirs(const std::string& path);

/// Writes `text` to `path`, truncating any existing file.
Status WriteTextFile(const std::string& path, std::string_view text);

/// Appends `line` plus a trailing newline to `path` (creating it if absent) —
/// the writer behind periodic metrics dumps, which are JSON-lines streams.
Status AppendTextLine(const std::string& path, std::string_view line);

/// Parses the `SCALEIN_METRICS_DUMP=<path>:<secs>` knob. `<secs>` must be a
/// positive number; `<path>` is everything before the *last* ':' so paths
/// containing colons survive.
Status ParseMetricsDumpSpec(std::string_view spec, std::string* path,
                            double* interval_seconds);

/// Periodic metrics snapshotter for long-running shells: a background thread
/// that appends one `MetricsRegistry::ToJson` line to a file immediately on
/// Start (so behavior is testable without sleeping) and then every
/// `interval_seconds`. Each snapshot also lands a kMetricsDump event in the
/// global flight recorder, making dump cadence visible post-mortem.
class MetricsDumper {
 public:
  MetricsDumper() = default;
  ~MetricsDumper();
  MetricsDumper(const MetricsDumper&) = delete;
  MetricsDumper& operator=(const MetricsDumper&) = delete;

  /// Starts the writer thread; `registry` nullptr means the global registry.
  /// Fails if already running, the interval is not positive, or the first
  /// snapshot cannot be written.
  Status Start(std::string path, double interval_seconds,
               const MetricsRegistry* registry = nullptr);

  /// Stops and joins the writer thread; idempotent.
  void Stop();

  bool running() const;
  /// Snapshots successfully appended since Start.
  uint64_t snapshots() const;

 private:
  void Run();
  Status WriteSnapshot();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::string path_;
  double interval_seconds_ = 0;
  const MetricsRegistry* registry_ = nullptr;
  uint64_t snapshots_ = 0;
};

/// Arms process-wide post-mortem dumping: on `WritePostMortem(reason)` the
/// three sections are rendered to `path`. The shell arms this from
/// SCALEIN_DUMP_PATH and calls it on governor trips, failpoint-induced
/// errors, and exit; the shell binary's SIGTERM handler calls it too.
/// Any source may be nullptr. Re-arming replaces the previous arming.
void ArmPostMortem(std::string path, const FlightRecorder* recorder,
                   const QueryJournal* journal, const MetricsRegistry* metrics);

/// Disarms; subsequent WritePostMortem calls are no-ops.
void DisarmPostMortem();

bool PostMortemArmed();

/// Writes the armed dump file with the given reason. Returns true iff a file
/// was written (armed and the write succeeded). Later calls overwrite — the
/// file always holds the most recent (closest-to-death) snapshot.
bool WritePostMortem(std::string_view reason);

/// Status-returning variant: FailedPrecondition when not armed, otherwise
/// the write's own status (missing parent directories are created first).
/// Callers who can surface text — the shell — report this instead of
/// silently dropping the dump.
Status WritePostMortemStatus(std::string_view reason);

}  // namespace scalein::obs

#endif  // SCALEIN_OBS_DUMP_H_
