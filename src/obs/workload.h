#ifndef SCALEIN_OBS_WORKLOAD_H_
#define SCALEIN_OBS_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"

namespace scalein::obs {

/// Per-query-fingerprint workload telemetry: everything the view advisor
/// (ROADMAP item 5) and bound-based admission control (item 1) need to know
/// about a recurring query class — how often it runs, how its static
/// Theorem 4.2 bound compares to what it actually fetched, how often it
/// tripped the governor or turned out non-controllable.
struct WorkloadFingerprintStats {
  std::string fingerprint;
  std::string sample_query;    ///< first query text seen for this class
  std::string last_query_id;   ///< correlation id of the latest observation

  uint64_t count = 0;          ///< observations (including non-controllable)
  uint64_t within = 0;         ///< verdict tallies …
  uint64_t exceeded = 0;
  uint64_t tripped = 0;
  uint64_t no_bound = 0;
  uint64_t noncontrollable = 0;  ///< evaluations rejected by Thm 4.2 analysis

  uint64_t total_fetches = 0;
  uint64_t min_fetches = 0;
  uint64_t max_fetches = 0;

  /// Bound accuracy: Σ actual/bound over bounded (bound > 0) observations.
  /// A mean near 1 means the static bound is tight; near 0 means huge slack
  /// (an FD-aware bound would admit this class under a smaller SLA budget).
  double accuracy_sum = 0;
  uint64_t accuracy_count = 0;

  /// Bound slack: Σ bound/max(actual,1) over the same observations.
  double slack_sum = 0;

  /// Histogram counts per DefaultLatencyBucketsMs() edge + overflow.
  std::vector<uint64_t> latency_buckets;
  /// Histogram counts per FetchBucketEdges() edge + overflow.
  std::vector<uint64_t> fetch_buckets;
  double latency_sum_ms = 0;
  uint64_t latency_count = 0;

  /// Mean actual/bound; negative when no bounded observation exists.
  double MeanAccuracy() const {
    return accuracy_count > 0
               ? accuracy_sum / static_cast<double>(accuracy_count)
               : -1.0;
  }
  /// Mean bound/actual ("how many times over-provisioned"); negative when
  /// no bounded observation exists.
  double MeanSlack() const {
    return accuracy_count > 0 ? slack_sum / static_cast<double>(accuracy_count)
                              : -1.0;
  }
};

/// Bucket edges for the per-fingerprint fetch-count histogram.
const std::vector<double>& FetchBucketEdges();

/// Aggregates sealed certificates (live evals and journal replays alike)
/// into per-fingerprint statistics. Thread-safe; deterministic given the
/// same observation sequence — `RenderTop` deliberately excludes wall-clock
/// numbers so its bytes are identical across thread counts and reruns.
class WorkloadAggregator {
 public:
  WorkloadAggregator() = default;
  WorkloadAggregator(const WorkloadAggregator&) = delete;
  WorkloadAggregator& operator=(const WorkloadAggregator&) = delete;

  /// Folds one evaluation in. `latency_ms < 0` skips the latency histogram
  /// (journal entries written before latency tracking). `noncontrollable`
  /// marks an evaluation the Thm 4.2 analysis rejected outright.
  void Observe(const AccessCertificate& cert, double latency_ms,
               bool noncontrollable);

  size_t fingerprints() const;
  uint64_t observations() const;
  uint64_t noncontrollable_total() const;

  /// Top `k` classes by (count desc, fingerprint asc).
  std::vector<WorkloadFingerprintStats> Top(size_t k) const;
  /// Looks one class up; false when the fingerprint was never observed.
  bool Find(const std::string& fingerprint,
            WorkloadFingerprintStats* out) const;

  /// The `workload [top K]` shell rendering: a summary header plus one line
  /// per class. scripts/workload_report.py emits the identical lines, so
  /// online and offline views are byte-comparable.
  std::string RenderTop(size_t k) const;
  /// The `workload fingerprint <fp>` detail rendering (adds latency, which
  /// is why it is *not* part of the deterministic surface).
  std::string RenderFingerprint(const std::string& fingerprint) const;

  /// Nearest-rank percentile of bound-slack percent (100*bound/max(actual,1))
  /// across every bounded observation; 0 when none. `p` in (0, 100].
  int64_t SlackPercentilePercent(double p) const;

  /// Publishes workload.fingerprints, workload.observations,
  /// workload.noncontrollable_total, and workload.bound_slack_p50/p99
  /// gauges — visible in `stats prom` for bench sidecars.
  void ExportMetrics(MetricsRegistry* registry) const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, WorkloadFingerprintStats> by_fingerprint_;
  std::vector<double> slack_percents_;  ///< global, in observation order
  uint64_t observations_ = 0;
  uint64_t noncontrollable_ = 0;
};

}  // namespace scalein::obs

#endif  // SCALEIN_OBS_WORKLOAD_H_
