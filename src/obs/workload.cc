#include "obs/workload.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace scalein::obs {
namespace {

/// Bumps the bucket covering `value`, kept as plain vectors so snapshots
/// need no atomics. Placement delegates to obs::HistogramBucketIndex — the
/// one rule shared with obs::Histogram, so the aggregator's buckets and the
/// metrics registry's can never drift apart.
void ObserveBucket(std::vector<uint64_t>* buckets,
                   const std::vector<double>& edges, double value) {
  if (buckets->empty()) buckets->assign(edges.size() + 1, 0);
  ++(*buckets)[HistogramBucketIndex(edges, value)];
}

/// The canonical per-class line. scripts/workload_report.py emits byte-for-
/// byte identical lines from the journal, so the online `workload top` view
/// and the offline report can be diffed directly; keep the two in sync.
std::string FormatFingerprintLine(const WorkloadFingerprintStats& s) {
  std::string accuracy = s.accuracy_count > 0
                             ? StrFormat("%.4f", s.MeanAccuracy())
                             : std::string("-");
  return StrFormat(
      "  %s n=%llu within=%llu exceeded=%llu tripped=%llu nobound=%llu "
      "nonctrl=%llu fetches=%llu accuracy=%s\n",
      s.fingerprint.c_str(), static_cast<unsigned long long>(s.count),
      static_cast<unsigned long long>(s.within),
      static_cast<unsigned long long>(s.exceeded),
      static_cast<unsigned long long>(s.tripped),
      static_cast<unsigned long long>(s.no_bound),
      static_cast<unsigned long long>(s.noncontrollable),
      static_cast<unsigned long long>(s.total_fetches), accuracy.c_str());
}

std::string RenderBuckets(const std::vector<uint64_t>& buckets,
                          const std::vector<double>& edges) {
  std::string out;
  if (buckets.empty()) return out;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (!out.empty()) out += " ";
    if (i < edges.size()) {
      out += StrFormat("le_%g=%llu", edges[i],
                       static_cast<unsigned long long>(buckets[i]));
    } else {
      out += StrFormat("inf=%llu", static_cast<unsigned long long>(buckets[i]));
    }
  }
  return out;
}

}  // namespace

const std::vector<double>& FetchBucketEdges() {
  static const std::vector<double>* edges = new std::vector<double>{
      1, 10, 100, 1000, 10000, 100000, 1000000};
  return *edges;
}

void WorkloadAggregator::Observe(const AccessCertificate& cert,
                                 double latency_ms, bool noncontrollable) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkloadFingerprintStats& s = by_fingerprint_[cert.query_fingerprint];
  if (s.count == 0) {
    s.fingerprint = cert.query_fingerprint;
    s.sample_query = cert.query_text;
    s.min_fetches = cert.actual_fetches;
  }
  if (!cert.query_id.empty()) s.last_query_id = cert.query_id;
  ++s.count;
  ++observations_;
  switch (cert.verdict) {
    case CertVerdict::kWithinBound:
      ++s.within;
      break;
    case CertVerdict::kExceeded:
      ++s.exceeded;
      break;
    case CertVerdict::kTripped:
      ++s.tripped;
      break;
    case CertVerdict::kNoStaticBound:
      ++s.no_bound;
      break;
  }
  if (noncontrollable) {
    ++s.noncontrollable;
    ++noncontrollable_;
  }
  s.total_fetches += cert.actual_fetches;
  s.min_fetches = std::min(s.min_fetches, cert.actual_fetches);
  s.max_fetches = std::max(s.max_fetches, cert.actual_fetches);
  ObserveBucket(&s.fetch_buckets, FetchBucketEdges(),
                static_cast<double>(cert.actual_fetches));
  if (latency_ms >= 0) {
    static const std::vector<double>* latency_edges =
        new std::vector<double>(DefaultLatencyBucketsMs());
    ObserveBucket(&s.latency_buckets, *latency_edges, latency_ms);
    s.latency_sum_ms += latency_ms;
    ++s.latency_count;
  }
  // Accuracy/slack only make sense against a positive finite static bound
  // (tripped runs have partial accounting — their ratio would slander the
  // bound, so they are excluded).
  if (cert.static_bound > 0 && !cert.tripped) {
    const double actual =
        static_cast<double>(cert.actual_fetches > 0 ? cert.actual_fetches : 1);
    s.accuracy_sum +=
        static_cast<double>(cert.actual_fetches) / cert.static_bound;
    s.slack_sum += cert.static_bound / actual;
    ++s.accuracy_count;
    slack_percents_.push_back(100.0 * cert.static_bound / actual);
  }
}

size_t WorkloadAggregator::fingerprints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_fingerprint_.size();
}

uint64_t WorkloadAggregator::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

uint64_t WorkloadAggregator::noncontrollable_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return noncontrollable_;
}

std::vector<WorkloadFingerprintStats> WorkloadAggregator::Top(size_t k) const {
  std::vector<WorkloadFingerprintStats> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all.reserve(by_fingerprint_.size());
    for (const auto& [fp, s] : by_fingerprint_) all.push_back(s);
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const WorkloadFingerprintStats& a,
                      const WorkloadFingerprintStats& b) {
                     if (a.count != b.count) return a.count > b.count;
                     return a.fingerprint < b.fingerprint;
                   });
  if (all.size() > k) all.resize(k);
  return all;
}

bool WorkloadAggregator::Find(const std::string& fingerprint,
                              WorkloadFingerprintStats* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_fingerprint_.find(fingerprint);
  if (it == by_fingerprint_.end()) return false;
  *out = it->second;
  return true;
}

std::string WorkloadAggregator::RenderTop(size_t k) const {
  uint64_t obs;
  uint64_t nonctrl;
  size_t classes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    obs = observations_;
    nonctrl = noncontrollable_;
    classes = by_fingerprint_.size();
  }
  std::string out = StrFormat(
      "workload: %zu fingerprint(s), %llu observation(s), %llu "
      "non-controllable\n",
      classes, static_cast<unsigned long long>(obs),
      static_cast<unsigned long long>(nonctrl));
  for (const WorkloadFingerprintStats& s : Top(k)) {
    out += FormatFingerprintLine(s);
  }
  return out;
}

std::string WorkloadAggregator::RenderFingerprint(
    const std::string& fingerprint) const {
  WorkloadFingerprintStats s;
  if (!Find(fingerprint, &s)) {
    return "fingerprint " + fingerprint + " not observed\n";
  }
  std::string out = "fingerprint " + s.fingerprint + "\n";
  out += "  query: " + s.sample_query + "\n";
  out += "  last query id: " +
         (s.last_query_id.empty() ? std::string("-") : s.last_query_id) + "\n";
  out += FormatFingerprintLine(s);
  out += StrFormat("  fetches: min=%llu mean=%.1f max=%llu\n",
                   static_cast<unsigned long long>(s.min_fetches),
                   s.count > 0 ? static_cast<double>(s.total_fetches) /
                                     static_cast<double>(s.count)
                               : 0.0,
                   static_cast<unsigned long long>(s.max_fetches));
  if (s.accuracy_count > 0) {
    out += StrFormat(
        "  bound accuracy: mean actual/bound=%.4f, mean slack=%.1fx over "
        "%llu bounded run(s)\n",
        s.MeanAccuracy(), s.MeanSlack(),
        static_cast<unsigned long long>(s.accuracy_count));
  }
  if (s.latency_count > 0) {
    out += StrFormat("  latency: mean=%.3f ms over %llu run(s)\n",
                     s.latency_sum_ms / static_cast<double>(s.latency_count),
                     static_cast<unsigned long long>(s.latency_count));
  }
  static const std::vector<double>* latency_edges =
      new std::vector<double>(DefaultLatencyBucketsMs());
  const std::string latency_hist =
      RenderBuckets(s.latency_buckets, *latency_edges);
  if (!latency_hist.empty()) out += "  latency_ms: " + latency_hist + "\n";
  const std::string fetch_hist = RenderBuckets(s.fetch_buckets,
                                               FetchBucketEdges());
  if (!fetch_hist.empty()) out += "  fetch_hist: " + fetch_hist + "\n";
  return out;
}

int64_t WorkloadAggregator::SlackPercentilePercent(double p) const {
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples = slack_percents_;
  }
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = std::ceil(p / 100.0 * static_cast<double>(samples.size()));
  size_t idx = rank <= 1 ? 0 : static_cast<size_t>(rank) - 1;
  if (idx >= samples.size()) idx = samples.size() - 1;
  return static_cast<int64_t>(std::llround(samples[idx]));
}

void WorkloadAggregator::ExportMetrics(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetGauge("workload.fingerprints")
      .Set(static_cast<int64_t>(fingerprints()));
  registry->GetGauge("workload.observations")
      .Set(static_cast<int64_t>(observations()));
  registry->GetGauge("workload.noncontrollable_total")
      .Set(static_cast<int64_t>(noncontrollable_total()));
  registry->GetGauge("workload.bound_slack_p50")
      .Set(SlackPercentilePercent(50));
  registry->GetGauge("workload.bound_slack_p99")
      .Set(SlackPercentilePercent(99));
}

void WorkloadAggregator::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  by_fingerprint_.clear();
  slack_percents_.clear();
  observations_ = 0;
  noncontrollable_ = 0;
}

}  // namespace scalein::obs
