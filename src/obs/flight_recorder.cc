#include "obs/flight_recorder.h"

#include <atomic>

#include "obs/correlation.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace scalein::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kShellCommand:
      return "shell-command";
    case EventKind::kQueryStart:
      return "query-start";
    case EventKind::kQueryFinish:
      return "query-finish";
    case EventKind::kPlan:
      return "plan";
    case EventKind::kChaseStep:
      return "chase-step";
    case EventKind::kMaintenanceStep:
      return "maintenance-step";
    case EventKind::kGovernorTrip:
      return "governor-trip";
    case EventKind::kFailpointFire:
      return "failpoint-fire";
    case EventKind::kSlowQuery:
      return "slow-query";
    case EventKind::kCertificate:
      return "certificate";
    case EventKind::kAdvisorSearch:
      return "advisor-search";
    case EventKind::kQdsiDecision:
      return "qdsi-decision";
    case EventKind::kWitnessSearch:
      return "witness-search";
    case EventKind::kViewRefresh:
      return "view-refresh";
    case EventKind::kMetricsDump:
      return "metrics-dump";
    case EventKind::kOpOpen:
      return "op-open";
    case EventKind::kOpNext:
      return "op-next-batch";
    case EventKind::kOpClose:
      return "op-close";
    case EventKind::kServePhase:
      return "serve-phase";
  }
  return "?";
}

std::pair<std::string, std::string> EventArg(std::string key,
                                             std::string_view value) {
  return {std::move(key), "\"" + JsonEscape(value) + "\""};
}

std::pair<std::string, std::string> EventArg(std::string key,
                                             const char* value) {
  return EventArg(std::move(key), std::string_view(value));
}

std::pair<std::string, std::string> EventArg(std::string key, uint64_t value) {
  return {std::move(key), std::to_string(value)};
}

std::pair<std::string, std::string> EventArg(std::string key, double value) {
  return {std::move(key), JsonNumber(value)};
}

std::pair<std::string, std::string> EventArg(std::string key, bool value) {
  return {std::move(key), value ? "true" : "false"};
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::Append(
    EventKind kind, std::string label,
    std::vector<std::pair<std::string, std::string>> args) {
  std::lock_guard<std::mutex> lock(mu_);
  FlightEvent event;
  event.seq = next_seq_++;
  event.t_ns = clock_ != nullptr ? clock_() : MonotonicNowNs();
  event.kind = kind;
  event.label = std::move(label);
  event.args = std::move(args);
  const QueryId qid = CurrentQueryId();
  event.qid_session = qid.session;
  event.qid_seq = qid.seq;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  // Saturated: slot seq % capacity holds the oldest event; overwrite it.
  ++dropped_;
  ring_[event.seq % capacity_] = std::move(event);
}

void FlightRecorder::AppendCompact(EventKind kind, const char* label,
                                   std::initializer_list<NumArg> nums) {
  std::lock_guard<std::mutex> lock(mu_);
  FlightEvent event;
  event.seq = next_seq_++;
  event.t_ns = clock_ != nullptr ? clock_() : MonotonicNowNs();
  event.kind = kind;
  event.label = label;
  const QueryId qid = CurrentQueryId();
  event.qid_session = qid.session;
  event.qid_seq = qid.seq;
  for (const NumArg& n : nums) {
    if (event.num_count == FlightEvent::kMaxNums) break;
    event.nums[event.num_count++] = n;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ++dropped_;
  ring_[event.seq % capacity_] = std::move(event);
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  const uint64_t oldest = next_seq_ - capacity_;
  for (uint64_t seq = oldest; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t FlightRecorder::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

void FlightRecorder::set_clock(uint64_t (*clock)()) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = clock;
}

std::string FlightRecorder::ToJson() const {
  std::vector<FlightEvent> snapshot = events();
  uint64_t appended;
  uint64_t dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    appended = next_seq_;
    dropped = dropped_;
  }
  std::string out = "{\"capacity\":" + std::to_string(capacity_) +
                    ",\"appended\":" + std::to_string(appended) +
                    ",\"dropped\":" + std::to_string(dropped) + ",\"events\":[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const FlightEvent& e = snapshot[i];
    if (i > 0) out += ",";
    out += "{\"seq\":" + std::to_string(e.seq) +
           ",\"t_ns\":" + std::to_string(e.t_ns) + ",\"kind\":\"" +
           EventKindName(e.kind) + "\",\"label\":\"" + JsonEscape(e.label) +
           "\"";
    if (e.qid_seq != 0) {
      // Only stamped events carry the field: an unstamped stream (no query
      // in flight) keeps its exact pre-correlation bytes.
      out += ",\"query_id\":\"" +
             RenderQueryId(QueryId{e.qid_session, e.qid_seq}) + "\"";
    }
    if (!e.args.empty() || e.num_count > 0) {
      out += ",\"args\":{";
      bool first = true;
      for (const auto& [key, value] : e.args) {
        if (!first) out += ",";
        first = false;
        out += "\"" + JsonEscape(key) + "\":" + value;
      }
      for (uint32_t a = 0; a < e.num_count; ++a) {
        if (!first) out += ",";
        first = false;
        // Counters are exact integers; render them without %g's 6-digit
        // rounding (a 7.9M fetch count must not dump as 7.9e+06).
        const double v = e.nums[a].value;
        if (v == static_cast<double>(static_cast<int64_t>(v))) {
          out += "\"" + JsonEscape(e.nums[a].key) +
                 "\":" + std::to_string(static_cast<int64_t>(v));
        } else {
          out += "\"" + JsonEscape(e.nums[a].key) + "\":" + JsonNumber(v);
        }
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

namespace {

std::atomic<FlightRecorder*> g_recorder{nullptr};

/// Failpoint fire → flight event. Installed while a global recorder is
/// live; util/ stays obs-free because the hook points the other way.
void RecordFailpointFire(const char* site, const char* action) {
  RecordFlightEvent(EventKind::kFailpointFire, site,
                    {EventArg("action", action)});
}

}  // namespace

FlightRecorder* FlightRecorder::Global() {
  return g_recorder.load(std::memory_order_relaxed);
}

void FlightRecorder::InstallGlobal(FlightRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_relaxed);
  util::Failpoints::Global().set_fire_listener(
      recorder != nullptr ? &RecordFailpointFire : nullptr);
}

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string Hex16(uint64_t value) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::string Fingerprint(std::string_view canonical_text) {
  return Hex16(Fnv1a64(canonical_text));
}

}  // namespace scalein::obs
