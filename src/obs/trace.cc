#include "obs/trace.h"

#include <chrono>

#include "obs/json.h"

namespace scalein::obs {
namespace {

Tracer* g_tracer = nullptr;

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<TraceEvent> snapshot = events();
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const TraceEvent& e = snapshot[i];
    if (i != 0) out += ",";
    out += "\n  {\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
           JsonEscape(e.category) + "\",\"ph\":\"X\",\"pid\":1,\"tid\":1";
    out += ",\"ts\":" + JsonNumber(static_cast<double>(e.start_ns) / 1000.0);
    out += ",\"dur\":" +
           JsonNumber(static_cast<double>(e.duration_ns) / 1000.0);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (size_t a = 0; a < e.args.size(); ++a) {
        if (a != 0) out += ",";
        out += "\"" + JsonEscape(e.args[a].first) + "\":" + e.args[a].second;
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Tracer* Tracer::Global() { return g_tracer; }

void Tracer::InstallGlobal(Tracer* tracer) { g_tracer = tracer; }

void ScopedSpan::Arg(const std::string& key, const std::string& value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void ScopedSpan::Arg(const std::string& key, const char* value) {
  Arg(key, std::string(value));
}

void ScopedSpan::Arg(const std::string& key, uint64_t value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, std::to_string(value));
}

void ScopedSpan::Arg(const std::string& key, double value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, JsonNumber(value));
}

void ScopedSpan::Arg(const std::string& key, bool value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, value ? "true" : "false");
}

}  // namespace scalein::obs
