#ifndef SCALEIN_OBS_EXPLAIN_H_
#define SCALEIN_OBS_EXPLAIN_H_

#include <string>
#include <vector>

#include "exec/exec_context.h"

namespace scalein::obs {

/// Options for EXPLAIN ANALYZE rendering.
struct ExplainOptions {
  /// Print the time= column. Auto-suppressed per op when no wall time was
  /// collected (timing disabled), so disabled-tracing output is stable.
  bool show_timing = true;
  /// Print the static Theorem 4.2 bound column on ops that carry one.
  bool show_bounds = true;
  /// Op id to tag with " <-- tripped" (the operator a governor limit fired
  /// at); -1 tags nothing. Set automatically by the TripInfo overload.
  int32_t highlight_op = -1;
};

/// Renders the executed operator (or bounded-derivation) forest recorded in
/// `ops` as an indented EXPLAIN ANALYZE tree. Each line shows the operator
/// label, its static fetch bound when known (`bound=`), and the actuals:
/// rows_out (`rows=`), tuples_fetched (`fetched=`), index_lookups
/// (`lookups=`), and inclusive wall time (`time=`, only when collected).
/// Children are indented two spaces under their parent; multiple roots
/// (one ExecContext reused across plans) render in creation order.
std::string RenderOpTree(const std::vector<exec::OpCounters>& ops,
                         const ExplainOptions& options = {});

/// Convenience overload over a live context.
std::string RenderOpTree(const exec::ExecContext& ctx,
                         const ExplainOptions& options = {});

/// Full EXPLAIN ANALYZE block: the tree plus a totals line comparing the
/// actual fetch count against `static_bound` (the Theorem 4.2 M; pass a
/// negative value when no static bound applies and the comparison line is
/// omitted).
std::string RenderExplainAnalyze(const std::vector<exec::OpCounters>& ops,
                                 uint64_t base_tuples_fetched,
                                 uint64_t index_lookups, double static_bound,
                                 const ExplainOptions& options = {});

/// Degradation-aware overload: when `trip` records a governor trip, a
/// "tripped: ..." line follows the totals and the tripping operator is
/// tagged in the tree — EXPLAIN ANALYZE for partial (degraded) results.
std::string RenderExplainAnalyze(const std::vector<exec::OpCounters>& ops,
                                 uint64_t base_tuples_fetched,
                                 uint64_t index_lookups, double static_bound,
                                 const exec::TripInfo& trip,
                                 const ExplainOptions& options = {});

}  // namespace scalein::obs

#endif  // SCALEIN_OBS_EXPLAIN_H_
