#ifndef SCALEIN_OBS_CORRELATION_H_
#define SCALEIN_OBS_CORRELATION_H_

#include <cstdint>
#include <string>

namespace scalein::obs {

/// One query's correlation identity: every artifact an evaluation produces
/// — spans, flight-recorder events, the sealed access certificate, slow-log
/// entries, post-mortem dumps, journal lines — carries the same QueryId, so
/// a forensic reader can join them without guessing by timestamp.
///
/// `session` fingerprints the process (or SCALEIN_SESSION_ID when set, for
/// reproducible runs); `seq` is the per-session evaluation counter, starting
/// at 1. `seq == 0` means "no query in flight" and renders as the empty
/// string everywhere, so unset ids never perturb deterministic output.
struct QueryId {
  uint64_t session = 0;
  uint64_t seq = 0;

  bool valid() const { return seq != 0; }
  bool operator==(const QueryId& other) const {
    return session == other.session && seq == other.seq;
  }
};

/// "<hex16-session>-<seq>" (e.g. "91ab…f3-7"); empty when `!id.valid()`.
std::string RenderQueryId(const QueryId& id);

/// The process-wide session fingerprint: FNV-1a of SCALEIN_SESSION_ID when
/// that env var is set (deterministic runs), otherwise a start-time/pid hash
/// computed once per process.
uint64_t SessionFingerprint();

/// The query currently being evaluated (process-wide; the shell runs one
/// query at a time and worker lanes inherit it). Invalid when idle.
QueryId CurrentQueryId();

/// Installs `id` as the current query; an invalid id clears the slot.
/// Prefer ScopedQueryCorrelation so the slot can't leak past an early
/// return.
void SetCurrentQueryId(const QueryId& id);

/// RAII correlation scope: sets the current QueryId for the duration of one
/// evaluation and restores the previous value (normally "none") on exit, so
/// everything recorded in between — on any thread — is stamped with it.
class ScopedQueryCorrelation {
 public:
  explicit ScopedQueryCorrelation(const QueryId& id) : prev_(CurrentQueryId()) {
    SetCurrentQueryId(id);
  }
  ~ScopedQueryCorrelation() { SetCurrentQueryId(prev_); }
  ScopedQueryCorrelation(const ScopedQueryCorrelation&) = delete;
  ScopedQueryCorrelation& operator=(const ScopedQueryCorrelation&) = delete;

 private:
  QueryId prev_;
};

}  // namespace scalein::obs

#endif  // SCALEIN_OBS_CORRELATION_H_
