#include "obs/journal.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "obs/dump.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "util/failpoint.h"

namespace scalein::obs {

const char* CertVerdictName(CertVerdict verdict) {
  switch (verdict) {
    case CertVerdict::kWithinBound:
      return "within-bound";
    case CertVerdict::kExceeded:
      return "exceeded";
    case CertVerdict::kNoStaticBound:
      return "no-static-bound";
    case CertVerdict::kTripped:
      return "tripped";
  }
  return "?";
}

CertVerdict DeriveVerdict(const AccessCertificate& cert) {
  if (cert.tripped) return CertVerdict::kTripped;
  if (cert.static_bound < 0) return CertVerdict::kNoStaticBound;
  return static_cast<double>(cert.actual_fetches) <= cert.static_bound
             ? CertVerdict::kWithinBound
             : CertVerdict::kExceeded;
}

std::string CertificatePayload(const AccessCertificate& cert) {
  std::string payload = "fp=" + cert.query_fingerprint +
                        "|qid=" + cert.query_id +
                        "|q=" + cert.query_text +
                        "|bound=" + JsonNumber(cert.static_bound) +
                        "|fetches=" + std::to_string(cert.actual_fetches) +
                        "|lookups=" + std::to_string(cert.index_lookups) +
                        "|tripped=" + (cert.tripped ? "1" : "0") +
                        "|trip=" + cert.trip_reason +
                        "|verdict=" + CertVerdictName(cert.verdict);
  for (const CertOp& op : cert.ops) {
    payload += "|op=" + op.label + "," + std::to_string(op.rows_out) + "," +
               std::to_string(op.tuples_fetched) + "," +
               std::to_string(op.index_lookups) + "," +
               JsonNumber(op.static_bound);
  }
  return payload;
}

void SealCertificate(AccessCertificate* cert) {
  cert->verdict = DeriveVerdict(*cert);
  cert->signature = Fnv1a64(CertificatePayload(*cert));
}

bool VerifyCertificate(const AccessCertificate& cert) {
  if (cert.verdict != DeriveVerdict(cert)) return false;
  return cert.signature == Fnv1a64(CertificatePayload(cert));
}

std::string CertificateToJson(const AccessCertificate& cert) {
  std::string out =
      "{\"query_fingerprint\":\"" + JsonEscape(cert.query_fingerprint) + "\"";
  if (!cert.query_id.empty()) {
    out += ",\"query_id\":\"" + JsonEscape(cert.query_id) + "\"";
  }
  out += ",\"query\":\"" + JsonEscape(cert.query_text) + "\"";
  if (cert.static_bound >= 0) {
    out += ",\"static_bound\":" + JsonNumber(cert.static_bound);
  }
  out += ",\"actual_fetches\":" + std::to_string(cert.actual_fetches) +
         ",\"index_lookups\":" + std::to_string(cert.index_lookups);
  if (!cert.ops.empty()) {
    out += ",\"ops\":[";
    for (size_t i = 0; i < cert.ops.size(); ++i) {
      const CertOp& op = cert.ops[i];
      if (i > 0) out += ",";
      out += "{\"label\":\"" + JsonEscape(op.label) +
             "\",\"rows_out\":" + std::to_string(op.rows_out) +
             ",\"tuples_fetched\":" + std::to_string(op.tuples_fetched) +
             ",\"index_lookups\":" + std::to_string(op.index_lookups);
      if (op.static_bound >= 0) {
        out += ",\"static_bound\":" + JsonNumber(op.static_bound);
      }
      out += "}";
    }
    out += "]";
  }
  out += ",\"tripped\":";
  out += cert.tripped ? "true" : "false";
  if (!cert.trip_reason.empty()) {
    out += ",\"trip_reason\":\"" + JsonEscape(cert.trip_reason) + "\"";
  }
  out += ",\"verdict\":\"";
  out += CertVerdictName(cert.verdict);
  out += "\",\"signature\":\"" + Hex16(cert.signature) + "\"}";
  return out;
}

bool CertVerdictFromName(std::string_view name, CertVerdict* out) {
  for (CertVerdict v :
       {CertVerdict::kWithinBound, CertVerdict::kExceeded,
        CertVerdict::kNoStaticBound, CertVerdict::kTripped}) {
    if (name == CertVerdictName(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

namespace {

/// One parsed certificate object — shared by the dump reader (arrays) and
/// the JSONL journal reader (one object per line).
Result<AccessCertificate> CertificateFromJsonValue(const JsonValue& c) {
  if (!c.is_object()) {
    return Status::InvalidArgument("certificate is not an object");
  }
  AccessCertificate cert;
  cert.query_fingerprint = c.StringOr("query_fingerprint", "");
  cert.query_id = c.StringOr("query_id", "");
  cert.query_text = c.StringOr("query", "");
  cert.static_bound = c.NumberOr("static_bound", -1.0);
  cert.actual_fetches = static_cast<uint64_t>(c.NumberOr("actual_fetches", 0));
  cert.index_lookups = static_cast<uint64_t>(c.NumberOr("index_lookups", 0));
  cert.tripped = c.BoolOr("tripped", false);
  cert.trip_reason = c.StringOr("trip_reason", "");
  if (!CertVerdictFromName(c.StringOr("verdict", ""), &cert.verdict)) {
    return Status::InvalidArgument("certificate has an unknown verdict");
  }
  const std::string sig = c.StringOr("signature", "");
  char* end = nullptr;
  cert.signature = std::strtoull(sig.c_str(), &end, 16);
  if (sig.empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("certificate has a malformed signature");
  }
  if (const JsonValue* ops = c.Find("ops"); ops != nullptr) {
    for (const JsonValue& o : ops->array) {
      CertOp op;
      op.label = o.StringOr("label", "");
      op.rows_out = static_cast<uint64_t>(o.NumberOr("rows_out", 0));
      op.tuples_fetched =
          static_cast<uint64_t>(o.NumberOr("tuples_fetched", 0));
      op.index_lookups = static_cast<uint64_t>(o.NumberOr("index_lookups", 0));
      op.static_bound = o.NumberOr("static_bound", -1.0);
      cert.ops.push_back(std::move(op));
    }
  }
  return cert;
}

}  // namespace

Result<std::vector<AccessCertificate>> CertificatesFromDumpJson(
    std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue* certs = nullptr;
  if (parsed->is_array()) {
    certs = &*parsed;
  } else {
    certs = parsed->Find("certificates");
    if (certs == nullptr) {
      const JsonValue* journal = parsed->Find("journal");
      if (journal != nullptr) certs = journal->Find("certificates");
    }
  }
  if (certs == nullptr || !certs->is_array()) {
    return Status::InvalidArgument(
        "dump has no certificate array (expected a post-mortem dump, a "
        "journal object, or a bare array)");
  }

  std::vector<AccessCertificate> out;
  out.reserve(certs->array.size());
  for (size_t i = 0; i < certs->array.size(); ++i) {
    Result<AccessCertificate> cert = CertificateFromJsonValue(certs->array[i]);
    if (!cert.ok()) {
      return Status::InvalidArgument("certificate " + std::to_string(i) +
                                     ": " + cert.status().message());
    }
    out.push_back(std::move(cert).ValueOrDie());
  }
  return out;
}

Result<std::vector<AccessCertificate>> CertificatesFromJsonl(
    std::string_view text) {
  std::vector<AccessCertificate> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    Result<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) continue;
    Result<AccessCertificate> cert = CertificateFromJsonValue(*parsed);
    if (!cert.ok()) continue;
    out.push_back(std::move(cert).ValueOrDie());
  }
  if (out.empty()) {
    return Status::InvalidArgument(
        "no certificate line parses as a journal entry");
  }
  return out;
}

std::string JournalLineJson(const AccessCertificate& cert, double latency_ms,
                            bool noncontrollable,
                            const std::string& client_tag) {
  std::string line = CertificateToJson(cert);
  line.pop_back();  // re-open the object for the non-sealed siblings
  if (latency_ms >= 0) line += ",\"latency_ms\":" + JsonNumber(latency_ms);
  if (!client_tag.empty()) {
    line += ",\"client_tag\":\"" + JsonEscape(client_tag) + "\"";
  }
  line += ",\"noncontrollable\":";
  line += noncontrollable ? "true" : "false";
  line += "}";
  return line;
}

QueryJournal::QueryJournal(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void QueryJournal::Append(AccessCertificate cert) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(cert));
    return;
  }
  ++dropped_;
  ring_[seq % capacity_] = std::move(cert);
}

std::vector<AccessCertificate> QueryJournal::certificates() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AccessCertificate> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  const uint64_t oldest = next_seq_ - capacity_;
  for (uint64_t seq = oldest; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

size_t QueryJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t QueryJournal::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t QueryJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void QueryJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

std::string JournalLoadReport::ToString() const {
  std::string out = "journal: " + std::to_string(entries) + " entr" +
                    (entries == 1 ? "y" : "ies") + " (" +
                    std::to_string(sealed_ok) + " sealed, " +
                    std::to_string(tampered) + " tampered, " +
                    std::to_string(malformed) + " malformed)";
  return out;
}

RotatingJsonlFile::RotatingJsonlFile(std::string path, uint64_t max_bytes,
                                     std::string append_site,
                                     std::string rotate_site)
    : path_(std::move(path)),
      max_bytes_(max_bytes == 0 ? 1 : max_bytes),
      append_site_(std::move(append_site)),
      rotate_site_(std::move(rotate_site)) {}

RotatingJsonlFile::~RotatingJsonlFile() = default;

Status RotatingJsonlFile::RotateLocked() {
  SI_RETURN_IF_ERROR(SCALEIN_FAILPOINT(rotate_site_.c_str()));
  namespace fs = std::filesystem;
  std::error_code ec;
  out_.reset();  // close the live handle before renaming under it
  // path.1 -> path.2 (clobbering the oldest generation), then path -> path.1.
  for (int gen = kRotations - 1; gen >= 1; --gen) {
    const std::string from = path_ + "." + std::to_string(gen);
    const std::string to = path_ + "." + std::to_string(gen + 1);
    if (!fs::exists(from, ec)) continue;
    fs::rename(from, to, ec);
    if (ec) {
      return Status::Internal("journal rotate: cannot rename '" + from +
                              "' to '" + to + "': " + ec.message());
    }
  }
  fs::rename(path_, path_ + ".1", ec);
  if (ec) {
    return Status::Internal("journal rotate: cannot rename '" + path_ +
                            "': " + ec.message());
  }
  ++rotations_;
  live_bytes_ = 0;
  return Status::OK();
}

Status RotatingJsonlFile::Append(std::string_view line) {
  // Chaos site: an injected append fault surfaces as this Status — callers
  // (the shell's RecordEvalOutcome, the serve access log) render it as a
  // warning and keep the request's result, never failing it over its paper
  // trail.
  SI_RETURN_IF_ERROR(SCALEIN_FAILPOINT(append_site_.c_str()));
  std::lock_guard<std::mutex> lock(mu_);
  if (live_bytes_ < 0) {
    // First touch: create missing parent directories loudly (the fix for
    // silently dropped writes) and size any surviving live file.
    SI_RETURN_IF_ERROR(EnsureParentDirs(path_));
    std::error_code ec;
    const auto size = std::filesystem::file_size(path_, ec);
    live_bytes_ = ec ? 0 : static_cast<int64_t>(size);
  }
  if (live_bytes_ > 0 &&
      static_cast<uint64_t>(live_bytes_) + line.size() + 1 > max_bytes_) {
    SI_RETURN_IF_ERROR(RotateLocked());
  }
  if (out_ == nullptr) {
    out_ = std::make_unique<std::ofstream>(path_, std::ios::app);
    if (!out_->is_open()) {
      out_.reset();
      return Status::Internal("cannot open '" + path_ + "' for append");
    }
  }
  out_->write(line.data(), static_cast<std::streamsize>(line.size()));
  out_->put('\n');
  out_->flush();
  if (!out_->good()) {
    out_.reset();
    return Status::Internal("cannot append to '" + path_ + "'");
  }
  live_bytes_ += static_cast<int64_t>(line.size()) + 1;
  ++appended_;
  return Status::OK();
}

uint64_t RotatingJsonlFile::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

uint64_t RotatingJsonlFile::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

std::vector<std::string> RotatingJsonlFile::GenerationsOldestFirst() const {
  std::vector<std::string> out;
  for (int gen = kRotations; gen >= 0; --gen) {
    out.push_back(gen == 0 ? path_ : path_ + "." + std::to_string(gen));
  }
  return out;
}

JournalStore::JournalStore(std::string path, uint64_t max_bytes)
    : file_(std::move(path), max_bytes, "journal_append", "journal_rotate") {}

Status JournalStore::Append(const AccessCertificate& cert, double latency_ms,
                            bool noncontrollable,
                            const std::string& client_tag) {
  return file_.Append(
      JournalLineJson(cert, latency_ms, noncontrollable, client_tag));
}

Result<std::vector<JournalEntry>> JournalStore::Load(
    JournalLoadReport* report) const {
  JournalLoadReport local;
  std::vector<JournalEntry> out;
  // Oldest generation first, so replay order equals append order.
  for (const std::string& file : file_.GenerationsOldestFirst()) {
    std::ifstream in(file);
    if (!in.is_open()) continue;
    ++local.files;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      Result<JsonValue> parsed = ParseJson(line);
      if (!parsed.ok()) {
        ++local.malformed;
        local.errors.push_back(file + ":" + std::to_string(lineno) + ": " +
                               parsed.status().message());
        continue;
      }
      Result<AccessCertificate> cert = CertificateFromJsonValue(*parsed);
      if (!cert.ok()) {
        ++local.malformed;
        local.errors.push_back(file + ":" + std::to_string(lineno) + ": " +
                               cert.status().message());
        continue;
      }
      JournalEntry entry;
      entry.cert = std::move(cert).ValueOrDie();
      entry.latency_ms = parsed->NumberOr("latency_ms", -1.0);
      entry.noncontrollable = parsed->BoolOr("noncontrollable", false);
      entry.client_tag = parsed->StringOr("client_tag", "");
      entry.seal_ok = VerifyCertificate(entry.cert);
      if (entry.seal_ok) {
        ++local.sealed_ok;
      } else {
        ++local.tampered;
        local.errors.push_back(file + ":" + std::to_string(lineno) +
                               ": seal mismatch (tampered after sealing?)");
      }
      ++local.entries;
      out.push_back(std::move(entry));
    }
  }
  if (report != nullptr) *report = std::move(local);
  return out;
}

std::string QueryJournal::ToJson() const {
  std::vector<AccessCertificate> snapshot = certificates();
  uint64_t appended;
  uint64_t dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    appended = next_seq_;
    dropped = dropped_;
  }
  std::string out = "{\"capacity\":" + std::to_string(capacity_) +
                    ",\"appended\":" + std::to_string(appended) +
                    ",\"dropped\":" + std::to_string(dropped) +
                    ",\"certificates\":[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) out += ",";
    out += CertificateToJson(snapshot[i]);
  }
  out += "]}";
  return out;
}

}  // namespace scalein::obs
