#include "obs/journal.h"

#include <cstdlib>

#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace scalein::obs {

const char* CertVerdictName(CertVerdict verdict) {
  switch (verdict) {
    case CertVerdict::kWithinBound:
      return "within-bound";
    case CertVerdict::kExceeded:
      return "exceeded";
    case CertVerdict::kNoStaticBound:
      return "no-static-bound";
    case CertVerdict::kTripped:
      return "tripped";
  }
  return "?";
}

CertVerdict DeriveVerdict(const AccessCertificate& cert) {
  if (cert.tripped) return CertVerdict::kTripped;
  if (cert.static_bound < 0) return CertVerdict::kNoStaticBound;
  return static_cast<double>(cert.actual_fetches) <= cert.static_bound
             ? CertVerdict::kWithinBound
             : CertVerdict::kExceeded;
}

std::string CertificatePayload(const AccessCertificate& cert) {
  std::string payload = "fp=" + cert.query_fingerprint +
                        "|q=" + cert.query_text +
                        "|bound=" + JsonNumber(cert.static_bound) +
                        "|fetches=" + std::to_string(cert.actual_fetches) +
                        "|lookups=" + std::to_string(cert.index_lookups) +
                        "|tripped=" + (cert.tripped ? "1" : "0") +
                        "|trip=" + cert.trip_reason +
                        "|verdict=" + CertVerdictName(cert.verdict);
  for (const CertOp& op : cert.ops) {
    payload += "|op=" + op.label + "," + std::to_string(op.rows_out) + "," +
               std::to_string(op.tuples_fetched) + "," +
               std::to_string(op.index_lookups) + "," +
               JsonNumber(op.static_bound);
  }
  return payload;
}

void SealCertificate(AccessCertificate* cert) {
  cert->verdict = DeriveVerdict(*cert);
  cert->signature = Fnv1a64(CertificatePayload(*cert));
}

bool VerifyCertificate(const AccessCertificate& cert) {
  if (cert.verdict != DeriveVerdict(cert)) return false;
  return cert.signature == Fnv1a64(CertificatePayload(cert));
}

std::string CertificateToJson(const AccessCertificate& cert) {
  std::string out = "{\"query_fingerprint\":\"" +
                    JsonEscape(cert.query_fingerprint) + "\",\"query\":\"" +
                    JsonEscape(cert.query_text) + "\"";
  if (cert.static_bound >= 0) {
    out += ",\"static_bound\":" + JsonNumber(cert.static_bound);
  }
  out += ",\"actual_fetches\":" + std::to_string(cert.actual_fetches) +
         ",\"index_lookups\":" + std::to_string(cert.index_lookups);
  if (!cert.ops.empty()) {
    out += ",\"ops\":[";
    for (size_t i = 0; i < cert.ops.size(); ++i) {
      const CertOp& op = cert.ops[i];
      if (i > 0) out += ",";
      out += "{\"label\":\"" + JsonEscape(op.label) +
             "\",\"rows_out\":" + std::to_string(op.rows_out) +
             ",\"tuples_fetched\":" + std::to_string(op.tuples_fetched) +
             ",\"index_lookups\":" + std::to_string(op.index_lookups);
      if (op.static_bound >= 0) {
        out += ",\"static_bound\":" + JsonNumber(op.static_bound);
      }
      out += "}";
    }
    out += "]";
  }
  out += ",\"tripped\":";
  out += cert.tripped ? "true" : "false";
  if (!cert.trip_reason.empty()) {
    out += ",\"trip_reason\":\"" + JsonEscape(cert.trip_reason) + "\"";
  }
  out += ",\"verdict\":\"";
  out += CertVerdictName(cert.verdict);
  out += "\",\"signature\":\"" + Hex16(cert.signature) + "\"}";
  return out;
}

bool CertVerdictFromName(std::string_view name, CertVerdict* out) {
  for (CertVerdict v :
       {CertVerdict::kWithinBound, CertVerdict::kExceeded,
        CertVerdict::kNoStaticBound, CertVerdict::kTripped}) {
    if (name == CertVerdictName(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

Result<std::vector<AccessCertificate>> CertificatesFromDumpJson(
    std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue* certs = nullptr;
  if (parsed->is_array()) {
    certs = &*parsed;
  } else {
    certs = parsed->Find("certificates");
    if (certs == nullptr) {
      const JsonValue* journal = parsed->Find("journal");
      if (journal != nullptr) certs = journal->Find("certificates");
    }
  }
  if (certs == nullptr || !certs->is_array()) {
    return Status::InvalidArgument(
        "dump has no certificate array (expected a post-mortem dump, a "
        "journal object, or a bare array)");
  }

  std::vector<AccessCertificate> out;
  out.reserve(certs->array.size());
  for (size_t i = 0; i < certs->array.size(); ++i) {
    const JsonValue& c = certs->array[i];
    if (!c.is_object()) {
      return Status::InvalidArgument("certificate " + std::to_string(i) +
                                     " is not an object");
    }
    AccessCertificate cert;
    cert.query_fingerprint = c.StringOr("query_fingerprint", "");
    cert.query_text = c.StringOr("query", "");
    cert.static_bound = c.NumberOr("static_bound", -1.0);
    cert.actual_fetches =
        static_cast<uint64_t>(c.NumberOr("actual_fetches", 0));
    cert.index_lookups = static_cast<uint64_t>(c.NumberOr("index_lookups", 0));
    cert.tripped = c.BoolOr("tripped", false);
    cert.trip_reason = c.StringOr("trip_reason", "");
    if (!CertVerdictFromName(c.StringOr("verdict", ""), &cert.verdict)) {
      return Status::InvalidArgument("certificate " + std::to_string(i) +
                                     " has an unknown verdict");
    }
    const std::string sig = c.StringOr("signature", "");
    char* end = nullptr;
    cert.signature = std::strtoull(sig.c_str(), &end, 16);
    if (sig.empty() || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("certificate " + std::to_string(i) +
                                     " has a malformed signature");
    }
    if (const JsonValue* ops = c.Find("ops"); ops != nullptr) {
      for (const JsonValue& o : ops->array) {
        CertOp op;
        op.label = o.StringOr("label", "");
        op.rows_out = static_cast<uint64_t>(o.NumberOr("rows_out", 0));
        op.tuples_fetched =
            static_cast<uint64_t>(o.NumberOr("tuples_fetched", 0));
        op.index_lookups =
            static_cast<uint64_t>(o.NumberOr("index_lookups", 0));
        op.static_bound = o.NumberOr("static_bound", -1.0);
        cert.ops.push_back(std::move(op));
      }
    }
    out.push_back(std::move(cert));
  }
  return out;
}

QueryJournal::QueryJournal(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void QueryJournal::Append(AccessCertificate cert) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(cert));
    return;
  }
  ++dropped_;
  ring_[seq % capacity_] = std::move(cert);
}

std::vector<AccessCertificate> QueryJournal::certificates() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AccessCertificate> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  const uint64_t oldest = next_seq_ - capacity_;
  for (uint64_t seq = oldest; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

size_t QueryJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t QueryJournal::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t QueryJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void QueryJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

std::string QueryJournal::ToJson() const {
  std::vector<AccessCertificate> snapshot = certificates();
  uint64_t appended;
  uint64_t dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    appended = next_seq_;
    dropped = dropped_;
  }
  std::string out = "{\"capacity\":" + std::to_string(capacity_) +
                    ",\"appended\":" + std::to_string(appended) +
                    ",\"dropped\":" + std::to_string(dropped) +
                    ",\"certificates\":[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) out += ",";
    out += CertificateToJson(snapshot[i]);
  }
  out += "]}";
  return out;
}

}  // namespace scalein::obs
