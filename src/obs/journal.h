#ifndef SCALEIN_OBS_JOURNAL_H_
#define SCALEIN_OBS_JOURNAL_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace scalein::obs {

/// Did the query honor its Theorem 4.2 contract?
enum class CertVerdict {
  kWithinBound,    ///< actual_fetches <= static_bound
  kExceeded,       ///< actual_fetches > static_bound — a theorem violation
  kNoStaticBound,  ///< the analysis produced no finite bound to check
  kTripped,        ///< the governor stopped the query; accounting is partial
};

/// Canonical kebab-case name ("within-bound", "exceeded", ...).
const char* CertVerdictName(CertVerdict verdict);

/// Per-operator slice of a certificate — a plain mirror of the EXPLAIN
/// ANALYZE counters (obs/ must not depend on exec/, so the shell copies the
/// fields across). `static_bound < 0` means the node carries no bound.
struct CertOp {
  std::string label;
  uint64_t rows_out = 0;
  uint64_t tuples_fetched = 0;
  uint64_t index_lookups = 0;
  double static_bound = -1.0;
};

/// A per-query access certificate: the signed-off record tying one executed
/// query to its scale-independence evidence — `(query fingerprint, static
/// Theorem 4.2 bound, actual fetches, per-op breakdown, verdict)`. Sealed by
/// `SealCertificate` at query end; `VerifyCertificate` re-derives both the
/// verdict and the FNV-1a signature offline, so a journal dump is checkable
/// without the engine. The signature is tamper-*evident* bookkeeping, not a
/// cryptographic guarantee.
struct AccessCertificate {
  std::string query_fingerprint;  ///< Fingerprint(query_text)
  std::string query_id;           ///< RenderQueryId of the minting evaluation
  std::string query_text;         ///< canonical query string
  double static_bound = -1.0;     ///< Theorem 4.2 M; < 0 when unbounded
  uint64_t actual_fetches = 0;    ///< base tuples actually read
  uint64_t index_lookups = 0;
  std::vector<CertOp> ops;        ///< per-op breakdown (may be empty)
  bool tripped = false;           ///< governor stopped the query
  std::string trip_reason;        ///< TripInfo text when tripped
  CertVerdict verdict = CertVerdict::kNoStaticBound;  ///< derived on seal
  uint64_t signature = 0;         ///< FNV-1a over CertificatePayload
};

/// Derives the verdict from (tripped, static_bound, actual_fetches).
CertVerdict DeriveVerdict(const AccessCertificate& cert);

/// The canonical byte string the signature covers: every field except the
/// signature itself, rendered deterministically.
std::string CertificatePayload(const AccessCertificate& cert);

/// Fills `verdict` and `signature` in place; call once all counters are set.
void SealCertificate(AccessCertificate* cert);

/// True iff the stored verdict and signature match re-derivation — the
/// offline check. A certificate edited after sealing fails.
bool VerifyCertificate(const AccessCertificate& cert);

/// Deterministic JSON object with stable field order.
std::string CertificateToJson(const AccessCertificate& cert);

/// One JSONL journal line: CertificateToJson plus the non-sealed sibling
/// fields ("latency_ms" when >= 0, "noncontrollable", and "client_tag" when
/// non-empty — the serve layer's caller-supplied trace tag, observational
/// like latency). The sealed payload is untouched, so the parsed-back
/// certificate re-verifies byte-for-byte.
std::string JournalLineJson(const AccessCertificate& cert, double latency_ms,
                            bool noncontrollable,
                            const std::string& client_tag = "");

/// Parses a canonical verdict name ("within-bound", ...) back into the enum;
/// returns false for an unknown name.
bool CertVerdictFromName(std::string_view name, CertVerdict* out);

/// Reads certificates back out of dumped JSON — the offline side of the
/// `certify <file>` shell command. Accepts a whole post-mortem dump
/// (`{"journal": {...}}`), a bare journal object
/// (`{"certificates": [...]}`), or a bare certificate array. Every numeric
/// field round-trips exactly (emitters print doubles with the same %.6g the
/// parser reads back), so `VerifyCertificate` re-derives signatures from
/// parsed certificates byte-for-byte.
Result<std::vector<AccessCertificate>> CertificatesFromDumpJson(
    std::string_view json);

/// Reads certificates out of a JSONL journal file's text (one certificate
/// object per line, as written by JournalStore) — the other offline side of
/// `certify <file>`. Unparsable lines are skipped; fails only when no line
/// yields a certificate.
Result<std::vector<AccessCertificate>> CertificatesFromJsonl(
    std::string_view text);

/// One replayed journal line: the sealed certificate plus the non-sealed
/// sibling fields the store records next to it. Latency is observational
/// (it varies run to run) so it lives *outside* the sealed payload —
/// certificates stay byte-identical across thread counts and reruns.
struct JournalEntry {
  AccessCertificate cert;
  double latency_ms = -1.0;     ///< < 0 when unknown
  bool noncontrollable = false; ///< evaluation failed Thm 4.2 controllability
  std::string client_tag;       ///< serve-layer trace tag; empty when untagged
  bool seal_ok = false;         ///< VerifyCertificate at load time
};

/// What a JournalStore::Load pass found, for surfacing instead of crashing:
/// tampered entries (seal mismatch) and malformed lines are counted and
/// described, never fatal.
struct JournalLoadReport {
  size_t files = 0;
  size_t entries = 0;
  size_t sealed_ok = 0;
  size_t tampered = 0;
  size_t malformed = 0;
  std::vector<std::string> errors;

  /// "journal: N entries (S sealed, T tampered, M malformed)".
  std::string ToString() const;
};

/// Size-rotated JSONL sink: one text line per Append, written to `path`
/// with size-based rotation `path` → `path.1` → `path.2` (oldest dropped)
/// before a line that would push the live file past `max_bytes`. Parent
/// directories are created on first append (obs::EnsureParentDirs); failures
/// surface as a Status, never a silent drop. Two chaos sites — named per
/// instance so the journal's ("journal_append"/"journal_rotate") and the
/// access log's ("access_log_append"/"access_log_rotate") can be armed
/// independently — fire before the write and before the rename chain.
/// Thread-safe; the file handle stays open between appends (flushed per
/// line, so concurrent readers always see whole lines).
class RotatingJsonlFile {
 public:
  /// Rotated generations kept besides the live file (`path.1`, `path.2`).
  static constexpr int kRotations = 2;

  RotatingJsonlFile(std::string path, uint64_t max_bytes,
                    std::string append_site, std::string rotate_site);
  RotatingJsonlFile(const RotatingJsonlFile&) = delete;
  RotatingJsonlFile& operator=(const RotatingJsonlFile&) = delete;
  ~RotatingJsonlFile();

  const std::string& path() const { return path_; }
  uint64_t max_bytes() const { return max_bytes_; }

  /// Appends `line` (no trailing newline) plus '\n', rotating first when the
  /// live file would exceed max_bytes().
  Status Append(std::string_view line);

  uint64_t appended() const;
  uint64_t rotations() const;

  /// Every surviving generation's file path, oldest first (`path.2`,
  /// `path.1`, `path`) — missing generations are simply omitted, so readers
  /// replay lines in append order.
  std::vector<std::string> GenerationsOldestFirst() const;

 private:
  Status RotateLocked();

  mutable std::mutex mu_;
  const std::string path_;
  const uint64_t max_bytes_;
  const std::string append_site_;
  const std::string rotate_site_;
  std::unique_ptr<std::ofstream> out_;  ///< live handle; reopened on rotate
  int64_t live_bytes_ = -1;  ///< lazily initialized from the file on disk
  uint64_t appended_ = 0;
  uint64_t rotations_ = 0;
};

/// Durable append-only query journal: one JSONL line per sealed certificate
/// (plus non-sealed latency/noncontrollable/client-tag siblings), written to
/// SCALEIN_JOURNAL_PATH via a RotatingJsonlFile. Load replays `path.2`,
/// `path.1`, `path` in that order — oldest entry first — re-verifying every
/// seal, so a workload history survives shell restarts and stays checkable
/// offline.
class JournalStore {
 public:
  static constexpr uint64_t kDefaultMaxBytes = 1 << 20;
  /// Rotated generations kept besides the live file (`path.1`, `path.2`).
  static constexpr int kRotations = RotatingJsonlFile::kRotations;

  explicit JournalStore(std::string path,
                        uint64_t max_bytes = kDefaultMaxBytes);
  JournalStore(const JournalStore&) = delete;
  JournalStore& operator=(const JournalStore&) = delete;

  const std::string& path() const { return file_.path(); }
  uint64_t max_bytes() const { return file_.max_bytes(); }

  /// Appends one journal line; rotates first when the live file would
  /// exceed max_bytes(). `latency_ms < 0` omits the latency field; an empty
  /// `client_tag` omits the tag field.
  Status Append(const AccessCertificate& cert, double latency_ms,
                bool noncontrollable, const std::string& client_tag = "");

  /// Replays every surviving generation oldest-first. Tampered or malformed
  /// entries are reported in `report` (may be nullptr), not errors; the
  /// call fails only on an unreadable live file scheme (a missing file is
  /// an empty journal, not an error).
  Result<std::vector<JournalEntry>> Load(
      JournalLoadReport* report = nullptr) const;

  uint64_t appended() const { return file_.appended(); }
  uint64_t rotations() const { return file_.rotations(); }

 private:
  RotatingJsonlFile file_;
};

/// Fixed-size ring of sealed certificates, one per completed query — the
/// query journal the `journal`/`certify` shell commands read and post-mortem
/// dumps embed. Same eviction contract as the flight recorder: strict FIFO,
/// `dropped()` counts evictions.
class QueryJournal {
 public:
  explicit QueryJournal(size_t capacity = kDefaultCapacity);
  QueryJournal(const QueryJournal&) = delete;
  QueryJournal& operator=(const QueryJournal&) = delete;

  static constexpr size_t kDefaultCapacity = 256;

  void Append(AccessCertificate cert);

  /// Snapshot oldest → newest.
  std::vector<AccessCertificate> certificates() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t total_appended() const;
  uint64_t dropped() const;
  void Clear();

  /// {"capacity":...,"appended":...,"dropped":...,"certificates":[...]}
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  std::vector<AccessCertificate> ring_;  ///< ring_[seq % capacity_] saturated
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace scalein::obs

#endif  // SCALEIN_OBS_JOURNAL_H_
