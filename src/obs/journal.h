#ifndef SCALEIN_OBS_JOURNAL_H_
#define SCALEIN_OBS_JOURNAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace scalein::obs {

/// Did the query honor its Theorem 4.2 contract?
enum class CertVerdict {
  kWithinBound,    ///< actual_fetches <= static_bound
  kExceeded,       ///< actual_fetches > static_bound — a theorem violation
  kNoStaticBound,  ///< the analysis produced no finite bound to check
  kTripped,        ///< the governor stopped the query; accounting is partial
};

/// Canonical kebab-case name ("within-bound", "exceeded", ...).
const char* CertVerdictName(CertVerdict verdict);

/// Per-operator slice of a certificate — a plain mirror of the EXPLAIN
/// ANALYZE counters (obs/ must not depend on exec/, so the shell copies the
/// fields across). `static_bound < 0` means the node carries no bound.
struct CertOp {
  std::string label;
  uint64_t rows_out = 0;
  uint64_t tuples_fetched = 0;
  uint64_t index_lookups = 0;
  double static_bound = -1.0;
};

/// A per-query access certificate: the signed-off record tying one executed
/// query to its scale-independence evidence — `(query fingerprint, static
/// Theorem 4.2 bound, actual fetches, per-op breakdown, verdict)`. Sealed by
/// `SealCertificate` at query end; `VerifyCertificate` re-derives both the
/// verdict and the FNV-1a signature offline, so a journal dump is checkable
/// without the engine. The signature is tamper-*evident* bookkeeping, not a
/// cryptographic guarantee.
struct AccessCertificate {
  std::string query_fingerprint;  ///< Fingerprint(query_text)
  std::string query_text;         ///< canonical query string
  double static_bound = -1.0;     ///< Theorem 4.2 M; < 0 when unbounded
  uint64_t actual_fetches = 0;    ///< base tuples actually read
  uint64_t index_lookups = 0;
  std::vector<CertOp> ops;        ///< per-op breakdown (may be empty)
  bool tripped = false;           ///< governor stopped the query
  std::string trip_reason;        ///< TripInfo text when tripped
  CertVerdict verdict = CertVerdict::kNoStaticBound;  ///< derived on seal
  uint64_t signature = 0;         ///< FNV-1a over CertificatePayload
};

/// Derives the verdict from (tripped, static_bound, actual_fetches).
CertVerdict DeriveVerdict(const AccessCertificate& cert);

/// The canonical byte string the signature covers: every field except the
/// signature itself, rendered deterministically.
std::string CertificatePayload(const AccessCertificate& cert);

/// Fills `verdict` and `signature` in place; call once all counters are set.
void SealCertificate(AccessCertificate* cert);

/// True iff the stored verdict and signature match re-derivation — the
/// offline check. A certificate edited after sealing fails.
bool VerifyCertificate(const AccessCertificate& cert);

/// Deterministic JSON object with stable field order.
std::string CertificateToJson(const AccessCertificate& cert);

/// Parses a canonical verdict name ("within-bound", ...) back into the enum;
/// returns false for an unknown name.
bool CertVerdictFromName(std::string_view name, CertVerdict* out);

/// Reads certificates back out of dumped JSON — the offline side of the
/// `certify <file>` shell command. Accepts a whole post-mortem dump
/// (`{"journal": {...}}`), a bare journal object
/// (`{"certificates": [...]}`), or a bare certificate array. Every numeric
/// field round-trips exactly (emitters print doubles with the same %.6g the
/// parser reads back), so `VerifyCertificate` re-derives signatures from
/// parsed certificates byte-for-byte.
Result<std::vector<AccessCertificate>> CertificatesFromDumpJson(
    std::string_view json);

/// Fixed-size ring of sealed certificates, one per completed query — the
/// query journal the `journal`/`certify` shell commands read and post-mortem
/// dumps embed. Same eviction contract as the flight recorder: strict FIFO,
/// `dropped()` counts evictions.
class QueryJournal {
 public:
  explicit QueryJournal(size_t capacity = kDefaultCapacity);
  QueryJournal(const QueryJournal&) = delete;
  QueryJournal& operator=(const QueryJournal&) = delete;

  static constexpr size_t kDefaultCapacity = 256;

  void Append(AccessCertificate cert);

  /// Snapshot oldest → newest.
  std::vector<AccessCertificate> certificates() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t total_appended() const;
  uint64_t dropped() const;
  void Clear();

  /// {"capacity":...,"appended":...,"dropped":...,"certificates":[...]}
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  std::vector<AccessCertificate> ring_;  ///< ring_[seq % capacity_] saturated
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace scalein::obs

#endif  // SCALEIN_OBS_JOURNAL_H_
