#ifndef SCALEIN_OBS_TRACE_H_
#define SCALEIN_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/correlation.h"

/// Compile-time kill switch for the engine's span/timing instrumentation.
/// Building with -DSCALEIN_OBS_ENABLE_TIMING=0 removes even the
/// branch-on-null fast paths from the operator hot loop, so the no-op path
/// is checkable at compile time (the paper's |D_Q| accounting is unaffected
/// — only wall-clock observation is stripped).
#ifndef SCALEIN_OBS_ENABLE_TIMING
#define SCALEIN_OBS_ENABLE_TIMING 1
#endif

namespace scalein::obs {

/// Monotonic nanoseconds since an arbitrary process-stable epoch
/// (steady_clock; never jumps backwards).
uint64_t MonotonicNowNs();

/// One completed span ("ph":"X" in the Chrome trace_event format): a named,
/// categorized wall-time interval with optional key/value arguments.
/// `args` values are pre-rendered JSON fragments (quoted strings or bare
/// numbers) so export is a pure concatenation.
struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// An append-only in-memory span sink. Engine components never require a
/// tracer: every instrumentation site tolerates `nullptr`, which is the
/// disabled (and default) state. Install one process-wide with
/// `InstallGlobal` or hand one to an `ExecContext` for scoped collection.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Record(TraceEvent event);

  /// Snapshot of the recorded events (copy; the tracer keeps recording).
  std::vector<TraceEvent> events() const;
  size_t size() const;
  void Clear();

  /// Chrome `trace_event` JSON ({"traceEvents":[...]}; timestamps in µs).
  /// Load in chrome://tracing or https://ui.perfetto.dev.
  std::string ToChromeTraceJson() const;

  /// Process-wide tracer; nullptr (tracing disabled) until installed.
  static Tracer* Global();
  /// Installs `tracer` as the process-wide sink (nullptr disables again).
  /// Not synchronized against concurrent span starts; install at startup.
  static void InstallGlobal(Tracer* tracer);

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span: measures construction-to-destruction wall time and records it
/// into `tracer` (no-op when `tracer` is nullptr — the arg setters and the
/// destructor then cost one branch each).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, const char* category)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    event_.name = name;
    event_.category = category;
    event_.start_ns = MonotonicNowNs();
    // Correlation: spans recorded during an evaluation carry the same
    // QueryId as the recorder events, certificate, and journal line.
    if (const QueryId qid = CurrentQueryId(); qid.valid()) {
      event_.args.emplace_back("qid", "\"" + RenderQueryId(qid) + "\"");
    }
  }
  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    event_.duration_ns = MonotonicNowNs() - event_.start_ns;
    tracer_->Record(std::move(event_));
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool enabled() const { return tracer_ != nullptr; }

  void Arg(const std::string& key, const std::string& value);
  void Arg(const std::string& key, const char* value);
  void Arg(const std::string& key, uint64_t value);
  void Arg(const std::string& key, double value);
  void Arg(const std::string& key, bool value);

 private:
  Tracer* tracer_;
  TraceEvent event_;
};

}  // namespace scalein::obs

#endif  // SCALEIN_OBS_TRACE_H_
