#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace scalein::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace scalein::obs
