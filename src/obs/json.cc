#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace scalein::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->kind == Kind::kNumber) ? v->number : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->kind == Kind::kString) ? v->string : fallback;
}

bool JsonValue::BoolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->kind == Kind::kBool) ? v->boolean : fallback;
}

namespace {

/// Recursive-descent parser over a bounded cursor. Depth-capped so a
/// malicious dump cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    SI_RETURN_IF_ERROR(ParseValue(&root, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return root;
  }

 private:
  static constexpr size_t kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      SI_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      SI_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      SI_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // Encode as UTF-8 (surrogate pairs are not recombined — the
          // library's own emitters only produce \u00XX control escapes).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseKeyword(JsonValue* out) {
    auto match = [&](std::string_view kw) {
      if (text_.substr(pos_, kw.size()) != kw) return false;
      pos_ += kw.size();
      return true;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Status::OK();
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Status::OK();
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    return Error("unknown keyword");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace scalein::obs
