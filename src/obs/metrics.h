#ifndef SCALEIN_OBS_METRICS_H_
#define SCALEIN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace scalein::obs {

/// Monotonically increasing counter (e.g. queries executed, tuples fetched).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. relation sizes, budget left).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// The one bucket-placement rule: the index of the first edge in `edges`
/// (ascending, inclusive upper bounds) that covers `value`, or edges.size()
/// for the implicit +inf overflow bucket. Histogram::Observe and the
/// workload aggregator's plain-vector histograms both place through this
/// helper, so online metrics and offline reports can never disagree on
/// which bucket an observation landed in.
size_t HistogramBucketIndex(const std::vector<double>& edges, double value);

/// Fixed-bucket histogram: `upper_bounds` are inclusive bucket upper edges
/// in ascending order, with an implicit final +inf bucket. Observations also
/// feed a running count and sum, so means are recoverable from a snapshot.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts; one longer than `upper_bounds()` (+inf bucket last).
  std::vector<uint64_t> bucket_counts() const;

 private:
  std::vector<double> upper_bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Power-of-ten latency edges in milliseconds (1µs .. 10s), the default for
/// query-latency histograms.
std::vector<double> DefaultLatencyBucketsMs();

/// Named metric container. Instruments are created on first use and live for
/// the registry's lifetime (pointers stay valid), so hot paths can resolve a
/// metric once and increment a raw pointer afterwards. Scopes: construct one
/// per component/evaluation for isolated accounting, or use `Global()` for
/// process-wide totals. All methods are thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// The counter named `name` if it already exists, else nullptr. Read-only
  /// probes (e.g. the shard advisor's hot-relation scan) use this so probing
  /// never mints empty metrics.
  const Counter* FindCounter(const std::string& name) const;
  /// First call fixes the bucket layout; later calls with a different layout
  /// return the existing histogram unchanged.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = {});

  /// JSON snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  ///  buckets:[{le,count},...]}}} — keys sorted, so output is deterministic.
  std::string ToJson() const;

  /// Prometheus text exposition format (version 0.0.4): every metric gets a
  /// `# HELP x <original dotted name>` line (the registry's dotted name is
  /// the description — it survives sanitization, so a scraper can map the
  /// series back to `stats` output) followed by `# TYPE`; counters as
  /// `# TYPE x counter`, gauges as gauge, histograms as the conventional
  /// `x_bucket{le="..."}` series with *cumulative* bucket counts plus
  /// `x_sum`/`x_count` (`le="+Inf"` last). Metric names are sanitized ('.'
  /// and any other non-[a-zA-Z0-9_:] byte become '_') since the registry's
  /// dotted names are not legal Prometheus identifiers. Deterministic (keys
  /// sorted).
  std::string ToPrometheusText() const;

  /// Process-wide registry.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII latency probe: observes elapsed milliseconds into a histogram on
/// destruction (no-op when `histogram` is nullptr).
class ScopedLatencyMs {
 public:
  explicit ScopedLatencyMs(Histogram* histogram);
  ~ScopedLatencyMs();
  ScopedLatencyMs(const ScopedLatencyMs&) = delete;
  ScopedLatencyMs& operator=(const ScopedLatencyMs&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_ = 0;
};

}  // namespace scalein::obs

#endif  // SCALEIN_OBS_METRICS_H_
