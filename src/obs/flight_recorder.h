#ifndef SCALEIN_OBS_FLIGHT_RECORDER_H_
#define SCALEIN_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// Compile-time kill switch for the flight recorder. Building with
/// -DSCALEIN_OBS_ENABLE_RECORDER=0 turns every RecordFlightEvent call into a
/// no-op (FlightRecorderEnabled() becomes a compile-time false, so event
/// construction is dead code) — such a build is fetch-count-identical to a
/// recorder-on build because observation never touches accounting.
#ifndef SCALEIN_OBS_ENABLE_RECORDER
#define SCALEIN_OBS_ENABLE_RECORDER 1
#endif

namespace scalein::obs {

/// What happened. One enumerator per structured event the engines append;
/// the dump format and scripts/trace_report.py key off the names.
enum class EventKind {
  kShellCommand,      ///< one shell line dispatched (label = command word)
  kQueryStart,        ///< an engine began evaluating a query
  kQueryFinish,       ///< an engine finished (args: fetched, bound, tripped)
  kPlan,              ///< a plan was built (label = plan fingerprint)
  kChaseStep,         ///< one embedded-chase step (Proposition 4.5)
  kMaintenanceStep,   ///< one incremental/view maintenance batch
  kGovernorTrip,      ///< a resource limit fired (label = trip description)
  kFailpointFire,     ///< an armed failpoint fired (label = site)
  kSlowQuery,         ///< latency exceeded the slow-query threshold gauge
  kCertificate,       ///< an access certificate was sealed (label = verdict)
  kAdvisorSearch,     ///< an advisor design search completed
  kQdsiDecision,      ///< a §3 decision procedure returned
  kWitnessSearch,     ///< a witness search completed
  kViewRefresh,       ///< a view extent was recomputed from scratch
  kMetricsDump,       ///< a metrics snapshot was appended to a dump file
  kOpOpen,            ///< a physical operator was (re)opened (label = op)
  kOpNext,            ///< one operator next-batch (every 256 rows produced)
  kOpClose,           ///< an operator stream was exhausted
  kServePhase,        ///< one served request's lifecycle record (label =
                      ///< final admission action; "flush" for the port's
                      ///< response-write phase)
};

/// Canonical kebab-case name ("query-start", "governor-trip", ...).
const char* EventKindName(EventKind kind);

/// Numeric argument for the allocation-free append path. `key` must be a
/// string literal (only the pointer is stored); the value is rendered to
/// JSON at dump time, so recording one costs a 16-byte copy.
struct NumArg {
  const char* key;
  double value;
};

/// One recorded event. `args` values are pre-rendered JSON fragments (quoted
/// strings or bare numbers), exactly like TraceEvent, so dumping is a pure
/// concatenation. `nums` carries numeric args from the compact append path —
/// both render into the same "args" JSON object. `seq` is assigned by the
/// recorder and survives eviction gaps: consumers can tell "events 12..17
/// were dropped" from the sequence. `qid_session`/`qid_seq` are the
/// CurrentQueryId() at append time (obs/correlation.h) — zero `qid_seq`
/// means "no query in flight" and renders as no "query_id" field at all, so
/// unstamped streams keep their exact historical bytes.
struct FlightEvent {
  static constexpr size_t kMaxNums = 4;

  uint64_t seq = 0;
  uint64_t t_ns = 0;
  EventKind kind = EventKind::kShellCommand;
  std::string label;
  std::vector<std::pair<std::string, std::string>> args;
  NumArg nums[kMaxNums] = {};
  uint32_t num_count = 0;
  uint64_t qid_session = 0;
  uint64_t qid_seq = 0;
};

/// Pre-rendered argument builders (string values are escaped and quoted).
std::pair<std::string, std::string> EventArg(std::string key,
                                             std::string_view value);
std::pair<std::string, std::string> EventArg(std::string key,
                                             const char* value);
std::pair<std::string, std::string> EventArg(std::string key, uint64_t value);
std::pair<std::string, std::string> EventArg(std::string key, double value);
std::pair<std::string, std::string> EventArg(std::string key, bool value);

/// Always-on, fixed-size ring buffer of structured engine events — a flight
/// recorder in the avionics sense: cheap enough to leave running, sized so a
/// post-mortem dump shows the last few thousand things every engine did.
///
/// Follows the tracer's enablement contract: engines append through
/// `RecordFlightEvent`, which is a single predicted branch while no recorder
/// is installed (`Global()` is nullptr, the default). Appending never
/// touches the ExecContext fetch counters, so recorded and unrecorded runs
/// are fetch-count-identical by construction.
///
/// When the ring is full the oldest event is evicted (strict FIFO);
/// `dropped()` counts evictions so a dump can say how much history was lost.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  static constexpr size_t kDefaultCapacity = 4096;

  void Append(EventKind kind, std::string label,
              std::vector<std::pair<std::string, std::string>> args = {});

  /// Allocation-free append for µs-scale hot paths (the plain bounded
  /// evaluator): `label` should be a short literal (<= 15 chars stays in the
  /// small-string buffer) and at most FlightEvent::kMaxNums numeric args are
  /// kept. No strings are built; values render to JSON only at dump time.
  void AppendCompact(EventKind kind, const char* label,
                     std::initializer_list<NumArg> nums = {});

  /// Snapshot oldest → newest (copy; the recorder keeps recording).
  std::vector<FlightEvent> events() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Total events ever appended / evicted since construction or Clear().
  uint64_t total_appended() const;
  uint64_t dropped() const;
  void Clear();

  /// Overrides the event clock (monotonic ns by default) with a caller
  /// function — the hook that makes dump bytes deterministic in tests.
  /// Pass nullptr to restore the monotonic clock.
  void set_clock(uint64_t (*clock)());

  /// {"capacity":...,"appended":...,"dropped":...,"events":[{"seq":...,
  ///  "t_ns":...,"kind":"...","label":"...","args":{...}},...]} — stable
  /// field order, so output is deterministic given a fixed clock.
  std::string ToJson() const;

  /// Process-wide recorder; nullptr (recording disabled) until installed.
  static FlightRecorder* Global();
  /// Installs `recorder` as the process-wide sink (nullptr disables again)
  /// and hooks the failpoint registry so armed-failpoint fires are recorded.
  /// Not synchronized against concurrent appends; install at startup.
  static void InstallGlobal(FlightRecorder* recorder);

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  std::vector<FlightEvent> ring_;  ///< ring_[seq % capacity_] once saturated
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
  uint64_t (*clock_)() = nullptr;
};

/// One predicted branch while no recorder is installed; compile-time false
/// when the recorder is compiled out. Guard event construction with this so
/// the disabled path never builds labels or args.
inline bool FlightRecorderEnabled() {
#if SCALEIN_OBS_ENABLE_RECORDER
  return FlightRecorder::Global() != nullptr;
#else
  return false;
#endif
}

/// Appends to the global recorder when one is installed; no-op otherwise.
inline void RecordFlightEvent(
    EventKind kind, std::string label,
    std::vector<std::pair<std::string, std::string>> args = {}) {
#if SCALEIN_OBS_ENABLE_RECORDER
  FlightRecorder* recorder = FlightRecorder::Global();
  if (recorder != nullptr) {
    recorder->Append(kind, std::move(label), std::move(args));
  }
#else
  (void)kind;
  (void)label;
  (void)args;
#endif
}

/// Compact variant of RecordFlightEvent: no allocation on the append path.
/// For events emitted from per-query hot loops, where the generic arg
/// builders' string work would show up against the 3% observation budget.
inline void RecordFlightNums(EventKind kind, const char* label,
                             std::initializer_list<NumArg> nums = {}) {
#if SCALEIN_OBS_ENABLE_RECORDER
  FlightRecorder* recorder = FlightRecorder::Global();
  if (recorder != nullptr) {
    recorder->AppendCompact(kind, label, nums);
  }
#else
  (void)kind;
  (void)label;
  (void)nums;
#endif
}

/// FNV-1a 64-bit — the fingerprint/signature hash. Not cryptographic: the
/// certificates it signs are tamper-*evident* bookkeeping, not security.
uint64_t Fnv1a64(std::string_view bytes);

/// 16 lowercase hex digits of `value` (zero-padded).
std::string Hex16(uint64_t value);

/// 16-hex-digit fingerprint of a canonical query/plan text.
std::string Fingerprint(std::string_view canonical_text);

}  // namespace scalein::obs

#endif  // SCALEIN_OBS_FLIGHT_RECORDER_H_
