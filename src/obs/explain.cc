#include "obs/explain.h"

#include <cinttypes>
#include <cstdio>

namespace scalein::obs {
namespace {

/// Formats nanoseconds as a human-friendly duration (µs below 1 ms, else ms).
std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  }
  return buf;
}

std::string FormatBound(double bound) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", bound);
  return buf;
}

void RenderNode(const std::vector<exec::OpCounters>& ops,
                const std::vector<std::vector<size_t>>& children, size_t index,
                int depth, const ExplainOptions& options, std::string* out) {
  const exec::OpCounters& op = ops[index];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.label);
  if (options.show_bounds && op.static_bound >= 0) {
    out->append("  bound=").append(FormatBound(op.static_bound));
  }
  out->append("  rows=").append(std::to_string(op.rows_out));
  out->append("  fetched=").append(std::to_string(op.tuples_fetched));
  out->append("  lookups=").append(std::to_string(op.index_lookups));
  const uint64_t total_ns = op.open_ns + op.next_ns;
  if (options.show_timing && total_ns > 0) {
    out->append("  time=").append(FormatNs(total_ns));
  }
  if (options.highlight_op >= 0 && op.id == options.highlight_op) {
    out->append("  <-- tripped");
  }
  out->push_back('\n');
  for (size_t child : children[index]) {
    RenderNode(ops, children, child, depth + 1, options, out);
  }
}

}  // namespace

std::string RenderOpTree(const std::vector<exec::OpCounters>& ops,
                         const ExplainOptions& options) {
  std::string out;
  if (ops.empty()) return out;
  // Build the child lists from parent links. NewOp assigns ids in creation
  // order, so ids equal vector indices and sibling order is creation order.
  std::vector<std::vector<size_t>> children(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    const int32_t parent = ops[i].parent;
    if (parent >= 0 && static_cast<size_t>(parent) < ops.size()) {
      children[static_cast<size_t>(parent)].push_back(i);
    }
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    const int32_t parent = ops[i].parent;
    if (parent < 0 || static_cast<size_t>(parent) >= ops.size()) {
      RenderNode(ops, children, i, 0, options, &out);
    }
  }
  return out;
}

std::string RenderOpTree(const exec::ExecContext& ctx,
                         const ExplainOptions& options) {
  return RenderOpTree(ctx.SnapshotOps(), options);
}

std::string RenderExplainAnalyze(const std::vector<exec::OpCounters>& ops,
                                 uint64_t base_tuples_fetched,
                                 uint64_t index_lookups, double static_bound,
                                 const ExplainOptions& options) {
  std::string out;
  out.append("total: fetched=").append(std::to_string(base_tuples_fetched));
  out.append("  lookups=").append(std::to_string(index_lookups));
  if (static_bound >= 0) {
    out.append("  static_bound=").append(FormatBound(static_bound));
    if (static_bound > 0) {
      char pct[32];
      std::snprintf(pct, sizeof(pct), "%.1f%%",
                    100.0 * static_cast<double>(base_tuples_fetched) /
                        static_bound);
      out.append(" (").append(pct).append(" of bound)");
    }
  }
  out.push_back('\n');
  out.append(RenderOpTree(ops, options));
  return out;
}

std::string RenderExplainAnalyze(const std::vector<exec::OpCounters>& ops,
                                 uint64_t base_tuples_fetched,
                                 uint64_t index_lookups, double static_bound,
                                 const exec::TripInfo& trip,
                                 const ExplainOptions& options) {
  if (!trip.tripped()) {
    return RenderExplainAnalyze(ops, base_tuples_fetched, index_lookups,
                                static_bound, options);
  }
  ExplainOptions tagged = options;
  tagged.highlight_op = trip.op_id;
  std::string out;
  out.append("total: fetched=").append(std::to_string(base_tuples_fetched));
  out.append("  lookups=").append(std::to_string(index_lookups));
  if (static_bound >= 0) {
    out.append("  static_bound=").append(FormatBound(static_bound));
  }
  out.append("  [PARTIAL]\n");
  out.append("tripped: ").append(trip.ToString());
  out.push_back('\n');
  out.append(RenderOpTree(ops, tagged));
  return out;
}

}  // namespace scalein::obs
