#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"
#include "obs/trace.h"
#include "util/check.h"

namespace scalein::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[upper_bounds_.size() + 1]) {
  SI_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) buckets_[i].store(0);
}

size_t HistogramBucketIndex(const std::vector<double>& edges, double value) {
  return static_cast<size_t>(
      std::lower_bound(edges.begin(), edges.end(), value) - edges.begin());
}

void Histogram::Observe(double value) {
  const size_t bucket = HistogramBucketIndex(upper_bounds_, value);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(upper_bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> DefaultLatencyBucketsMs() {
  return {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0};
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    if (upper_bounds.empty()) upper_bounds = DefaultLatencyBucketsMs();
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) +
           "\": " + std::to_string(counter->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out +=
        "    \"" + JsonEscape(name) + "\": " + std::to_string(gauge->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(hist->count()) +
           ", \"sum\": " + JsonNumber(hist->sum()) + ", \"buckets\": [";
    const std::vector<double>& bounds = hist->upper_bounds();
    std::vector<uint64_t> counts = hist->bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) out += ", ";
      out += "{\"le\": ";
      out += i < bounds.size() ? JsonNumber(bounds[i]) : "\"inf\"";
      out += ", \"count\": " + std::to_string(counts[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Dotted registry names
/// ("exec.governor.trips.deadline") map onto underscores.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

/// `le` label value: Prometheus renders bucket edges as floats, +Inf last.
std::string PromLe(double bound) {
  std::string s = JsonNumber(bound);
  return s;
}

/// The HELP line carries the registry's original dotted name: it is the one
/// piece of information sanitization destroys, and it lets a scraper map
/// `serve_e2e_ms_small` back to the `serve.e2e_ms.small` series that
/// `stats` renders. HELP text escapes `\` and newline per the exposition
/// format; dotted names contain neither, but user-supplied relation names
/// inside metric keys may.
std::string PromHelp(const std::string& prom_name, const std::string& name) {
  std::string text;
  for (char c : name) {
    if (c == '\\') {
      text += "\\\\";
    } else if (c == '\n') {
      text += "\\n";
    } else {
      text += c;
    }
  }
  return "# HELP " + prom_name + " scalein metric " + text + "\n";
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string p = PromName(name);
    out += PromHelp(p, name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string p = PromName(name);
    out += PromHelp(p, name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string p = PromName(name);
    out += PromHelp(p, name);
    out += "# TYPE " + p + " histogram\n";
    const std::vector<double>& bounds = hist->upper_bounds();
    std::vector<uint64_t> counts = hist->bucket_counts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      out += p + "_bucket{le=\"";
      out += i < bounds.size() ? PromLe(bounds[i]) : "+Inf";
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += p + "_sum " + JsonNumber(hist->sum()) + "\n";
    out += p + "_count " + std::to_string(hist->count()) + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

ScopedLatencyMs::ScopedLatencyMs(Histogram* histogram)
    : histogram_(histogram) {
  if (histogram_ != nullptr) start_ns_ = MonotonicNowNs();
}

ScopedLatencyMs::~ScopedLatencyMs() {
  if (histogram_ == nullptr) return;
  histogram_->Observe(static_cast<double>(MonotonicNowNs() - start_ns_) /
                      1e6);
}

}  // namespace scalein::obs
