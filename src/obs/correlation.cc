#include "obs/correlation.h"

#include <atomic>
#include <chrono>
#include <cstdlib>

#include "obs/flight_recorder.h"

namespace scalein::obs {
namespace {

// The current query, split across two relaxed atomics. The shell evaluates
// one query at a time and only flips the slot between evaluations, so worker
// threads reading mid-query always see a consistent pair; torn reads could
// only happen across a query boundary, where both halves are being cleared.
std::atomic<uint64_t> g_session{0};
std::atomic<uint64_t> g_seq{0};

uint64_t ComputeSessionFingerprint() {
  if (const char* id = std::getenv("SCALEIN_SESSION_ID");
      id != nullptr && id[0] != '\0') {
    return Fnv1a64(id);
  }
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
  std::string seed = std::to_string(ns) + ":" + std::to_string(std::rand());
  return Fnv1a64(seed);
}

}  // namespace

std::string RenderQueryId(const QueryId& id) {
  if (!id.valid()) return std::string();
  return Hex16(id.session) + "-" + std::to_string(id.seq);
}

uint64_t SessionFingerprint() {
  static const uint64_t fingerprint = ComputeSessionFingerprint();
  return fingerprint;
}

QueryId CurrentQueryId() {
  QueryId id;
  id.session = g_session.load(std::memory_order_relaxed);
  id.seq = g_seq.load(std::memory_order_relaxed);
  return id;
}

void SetCurrentQueryId(const QueryId& id) {
  if (!id.valid()) {
    g_seq.store(0, std::memory_order_relaxed);
    g_session.store(0, std::memory_order_relaxed);
    return;
  }
  g_session.store(id.session, std::memory_order_relaxed);
  g_seq.store(id.seq, std::memory_order_relaxed);
}

}  // namespace scalein::obs
