#include "obs/dump.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "obs/correlation.h"
#include "obs/json.h"

namespace scalein::obs {

std::string RenderDump(std::string_view reason, const FlightRecorder* recorder,
                       const QueryJournal* journal,
                       const MetricsRegistry* metrics) {
  std::string out = "{\"reason\":\"" + JsonEscape(reason) + "\"";
  // A dump taken mid-evaluation (governor trip, failpoint error, signal) is
  // joinable to that query's spans/events/certificate by one id.
  if (const QueryId qid = CurrentQueryId(); qid.valid()) {
    out += ",\"query_id\":\"" + RenderQueryId(qid) + "\"";
  }
  if (recorder != nullptr) out += ",\"recorder\":" + recorder->ToJson();
  if (journal != nullptr) out += ",\"journal\":" + journal->ToJson();
  if (metrics != nullptr) out += ",\"metrics\":" + metrics->ToJson();
  out += "}";
  return out;
}

Status EnsureParentDirs(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path parent = fs::path(path).parent_path();
  if (parent.empty()) return Status::OK();
  std::error_code ec;
  if (fs::exists(parent, ec)) return Status::OK();
  fs::create_directories(parent, ec);
  if (ec) {
    return Status::Internal("cannot create parent directory '" +
                            parent.string() + "' for '" + path +
                            "': " + ec.message());
  }
  return Status::OK();
}

Status WriteTextFile(const std::string& path, std::string_view text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !closed) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Status AppendTextLine(const std::string& path, std::string_view line) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for appending");
  }
  const size_t written = std::fwrite(line.data(), 1, line.size(), f);
  const bool newline_ok = std::fputc('\n', f) != EOF;
  const bool closed = std::fclose(f) == 0;
  if (written != line.size() || !newline_ok || !closed) {
    return Status::Internal("short append to '" + path + "'");
  }
  return Status::OK();
}

Status ParseMetricsDumpSpec(std::string_view spec, std::string* path,
                            double* interval_seconds) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return Status::InvalidArgument(
        "metrics-dump spec '" + std::string(spec) + "' is not <path>:<secs>");
  }
  const std::string secs(spec.substr(colon + 1));
  char* end = nullptr;
  const double interval = std::strtod(secs.c_str(), &end);
  if (end != secs.c_str() + secs.size() || !(interval > 0)) {
    return Status::InvalidArgument("metrics-dump interval '" + secs +
                                   "' is not a positive number of seconds");
  }
  *path = std::string(spec.substr(0, colon));
  *interval_seconds = interval;
  return Status::OK();
}

MetricsDumper::~MetricsDumper() { Stop(); }

Status MetricsDumper::Start(std::string path, double interval_seconds,
                            const MetricsRegistry* registry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return Status::FailedPrecondition("metrics dumper already running");
    }
    if (!(interval_seconds > 0)) {
      return Status::InvalidArgument("metrics-dump interval must be > 0");
    }
    path_ = std::move(path);
    interval_seconds_ = interval_seconds;
    registry_ = registry != nullptr ? registry : &MetricsRegistry::Global();
    stop_requested_ = false;
    snapshots_ = 0;
  }
  // First snapshot synchronously: Start fails loudly on an unwritable path
  // instead of a background thread failing silently forever.
  SI_RETURN_IF_ERROR(WriteSnapshot());
  std::lock_guard<std::mutex> lock(mu_);
  running_ = true;
  thread_ = std::thread(&MetricsDumper::Run, this);
  return Status::OK();
}

void MetricsDumper::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool MetricsDumper::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

uint64_t MetricsDumper::snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_;
}

void MetricsDumper::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    const auto interval = std::chrono::duration<double>(interval_seconds_);
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    (void)WriteSnapshot();  // a transiently unwritable path skips one tick
    lock.lock();
  }
}

namespace {

// MetricsRegistry::ToJson() pretty-prints; a JSONL consumer needs one
// physical line per snapshot. JsonEscape encodes control characters, so
// every raw newline in the rendered document is formatting — drop it and
// the indentation that follows.
std::string FlattenJson(const std::string& pretty) {
  std::string flat;
  flat.reserve(pretty.size());
  for (size_t i = 0; i < pretty.size(); ++i) {
    if (pretty[i] == '\n') {
      while (i + 1 < pretty.size() && pretty[i + 1] == ' ') ++i;
      continue;
    }
    flat += pretty[i];
  }
  return flat;
}

}  // namespace

Status MetricsDumper::WriteSnapshot() {
  const MetricsRegistry* registry;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry = registry_;
    path = path_;
  }
  SI_RETURN_IF_ERROR(AppendTextLine(path, FlattenJson(registry->ToJson())));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++snapshots_;
  }
  RecordFlightEvent(EventKind::kMetricsDump, path);
  return Status::OK();
}

namespace {

struct PostMortemState {
  std::mutex mu;
  bool armed = false;
  std::string path;
  const FlightRecorder* recorder = nullptr;
  const QueryJournal* journal = nullptr;
  const MetricsRegistry* metrics = nullptr;
};

PostMortemState& GlobalPostMortem() {
  static PostMortemState* state = new PostMortemState();
  return *state;
}

}  // namespace

void ArmPostMortem(std::string path, const FlightRecorder* recorder,
                   const QueryJournal* journal,
                   const MetricsRegistry* metrics) {
  PostMortemState& state = GlobalPostMortem();
  std::lock_guard<std::mutex> lock(state.mu);
  state.armed = true;
  state.path = std::move(path);
  state.recorder = recorder;
  state.journal = journal;
  state.metrics = metrics;
}

void DisarmPostMortem() {
  PostMortemState& state = GlobalPostMortem();
  std::lock_guard<std::mutex> lock(state.mu);
  state.armed = false;
  state.recorder = nullptr;
  state.journal = nullptr;
  state.metrics = nullptr;
}

bool PostMortemArmed() {
  PostMortemState& state = GlobalPostMortem();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.armed;
}

Status WritePostMortemStatus(std::string_view reason) {
  PostMortemState& state = GlobalPostMortem();
  std::string path;
  const FlightRecorder* recorder;
  const QueryJournal* journal;
  const MetricsRegistry* metrics;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.armed) {
      return Status::FailedPrecondition("post-mortem dump is not armed");
    }
    path = state.path;
    recorder = state.recorder;
    journal = state.journal;
    metrics = state.metrics;
  }
  const std::string dump = RenderDump(reason, recorder, journal, metrics);
  SI_RETURN_IF_ERROR(EnsureParentDirs(path));
  return WriteTextFile(path, dump);
}

bool WritePostMortem(std::string_view reason) {
  return WritePostMortemStatus(reason).ok();
}

}  // namespace scalein::obs
