#include "relational/tuple.h"

namespace scalein {

uint64_t HashTuple(TupleView t) {
  uint64_t h = 0x243f6a8885a308d3ULL;
  for (const Value& v : t) h = HashCombine(h, v.Hash());
  return h;
}

bool TupleEquals(TupleView a, TupleView b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

bool TupleLess(TupleView a, TupleView b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

std::string TupleToString(TupleView t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

Tuple ToTuple(TupleView t) { return Tuple(t.begin(), t.end()); }

Tuple ProjectTuple(TupleView t, const std::vector<size_t>& positions) {
  Tuple out;
  out.reserve(positions.size());
  for (size_t p : positions) {
    SI_CHECK_LT(p, t.size());
    out.push_back(t[p]);
  }
  return out;
}

}  // namespace scalein
