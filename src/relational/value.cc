#include "relational/value.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace scalein {
namespace {

/// Process-wide append-only string pool. Leaked intentionally: static storage
/// objects must be trivially destructible, so we hold it by pointer.
///
/// Thread-safe since the morsel-parallel execution layer landed: worker lanes
/// compare/render string values (shared lock) while loaders may intern new
/// ones (exclusive lock). Strings live in a deque so the references handed
/// out by Lookup stay stable across later interning.
class StringInterner {
 public:
  static StringInterner& Global() {
    static StringInterner& pool = *new StringInterner();
    return pool;
  }

  int64_t Intern(std::string_view s) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = ids_.find(std::string(s));
      if (it != ids_.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;  // raced with another interner
    int64_t id = static_cast<int64_t>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  const std::string& Lookup(int64_t id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    SI_CHECK_GE(id, 0);
    SI_CHECK_LT(static_cast<size_t>(id), strings_.size());
    return strings_[static_cast<size_t>(id)];
  }

 private:
  mutable std::shared_mutex mu_;
  std::deque<std::string> strings_;
  std::unordered_map<std::string, int64_t> ids_;
};

}  // namespace

Value Value::Str(std::string_view s) {
  return Value(StringInterner::Global().Intern(s), Kind::kString);
}

const std::string& Value::AsString() const {
  SI_CHECK(is_string());
  return StringInterner::Global().Lookup(payload_);
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(payload_);
  return "\"" + AsString() + "\"";
}

bool Value::operator<(const Value& o) const {
  if (kind_ != o.kind_) return kind_ < o.kind_;
  if (is_int()) return payload_ < o.payload_;
  return AsString() < o.AsString();
}

}  // namespace scalein
