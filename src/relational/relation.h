#ifndef SCALEIN_RELATIONAL_RELATION_H_
#define SCALEIN_RELATIONAL_RELATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relational/index.h"
#include "relational/tuple.h"

namespace scalein {

/// A finite relation instance: a *set* of tuples of fixed arity (§2).
///
/// Storage is flat row-major; set semantics are enforced by a full-tuple hash
/// index that is created on first use and maintained incrementally thereafter.
/// Secondary indexes over arbitrary attribute-position subsets (`EnsureIndex`)
/// and projection indexes for embedded access statements
/// (`EnsureProjectionIndex`) are likewise maintained across inserts/removes,
/// so applying a small update to a large indexed relation costs O(|update|),
/// which the incremental-scale-independence benchmarks rely on.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  // Movable, not copyable (indexes can be large); use Clone() to copy.
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Row `i` as a non-owning view; invalidated by any mutation.
  TupleView TupleAt(size_t i) const {
    SI_CHECK_LT(i, num_rows_);
    return TupleView(data_.data() + i * arity_, arity_);
  }

  /// Pre-sizes row storage for `rows` total tuples. Call before bulk loads
  /// to avoid repeated reallocation of the flat data array.
  void Reserve(size_t rows) { data_.reserve(rows * arity_); }

  /// Inserts `t` if not already present; returns true if inserted.
  bool Insert(TupleView t);

  /// Removes `t` if present (swap-remove); returns true if removed.
  bool Remove(TupleView t);

  /// Set membership.
  bool Contains(TupleView t) const;

  /// Ensures a hash index on `positions` exists and returns it. Positions are
  /// canonicalized (sorted + deduplicated) so logically equal indexes are
  /// shared. Const: building an index is a caching concern, not a logical
  /// mutation, and read-only evaluation paths build indexes on demand.
  const HashIndex& EnsureIndex(const std::vector<size_t>& positions) const;

  /// The index on `positions` if it exists, else nullptr.
  const HashIndex* FindIndex(const std::vector<size_t>& positions) const;

  /// Ensures a projection index keyed on `key_positions` returning distinct
  /// projections onto `value_positions`.
  const ProjectionIndex& EnsureProjectionIndex(
      const std::vector<size_t>& key_positions,
      const std::vector<size_t>& value_positions) const;

  const ProjectionIndex* FindProjectionIndex(
      const std::vector<size_t>& key_positions,
      const std::vector<size_t>& value_positions) const;

  /// Deep copy of content (indexes are NOT copied; they rebuild on demand).
  Relation Clone() const;

  /// All tuples, materialized and sorted — canonical form for comparisons.
  std::vector<Tuple> SortedTuples() const;

  /// Set equality with `other`.
  bool SetEquals(const Relation& other) const;

  /// True if every tuple of *this is in `other`.
  bool IsSubsetOf(const Relation& other) const;

  /// Appends every distinct value in this relation to `out`.
  void CollectActiveDomain(std::vector<Value>* out) const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  const HashIndex& FullIndex() const;
  static std::vector<size_t> Canonical(const std::vector<size_t>& positions);

  size_t arity_;
  size_t num_rows_ = 0;
  std::vector<Value> data_;
  // Keyed by canonicalized positions. unique_ptr for pointer stability.
  mutable std::map<std::vector<size_t>, std::unique_ptr<HashIndex>> indexes_;
  mutable std::map<std::pair<std::vector<size_t>, std::vector<size_t>>,
                   std::unique_ptr<ProjectionIndex>>
      projection_indexes_;
};

}  // namespace scalein

#endif  // SCALEIN_RELATIONAL_RELATION_H_
