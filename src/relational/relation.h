#ifndef SCALEIN_RELATIONAL_RELATION_H_
#define SCALEIN_RELATIONAL_RELATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "relational/index.h"
#include "relational/tuple.h"
#include "util/strings.h"

namespace scalein {

/// Hash functor for index descriptors (canonicalized attribute-position
/// vectors). The index registries are probed on every metered index lookup,
/// so they live in hashed containers rather than ordered maps.
struct PositionsHash {
  size_t operator()(const std::vector<size_t>& positions) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (size_t p : positions) h = HashCombine(h, static_cast<uint64_t>(p));
    return static_cast<size_t>(h);
  }
};

struct PositionsPairHash {
  size_t operator()(const std::pair<std::vector<size_t>,
                                    std::vector<size_t>>& key) const {
    PositionsHash h;
    return static_cast<size_t>(
        HashCombine(static_cast<uint64_t>(h(key.first)),
                    static_cast<uint64_t>(h(key.second))));
  }
};

/// A finite relation instance: a *set* of tuples of fixed arity (§2).
///
/// Storage is flat row-major; set semantics are enforced by a full-tuple hash
/// index that is created on first use and maintained incrementally thereafter.
/// Secondary indexes over arbitrary attribute-position subsets (`EnsureIndex`)
/// and projection indexes for embedded access statements
/// (`EnsureProjectionIndex`) are likewise maintained across inserts/removes,
/// so applying a small update to a large indexed relation costs O(|update|),
/// which the incremental-scale-independence benchmarks rely on.
///
/// Sharded mode (`Shard(k)`): the relation additionally maintains hash-sharded
/// indexes (`EnsureShardedIndex`) whose key space is partitioned into k
/// sub-indexes by key hash. Index probes then touch exactly one shard, and
/// shard builds decompose into independent per-shard morsels executed on the
/// worker pool (src/par). Content, set semantics, and plain indexes are
/// unaffected — sharding changes physical layout only.
///
/// Thread-safety: all mutating members (including the const-but-caching
/// Ensure* index builders) require exclusive access. Concurrent readers are
/// safe once the indexes they probe exist — parallel evaluation paths
/// prebuild every index a plan names before fanning out.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  // Movable, not copyable (indexes can be large); use Clone() to copy.
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Row `i` as a non-owning view; invalidated by any mutation.
  TupleView TupleAt(size_t i) const {
    SI_CHECK_LT(i, num_rows_);
    return TupleView(data_.data() + i * arity_, arity_);
  }

  /// Pre-sizes row storage for `rows` total tuples. Call before bulk loads
  /// to avoid repeated reallocation of the flat data array.
  void Reserve(size_t rows) { data_.reserve(rows * arity_); }

  /// Inserts `t` if not already present; returns true if inserted.
  bool Insert(TupleView t);

  /// Removes `t` if present (swap-remove); returns true if removed.
  bool Remove(TupleView t);

  /// Set membership.
  bool Contains(TupleView t) const;

  /// Ensures a hash index on `positions` exists and returns it. Positions are
  /// canonicalized (sorted + deduplicated) so logically equal indexes are
  /// shared. Const: building an index is a caching concern, not a logical
  /// mutation, and read-only evaluation paths build indexes on demand.
  const HashIndex& EnsureIndex(const std::vector<size_t>& positions) const;

  /// The index on `positions` if it exists, else nullptr.
  const HashIndex* FindIndex(const std::vector<size_t>& positions) const;

  /// Ensures a projection index keyed on `key_positions` returning distinct
  /// projections onto `value_positions`.
  const ProjectionIndex& EnsureProjectionIndex(
      const std::vector<size_t>& key_positions,
      const std::vector<size_t>& value_positions) const;

  const ProjectionIndex* FindProjectionIndex(
      const std::vector<size_t>& key_positions,
      const std::vector<size_t>& value_positions) const;

  // --- Sharding (morsel-parallel physical layout) ---

  /// Enables hash-sharded index mode with `num_shards` shards (>= 2), or
  /// disables it (0 or 1). Existing sharded indexes are dropped and rebuild
  /// on demand with the new shard count; plain indexes are untouched.
  void Shard(size_t num_shards);

  /// Number of index shards; 0 when sharding is disabled.
  size_t num_shards() const { return num_shards_; }

  /// Ensures a sharded hash index on `positions` (canonicalized); requires
  /// `num_shards() >= 2`. The per-shard builds run as morsels on the global
  /// worker pool.
  const ShardedHashIndex& EnsureShardedIndex(
      const std::vector<size_t>& positions) const;

  const ShardedHashIndex* FindShardedIndex(
      const std::vector<size_t>& positions) const;

  /// Sorted + deduplicated copy of `positions` — the canonical index
  /// descriptor every index registry is keyed by. Exposed so evaluation
  /// plans can compute an index's key layout without forcing a build.
  static std::vector<size_t> CanonicalPositions(
      const std::vector<size_t>& positions);

  /// Deep copy of content (indexes are NOT copied; they rebuild on demand).
  Relation Clone() const;

  /// All tuples, materialized and sorted — canonical form for comparisons.
  std::vector<Tuple> SortedTuples() const;

  /// Set equality with `other`.
  bool SetEquals(const Relation& other) const;

  /// True if every tuple of *this is in `other`.
  bool IsSubsetOf(const Relation& other) const;

  /// Appends every distinct value in this relation to `out`.
  void CollectActiveDomain(std::vector<Value>* out) const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  const HashIndex& FullIndex() const;

  size_t arity_;
  size_t num_rows_ = 0;
  size_t num_shards_ = 0;
  std::vector<Value> data_;
  // Keyed by canonicalized positions. unique_ptr for pointer stability.
  mutable std::unordered_map<std::vector<size_t>, std::unique_ptr<HashIndex>,
                             PositionsHash>
      indexes_;
  mutable std::unordered_map<std::vector<size_t>,
                             std::unique_ptr<ShardedHashIndex>, PositionsHash>
      sharded_indexes_;
  mutable std::unordered_map<
      std::pair<std::vector<size_t>, std::vector<size_t>>,
      std::unique_ptr<ProjectionIndex>, PositionsPairHash>
      projection_indexes_;
};

}  // namespace scalein

#endif  // SCALEIN_RELATIONAL_RELATION_H_
