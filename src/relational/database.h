#ifndef SCALEIN_RELATIONAL_DATABASE_H_
#define SCALEIN_RELATIONAL_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "relational/relation.h"
#include "relational/schema.h"

namespace scalein {

/// A database instance D of a relational schema R (§2): one Relation per
/// declared relation name. |D| is the total number of tuples across
/// relations, the size measure used throughout the paper.
class Database {
 public:
  /// Creates an empty instance of `schema`.
  explicit Database(Schema schema);

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const Schema& schema() const { return schema_; }

  /// Mutable access to relation `name`; aborts if unknown (programmer error).
  Relation& relation(const std::string& name);
  const Relation& relation(const std::string& name) const;

  /// Relation pointer or nullptr.
  const Relation* FindRelation(const std::string& name) const;

  /// Inserts a tuple into `rel`; returns true if newly inserted.
  bool Insert(const std::string& rel, TupleView t) {
    return relation(rel).Insert(t);
  }
  /// Removes a tuple from `rel`; returns true if it was present.
  bool Remove(const std::string& rel, TupleView t) {
    return relation(rel).Remove(t);
  }

  /// |D|: total tuples over all relations.
  size_t TotalTuples() const;

  /// adom(D): distinct values occurring anywhere in D, sorted.
  std::vector<Value> ActiveDomain() const;

  /// Deep copy (indexes rebuild on demand in the copy).
  Database Clone() const;

  /// Set equality of every relation.
  bool Equals(const Database& other) const;

  /// True iff every relation of *this is a subset of `other`'s.
  bool IsSubsetOf(const Database& other) const;

  std::string ToString(size_t max_rows_per_relation = 20) const;

 private:
  Schema schema_;
  std::unordered_map<std::string, Relation> relations_;
};

}  // namespace scalein

#endif  // SCALEIN_RELATIONAL_DATABASE_H_
