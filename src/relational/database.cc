#include "relational/database.h"

#include <algorithm>

namespace scalein {

Database::Database(Schema schema) : schema_(std::move(schema)) {
  for (const RelationSchema& r : schema_.relations()) {
    relations_.emplace(r.name(), Relation(r.arity()));
  }
}

Relation& Database::relation(const std::string& name) {
  auto it = relations_.find(name);
  SI_CHECK_MSG(it != relations_.end(), name.c_str());
  return it->second;
}

const Relation& Database::relation(const std::string& name) const {
  auto it = relations_.find(name);
  SI_CHECK_MSG(it != relations_.end(), name.c_str());
  return it->second;
}

const Relation* Database::FindRelation(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel.size();
  return total;
}

std::vector<Value> Database::ActiveDomain() const {
  std::vector<Value> values;
  for (const auto& [name, rel] : relations_) rel.CollectActiveDomain(&values);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

Database Database::Clone() const {
  Database copy(schema_);
  for (const auto& [name, rel] : relations_) {
    copy.relations_.at(name) = rel.Clone();
  }
  return copy;
}

bool Database::Equals(const Database& other) const {
  if (relations_.size() != other.relations_.size()) return false;
  for (const auto& [name, rel] : relations_) {
    const Relation* o = other.FindRelation(name);
    if (o == nullptr || !rel.SetEquals(*o)) return false;
  }
  return true;
}

bool Database::IsSubsetOf(const Database& other) const {
  for (const auto& [name, rel] : relations_) {
    const Relation* o = other.FindRelation(name);
    if (o == nullptr) {
      if (!rel.empty()) return false;
      continue;
    }
    if (!rel.IsSubsetOf(*o)) return false;
  }
  return true;
}

std::string Database::ToString(size_t max_rows_per_relation) const {
  std::string out;
  for (const RelationSchema& rs : schema_.relations()) {
    out += rs.name();
    out += " = ";
    out += relation(rs.name()).ToString(max_rows_per_relation);
    out += "\n";
  }
  return out;
}

}  // namespace scalein
