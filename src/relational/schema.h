#ifndef SCALEIN_RELATIONAL_SCHEMA_H_
#define SCALEIN_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace scalein {

/// Schema of one relation: a name plus an ordered list of attribute names
/// (e.g., person(id, name, city)). Attribute names are unique within a
/// relation.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<std::string> attributes);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  /// Position of `attribute`, or nullopt if absent.
  std::optional<size_t> AttributePosition(const std::string& attribute) const;

  /// Positions of each of `attrs`; error if any is unknown.
  Result<std::vector<size_t>> AttributePositions(
      const std::vector<std::string>& attrs) const;

  /// "name(a1, a2, ...)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::string> attributes_;
  std::unordered_map<std::string, size_t> positions_;
};

/// A relational schema R = (R1, ..., Rn) (§2): the catalog of relation
/// schemas a database instantiates.
class Schema {
 public:
  Schema() = default;

  /// Registers a relation; error if the name is already taken.
  Status AddRelation(RelationSchema relation);

  /// Convenience: AddRelation(RelationSchema(name, attrs)) that aborts on
  /// duplicates; for inline schema literals in tests and examples.
  Schema& Relation(const std::string& name,
                   const std::vector<std::string>& attrs);

  bool HasRelation(const std::string& name) const;

  /// Schema of `name`; error if absent.
  Result<RelationSchema> GetRelation(const std::string& name) const;

  /// Pointer into the catalog, or nullptr if absent. Stable across
  /// AddRelation calls is NOT guaranteed; do not retain.
  const RelationSchema* FindRelation(const std::string& name) const;

  const std::vector<RelationSchema>& relations() const { return relations_; }

  std::string ToString() const;

 private:
  std::vector<RelationSchema> relations_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace scalein

#endif  // SCALEIN_RELATIONAL_SCHEMA_H_
