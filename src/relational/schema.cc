#include "relational/schema.h"

#include "util/strings.h"

namespace scalein {

RelationSchema::RelationSchema(std::string name,
                               std::vector<std::string> attributes)
    : name_(std::move(name)), attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    auto [it, inserted] = positions_.emplace(attributes_[i], i);
    (void)it;
    SI_CHECK_MSG(inserted, "duplicate attribute name in relation schema");
  }
}

std::optional<size_t> RelationSchema::AttributePosition(
    const std::string& attribute) const {
  auto it = positions_.find(attribute);
  if (it == positions_.end()) return std::nullopt;
  return it->second;
}

Result<std::vector<size_t>> RelationSchema::AttributePositions(
    const std::vector<std::string>& attrs) const {
  std::vector<size_t> out;
  out.reserve(attrs.size());
  for (const std::string& a : attrs) {
    std::optional<size_t> p = AttributePosition(a);
    if (!p.has_value()) {
      return Status::NotFound("attribute '" + a + "' not in relation '" +
                              name_ + "'");
    }
    out.push_back(*p);
  }
  return out;
}

std::string RelationSchema::ToString() const {
  return name_ + "(" + Join(attributes_, ", ") + ")";
}

Status Schema::AddRelation(RelationSchema relation) {
  auto [it, inserted] = by_name_.emplace(relation.name(), relations_.size());
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("relation '" + relation.name() +
                                 "' already declared");
  }
  relations_.push_back(std::move(relation));
  return Status::OK();
}

Schema& Schema::Relation(const std::string& name,
                         const std::vector<std::string>& attrs) {
  Status s = AddRelation(RelationSchema(name, attrs));
  SI_CHECK_MSG(s.ok(), s.message().c_str());
  return *this;
}

bool Schema::HasRelation(const std::string& name) const {
  return by_name_.count(name) > 0;
}

Result<RelationSchema> Schema::GetRelation(const std::string& name) const {
  const RelationSchema* r = FindRelation(name);
  if (r == nullptr) return Status::NotFound("relation '" + name + "' unknown");
  return *r;
}

const RelationSchema* Schema::FindRelation(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return &relations_[it->second];
}

std::string Schema::ToString() const {
  std::string out;
  for (const RelationSchema& r : relations_) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace scalein
