#ifndef SCALEIN_RELATIONAL_INDEX_H_
#define SCALEIN_RELATIONAL_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "relational/tuple.h"

namespace scalein {

/// Exact-match hash index over a subset of a relation's attribute positions.
///
/// This is the physical realization of an access-schema entry (R, X, N, T):
/// given values ā for X, `Lookup` returns the row ids of σ_{X=ā}(R) in O(1)
/// expected time (the paper's retrieval-time guarantee T). The index is
/// maintained incrementally by the owning Relation on insert/remove.
class HashIndex {
 public:
  /// `positions`: attribute positions forming the key, in key order.
  explicit HashIndex(std::vector<size_t> positions)
      : positions_(std::move(positions)) {}

  const std::vector<size_t>& positions() const { return positions_; }

  /// Row ids whose key equals `key` (values in `positions()` order), or
  /// nullptr when no row matches. Accepts any tuple representation without
  /// materializing (transparent lookup).
  const std::vector<uint32_t>* Lookup(TupleView key) const {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) return nullptr;
    return &it->second;
  }

  /// Number of distinct key values present.
  size_t NumKeys() const { return buckets_.size(); }

  /// Pre-sizes the bucket table for an upper bound of `rows` distinct keys.
  /// Call before bulk builds (EnsureIndex, Relation::Shard) so loading a
  /// large relation is one allocation instead of a rehash storm.
  void ReserveRows(size_t rows) { buckets_.reserve(rows); }

  /// Size of the largest bucket: the empirical N of (R, X, N, T).
  size_t MaxBucketSize() const;

  /// Extracts this index's key from a full row.
  Tuple KeyOf(TupleView row) const { return ProjectTuple(row, positions_); }

  // Maintenance hooks, called by Relation.
  void AddRow(TupleView row, uint32_t row_id);
  void RemoveRow(TupleView row, uint32_t row_id);
  /// Re-points the entry for `row` from `old_id` to `new_id` (swap-remove).
  void MoveRow(TupleView row, uint32_t old_id, uint32_t new_id);

 private:
  /// Projects `row` onto the key positions into a reused buffer, so the
  /// maintenance hooks don't allocate a fresh key per maintained index on
  /// every insert/remove.
  const Tuple& ScratchKey(TupleView row) const;

  std::vector<size_t> positions_;
  std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash, TupleEq> buckets_;
  mutable Tuple scratch_;
};

/// Hash-sharded variant of HashIndex: the key space is partitioned into
/// `num_shards` sub-indexes by the key's hash, so a probe touches exactly one
/// shard and shard builds/scans decompose into independent morsels for the
/// worker pool (src/par). Lookup answers and maintenance semantics are
/// identical to a single HashIndex on the same positions — sharding is a
/// physical layout choice, invisible to accounting.
class ShardedHashIndex {
 public:
  /// `positions` must be canonical (sorted, deduplicated); `num_shards` >= 1.
  ShardedHashIndex(std::vector<size_t> positions, size_t num_shards);

  const std::vector<size_t>& positions() const { return positions_; }
  size_t num_shards() const { return shards_.size(); }

  /// The shard a key (values in `positions()` order) routes to.
  size_t ShardOf(TupleView key) const {
    return static_cast<size_t>(HashTuple(key) % shards_.size());
  }

  /// Same contract as HashIndex::Lookup; probes only the owning shard.
  const std::vector<uint32_t>* Lookup(TupleView key) const {
    return shards_[ShardOf(key)].Lookup(key);
  }

  /// Direct shard access, for per-shard morsel builds and stats.
  HashIndex& shard(size_t s) { return shards_[s]; }
  const HashIndex& shard(size_t s) const { return shards_[s]; }

  size_t NumKeys() const;        ///< total distinct keys across shards
  size_t MaxBucketSize() const;  ///< max bucket across shards (empirical N)

  // Maintenance hooks, called by Relation; each routes by the row's key.
  void AddRow(TupleView row, uint32_t row_id);
  void RemoveRow(TupleView row, uint32_t row_id);
  void MoveRow(TupleView row, uint32_t old_id, uint32_t new_id);

 private:
  /// Shard owning `row`'s key (projected into a reused scratch buffer).
  size_t ShardOfRow(TupleView row) const;

  std::vector<size_t> positions_;
  std::vector<HashIndex> shards_;
  mutable Tuple scratch_;
};

/// Index supporting embedded access-schema statements (R, X[Y], N, T):
/// given values ā for X, enumerates the *distinct* tuples of π_Y(σ_{X=ā}(R)).
///
/// Entries are reference-counted so deletions keep distinctness exact.
class ProjectionIndex {
 public:
  ProjectionIndex(std::vector<size_t> key_positions,
                  std::vector<size_t> value_positions)
      : key_positions_(std::move(key_positions)),
        value_positions_(std::move(value_positions)) {}

  const std::vector<size_t>& key_positions() const { return key_positions_; }
  const std::vector<size_t>& value_positions() const { return value_positions_; }

  /// Distinct Y-projections for key ā; empty when none.
  std::vector<Tuple> Lookup(const Tuple& key) const;

  /// Number of distinct Y-projections for key ā (the quantity the N bound of
  /// an embedded statement constrains).
  size_t GroupSize(const Tuple& key) const;

  /// Largest group across all keys: the empirical N.
  size_t MaxGroupSize() const;

  // Maintenance hooks, called by Relation.
  void AddRow(TupleView row);
  void RemoveRow(TupleView row);

 private:
  using Group = std::unordered_map<Tuple, uint32_t, TupleHash, TupleEq>;
  std::vector<size_t> key_positions_;
  std::vector<size_t> value_positions_;
  std::unordered_map<Tuple, Group, TupleHash, TupleEq> groups_;
};

}  // namespace scalein

#endif  // SCALEIN_RELATIONAL_INDEX_H_
