#include "relational/index.h"

#include <algorithm>

namespace scalein {

size_t HashIndex::MaxBucketSize() const {
  size_t best = 0;
  for (const auto& [key, rows] : buckets_) {
    best = std::max(best, rows.size());
  }
  return best;
}

const Tuple& HashIndex::ScratchKey(TupleView row) const {
  scratch_.resize(positions_.size());
  for (size_t i = 0; i < positions_.size(); ++i) scratch_[i] = row[positions_[i]];
  return scratch_;
}

void HashIndex::AddRow(TupleView row, uint32_t row_id) {
  const Tuple& key = ScratchKey(row);
  auto it = buckets_.find(key);
  if (it == buckets_.end()) {
    buckets_.emplace(key, std::vector<uint32_t>{row_id});
  } else {
    it->second.push_back(row_id);
  }
}

void HashIndex::RemoveRow(TupleView row, uint32_t row_id) {
  auto it = buckets_.find(ScratchKey(row));
  SI_CHECK(it != buckets_.end());
  std::vector<uint32_t>& rows = it->second;
  auto pos = std::find(rows.begin(), rows.end(), row_id);
  SI_CHECK(pos != rows.end());
  *pos = rows.back();
  rows.pop_back();
  if (rows.empty()) buckets_.erase(it);
}

void HashIndex::MoveRow(TupleView row, uint32_t old_id, uint32_t new_id) {
  auto it = buckets_.find(ScratchKey(row));
  SI_CHECK(it != buckets_.end());
  std::vector<uint32_t>& rows = it->second;
  auto pos = std::find(rows.begin(), rows.end(), old_id);
  SI_CHECK(pos != rows.end());
  *pos = new_id;
}

ShardedHashIndex::ShardedHashIndex(std::vector<size_t> positions,
                                   size_t num_shards)
    : positions_(std::move(positions)) {
  SI_CHECK_GE(num_shards, 1u);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) shards_.emplace_back(positions_);
}

size_t ShardedHashIndex::NumKeys() const {
  size_t total = 0;
  for (const HashIndex& shard : shards_) total += shard.NumKeys();
  return total;
}

size_t ShardedHashIndex::MaxBucketSize() const {
  size_t best = 0;
  for (const HashIndex& shard : shards_) {
    best = std::max(best, shard.MaxBucketSize());
  }
  return best;
}

size_t ShardedHashIndex::ShardOfRow(TupleView row) const {
  scratch_.resize(positions_.size());
  for (size_t i = 0; i < positions_.size(); ++i) {
    scratch_[i] = row[positions_[i]];
  }
  return ShardOf(scratch_);
}

void ShardedHashIndex::AddRow(TupleView row, uint32_t row_id) {
  shards_[ShardOfRow(row)].AddRow(row, row_id);
}

void ShardedHashIndex::RemoveRow(TupleView row, uint32_t row_id) {
  shards_[ShardOfRow(row)].RemoveRow(row, row_id);
}

void ShardedHashIndex::MoveRow(TupleView row, uint32_t old_id,
                               uint32_t new_id) {
  shards_[ShardOfRow(row)].MoveRow(row, old_id, new_id);
}

std::vector<Tuple> ProjectionIndex::Lookup(const Tuple& key) const {
  std::vector<Tuple> out;
  auto it = groups_.find(key);
  if (it == groups_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [proj, count] : it->second) {
    (void)count;
    out.push_back(proj);
  }
  return out;
}

size_t ProjectionIndex::GroupSize(const Tuple& key) const {
  auto it = groups_.find(key);
  return it == groups_.end() ? 0 : it->second.size();
}

size_t ProjectionIndex::MaxGroupSize() const {
  size_t best = 0;
  for (const auto& [key, group] : groups_) {
    best = std::max(best, group.size());
  }
  return best;
}

void ProjectionIndex::AddRow(TupleView row) {
  Tuple key = ProjectTuple(row, key_positions_);
  Tuple proj = ProjectTuple(row, value_positions_);
  groups_[std::move(key)][std::move(proj)]++;
}

void ProjectionIndex::RemoveRow(TupleView row) {
  Tuple key = ProjectTuple(row, key_positions_);
  auto git = groups_.find(key);
  SI_CHECK(git != groups_.end());
  Tuple proj = ProjectTuple(row, value_positions_);
  auto pit = git->second.find(proj);
  SI_CHECK(pit != git->second.end());
  if (--pit->second == 0) git->second.erase(pit);
  if (git->second.empty()) groups_.erase(git);
}

}  // namespace scalein
