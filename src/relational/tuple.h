#ifndef SCALEIN_RELATIONAL_TUPLE_H_
#define SCALEIN_RELATIONAL_TUPLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "relational/value.h"

namespace scalein {

/// A tuple is an ordered sequence of values. Relations store tuples in flat
/// row-major storage; `TupleView` is a non-owning window into such storage.
using Tuple = std::vector<Value>;
using TupleView = std::span<const Value>;

/// Hash of a tuple's contents (order-sensitive).
uint64_t HashTuple(TupleView t);

/// Content equality between any two tuple representations.
bool TupleEquals(TupleView a, TupleView b);

/// Lexicographic comparison (shorter tuples first on ties).
bool TupleLess(TupleView a, TupleView b);

/// Renders "(v1, v2, ...)".
std::string TupleToString(TupleView t);

/// Materializes a view into an owning tuple.
Tuple ToTuple(TupleView t);

/// Projects `t` onto `positions` (each must be < t.size()).
Tuple ProjectTuple(TupleView t, const std::vector<size_t>& positions);

/// Transparent (C++20 heterogeneous) hash/equality so hash containers keyed
/// on owning Tuples can be probed with a TupleView — no materialization on
/// the lookup path.
struct TupleHash {
  using is_transparent = void;
  uint64_t operator()(TupleView t) const { return HashTuple(t); }
};
struct TupleEq {
  using is_transparent = void;
  bool operator()(TupleView a, TupleView b) const { return TupleEquals(a, b); }
};

}  // namespace scalein

#endif  // SCALEIN_RELATIONAL_TUPLE_H_
