#ifndef SCALEIN_RELATIONAL_VALUE_H_
#define SCALEIN_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/check.h"
#include "util/strings.h"

namespace scalein {

/// A database constant drawn from the countably infinite domain U of the
/// paper (§2). Two kinds are supported: 64-bit integers and interned strings.
///
/// Values are 16 bytes, trivially copyable, and hash/compare in O(1): string
/// payloads are ids into a process-wide interner, so equality never touches
/// character data. The interner is append-only and leaked at shutdown
/// (Google-style static storage); it takes a shared lock on reads and an
/// exclusive lock on interning, so worker-pool lanes (src/par) can compare
/// and render values concurrently with loads.
class Value {
 public:
  enum class Kind : uint8_t { kInt = 0, kString = 1 };

  /// Default-constructs the integer 0.
  Value() : payload_(0), kind_(Kind::kInt) {}

  /// Creates an integer value.
  static Value Int(int64_t v) { return Value(v, Kind::kInt); }

  /// Creates a string value, interning `s`.
  static Value Str(std::string_view s);

  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// The integer payload; requires `is_int()`.
  int64_t AsInt() const {
    SI_CHECK(is_int());
    return payload_;
  }

  /// The interned string; requires `is_string()`. The reference is stable for
  /// the life of the process.
  const std::string& AsString() const;

  /// Renders the value for display: integers as decimal, strings quoted.
  std::string ToString() const;

  /// Total order: all ints before all strings; ints by value, strings
  /// lexicographically (not by intern id, so ordering is deterministic).
  bool operator<(const Value& o) const;
  bool operator==(const Value& o) const {
    return kind_ == o.kind_ && payload_ == o.payload_;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// O(1) hash suitable for unordered containers.
  uint64_t Hash() const {
    return HashCombine(static_cast<uint64_t>(kind_),
                       static_cast<uint64_t>(payload_) * 0x9e3779b97f4a7c15ULL);
  }

 private:
  Value(int64_t payload, Kind kind) : payload_(payload), kind_(kind) {}

  int64_t payload_;
  Kind kind_;
};

struct ValueHash {
  uint64_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace scalein

#endif  // SCALEIN_RELATIONAL_VALUE_H_
