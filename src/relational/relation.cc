#include "relational/relation.h"

#include <algorithm>

#include "par/worker_pool.h"

namespace scalein {

std::vector<size_t> Relation::CanonicalPositions(
    const std::vector<size_t>& positions) {
  std::vector<size_t> c = positions;
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  return c;
}

const HashIndex& Relation::FullIndex() const {
  std::vector<size_t> all(arity_);
  for (size_t i = 0; i < arity_; ++i) all[i] = i;
  auto it = indexes_.find(all);
  if (it != indexes_.end()) return *it->second;
  auto idx = std::make_unique<HashIndex>(all);
  idx->ReserveRows(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    idx->AddRow(TupleAt(i), static_cast<uint32_t>(i));
  }
  const HashIndex& ref = *idx;
  indexes_.emplace(std::move(all), std::move(idx));
  return ref;
}

bool Relation::Insert(TupleView t) {
  SI_CHECK_EQ(t.size(), arity_);
  if (Contains(t)) return false;
  data_.insert(data_.end(), t.begin(), t.end());
  uint32_t id = static_cast<uint32_t>(num_rows_);
  ++num_rows_;
  TupleView row = TupleAt(id);
  for (auto& [positions, idx] : indexes_) idx->AddRow(row, id);
  for (auto& [positions, sidx] : sharded_indexes_) sidx->AddRow(row, id);
  for (auto& [key, pidx] : projection_indexes_) pidx->AddRow(row);
  return true;
}

bool Relation::Remove(TupleView t) {
  SI_CHECK_EQ(t.size(), arity_);
  const HashIndex& full = FullIndex();
  const std::vector<uint32_t>* rows = full.Lookup(t);
  if (rows == nullptr) return false;
  SI_CHECK_EQ(rows->size(), 1u);  // set semantics
  uint32_t victim = (*rows)[0];
  uint32_t last = static_cast<uint32_t>(num_rows_ - 1);

  Tuple victim_content = ToTuple(TupleAt(victim));
  for (auto& [positions, idx] : indexes_) idx->RemoveRow(victim_content, victim);
  for (auto& [positions, sidx] : sharded_indexes_) {
    sidx->RemoveRow(victim_content, victim);
  }
  for (auto& [key, pidx] : projection_indexes_) pidx->RemoveRow(victim_content);

  if (victim != last) {
    Tuple moved_content = ToTuple(TupleAt(last));
    for (auto& [positions, idx] : indexes_) {
      idx->MoveRow(moved_content, last, victim);
    }
    for (auto& [positions, sidx] : sharded_indexes_) {
      sidx->MoveRow(moved_content, last, victim);
    }
    std::copy(moved_content.begin(), moved_content.end(),
              data_.begin() + victim * arity_);
  }
  data_.resize(data_.size() - arity_);
  --num_rows_;
  return true;
}

bool Relation::Contains(TupleView t) const {
  SI_CHECK_EQ(t.size(), arity_);
  return FullIndex().Lookup(t) != nullptr;
}

const HashIndex& Relation::EnsureIndex(
    const std::vector<size_t>& positions) const {
  std::vector<size_t> c = CanonicalPositions(positions);
  for (size_t p : c) SI_CHECK_LT(p, arity_);
  auto it = indexes_.find(c);
  if (it != indexes_.end()) return *it->second;
  auto idx = std::make_unique<HashIndex>(c);
  idx->ReserveRows(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    idx->AddRow(TupleAt(i), static_cast<uint32_t>(i));
  }
  const HashIndex& ref = *idx;
  indexes_.emplace(std::move(c), std::move(idx));
  return ref;
}

const HashIndex* Relation::FindIndex(
    const std::vector<size_t>& positions) const {
  auto it = indexes_.find(CanonicalPositions(positions));
  return it == indexes_.end() ? nullptr : it->second.get();
}

void Relation::Shard(size_t num_shards) {
  sharded_indexes_.clear();
  num_shards_ = num_shards <= 1 ? 0 : num_shards;
}

const ShardedHashIndex& Relation::EnsureShardedIndex(
    const std::vector<size_t>& positions) const {
  SI_CHECK_GE(num_shards_, 2u);
  std::vector<size_t> c = CanonicalPositions(positions);
  for (size_t p : c) SI_CHECK_LT(p, arity_);
  auto it = sharded_indexes_.find(c);
  if (it != sharded_indexes_.end()) return *it->second;
  auto idx = std::make_unique<ShardedHashIndex>(c, num_shards_);

  // Each shard owns a disjoint slice of the key space, so shard builds are
  // independent morsels: every lane scans all rows but inserts only the rows
  // whose key hashes to its shard.
  for (size_t s = 0; s < num_shards_; ++s) {
    idx->shard(s).ReserveRows(num_rows_ / num_shards_ + 1);
  }
  ShardedHashIndex* raw = idx.get();
  par::WorkerPool::Global().ParallelFor(num_shards_, [&](size_t s) {
    Tuple key;
    key.resize(raw->positions().size());
    for (size_t i = 0; i < num_rows_; ++i) {
      TupleView row = TupleAt(i);
      for (size_t j = 0; j < raw->positions().size(); ++j) {
        key[j] = row[raw->positions()[j]];
      }
      if (raw->ShardOf(key) == s) {
        raw->shard(s).AddRow(row, static_cast<uint32_t>(i));
      }
    }
  });

  const ShardedHashIndex& ref = *idx;
  sharded_indexes_.emplace(std::move(c), std::move(idx));
  return ref;
}

const ShardedHashIndex* Relation::FindShardedIndex(
    const std::vector<size_t>& positions) const {
  auto it = sharded_indexes_.find(CanonicalPositions(positions));
  return it == sharded_indexes_.end() ? nullptr : it->second.get();
}

const ProjectionIndex& Relation::EnsureProjectionIndex(
    const std::vector<size_t>& key_positions,
    const std::vector<size_t>& value_positions) const {
  std::vector<size_t> ck = CanonicalPositions(key_positions);
  std::vector<size_t> cv = CanonicalPositions(value_positions);
  for (size_t p : ck) SI_CHECK_LT(p, arity_);
  for (size_t p : cv) SI_CHECK_LT(p, arity_);
  auto key = std::make_pair(ck, cv);
  auto it = projection_indexes_.find(key);
  if (it != projection_indexes_.end()) return *it->second;
  auto idx = std::make_unique<ProjectionIndex>(ck, cv);
  for (size_t i = 0; i < num_rows_; ++i) idx->AddRow(TupleAt(i));
  const ProjectionIndex& ref = *idx;
  projection_indexes_.emplace(std::move(key), std::move(idx));
  return ref;
}

const ProjectionIndex* Relation::FindProjectionIndex(
    const std::vector<size_t>& key_positions,
    const std::vector<size_t>& value_positions) const {
  auto it = projection_indexes_.find(std::make_pair(
      CanonicalPositions(key_positions), CanonicalPositions(value_positions)));
  return it == projection_indexes_.end() ? nullptr : it->second.get();
}

Relation Relation::Clone() const {
  Relation copy(arity_);
  copy.data_ = data_;
  copy.num_rows_ = num_rows_;
  copy.num_shards_ = num_shards_;
  return copy;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out;
  out.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) out.push_back(ToTuple(TupleAt(i)));
  std::sort(out.begin(), out.end(),
            [](const Tuple& a, const Tuple& b) { return TupleLess(a, b); });
  return out;
}

bool Relation::SetEquals(const Relation& other) const {
  if (arity_ != other.arity_ || num_rows_ != other.num_rows_) return false;
  return IsSubsetOf(other);
}

bool Relation::IsSubsetOf(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  for (size_t i = 0; i < num_rows_; ++i) {
    if (!other.Contains(TupleAt(i))) return false;
  }
  return true;
}

void Relation::CollectActiveDomain(std::vector<Value>* out) const {
  out->insert(out->end(), data_.begin(), data_.end());
}

std::string Relation::ToString(size_t max_rows) const {
  std::string out = "{";
  size_t shown = std::min(num_rows_, max_rows);
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) out += ", ";
    out += TupleToString(TupleAt(i));
  }
  if (shown < num_rows_) {
    out += ", ... (" + std::to_string(num_rows_ - shown) + " more)";
  }
  out += "}";
  return out;
}

}  // namespace scalein
