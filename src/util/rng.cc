#include "util/rng.h"

#include <cmath>

namespace scalein {

uint64_t Rng::Zipf(uint64_t n, double s) {
  SI_CHECK_GT(n, 0u);
  if (s <= 0.0 || n == 1) return Uniform(n);
  // Inverse-CDF sampling of the continuous power law p(x) ∝ x^{-s} truncated
  // to [1, n+1], then floored — a standard Zipf approximation that is exact
  // enough for workload skew and O(1) per draw for every s > 0.
  double u = NextDouble();
  double x;
  if (std::abs(s - 1.0) < 1e-9) {
    x = std::exp(u * std::log(static_cast<double>(n) + 1.0));
  } else {
    double top = std::pow(static_cast<double>(n) + 1.0, 1.0 - s);
    x = std::pow(u * (top - 1.0) + 1.0, 1.0 / (1.0 - s));
  }
  uint64_t rank = static_cast<uint64_t>(x);
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return rank - 1;
}

}  // namespace scalein
