#ifndef SCALEIN_UTIL_STATUS_H_
#define SCALEIN_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace scalein {

/// Error categories used across the library. Mirrors the usual
/// database-library convention (cf. Arrow): a small closed set of codes plus a
/// free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed malformed input (parse errors, bad schema)
  kNotFound,          ///< named relation/attribute/view does not exist
  kAlreadyExists,     ///< duplicate registration
  kFailedPrecondition,///< operation needs state that is absent (e.g., missing index)
  kResourceExhausted, ///< solver/search exceeded its configured budget
  kUnimplemented,     ///< feature intentionally out of scope for the input class
  kInternal,          ///< invariant violation that was recoverable enough to report
  kDeadlineExceeded,  ///< wall-clock deadline passed before completion
  kCancelled,         ///< cooperative cancellation token fired
  kDataLoss,          ///< stored data failed integrity verification
};

/// Returns the canonical lowercase name of a status code ("ok",
/// "invalid-argument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without a value payload.
///
/// The library does not use exceptions; fallible public entry points return
/// `Status` or `Result<T>`. `Status` is cheap to copy in the OK case (empty
/// message string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error holder, the library's replacement for exceptions.
///
/// Usage:
/// ```
/// Result<Formula> parsed = ParseFormula(text);
/// if (!parsed.ok()) return parsed.status();
/// const Formula& f = *parsed;
/// ```
template <typename T>
class Result {
 public:
  /// Implicit from a value: the common success path.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status; aborts if the status is OK (a Result must
  /// hold either a value or an error, never "OK with no value").
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    SI_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Dereference requires `ok()`; aborts otherwise.
  const T& operator*() const& {
    SI_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& operator*() & {
    SI_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T&& operator*() && {
    SI_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(*value_);
  }
  const T* operator->() const {
    SI_CHECK_MSG(ok(), status_.message().c_str());
    return &*value_;
  }
  T* operator->() {
    SI_CHECK_MSG(ok(), status_.message().c_str());
    return &*value_;
  }

  /// Moves the value out; requires `ok()`.
  T ValueOrDie() && {
    SI_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK `Status` from the current function.
#define SI_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::scalein::Status _si_st = (expr);        \
    if (!_si_st.ok()) return _si_st;          \
  } while (0)

/// Evaluates a `Result<T>` expression, propagating the error or binding the
/// value: `SI_ASSIGN_OR_RETURN(auto q, ParseCq(text));`
#define SI_ASSIGN_OR_RETURN(lhs, rexpr)            \
  SI_ASSIGN_OR_RETURN_IMPL_(SI_CONCAT_(_si_res_, __LINE__), lhs, rexpr)
#define SI_ASSIGN_OR_RETURN_IMPL_(res, lhs, rexpr) \
  auto res = (rexpr);                              \
  if (!res.ok()) return res.status();              \
  lhs = std::move(*res)
#define SI_CONCAT_(a, b) SI_CONCAT_IMPL_(a, b)
#define SI_CONCAT_IMPL_(a, b) a##b

}  // namespace scalein

#endif  // SCALEIN_UTIL_STATUS_H_
