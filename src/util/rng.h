#ifndef SCALEIN_UTIL_RNG_H_
#define SCALEIN_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace scalein {

/// Deterministic 64-bit random number generator (splitmix64 + xoshiro256**).
///
/// All workload generators and randomized tests take an explicit seed so runs
/// are reproducible; we avoid std::mt19937 to guarantee identical streams
/// across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, per Vigna's recommendation for xoshiro.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    SI_CHECK_GT(bound, 0u);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SI_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 is uniform).
  /// Uses inverse-CDF over precomputable weights only for small n; for large n
  /// uses the rejection method of Devroye. Suitable for workload skew.
  uint64_t Zipf(uint64_t n, double s);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace scalein

#endif  // SCALEIN_UTIL_RNG_H_
