#include "util/status.h"

namespace scalein {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDataLoss:
      return "data-loss";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace scalein
