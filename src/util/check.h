#ifndef SCALEIN_UTIL_CHECK_H_
#define SCALEIN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Abort-on-failure assertion macros for programmer errors.
///
/// `SI_CHECK` is always on (including release builds): the library follows the
/// Google style of treating contract violations as fatal rather than throwing
/// exceptions. Recoverable conditions (bad user input, solver limits) are
/// reported through `scalein::Status` instead.

#define SI_CHECK(cond)                                                          \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::fprintf(stderr, "SI_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                                      \
      std::abort();                                                             \
    }                                                                           \
  } while (0)

#define SI_CHECK_MSG(cond, msg)                                                  \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::fprintf(stderr, "SI_CHECK failed at %s:%d: %s (%s)\n", __FILE__,      \
                   __LINE__, #cond, msg);                                        \
      std::abort();                                                              \
    }                                                                            \
  } while (0)

#define SI_CHECK_EQ(a, b) SI_CHECK((a) == (b))
#define SI_CHECK_NE(a, b) SI_CHECK((a) != (b))
#define SI_CHECK_LT(a, b) SI_CHECK((a) < (b))
#define SI_CHECK_LE(a, b) SI_CHECK((a) <= (b))
#define SI_CHECK_GT(a, b) SI_CHECK((a) > (b))
#define SI_CHECK_GE(a, b) SI_CHECK((a) >= (b))

#endif  // SCALEIN_UTIL_CHECK_H_
