#ifndef SCALEIN_UTIL_FAILPOINT_H_
#define SCALEIN_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

/// Compile-time kill switch: building with -DSCALEIN_FAILPOINTS_COMPILED=0
/// turns every SCALEIN_FAILPOINT site into `Status::OK()` with no registry
/// reference at all, so release builds can strip the framework entirely.
/// When compiled in (the default), a disarmed registry costs one relaxed
/// atomic load and a predicted branch per site.
#ifndef SCALEIN_FAILPOINTS_COMPILED
#define SCALEIN_FAILPOINTS_COMPILED 1
#endif

namespace scalein::util {

/// What an armed failpoint does when its trigger fires.
enum class FailAction {
  kError,  ///< return Status::Internal("failpoint <site> fired")
  kDelay,  ///< sleep `delay_ms`, then return OK
};

/// How an armed failpoint decides whether a given hit fires.
enum class FailTrigger {
  kAlways,       ///< every hit
  kProbability,  ///< each hit independently with probability `probability`
  kEveryNth,     ///< hits n, 2n, 3n, ... (1-based count)
};

/// One configured injection site.
struct FailpointConfig {
  std::string site;
  FailAction action = FailAction::kError;
  FailTrigger trigger = FailTrigger::kAlways;
  double probability = 1.0;  ///< kProbability: chance in [0, 1]
  uint64_t every_n = 1;      ///< kEveryNth: period
  uint64_t delay_ms = 0;     ///< kDelay: sleep duration
};

/// Named fault-injection sites ("failpoints", after the FreeBSD/TiKV
/// mechanism): engine hot spots call `SCALEIN_FAILPOINT("site")` and
/// propagate the returned Status. Disarmed (the default), a site is a relaxed
/// atomic load; armed, the registry looks the site up by name and applies its
/// configured action.
///
/// Activation is either programmatic (`Configure`, used by the chaos tests)
/// or via the environment (`InitFromEnv` reading SCALEIN_FAILPOINTS, wired
/// into the shell binary). The spec grammar, `;`-separated:
///
///   SCALEIN_FAILPOINTS="index_probe=error(1%);scan_next=delay(2ms);
///                       chase_step=error(every:50);delta_apply=error;seed=7"
///
///   <site>=error            fire on every hit
///   <site>=error(P%)        fire each hit with probability P/100
///   <site>=error(every:N)   fire on every Nth hit (deterministic)
///   <site>=delay(Xms)       sleep X ms on every hit (same (..) triggers ok)
///   seed=<n>                seed for the probability draws (deterministic)
///
/// Probability draws use a per-registry SplitMix64 stream seeded from `seed`
/// (default 0), so a given spec replays identically — randomized chaos
/// schedules are reproducible from (spec, seed) alone.
///
/// Engine sites (grep SCALEIN_FAILPOINT for the authoritative list):
/// storage probes `index_probe`, `scan_next`, `delta_apply`; the §4 chase
/// `chase_step`; and the §3 decision-procedure search loops `qsi_candidate`
/// (one hit per candidate counterexample database), `qdsi_subset` (one hit
/// per candidate subset) and `qdsi_support` (one hit per answer whose
/// supports are gathered). A fault at a §3 site degrades the verdict to
/// kUnknown and surfaces the Status in the decision's `error` field — it
/// never forges a yes/no.
///
/// Thread safety: Configure/Clear must not race with hits (arm before the
/// workload, as the chaos harness does); counters use relaxed atomics.
class Failpoints {
 public:
  /// Process-wide registry used by the SCALEIN_FAILPOINT macro.
  static Failpoints& Global();

  /// True when any site is armed; the macro's fast-path gate.
  static bool armed() {
    return armed_flag_.load(std::memory_order_relaxed);
  }

  /// Parses `spec` and replaces the armed configuration (empty spec = clear).
  Status Configure(const std::string& spec);

  /// Arms from the SCALEIN_FAILPOINTS environment variable; no-op when the
  /// variable is unset or empty. Returns the parse status.
  Status InitFromEnv();

  /// Disarms every site.
  void Clear();

  /// Slow path behind the macro: looks up `site` and applies its action.
  /// Unconfigured sites return OK. Every hit of a configured site is counted
  /// whether or not it fires.
  Status Hit(const char* site);

  /// Total fires (error or delay actions taken) since the last Configure.
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }
  /// Hits on configured sites since the last Configure.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

  /// The currently armed configuration (for tests and diagnostics).
  std::vector<FailpointConfig> configs() const;

  /// Observer invoked on every fire with (site, action name) — how the
  /// flight recorder sees injections without util/ depending on obs/. A
  /// plain function pointer so installation is one relaxed store; nullptr
  /// (the default) disables. Install before arming sites.
  void set_fire_listener(void (*listener)(const char* site,
                                          const char* action)) {
    fire_listener_.store(listener, std::memory_order_relaxed);
  }

 private:
  struct SiteState {
    FailpointConfig config;
    std::atomic<uint64_t> hit_count{0};
  };

  static std::atomic<bool> armed_flag_;

  // Swapped wholesale by Configure; sized at arm time, stable while armed.
  std::vector<std::unique_ptr<SiteState>> sites_;
  std::atomic<uint64_t> rng_state_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fires_{0};
  std::atomic<void (*)(const char*, const char*)> fire_listener_{nullptr};
};

/// Parses a failpoint spec into configs + seed without arming anything
/// (exposed for tests of the grammar).
Status ParseFailpointSpec(const std::string& spec,
                          std::vector<FailpointConfig>* out, uint64_t* seed);

}  // namespace scalein::util

#if SCALEIN_FAILPOINTS_COMPILED
/// Evaluates to the Status of hitting `site` (OK when disarmed/unconfigured).
#define SCALEIN_FAILPOINT(site)                       \
  (::scalein::util::Failpoints::armed()               \
       ? ::scalein::util::Failpoints::Global().Hit(site) \
       : ::scalein::Status::OK())
#else
#define SCALEIN_FAILPOINT(site) (::scalein::Status::OK())
#endif

#endif  // SCALEIN_UTIL_FAILPOINT_H_
