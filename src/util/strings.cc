#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace scalein {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(StripWhitespace(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace scalein
