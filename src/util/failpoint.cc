#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/strings.h"

namespace scalein::util {
namespace {

/// SplitMix64 step: the registry's probability stream. Chosen over util/rng
/// because a single atomic word advances lock-free under concurrent hits.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from one 64-bit draw.
double ToUnit(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

Status ParseOneClause(std::string_view clause, FailpointConfig* out) {
  size_t eq = clause.find('=');
  if (eq == std::string_view::npos) {
    return Status::InvalidArgument("failpoint clause '" + std::string(clause) +
                                   "' is not <site>=<action>");
  }
  out->site = std::string(StripWhitespace(clause.substr(0, eq)));
  if (out->site.empty()) {
    return Status::InvalidArgument("failpoint clause with empty site name");
  }
  std::string_view action = StripWhitespace(clause.substr(eq + 1));

  std::string_view arg;  // inside (...) if present
  size_t paren = action.find('(');
  if (paren != std::string_view::npos) {
    if (action.back() != ')') {
      return Status::InvalidArgument("unbalanced '(' in failpoint action '" +
                                     std::string(action) + "'");
    }
    arg = action.substr(paren + 1, action.size() - paren - 2);
    action = action.substr(0, paren);
  }

  if (action == "error") {
    out->action = FailAction::kError;
  } else if (action == "delay") {
    out->action = FailAction::kDelay;
  } else {
    return Status::InvalidArgument("unknown failpoint action '" +
                                   std::string(action) +
                                   "' (want error|delay)");
  }

  // Default trigger/delay; refined by the argument below.
  out->trigger = FailTrigger::kAlways;
  out->delay_ms = out->action == FailAction::kDelay ? 1 : 0;
  if (arg.empty()) return Status::OK();

  arg = StripWhitespace(arg);
  auto parse_number = [](std::string_view text, double* value) {
    char* end = nullptr;
    std::string owned(text);
    *value = std::strtod(owned.c_str(), &end);
    return end == owned.c_str() + owned.size() && !owned.empty();
  };

  if (arg.substr(0, 6) == "every:") {
    double n = 0;
    if (!parse_number(arg.substr(6), &n) || n < 1) {
      return Status::InvalidArgument("bad every:N in failpoint arg '" +
                                     std::string(arg) + "'");
    }
    out->trigger = FailTrigger::kEveryNth;
    out->every_n = static_cast<uint64_t>(n);
    return Status::OK();
  }
  if (!arg.empty() && arg.back() == '%') {
    double pct = 0;
    if (!parse_number(arg.substr(0, arg.size() - 1), &pct) || pct < 0 ||
        pct > 100) {
      return Status::InvalidArgument("bad percentage in failpoint arg '" +
                                     std::string(arg) + "'");
    }
    out->trigger = FailTrigger::kProbability;
    out->probability = pct / 100.0;
    return Status::OK();
  }
  if (arg.size() > 2 && arg.substr(arg.size() - 2) == "ms") {
    double ms = 0;
    if (!parse_number(arg.substr(0, arg.size() - 2), &ms) || ms < 0) {
      return Status::InvalidArgument("bad duration in failpoint arg '" +
                                     std::string(arg) + "'");
    }
    if (out->action != FailAction::kDelay) {
      return Status::InvalidArgument(
          "duration argument only applies to delay actions");
    }
    out->delay_ms = static_cast<uint64_t>(ms);
    return Status::OK();
  }
  return Status::InvalidArgument("unparseable failpoint arg '" +
                                 std::string(arg) + "'");
}

}  // namespace

Status ParseFailpointSpec(const std::string& spec,
                          std::vector<FailpointConfig>* out, uint64_t* seed) {
  out->clear();
  *seed = 0;
  for (const std::string& piece : Split(spec, ';')) {
    std::string_view clause = StripWhitespace(piece);
    if (clause.empty()) continue;
    if (clause.substr(0, 5) == "seed=") {
      uint64_t s = 0;
      for (char c : clause.substr(5)) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("bad failpoint seed '" +
                                         std::string(clause) + "'");
        }
        s = s * 10 + static_cast<uint64_t>(c - '0');
      }
      *seed = s;
      continue;
    }
    FailpointConfig config;
    SI_RETURN_IF_ERROR(ParseOneClause(clause, &config));
    out->push_back(std::move(config));
  }
  return Status::OK();
}

std::atomic<bool> Failpoints::armed_flag_{false};

Failpoints& Failpoints::Global() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

Status Failpoints::Configure(const std::string& spec) {
  std::vector<FailpointConfig> configs;
  uint64_t seed = 0;
  SI_RETURN_IF_ERROR(ParseFailpointSpec(spec, &configs, &seed));
  armed_flag_.store(false, std::memory_order_relaxed);
  sites_.clear();
  for (FailpointConfig& config : configs) {
    auto state = std::make_unique<SiteState>();
    state->config = std::move(config);
    sites_.push_back(std::move(state));
  }
  rng_state_.store(seed, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  fires_.store(0, std::memory_order_relaxed);
  if (!sites_.empty()) armed_flag_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status Failpoints::InitFromEnv() {
  const char* spec = std::getenv("SCALEIN_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  return Configure(spec);
}

void Failpoints::Clear() {
  armed_flag_.store(false, std::memory_order_relaxed);
  sites_.clear();
}

Status Failpoints::Hit(const char* site) {
  for (const std::unique_ptr<SiteState>& state : sites_) {
    const FailpointConfig& config = state->config;
    if (config.site != site) continue;
    hits_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t count =
        state->hit_count.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    switch (config.trigger) {
      case FailTrigger::kAlways:
        fire = true;
        break;
      case FailTrigger::kEveryNth:
        fire = count % config.every_n == 0;
        break;
      case FailTrigger::kProbability: {
        uint64_t expected = rng_state_.load(std::memory_order_relaxed);
        uint64_t draw;
        uint64_t next;
        do {
          next = expected;
          draw = SplitMix64(&next);
        } while (!rng_state_.compare_exchange_weak(expected, next,
                                                   std::memory_order_relaxed));
        fire = ToUnit(draw) < config.probability;
        break;
      }
    }
    if (!fire) return Status::OK();
    fires_.fetch_add(1, std::memory_order_relaxed);
    if (auto* listener = fire_listener_.load(std::memory_order_relaxed)) {
      listener(site,
               config.action == FailAction::kDelay ? "delay" : "error");
    }
    if (config.action == FailAction::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(config.delay_ms));
      return Status::OK();
    }
    return Status::Internal("failpoint '" + config.site + "' fired");
  }
  return Status::OK();
}

std::vector<FailpointConfig> Failpoints::configs() const {
  std::vector<FailpointConfig> out;
  out.reserve(sites_.size());
  for (const std::unique_ptr<SiteState>& state : sites_) {
    out.push_back(state->config);
  }
  return out;
}

}  // namespace scalein::util
