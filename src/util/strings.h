#ifndef SCALEIN_UTIL_STRINGS_H_
#define SCALEIN_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scalein {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, trimming ASCII whitespace from each piece. Empty
/// pieces are kept (so "a,,b" has three pieces).
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// 64-bit FNV-1a hash, used as the mixing primitive for tuple hashing.
uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL);

/// Combines two 64-bit hashes (boost::hash_combine-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace scalein

#endif  // SCALEIN_UTIL_STRINGS_H_
