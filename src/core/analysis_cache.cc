#include "core/analysis_cache.h"

#include <utility>

#include "exec/compiler.h"
#include "obs/flight_recorder.h"

namespace scalein {
namespace {

/// Entry-local compiled-plan set, created on first request. Must be called
/// under the cache lock (mutates the entry / flight slot).
std::shared_ptr<exec::CompiledPlanSet> EnsureCompiled(
    std::shared_ptr<exec::CompiledPlanSet>* slot) {
  if (*slot == nullptr) *slot = std::make_shared<exec::CompiledPlanSet>();
  return *slot;
}

}  // namespace

AnalysisCache::AnalysisCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

uint64_t AnalysisCache::EnvFingerprint(const Schema& schema,
                                       const AccessSchema& access) {
  // \x1f separates the two texts so moving a character across the boundary
  // cannot alias two distinct environments.
  std::string canon = schema.ToString();
  canon += '\x1f';
  canon += access.ToString();
  return obs::Fnv1a64(canon);
}

uint64_t AnalysisCache::KeyHash(std::string_view key_text) const {
  if (key_hash_override_ != nullptr) return key_hash_override_(key_text);
  return obs::Fnv1a64(key_text);
}

void AnalysisCache::set_key_hash_for_testing(uint64_t (*fn)(std::string_view)) {
  std::lock_guard<std::mutex> lock(mu_);
  key_hash_override_ = fn;
}

void AnalysisCache::set_fill_barrier_for_testing(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  fill_barrier_for_testing_ = std::move(fn);
}

AnalysisCache::Entry* AnalysisCache::LookupLocked(uint64_t hash,
                                                  std::string_view key_text,
                                                  uint64_t env_fp,
                                                  bool* collision) {
  *collision = false;
  auto it = entries_.find(hash);
  if (it == entries_.end()) return nullptr;
  if (it->second.key_text != key_text) {
    // Fingerprint collision: a different query owns this slot. Served as a
    // miss without caching, so the resident entry keeps its slot.
    *collision = true;
    ++stats_.collisions;
    return nullptr;
  }
  if (it->second.env_fp != env_fp) {
    // Schema/access drifted since this entry was derived — its bounds (and
    // AccessStatement pointers) are stale.
    entries_.erase(it);
    ++stats_.invalidations;
    return nullptr;
  }
  it->second.last_used = ++tick_;
  return &it->second;
}

void AnalysisCache::EvictIfNeededLocked() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

void AnalysisCache::InsertLocked(uint64_t hash, std::string key_text,
                                 uint64_t env_fp, Entry&& entry) {
  entry.key_text = std::move(key_text);
  entry.env_fp = env_fp;
  entry.last_used = ++tick_;
  entries_[hash] = std::move(entry);
  EvictIfNeededLocked();
}

Result<std::shared_ptr<const ControllabilityAnalysis>>
AnalysisCache::GetOrAnalyze(
    const Formula& f, std::string_view query_text, const Schema& schema,
    const AccessSchema& access, const ControlAnalysisOptions& options,
    std::shared_ptr<exec::CompiledPlanSet>* compiled_out) {
  const uint64_t env_fp = EnvFingerprint(schema, access);
  std::string key_text = "fo\x1f";
  key_text += query_text;
  uint64_t hash;
  bool collision = false;
  std::shared_ptr<InFlight> flight;
  std::function<void()> barrier;
  {
    std::unique_lock<std::mutex> lock(mu_);
    hash = KeyHash(key_text);
    Entry* hit = LookupLocked(hash, key_text, env_fp, &collision);
    if (hit != nullptr && hit->plain != nullptr) {
      ++stats_.hits;
      if (compiled_out != nullptr) *compiled_out = EnsureCompiled(&hit->compiled);
      return hit->plain;
    }
    // Single-flight: the first miss on a key derives; concurrent misses
    // wait on the fill and share its result instead of duplicating the DP.
    auto [it, leader] = inflight_.try_emplace(key_text);
    if (!leader) {
      flight = it->second;
      ++stats_.coalesced;
      fill_cv_.wait(lock, [&] { return flight->done; });
      if (!flight->status.ok()) return flight->status;
      if (compiled_out != nullptr) *compiled_out = flight->compiled;
      return flight->plain;
    }
    it->second = std::make_shared<InFlight>();
    flight = it->second;
    ++stats_.misses;
    barrier = fill_barrier_for_testing_;
  }

  // Analyze outside the lock.
  if (barrier) barrier();
  Result<ControllabilityAnalysis> analyzed =
      ControllabilityAnalysis::Analyze(f, schema, access, options);
  std::shared_ptr<const ControllabilityAnalysis> shared;
  if (analyzed.ok()) {
    shared = std::make_shared<const ControllabilityAnalysis>(
        std::move(analyzed).ValueOrDie());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    flight->status = analyzed.ok() ? Status::OK() : analyzed.status();
    flight->plain = shared;
    if (analyzed.ok()) {
      // One plan set shared by the entry and every coalesced waiter, so all
      // of them observe the same compiled programs.
      EnsureCompiled(&flight->compiled);
    }
    flight->done = true;
    inflight_.erase(key_text);
    if (analyzed.ok() && !collision) {
      Entry entry;
      entry.plain = shared;
      entry.compiled = flight->compiled;
      InsertLocked(hash, std::move(key_text), env_fp, std::move(entry));
    }
  }
  fill_cv_.notify_all();
  if (shared == nullptr) return flight->status;
  if (compiled_out != nullptr) *compiled_out = flight->compiled;
  return shared;
}

Result<std::shared_ptr<const EmbeddedCqAnalysis>>
AnalysisCache::GetOrAnalyzeEmbedded(
    const Cq& q, std::string_view query_text, const Schema& schema,
    const AccessSchema& access, const VarSet& params,
    std::shared_ptr<exec::CompiledPlanSet>* compiled_out) {
  const uint64_t env_fp = EnvFingerprint(schema, access);
  // Embedded plans depend on which variables are parameters, so the param
  // set is part of the key.
  std::string key_text = "embedded\x1f";
  key_text += query_text;
  key_text += '\x1f';
  key_text += VarSetToString(params);
  uint64_t hash;
  bool collision = false;
  std::shared_ptr<InFlight> flight;
  std::function<void()> barrier;
  {
    std::unique_lock<std::mutex> lock(mu_);
    hash = KeyHash(key_text);
    Entry* hit = LookupLocked(hash, key_text, env_fp, &collision);
    if (hit != nullptr && hit->embedded != nullptr) {
      ++stats_.hits;
      if (compiled_out != nullptr) *compiled_out = EnsureCompiled(&hit->compiled);
      return hit->embedded;
    }
    auto [it, leader] = inflight_.try_emplace(key_text);
    if (!leader) {
      flight = it->second;
      ++stats_.coalesced;
      fill_cv_.wait(lock, [&] { return flight->done; });
      if (!flight->status.ok()) return flight->status;
      if (compiled_out != nullptr) *compiled_out = flight->compiled;
      return flight->embedded;
    }
    it->second = std::make_shared<InFlight>();
    flight = it->second;
    ++stats_.misses;
    barrier = fill_barrier_for_testing_;
  }

  if (barrier) barrier();
  Result<EmbeddedCqAnalysis> analyzed =
      EmbeddedCqAnalysis::Analyze(q, schema, access, params);
  std::shared_ptr<const EmbeddedCqAnalysis> shared;
  if (analyzed.ok()) {
    shared = std::make_shared<const EmbeddedCqAnalysis>(
        std::move(analyzed).ValueOrDie());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    flight->status = analyzed.ok() ? Status::OK() : analyzed.status();
    flight->embedded = shared;
    if (analyzed.ok()) EnsureCompiled(&flight->compiled);
    flight->done = true;
    inflight_.erase(key_text);
    if (analyzed.ok() && !collision) {
      Entry entry;
      entry.embedded = shared;
      entry.compiled = flight->compiled;
      InsertLocked(hash, std::move(key_text), env_fp, std::move(entry));
    }
  }
  fill_cv_.notify_all();
  if (shared == nullptr) return flight->status;
  if (compiled_out != nullptr) *compiled_out = flight->compiled;
  return shared;
}

void AnalysisCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += entries_.size();
  entries_.clear();
}

size_t AnalysisCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

AnalysisCacheStats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace scalein
