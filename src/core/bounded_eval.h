#ifndef SCALEIN_CORE_BOUNDED_EVAL_H_
#define SCALEIN_CORE_BOUNDED_EVAL_H_

#include "core/controllability.h"
#include "core/embedded_controllability.h"
#include "eval/answer_set.h"
#include "exec/exec_context.h"
#include "relational/database.h"

namespace scalein {

/// Data-access accounting for a bounded evaluation: the |D_Q| ≤ M side of
/// scale independence, measured rather than assumed. `base_tuples_fetched`
/// counts every tuple (or projection row, for embedded statements) retrieved
/// from base relations through access-schema indexes; the library's property
/// tests assert it never exceeds the analysis' static bound on conforming
/// databases.
///
/// Since the unified engine landed, this is a *view* over
/// `exec::ExecContext` counters: each BoundedEvaluator call runs with a
/// fresh context (so the fetch budget is per-evaluation) and folds the
/// context's totals in here via `Accumulate`, letting one stats object
/// aggregate across many evaluations (as the incremental maintainer does).
struct BoundedEvalStats {
  uint64_t base_tuples_fetched = 0;
  uint64_t index_lookups = 0;
  /// Fetch counts keyed by relation name (lets §6's view executor separate
  /// bounded base access from free materialized-view access).
  std::map<std::string, uint64_t> fetched_by_relation;

  /// When true, Accumulate also appends the evaluation's per-node counter
  /// forest into `ops` — the input of obs' EXPLAIN ANALYZE renderer, with
  /// each derivation node's static Theorem 4.2 bound in
  /// OpCounters::static_bound. Off by default: aggregators that fold
  /// thousands of evaluations (the incremental maintainer) would otherwise
  /// accumulate unbounded op snapshots.
  bool capture_ops = false;
  std::vector<exec::OpCounters> ops;
  /// Static fetch bound of the most recent evaluation's derivation (the
  /// Theorem 4.2 / Proposition 4.5 M); negative until an evaluation ran.
  double static_bound = -1.0;
  /// Per-lane observability of governed fan-outs (lane → raw fetches /
  /// probes attempted on that lane, including discarded morsels). Empty
  /// when no in-query fan-out ran. Purely observational: the deterministic
  /// accounting above comes from the lane-ordered replay, not these.
  std::map<int, uint64_t> fetched_by_lane;
  std::map<int, uint64_t> lookups_by_lane;

  void Count(const std::string& relation, uint64_t tuples) {
    ++index_lookups;
    base_tuples_fetched += tuples;
    fetched_by_relation[relation] += tuples;
  }

  /// Folds another stats object into this one (batch evaluation merges
  /// per-worker stats in input order, so totals are identical to a
  /// sequential run). The most recent static bound wins, matching how a
  /// sequential loop of evaluations would leave `static_bound`.
  void Merge(const BoundedEvalStats& other) {
    base_tuples_fetched += other.base_tuples_fetched;
    index_lookups += other.index_lookups;
    for (const auto& [name, n] : other.fetched_by_relation) {
      fetched_by_relation[name] += n;
    }
    for (const auto& [lane, n] : other.fetched_by_lane) {
      fetched_by_lane[lane] += n;
    }
    for (const auto& [lane, n] : other.lookups_by_lane) {
      lookups_by_lane[lane] += n;
    }
    if (capture_ops) ops.insert(ops.end(), other.ops.begin(), other.ops.end());
    if (other.static_bound >= 0) static_bound = other.static_bound;
  }

  /// Folds one finished evaluation's context counters into this object.
  void Accumulate(const exec::ExecContext& ctx) {
    base_tuples_fetched += ctx.base_tuples_fetched();
    index_lookups += ctx.index_lookups();
    for (const auto& [name, n] : ctx.fetched_by_relation()) {
      fetched_by_relation[name] += n;
    }
    for (const auto& [lane, n] : ctx.fetched_by_lane()) {
      fetched_by_lane[lane] += n;
    }
    for (const auto& [lane, n] : ctx.lookups_by_lane()) {
      lookups_by_lane[lane] += n;
    }
    if (capture_ops) {
      std::vector<exec::OpCounters> snapshot = ctx.SnapshotOps();
      ops.insert(ops.end(), snapshot.begin(), snapshot.end());
    }
  }
};

/// The constructive content of Theorem 4.2: executes a controllability
/// derivation directly, fetching data only through the access paths the
/// derivation's atom/chase steps name. On a database conforming to the access
/// schema, answers equal the reference semantics and the fetch count is
/// bounded by the derivation's static bound — independent of |D|.
class BoundedEvaluator {
 public:
  /// `db` is mutable only because indexes build on demand; content is never
  /// modified. Call AccessSchema::BuildIndexes first to pay index
  /// construction outside the measured path.
  explicit BoundedEvaluator(Database* db) : db_(db) {}

  /// If true, any index lookup returning more rows than the statement's N
  /// fails with ResourceExhausted (the database does not conform to A).
  void set_enforce_bounds(bool enforce) { enforce_bounds_ = enforce; }

  /// Hard per-evaluation cap on base tuples fetched — the paper's M as "the
  /// capacity of our available resources". 0 disables (default). When the
  /// running fetch count would exceed the budget, evaluation stops with
  /// ResourceExhausted instead of touching more data.
  void set_fetch_budget(uint64_t budget) { limits_.fetch_budget = budget; }

  /// Full per-evaluation resource envelope (fetch budget, deadline, output
  /// cap, cancellation), armed on each evaluation's fresh ExecContext.
  /// Supersedes set_fetch_budget when both are used.
  void set_limits(const exec::GovernorLimits& limits) { limits_ = limits; }
  const exec::GovernorLimits& limits() const { return limits_; }

  /// If true, the evaluator records per-derivation-node wall time into the
  /// captured op counters (EXPLAIN ANALYZE's time column). Off by default —
  /// the measured fetch counts never depend on it.
  void set_collect_timing(bool collect) { collect_timing_ = collect; }

  /// Evaluates Q(ā, ·) via a plain-controllability derivation: `params`
  /// must cover some derived controlling set. Answers range over the head
  /// variables not bound by `params`, in head order.
  ///
  /// Wide intermediate frontiers inside one evaluation (a conjunction step
  /// expanding, or filtering negations over, ≥ 16 partial bindings) fan out
  /// as governed morsels on the global worker pool; the sub-budget
  /// lease/replay protocol (exec/governed_parallel.h) keeps answers,
  /// accounting, and governor trips byte-identical to the single-threaded
  /// run whether or not limits are armed.
  Result<AnswerSet> Evaluate(const FoQuery& q,
                             const ControllabilityAnalysis& analysis,
                             const Binding& params,
                             BoundedEvalStats* stats = nullptr) const;

  /// Degradation-aware variant (PIQL-style success tolerance): a governor
  /// trip (budget/deadline/cap/cancel) returns the *partial* answer set
  /// produced so far — a genuine subset of Q(D) for monotone derivations —
  /// together with the trip record and the per-node counter snapshot,
  /// instead of a bare error. Non-governor failures stay errors.
  Result<exec::Degraded<AnswerSet>> EvaluateDegraded(
      const FoQuery& q, const ControllabilityAnalysis& analysis,
      const Binding& params, BoundedEvalStats* stats = nullptr) const;

  /// Evaluates Q(ā_i, ·) for every parameter binding in `batch`, fanning the
  /// independent evaluations out as morsels on the global worker pool
  /// (src/par). Every index any taken derivation names is prebuilt before
  /// the fan-out, so workers only read. Results are in input order; each
  /// slot is the exact Result a sequential Evaluate call would produce, and
  /// `stats` (merged in input order) carries byte-identical totals
  /// regardless of thread count.
  std::vector<Result<AnswerSet>> EvaluateBatch(
      const FoQuery& q, const ControllabilityAnalysis& analysis,
      const std::vector<Binding>& batch,
      BoundedEvalStats* stats = nullptr) const;

  /// Evaluates an embedded-controllability plan (Proposition 4.5) for a CQ.
  /// `params` must bind exactly the variables the analysis was built with.
  /// Answers range over head positions whose term is an unbound variable.
  ///
  /// When the global worker pool has more than one lane and a chase step's
  /// frontier is large enough, the per-frontier loop inside one evaluation
  /// runs as governed parallel morsels — armed or not. Worker lanes charge
  /// private logs against per-lane sub-budget leases and the parent replays
  /// them in morsel order (exec/governed_parallel.h), so answers, fetch
  /// accounting, and trip verdicts are byte-identical at any thread count.
  Result<AnswerSet> EvaluateEmbedded(const EmbeddedCqAnalysis& analysis,
                                     const Binding& params,
                                     BoundedEvalStats* stats = nullptr) const;

  /// Batch counterpart of EvaluateEmbedded; same contract as EvaluateBatch.
  std::vector<Result<AnswerSet>> EvaluateEmbeddedBatch(
      const EmbeddedCqAnalysis& analysis, const std::vector<Binding>& batch,
      BoundedEvalStats* stats = nullptr) const;

  /// Degradation-aware embedded evaluation. On a governor trip, when
  /// `fallback_to_approx` is set and a fetch budget is armed, the greedy
  /// budgeted engine (core/approx.h) re-answers the underlying CQ within the
  /// same budget M and the result is marked `fallback = "approx"` — every
  /// reported answer is still a genuine answer of Q(D).
  Result<exec::Degraded<AnswerSet>> EvaluateEmbeddedDegraded(
      const EmbeddedCqAnalysis& analysis, const Binding& params,
      BoundedEvalStats* stats = nullptr, bool fallback_to_approx = false) const;

 private:
  Result<AnswerSet> EvaluateEmbeddedImpl(const EmbeddedCqAnalysis& analysis,
                                         const Binding& params,
                                         exec::ExecContext* ctx,
                                         bool capture_ops) const;

  Database* db_;
  bool enforce_bounds_ = false;
  exec::GovernorLimits limits_;
  bool collect_timing_ = false;
};

}  // namespace scalein

#endif  // SCALEIN_CORE_BOUNDED_EVAL_H_
