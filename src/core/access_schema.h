#ifndef SCALEIN_CORE_ACCESS_SCHEMA_H_
#define SCALEIN_CORE_ACCESS_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

/// One access statement of §4.
///
/// Plain form (R, X, N, T): given values ā for the attributes X, the set
/// σ_{X=ā}(R) has at most N tuples and can be retrieved in time T (an index
/// on X exists).
///
/// Embedded form (R, X[Y], N, T) with X ⊆ Y: given ā for X, the *projection*
/// π_Y(σ_{X=ā}(R)) has at most N tuples and is retrievable in time T. Plain
/// statements are the special case Y = attr(R). A functional dependency
/// X → Y with retrieval guarantee T is (R, X[X∪Y], 1, T).
struct AccessStatement {
  std::string relation;
  std::vector<std::string> key_attrs;  ///< X
  /// Y for embedded statements; nullopt means Y = attr(R) (plain form).
  std::optional<std::vector<std::string>> value_attrs;
  uint64_t max_tuples = 0;     ///< N
  double retrieval_time = 1.0;  ///< T, in abstract time units

  bool is_plain() const { return !value_attrs.has_value(); }

  std::string ToString() const;
};

/// An access schema A over a relational schema (§4): the set of declared
/// index-plus-cardinality guarantees that the controllability rules and the
/// bounded executor consume.
class AccessSchema {
 public:
  AccessSchema() = default;

  /// Adds a plain statement (R, X, N, T).
  AccessSchema& Add(const std::string& relation,
                    std::vector<std::string> key_attrs, uint64_t max_tuples,
                    double retrieval_time = 1.0);

  /// Adds an embedded statement (R, X[Y], N, T). X need not be listed inside
  /// Y; the union is taken (the paper requires X ⊆ Y).
  AccessSchema& AddEmbedded(const std::string& relation,
                            std::vector<std::string> key_attrs,
                            std::vector<std::string> value_attrs,
                            uint64_t max_tuples, double retrieval_time = 1.0);

  /// Adds a functional dependency X → Y as (R, X[X∪Y], 1, T).
  AccessSchema& AddFd(const std::string& relation,
                      std::vector<std::string> determinant,
                      std::vector<std::string> dependent,
                      double retrieval_time = 1.0);

  /// Declares `key_attrs` a key of `relation`: (R, X, 1, T).
  AccessSchema& AddKey(const std::string& relation,
                       std::vector<std::string> key_attrs,
                       double retrieval_time = 1.0);

  /// The A(R) extension of Proposition 5.5: (R, ∅, N, 1) — the whole relation
  /// is retrievable and holds at most N tuples (used for bounded update
  /// relations ∆R in incremental maintenance).
  AccessSchema& AddFullAccess(const std::string& relation, uint64_t max_tuples);

  const std::vector<AccessStatement>& statements() const { return statements_; }

  /// Statements about `relation` (pointers valid until the schema mutates).
  std::vector<const AccessStatement*> ForRelation(
      const std::string& relation) const;

  /// Structural validation against `schema`: relations and attributes exist.
  Status Validate(const Schema& schema) const;

  /// Builds the physical indexes every statement presupposes (hash indexes
  /// for plain statements, projection indexes for embedded ones).
  Status BuildIndexes(Database* db, const Schema& schema) const;

  std::string ToString() const;

 private:
  std::vector<AccessStatement> statements_;
};

/// One conformance violation: a key value whose group exceeds the declared N.
struct ConformanceViolation {
  size_t statement_index;
  Tuple key;
  uint64_t observed;
  uint64_t declared;

  std::string ToString(const AccessSchema& schema) const;
};

/// Result of checking a database against an access schema (§4: "a database D
/// conforms to the access schema A").
struct ConformanceReport {
  bool conforms = true;
  std::vector<ConformanceViolation> violations;
};

/// Checks every statement of `access` against `db` (the N bounds; the T
/// bounds are realized by the hash indexes). At most `max_violations` are
/// collected per statement.
Result<ConformanceReport> CheckConformance(const Database& db,
                                           const Schema& schema,
                                           const AccessSchema& access,
                                           size_t max_violations = 5);

}  // namespace scalein

#endif  // SCALEIN_CORE_ACCESS_SCHEMA_H_
