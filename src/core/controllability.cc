#include "core/controllability.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/strings.h"

namespace scalein {
namespace {

/// o2 dominates o1 when it controls with fewer (or equal) variables at lower
/// (or equal) cost on both bound axes.
bool Dominates(const ControlOption& o2, const ControlOption& o1) {
  return VarSubset(o2.controls, o1.controls) &&
         o2.fetch_bound <= o1.fetch_bound &&
         o2.result_bound <= o1.result_bound;
}

/// Pareto-inserts `opt` into the node's option list, respecting the cap.
void AddOption(NodeAnalysis* node, ControlOption opt, size_t cap) {
  for (const auto& existing : node->options) {
    if (Dominates(*existing, opt)) return;
  }
  std::erase_if(node->options, [&opt](const std::unique_ptr<ControlOption>& e) {
    return Dominates(opt, *e);
  });
  if (node->options.size() >= cap) {
    node->truncated = true;
    return;
  }
  node->options.push_back(std::make_unique<ControlOption>(std::move(opt)));
}

/// Flattens nested conjunctions / disjunctions of the given kind.
void FlattenOperands(const Formula& f, FormulaKind kind,
                     std::vector<Formula>* out) {
  if (f.kind() == kind) {
    for (const Formula& c : f.operands()) FlattenOperands(c, kind, out);
  } else {
    out->push_back(f);
  }
}

/// True if `stmt` behaves like a plain statement (Y = attr(R)).
bool IsEffectivelyPlain(const AccessStatement& stmt, const RelationSchema& rs) {
  if (stmt.is_plain()) return true;
  if (stmt.value_attrs->size() != rs.arity()) return false;
  for (const std::string& a : rs.attributes()) {
    if (std::find(stmt.value_attrs->begin(), stmt.value_attrs->end(), a) ==
        stmt.value_attrs->end()) {
      return false;
    }
  }
  return true;
}

class Analyzer {
 public:
  Analyzer(const Schema& schema, const AccessSchema& access,
           const ControlAnalysisOptions& options)
      : schema_(schema), access_(access), options_(options) {}

  Result<std::unique_ptr<NodeAnalysis>> Analyze(const Formula& f) {
    auto node = std::make_unique<NodeAnalysis>();
    node->formula = f;

    // "conditions" rule: any Boolean combination of equalities is controlled
    // by all of its variables, with no data access at all. Conjunctions of
    // positive equalities additionally *determine* variables: x = c pins x,
    // and x = y chains let one representative stand for its class (the FO
    // counterpart of the σ-rule's constant-bound attributes in §5, used by
    // the paper's SQL example).
    if (f.IsEqualityCondition()) {
      node->is_condition = true;
      ControlOption base;
      base.controls = f.FreeVariables();
      base.rule = "condition";
      base.fetch_bound = 0;
      base.result_bound = 1;
      AddOption(node.get(), std::move(base), options_.max_options_per_node);
      AddPinnedConditionOptions(f, node.get());
      return node;
    }

    switch (f.kind()) {
      case FormulaKind::kAtom:
        SI_RETURN_IF_ERROR(AnalyzeAtom(f, node.get()));
        break;
      case FormulaKind::kAnd:
        SI_RETURN_IF_ERROR(AnalyzeAnd(f, node.get()));
        break;
      case FormulaKind::kOr:
        SI_RETURN_IF_ERROR(AnalyzeOr(f, node.get()));
        break;
      case FormulaKind::kExists:
        SI_RETURN_IF_ERROR(AnalyzeExists(f, node.get()));
        break;
      case FormulaKind::kForall:
        SI_RETURN_IF_ERROR(AnalyzeForall(f, node.get()));
        break;
      case FormulaKind::kNot:
      case FormulaKind::kImplies:
        // Negation is derivable only through the safe-negation rule (inside a
        // conjunction); a bare implication only through ∀(Q → Q').
        break;
      default:
        break;
    }
    return node;
  }

 private:
  /// Derives condition options with determined variables: union-find over the
  /// top-level positive equality conjuncts, constants pinning their class.
  /// One representative per constant-free class must still be controlled.
  void AddPinnedConditionOptions(const Formula& f, NodeAnalysis* node) {
    std::vector<Formula> conjuncts;
    FlattenOperands(f, FormulaKind::kAnd, &conjuncts);

    std::map<Variable, Variable> parent;
    std::map<Variable, Value> pinned;  // keyed by class root
    auto find = [&parent](Variable v) {
      Variable cur = v;
      for (;;) {
        auto it = parent.find(cur);
        if (it == parent.end() || it->second == cur) return cur;
        cur = it->second;
      }
    };
    bool ok = true;
    auto pin = [&](Variable v, const Value& c) {
      Variable root = find(v);
      auto it = pinned.find(root);
      if (it != pinned.end()) {
        ok = ok && it->second == c;
      } else {
        pinned.emplace(root, c);
      }
    };
    for (const Formula& c : conjuncts) {
      if (c.kind() != FormulaKind::kEq) continue;  // extra filters only
      const Term& l = c.eq_lhs();
      const Term& r = c.eq_rhs();
      if (l.is_var() && r.is_var()) {
        Variable rl = find(l.var());
        Variable rr = find(r.var());
        if (rl == rr) continue;
        auto pr = pinned.find(rr);
        if (pr != pinned.end()) {
          Value v = pr->second;
          pinned.erase(pr);
          parent.insert_or_assign(rr, rl);
          pin(rl, v);
        } else {
          parent.insert_or_assign(rr, rl);
        }
      } else if (l.is_var()) {
        pin(l.var(), r.constant());
      } else if (r.is_var()) {
        pin(r.var(), l.constant());
      } else if (!(l.constant() == r.constant())) {
        ok = false;  // unsatisfiable conjunction; no determination claimed
      }
    }
    if (!ok) return;

    // Group free variables by class; constant-free classes need one
    // controlled representative.
    const VarSet& free = f.FreeVariables();
    std::map<Variable, std::vector<Variable>> classes;  // root -> members
    for (const Variable& v : free) classes[find(v)].push_back(v);
    std::vector<const std::vector<Variable>*> unpinned;
    for (const auto& [root, members] : classes) {
      if (!pinned.count(find(root))) unpinned.push_back(&members);
    }
    size_t combos = 1;
    for (const auto* members : unpinned) combos *= members->size();
    const bool enumerate_all = combos <= 16;

    auto emit = [&](const std::vector<Variable>& reps) {
      ControlOption opt;
      opt.rule = "condition";
      opt.fetch_bound = 0;
      opt.result_bound = 1;
      opt.controls = VarSet(reps.begin(), reps.end());
      for (const Variable& v : free) {
        Variable root = find(v);
        auto pit = pinned.find(root);
        if (pit != pinned.end()) {
          opt.condition_resolve.emplace(v, Term::Const(pit->second));
          continue;
        }
        // Representative of v's class.
        for (const Variable& rep : reps) {
          if (find(rep) == root) {
            opt.condition_resolve.emplace(v, Term::Var(rep));
            break;
          }
        }
      }
      AddOption(node, std::move(opt), options_.max_options_per_node);
    };

    if (enumerate_all) {
      std::vector<Variable> reps;
      auto recurse = [&](auto&& self, size_t idx) -> void {
        if (idx == unpinned.size()) {
          emit(reps);
          return;
        }
        for (const Variable& candidate : *unpinned[idx]) {
          reps.push_back(candidate);
          self(self, idx + 1);
          reps.pop_back();
        }
      };
      recurse(recurse, 0);
    } else {
      node->truncated = true;
      std::vector<Variable> reps;
      for (const auto* members : unpinned) reps.push_back(members->front());
      emit(reps);
    }
  }

  Status AnalyzeAtom(const Formula& f, NodeAnalysis* node) {
    const RelationSchema* rs = schema_.FindRelation(f.relation());
    if (rs == nullptr) {
      return Status::NotFound("atom over unknown relation '" + f.relation() +
                              "'");
    }
    if (rs->arity() != f.args().size()) {
      return Status::InvalidArgument("atom arity mismatch for relation '" +
                                     f.relation() + "'");
    }
    for (const AccessStatement* stmt : access_.ForRelation(f.relation())) {
      if (!IsEffectivelyPlain(*stmt, *rs)) continue;  // embedded: §4.5 engine
      ControlOption opt;
      opt.rule = "atom";
      opt.access = stmt;
      opt.fetch_bound = static_cast<double>(stmt->max_tuples);
      opt.result_bound = static_cast<double>(stmt->max_tuples);
      bool ok = true;
      for (const std::string& attr : stmt->key_attrs) {
        std::optional<size_t> pos = rs->AttributePosition(attr);
        if (!pos.has_value()) {
          ok = false;
          break;
        }
        opt.key_positions.push_back(*pos);
        const Term& arg = f.args()[*pos];
        if (arg.is_var()) opt.controls.insert(arg.var());
      }
      if (!ok) continue;
      AddOption(node, std::move(opt), options_.max_options_per_node);
    }
    return Status::OK();
  }

  Status AnalyzeAnd(const Formula& f, NodeAnalysis* node) {
    std::vector<Formula> conjuncts;
    FlattenOperands(f, FormulaKind::kAnd, &conjuncts);

    // Split into positives and safe-negation candidates. A negated equality
    // condition counts as a positive (the conditions rule covers it).
    std::vector<Formula> positives;
    std::vector<Formula> negatives;  // the bodies Q' of ¬Q' conjuncts
    for (const Formula& c : conjuncts) {
      if (c.kind() == FormulaKind::kNot && !c.IsEqualityCondition()) {
        negatives.push_back(c.child());
      } else {
        positives.push_back(c);
      }
    }
    node->n_positives = positives.size();
    for (const Formula& p : positives) {
      node->sub_formulas.push_back(p);
      SI_ASSIGN_OR_RETURN(auto sub, Analyze(p));
      node->truncated |= sub->truncated;
      node->subs.push_back(std::move(sub));
    }
    for (const Formula& n : negatives) {
      node->sub_formulas.push_back(n);
      SI_ASSIGN_OR_RETURN(auto sub, Analyze(n));
      node->truncated |= sub->truncated;
      node->subs.push_back(std::move(sub));
    }
    if (positives.empty()) return Status::OK();  // ¬-only: not derivable

    // Safe negation preconditions: every negative body must be controlled
    // (by all its free variables) and its variables must come from the
    // positive part (z̄ ⊆ ȳ).
    VarSet positive_free;
    for (const Formula& p : positives) {
      positive_free = VarUnion(positive_free, p.FreeVariables());
    }
    double negation_fetch = 0;
    std::vector<const ControlOption*> negative_options;
    for (size_t ni = 0; ni < negatives.size(); ++ni) {
      const NodeAnalysis& sub = *node->subs[positives.size() + ni];
      if (sub.options.empty()) return Status::OK();  // not derivable
      if (!VarSubset(negatives[ni].FreeVariables(), positive_free)) {
        return Status::OK();
      }
      const ControlOption* best = nullptr;
      for (const auto& o : sub.options) {
        if (best == nullptr || o->fetch_bound < best->fetch_bound) {
          best = o.get();
        }
      }
      negative_options.push_back(best);
      negation_fetch += best->fetch_bound;
    }

    // DP over positive-conjunct subsets: every binary combination order of
    // the conjunction rule corresponds to some left-to-right chain.
    struct ChainOption {
      VarSet controls;
      double fetch = 0;
      double result = 1;
      std::vector<size_t> order;
      std::vector<const ControlOption*> children;
    };
    const size_t n = positives.size();
    bool exhaustive = n <= options_.max_conjuncts;
    if (!exhaustive) node->truncated = true;

    auto extend = [&](const ChainOption& base, const VarSet& seen_free,
                      size_t i) {
      std::vector<ChainOption> out;
      for (const auto& child_opt : node->subs[i]->options) {
        ChainOption next = base;
        next.controls =
            VarUnion(next.controls, VarMinus(child_opt->controls, seen_free));
        next.fetch = next.fetch + next.result * child_opt->fetch_bound;
        next.result = next.result * child_opt->result_bound;
        next.order.push_back(i);
        next.children.push_back(child_opt.get());
        out.push_back(std::move(next));
      }
      return out;
    };
    auto prune = [&](std::vector<ChainOption>* opts) {
      // Pareto prune on (controls, fetch, result).
      std::vector<ChainOption> kept;
      std::sort(opts->begin(), opts->end(),
                [](const ChainOption& a, const ChainOption& b) {
                  if (a.controls.size() != b.controls.size()) {
                    return a.controls.size() < b.controls.size();
                  }
                  return a.fetch < b.fetch;
                });
      for (ChainOption& o : *opts) {
        bool dominated = false;
        for (const ChainOption& k : kept) {
          if (VarSubset(k.controls, o.controls) && k.fetch <= o.fetch &&
              k.result <= o.result) {
            dominated = true;
            break;
          }
        }
        if (!dominated) {
          if (kept.size() >= options_.max_options_per_node) {
            node->truncated = true;
            break;
          }
          kept.push_back(std::move(o));
        }
      }
      *opts = std::move(kept);
    };

    std::vector<ChainOption> finals;
    if (exhaustive) {
      std::vector<std::vector<ChainOption>> dp(1u << n);
      std::vector<VarSet> seen_free(1u << n);
      for (uint32_t mask = 1; mask < (1u << n); ++mask) {
        uint32_t low = mask & (mask - 1);
        size_t bit = static_cast<size_t>(__builtin_ctz(mask));
        seen_free[mask] =
            VarUnion(seen_free[low], positives[bit].FreeVariables());
      }
      dp[0].push_back(ChainOption{});
      for (uint32_t mask = 0; mask < (1u << n); ++mask) {
        if (dp[mask].empty() && mask != 0) continue;
        for (size_t i = 0; i < n; ++i) {
          if (mask & (1u << i)) continue;
          uint32_t next_mask = mask | (1u << i);
          for (const ChainOption& base : dp[mask]) {
            std::vector<ChainOption> ext = extend(base, seen_free[mask], i);
            for (ChainOption& e : ext) dp[next_mask].push_back(std::move(e));
          }
          prune(&dp[next_mask]);
        }
      }
      finals = std::move(dp[(1u << n) - 1]);
    } else {
      // Fallback: left-to-right order only.
      std::vector<ChainOption> current = {ChainOption{}};
      VarSet seen;
      for (size_t i = 0; i < n; ++i) {
        std::vector<ChainOption> next;
        for (const ChainOption& base : current) {
          std::vector<ChainOption> ext = extend(base, seen, i);
          for (ChainOption& e : ext) next.push_back(std::move(e));
        }
        prune(&next);
        current = std::move(next);
        seen = VarUnion(seen, positives[i].FreeVariables());
      }
      finals = std::move(current);
    }

    for (ChainOption& c : finals) {
      ControlOption opt;
      opt.controls = std::move(c.controls);
      opt.rule = "and";
      opt.fetch_bound = c.fetch + c.result * negation_fetch;
      opt.result_bound = c.result;
      opt.conjunct_order = std::move(c.order);
      opt.child_options = std::move(c.children);
      for (const ControlOption* no : negative_options) {
        opt.child_options.push_back(no);
      }
      AddOption(node, std::move(opt), options_.max_options_per_node);
    }
    return Status::OK();
  }

  Status AnalyzeOr(const Formula& f, NodeAnalysis* node) {
    std::vector<Formula> operands;
    FlattenOperands(f, FormulaKind::kOr, &operands);
    const VarSet& free = f.FreeVariables();
    node->n_positives = operands.size();
    bool same_free = true;
    for (const Formula& op : operands) {
      if (!(op.FreeVariables() == free)) same_free = false;
      node->sub_formulas.push_back(op);
      SI_ASSIGN_OR_RETURN(auto sub, Analyze(op));
      node->truncated |= sub->truncated;
      node->subs.push_back(std::move(sub));
    }
    // The disjunction rule requires Q1(ȳ) ∨ Q2(ȳ): identical free tuples;
    // otherwise the un-shared variables range over the whole domain.
    if (!same_free) return Status::OK();

    struct Combo {
      VarSet controls;
      double fetch = 0;
      double result = 0;
      std::vector<const ControlOption*> children;
    };
    std::vector<Combo> current = {Combo{}};
    for (const auto& sub : node->subs) {
      if (sub->options.empty()) return Status::OK();  // all must be controlled
      std::vector<Combo> next;
      for (const Combo& base : current) {
        for (const auto& child_opt : sub->options) {
          Combo c = base;
          c.controls = VarUnion(c.controls, child_opt->controls);
          c.fetch += child_opt->fetch_bound;
          c.result += child_opt->result_bound;
          c.children.push_back(child_opt.get());
          next.push_back(std::move(c));
        }
      }
      // Pareto prune.
      std::vector<Combo> kept;
      std::sort(next.begin(), next.end(), [](const Combo& a, const Combo& b) {
        if (a.controls.size() != b.controls.size()) {
          return a.controls.size() < b.controls.size();
        }
        return a.fetch < b.fetch;
      });
      for (Combo& c : next) {
        bool dominated = false;
        for (const Combo& k : kept) {
          if (VarSubset(k.controls, c.controls) && k.fetch <= c.fetch &&
              k.result <= c.result) {
            dominated = true;
            break;
          }
        }
        if (!dominated) {
          if (kept.size() >= options_.max_options_per_node) {
            node->truncated = true;
            break;
          }
          kept.push_back(std::move(c));
        }
      }
      current = std::move(kept);
    }
    for (Combo& c : current) {
      ControlOption opt;
      opt.controls = std::move(c.controls);
      opt.rule = "or";
      opt.fetch_bound = c.fetch;
      opt.result_bound = std::max(1.0, c.result);
      opt.child_options = std::move(c.children);
      AddOption(node, std::move(opt), options_.max_options_per_node);
    }
    return Status::OK();
  }

  Status AnalyzeExists(const Formula& f, NodeAnalysis* node) {
    SI_ASSIGN_OR_RETURN(auto sub, Analyze(f.body()));
    node->truncated |= sub->truncated;
    VarSet quantified(f.quantified().begin(), f.quantified().end());
    for (const auto& child_opt : sub->options) {
      // Rule: ∃z̄ Q is x̄-controlled when z̄ avoids x̄ (z̄ ⊆ ȳ − x̄).
      if (!VarIntersect(child_opt->controls, quantified).empty()) continue;
      ControlOption opt;
      opt.controls = child_opt->controls;
      opt.rule = "exists";
      opt.fetch_bound = child_opt->fetch_bound;
      opt.result_bound = child_opt->result_bound;
      opt.child_options = {child_opt.get()};
      AddOption(node, std::move(opt), options_.max_options_per_node);
    }
    node->subs.push_back(std::move(sub));
    return Status::OK();
  }

  Status AnalyzeForall(const Formula& f, NodeAnalysis* node) {
    if (f.body().kind() != FormulaKind::kImplies) {
      // Only the ∀ȳ(Q → Q') shape is derivable.
      SI_ASSIGN_OR_RETURN(auto sub, Analyze(f.body()));
      node->subs.push_back(std::move(sub));
      return Status::OK();
    }
    const Formula& premise = f.body().premise();
    const Formula& conclusion = f.body().conclusion();
    SI_ASSIGN_OR_RETURN(auto premise_sub, Analyze(premise));
    SI_ASSIGN_OR_RETURN(auto conclusion_sub, Analyze(conclusion));
    node->truncated |= premise_sub->truncated | conclusion_sub->truncated;

    VarSet quantified(f.quantified().begin(), f.quantified().end());
    const VarSet& premise_free = premise.FreeVariables();
    const VarSet& conclusion_free = conclusion.FreeVariables();

    // Every quantified variable must be enumerated by the premise, or not
    // appear in the conclusion at all (then the implication is vacuous in it).
    bool enumerable = true;
    for (const Variable& v : quantified) {
      if (!premise_free.count(v) && conclusion_free.count(v)) {
        enumerable = false;
        break;
      }
    }

    if (enumerable && !conclusion_sub->options.empty()) {
      const ControlOption* best_conclusion = nullptr;
      for (const auto& o : conclusion_sub->options) {
        if (best_conclusion == nullptr ||
            o->fetch_bound < best_conclusion->fetch_bound) {
          best_conclusion = o.get();
        }
      }
      for (const auto& premise_opt : premise_sub->options) {
        if (!VarIntersect(premise_opt->controls, quantified).empty()) continue;
        ControlOption opt;
        opt.controls = f.FreeVariables();  // a Boolean check given all frees
        opt.rule = "forall";
        opt.fetch_bound =
            premise_opt->fetch_bound +
            premise_opt->result_bound * best_conclusion->fetch_bound;
        opt.result_bound = 1;
        opt.child_options = {premise_opt.get(), best_conclusion};
        AddOption(node, std::move(opt), options_.max_options_per_node);
      }
    }
    node->subs.push_back(std::move(premise_sub));
    node->subs.push_back(std::move(conclusion_sub));
    return Status::OK();
  }

  const Schema& schema_;
  const AccessSchema& access_;
  const ControlAnalysisOptions& options_;
};

void RenderDerivation(const NodeAnalysis& node, const ControlOption& opt,
                      int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += opt.rule;
  *out += " controls=" + VarSetToString(opt.controls);
  *out += StrFormat(" fetch<=%.0f result<=%.0f", opt.fetch_bound,
                    opt.result_bound);
  if (opt.access != nullptr) *out += " via " + opt.access->ToString();
  *out += " : " + node.formula.ToString() + "\n";
  // Recurse structurally.
  if (opt.rule == "and") {
    for (size_t i = 0; i < opt.conjunct_order.size(); ++i) {
      RenderDerivation(*node.subs[opt.conjunct_order[i]], *opt.child_options[i],
                       depth + 1, out);
    }
    for (size_t ni = 0; ni + node.n_positives < node.subs.size(); ++ni) {
      out->append(static_cast<size_t>(depth + 1) * 2, ' ');
      *out += "safe-negation of:\n";
      RenderDerivation(*node.subs[node.n_positives + ni],
                       *opt.child_options[opt.conjunct_order.size() + ni],
                       depth + 2, out);
    }
  } else if (opt.rule == "or") {
    for (size_t i = 0; i < opt.child_options.size(); ++i) {
      RenderDerivation(*node.subs[i], *opt.child_options[i], depth + 1, out);
    }
  } else if (opt.rule == "exists") {
    RenderDerivation(*node.subs[0], *opt.child_options[0], depth + 1, out);
  } else if (opt.rule == "forall") {
    RenderDerivation(*node.subs[0], *opt.child_options[0], depth + 1, out);
    RenderDerivation(*node.subs[1], *opt.child_options[1], depth + 1, out);
  }
}

}  // namespace

Result<ControllabilityAnalysis> ControllabilityAnalysis::Analyze(
    const Formula& f, const Schema& schema, const AccessSchema& access,
    const ControlAnalysisOptions& options) {
  SI_RETURN_IF_ERROR(access.Validate(schema));
  obs::ScopedSpan span(obs::Tracer::Global(), "controllability.analyze",
                       "core");
  Analyzer analyzer(schema, access, options);
  ControllabilityAnalysis out;
  SI_ASSIGN_OR_RETURN(out.root_, analyzer.Analyze(f));
  if (span.enabled()) {
    span.Arg("options", static_cast<uint64_t>(out.root_->options.size()));
  }
  return out;
}

std::vector<VarSet> ControllabilityAnalysis::MinimalControlSets() const {
  // Options are a Pareto frontier over (controls, bounds), so two options may
  // share one controls set; dedupe and keep ⊆-minimal sets only.
  std::vector<VarSet> sets;
  for (const auto& o : root_->options) sets.push_back(o->controls);
  std::sort(sets.begin(), sets.end(),
            [](const VarSet& a, const VarSet& b) { return a.size() < b.size(); });
  std::vector<VarSet> minimal;
  for (const VarSet& s : sets) {
    bool dominated = false;
    for (const VarSet& kept : minimal) {
      if (VarSubset(kept, s)) {  // includes equality
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(s);
  }
  return minimal;
}

bool ControllabilityAnalysis::IsControlledBy(const VarSet& vars) const {
  VarSet usable = VarIntersect(vars, root_->formula.FreeVariables());
  for (const auto& o : root_->options) {
    if (VarSubset(o->controls, usable)) return true;
  }
  return false;
}

const ControlOption* ControllabilityAnalysis::BestOptionFor(
    const VarSet& vars) const {
  VarSet usable = VarIntersect(vars, root_->formula.FreeVariables());
  const ControlOption* best = nullptr;
  for (const auto& o : root_->options) {
    if (!VarSubset(o->controls, usable)) continue;
    if (best == nullptr || o->fetch_bound < best->fetch_bound) best = o.get();
  }
  return best;
}

Result<double> ControllabilityAnalysis::StaticFetchBound(
    const VarSet& vars) const {
  const ControlOption* best = BestOptionFor(vars);
  if (best == nullptr) {
    return Status::FailedPrecondition("query is not controlled by " +
                                      VarSetToString(vars));
  }
  return best->fetch_bound;
}

std::string ControllabilityAnalysis::Explain(const VarSet& vars) const {
  const ControlOption* best = BestOptionFor(vars);
  if (best == nullptr) {
    return "not controlled by " + VarSetToString(vars) + "\n";
  }
  std::string out;
  RenderDerivation(*root_, *best, 0, &out);
  return out;
}

Verdict DecideQCntl(const ControllabilityAnalysis& analysis, size_t k) {
  for (const VarSet& s : analysis.MinimalControlSets()) {
    if (s.size() <= k) return Verdict::kYes;
  }
  return analysis.truncated() ? Verdict::kUnknown : Verdict::kNo;
}

Verdict DecideQCntlMin(const ControllabilityAnalysis& analysis,
                       const Variable& x) {
  for (const VarSet& s : analysis.MinimalControlSets()) {
    if (s.count(x)) return Verdict::kYes;
  }
  return analysis.truncated() ? Verdict::kUnknown : Verdict::kNo;
}

}  // namespace scalein
