#ifndef SCALEIN_CORE_QSI_H_
#define SCALEIN_CORE_QSI_H_

#include <optional>

#include "core/qdsi.h"
#include "query/cq.h"
#include "query/formula.h"
#include "relational/database.h"
#include "relational/schema.h"

namespace scalein {

/// Result of a QSI decision (scale independence over *all* instances, §3).
struct QsiDecision {
  Verdict verdict = Verdict::kUnknown;
  std::string method;
  /// For `kNo`: a database on which Q is not scale-independent w.r.t. M.
  std::optional<Database> counterexample;
  /// Non-OK when the counterexample search aborted on an injected or
  /// environmental fault (SCALEIN_FAILPOINTS site "qsi_candidate"); the
  /// verdict is then kUnknown — a fault never forges a yes/no.
  Status error = Status::OK();
};

/// QSI(CQ) — decidable, and almost always negative (§3):
///  * Boolean or constant-head CQ: yes iff ‖core(Q)‖ ≤ M. (True instances
///    have witnesses of the core size; the frozen core itself needs exactly
///    ‖core‖ tuples, so the bound is tight.)
///  * Data-selecting CQ with ≥1 head variable and ≥1 atom: no — by
///    monotonicity one can always pump fresh answers; the returned
///    counterexample packs M+1 variable-disjoint copies of the frozen body.
///  * Trivial CQ (empty body): yes with M = 0.
QsiDecision DecideQsiCq(const Cq& q, uint64_t m);

/// QSI(UCQ), Boolean case: sound yes when max_i ‖core(Q_i)‖ ≤ M; sound no
/// when some frozen core of a disjunct needs more than M tuples as a witness
/// of the whole UCQ; otherwise unknown. Data-selecting UCQs follow the CQ
/// monotonicity argument.
QsiDecision DecideQsiUcq(const Ucq& q, uint64_t m);

struct QsiFoOptions {
  /// Domain size for the counterexample search.
  size_t domain_size = 3;
  /// Max tuples per candidate counterexample database.
  size_t max_tuples = 4;
  /// Cap on candidate databases examined.
  uint64_t max_databases = 100'000;
  QdsiOptions qdsi;
};

/// QSI(FO) is undecidable (Proposition 3.5; SQ_FO is not even r.e.), so this
/// is a *sound, incomplete* checker:
///  * yes for atom-free queries with M ≥ 0 (truth independent of tuples);
///  * no when an exhaustive search over small databases (bounded domain and
///    tuple count) finds a counterexample, which is returned;
///  * unknown otherwise.
QsiDecision DecideQsiFo(const FoQuery& q, const Schema& schema, uint64_t m,
                        const QsiFoOptions& options = {});

/// Size of the minimum witness for Q in D (|D| if only D itself works), via
/// the exhaustive FO subset search. Drives the Proposition 3.6 experiment:
/// a Boolean query *fully uses its input* on a database family when this
/// equals |D| for every member.
Result<uint64_t> MinWitnessSizeFo(const FoQuery& q, const Database& d,
                                  const QdsiOptions& options = {});

}  // namespace scalein

#endif  // SCALEIN_CORE_QSI_H_
