#ifndef SCALEIN_CORE_VERDICT_H_
#define SCALEIN_CORE_VERDICT_H_

namespace scalein {

/// Three-valued verdict for the library's (worst-case intractable) decision
/// procedures. `kUnknown` means a configured search budget was exhausted
/// before the problem was decided; raising the budget (or shrinking the
/// instance) always resolves it.
enum class Verdict { kYes, kNo, kUnknown };

const char* VerdictName(Verdict v);

}  // namespace scalein

#endif  // SCALEIN_CORE_VERDICT_H_
