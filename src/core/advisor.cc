#include "core/advisor.h"

#include <algorithm>
#include <set>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace scalein {
namespace {

void CollectRelations(const Formula& f, std::set<std::string>* out) {
  switch (f.kind()) {
    case FormulaKind::kAtom:
      out->insert(f.relation());
      return;
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEq:
      return;
    case FormulaKind::kNot:
      CollectRelations(f.child(), out);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const Formula& c : f.operands()) CollectRelations(c, out);
      return;
    case FormulaKind::kImplies:
      CollectRelations(f.premise(), out);
      CollectRelations(f.conclusion(), out);
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      CollectRelations(f.body(), out);
      return;
  }
}

struct Candidate {
  std::string relation;
  std::vector<std::string> key_attrs;
  uint64_t bound;
};

/// All attribute subsets of size 1..max_key of `rs`, with N calibrated
/// against `sample` when available. The loop hosts the `advisor_candidates`
/// failpoint so chaos runs can kill the search mid-enumeration.
Status EnumerateCandidates(const RelationSchema& rs, const Database* sample,
                           const AdvisorOptions& options,
                           std::vector<Candidate>* out) {
  const std::vector<std::string>& attrs = rs.attributes();
  const size_t n = attrs.size();
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    SI_RETURN_IF_ERROR(SCALEIN_FAILPOINT("advisor_candidates"));
    size_t bits = static_cast<size_t>(__builtin_popcount(mask));
    if (bits > options.max_key_size) continue;
    Candidate c;
    c.relation = rs.name();
    std::vector<size_t> positions;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        c.key_attrs.push_back(attrs[i]);
        positions.push_back(i);
      }
    }
    c.bound = options.default_bound;
    if (sample != nullptr) {
      const Relation* rel = sample->FindRelation(rs.name());
      if (rel != nullptr && rel->size() > 0) {
        const HashIndex& idx =
            const_cast<Relation*>(rel)->EnsureIndex(positions);
        c.bound = std::max<uint64_t>(1, idx.MaxBucketSize());
        if (c.bound > options.default_bound) continue;  // not selective enough
      }
    }
    out->push_back(std::move(c));
  }
  return Status::OK();
}

}  // namespace

Result<AdvisorResult> AdviseAccessSchema(
    const std::vector<WorkloadQuery>& workload, const Schema& schema,
    const Database* sample, const AdvisorOptions& options) {
  // The advisor was the one engine without span/recorder coverage; the span
  // wraps the whole iterative-deepening search, the event summarizes it.
  obs::ScopedSpan span(obs::Tracer::Global(), "advisor.search", "core");
  if (span.enabled()) {
    span.Arg("workload", static_cast<uint64_t>(workload.size()));
    span.Arg("max_statements", static_cast<uint64_t>(options.max_statements));
  }
  AdvisorResult result;
  if (workload.empty()) {
    result.found = true;
    return result;
  }

  // Candidate pool over the relations the workload mentions.
  std::set<std::string> relations;
  for (const WorkloadQuery& wq : workload) {
    CollectRelations(wq.query.body, &relations);
  }
  std::vector<Candidate> candidates;
  for (const std::string& name : relations) {
    const RelationSchema* rs = schema.FindRelation(name);
    if (rs == nullptr) {
      return Status::NotFound("workload uses unknown relation '" + name + "'");
    }
    SI_RETURN_IF_ERROR(EnumerateCandidates(*rs, sample, options, &candidates));
  }

  auto finish = [&](const AdvisorResult& r) {
    if (span.enabled()) {
      span.Arg("candidates", static_cast<uint64_t>(candidates.size()));
      span.Arg("combinations_checked", r.combinations_checked);
      span.Arg("found", r.found);
      span.Arg("truncated", r.truncated);
    }
    if (obs::FlightRecorderEnabled()) {
      obs::RecordFlightEvent(
          obs::EventKind::kAdvisorSearch, "advisor.search",
          {obs::EventArg("candidates", static_cast<uint64_t>(candidates.size())),
           obs::EventArg("combinations_checked", r.combinations_checked),
           obs::EventArg("found", r.found),
           obs::EventArg("truncated", r.truncated)});
    }
  };

  auto evaluate_design = [&](const std::vector<size_t>& picked,
                             double* total_bound) -> Result<bool> {
    AccessSchema design;
    for (size_t i : picked) {
      design.Add(candidates[i].relation, candidates[i].key_attrs,
                 candidates[i].bound);
    }
    double total = 0;
    for (const WorkloadQuery& wq : workload) {
      SI_ASSIGN_OR_RETURN(
          ControllabilityAnalysis analysis,
          ControllabilityAnalysis::Analyze(wq.query.body, schema, design));
      if (!analysis.IsControlledBy(wq.parameters)) return false;
      SI_ASSIGN_OR_RETURN(double bound,
                          analysis.StaticFetchBound(wq.parameters));
      total += bound;
    }
    *total_bound = total;
    return true;
  };

  const size_t n = candidates.size();
  for (size_t k = 1; k <= std::min(options.max_statements, n); ++k) {
    bool found_at_k = false;
    std::vector<size_t> best_design;
    double best_bound = 0;

    std::vector<size_t> idx(k);
    for (size_t i = 0; i < k; ++i) idx[i] = i;
    bool more = n >= k;
    while (more) {
      if (++result.combinations_checked > options.max_combinations) {
        result.truncated = true;
        more = false;
        break;
      }
      double total_bound = 0;
      SI_ASSIGN_OR_RETURN(bool works, evaluate_design(idx, &total_bound));
      if (works && (!found_at_k || total_bound < best_bound)) {
        found_at_k = true;
        best_design = idx;
        best_bound = total_bound;
      }
      // Next combination.
      size_t j = k;
      bool advanced = false;
      while (j > 0) {
        --j;
        if (idx[j] != j + n - k) {
          ++idx[j];
          for (size_t l = j + 1; l < k; ++l) idx[l] = idx[l - 1] + 1;
          advanced = true;
          break;
        }
      }
      if (!advanced) more = false;
    }
    if (found_at_k) {
      result.found = true;
      result.total_fetch_bound = best_bound;
      for (size_t i : best_design) {
        result.design.Add(candidates[i].relation, candidates[i].key_attrs,
                          candidates[i].bound);
      }
      finish(result);
      return result;
    }
    if (result.truncated) break;
  }
  finish(result);
  return result;
}

}  // namespace scalein
