#ifndef SCALEIN_CORE_WITNESS_H_
#define SCALEIN_CORE_WITNESS_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "eval/answer_set.h"
#include "query/cq.h"
#include "query/formula.h"
#include "relational/database.h"

namespace scalein::exec {
class ResourceGovernor;
}  // namespace scalein::exec

namespace scalein {

/// A tuple of a specific relation — the unit of the |D_Q| ≤ M accounting.
struct TupleRef {
  std::string relation;
  Tuple tuple;

  bool operator<(const TupleRef& o) const {
    if (relation != o.relation) return relation < o.relation;
    return TupleLess(tuple, o.tuple);
  }
  bool operator==(const TupleRef& o) const {
    return relation == o.relation && TupleEquals(tuple, o.tuple);
  }
  std::string ToString() const { return relation + TupleToString(tuple); }
};

using TupleSet = std::set<TupleRef>;

/// All tuples of `db`, in deterministic (relation, content) order.
std::vector<TupleRef> AllTuples(const Database& db);

/// The sub-database D_Q ⊆ D induced by `tuples` (every ref must be in `db`).
Database SubDatabase(const Database& db, const TupleSet& tuples);

/// The *witness problem* from the proof of Theorem 3.1: does D' ⊆ D satisfy
/// Q(D') = Q(D)? FO variant uses the active-domain reference evaluator
/// (PTIME data complexity / PSPACE combined, as the paper shows).
bool IsWitnessFo(const FoQuery& q, const Database& d, const Database& d_sub);

/// CQ/UCQ variants (Πp2-complete combined complexity per the paper; here
/// decided by two evaluations + set comparison).
bool IsWitnessCq(const Cq& q, const Database& d, const Database& d_sub);
bool IsWitnessUcq(const Ucq& q, const Database& d, const Database& d_sub);

/// All ⊆-minimal supports of one answer tuple of a CQ: the images in D of the
/// satisfying assignments producing `answer_full` (a full-head tuple from
/// CqEvaluator::EvaluateFull). Each support has at most ‖Q‖ tuples — the
/// homomorphism-semantics bound §3 uses for Boolean CQs. At most
/// `max_supports` assignments are examined (0 = unlimited).
std::vector<TupleSet> AnswerSupports(const Cq& q, const Database& d,
                                     const Tuple& answer_full,
                                     size_t max_supports = 0);

/// Support of the *first* satisfying assignment of `q`'s body (early exit —
/// no full answer enumeration), or nullopt if the query is false. Backs the
/// O(1) Boolean fast path of Corollary 3.2.
std::optional<TupleSet> FirstSupport(const Cq& q, const Database& d);

/// Greedy witness construction for a (data-selecting or Boolean) CQ: covers
/// every answer with one support, preferring supports that reuse already
/// chosen tuples (the set-cover greedy heuristic; QDSI's NP-hardness is by
/// reduction *from* set cover, so a ln-factor approximation is the natural
/// polynomial-time companion). Returns the chosen tuple set.
TupleSet GreedyWitnessCq(const Cq& q, const Database& d);

/// Exact minimum-cardinality witness for a CQ via branch-and-bound over
/// per-answer supports. Returns nullopt if every witness exceeds `budget`
/// tuples. `max_supports_per_answer` caps the branching factor (making the
/// result a sound "yes"/possibly-incomplete "no" when hit; `exact` reports
/// whether the search was exhaustive). A governor (optional) checkpoints the
/// search: a deadline/cancellation trip stops it gracefully with
/// `exact = false`, exactly like hitting the node cap.
struct MinWitnessResult {
  std::optional<TupleSet> witness;
  bool exact = true;
  uint64_t nodes_explored = 0;
};
MinWitnessResult MinimumWitnessCq(const Cq& q, const Database& d,
                                  uint64_t budget,
                                  size_t max_supports_per_answer = 64,
                                  exec::ResourceGovernor* governor = nullptr);

/// The underlying combinatorial search: given, for each answer, its list of
/// alternative supports, find a minimum-cardinality union choosing one
/// support per answer, if one of size ≤ `budget` exists. This is the exact
/// counterpart of the set-cover reduction in the Theorem 3.3 lower bound.
MinWitnessResult MinimumSupportCover(
    const std::vector<std::vector<TupleSet>>& per_answer_supports,
    uint64_t budget, exec::ResourceGovernor* governor = nullptr);

}  // namespace scalein

#endif  // SCALEIN_CORE_WITNESS_H_
