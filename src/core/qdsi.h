#ifndef SCALEIN_CORE_QDSI_H_
#define SCALEIN_CORE_QDSI_H_

#include <optional>
#include <string>

#include "core/verdict.h"
#include "core/witness.h"
#include "exec/governor.h"
#include "query/cq.h"
#include "query/formula.h"
#include "relational/database.h"

namespace scalein {

struct QdsiOptions {
  /// Cap on satisfying assignments enumerated per answer tuple (CQ path).
  size_t max_supports_per_answer = 64;
  /// Cap on candidate subsets examined by the FO subset search.
  uint64_t max_subsets = 5'000'000;
  /// Optional resource governor (deadline/cancellation) checkpointed by the
  /// search loops; a trip degrades the verdict to kUnknown instead of
  /// spinning past the caller's budget.
  exec::ResourceGovernor* governor = nullptr;
};

/// Outcome of a QDSI decision: the verdict, a witness D_Q when the answer is
/// yes, and work counters for the complexity experiments.
struct QdsiDecision {
  Verdict verdict = Verdict::kUnknown;
  std::optional<TupleSet> witness;
  uint64_t work = 0;        ///< search nodes / subsets examined
  std::string method;       ///< which decision path fired
  /// Non-OK when the search aborted on an injected or environmental fault
  /// (SCALEIN_FAILPOINTS sites "qdsi_subset"/"qdsi_support"); the verdict is
  /// then kUnknown — a fault never forges a yes/no.
  Status error = Status::OK();

  bool yes() const { return verdict == Verdict::kYes; }
};

/// QDSI(CQ): is Q scale-independent in D w.r.t. M (§3)? Decision order:
///  1. M ≥ |D|                         -> yes, witness D (any Q).
///  2. Boolean Q with ‖Q‖ ≤ M          -> yes in O(1) (Corollary 3.2);
///     witness from any single satisfying assignment.
///  3. M ≥ |Q(D)|·‖Q‖                  -> yes (per-answer support bound, §3).
///  4. exact support-cover branch & bound (mirrors the SCP hardness of
///     Theorem 3.3), yielding yes + minimum witness, or no.
QdsiDecision DecideQdsiCq(const Cq& q, const Database& d, uint64_t m,
                          const QdsiOptions& options = {});

/// QDSI(UCQ): same bounds apply with ‖Q‖ = max over disjuncts; an answer may
/// be covered through any disjunct.
QdsiDecision DecideQdsiUcq(const Ucq& q, const Database& d, uint64_t m,
                           const QdsiOptions& options = {});

/// QDSI(FO): exhaustive search over subsets D' ⊆ D with |D'| ≤ M using the
/// active-domain reference evaluator — the faithful (PSPACE-flavored)
/// procedure; use only on small instances. When M is a fixed constant the
/// same loop is polynomial in |D| (Proposition 3.4).
QdsiDecision DecideQdsiFo(const FoQuery& q, const Database& d, uint64_t m,
                          const QdsiOptions& options = {});

}  // namespace scalein

#endif  // SCALEIN_CORE_QDSI_H_
