#include "core/access_schema.h"

#include <algorithm>
#include <unordered_map>

#include "util/strings.h"

namespace scalein {

std::string AccessStatement::ToString() const {
  std::string out = "(" + relation + ", {" + Join(key_attrs, ", ") + "}";
  if (value_attrs.has_value()) {
    out += "[{" + Join(*value_attrs, ", ") + "}]";
  }
  out += ", N=" + std::to_string(max_tuples) +
         ", T=" + StrFormat("%g", retrieval_time) + ")";
  return out;
}

AccessSchema& AccessSchema::Add(const std::string& relation,
                                std::vector<std::string> key_attrs,
                                uint64_t max_tuples, double retrieval_time) {
  AccessStatement s;
  s.relation = relation;
  s.key_attrs = std::move(key_attrs);
  s.max_tuples = max_tuples;
  s.retrieval_time = retrieval_time;
  statements_.push_back(std::move(s));
  return *this;
}

AccessSchema& AccessSchema::AddEmbedded(const std::string& relation,
                                        std::vector<std::string> key_attrs,
                                        std::vector<std::string> value_attrs,
                                        uint64_t max_tuples,
                                        double retrieval_time) {
  AccessStatement s;
  s.relation = relation;
  s.key_attrs = key_attrs;
  // Enforce X ⊆ Y by unioning the key into the value set.
  for (const std::string& k : key_attrs) {
    if (std::find(value_attrs.begin(), value_attrs.end(), k) ==
        value_attrs.end()) {
      value_attrs.push_back(k);
    }
  }
  s.value_attrs = std::move(value_attrs);
  s.max_tuples = max_tuples;
  s.retrieval_time = retrieval_time;
  statements_.push_back(std::move(s));
  return *this;
}

AccessSchema& AccessSchema::AddFd(const std::string& relation,
                                  std::vector<std::string> determinant,
                                  std::vector<std::string> dependent,
                                  double retrieval_time) {
  return AddEmbedded(relation, std::move(determinant), std::move(dependent), 1,
                     retrieval_time);
}

AccessSchema& AccessSchema::AddKey(const std::string& relation,
                                   std::vector<std::string> key_attrs,
                                   double retrieval_time) {
  return Add(relation, std::move(key_attrs), 1, retrieval_time);
}

AccessSchema& AccessSchema::AddFullAccess(const std::string& relation,
                                          uint64_t max_tuples) {
  return Add(relation, {}, max_tuples, 1.0);
}

std::vector<const AccessStatement*> AccessSchema::ForRelation(
    const std::string& relation) const {
  std::vector<const AccessStatement*> out;
  for (const AccessStatement& s : statements_) {
    if (s.relation == relation) out.push_back(&s);
  }
  return out;
}

Status AccessSchema::Validate(const Schema& schema) const {
  for (const AccessStatement& s : statements_) {
    const RelationSchema* rs = schema.FindRelation(s.relation);
    if (rs == nullptr) {
      return Status::NotFound("access statement over unknown relation '" +
                              s.relation + "'");
    }
    for (const std::string& a : s.key_attrs) {
      if (!rs->AttributePosition(a).has_value()) {
        return Status::NotFound("access statement key attribute '" + a +
                                "' not in relation '" + s.relation + "'");
      }
    }
    if (s.value_attrs.has_value()) {
      for (const std::string& a : *s.value_attrs) {
        if (!rs->AttributePosition(a).has_value()) {
          return Status::NotFound("access statement value attribute '" + a +
                                  "' not in relation '" + s.relation + "'");
        }
      }
    }
  }
  return Status::OK();
}

Status AccessSchema::BuildIndexes(Database* db, const Schema& schema) const {
  SI_RETURN_IF_ERROR(Validate(schema));
  for (const AccessStatement& s : statements_) {
    const RelationSchema* rs = schema.FindRelation(s.relation);
    SI_ASSIGN_OR_RETURN(std::vector<size_t> key_positions,
                        rs->AttributePositions(s.key_attrs));
    Relation& rel = db->relation(s.relation);
    if (s.is_plain()) {
      rel.EnsureIndex(key_positions);
    } else {
      SI_ASSIGN_OR_RETURN(std::vector<size_t> value_positions,
                          rs->AttributePositions(*s.value_attrs));
      rel.EnsureProjectionIndex(key_positions, value_positions);
      // The bounded executor also verifies candidate rows via the key index.
      rel.EnsureIndex(key_positions);
    }
  }
  return Status::OK();
}

std::string AccessSchema::ToString() const {
  std::string out;
  for (const AccessStatement& s : statements_) {
    out += s.ToString();
    out += "\n";
  }
  return out;
}

std::string ConformanceViolation::ToString(const AccessSchema& schema) const {
  return schema.statements()[statement_index].ToString() + " violated at key " +
         TupleToString(key) + ": " + std::to_string(observed) + " > " +
         std::to_string(declared);
}

Result<ConformanceReport> CheckConformance(const Database& db,
                                           const Schema& schema,
                                           const AccessSchema& access,
                                           size_t max_violations) {
  SI_RETURN_IF_ERROR(access.Validate(schema));
  ConformanceReport report;
  const std::vector<AccessStatement>& statements = access.statements();
  for (size_t si = 0; si < statements.size(); ++si) {
    const AccessStatement& s = statements[si];
    const RelationSchema* rs = schema.FindRelation(s.relation);
    SI_ASSIGN_OR_RETURN(std::vector<size_t> key_positions,
                        rs->AttributePositions(s.key_attrs));
    const Relation& rel = db.relation(s.relation);

    // Count per-key group sizes; for embedded statements count distinct
    // Y-projections per key.
    std::optional<std::vector<size_t>> value_positions;
    if (!s.is_plain()) {
      SI_ASSIGN_OR_RETURN(std::vector<size_t> vp,
                          rs->AttributePositions(*s.value_attrs));
      value_positions = std::move(vp);
    }
    std::unordered_map<Tuple, std::unordered_map<Tuple, char, TupleHash, TupleEq>,
                       TupleHash, TupleEq>
        embedded_groups;
    std::unordered_map<Tuple, uint64_t, TupleHash, TupleEq> plain_groups;
    for (size_t i = 0; i < rel.size(); ++i) {
      TupleView row = rel.TupleAt(i);
      Tuple key = ProjectTuple(row, key_positions);
      if (s.is_plain()) {
        plain_groups[std::move(key)]++;
      } else {
        embedded_groups[std::move(key)].emplace(
            ProjectTuple(row, *value_positions), 1);
      }
    }
    size_t reported = 0;
    auto report_violation = [&](const Tuple& key, uint64_t observed) {
      report.conforms = false;
      if (reported < max_violations) {
        report.violations.push_back({si, key, observed, s.max_tuples});
        ++reported;
      }
    };
    if (s.is_plain()) {
      for (const auto& [key, count] : plain_groups) {
        if (count > s.max_tuples) report_violation(key, count);
      }
    } else {
      for (const auto& [key, group] : embedded_groups) {
        if (group.size() > s.max_tuples) report_violation(key, group.size());
      }
    }
  }
  return report;
}

}  // namespace scalein
