#ifndef SCALEIN_CORE_CONTROLLABILITY_H_
#define SCALEIN_CORE_CONTROLLABILITY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/access_schema.h"
#include "core/verdict.h"
#include "query/formula.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

/// Tuning knobs for the controllability derivation.
struct ControlAnalysisOptions {
  /// The conjunction rule is order-sensitive; all orders are explored by a
  /// DP over conjunct subsets (2^n states), capped here. Beyond the cap the
  /// analysis falls back to left-to-right order only (sound, incomplete).
  size_t max_conjuncts = 14;
  /// Antichain cap per node; excess options are dropped (sound, incomplete).
  size_t max_options_per_node = 48;
};

/// One derivable way to control a subformula: the controlling variable set
/// x̄, the rule that produced it, the ingredients the bounded executor needs
/// to act on it, and static bounds derived from the access schema's N values.
struct ControlOption {
  VarSet controls;    ///< x̄: values for these make evaluation bounded
  std::string rule;   ///< "atom", "condition", "and", "or", "exists", "forall"

  /// For "condition" options on conjunctions of equalities: how each free
  /// variable's value is *determined* — a constant (from x = c chains) or a
  /// representative variable in `controls`. This is the FO counterpart of
  /// the σ-rule's constant-bound-attribute subtraction in §5 and what the
  /// paper's SQL example ("... and x = 1 ...") implicitly uses. Empty for
  /// the plain all-variables condition option.
  std::map<Variable, Term> condition_resolve;

  /// Static worst-case number of base tuples fetched when evaluating with x̄
  /// fixed (the M the paper derives from the N values of A).
  double fetch_bound = 0;
  /// Static worst-case number of result tuples over free(Q) − x̄.
  double result_bound = 1;

  // --- rule "atom" ---
  const AccessStatement* access = nullptr;  ///< statement used for the fetch
  std::vector<size_t> key_positions;        ///< atom arg positions forming X

  // --- rule "and" ---
  /// Evaluation order over the node's positive conjuncts (indices into the
  /// analysis' positive-subnode list).
  std::vector<size_t> conjunct_order;

  /// Child options, meaning by rule: "and": one per positive conjunct in
  /// `conjunct_order`, then one per negative conjunct; "or": one per operand;
  /// "exists": the body option; "forall": {premise option, conclusion
  /// option}.
  std::vector<const ControlOption*> child_options;
};

/// Analysis of one subformula: its derivable control options (a ⊆-minimal
/// antichain; the expansion rule is implicit) plus analyses of the
/// structural children.
struct NodeAnalysis {
  Formula formula = Formula::True();
  /// Whole node is a Boolean combination of equalities ("conditions" rule).
  bool is_condition = false;
  /// Children: for conjunctions, the flattened positive conjuncts followed by
  /// the *bodies* of the negative (¬Q') conjuncts; for ∨ the operands; for
  /// ∃ the body; for ∀(Q→Q') the premise then the conclusion.
  std::vector<std::unique_ptr<NodeAnalysis>> subs;
  size_t n_positives = 0;  ///< split point in `subs` for conjunctions
  /// For conjunctions: the positive conjunct formulas (flattened) and the
  /// negative conjunct bodies, aligned with `subs`.
  std::vector<Formula> sub_formulas;

  std::vector<std::unique_ptr<ControlOption>> options;
  bool truncated = false;  ///< some cap was hit below this node
};

/// The §4 inference system: derives, bottom-up, every minimal controlling
/// set of every subformula under an access schema, keeping enough provenance
/// that BoundedEvaluator can execute the derivation (the constructive content
/// of Theorem 4.2).
class ControllabilityAnalysis {
 public:
  /// Runs the analysis. Fails only on structural errors (unknown relations /
  /// arity mismatches w.r.t. `schema`); an underivable formula yields an
  /// analysis with no root options, not an error.
  static Result<ControllabilityAnalysis> Analyze(
      const Formula& f, const Schema& schema, const AccessSchema& access,
      const ControlAnalysisOptions& options = {});

  const NodeAnalysis& root() const { return *root_; }

  /// The ⊆-minimal derivable controlling sets of the whole formula.
  std::vector<VarSet> MinimalControlSets() const;

  /// Is the formula x̄-controlled for x̄ = `vars`? Applies the expansion rule:
  /// true iff some minimal set ⊆ vars ∩ free(f).
  bool IsControlledBy(const VarSet& vars) const;

  /// Whether the formula is controlled by *all* of its free variables — the
  /// paper's unqualified "Q' is controlled under A".
  bool IsControlled() const { return !root_->options.empty(); }

  /// Best (minimum fetch-bound) option whose controls are ⊆ `vars`;
  /// nullptr if none.
  const ControlOption* BestOptionFor(const VarSet& vars) const;

  /// Static bound on base tuples fetched when evaluating with `vars` fixed;
  /// error if not controlled by `vars`.
  Result<double> StaticFetchBound(const VarSet& vars) const;

  /// True if an option/conjunct cap was hit anywhere (the analysis is then
  /// sound but possibly incomplete).
  bool truncated() const { return root_->truncated; }

  /// Human-readable derivation for the best option under `vars`.
  std::string Explain(const VarSet& vars) const;

 private:
  ControllabilityAnalysis() = default;
  std::unique_ptr<NodeAnalysis> root_;
};

/// Problem QCntl (Theorem 4.4, NP-complete): is there x̄ with |x̄| ≤ K such
/// that Q is x̄-controlled under A? Decided exactly from the derived minimal
/// antichain (kUnknown if the analysis was truncated and the answer would be
/// "no").
Verdict DecideQCntl(const ControllabilityAnalysis& analysis, size_t k);

/// Problem QCntlmin (Theorem 4.4): is Q minimally controlled by some x̄
/// containing variable `x`?
Verdict DecideQCntlMin(const ControllabilityAnalysis& analysis,
                       const Variable& x);

}  // namespace scalein

#endif  // SCALEIN_CORE_CONTROLLABILITY_H_
