#include "core/bounded_eval.h"

#include <algorithm>
#include <deque>
#include <iterator>
#include <optional>
#include <unordered_map>

#include "core/approx.h"
#include "exec/governed_parallel.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "par/worker_pool.h"
#include "util/failpoint.h"

namespace scalein {
namespace {

/// Minimum chase-frontier size before the per-assignment loop is worth
/// fanning out as morsels; below this the submit/merge overhead dominates.
constexpr size_t kParallelFrontierThreshold = 16;

/// Builds every index the derivation under (node, opt) can probe, so a
/// subsequent parallel walk only ever *finds* indexes (Ensure* is a
/// const-but-mutating cache fill and must not race). Mirrors the recursion
/// of PlainExecutor::RegisterOps.
void PrebuildPlainIndexes(const Database& db, const NodeAnalysis& node,
                          const ControlOption& opt) {
  if (opt.rule == "atom") {
    const Relation* rel = db.FindRelation(node.formula.relation());
    if (rel == nullptr || opt.key_positions.empty()) return;
    if (rel->num_shards() > 1) {
      rel->EnsureShardedIndex(opt.key_positions);
    } else {
      rel->EnsureIndex(opt.key_positions);
    }
    return;
  }
  if (opt.rule == "and") {
    for (size_t step = 0; step < opt.conjunct_order.size(); ++step) {
      PrebuildPlainIndexes(db, *node.subs[opt.conjunct_order[step]],
                           *opt.child_options[step]);
    }
    const size_t n_neg = node.subs.size() - node.n_positives;
    for (size_t ni = 0; ni < n_neg; ++ni) {
      PrebuildPlainIndexes(db, *node.subs[node.n_positives + ni],
                           *opt.child_options[opt.conjunct_order.size() + ni]);
    }
  } else if (opt.rule == "or") {
    for (size_t i = 0; i < node.subs.size(); ++i) {
      PrebuildPlainIndexes(db, *node.subs[i], *opt.child_options[i]);
    }
  } else if (opt.rule == "exists") {
    PrebuildPlainIndexes(db, *node.subs[0], *opt.child_options[0]);
  } else if (opt.rule == "forall") {
    PrebuildPlainIndexes(db, *node.subs[0], *opt.child_options[0]);
    PrebuildPlainIndexes(db, *node.subs[1], *opt.child_options[1]);
  }
}

/// Embedded counterpart: projection indexes for every chase step plus the
/// verification index per atom plan.
void PrebuildEmbeddedIndexes(const Database& db,
                             const EmbeddedCqAnalysis& analysis) {
  if (!analysis.IsScaleIndependent()) return;
  const Cq& q = analysis.query();
  for (const AtomPlan& ap : analysis.plan().atom_plans) {
    const Relation* rel = db.FindRelation(q.atoms()[ap.atom_index].relation);
    if (rel == nullptr) continue;
    for (const AtomChaseStep& step : ap.steps) {
      rel->EnsureProjectionIndex(step.key_positions, step.value_positions);
    }
    if (ap.needs_verification) {
      if (rel->num_shards() > 1) {
        rel->EnsureShardedIndex(ap.verify_key_positions);
      } else {
        rel->EnsureIndex(ap.verify_key_positions);
      }
    }
  }
}

Value ResolveTerm(const Term& t, const Binding& env) {
  if (t.is_const()) return t.constant();
  auto it = env.find(t.var());
  SI_CHECK_MSG(it != env.end(), "unbound variable in bounded evaluation");
  return it->second;
}

/// Evaluates an equality condition under a complete environment.
bool EvalConditionFormula(const Formula& f, const Binding& env) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kEq:
      return ResolveTerm(f.eq_lhs(), env) == ResolveTerm(f.eq_rhs(), env);
    case FormulaKind::kNot:
      return !EvalConditionFormula(f.child(), env);
    case FormulaKind::kAnd:
      for (const Formula& c : f.operands()) {
        if (!EvalConditionFormula(c, env)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const Formula& c : f.operands()) {
        if (EvalConditionFormula(c, env)) return true;
      }
      return false;
    case FormulaKind::kImplies:
      return !EvalConditionFormula(f.premise(), env) ||
             EvalConditionFormula(f.conclusion(), env);
    default:
      SI_CHECK_MSG(false, "non-condition node in condition evaluation");
      return false;
  }
}

using BindingSet = std::set<Binding>;

/// Walks a controllability derivation, fetching data exclusively through the
/// engine's metered access layer so its charges land in the same
/// exec::ExecContext counters (budget, per-relation totals) every other
/// evaluation path uses.
class PlainExecutor {
 public:
  PlainExecutor(Database* db, bool enforce_bounds, exec::ExecContext* ctx)
      : db_(db), enforce_bounds_(enforce_bounds), ctx_(ctx) {}

  /// Worker-lane view for a governed fan-out: shares the parent's node→op
  /// registration (so charge logs carry the parent's op ids) but charges
  /// `ctx` — a charge-log worker context. The worker never writes the
  /// parent's OpCounters; the parent's replay does.
  PlainExecutor(const PlainExecutor& parent, exec::ExecContext* ctx)
      : db_(parent.db_),
        enforce_bounds_(parent.enforce_bounds_),
        ctx_(ctx),
        node_ops_(parent.node_ops_) {}

  Status status() const { return ctx_->status(); }

  /// Pre-registers one OpCounters per derivation node (children in
  /// evaluation order), carrying the node's static fetch bound
  /// (ControlOption::fetch_bound), so the executed derivation renders as an
  /// EXPLAIN ANALYZE tree with bound-vs-actual per node. Optional: when not
  /// called, Eval runs without per-node accounting.
  void RegisterOps(const NodeAnalysis& node, const ControlOption& opt,
                   int32_t parent) {
    std::string label =
        opt.rule == "atom" ? "atom(" + node.formula.relation() + ")" : opt.rule;
    exec::OpCounters* op = ctx_->NewOp(std::move(label), parent);
    op->static_bound = opt.fetch_bound;
    node_ops_[&node] = op;
    if (opt.rule == "and") {
      for (size_t step = 0; step < opt.conjunct_order.size(); ++step) {
        RegisterOps(*node.subs[opt.conjunct_order[step]],
                    *opt.child_options[step], op->id);
      }
      const size_t n_neg = node.subs.size() - node.n_positives;
      for (size_t ni = 0; ni < n_neg; ++ni) {
        RegisterOps(*node.subs[node.n_positives + ni],
                    *opt.child_options[opt.conjunct_order.size() + ni],
                    op->id);
      }
    } else if (opt.rule == "or") {
      for (size_t i = 0; i < node.subs.size(); ++i) {
        RegisterOps(*node.subs[i], *opt.child_options[i], op->id);
      }
    } else if (opt.rule == "exists") {
      RegisterOps(*node.subs[0], *opt.child_options[0], op->id);
    } else if (opt.rule == "forall") {
      RegisterOps(*node.subs[0], *opt.child_options[0], op->id);
      RegisterOps(*node.subs[1], *opt.child_options[1], op->id);
    }
  }

  /// Returns bindings over free(node) − dom(env). Thin accounting wrapper
  /// around EvalImpl: rows_out counts bindings produced per visit, and —
  /// only when the context enabled timing — inclusive wall time per node.
  BindingSet Eval(const NodeAnalysis& node, const ControlOption& opt,
                  const Binding& env) {
    exec::OpCounters* op = OpFor(node);
#if SCALEIN_OBS_ENABLE_TIMING
    if (op != nullptr && ctx_->timing_enabled()) {
      const uint64_t start = obs::MonotonicNowNs();
      BindingSet out = EvalImpl(node, opt, env, op);
      op->next_ns += obs::MonotonicNowNs() - start;
      ++op->next_calls;
      op->rows_out += out.size();
      return out;
    }
#endif
    BindingSet out = EvalImpl(node, opt, env, op);
    // Routed through the context so worker lanes log the bump for the
    // parent's replay instead of writing the shared counter.
    ctx_->ChargeOpRows(op, out.size());
    return out;
  }

 private:
  exec::OpCounters* OpFor(const NodeAnalysis& node) const {
    if (node_ops_.empty()) return nullptr;
    auto it = node_ops_.find(&node);
    return it == node_ops_.end() ? nullptr : it->second;
  }

  BindingSet EvalImpl(const NodeAnalysis& node, const ControlOption& opt,
                      const Binding& env, exec::OpCounters* op) {
    if (!ctx_->ok()) return {};
    if (opt.rule == "condition") {
      // Variables the condition *determines* (x = c pins, x = y chains back
      // to a controlled representative) extend the environment first.
      Binding extension;
      for (const auto& [v, t] : opt.condition_resolve) {
        if (env.count(v)) continue;
        if (t.is_const()) {
          extension.emplace(v, t.constant());
        } else {
          auto rep = env.find(t.var());
          SI_CHECK_MSG(rep != env.end(),
                       "condition representative missing from environment");
          extension.emplace(v, rep->second);
        }
      }
      Binding full = env;
      for (const auto& [v, val] : extension) full.emplace(v, val);
      return EvalConditionFormula(node.formula, full)
                 ? BindingSet{std::move(extension)}
                 : BindingSet{};
    }
    if (opt.rule == "atom") return EvalAtom(node, opt, env, op);
    if (opt.rule == "and") return EvalAnd(node, opt, env);
    if (opt.rule == "or") return EvalOr(node, opt, env);
    if (opt.rule == "exists") return EvalExists(node, opt, env);
    if (opt.rule == "forall") return EvalForall(node, opt, env);
    SI_CHECK_MSG(false, "unknown rule in derivation");
    return {};
  }

  BindingSet EvalAtom(const NodeAnalysis& node, const ControlOption& opt,
                      const Binding& env, exec::OpCounters* op) {
    const Formula& atom = node.formula;
    const Relation* rel = db_->FindRelation(atom.relation());
    if (rel == nullptr) return {};

    // Assemble the index key over the statement's X positions.
    std::vector<std::pair<size_t, Value>> kv;
    kv.reserve(opt.key_positions.size());
    for (size_t p : opt.key_positions) {
      kv.emplace_back(p, ResolveTerm(atom.args()[p], env));
    }
    std::sort(kv.begin(), kv.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<size_t> positions;
    Tuple key;
    for (auto& [p, v] : kv) {
      if (!positions.empty() && positions.back() == p) continue;
      positions.push_back(p);
      key.push_back(v);
    }

    BindingSet out;
    auto consume = [&](TupleView row) {
      Binding extension;
      for (size_t p = 0; p < atom.args().size(); ++p) {
        const Term& t = atom.args()[p];
        if (t.is_const()) {
          if (!(t.constant() == row[p])) return;
          continue;
        }
        auto bound = env.find(t.var());
        if (bound != env.end()) {
          if (!(bound->second == row[p])) return;
          continue;
        }
        auto ext = extension.find(t.var());
        if (ext != extension.end()) {
          if (!(ext->second == row[p])) return;
          continue;
        }
        extension.emplace(t.var(), row[p]);
      }
      out.insert(std::move(extension));
    };

    if (positions.empty()) {
      // (R, ∅, N, T): the whole relation is the access unit.
      exec::ChargeFullAccess(ctx_, atom.relation(), *rel, op);
      if (!ctx_->ok()) return {};
      if (enforce_bounds_ && rel->size() > opt.access->max_tuples) {
        ctx_->SetError(Status::ResourceExhausted(
            "relation " + atom.relation() + " exceeds declared N of " +
            opt.access->ToString()));
        return {};
      }
      for (size_t i = 0; i < rel->size(); ++i) consume(rel->TupleAt(i));
      return out;
    }

    const std::vector<uint32_t>* rows = exec::MeteredIndexLookup(
        ctx_, atom.relation(), *rel, positions, key, op);
    if (!ctx_->ok()) return {};
    if (rows == nullptr) return out;
    if (enforce_bounds_ && rows->size() > opt.access->max_tuples) {
      ctx_->SetError(Status::ResourceExhausted(
          "σ on " + atom.relation() + " exceeds declared N of " +
          opt.access->ToString()));
      return {};
    }
    for (uint32_t r : *rows) consume(rel->TupleAt(r));
    return out;
  }

  /// True when a frontier of `items` independent sub-derivations is worth
  /// fanning out: wide enough, a pool to run on, not already inside a
  /// parallel region (batch lanes and morsel workers run inline), and the
  /// context still clean.
  bool ShouldFanOut(size_t items) const {
    return items >= kParallelFrontierThreshold && par::CurrentLane() < 0 &&
           par::WorkerPool::Global().threads() > 1 && ctx_->ok();
  }

  /// Expands every partial binding through (child, child_opt) — the §4
  /// option tree's independent subformula derivations — as governed
  /// parallel morsels. Appends to `next` in partial order, exactly like the
  /// sequential expansion loop.
  void ExpandParallel(const NodeAnalysis& child, const ControlOption& child_opt,
                      const Binding& env, const std::vector<Binding>& partials,
                      std::vector<Binding>* next) {
    // Ensure* is a const-but-mutating cache fill; build every index this
    // subtree can probe before lanes race on it.
    PrebuildPlainIndexes(*db_, child, child_opt);
    par::WorkerPool& pool = par::WorkerPool::Global();
    const std::vector<std::pair<size_t, size_t>> ranges =
        par::SplitRanges(partials.size(), pool.threads() * 4);
    std::vector<std::vector<Binding>> bufs(ranges.size());
    auto expand_one = [&](const Binding& partial, PlainExecutor* exec,
                          std::vector<Binding>* out) {
      Binding combined = env;
      for (const auto& [v, val] : partial) combined.insert_or_assign(v, val);
      for (const Binding& ext : exec->Eval(child, child_opt, combined)) {
        Binding merged = partial;
        for (const auto& [v, val] : ext) merged.insert_or_assign(v, val);
        out->push_back(std::move(merged));
      }
    };
    (void)exec::GovernedParallelMorsels(
        ctx_, ranges.size(),
        [&](size_t ri, exec::ExecContext* wctx) {
          PlainExecutor wexec(*this, wctx);
          for (size_t i = ranges[ri].first; i < ranges[ri].second && wctx->ok();
               ++i) {
            expand_one(partials[i], &wexec, &bufs[ri]);
          }
        },
        [&](size_t ri) {
          for (size_t i = ranges[ri].first; i < ranges[ri].second && ctx_->ok();
               ++i) {
            expand_one(partials[i], this, next);
          }
        },
        [&](size_t ri) {
          next->insert(next->end(), std::make_move_iterator(bufs[ri].begin()),
                       std::make_move_iterator(bufs[ri].end()));
        });
  }

  /// Filters the surviving partials through the safe negations as governed
  /// parallel morsels; (*keep)[i] ends up exactly as the sequential filter
  /// loop would leave it. Worker lanes write disjoint ranges of `keep`;
  /// morsels the reconciliation discards are either re-executed (starved)
  /// or irrelevant (the whole conjunction returns {} once the context
  /// fails).
  void FilterNegationsParallel(const NodeAnalysis& node,
                               const ControlOption& opt, const Binding& env,
                               const std::vector<Binding>& partials,
                               std::vector<uint8_t>* keep) {
    const size_t n_neg = node.subs.size() - node.n_positives;
    for (size_t ni = 0; ni < n_neg; ++ni) {
      PrebuildPlainIndexes(*db_, *node.subs[node.n_positives + ni],
                           *opt.child_options[opt.conjunct_order.size() + ni]);
    }
    keep->assign(partials.size(), 0);
    par::WorkerPool& pool = par::WorkerPool::Global();
    const std::vector<std::pair<size_t, size_t>> ranges =
        par::SplitRanges(partials.size(), pool.threads() * 4);
    auto filter_one = [&](const Binding& partial,
                          PlainExecutor* exec) -> uint8_t {
      Binding combined = env;
      for (const auto& [v, val] : partial) combined.insert_or_assign(v, val);
      for (size_t ni = 0; ni < n_neg; ++ni) {
        const NodeAnalysis& neg = *node.subs[node.n_positives + ni];
        const ControlOption& neg_opt =
            *opt.child_options[opt.conjunct_order.size() + ni];
        if (!exec->Eval(neg, neg_opt, combined).empty()) return 0;
        if (!exec->ctx_->ok()) return 0;
      }
      return 1;
    };
    (void)exec::GovernedParallelMorsels(
        ctx_, ranges.size(),
        [&](size_t ri, exec::ExecContext* wctx) {
          PlainExecutor wexec(*this, wctx);
          for (size_t i = ranges[ri].first; i < ranges[ri].second && wctx->ok();
               ++i) {
            (*keep)[i] = filter_one(partials[i], &wexec);
          }
        },
        [&](size_t ri) {
          for (size_t i = ranges[ri].first; i < ranges[ri].second && ctx_->ok();
               ++i) {
            (*keep)[i] = filter_one(partials[i], this);
          }
        },
        [&](size_t ri) {});
  }

  BindingSet EvalAnd(const NodeAnalysis& node, const ControlOption& opt,
                     const Binding& env) {
    // Positive conjuncts in derivation order; wide frontiers fan out as
    // governed parallel morsels (exec/governed_parallel.h).
    std::vector<Binding> partials = {Binding{}};
    for (size_t step = 0; step < opt.conjunct_order.size(); ++step) {
      const NodeAnalysis& child = *node.subs[opt.conjunct_order[step]];
      const ControlOption& child_opt = *opt.child_options[step];
      std::vector<Binding> next;
      if (ShouldFanOut(partials.size())) {
        ExpandParallel(child, child_opt, env, partials, &next);
        if (!ctx_->ok()) return {};
      } else {
        for (const Binding& partial : partials) {
          Binding combined = env;
          for (const auto& [v, val] : partial) {
            combined.insert_or_assign(v, val);
          }
          for (const Binding& ext : Eval(child, child_opt, combined)) {
            Binding merged = partial;
            for (const auto& [v, val] : ext) merged.insert_or_assign(v, val);
            next.push_back(std::move(merged));
          }
          if (!ctx_->ok()) return {};
        }
      }
      partials = std::move(next);
    }
    // Safe negations filter the surviving partials.
    const size_t n_neg = node.subs.size() - node.n_positives;
    BindingSet out;
    if (n_neg > 0 && ShouldFanOut(partials.size())) {
      std::vector<uint8_t> keep;
      FilterNegationsParallel(node, opt, env, partials, &keep);
      if (!ctx_->ok()) return {};
      for (size_t i = 0; i < partials.size(); ++i) {
        if (keep[i]) out.insert(partials[i]);
      }
      return out;
    }
    for (const Binding& partial : partials) {
      Binding combined = env;
      for (const auto& [v, val] : partial) combined.insert_or_assign(v, val);
      bool keep = true;
      for (size_t ni = 0; ni < n_neg; ++ni) {
        const NodeAnalysis& neg = *node.subs[node.n_positives + ni];
        const ControlOption& neg_opt =
            *opt.child_options[opt.conjunct_order.size() + ni];
        if (!Eval(neg, neg_opt, combined).empty()) {
          keep = false;
          break;
        }
        if (!ctx_->ok()) return {};
      }
      if (keep) out.insert(partial);
    }
    return out;
  }

  BindingSet EvalOr(const NodeAnalysis& node, const ControlOption& opt,
                    const Binding& env) {
    BindingSet out;
    for (size_t i = 0; i < node.subs.size(); ++i) {
      BindingSet part = Eval(*node.subs[i], *opt.child_options[i], env);
      out.insert(part.begin(), part.end());
      if (!ctx_->ok()) return {};
    }
    return out;
  }

  BindingSet EvalExists(const NodeAnalysis& node, const ControlOption& opt,
                        const Binding& env) {
    BindingSet child = Eval(*node.subs[0], *opt.child_options[0], env);
    BindingSet out;
    for (const Binding& b : child) {
      Binding projected;
      for (const auto& [v, val] : b) {
        bool quantified = false;
        for (const Variable& q : node.formula.quantified()) {
          if (q == v) {
            quantified = true;
            break;
          }
        }
        if (!quantified) projected.emplace(v, val);
      }
      out.insert(std::move(projected));
    }
    return out;
  }

  BindingSet EvalForall(const NodeAnalysis& node, const ControlOption& opt,
                        const Binding& env) {
    BindingSet premise_results =
        Eval(*node.subs[0], *opt.child_options[0], env);
    if (!ctx_->ok()) return {};
    for (const Binding& r : premise_results) {
      Binding extended = env;
      for (const auto& [v, val] : r) extended.insert_or_assign(v, val);
      if (Eval(*node.subs[1], *opt.child_options[1], extended).empty()) {
        return {};
      }
      if (!ctx_->ok()) return {};
    }
    return BindingSet{Binding{}};
  }

  Database* db_;
  bool enforce_bounds_;
  exec::ExecContext* ctx_;
  std::unordered_map<const NodeAnalysis*, exec::OpCounters*> node_ops_;
};

}  // namespace

Result<AnswerSet> BoundedEvaluator::Evaluate(
    const FoQuery& q, const ControllabilityAnalysis& analysis,
    const Binding& params, BoundedEvalStats* stats) const {
  SI_CHECK_MSG(analysis.root().formula.Equals(q.body),
               "analysis does not match the query body");
  VarSet param_vars;
  for (const auto& [v, val] : params) {
    (void)val;
    param_vars.insert(v);
  }
  const ControlOption* opt = analysis.BestOptionFor(param_vars);
  if (opt == nullptr) {
    return Status::FailedPrecondition(
        "query is not controlled by the given parameters " +
        VarSetToString(param_vars));
  }
  exec::ExecContext ctx(db_);
  ctx.set_limits(limits_);  // per-evaluation resource envelope
  ctx.set_timing_enabled(collect_timing_);
  obs::ScopedSpan span(ctx.tracer(), "bounded.evaluate", "core");
  if (span.enabled() && par::CurrentLane() >= 0) {
    span.Arg("worker", static_cast<uint64_t>(par::CurrentLane()));
  }
  PlainExecutor exec(db_, enforce_bounds_, &ctx);
  if (collect_timing_ || (stats != nullptr && stats->capture_ops)) {
    exec.RegisterOps(analysis.root(), *opt, /*parent=*/-1);
  }
  BindingSet results = exec.Eval(analysis.root(), *opt, params);
  if (span.enabled()) {
    span.Arg("fetched", ctx.base_tuples_fetched());
    span.Arg("static_bound", opt->fetch_bound);
  }
  if (stats != nullptr) {
    stats->static_bound = opt->fetch_bound;
    stats->Accumulate(ctx);
  }
  if (obs::FlightRecorderEnabled()) {
    // One compact event for the whole evaluation: this is the µs-scale hot
    // path gated at 3% recorder-on overhead, so no start/finish pair and no
    // string-building arg path ("bounded.eval" stays in the SSO buffer).
    obs::RecordFlightNums(
        obs::EventKind::kQueryFinish, "bounded.eval",
        {{"fetched", static_cast<double>(ctx.base_tuples_fetched())},
         {"static_bound", opt->fetch_bound},
         {"tripped", ctx.trip().tripped() ? 1.0 : 0.0}});
  }
  SI_RETURN_IF_ERROR(ctx.status());

  std::vector<Variable> open;
  for (const Variable& v : q.head) {
    if (!params.count(v)) open.push_back(v);
  }
  AnswerSet answers;
  for (const Binding& b : results) {
    Tuple t;
    t.reserve(open.size());
    for (const Variable& v : open) {
      auto it = b.find(v);
      SI_CHECK_MSG(it != b.end(), "result missing a head variable");
      t.push_back(it->second);
    }
    // Distinct answers charge the output-row cap; the tripping answer is
    // withdrawn so exactly cap rows survive, deterministically (results
    // iterate in set order at any thread count).
    auto [pos, inserted] = answers.insert(std::move(t));
    if (inserted && !ctx.ChargeOutput(1, nullptr)) {
      answers.erase(pos);
      break;
    }
  }
  SI_RETURN_IF_ERROR(ctx.status());
  return answers;
}

std::vector<Result<AnswerSet>> BoundedEvaluator::EvaluateBatch(
    const FoQuery& q, const ControllabilityAnalysis& analysis,
    const std::vector<Binding>& batch, BoundedEvalStats* stats) const {
  // Prebuild the indexes of every derivation the batch can take (bindings
  // over the same variables share one option; mixed batches prebuild each),
  // so worker lanes never race on Ensure*'s cache fill.
  std::set<VarSet> seen;
  for (const Binding& b : batch) {
    VarSet vars;
    for (const auto& [v, val] : b) {
      (void)val;
      vars.insert(v);
    }
    if (!seen.insert(vars).second) continue;
    const ControlOption* opt = analysis.BestOptionFor(vars);
    if (opt != nullptr) PrebuildPlainIndexes(*db_, analysis.root(), *opt);
  }

  // Result<T> has no default constructor, so slots are optional and filled
  // by index; every evaluation is independent (fresh context, same limits),
  // making each slot identical to a sequential Evaluate call.
  std::vector<std::optional<Result<AnswerSet>>> slots(batch.size());
  std::vector<BoundedEvalStats> worker_stats(batch.size());
  const bool capture_ops = stats != nullptr && stats->capture_ops;
  par::WorkerPool::Global().ParallelFor(batch.size(), [&](size_t i) {
    worker_stats[i].capture_ops = capture_ops;
    slots[i].emplace(Evaluate(q, analysis, batch[i], &worker_stats[i]));
  });

  std::vector<Result<AnswerSet>> out;
  out.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (stats != nullptr) stats->Merge(worker_stats[i]);
    out.push_back(std::move(*slots[i]));
  }
  return out;
}

std::vector<Result<AnswerSet>> BoundedEvaluator::EvaluateEmbeddedBatch(
    const EmbeddedCqAnalysis& analysis, const std::vector<Binding>& batch,
    BoundedEvalStats* stats) const {
  PrebuildEmbeddedIndexes(*db_, analysis);

  std::vector<std::optional<Result<AnswerSet>>> slots(batch.size());
  std::vector<BoundedEvalStats> worker_stats(batch.size());
  const bool capture_ops = stats != nullptr && stats->capture_ops;
  par::WorkerPool::Global().ParallelFor(batch.size(), [&](size_t i) {
    worker_stats[i].capture_ops = capture_ops;
    slots[i].emplace(EvaluateEmbedded(analysis, batch[i], &worker_stats[i]));
  });

  std::vector<Result<AnswerSet>> out;
  out.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (stats != nullptr) stats->Merge(worker_stats[i]);
    out.push_back(std::move(*slots[i]));
  }
  return out;
}

Result<AnswerSet> BoundedEvaluator::EvaluateEmbedded(
    const EmbeddedCqAnalysis& analysis, const Binding& params,
    BoundedEvalStats* stats) const {
  exec::ExecContext ctx(db_);
  ctx.set_limits(limits_);  // per-evaluation resource envelope
  ctx.set_timing_enabled(collect_timing_);
  obs::ScopedSpan span(ctx.tracer(), "bounded.evaluate_embedded", "core");
  if (span.enabled() && par::CurrentLane() >= 0) {
    span.Arg("worker", static_cast<uint64_t>(par::CurrentLane()));
  }
  const bool capture_ops =
      collect_timing_ || (stats != nullptr && stats->capture_ops);
  Result<AnswerSet> result =
      EvaluateEmbeddedImpl(analysis, params, &ctx, capture_ops);
  if (span.enabled()) span.Arg("fetched", ctx.base_tuples_fetched());
  if (stats != nullptr) {
    if (analysis.IsScaleIndependent()) {
      stats->static_bound = analysis.plan().fetch_bound;
    }
    stats->Accumulate(ctx);
  }
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kQueryFinish, "bounded.evaluate_embedded",
        {obs::EventArg("fetched", ctx.base_tuples_fetched()),
         obs::EventArg("ok", result.ok())});
  }
  return result;
}

Result<AnswerSet> BoundedEvaluator::EvaluateEmbeddedImpl(
    const EmbeddedCqAnalysis& analysis, const Binding& params,
    exec::ExecContext* ctx, bool capture_ops) const {
  if (!analysis.IsScaleIndependent()) {
    return Status::FailedPrecondition(
        "query has no embedded-controllability plan");
  }
  for (const Variable& v : analysis.params()) {
    if (!params.count(v)) {
      return Status::InvalidArgument("missing value for parameter '" +
                                     v.name() + "'");
    }
  }
  const Cq& q = analysis.query();
  const EmbeddedPlan& plan = analysis.plan();

  // Optional EXPLAIN ANALYZE forest: a root for the whole chase plus one
  // child per atom plan, each carrying its per-invocation static bound.
  exec::OpCounters* root_op = nullptr;
  std::vector<exec::OpCounters*> atom_ops;
  if (capture_ops) {
    root_op = ctx->NewOp("embedded-cq");
    root_op->static_bound = plan.fetch_bound;
    atom_ops.reserve(plan.atom_plans.size());
    for (const AtomPlan& ap : plan.atom_plans) {
      exec::OpCounters* op = ctx->NewOp(
          "chase(" + q.atoms()[ap.atom_index].relation + ")", root_op->id);
      op->static_bound = ap.fetch_bound;
      atom_ops.push_back(op);
    }
  }

  using Partial = std::vector<std::optional<Value>>;
  std::vector<Binding> assignments = {params};

  for (size_t ai = 0; ai < plan.atom_plans.size(); ++ai) {
    const AtomPlan& ap = plan.atom_plans[ai];
    exec::OpCounters* op = capture_ops ? atom_ops[ai] : nullptr;
#if SCALEIN_OBS_ENABLE_TIMING
    const bool timed = op != nullptr && ctx->timing_enabled();
    const uint64_t atom_start = timed ? obs::MonotonicNowNs() : 0;
#endif
    const CqAtom& atom = q.atoms()[ap.atom_index];
    // One chase step of the Proposition 4.5 plan: extend every frontier
    // assignment through this atom's access statements.
    if (Status s = SCALEIN_FAILPOINT("chase_step"); !s.ok()) return s;
    obs::ScopedSpan chase_span(ctx->tracer(), "bounded.chase_step", "core");
    if (chase_span.enabled()) {
      chase_span.Arg("relation", atom.relation);
      chase_span.Arg("step", static_cast<uint64_t>(ai));
      chase_span.Arg("frontier", static_cast<uint64_t>(assignments.size()));
    }
    if (obs::FlightRecorderEnabled()) {
      obs::RecordFlightEvent(
          obs::EventKind::kChaseStep, atom.relation,
          {obs::EventArg("step", static_cast<uint64_t>(ai)),
           obs::EventArg("frontier", static_cast<uint64_t>(assignments.size()))});
    }
    const Relation* rel = db_->FindRelation(atom.relation);

    // Prebuild this atom's indexes (Ensure* is const-but-mutating on first
    // use) so the morsel fan-out below only ever reads, and compute the
    // canonical verification key layout without forcing an unrelated index.
    std::vector<size_t> verify_positions;
    if (rel != nullptr) {
      for (const AtomChaseStep& step : ap.steps) {
        rel->EnsureProjectionIndex(step.key_positions, step.value_positions);
      }
      if (ap.needs_verification) {
        verify_positions =
            Relation::CanonicalPositions(ap.verify_key_positions);
        if (rel->num_shards() > 1) {
          rel->EnsureShardedIndex(verify_positions);
        } else {
          rel->EnsureIndex(verify_positions);
        }
      }
    }

    // One frontier assignment through this atom's chase — the body of the
    // former sequential loop, parameterized on the charging context and
    // output sink so it can run as a morsel on any lane.
    auto process_assignment = [&](const Binding& assignment,
                                  exec::ExecContext* actx,
                                  exec::OpCounters* aop,
                                  std::vector<Binding>* out) -> Status {
      // Seed partial tuple from constants and bound variables.
      Partial seed(atom.args.size());
      for (size_t p = 0; p < atom.args.size(); ++p) {
        const Term& t = atom.args[p];
        if (t.is_const()) {
          seed[p] = t.constant();
        } else {
          auto it = assignment.find(t.var());
          if (it != assignment.end()) seed[p] = it->second;
        }
      }
      std::vector<Partial> candidates = {seed};
      for (const AtomChaseStep& step : ap.steps) {
        const ProjectionIndex& index = rel->EnsureProjectionIndex(
            step.key_positions, step.value_positions);
        // The relation canonicalizes (sorts) positions; recover the layouts.
        std::vector<size_t> key_layout = index.key_positions();
        std::vector<size_t> value_layout = index.value_positions();
        std::vector<Partial> extended;
        for (const Partial& cand : candidates) {
          Tuple key;
          key.reserve(key_layout.size());
          for (size_t p : key_layout) {
            SI_CHECK(cand[p].has_value());
            key.push_back(*cand[p]);
          }
          std::vector<Tuple> projections = exec::MeteredProjectionLookup(
              actx, atom.relation, *rel, step.key_positions,
              step.value_positions, key, aop);
          SI_RETURN_IF_ERROR(actx->status());
          if (enforce_bounds_ &&
              projections.size() > step.statement->max_tuples) {
            return Status::ResourceExhausted(
                "embedded access exceeds declared N of " +
                step.statement->ToString());
          }
          for (const Tuple& proj : projections) {
            Partial ext = cand;
            bool ok = true;
            for (size_t i = 0; i < value_layout.size() && ok; ++i) {
              size_t p = value_layout[i];
              if (ext[p].has_value()) {
                ok = *ext[p] == proj[i];
              } else {
                ext[p] = proj[i];
              }
            }
            if (ok) extended.push_back(std::move(ext));
          }
        }
        candidates = std::move(extended);
      }
      // All positions are now bound; verify if required, then unify.
      for (const Partial& cand : candidates) {
        Tuple row;
        row.reserve(cand.size());
        for (const auto& v : cand) {
          SI_CHECK(v.has_value());
          row.push_back(*v);
        }
        if (ap.needs_verification) {
          Tuple vkey = ProjectTuple(row, verify_positions);
          const std::vector<uint32_t>* rows = exec::MeteredIndexLookup(
              actx, atom.relation, *rel, verify_positions, vkey, aop);
          SI_RETURN_IF_ERROR(actx->status());
          bool found = false;
          if (rows != nullptr) {
            if (enforce_bounds_ &&
                rows->size() > ap.verify_statement->max_tuples) {
              return Status::ResourceExhausted(
                  "verification access exceeds declared N of " +
                  ap.verify_statement->ToString());
            }
            for (uint32_t r : *rows) {
              if (TupleEquals(rel->TupleAt(r), row)) {
                found = true;
                break;
              }
            }
          }
          if (!found) continue;
        }
        // Extend the assignment with the atom's variables.
        Binding extended = assignment;
        bool ok = true;
        for (size_t p = 0; p < atom.args.size() && ok; ++p) {
          const Term& t = atom.args[p];
          if (t.is_const()) continue;
          auto it = extended.find(t.var());
          if (it != extended.end()) {
            ok = it->second == row[p];
          } else {
            extended.emplace(t.var(), row[p]);
          }
        }
        if (ok) out->push_back(std::move(extended));
      }
      return Status::OK();
    };

    std::vector<Binding> next_assignments;
    par::WorkerPool& pool = par::WorkerPool::Global();
    const bool fan_out = rel != nullptr && pool.threads() > 1 &&
                         assignments.size() >= kParallelFrontierThreshold &&
                         ctx->ok();
    if (rel == nullptr) {
      // Unknown relation: the frontier dies here, matching a lookup miss.
    } else if (!fan_out) {
      for (const Binding& assignment : assignments) {
        SI_RETURN_IF_ERROR(
            process_assignment(assignment, ctx, op, &next_assignments));
      }
    } else {
      // Governed morsel fan-out over the frontier (the sub-budget lease /
      // charge-log replay protocol, exec/governed_parallel.h): worker lanes
      // charge private logs against per-lane leases and the parent replays
      // them in morsel order through its own armed governor, so answers,
      // accounting, and trip verdicts are byte-identical to the sequential
      // walk at any thread count — armed or not.
      const std::vector<std::pair<size_t, size_t>> ranges =
          par::SplitRanges(assignments.size(), pool.threads() * 4);
      std::vector<std::vector<Binding>> worker_out(ranges.size());
      Status frontier_error = Status::OK();
      (void)exec::GovernedParallelMorsels(
          ctx, ranges.size(),
          [&](size_t ri, exec::ExecContext* wctx) {
            for (size_t i = ranges[ri].first; i < ranges[ri].second; ++i) {
              Status s = process_assignment(assignments[i], wctx, op,
                                            &worker_out[ri]);
              if (!s.ok()) {
                wctx->SetError(std::move(s));
                break;
              }
              if (!wctx->ok()) break;
            }
          },
          [&](size_t ri) {
            for (size_t i = ranges[ri].first; i < ranges[ri].second; ++i) {
              if (!ctx->ok() || !frontier_error.ok()) break;
              frontier_error = process_assignment(assignments[i], ctx, op,
                                                  &next_assignments);
            }
          },
          [&](size_t ri) {
            next_assignments.insert(
                next_assignments.end(),
                std::make_move_iterator(worker_out[ri].begin()),
                std::make_move_iterator(worker_out[ri].end()));
          });
      SI_RETURN_IF_ERROR(frontier_error);
      SI_RETURN_IF_ERROR(ctx->status());
    }
    if (op != nullptr) {
      op->rows_out += next_assignments.size();
#if SCALEIN_OBS_ENABLE_TIMING
      if (timed) {
        op->next_ns += obs::MonotonicNowNs() - atom_start;
        ++op->next_calls;
      }
#endif
    }
    assignments = std::move(next_assignments);
  }

  // Project to the open head positions; distinct answers charge the
  // output-row cap.
  AnswerSet answers;
  for (const Binding& assignment : assignments) {
    Tuple t;
    for (const Term& h : q.head()) {
      if (h.is_const()) continue;
      if (analysis.params().count(h.var())) continue;
      t.push_back(assignment.at(h.var()));
    }
    auto [pos, inserted] = answers.insert(std::move(t));
    if (inserted && !ctx->ChargeOutput(1, root_op)) {
      answers.erase(pos);
      break;
    }
  }
  SI_RETURN_IF_ERROR(ctx->status());
  if (root_op != nullptr) root_op->rows_out += answers.size();
  return answers;
}

Result<exec::Degraded<AnswerSet>> BoundedEvaluator::EvaluateDegraded(
    const FoQuery& q, const ControllabilityAnalysis& analysis,
    const Binding& params, BoundedEvalStats* stats) const {
  SI_CHECK_MSG(analysis.root().formula.Equals(q.body),
               "analysis does not match the query body");
  VarSet param_vars;
  for (const auto& [v, val] : params) {
    (void)val;
    param_vars.insert(v);
  }
  const ControlOption* opt = analysis.BestOptionFor(param_vars);
  if (opt == nullptr) {
    return Status::FailedPrecondition(
        "query is not controlled by the given parameters " +
        VarSetToString(param_vars));
  }
  exec::ExecContext ctx(db_);
  ctx.set_limits(limits_);
  ctx.set_timing_enabled(collect_timing_);
  obs::ScopedSpan span(ctx.tracer(), "bounded.evaluate_degraded", "core");
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(obs::EventKind::kQueryStart,
                           "bounded.evaluate_degraded",
                           {obs::EventArg("static_bound", opt->fetch_bound)});
  }
  PlainExecutor executor(db_, enforce_bounds_, &ctx);
  // Ops are always registered here so that a trip's snapshot can name the
  // derivation node that was executing when the limit fired.
  executor.RegisterOps(analysis.root(), *opt, /*parent=*/-1);
  BindingSet results = executor.Eval(analysis.root(), *opt, params);
  if (span.enabled()) {
    span.Arg("fetched", ctx.base_tuples_fetched());
    span.Arg("static_bound", opt->fetch_bound);
    span.Arg("tripped", ctx.trip().tripped());
  }
  if (stats != nullptr) {
    stats->static_bound = opt->fetch_bound;
    stats->Accumulate(ctx);
  }
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kQueryFinish, "bounded.evaluate_degraded",
        {obs::EventArg("fetched", ctx.base_tuples_fetched()),
         obs::EventArg("static_bound", opt->fetch_bound),
         obs::EventArg("tripped", ctx.trip().tripped())});
  }

  exec::Degraded<AnswerSet> out;
  // Bindings that survived the full derivation are sound answers even when
  // the walk was cut short (subtrees abandoned mid-derivation return no
  // bindings rather than unchecked ones). Projection runs before the trip
  // check because the output-row cap trips *here*: the first cap distinct
  // answers are kept and the tripping answer is withdrawn, so a row-capped
  // degraded result is identical at any thread count.
  std::vector<Variable> open;
  for (const Variable& v : q.head) {
    if (!params.count(v)) open.push_back(v);
  }
  for (const Binding& b : results) {
    Tuple t;
    t.reserve(open.size());
    for (const Variable& v : open) {
      auto it = b.find(v);
      SI_CHECK_MSG(it != b.end(), "result missing a head variable");
      t.push_back(it->second);
    }
    auto [pos, inserted] = out.value.insert(std::move(t));
    if (inserted && !ctx.ChargeOutput(1, nullptr)) {
      out.value.erase(pos);
      break;
    }
  }
  out.base_tuples_fetched = ctx.base_tuples_fetched();
  out.index_lookups = ctx.index_lookups();
  if (!ctx.ok()) {
    // Only governor trips degrade; other failures stay errors.
    if (!ctx.trip().tripped()) return ctx.status();
    out.complete = false;
    out.trip = ctx.trip();
    out.ops = ctx.SnapshotOps();
  }
  return out;
}

Result<exec::Degraded<AnswerSet>> BoundedEvaluator::EvaluateEmbeddedDegraded(
    const EmbeddedCqAnalysis& analysis, const Binding& params,
    BoundedEvalStats* stats, bool fallback_to_approx) const {
  exec::ExecContext ctx(db_);
  ctx.set_limits(limits_);
  ctx.set_timing_enabled(collect_timing_);
  obs::ScopedSpan span(ctx.tracer(), "bounded.evaluate_embedded_degraded",
                       "core");
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(obs::EventKind::kQueryStart,
                           "bounded.evaluate_embedded_degraded");
  }
  // Capture ops unconditionally so a trip names the chase step it hit.
  Result<AnswerSet> result =
      EvaluateEmbeddedImpl(analysis, params, &ctx, /*capture_ops=*/true);
  if (span.enabled()) {
    span.Arg("fetched", ctx.base_tuples_fetched());
    span.Arg("tripped", ctx.trip().tripped());
  }
  if (stats != nullptr) {
    if (analysis.IsScaleIndependent()) {
      stats->static_bound = analysis.plan().fetch_bound;
    }
    stats->Accumulate(ctx);
  }
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kQueryFinish, "bounded.evaluate_embedded_degraded",
        {obs::EventArg("fetched", ctx.base_tuples_fetched()),
         obs::EventArg("tripped", ctx.trip().tripped())});
  }

  exec::Degraded<AnswerSet> out;
  out.base_tuples_fetched = ctx.base_tuples_fetched();
  out.index_lookups = ctx.index_lookups();
  if (result.ok() && ctx.ok()) {
    out.value = std::move(result).ValueOrDie();
    return out;
  }
  if (!ctx.trip().tripped()) {
    // Genuine failure (failpoint, bound violation, bad arguments).
    return result.ok() ? ctx.status() : result.status();
  }
  out.complete = false;
  out.trip = ctx.trip();
  out.ops = ctx.SnapshotOps();
  if (fallback_to_approx && limits_.fetch_budget > 0 &&
      analysis.IsScaleIndependent()) {
    // PIQL-style success tolerance: re-answer the (parameter-substituted)
    // CQ with the greedy budgeted engine under the same budget M. Every
    // answer it reports is a genuine answer of Q(D); project its full-head
    // tuples onto the embedded answer shape (open head variables only).
    const Cq& q = analysis.query();
    std::map<Variable, Term> subst;
    for (const auto& [v, val] : params) subst.emplace(v, Term::Const(val));
    ApproxResult approx =
        ApproximateCqAnswers(q.Substitute(subst), *db_, limits_.fetch_budget);
    std::vector<size_t> keep;
    for (size_t i = 0; i < q.head().size(); ++i) {
      const Term& h = q.head()[i];
      if (h.is_const() || analysis.params().count(h.var())) continue;
      keep.push_back(i);
    }
    for (const Tuple& full : approx.answers) {
      Tuple t;
      t.reserve(keep.size());
      for (size_t i : keep) t.push_back(full[i]);
      out.value.insert(std::move(t));
    }
    out.fallback = "approx";
  }
  return out;
}

}  // namespace scalein
