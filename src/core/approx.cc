#include "core/approx.h"

#include <algorithm>

#include "eval/cq_evaluator.h"

namespace scalein {

ApproxResult ApproximateCqAnswers(const Cq& q, const Database& d, uint64_t m) {
  ApproxResult result;
  CqEvaluator eval(const_cast<Database*>(&d));
  AnswerSet exact = eval.EvaluateFull(q);
  result.exact_answers = exact.size();

  // Per-answer minimal supports (as in the exact witness search).
  struct Pending {
    const Tuple* answer;
    std::vector<TupleSet> supports;
  };
  std::vector<Pending> pending;
  pending.reserve(exact.size());
  for (const Tuple& a : exact) {
    pending.push_back({&a, AnswerSupports(q, d, a)});
  }

  // Greedy: repeatedly admit the uncovered answer whose cheapest support
  // adds the fewest new tuples, while it fits in the remaining budget.
  std::vector<bool> done(pending.size(), false);
  for (;;) {
    size_t best = pending.size();
    const TupleSet* best_support = nullptr;
    size_t best_cost = SIZE_MAX;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (done[i]) continue;
      for (const TupleSet& s : pending[i].supports) {
        size_t cost = 0;
        for (const TupleRef& t : s) {
          if (!result.accessed.count(t)) ++cost;
        }
        if (cost < best_cost) {
          best_cost = cost;
          best = i;
          best_support = &s;
        }
      }
    }
    if (best == pending.size()) break;  // everything covered
    if (result.accessed.size() + best_cost > m) break;  // budget exhausted
    result.accessed.insert(best_support->begin(), best_support->end());
    // Admit every answer whose support is now fully inside the access set.
    for (size_t i = 0; i < pending.size(); ++i) {
      if (done[i]) continue;
      for (const TupleSet& s : pending[i].supports) {
        if (std::includes(result.accessed.begin(), result.accessed.end(),
                          s.begin(), s.end())) {
          done[i] = true;
          result.answers.insert(*pending[i].answer);
          break;
        }
      }
    }
  }
  return result;
}

std::vector<RecallPoint> RecallCurve(const Cq& q, const Database& d,
                                     const std::vector<uint64_t>& budgets) {
  std::vector<RecallPoint> out;
  out.reserve(budgets.size());
  for (uint64_t m : budgets) {
    ApproxResult r = ApproximateCqAnswers(q, d, m);
    out.push_back({m, r.accessed.size(), r.Recall()});
  }
  return out;
}

}  // namespace scalein
