#include "core/qdsi.h"

#include <algorithm>

#include "eval/cq_evaluator.h"
#include "eval/fo_evaluator.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace scalein {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kYes:
      return "yes";
    case Verdict::kNo:
      return "no";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "?";
}

namespace {

/// Runs one QDSI decision procedure under an engine-level span, annotating
/// it with the resource bound and the outcome (verdict, method, search work).
template <typename Fn>
QdsiDecision DecideWithSpan(const char* name, uint64_t m, Fn&& fn) {
  obs::ScopedSpan span(obs::Tracer::Global(), name, "core");
  QdsiDecision decision = fn();
  if (span.enabled()) {
    span.Arg("m", m);
    span.Arg("verdict", VerdictName(decision.verdict));
    span.Arg("method", decision.method);
    span.Arg("work", decision.work);
  }
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(obs::EventKind::kQdsiDecision, name,
                           {obs::EventArg("m", m),
                            obs::EventArg("verdict",
                                          VerdictName(decision.verdict)),
                            obs::EventArg("method", decision.method),
                            obs::EventArg("work", decision.work)});
  }
  return decision;
}

TupleSet WholeDatabase(const Database& d) {
  std::vector<TupleRef> all = AllTuples(d);
  return TupleSet(all.begin(), all.end());
}

/// Keeps only ⊆-minimal supports in a pooled list.
std::vector<TupleSet> PruneToMinimal(std::vector<TupleSet> supports) {
  std::sort(supports.begin(), supports.end(),
            [](const TupleSet& a, const TupleSet& b) {
              return a.size() < b.size();
            });
  std::vector<TupleSet> minimal;
  for (TupleSet& s : supports) {
    bool dominated = false;
    for (const TupleSet& kept : minimal) {
      if (std::includes(s.begin(), s.end(), kept.begin(), kept.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(std::move(s));
  }
  return minimal;
}

QdsiDecision DecideMonotone(const std::vector<Cq>& disjuncts, size_t tableau,
                            bool is_boolean, const Database& d, uint64_t m,
                            const QdsiOptions& options) {
  QdsiDecision decision;

  if (m >= d.TotalTuples()) {
    decision.verdict = Verdict::kYes;
    decision.witness = WholeDatabase(d);
    decision.method = "whole-database";
    return decision;
  }

  if (is_boolean && tableau <= m) {
    // Corollary 3.2: constant-time yes — decided without enumerating the
    // answer set. The witness is one support of the first satisfying
    // assignment (early exit) when true, ∅ when false.
    decision.verdict = Verdict::kYes;
    decision.method = "boolean-tableau-bound";
    decision.witness = TupleSet{};
    for (const Cq& q : disjuncts) {
      std::optional<TupleSet> support = FirstSupport(q, d);
      if (support.has_value()) {
        decision.witness = *std::move(support);
        break;
      }
    }
    return decision;
  }

  CqEvaluator eval(const_cast<Database*>(&d));
  AnswerSet answers;
  for (const Cq& q : disjuncts) {
    AnswerSet part = eval.EvaluateFull(q);
    answers.insert(part.begin(), part.end());
  }

  if (answers.size() * tableau <= m) {
    // §3: each answer needs at most ‖Q‖ tuples, so M ≥ |Q(D)|·‖Q‖ suffices.
    decision.method = "answer-count-bound";
    decision.verdict = Verdict::kYes;
    TupleSet witness;
    for (const Tuple& a : answers) {
      for (const Cq& q : disjuncts) {
        std::vector<TupleSet> s = AnswerSupports(q, d, a, 1);
        if (!s.empty()) {
          witness.insert(s[0].begin(), s[0].end());
          break;
        }
      }
    }
    decision.witness = std::move(witness);
    return decision;
  }

  // Exact support-cover search.
  decision.method = "support-cover";
  std::vector<std::vector<TupleSet>> per_answer;
  per_answer.reserve(answers.size());
  bool truncated = false;
  for (const Tuple& a : answers) {
    // One checkpoint per answer keeps support enumeration under the
    // caller's deadline. A trip here means some answers have NO supports
    // gathered — a cover over the prefix would be an unsound "yes" — so the
    // decision degrades straight to kUnknown.
    if (options.governor != nullptr && !options.governor->Checkpoint()) {
      decision.verdict = Verdict::kUnknown;
      return decision;
    }
    // Fault-injection site: one hit per answer whose supports are gathered.
    // A fault mid-gather degrades to kUnknown for the same soundness reason
    // as a governor trip.
    if (Status s = SCALEIN_FAILPOINT("qdsi_support"); !s.ok()) {
      decision.verdict = Verdict::kUnknown;
      decision.error = std::move(s);
      return decision;
    }
    std::vector<TupleSet> pooled;
    for (const Cq& q : disjuncts) {
      std::vector<TupleSet> s =
          AnswerSupports(q, d, a, options.max_supports_per_answer);
      if (options.max_supports_per_answer != 0 &&
          s.size() >= options.max_supports_per_answer) {
        truncated = true;
      }
      pooled.insert(pooled.end(), s.begin(), s.end());
    }
    per_answer.push_back(PruneToMinimal(std::move(pooled)));
  }
  MinWitnessResult cover =
      MinimumSupportCover(per_answer, m, options.governor);
  decision.work = cover.nodes_explored;
  if (cover.witness.has_value()) {
    decision.verdict = Verdict::kYes;
    decision.witness = std::move(cover.witness);
  } else if (cover.exact && !truncated) {
    decision.verdict = Verdict::kNo;
  } else {
    decision.verdict = Verdict::kUnknown;
  }
  return decision;
}

}  // namespace

QdsiDecision DecideQdsiCq(const Cq& q, const Database& d, uint64_t m,
                          const QdsiOptions& options) {
  return DecideWithSpan("qdsi.decide_cq", m, [&] {
    return DecideMonotone({q}, q.TableauSize(), q.IsBoolean(), d, m, options);
  });
}

QdsiDecision DecideQdsiUcq(const Ucq& q, const Database& d, uint64_t m,
                           const QdsiOptions& options) {
  return DecideWithSpan("qdsi.decide_ucq", m, [&] {
    return DecideMonotone(q.disjuncts(), q.TableauSize(), q.IsBoolean(), d, m,
                          options);
  });
}

QdsiDecision DecideQdsiFo(const FoQuery& q, const Database& d, uint64_t m,
                          const QdsiOptions& options) {
  return DecideWithSpan("qdsi.decide_fo", m, [&] {
    QdsiDecision decision;

    std::vector<TupleRef> all = AllTuples(d);
    const size_t n = all.size();
    if (m >= n) {
      decision.verdict = Verdict::kYes;
      decision.witness = TupleSet(all.begin(), all.end());
      decision.method = "whole-database";
      return decision;
    }

    decision.method = "subset-search";
    FoEvaluator full_eval(&d);
    const bool is_boolean = q.IsBoolean();
    const bool full_bool = is_boolean && full_eval.EvaluateBoolean(q);
    const AnswerSet full_answers = is_boolean ? AnswerSet{} : full_eval.Evaluate(q);

    // Enumerate subsets by increasing size (so a found witness is minimum).
    bool capped = false;
    for (uint64_t size = 0; size <= m && !capped; ++size) {
      // Combination enumeration over indices into `all`.
      std::vector<size_t> idx(size);
      for (size_t i = 0; i < size; ++i) idx[i] = i;
      bool more = true;
      while (more) {
        if (++decision.work > options.max_subsets) {
          capped = true;
          break;
        }
        // Deadline/cancellation degrade exactly like the subset cap: the
        // subsets already examined stay examined, verdict becomes kUnknown.
        if (options.governor != nullptr && !options.governor->Checkpoint()) {
          capped = true;
          break;
        }
        // Fault-injection site: one hit per candidate subset examined.
        if (Status s = SCALEIN_FAILPOINT("qdsi_subset"); !s.ok()) {
          decision.error = std::move(s);
          capped = true;
          break;
        }
        TupleSet subset;
        for (size_t i : idx) subset.insert(all[i]);
        Database sub = SubDatabase(d, subset);
        FoEvaluator sub_eval(&sub);
        bool match = is_boolean ? sub_eval.EvaluateBoolean(q) == full_bool
                                : sub_eval.Evaluate(q) == full_answers;
        if (match) {
          decision.verdict = Verdict::kYes;
          decision.witness = std::move(subset);
          return decision;
        }
        // Next combination.
        if (size == 0) break;
        size_t k = size;
        while (k > 0) {
          --k;
          if (idx[k] != k + n - size) {
            ++idx[k];
            for (size_t j = k + 1; j < size; ++j) idx[j] = idx[j - 1] + 1;
            break;
          }
          if (k == 0) more = false;
        }
      }
    }
    decision.verdict = capped ? Verdict::kUnknown : Verdict::kNo;
    return decision;
  });
}

}  // namespace scalein
