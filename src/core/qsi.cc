#include "core/qsi.h"

#include <algorithm>

#include "eval/containment.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace scalein {
namespace {

/// Runs one QSI decision procedure under an engine-level span, annotating it
/// with the resource bound and the outcome.
template <typename Fn>
QsiDecision DecideWithSpan(const char* name, uint64_t m, Fn&& fn) {
  obs::ScopedSpan span(obs::Tracer::Global(), name, "core");
  QsiDecision decision = fn();
  if (span.enabled()) {
    span.Arg("m", m);
    span.Arg("verdict", VerdictName(decision.verdict));
    span.Arg("method", decision.method);
  }
  return decision;
}

bool HeadHasVariable(const Cq& q) {
  for (const Term& t : q.head()) {
    if (t.is_var()) return true;
  }
  return false;
}

Schema SchemaFromCqAtoms(const std::vector<Cq>& queries) {
  Schema schema;
  std::map<std::string, size_t> arities;
  for (const Cq& q : queries) {
    for (const CqAtom& a : q.atoms()) {
      auto [it, inserted] = arities.emplace(a.relation, a.args.size());
      if (!inserted) {
        SI_CHECK_MSG(it->second == a.args.size(),
                     "inconsistent arity across CQ atoms");
      }
    }
  }
  for (const auto& [name, arity] : arities) {
    std::vector<std::string> attrs;
    for (size_t i = 0; i < arity; ++i) attrs.push_back("a" + std::to_string(i));
    schema.Relation(name, attrs);
  }
  return schema;
}

/// Packs `copies` variable-disjoint frozen copies of q's body into one
/// database: the monotonicity pump from §3 (every copy contributes at least
/// one private witness tuple).
Database PumpedCounterexample(const Cq& q, uint64_t copies) {
  Database db(SchemaFromCqAtoms({q}));
  for (uint64_t c = 0; c < copies; ++c) {
    auto freeze = [c](const Term& t) {
      if (t.is_const()) return t.constant();
      return Value::Str(StrFormat("\x01qsi$%llu$%s",
                                  static_cast<unsigned long long>(c),
                                  t.var().name().c_str()));
    };
    for (const CqAtom& a : q.atoms()) {
      Tuple row;
      row.reserve(a.args.size());
      for (const Term& arg : a.args) row.push_back(freeze(arg));
      db.Insert(a.relation, row);
    }
  }
  return db;
}

bool FormulaHasAtoms(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kAtom:
      return true;
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEq:
      return false;
    case FormulaKind::kNot:
      return FormulaHasAtoms(f.child());
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const Formula& c : f.operands()) {
        if (FormulaHasAtoms(c)) return true;
      }
      return false;
    case FormulaKind::kImplies:
      return FormulaHasAtoms(f.premise()) || FormulaHasAtoms(f.conclusion());
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return FormulaHasAtoms(f.body());
  }
  return false;
}

bool FormulaHasQuantifiers(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return true;
    case FormulaKind::kNot:
      return FormulaHasQuantifiers(f.child());
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const Formula& c : f.operands()) {
        if (FormulaHasQuantifiers(c)) return true;
      }
      return false;
    case FormulaKind::kImplies:
      return FormulaHasQuantifiers(f.premise()) ||
             FormulaHasQuantifiers(f.conclusion());
    default:
      return false;
  }
}

}  // namespace

QsiDecision DecideQsiCq(const Cq& q, uint64_t m) {
  return DecideWithSpan("qsi.decide_cq", m, [&] {
    QsiDecision decision;
    if (IsTrivialCq(q)) {
      decision.verdict = Verdict::kYes;
      decision.method = "trivial";
      return decision;
    }
    if (HeadHasVariable(q)) {
      // Monotonicity: fresh copies pump fresh answers past any M.
      decision.verdict = Verdict::kNo;
      decision.method = "monotone-pumping";
      decision.counterexample = PumpedCounterexample(q, m + 1);
      return decision;
    }
    // Boolean / constant-head: behavior determined by the core size.
    Cq core = MinimizeCq(q);
    if (core.TableauSize() <= m) {
      decision.verdict = Verdict::kYes;
      decision.method = "core-bound";
    } else {
      decision.verdict = Verdict::kNo;
      decision.method = "core-bound";
      decision.counterexample = FreezeCq(core).db;
    }
    return decision;
  });
}

QsiDecision DecideQsiUcq(const Ucq& q, uint64_t m) {
  return DecideWithSpan("qsi.decide_ucq", m, [&] {
    QsiDecision decision;
    bool all_trivial = true;
    for (const Cq& d : q.disjuncts()) {
      if (IsTrivialCq(d)) continue;
      all_trivial = false;
      if (HeadHasVariable(d)) {
        decision.verdict = Verdict::kNo;
        decision.method = "monotone-pumping";
        decision.counterexample = PumpedCounterexample(d, m + 1);
        return decision;
      }
    }
    if (all_trivial) {
      decision.verdict = Verdict::kYes;
      decision.method = "trivial";
      return decision;
    }
    // Boolean / constant-head UCQ.
    uint64_t max_core = 0;
    std::vector<Cq> cores;
    for (const Cq& d : q.disjuncts()) {
      cores.push_back(MinimizeCq(d));
      max_core = std::max<uint64_t>(max_core, cores.back().TableauSize());
    }
    if (max_core <= m) {
      decision.verdict = Verdict::kYes;
      decision.method = "core-bound";
      return decision;
    }
    // Probe each frozen core as a potential counterexample.
    for (const Cq& core : cores) {
      if (core.TableauSize() <= m) continue;
      Database candidate = FreezeCq(core).db;
      QdsiDecision probe = DecideQdsiUcq(q, candidate, m);
      if (probe.verdict == Verdict::kNo) {
        decision.verdict = Verdict::kNo;
        decision.method = "frozen-core-probe";
        decision.counterexample = std::move(candidate);
        return decision;
      }
    }
    decision.verdict = Verdict::kUnknown;
    decision.method = "frozen-core-probe";
    return decision;
  });
}

QsiDecision DecideQsiFo(const FoQuery& q, const Schema& schema, uint64_t m,
                        const QsiFoOptions& options) {
  return DecideWithSpan("qsi.decide_fo", m, [&] {
    QsiDecision decision;
    if (q.IsBoolean() && !FormulaHasAtoms(q.body) &&
        !FormulaHasQuantifiers(q.body)) {
      // Quantifier-free closed condition: a constant query.
      decision.verdict = Verdict::kYes;
      decision.method = "constant-query";
      return decision;
    }

    // Counterexample search over small databases.
    decision.method = "bounded-counterexample-search";
    std::vector<std::pair<std::string, Tuple>> universe;
    for (const RelationSchema& rs : schema.relations()) {
      // All tuples over {1, ..., domain_size}^arity.
      std::vector<size_t> digits(rs.arity(), 0);
      bool more = true;
      if (rs.arity() == 0) continue;
      while (more) {
        Tuple t;
        t.reserve(rs.arity());
        for (size_t dgt : digits) {
          t.push_back(Value::Int(static_cast<int64_t>(dgt) + 1));
        }
        universe.emplace_back(rs.name(), std::move(t));
        // Increment mixed-radix counter.
        size_t pos = 0;
        for (;;) {
          if (pos == digits.size()) {
            more = false;
            break;
          }
          if (++digits[pos] < options.domain_size) break;
          digits[pos] = 0;
          ++pos;
        }
      }
    }

    uint64_t examined = 0;
    const size_t n = universe.size();
    size_t max_size = std::min(options.max_tuples, n);
    for (size_t size = 1; size <= max_size; ++size) {
      std::vector<size_t> idx(size);
      for (size_t i = 0; i < size; ++i) idx[i] = i;
      bool more = true;
      while (more) {
        if (++examined > options.max_databases) {
          decision.verdict = Verdict::kUnknown;
          return decision;
        }
        // Fault-injection site: one hit per candidate database, so chaos
        // schedules can abort the §3 search mid-enumeration.
        if (Status s = SCALEIN_FAILPOINT("qsi_candidate"); !s.ok()) {
          decision.verdict = Verdict::kUnknown;
          decision.error = std::move(s);
          return decision;
        }
        Database candidate(schema);
        for (size_t i : idx) {
          candidate.Insert(universe[i].first, universe[i].second);
        }
        QdsiDecision probe = DecideQdsiFo(q, candidate, m, options.qdsi);
        if (probe.verdict == Verdict::kNo) {
          decision.verdict = Verdict::kNo;
          decision.counterexample = std::move(candidate);
          return decision;
        }
        // Next combination.
        size_t k = size;
        bool advanced = false;
        while (k > 0) {
          --k;
          if (idx[k] != k + n - size) {
            ++idx[k];
            for (size_t j = k + 1; j < size; ++j) idx[j] = idx[j - 1] + 1;
            advanced = true;
            break;
          }
        }
        if (!advanced) more = false;
      }
    }
    decision.verdict = Verdict::kUnknown;
    return decision;
  });
}

Result<uint64_t> MinWitnessSizeFo(const FoQuery& q, const Database& d,
                                  const QdsiOptions& options) {
  const uint64_t n = d.TotalTuples();
  if (n == 0) return static_cast<uint64_t>(0);
  QdsiDecision probe = DecideQdsiFo(q, d, n - 1, options);
  switch (probe.verdict) {
    case Verdict::kYes:
      return static_cast<uint64_t>(probe.witness->size());
    case Verdict::kNo:
      return n;  // only D itself works
    case Verdict::kUnknown:
      return Status::ResourceExhausted(
          "subset-search budget exhausted before the minimum witness size "
          "was determined");
  }
  return Status::Internal("unreachable");
}

}  // namespace scalein
