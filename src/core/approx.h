#ifndef SCALEIN_CORE_APPROX_H_
#define SCALEIN_CORE_APPROX_H_

#include <cstdint>

#include "core/witness.h"
#include "eval/answer_set.h"
#include "query/cq.h"
#include "relational/database.h"

namespace scalein {

/// Approximate scale-independent answering (§7 future work: "when Q is not
/// scale-independent in D w.r.t. M, what the best performance ratio is if we
/// approximately compute Q(D) by accessing at most M tuples").
///
/// For monotone queries the natural notion is one-sided: evaluate Q over a
/// best-effort D_Q with |D_Q| ≤ M; by monotonicity the result is a *subset*
/// of Q(D) (precision 1), and the quality measure is recall = |Q(D_Q)|/|Q(D)|
/// — the "performance ratio" of the paper's question.
struct ApproxResult {
  AnswerSet answers;
  TupleSet accessed;       ///< the D_Q actually used, |accessed| ≤ M
  uint64_t exact_answers;  ///< |Q(D)|
  double Recall() const {
    return exact_answers == 0
               ? 1.0
               : static_cast<double>(answers.size()) /
                     static_cast<double>(exact_answers);
  }
};

/// Greedy budgeted answering: covers answers one support at a time (cheapest
/// marginal cost first, the set-cover greedy) until the budget M is spent.
/// An answer is reported only when one of its supports fits completely —
/// so every reported answer is a genuine answer of Q(D).
ApproxResult ApproximateCqAnswers(const Cq& q, const Database& d, uint64_t m);

/// A curve point for recall-vs-budget sweeps.
struct RecallPoint {
  uint64_t budget;
  uint64_t accessed;
  double recall;
};

/// Sweeps the budget over `budgets` and reports the recall at each point.
std::vector<RecallPoint> RecallCurve(const Cq& q, const Database& d,
                                     const std::vector<uint64_t>& budgets);

}  // namespace scalein

#endif  // SCALEIN_CORE_APPROX_H_
