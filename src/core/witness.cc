#include "core/witness.h"

#include <algorithm>

#include "eval/cq_evaluator.h"
#include "eval/fo_evaluator.h"
#include "exec/governor.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace scalein {

std::vector<TupleRef> AllTuples(const Database& db) {
  std::vector<TupleRef> out;
  for (const RelationSchema& rs : db.schema().relations()) {
    const Relation& rel = db.relation(rs.name());
    for (const Tuple& t : rel.SortedTuples()) {
      out.push_back({rs.name(), t});
    }
  }
  return out;
}

Database SubDatabase(const Database& db, const TupleSet& tuples) {
  Database sub(db.schema());
  for (const TupleRef& ref : tuples) {
    SI_CHECK_MSG(db.relation(ref.relation).Contains(ref.tuple),
                 "SubDatabase tuple not present in the base database");
    sub.Insert(ref.relation, ref.tuple);
  }
  return sub;
}

bool IsWitnessFo(const FoQuery& q, const Database& d, const Database& d_sub) {
  FoEvaluator full(&d);
  FoEvaluator sub(&d_sub);
  if (q.IsBoolean()) {
    return full.EvaluateBoolean(q) == sub.EvaluateBoolean(q);
  }
  return full.Evaluate(q) == sub.Evaluate(q);
}

bool IsWitnessCq(const Cq& q, const Database& d, const Database& d_sub) {
  CqEvaluator full(const_cast<Database*>(&d));
  CqEvaluator sub(const_cast<Database*>(&d_sub));
  return full.EvaluateFull(q) == sub.EvaluateFull(q);
}

bool IsWitnessUcq(const Ucq& q, const Database& d, const Database& d_sub) {
  CqEvaluator full(const_cast<Database*>(&d));
  CqEvaluator sub(const_cast<Database*>(&d_sub));
  return full.EvaluateFull(q) == sub.EvaluateFull(q);
}

namespace {

/// Enumerates the satisfying body assignments that produce `answer_full`,
/// returning the distinct minimal supports. Sets *truncated when the
/// assignment cap was hit.
std::vector<TupleSet> SupportsImpl(const Cq& q, const Database& d,
                                   const Tuple& answer_full,
                                   size_t max_supports, bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  SI_CHECK_EQ(answer_full.size(), q.head().size());

  // Derive a substitution from the head terms to the answer values.
  std::map<Variable, Term> head_subst;
  for (size_t i = 0; i < q.head().size(); ++i) {
    const Term& h = q.head()[i];
    if (h.is_const()) {
      if (!(h.constant() == answer_full[i])) return {};
      continue;
    }
    auto it = head_subst.find(h.var());
    if (it != head_subst.end()) {
      if (!(it->second.constant() == answer_full[i])) return {};
    } else {
      head_subst.emplace(h.var(), Term::Const(answer_full[i]));
    }
  }
  Cq bound = q.Substitute(head_subst);

  // Query whose head lists every remaining body variable: its full answers
  // are exactly the satisfying assignments.
  VarSet body_vars = bound.BodyVars();
  std::vector<Term> assignment_head;
  std::vector<Variable> var_order;
  for (const Variable& v : body_vars) {
    assignment_head.push_back(Term::Var(v));
    var_order.push_back(v);
  }
  Cq assignments_query("assignments", assignment_head, bound.atoms());
  CqEvaluator eval(const_cast<Database*>(&d));
  AnswerSet assignments = eval.EvaluateFull(assignments_query);

  std::set<TupleSet> distinct;
  size_t examined = 0;
  for (const Tuple& assignment : assignments) {
    if (max_supports != 0 && examined >= max_supports) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    ++examined;
    Binding env;
    for (size_t i = 0; i < var_order.size(); ++i) {
      env.emplace(var_order[i], assignment[i]);
    }
    TupleSet support;
    for (const CqAtom& atom : bound.atoms()) {
      Tuple t;
      t.reserve(atom.args.size());
      for (const Term& arg : atom.args) {
        t.push_back(arg.is_const() ? arg.constant() : env.at(arg.var()));
      }
      support.insert({atom.relation, std::move(t)});
    }
    distinct.insert(std::move(support));
  }

  // Keep the ⊆-minimal supports only.
  std::vector<TupleSet> sorted(distinct.begin(), distinct.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const TupleSet& a, const TupleSet& b) {
              return a.size() < b.size();
            });
  std::vector<TupleSet> minimal;
  for (const TupleSet& s : sorted) {
    bool dominated = false;
    for (const TupleSet& kept : minimal) {
      if (std::includes(s.begin(), s.end(), kept.begin(), kept.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(s);
  }
  return minimal;
}

}  // namespace

std::vector<TupleSet> AnswerSupports(const Cq& q, const Database& d,
                                     const Tuple& answer_full,
                                     size_t max_supports) {
  return SupportsImpl(q, d, answer_full, max_supports, nullptr);
}

std::optional<TupleSet> FirstSupport(const Cq& q, const Database& d) {
  VarSet body_vars = q.BodyVars();
  std::vector<Term> assignment_head;
  std::vector<Variable> var_order;
  for (const Variable& v : body_vars) {
    assignment_head.push_back(Term::Var(v));
    var_order.push_back(v);
  }
  Cq assignments_query("first", assignment_head, q.atoms());
  CqEvaluator eval(const_cast<Database*>(&d));
  std::optional<Tuple> assignment = eval.FirstFullAnswer(assignments_query);
  if (!assignment.has_value()) return std::nullopt;
  Binding env;
  for (size_t i = 0; i < var_order.size(); ++i) {
    env.emplace(var_order[i], (*assignment)[i]);
  }
  TupleSet support;
  for (const CqAtom& atom : q.atoms()) {
    Tuple t;
    t.reserve(atom.args.size());
    for (const Term& arg : atom.args) {
      t.push_back(arg.is_const() ? arg.constant() : env.at(arg.var()));
    }
    support.insert({atom.relation, std::move(t)});
  }
  return support;
}

TupleSet GreedyWitnessCq(const Cq& q, const Database& d) {
  obs::ScopedSpan span(obs::Tracer::Global(), "witness.greedy_cq", "core");
  CqEvaluator eval(const_cast<Database*>(&d));
  AnswerSet answers = eval.EvaluateFull(q);

  std::vector<std::vector<TupleSet>> supports;
  supports.reserve(answers.size());
  for (const Tuple& a : answers) supports.push_back(AnswerSupports(q, d, a));

  TupleSet chosen;
  std::vector<bool> covered(supports.size(), false);
  size_t remaining = supports.size();
  while (remaining > 0) {
    size_t best_answer = supports.size();
    const TupleSet* best_support = nullptr;
    size_t best_cost = SIZE_MAX;
    for (size_t i = 0; i < supports.size(); ++i) {
      if (covered[i]) continue;
      for (const TupleSet& s : supports[i]) {
        size_t cost = 0;
        for (const TupleRef& t : s) {
          if (!chosen.count(t)) ++cost;
        }
        if (cost < best_cost ||
            (cost == best_cost && best_support != nullptr &&
             s.size() < best_support->size())) {
          best_cost = cost;
          best_answer = i;
          best_support = &s;
        }
      }
    }
    SI_CHECK(best_support != nullptr);
    chosen.insert(best_support->begin(), best_support->end());
    // Mark every answer now fully covered (its support ⊆ chosen).
    for (size_t i = 0; i < supports.size(); ++i) {
      if (covered[i]) continue;
      for (const TupleSet& s : supports[i]) {
        if (std::includes(chosen.begin(), chosen.end(), s.begin(), s.end())) {
          covered[i] = true;
          --remaining;
          break;
        }
      }
    }
    (void)best_answer;
  }
  if (span.enabled()) {
    span.Arg("answers", static_cast<uint64_t>(answers.size()));
    span.Arg("witness_size", static_cast<uint64_t>(chosen.size()));
  }
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kWitnessSearch, "witness.greedy_cq",
        {obs::EventArg("answers", static_cast<uint64_t>(answers.size())),
         obs::EventArg("witness_size", static_cast<uint64_t>(chosen.size()))});
  }
  return chosen;
}

MinWitnessResult MinimumSupportCover(
    const std::vector<std::vector<TupleSet>>& per_answer_supports,
    uint64_t budget, exec::ResourceGovernor* governor) {
  obs::ScopedSpan span(obs::Tracer::Global(), "witness.support_cover", "core");
  constexpr uint64_t kNodeCap = 2'000'000;
  MinWitnessResult result;

  // Branch on answers with the fewest alternatives first.
  std::vector<const std::vector<TupleSet>*> supports;
  supports.reserve(per_answer_supports.size());
  for (const auto& s : per_answer_supports) {
    SI_CHECK_MSG(!s.empty(), "answer without support");
    supports.push_back(&s);
  }
  std::sort(supports.begin(), supports.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });

  std::optional<TupleSet> best;
  TupleSet chosen;
  bool node_capped = false;

  auto recurse = [&](auto&& self, size_t idx) -> void {
    if (++result.nodes_explored > kNodeCap) {
      node_capped = true;
      return;
    }
    // A governed search degrades like a node-capped one: stop exploring,
    // report inexact, keep any witness already found (still a sound "yes").
    if (governor != nullptr && !governor->Checkpoint()) {
      node_capped = true;
      return;
    }
    if (chosen.size() > budget) return;
    if (best.has_value() && chosen.size() >= best->size()) return;
    if (idx == supports.size()) {
      best = chosen;
      return;
    }
    // Try supports adding the fewest new tuples first.
    std::vector<std::pair<size_t, const TupleSet*>> order;
    order.reserve(supports[idx]->size());
    for (const TupleSet& s : *supports[idx]) {
      size_t cost = 0;
      for (const TupleRef& t : s) {
        if (!chosen.count(t)) ++cost;
      }
      order.emplace_back(cost, &s);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [cost, s] : order) {
      (void)cost;
      std::vector<TupleRef> added;
      for (const TupleRef& t : *s) {
        if (chosen.insert(t).second) added.push_back(t);
      }
      self(self, idx + 1);
      for (const TupleRef& t : added) chosen.erase(t);
      if (node_capped) return;
    }
  };
  recurse(recurse, 0);

  if (node_capped) result.exact = false;
  if (best.has_value() && best->size() <= budget) {
    result.witness = std::move(best);
    // A found witness is a definite "yes" regardless of truncation.
  }
  if (span.enabled()) {
    span.Arg("budget", budget);
    span.Arg("nodes_explored", result.nodes_explored);
    span.Arg("exact", result.exact);
    span.Arg("found", result.witness.has_value());
  }
  return result;
}

MinWitnessResult MinimumWitnessCq(const Cq& q, const Database& d,
                                  uint64_t budget,
                                  size_t max_supports_per_answer,
                                  exec::ResourceGovernor* governor) {
  obs::ScopedSpan span(obs::Tracer::Global(), "witness.minimum_cq", "core");
  CqEvaluator eval(const_cast<Database*>(&d));
  AnswerSet answers = eval.EvaluateFull(q);

  bool any_truncated = false;
  std::vector<std::vector<TupleSet>> supports;
  supports.reserve(answers.size());
  for (const Tuple& a : answers) {
    bool truncated = false;
    supports.push_back(
        SupportsImpl(q, d, a, max_supports_per_answer, &truncated));
    any_truncated |= truncated;
  }
  MinWitnessResult result = MinimumSupportCover(supports, budget, governor);
  if (any_truncated) result.exact = result.witness.has_value();
  if (span.enabled()) {
    span.Arg("budget", budget);
    span.Arg("nodes_explored", result.nodes_explored);
    span.Arg("exact", result.exact);
    span.Arg("found", result.witness.has_value());
  }
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kWitnessSearch, "witness.minimum_cq",
        {obs::EventArg("nodes_explored", result.nodes_explored),
         obs::EventArg("exact", result.exact),
         obs::EventArg("found", result.witness.has_value())});
  }
  return result;
}

}  // namespace scalein
