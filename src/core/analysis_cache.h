#ifndef SCALEIN_CORE_ANALYSIS_CACHE_H_
#define SCALEIN_CORE_ANALYSIS_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/access_schema.h"
#include "core/controllability.h"
#include "core/embedded_controllability.h"
#include "query/cq.h"
#include "query/formula.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

namespace exec {
class CompiledPlanSet;
}  // namespace exec

/// Counters describing cache behavior, exported to obs metrics by callers.
struct AnalysisCacheStats {
  uint64_t hits = 0;           ///< served from cache
  uint64_t misses = 0;         ///< analyzed and inserted
  uint64_t evictions = 0;      ///< LRU victims dropped at capacity
  uint64_t invalidations = 0;  ///< entries dropped by DDL or env drift
  uint64_t collisions = 0;     ///< fingerprint matched, query text differed
  uint64_t coalesced = 0;      ///< waited on a concurrent fill (single-flight)
};

/// Memoizes controllability derivations and embedded chase plans.
///
/// The §4 analysis is pure in (query, relational schema, access schema): for
/// a fixed environment, re-deriving the controlling sets of a repeated query
/// is wasted work — and in the shell every `eval` re-ran the full DP. The
/// cache keys entries by a 64-bit FNV fingerprint of the query text (plus
/// parameter set for embedded plans) and tags each entry with a fingerprint
/// of the environment (schema text + access-schema text). An entry whose
/// environment tag no longer matches is dropped on lookup, so DDL that
/// changes bounds can never serve a stale plan; `Invalidate()` additionally
/// drops everything, which callers invoke on any schema/access replacement
/// (cached analyses hold pointers into the AccessSchema object, so identity
/// changes must invalidate even when the text is unchanged).
///
/// Fingerprint collisions (same hash, different query text) are detected by
/// comparing the stored key text and are served as misses without caching.
/// Bounded capacity with LRU eviction. Thread-safe; the analysis itself runs
/// outside the lock, and concurrent misses on the same key are coalesced
/// into a single derivation (single-flight): the first caller derives, later
/// callers wait on the in-flight fill and share its result, so parallel
/// evaluation lanes never duplicate the §4 DP.
class AnalysisCache {
 public:
  explicit AnalysisCache(size_t capacity = 64);

  /// Fingerprint of the environment an analysis depends on.
  static uint64_t EnvFingerprint(const Schema& schema,
                                 const AccessSchema& access);

  /// The cached (or freshly computed) §4 derivation for `f`, identified by
  /// `query_text` (the canonical source text the fingerprint is taken over).
  ///
  /// When `compiled_out` is non-null it receives the entry's compiled-plan
  /// set (exec/compiler.h), created on first request and stored *inside* the
  /// cache entry: DDL drift, Invalidate(), and LRU eviction drop the
  /// derivation and its bytecode as one object, so a compiled program can
  /// never be served against an analysis the cache no longer vouches for.
  /// A re-analysis after any drop hands back a fresh, empty set — the VM
  /// recompiles instead of executing a stale program.
  Result<std::shared_ptr<const ControllabilityAnalysis>> GetOrAnalyze(
      const Formula& f, std::string_view query_text, const Schema& schema,
      const AccessSchema& access, const ControlAnalysisOptions& options = {},
      std::shared_ptr<exec::CompiledPlanSet>* compiled_out = nullptr);

  /// The cached (or fresh) embedded chase plan for `q` under `params`.
  /// `compiled_out` behaves exactly as in GetOrAnalyze.
  Result<std::shared_ptr<const EmbeddedCqAnalysis>> GetOrAnalyzeEmbedded(
      const Cq& q, std::string_view query_text, const Schema& schema,
      const AccessSchema& access, const VarSet& params,
      std::shared_ptr<exec::CompiledPlanSet>* compiled_out = nullptr);

  /// Drops every entry (schema or access-schema DDL).
  void Invalidate();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  AnalysisCacheStats stats() const;

  /// Test hook: replaces the key-fingerprint function (e.g. with a constant
  /// to force collisions). Pass nullptr to restore the default.
  void set_key_hash_for_testing(uint64_t (*fn)(std::string_view));

  /// Test hook: invoked by a single-flight leader after it has registered
  /// the in-flight fill and released the lock, right before deriving — lets
  /// a race test hold the leader inside the fill window deterministically.
  /// Pass nullptr (default) to disable.
  void set_fill_barrier_for_testing(std::function<void()> fn);

 private:
  /// One in-progress derivation; later callers of the same key wait on it.
  struct InFlight {
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const ControllabilityAnalysis> plain;
    std::shared_ptr<const EmbeddedCqAnalysis> embedded;
    std::shared_ptr<exec::CompiledPlanSet> compiled;
  };

  struct Entry {
    std::string key_text;  ///< full key, for collision detection
    uint64_t env_fp = 0;
    uint64_t last_used = 0;
    std::shared_ptr<const ControllabilityAnalysis> plain;
    std::shared_ptr<const EmbeddedCqAnalysis> embedded;
    /// Bytecode programs lowered from this entry's analysis; dropped with
    /// the entry, so derivation and bytecode invalidate atomically.
    std::shared_ptr<exec::CompiledPlanSet> compiled;
  };

  uint64_t KeyHash(std::string_view key_text) const;
  /// Cached entry for `key`, honoring env tags and collisions; nullptr on
  /// miss. `collision` is set when the slot is occupied by a different key.
  Entry* LookupLocked(uint64_t hash, std::string_view key_text,
                      uint64_t env_fp, bool* collision);
  void InsertLocked(uint64_t hash, std::string key_text, uint64_t env_fp,
                    Entry&& entry);
  void EvictIfNeededLocked();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable fill_cv_;
  uint64_t tick_ = 0;
  uint64_t (*key_hash_override_)(std::string_view) = nullptr;
  std::function<void()> fill_barrier_for_testing_;
  std::unordered_map<uint64_t, Entry> entries_;
  /// In-progress fills keyed by full key text (collision-proof: two queries
  /// sharing a fingerprint still derive independently).
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  AnalysisCacheStats stats_;
};

}  // namespace scalein

#endif  // SCALEIN_CORE_ANALYSIS_CACHE_H_
