#ifndef SCALEIN_CORE_ADVISOR_H_
#define SCALEIN_CORE_ADVISOR_H_

#include <vector>

#include "core/access_schema.h"
#include "core/controllability.h"
#include "query/formula.h"
#include "relational/database.h"
#include "relational/schema.h"

namespace scalein {

/// Access-schema design (§7 "we would like to see how to optimally design
/// access schemas for a given query workload"): given queries with their
/// parameter sets, propose a small set of access statements that makes every
/// query controlled — i.e., which indexes to build and which cardinality
/// constraints to enforce.
///
/// Candidate statements are drawn per atom occurrence: one statement per
/// non-trivial attribute subset of bounded size. N values are calibrated
/// against a sample database when one is given (the observed max group size),
/// else a caller-supplied default. The search is iterative-deepening over the
/// number of statements, using the §4 controllability engine as the oracle,
/// so a returned design is *provably* sufficient.

struct WorkloadQuery {
  FoQuery query;
  VarSet parameters;  ///< the x̄ fixed at execution time
};

struct AdvisorOptions {
  /// Max attributes per proposed statement key.
  size_t max_key_size = 2;
  /// Max statements in a design.
  size_t max_statements = 4;
  /// N for proposed statements when no sample database calibrates them.
  uint64_t default_bound = 1000;
  /// Candidate-combination budget.
  uint64_t max_combinations = 200'000;
};

struct AdvisorResult {
  bool found = false;
  AccessSchema design;
  /// Sum of static fetch bounds across the workload under `design`.
  double total_fetch_bound = 0;
  /// True if the combination budget ran out before exhausting the space.
  bool truncated = false;
  uint64_t combinations_checked = 0;
};

/// Finds a minimum-size statement set (ties broken by total fetch bound)
/// making every workload query controlled by its parameters. `sample` may be
/// null; when present it calibrates each candidate's N and prunes candidates
/// whose observed N exceeds `options.default_bound`.
Result<AdvisorResult> AdviseAccessSchema(
    const std::vector<WorkloadQuery>& workload, const Schema& schema,
    const Database* sample, const AdvisorOptions& options = {});

}  // namespace scalein

#endif  // SCALEIN_CORE_ADVISOR_H_
