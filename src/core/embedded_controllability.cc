#include "core/embedded_controllability.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace scalein {
namespace {

/// Positions of `attrs` within the atom's relation schema.
Result<std::vector<size_t>> AtomPositions(const RelationSchema& rs,
                                          const std::vector<std::string>& attrs) {
  return rs.AttributePositions(attrs);
}

/// Tries to build a chase for `atom` starting from `seed_bound` positions.
/// Greedy: repeatedly applies the applicable statement with the smallest N.
std::optional<AtomPlan> ChaseAtom(const CqAtom& atom, size_t atom_index,
                                  const RelationSchema& rs,
                                  const AccessSchema& access,
                                  const std::set<size_t>& seed_bound) {
  AtomPlan plan;
  plan.atom_index = atom_index;
  std::set<size_t> bound = seed_bound;

  struct Candidate {
    const AccessStatement* stmt;
    std::vector<size_t> key_positions;
    std::vector<size_t> value_positions;
  };
  std::vector<Candidate> candidates;
  const AccessStatement* best_plain = nullptr;
  std::vector<size_t> best_plain_key;
  for (const AccessStatement* stmt : access.ForRelation(atom.relation)) {
    Result<std::vector<size_t>> key = AtomPositions(rs, stmt->key_attrs);
    if (!key.ok()) continue;
    std::vector<std::string> value_attrs =
        stmt->is_plain() ? rs.attributes() : *stmt->value_attrs;
    Result<std::vector<size_t>> value = AtomPositions(rs, value_attrs);
    if (!value.ok()) continue;
    candidates.push_back({stmt, *key, *value});
    if (stmt->is_plain() &&
        (best_plain == nullptr || stmt->max_tuples < best_plain->max_tuples)) {
      best_plain = stmt;
      best_plain_key = *key;
    }
  }

  double fetched = 0;
  double cands = 1;
  bool last_step_exposes_all = bound.size() == rs.arity();
  while (bound.size() < rs.arity()) {
    const Candidate* pick = nullptr;
    for (const Candidate& c : candidates) {
      bool applicable = true;
      for (size_t p : c.key_positions) {
        if (!bound.count(p)) {
          applicable = false;
          break;
        }
      }
      if (!applicable) continue;
      bool progress = false;
      for (size_t p : c.value_positions) {
        if (!bound.count(p)) {
          progress = true;
          break;
        }
      }
      if (!progress) continue;
      if (pick == nullptr || c.stmt->max_tuples < pick->stmt->max_tuples) {
        pick = &c;
      }
    }
    if (pick == nullptr) return std::nullopt;  // chase stuck
    AtomChaseStep step;
    step.statement = pick->stmt;
    step.key_positions = pick->key_positions;
    step.value_positions = pick->value_positions;
    plan.steps.push_back(step);
    fetched += cands * static_cast<double>(pick->stmt->max_tuples);
    cands *= static_cast<double>(pick->stmt->max_tuples);
    for (size_t p : pick->value_positions) bound.insert(p);
    // A step whose Y covers every attribute returns genuine rows.
    last_step_exposes_all = pick->value_positions.size() == rs.arity();
  }

  // Seeds covering everything (all positions bound before any step) still
  // need a membership check, as does a multi-projection assembly.
  plan.needs_verification = !last_step_exposes_all || plan.steps.empty();
  if (plan.needs_verification) {
    if (best_plain == nullptr) return std::nullopt;
    plan.verify_statement = best_plain;
    plan.verify_key_positions = best_plain_key;
    fetched += cands * static_cast<double>(best_plain->max_tuples);
  }
  plan.fetch_bound = fetched;
  plan.candidate_bound = cands;
  return plan;
}

}  // namespace

Result<std::vector<EmbeddedClosure>> MinimalEmbeddedClosures(
    const std::string& relation, const Schema& schema,
    const AccessSchema& access, size_t max_key_size) {
  SI_RETURN_IF_ERROR(access.Validate(schema));
  const RelationSchema* rs = schema.FindRelation(relation);
  if (rs == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }
  // A pseudo-atom with a distinct variable per position lets ChaseAtom do
  // the work.
  CqAtom atom;
  atom.relation = relation;
  for (size_t p = 0; p < rs->arity(); ++p) {
    atom.args.push_back(Term::Var(Variable::Fresh("emb")));
  }

  std::vector<EmbeddedClosure> out;
  const size_t n = rs->arity();
  SI_CHECK_LE(n, 20u);
  for (size_t size = 0; size <= std::min(max_key_size, n); ++size) {
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      if (static_cast<size_t>(__builtin_popcount(mask)) != size) continue;
      std::set<size_t> seed;
      std::vector<std::string> key_attrs;
      for (size_t p = 0; p < n; ++p) {
        if (mask & (1u << p)) {
          seed.insert(p);
          key_attrs.push_back(rs->attributes()[p]);
        }
      }
      // Skip supersets of an already-recorded minimal closure.
      bool dominated = false;
      for (const EmbeddedClosure& kept : out) {
        bool subset = true;
        for (const std::string& a : kept.key_attrs) {
          if (std::find(key_attrs.begin(), key_attrs.end(), a) ==
              key_attrs.end()) {
            subset = false;
            break;
          }
        }
        if (subset) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      std::optional<AtomPlan> plan = ChaseAtom(atom, 0, *rs, access, seed);
      if (!plan.has_value()) continue;
      EmbeddedClosure closure;
      closure.key_attrs = std::move(key_attrs);
      closure.candidate_bound = plan->candidate_bound;
      closure.needs_verification = plan->needs_verification;
      out.push_back(std::move(closure));
    }
  }
  return out;
}

Result<EmbeddedCqAnalysis> EmbeddedCqAnalysis::Analyze(
    const Cq& q, const Schema& schema, const AccessSchema& access,
    const VarSet& params) {
  SI_RETURN_IF_ERROR(access.Validate(schema));
  for (const CqAtom& atom : q.atoms()) {
    const RelationSchema* rs = schema.FindRelation(atom.relation);
    if (rs == nullptr) {
      return Status::NotFound("atom over unknown relation '" + atom.relation +
                              "'");
    }
    if (rs->arity() != atom.args.size()) {
      return Status::InvalidArgument("atom arity mismatch for relation '" +
                                     atom.relation + "'");
    }
  }

  EmbeddedCqAnalysis analysis(q, params);

  // Search atom orders (conjunction rule 2): depth-first over the orders in
  // which each atom's chase is startable, keeping the cheapest full plan.
  const std::vector<CqAtom>& atoms = q.atoms();
  std::optional<EmbeddedPlan> best;
  std::vector<bool> used(atoms.size(), false);
  EmbeddedPlan current;

  auto seed_positions = [&](const CqAtom& atom, const VarSet& bound_vars) {
    std::set<size_t> seed;
    for (size_t p = 0; p < atom.args.size(); ++p) {
      const Term& t = atom.args[p];
      if (t.is_const() || (t.is_var() && bound_vars.count(t.var()))) {
        seed.insert(p);
      }
    }
    return seed;
  };

  auto dfs = [&](auto&& self, const VarSet& bound_vars, double fetched,
                 double results) -> void {
    if (best.has_value() && fetched >= best->fetch_bound) return;
    if (current.atom_plans.size() == atoms.size()) {
      EmbeddedPlan done = current;
      done.fetch_bound = fetched;
      done.result_bound = results;
      best = std::move(done);
      return;
    }
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      const RelationSchema* rs = schema.FindRelation(atoms[i].relation);
      std::optional<AtomPlan> atom_plan = ChaseAtom(
          atoms[i], i, *rs, access, seed_positions(atoms[i], bound_vars));
      if (!atom_plan.has_value()) continue;
      used[i] = true;
      double step_fetch = fetched + results * atom_plan->fetch_bound;
      double step_results = results * atom_plan->candidate_bound;
      current.atom_plans.push_back(*atom_plan);
      VarSet next_bound = bound_vars;
      VarSet atom_vars = atoms[i].Vars();
      next_bound.insert(atom_vars.begin(), atom_vars.end());
      self(self, next_bound, step_fetch, step_results);
      current.atom_plans.pop_back();
      used[i] = false;
    }
  };
  dfs(dfs, params, 0, 1);

  analysis.plan_ = std::move(best);
  return analysis;
}

const EmbeddedPlan& EmbeddedCqAnalysis::plan() const {
  SI_CHECK_MSG(plan_.has_value(), "query has no embedded plan");
  return *plan_;
}

double EmbeddedCqAnalysis::StaticFetchBound() const {
  return plan().fetch_bound;
}

std::string EmbeddedCqAnalysis::Explain() const {
  if (!plan_.has_value()) {
    return "not " + VarSetToString(params_) + "[all]-controlled\n";
  }
  std::string out = query_.ToString() + "\n  params " +
                    VarSetToString(params_) +
                    StrFormat("  fetch<=%.0f result<=%.0f\n", plan_->fetch_bound,
                              plan_->result_bound);
  for (const AtomPlan& ap : plan_->atom_plans) {
    out += "  atom " + query_.atoms()[ap.atom_index].ToString() + "\n";
    for (const AtomChaseStep& step : ap.steps) {
      out += "    chase " + step.statement->ToString() + "\n";
    }
    if (ap.needs_verification) {
      out += "    verify via " + ap.verify_statement->ToString() + "\n";
    }
  }
  return out;
}

}  // namespace scalein
