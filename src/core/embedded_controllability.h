#ifndef SCALEIN_CORE_EMBEDDED_CONTROLLABILITY_H_
#define SCALEIN_CORE_EMBEDDED_CONTROLLABILITY_H_

#include <optional>
#include <string>
#include <vector>

#include "core/access_schema.h"
#include "query/cq.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

/// Embedded controllability (§4, rules 1–4 and Proposition 4.5), implemented
/// for conjunctive bodies — the class the paper's Example 4.6 lives in.
///
/// Per atom, the engine *chases* embedded statements (R, X[Y], N, T): starting
/// from the argument positions bound by parameters or earlier atoms, a
/// statement whose X-positions are bound extends the bound set by its
/// Y-positions while multiplying the candidate count by at most N (rules 1
/// and 3/4 at the atom level). Atoms compose by the conjunction rule 2.
/// A chase whose last applied step exposes all attributes yields genuine
/// rows; otherwise candidates are verified through a plain statement.

/// One chase step inside an atom plan.
struct AtomChaseStep {
  const AccessStatement* statement = nullptr;
  std::vector<size_t> key_positions;    ///< atom arg positions forming X
  std::vector<size_t> value_positions;  ///< atom arg positions forming Y
};

/// Bounded enumeration plan for one atom.
struct AtomPlan {
  size_t atom_index = 0;
  std::vector<AtomChaseStep> steps;
  /// Candidates assembled from several projections must be re-checked against
  /// the relation through `verify_statement` (a plain access).
  bool needs_verification = false;
  const AccessStatement* verify_statement = nullptr;
  std::vector<size_t> verify_key_positions;
  /// Per-invocation bounds (with the atom's inputs fixed).
  double fetch_bound = 0;
  double candidate_bound = 1;
};

/// Whole-query plan: atoms in execution order with accumulated bounds.
struct EmbeddedPlan {
  std::vector<AtomPlan> atom_plans;
  double fetch_bound = 0;
  double result_bound = 1;
};

/// One ⊆-minimal attribute set X from which the embedded-statement chase
/// reaches every attribute of a relation — the atom-level content of the §4
/// embedded rules 1/3/4 (e.g. Example 4.6 derives X = {id, yy} for `visit`).
struct EmbeddedClosure {
  std::vector<std::string> key_attrs;  ///< X
  double candidate_bound = 1;          ///< ≤ candidates enumerated per X value
  bool needs_verification = false;     ///< candidates re-checked via a plain
                                       ///< statement
};

/// All minimal closures of `relation` with |X| ≤ max_key_size.
Result<std::vector<EmbeddedClosure>> MinimalEmbeddedClosures(
    const std::string& relation, const Schema& schema,
    const AccessSchema& access, size_t max_key_size = 3);

/// Result of the analysis: either a plan proving the query x̄[all]-controlled
/// (hence scale-independent once x̄ is fixed, Proposition 4.5) or nothing.
class EmbeddedCqAnalysis {
 public:
  /// Analyzes `q` with the variables in `params` treated as fixed (the x̄ of
  /// Q(x̄, ȳ)). Fails only on structural errors; an underivable query yields
  /// `IsScaleIndependent() == false`.
  static Result<EmbeddedCqAnalysis> Analyze(const Cq& q, const Schema& schema,
                                            const AccessSchema& access,
                                            const VarSet& params);

  bool IsScaleIndependent() const { return plan_.has_value(); }

  /// The execution plan; requires IsScaleIndependent().
  const EmbeddedPlan& plan() const;

  /// Static bound on data units fetched per evaluation; requires a plan.
  double StaticFetchBound() const;

  const Cq& query() const { return query_; }
  const VarSet& params() const { return params_; }

  std::string Explain() const;

 private:
  EmbeddedCqAnalysis(Cq q, VarSet params)
      : query_(std::move(q)), params_(std::move(params)) {}

  Cq query_;
  VarSet params_;
  std::optional<EmbeddedPlan> plan_;
};

}  // namespace scalein

#endif  // SCALEIN_CORE_EMBEDDED_CONTROLLABILITY_H_
