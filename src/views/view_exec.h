#ifndef SCALEIN_VIEWS_VIEW_EXEC_H_
#define SCALEIN_VIEWS_VIEW_EXEC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/access_schema.h"
#include "core/bounded_eval.h"
#include "views/rewriting.h"

namespace scalein {

/// Fetch accounting for view-based evaluation (§6): only base tuples count
/// toward the scale-independence budget M — the materialized views are
/// assumed cached and freely accessible (the paper's standing assumption).
struct ViewExecStats {
  uint64_t base_tuples_fetched = 0;
  uint64_t view_tuples_fetched = 0;
  BoundedEvalStats raw;
};

/// Executes rewritings against a base database plus materialized views
/// (Corollary 6.2 / Examples 1.1(c) and 6.3 made executable).
///
/// The executor materializes V(D) once, derives an *empirical* access schema
/// for the view relations (a full-scan statement plus one single-attribute
/// index statement per view column, with N taken from the extent), merges it
/// with the declared base access schema, and evaluates rewritings through
/// the Theorem 4.2 bounded executor. Fetch counts are split into base and
/// view accesses.
class ViewExecutor {
 public:
  static Result<ViewExecutor> Create(const Database& base_db,
                                     const Schema& base_schema,
                                     const ViewSet& views,
                                     const AccessSchema& base_access);

  /// Evaluates a rewriting (a CQ over base ∪ view relations with a
  /// distinct-variable head) for the given parameters.
  Result<AnswerSet> Evaluate(const Cq& rewriting, const Binding& params,
                             ViewExecStats* stats = nullptr);

  /// Resource envelope for rewriting evaluation and incremental view
  /// maintenance (forwarded to every per-view maintenance plan).
  void set_limits(const exec::GovernorLimits& limits);
  const exec::GovernorLimits& limits() const { return limits_; }

  /// Propagates base updates into the extended database and maintains the
  /// view extents. When every affected view's maintenance plan is derivable
  /// (the §5 engine with an empty parameter set), the extents are updated
  /// with bounded base access — §6's "storage and maintenance costs of
  /// V(D)" made concrete; otherwise the executor falls back to a full
  /// refresh. `maintenance_stats` (optional) receives the fetch accounting;
  /// `used_incremental` (optional) reports which path ran.
  Status ApplyBaseUpdate(const struct Update& update,
                         BoundedEvalStats* maintenance_stats = nullptr,
                         bool* used_incremental = nullptr);

  const Database& extended_db() const { return *extended_db_; }
  const AccessSchema& combined_access() const { return combined_access_; }

 private:
  ViewExecutor() = default;

  Status FullRefresh();

  Schema extended_schema_;
  exec::GovernorLimits limits_;
  std::unique_ptr<Database> extended_db_;
  ViewSet views_;
  AccessSchema combined_access_;
  std::map<std::string, bool> is_view_;
  // Per-view bounded maintenance machinery (parallel to views_.views()).
  std::vector<std::shared_ptr<class IncrementalMaintainer>> maintainers_;
  std::vector<AnswerSet> extents_;
};

}  // namespace scalein

#endif  // SCALEIN_VIEWS_VIEW_EXEC_H_
