#ifndef SCALEIN_VIEWS_REWRITING_H_
#define SCALEIN_VIEWS_REWRITING_H_

#include <vector>

#include "query/cq.h"
#include "views/view_def.h"

namespace scalein {

/// Rewriting machinery for §6: candidate generation and expansion testing.
/// A rewriting Q'(x̄) = ∃w̄ (Q'_b ∧ Q'_v) is represented as a CQ over the
/// extended schema; atoms over view names form the view part Q'_v, the rest
/// the base part Q'_b.

/// Unfolds every view atom by its (freshly renamed) definition, unifying the
/// definition head with the atom arguments: the expansion Q'_e of §6.
Result<Cq> ExpandRewriting(const Cq& rewriting, const ViewSet& views);

/// ‖Q'_b‖: number of base (non-view) atoms.
size_t BaseAtomCount(const Cq& rewriting, const ViewSet& views);

struct RewritingSearchOptions {
  size_t max_view_atoms = 3;
  /// Default: as many base atoms as the query has.
  size_t max_base_atoms = SIZE_MAX;
  /// Cap on candidate combinations tested.
  uint64_t max_candidates = 50'000;
};

struct RewritingSearchResult {
  /// Equivalent rewritings found, smallest atom-count first.
  std::vector<Cq> rewritings;
  /// True when the candidate cap was hit (the list may be incomplete).
  bool truncated = false;
  uint64_t candidates_checked = 0;
};

/// Searches for rewritings of `q` using `views` that are *equivalent* to `q`
/// (expansion equivalence, checked by CQ containment both ways).
///
/// Candidate view atoms come from the homomorphisms of each view's body into
/// q's canonical database — the classic bucket/MiniCon-style candidate space
/// restricted to rewritings over q's own variables. Rewritings requiring
/// genuinely fresh variables in view atoms are outside this space; for the
/// polynomially-bounded rewritings of §6's examples the space is sufficient.
RewritingSearchResult FindRewritings(const Cq& q, const ViewSet& views,
                                     const Schema& base_schema,
                                     const RewritingSearchOptions& options = {});

}  // namespace scalein

#endif  // SCALEIN_VIEWS_REWRITING_H_
