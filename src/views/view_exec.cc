#include "views/view_exec.h"

#include <algorithm>

#include "incremental/delta_rules.h"
#include "incremental/maintainer.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace scalein {

Result<ViewExecutor> ViewExecutor::Create(const Database& base_db,
                                          const Schema& base_schema,
                                          const ViewSet& views,
                                          const AccessSchema& base_access) {
  SI_RETURN_IF_ERROR(base_access.Validate(base_schema));
  ViewExecutor exec;
  exec.views_ = views;
  exec.extended_schema_ = ExtendedSchema(base_schema, views);
  SI_ASSIGN_OR_RETURN(Database extended, MaterializeViews(base_db, views));
  exec.extended_db_ = std::make_unique<Database>(std::move(extended));

  for (const RelationSchema& rs : base_schema.relations()) {
    exec.is_view_[rs.name()] = false;
  }
  exec.combined_access_ = base_access;
  for (const ViewDef& v : views.views()) {
    exec.is_view_[v.name] = true;
    Relation& extent = exec.extended_db_->relation(v.name);
    const RelationSchema* rs = exec.extended_schema_.FindRelation(v.name);
    // Full-scan access: the whole (small, cached) extent.
    exec.combined_access_.AddFullAccess(v.name,
                                        std::max<uint64_t>(1, extent.size()));
    // One single-attribute statement per view column with the empirical N.
    for (size_t p = 0; p < rs->arity(); ++p) {
      const HashIndex& idx = extent.EnsureIndex({p});
      exec.combined_access_.Add(v.name, {rs->attributes()[p]},
                                std::max<uint64_t>(1, idx.MaxBucketSize()));
    }
  }
  SI_RETURN_IF_ERROR(exec.combined_access_.Validate(exec.extended_schema_));
  SI_RETURN_IF_ERROR(exec.combined_access_.BuildIndexes(
      exec.extended_db_.get(), exec.extended_schema_));

  // Bounded view-maintenance plans (§5 machinery with no parameters) plus
  // materialized extents mirrored as answer sets for delta application.
  for (const ViewDef& v : views.views()) {
    Result<IncrementalMaintainer> m = IncrementalMaintainer::Create(
        v.definition, base_schema, base_access, /*params=*/{});
    exec.maintainers_.push_back(
        m.ok() ? std::make_shared<IncrementalMaintainer>(*std::move(m))
               : nullptr);
    AnswerSet extent;
    const Relation& rel = exec.extended_db_->relation(v.name);
    for (const Tuple& t : rel.SortedTuples()) extent.insert(t);
    exec.extents_.push_back(std::move(extent));
  }
  return exec;
}

Result<AnswerSet> ViewExecutor::Evaluate(const Cq& rewriting,
                                         const Binding& params,
                                         ViewExecStats* stats) {
  obs::ScopedSpan span(obs::Tracer::Global(), "views.evaluate", "views");
  FoQuery query = rewriting.ToFoQuery();
  SI_ASSIGN_OR_RETURN(ControllabilityAnalysis analysis,
                      ControllabilityAnalysis::Analyze(
                          query.body, extended_schema_, combined_access_));
  BoundedEvaluator evaluator(extended_db_.get());
  evaluator.set_limits(limits_);
  BoundedEvalStats raw;
  // Honor the caller's request for a per-operator breakdown (stats->raw is
  // both the in-parameter carrying capture_ops and the out-parameter).
  raw.capture_ops = stats != nullptr && stats->raw.capture_ops;
  SI_ASSIGN_OR_RETURN(AnswerSet answers,
                      evaluator.Evaluate(query, analysis, params, &raw));
  if (stats != nullptr) {
    stats->raw = raw;
    for (const auto& [relation, fetched] : raw.fetched_by_relation) {
      auto it = is_view_.find(relation);
      if (it != is_view_.end() && it->second) {
        stats->view_tuples_fetched += fetched;
      } else {
        stats->base_tuples_fetched += fetched;
      }
    }
    if (span.enabled()) {
      span.Arg("base_fetched", stats->base_tuples_fetched);
      span.Arg("view_fetched", stats->view_tuples_fetched);
    }
  }
  return answers;
}

void ViewExecutor::set_limits(const exec::GovernorLimits& limits) {
  limits_ = limits;
  for (const std::shared_ptr<IncrementalMaintainer>& m : maintainers_) {
    if (m != nullptr) m->set_limits(limits);
  }
}

Status ViewExecutor::FullRefresh() {
  obs::ScopedSpan span(obs::Tracer::Global(), "views.full_refresh", "views");
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kViewRefresh, "views.full_refresh",
        {obs::EventArg("views", static_cast<uint64_t>(views_.views().size()))});
  }
  if (Status s = SCALEIN_FAILPOINT("view_refresh"); !s.ok()) return s;
  SI_RETURN_IF_ERROR(RefreshViews(extended_db_.get(), views_));
  for (size_t i = 0; i < views_.views().size(); ++i) {
    AnswerSet extent;
    const Relation& rel = extended_db_->relation(views_.views()[i].name);
    for (const Tuple& t : rel.SortedTuples()) extent.insert(t);
    extents_[i] = std::move(extent);
  }
  return Status::OK();
}

Status ViewExecutor::ApplyBaseUpdate(const Update& update,
                                     BoundedEvalStats* maintenance_stats,
                                     bool* used_incremental) {
  obs::ScopedSpan span(obs::Tracer::Global(), "views.apply_base_update",
                       "views");
  SI_RETURN_IF_ERROR(update.Validate(*extended_db_));
  // Decide whether every view affected by the update has a bounded
  // maintenance path.
  bool incremental = true;
  bool has_deletions = false;
  for (const auto& [rel, rows] : update.deletions) {
    if (!rows.empty()) has_deletions = true;
  }
  for (size_t i = 0; i < views_.views().size() && incremental; ++i) {
    if (maintainers_[i] == nullptr) {
      incremental = false;
      break;
    }
    for (const auto& [rel, rows] : update.insertions) {
      if (!rows.empty() && !maintainers_[i]->SupportsInsertions(rel)) {
        incremental = false;
      }
    }
    if (has_deletions && !maintainers_[i]->SupportsDeletions()) {
      incremental = false;
    }
  }
  if (used_incremental != nullptr) *used_incremental = incremental;
  span.Arg("used_incremental", incremental);
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kMaintenanceStep, "views.apply_base_update",
        {obs::EventArg("used_incremental", incremental)});
  }

  if (!incremental) {
    ApplyUpdate(extended_db_.get(), update);
    return FullRefresh();
  }

  // Phase 1 on the pre-update state, then apply, then integrate + re-check,
  // mirroring the per-view extents into the materialized relations.
  const size_t n = views_.views().size();
  std::vector<AnswerSet> candidates(n);
  for (size_t i = 0; i < n; ++i) {
    SI_RETURN_IF_ERROR(maintainers_[i]->CollectDeletionCandidates(
        extended_db_.get(), update, {}, &candidates[i], maintenance_stats));
  }
  ApplyUpdate(extended_db_.get(), update);
  for (size_t i = 0; i < n; ++i) {
    Relation& rel = extended_db_->relation(views_.views()[i].name);
    AnswerSet added;
    SI_RETURN_IF_ERROR(maintainers_[i]->IntegrateInsertions(
        extended_db_.get(), update, {}, &added, maintenance_stats));
    for (const Tuple& t : added) {
      if (extents_[i].insert(t).second) rel.Insert(t);
    }
    SI_RETURN_IF_ERROR(maintainers_[i]->RecheckCandidates(
        extended_db_.get(), candidates[i], {}, &extents_[i],
        maintenance_stats));
    for (const Tuple& t : candidates[i]) {
      if (!extents_[i].count(t)) rel.Remove(t);
    }
  }
  return Status::OK();
}

}  // namespace scalein
