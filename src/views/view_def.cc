#include "views/view_def.h"

#include "eval/cq_evaluator.h"
#include "query/parser.h"

namespace scalein {

Status ViewSet::Add(ViewDef view, const Schema& base_schema) {
  if (base_schema.HasRelation(view.name)) {
    return Status::AlreadyExists("view '" + view.name +
                                 "' clashes with a base relation");
  }
  if (Find(view.name) != nullptr) {
    return Status::AlreadyExists("view '" + view.name + "' already defined");
  }
  VarSet seen;
  for (const Term& t : view.definition.head()) {
    if (!t.is_var() || seen.count(t.var())) {
      return Status::InvalidArgument(
          "view '" + view.name + "' must have a distinct-variable head");
    }
    seen.insert(t.var());
  }
  for (const CqAtom& a : view.definition.atoms()) {
    const RelationSchema* rs = base_schema.FindRelation(a.relation);
    if (rs == nullptr) {
      return Status::NotFound("view '" + view.name +
                              "' uses unknown relation '" + a.relation + "'");
    }
    if (rs->arity() != a.args.size()) {
      return Status::InvalidArgument("view '" + view.name +
                                     "' atom arity mismatch on '" + a.relation +
                                     "'");
    }
  }
  views_.push_back(std::move(view));
  return Status::OK();
}

ViewSet& ViewSet::Define(const std::string& rule, const Schema& base_schema) {
  Result<Cq> cq = ParseCq(rule, &base_schema);
  SI_CHECK_MSG(cq.ok(), cq.status().message().c_str());
  ViewDef def;
  def.name = cq->name();
  def.definition = *std::move(cq);
  Status s = Add(std::move(def), base_schema);
  SI_CHECK_MSG(s.ok(), s.message().c_str());
  return *this;
}

const ViewDef* ViewSet::Find(const std::string& name) const {
  for (const ViewDef& v : views_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

Schema ExtendedSchema(const Schema& base, const ViewSet& views) {
  Schema out = base;
  for (const ViewDef& v : views.views()) {
    std::vector<std::string> attrs;
    attrs.reserve(v.Arity());
    for (const Term& t : v.definition.head()) attrs.push_back(t.var().name());
    out.Relation(v.name, attrs);
  }
  return out;
}

Result<Database> MaterializeViews(const Database& d, const ViewSet& views) {
  Database out(ExtendedSchema(d.schema(), views));
  // Copy base content.
  for (const RelationSchema& rs : d.schema().relations()) {
    const Relation& src = d.relation(rs.name());
    Relation& dst = out.relation(rs.name());
    for (size_t i = 0; i < src.size(); ++i) dst.Insert(src.TupleAt(i));
  }
  SI_RETURN_IF_ERROR(RefreshViews(&out, views));
  return out;
}

Status RefreshViews(Database* extended, const ViewSet& views) {
  CqEvaluator eval(extended);
  for (const ViewDef& v : views.views()) {
    AnswerSet extent = eval.EvaluateFull(v.definition);
    Relation fresh(v.Arity());
    for (const Tuple& t : extent) fresh.Insert(t);
    extended->relation(v.name) = std::move(fresh);
  }
  return Status::OK();
}

}  // namespace scalein
