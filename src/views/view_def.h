#ifndef SCALEIN_VIEWS_VIEW_DEF_H_
#define SCALEIN_VIEWS_VIEW_DEF_H_

#include <string>
#include <vector>

#include "query/cq.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

/// A named CQ view V(x̄) :- body (§6). The head must list distinct variables
/// (standard for views); the head variable names double as the materialized
/// relation's attribute names.
struct ViewDef {
  std::string name;
  Cq definition;

  size_t Arity() const { return definition.head().size(); }
};

/// A set V of views over a base schema.
class ViewSet {
 public:
  ViewSet() = default;

  /// Registers a view; the definition's head must be distinct variables and
  /// its name must clash with neither base relations nor other views.
  Status Add(ViewDef view, const Schema& base_schema);

  /// Convenience: parses `rule` as a CQ (e.g. "V1(rid, rn) :- restr(...)")
  /// and registers it; aborts on error (for inline literals in tests).
  ViewSet& Define(const std::string& rule, const Schema& base_schema);

  const std::vector<ViewDef>& views() const { return views_; }
  const ViewDef* Find(const std::string& name) const;
  bool IsView(const std::string& name) const { return Find(name) != nullptr; }

 private:
  std::vector<ViewDef> views_;
};

/// The base schema extended with one relation per view (attribute names =
/// head variable names).
Schema ExtendedSchema(const Schema& base, const ViewSet& views);

/// Materializes V(D): a database over ExtendedSchema holding D's relations
/// plus the computed view extents. The base content is copied.
Result<Database> MaterializeViews(const Database& d, const ViewSet& views);

/// Recomputes only the view extents inside an extended database whose base
/// relations were updated in place.
Status RefreshViews(Database* extended, const ViewSet& views);

}  // namespace scalein

#endif  // SCALEIN_VIEWS_VIEW_DEF_H_
