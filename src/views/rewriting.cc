#include "views/rewriting.h"

#include <algorithm>

#include "eval/containment.h"
#include "eval/cq_evaluator.h"
#include "obs/trace.h"

namespace scalein {

Result<Cq> ExpandRewriting(const Cq& rewriting, const ViewSet& views) {
  std::vector<CqAtom> expanded;
  for (const CqAtom& atom : rewriting.atoms()) {
    const ViewDef* view = views.Find(atom.relation);
    if (view == nullptr) {
      expanded.push_back(atom);
      continue;
    }
    if (view->Arity() != atom.args.size()) {
      return Status::InvalidArgument("view atom arity mismatch on '" +
                                     atom.relation + "'");
    }
    // Freshly rename the definition, then substitute head := atom args.
    Cq fresh = view->definition.FreshenVariables();
    std::map<Variable, Term> unify;
    for (size_t i = 0; i < fresh.head().size(); ++i) {
      SI_CHECK(fresh.head()[i].is_var());
      unify.emplace(fresh.head()[i].var(), atom.args[i]);
    }
    Cq unfolded = fresh.Substitute(unify);
    for (const CqAtom& a : unfolded.atoms()) expanded.push_back(a);
  }
  return Cq(rewriting.name() + "_exp", rewriting.head(), std::move(expanded));
}

size_t BaseAtomCount(const Cq& rewriting, const ViewSet& views) {
  size_t count = 0;
  for (const CqAtom& atom : rewriting.atoms()) {
    if (!views.IsView(atom.relation)) ++count;
  }
  return count;
}

RewritingSearchResult FindRewritings(const Cq& q, const ViewSet& views,
                                     const Schema& base_schema,
                                     const RewritingSearchOptions& options) {
  (void)base_schema;
  obs::ScopedSpan span(obs::Tracer::Global(), "views.find_rewritings",
                       "views");
  RewritingSearchResult result;

  // --- Candidate atom pool -------------------------------------------------
  // View atoms: every homomorphism of a view body into q's canonical database
  // yields a usable view atom over q's own terms.
  std::vector<CqAtom> pool;
  std::vector<bool> pool_is_view;
  FrozenCq frozen = FreezeCq(q);
  CqEvaluator frozen_eval(&frozen.db);
  for (const ViewDef& view : views.views()) {
    // Skip views whose body uses relations absent from q (no hom possible,
    // and the frozen database lacks the relation).
    bool applicable = true;
    for (const CqAtom& a : view.definition.atoms()) {
      if (frozen.db.FindRelation(a.relation) == nullptr) {
        applicable = false;
        break;
      }
    }
    if (!applicable) continue;
    AnswerSet head_images = frozen_eval.EvaluateFull(view.definition);
    for (const Tuple& image : head_images) {
      CqAtom atom;
      atom.relation = view.name;
      atom.args.reserve(image.size());
      for (const Value& v : image) atom.args.push_back(UnfreezeValue(v));
      pool.push_back(std::move(atom));
      pool_is_view.push_back(true);
    }
  }
  // Base atoms: q's own atoms.
  for (const CqAtom& a : q.atoms()) {
    pool.push_back(a);
    pool_is_view.push_back(false);
  }

  const size_t n = pool.size();
  const size_t max_total =
      std::min<size_t>(n, options.max_view_atoms +
                              std::min<size_t>(options.max_base_atoms,
                                               q.atoms().size()));

  // --- Subset enumeration, smallest first ---------------------------------
  std::set<std::string> seen;  // dedup identical rewritings by rendering
  for (size_t size = 1; size <= max_total && !result.truncated; ++size) {
    std::vector<size_t> idx(size);
    for (size_t i = 0; i < size; ++i) idx[i] = i;
    bool more = n >= size;
    while (more) {
      if (++result.candidates_checked > options.max_candidates) {
        result.truncated = true;
        break;
      }
      size_t view_atoms = 0;
      size_t base_atoms = 0;
      for (size_t i : idx) {
        if (pool_is_view[i]) {
          ++view_atoms;
        } else {
          ++base_atoms;
        }
      }
      if (view_atoms <= options.max_view_atoms &&
          base_atoms <= options.max_base_atoms) {
        std::vector<CqAtom> atoms;
        atoms.reserve(size);
        VarSet body_vars;
        for (size_t i : idx) {
          atoms.push_back(pool[i]);
          VarSet av = pool[i].Vars();
          body_vars.insert(av.begin(), av.end());
        }
        // Safety: head variables must occur in the candidate body.
        bool safe = true;
        for (const Term& h : q.head()) {
          if (h.is_var() && !body_vars.count(h.var())) {
            safe = false;
            break;
          }
        }
        if (safe) {
          Cq candidate(q.name() + "_rw", q.head(), std::move(atoms));
          Result<Cq> expansion = ExpandRewriting(candidate, views);
          if (expansion.ok() && CqEquivalent(*expansion, q)) {
            std::string key = candidate.ToString();
            if (seen.insert(key).second) {
              result.rewritings.push_back(std::move(candidate));
            }
          }
        }
      }
      // Next combination.
      size_t k = size;
      bool advanced = false;
      while (k > 0) {
        --k;
        if (idx[k] != k + n - size) {
          ++idx[k];
          for (size_t j = k + 1; j < size; ++j) idx[j] = idx[j - 1] + 1;
          advanced = true;
          break;
        }
      }
      if (!advanced) more = false;
    }
  }
  if (span.enabled()) {
    span.Arg("candidates_checked", result.candidates_checked);
    span.Arg("rewritings", static_cast<uint64_t>(result.rewritings.size()));
    span.Arg("truncated", result.truncated);
  }
  return result;
}

}  // namespace scalein
