#ifndef SCALEIN_VIEWS_VQSI_H_
#define SCALEIN_VIEWS_VQSI_H_

#include <optional>

#include "core/access_schema.h"
#include "core/verdict.h"
#include "views/rewriting.h"

namespace scalein {

/// Head variables of `rewriting` that are *unconstrained* in the sense of
/// Theorem 6.1's characterization: not a constant and connected to a base
/// atom through a chain of view atoms sharing variables (a direct occurrence
/// in a base atom is the chain of length one).
VarSet UnconstrainedDistinguishedVars(const Cq& rewriting, const ViewSet& views);

struct VqsiOptions {
  RewritingSearchOptions search;
};

struct VqsiDecision {
  Verdict verdict = Verdict::kUnknown;
  /// For kYes: a rewriting witnessing scale independence using the views.
  std::optional<Cq> rewriting;
  uint64_t candidates_checked = 0;
};

/// VQSI(CQ), NP-complete (Theorem 6.1): is Q scale-independent w.r.t. M
/// using V for *all* databases? Decided through the paper's characterization:
/// a rewriting Q' must exist whose distinguished variables are all
/// constrained and whose base part has at most M atoms (for Boolean Q the
/// base-size condition alone suffices). The rewriting search is capped;
/// hitting the cap downgrades a "no" to kUnknown.
VqsiDecision DecideVqsiCq(const Cq& q, const ViewSet& views,
                          const Schema& base_schema, uint64_t m,
                          const VqsiOptions& options = {});

struct ViewScaleIndependenceResult {
  bool holds = false;
  std::optional<Cq> rewriting;
  bool search_truncated = false;
};

/// Corollary 6.2(2): Q is x̄-scale-independent under A using V if some
/// rewriting Q' has an x̄-controlled base part under A and x̄ covers the
/// unconstrained distinguished variables of Q'. (The returned rewriting is
/// executable through ViewExecutor with bounded base access.)
Result<ViewScaleIndependenceResult> CheckViewScaleIndependence(
    const Cq& q, const ViewSet& views, const Schema& base_schema,
    const AccessSchema& access, const VarSet& params,
    const VqsiOptions& options = {});

}  // namespace scalein

#endif  // SCALEIN_VIEWS_VQSI_H_
