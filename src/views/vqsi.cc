#include "views/vqsi.h"

#include <algorithm>

#include "core/controllability.h"

namespace scalein {

VarSet UnconstrainedDistinguishedVars(const Cq& rewriting,
                                      const ViewSet& views) {
  const std::vector<CqAtom>& atoms = rewriting.atoms();
  const size_t n = atoms.size();

  // BFS from base atoms over shared-variable edges, traversing view atoms:
  // an atom is "base-connected" if it is a base atom or shares a variable
  // with a base-connected atom along a chain of view atoms.
  std::vector<bool> connected(n, false);
  std::vector<bool> frontier(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (!views.IsView(atoms[i].relation)) {
      connected[i] = true;
      frontier[i] = true;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (connected[i]) continue;
      if (!views.IsView(atoms[i].relation)) continue;
      VarSet vars_i = atoms[i].Vars();
      for (size_t j = 0; j < n && !connected[i]; ++j) {
        if (!connected[j]) continue;
        if (!VarIntersect(vars_i, atoms[j].Vars()).empty()) {
          connected[i] = true;
          changed = true;
        }
      }
    }
  }

  VarSet reachable;
  for (size_t i = 0; i < n; ++i) {
    if (connected[i]) {
      VarSet vars = atoms[i].Vars();
      reachable.insert(vars.begin(), vars.end());
    }
  }

  VarSet out;
  for (const Term& h : rewriting.head()) {
    if (h.is_var() && reachable.count(h.var())) out.insert(h.var());
  }
  return out;
}

VqsiDecision DecideVqsiCq(const Cq& q, const ViewSet& views,
                          const Schema& base_schema, uint64_t m,
                          const VqsiOptions& options) {
  VqsiDecision decision;
  RewritingSearchResult search =
      FindRewritings(q, views, base_schema, options.search);
  decision.candidates_checked = search.candidates_checked;
  for (const Cq& rw : search.rewritings) {
    if (BaseAtomCount(rw, views) > m) continue;
    if (!q.IsBoolean() && !UnconstrainedDistinguishedVars(rw, views).empty()) {
      continue;
    }
    decision.verdict = Verdict::kYes;
    decision.rewriting = rw;
    return decision;
  }
  decision.verdict = search.truncated ? Verdict::kUnknown : Verdict::kNo;
  return decision;
}

Result<ViewScaleIndependenceResult> CheckViewScaleIndependence(
    const Cq& q, const ViewSet& views, const Schema& base_schema,
    const AccessSchema& access, const VarSet& params,
    const VqsiOptions& options) {
  SI_RETURN_IF_ERROR(access.Validate(base_schema));
  ViewScaleIndependenceResult out;
  RewritingSearchResult search =
      FindRewritings(q, views, base_schema, options.search);
  out.search_truncated = search.truncated;
  for (const Cq& rw : search.rewritings) {
    // Base part Q'_b as a quantifier-free conjunction (all variables free).
    std::vector<Formula> base_conjuncts;
    for (const CqAtom& atom : rw.atoms()) {
      if (!views.IsView(atom.relation)) {
        base_conjuncts.push_back(Formula::Atom(atom.relation, atom.args));
      }
    }
    Formula base_part = base_conjuncts.empty()
                            ? Formula::True()
                            : Formula::And(std::move(base_conjuncts));
    SI_ASSIGN_OR_RETURN(
        ControllabilityAnalysis analysis,
        ControllabilityAnalysis::Analyze(base_part, base_schema, access));
    if (analysis.IsControlledBy(params)) {
      out.holds = true;
      out.rewriting = rw;
      return out;
    }
  }
  return out;
}

}  // namespace scalein
