#ifndef SCALEIN_SERVE_SERVER_H_
#define SCALEIN_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "io/shell.h"
#include "serve/access_log.h"
#include "serve/admission.h"
#include "serve/session.h"
#include "util/status.h"

namespace scalein::serve {

/// The multi-session front end: multiplexes concurrent client sessions onto
/// the engine (each evaluation internally fans out over par::WorkerPool),
/// with every session wrapped in a SessionEnvelope lease carved from a
/// server-wide exec::SharedLedger and every arriving query passed through
/// the bound-based admission controller (serve/admission.h).
///
/// Concurrency model: admission decisions, queueing, and envelope accounting
/// happen under one mutex — decisions are serialized, which is what makes
/// them deterministic for a fixed arrival script. Evaluations drop the lock
/// and run on the *calling* thread (one per connection in port.cc, one per
/// worker in bench_serve); the engine's own morsel fan-out provides the
/// parallelism. A queued caller blocks in Submit on the bounded FIFO until a
/// run slot frees or its queue-timeout lapses.
///
/// Every admission verdict that refuses work (reject, queue-timeout shed) is
/// sealed into the journal as a tripped certificate whose trip_reason
/// carries the static Theorem 4.2 bound that justified it — `certify` checks
/// server refusals exactly like evaluations.
class Server {
 public:
  struct Options {
    SlaConfig sla;
    /// Scripted mode: enables the `#busy <n>` synthetic-run-slot directive
    /// so a single-threaded arrival script can walk queries through
    /// queue/queue-timeout deterministically (no racing threads needed).
    bool scripted = false;
    /// Structured access log: one JSONL AccessLogRecord per served request,
    /// size-rotated like the certificate journal. Empty = disabled; Start()
    /// falls back to SCALEIN_ACCESS_LOG_PATH (and
    /// SCALEIN_ACCESS_LOG_MAX_BYTES) when unset here.
    std::string access_log_path;
    uint64_t access_log_max_bytes = AccessLog::kDefaultMaxBytes;
  };

  /// `shell` must outlive the server and have its catalog loaded; Start()
  /// freezes it for concurrent evaluation.
  Server(Shell* shell, Options options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Freezes the shell catalog (PrepareServe), resolves run slots (SLA
  /// max_running, default worker-pool width), and arms the server-wide
  /// fetch ledger when the SLA carries a server capacity.
  Status Start();

  /// One protocol line from session `sid`:
  ///   hello [tag]                open the session (lease an envelope); the
  ///                              optional tag stamps this session's requests
  ///   eval [@tag] var=value,... <query>  admission + evaluation; @tag
  ///                              overrides the session tag for this request
  ///   budget                     report the envelope's remaining lease
  ///   bye                        close the session (preempts in-flight work)
  ///   classes                    per-bound-class admission tallies
  ///   stats [prom] | journal | certify [path] | workload [...]   read-only
  ///   drain                      admin: drain the whole server
  ///   #busy <n>                  scripted mode only: synthetic run slots
  Result<std::string> HandleLine(const std::string& sid,
                                 std::string_view line);

  Result<std::string> OpenSession(const std::string& sid,
                                  const std::string& trace_tag = "");
  Result<std::string> CloseSession(const std::string& sid);

  /// Admission + (when admitted/degraded) evaluation of one `eval` body.
  /// Queued callers block here until a slot frees or the queue timeout
  /// lapses. Returns the deterministic response text; infrastructure
  /// errors (parse failures, injected faults) surface as a Status.
  Result<std::string> Submit(const std::string& sid, std::string_view rest);

  /// The per-class admission tallies the `classes` command renders — one
  /// line per BoundClass, wall-clock-free, byte-identical to what
  /// scripts/serve_report.py recomputes from the access log.
  std::string RenderClasses() const;

  /// Graceful shutdown: refuse new work, preempt every session's in-flight
  /// evaluation via its cancellation token, wake all queued callers (they
  /// shed as draining), and wait until nothing is running. Idempotent.
  void Drain();

  bool draining() const;
  size_t session_count() const;
  size_t running() const;
  size_t queue_depth() const;
  const SlaConfig& sla() const { return options_.sla; }
  /// The shell's (thread-safe) metrics registry — the port layer stamps its
  /// serve.io_faults accounting into the same series `stats prom` renders.
  obs::MetricsRegistry* shell_metrics() const { return metrics_; }
  /// Structured access log; nullptr when disabled.
  const AccessLog* access_log() const { return access_log_.get(); }

 private:
  struct QueueTicket {
    uint64_t id = 0;
    BoundClass cls = BoundClass::kSmall;
  };

  /// Request lifecycle timestamps (monotonic ns), filled in as Submit walks
  /// accept → parse → admission → queue wait → execute → serialize. Zero
  /// pairs mean the phase never happened (e.g. queue for a straight admit).
  struct PhaseTiming {
    uint64_t arrive_ns = 0;
    uint64_t parse_done_ns = 0;
    uint64_t decided_ns = 0;
    uint64_t queue_enter_ns = 0;
    uint64_t queue_exit_ns = 0;
    uint64_t exec_start_ns = 0;
    uint64_t exec_done_ns = 0;
    uint64_t done_ns = 0;
  };

  /// Per-BoundClass admission tallies behind the `classes` command. `shed`
  /// counts overload refusals (queue-timeout/full/class-full/draining);
  /// `rejected` the contract ones (no bound, budget).
  struct ClassTally {
    uint64_t total = 0;
    uint64_t admitted = 0;
    uint64_t degraded = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;
  };

  /// Seals + journals a refused query's verdict certificate. Caller holds
  /// mu_ (the underlying sinks are thread-safe; holding the lock keeps
  /// journal order identical to decision order).
  std::string RecordRefusal(const ServePlan& plan, const obs::QueryId& qid,
                            const AdmissionDecision& decision,
                            const std::string& client_tag);
  /// Counts a decision into the serve.* metrics. Caller holds mu_.
  void CountDecision(const AdmissionDecision& decision);
  /// One request's terminal bookkeeping: per-class SLO histograms and shed
  /// counters, the class tally, the access-log line, a qid-stamped
  /// serve-phase flight event, and retroactive phase spans when a tracer is
  /// installed. Caller holds mu_; returns warning lines (access-log append
  /// failures), never an error.
  std::string EmitLifecycle(const ServePlan& plan, const obs::QueryId& qid,
                            const std::string& sid,
                            const std::string& client_tag,
                            const AdmissionDecision& decision,
                            const ServeEvalOutcome* outcome,
                            const PhaseTiming& t, size_t bytes_out);
  size_t EffectiveRunning() const {
    return running_ + synthetic_running_;
  }

  Shell* const shell_;
  const Options options_;
  obs::MetricsRegistry* metrics_ = nullptr;  ///< shell's registry
  exec::SharedLedger ledger_;  ///< server-wide fetch capacity (may stay
                               ///< unlimited)
  std::unique_ptr<AccessLog> access_log_;  ///< null = disabled
  size_t max_running_ = 1;
  bool started_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<SessionEnvelope>> sessions_;
  std::deque<QueueTicket> queue_;
  size_t queued_by_class_[kBoundClasses] = {0, 0, 0, 0};
  ClassTally class_tallies_[kBoundClasses];
  uint64_t next_ticket_ = 1;
  size_t running_ = 0;
  size_t synthetic_running_ = 0;  ///< scripted-mode #busy directive
  bool draining_ = false;
};

}  // namespace scalein::serve

#endif  // SCALEIN_SERVE_SERVER_H_
