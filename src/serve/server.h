#ifndef SCALEIN_SERVE_SERVER_H_
#define SCALEIN_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "io/shell.h"
#include "serve/admission.h"
#include "serve/session.h"
#include "util/status.h"

namespace scalein::serve {

/// The multi-session front end: multiplexes concurrent client sessions onto
/// the engine (each evaluation internally fans out over par::WorkerPool),
/// with every session wrapped in a SessionEnvelope lease carved from a
/// server-wide exec::SharedLedger and every arriving query passed through
/// the bound-based admission controller (serve/admission.h).
///
/// Concurrency model: admission decisions, queueing, and envelope accounting
/// happen under one mutex — decisions are serialized, which is what makes
/// them deterministic for a fixed arrival script. Evaluations drop the lock
/// and run on the *calling* thread (one per connection in port.cc, one per
/// worker in bench_serve); the engine's own morsel fan-out provides the
/// parallelism. A queued caller blocks in Submit on the bounded FIFO until a
/// run slot frees or its queue-timeout lapses.
///
/// Every admission verdict that refuses work (reject, queue-timeout shed) is
/// sealed into the journal as a tripped certificate whose trip_reason
/// carries the static Theorem 4.2 bound that justified it — `certify` checks
/// server refusals exactly like evaluations.
class Server {
 public:
  struct Options {
    SlaConfig sla;
    /// Scripted mode: enables the `#busy <n>` synthetic-run-slot directive
    /// so a single-threaded arrival script can walk queries through
    /// queue/queue-timeout deterministically (no racing threads needed).
    bool scripted = false;
  };

  /// `shell` must outlive the server and have its catalog loaded; Start()
  /// freezes it for concurrent evaluation.
  Server(Shell* shell, Options options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Freezes the shell catalog (PrepareServe), resolves run slots (SLA
  /// max_running, default worker-pool width), and arms the server-wide
  /// fetch ledger when the SLA carries a server capacity.
  Status Start();

  /// One protocol line from session `sid`:
  ///   hello                      open the session (lease an envelope)
  ///   eval var=value,... <query> admission + evaluation
  ///   budget                     report the envelope's remaining lease
  ///   bye                        close the session (preempts in-flight work)
  ///   stats [prom] | journal | certify [path] | workload [...]   read-only
  ///   drain                      admin: drain the whole server
  ///   #busy <n>                  scripted mode only: synthetic run slots
  Result<std::string> HandleLine(const std::string& sid,
                                 std::string_view line);

  Result<std::string> OpenSession(const std::string& sid);
  Result<std::string> CloseSession(const std::string& sid);

  /// Admission + (when admitted/degraded) evaluation of one `eval` body.
  /// Queued callers block here until a slot frees or the queue timeout
  /// lapses. Returns the deterministic response text; infrastructure
  /// errors (parse failures, injected faults) surface as a Status.
  Result<std::string> Submit(const std::string& sid, std::string_view rest);

  /// Graceful shutdown: refuse new work, preempt every session's in-flight
  /// evaluation via its cancellation token, wake all queued callers (they
  /// shed as draining), and wait until nothing is running. Idempotent.
  void Drain();

  bool draining() const;
  size_t session_count() const;
  size_t running() const;
  size_t queue_depth() const;
  const SlaConfig& sla() const { return options_.sla; }
  /// The shell's (thread-safe) metrics registry — the port layer stamps its
  /// serve.io_faults accounting into the same series `stats prom` renders.
  obs::MetricsRegistry* shell_metrics() const { return metrics_; }

 private:
  struct QueueTicket {
    uint64_t id = 0;
    BoundClass cls = BoundClass::kSmall;
  };

  /// Seals + journals a refused query's verdict certificate. Caller holds
  /// mu_ (the underlying sinks are thread-safe; holding the lock keeps
  /// journal order identical to decision order).
  std::string RecordRefusal(const ServePlan& plan, const obs::QueryId& qid,
                            const AdmissionDecision& decision);
  /// Counts a decision into the serve.* metrics. Caller holds mu_.
  void CountDecision(const AdmissionDecision& decision);
  size_t EffectiveRunning() const {
    return running_ + synthetic_running_;
  }

  Shell* const shell_;
  const Options options_;
  obs::MetricsRegistry* metrics_ = nullptr;  ///< shell's registry
  exec::SharedLedger ledger_;  ///< server-wide fetch capacity (may stay
                               ///< unlimited)
  size_t max_running_ = 1;
  bool started_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<SessionEnvelope>> sessions_;
  std::deque<QueueTicket> queue_;
  size_t queued_by_class_[kBoundClasses] = {0, 0, 0, 0};
  uint64_t next_ticket_ = 1;
  size_t running_ = 0;
  size_t synthetic_running_ = 0;  ///< scripted-mode #busy directive
  bool draining_ = false;
};

}  // namespace scalein::serve

#endif  // SCALEIN_SERVE_SERVER_H_
