#include "serve/admission.h"

#include <cmath>
#include <cstdlib>

#include "util/strings.h"

namespace scalein::serve {

const char* AdmitActionName(AdmitAction action) {
  switch (action) {
    case AdmitAction::kAdmit:
      return "admit";
    case AdmitAction::kQueue:
      return "queue";
    case AdmitAction::kDegrade:
      return "degrade";
    case AdmitAction::kReject:
      return "reject";
  }
  return "?";
}

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kNoStaticBound:
      return "no-static-bound";
    case RejectReason::kBudgetExhausted:
      return "budget";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kQueueClassFull:
      return "queue-class-full";
    case RejectReason::kQueueTimeout:
      return "queue-timeout";
    case RejectReason::kDraining:
      return "draining";
  }
  return "?";
}

BoundClass ClassifyBound(double static_bound) {
  if (static_bound < 0) return BoundClass::kHuge;
  if (static_bound <= 100.0) return BoundClass::kSmall;
  if (static_bound <= 10000.0) return BoundClass::kMedium;
  if (static_bound <= 1000000.0) return BoundClass::kLarge;
  return BoundClass::kHuge;
}

const char* BoundClassName(BoundClass c) {
  switch (c) {
    case BoundClass::kSmall:
      return "small";
    case BoundClass::kMedium:
      return "medium";
    case BoundClass::kLarge:
      return "large";
    case BoundClass::kHuge:
      return "huge";
  }
  return "?";
}

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<uint64_t>(parsed);
}

}  // namespace

SlaConfig SlaConfig::FromEnv() {
  SlaConfig c;
  c.session_fetch_budget =
      EnvU64("SCALEIN_SLA_SESSION_BUDGET", c.session_fetch_budget);
  c.server_fetch_capacity =
      EnvU64("SCALEIN_SLA_SERVER_BUDGET", c.server_fetch_capacity);
  c.query_deadline_ms =
      EnvU64("SCALEIN_SLA_QUERY_DEADLINE_MS", c.query_deadline_ms);
  c.output_row_cap = EnvU64("SCALEIN_SLA_ROW_CAP", c.output_row_cap);
  c.allow_degrade = EnvU64("SCALEIN_SLA_DEGRADE", 1) != 0;
  c.degrade_floor = EnvU64("SCALEIN_SLA_DEGRADE_FLOOR", c.degrade_floor);
  c.queue_capacity = static_cast<size_t>(
      EnvU64("SCALEIN_SLA_QUEUE_CAP", c.queue_capacity));
  c.queue_class_capacity = static_cast<size_t>(
      EnvU64("SCALEIN_SLA_QUEUE_CLASS_CAP", c.queue_class_capacity));
  c.queue_timeout_ms =
      EnvU64("SCALEIN_SLA_QUEUE_TIMEOUT_MS", c.queue_timeout_ms);
  c.max_running =
      static_cast<size_t>(EnvU64("SCALEIN_SLA_MAX_RUNNING", c.max_running));
  return c;
}

std::string SlaConfig::ToString() const {
  return StrFormat(
      "sla: session-budget=%llu server-budget=%llu deadline=%llums "
      "rows=%llu degrade=%s floor=%llu queue=%zu/%zu timeout=%llums "
      "running=%zu",
      static_cast<unsigned long long>(session_fetch_budget),
      static_cast<unsigned long long>(server_fetch_capacity),
      static_cast<unsigned long long>(query_deadline_ms),
      static_cast<unsigned long long>(output_row_cap),
      allow_degrade ? "on" : "off",
      static_cast<unsigned long long>(degrade_floor), queue_capacity,
      queue_class_capacity, static_cast<unsigned long long>(queue_timeout_ms),
      max_running);
}

std::string AdmissionDecision::ToString() const {
  std::string out(AdmitActionName(action));
  if (action == AdmitAction::kReject) {
    out += std::string("(") + RejectReasonName(reject) + ")";
  }
  if (static_bound >= 0) {
    out += StrFormat(" bound=%.0f", static_bound);
  } else {
    out += " bound=none";
  }
  if (sub_budget > 0) {
    out += StrFormat(" lease=%llu",
                     static_cast<unsigned long long>(sub_budget));
  }
  if (action == AdmitAction::kReject) {
    out += StrFormat(" retry-after=%llums",
                     static_cast<unsigned long long>(retry_after_ms));
  }
  if (!reason.empty()) out += ": " + reason;
  return out;
}

AdmissionDecision DecideAdmission(const AdmissionInput& in,
                                  const SlaConfig& config) {
  AdmissionDecision d;
  d.static_bound = in.static_bound;

  if (in.draining) {
    d.action = AdmitAction::kReject;
    d.reject = RejectReason::kDraining;
    d.retry_after_ms = 0;
    d.reason = "server is draining";
    return d;
  }

  // No finite Theorem 4.2 bound: there is nothing to admit against. The
  // server refuses up front instead of letting an unbounded evaluation eat
  // the envelope mid-flight; the journaled verdict names the missing bound.
  if (in.static_bound < 0) {
    d.action = AdmitAction::kReject;
    d.reject = RejectReason::kNoStaticBound;
    d.retry_after_ms = 0;
    d.reason = "query has no static fetch bound under the access schema";
    return d;
  }

  // Even a zero-bound query reserves one unit: GovernorLimits treats a zero
  // fetch budget as *disabled*, so a finite lease must never arm as 0.
  uint64_t need = static_cast<uint64_t>(std::ceil(in.static_bound));
  if (need == 0) need = 1;
  const bool fits = in.budget_unlimited || need <= in.budget_remaining;

  // First settle whether the query could run at all, and under what lease.
  // A query that cannot even degrade sheds immediately — no point holding a
  // queue slot for work the budget provably cannot cover.
  const bool degradable =
      config.allow_degrade && in.budget_remaining >= config.degrade_floor;
  if (!fits && !degradable) {
    d.action = AdmitAction::kReject;
    d.reject = RejectReason::kBudgetExhausted;
    // In-flight reservations refund unspent budget at completion, so a retry
    // after the current wave drains may fit; a bound larger than the whole
    // lease never will.
    d.retry_after_ms =
        (in.running > 0 || in.queued_total > 0) ? config.queue_timeout_ms : 0;
    d.reason = StrFormat(
        "bound %.0f exceeds remaining budget %llu (degrade floor %llu)",
        in.static_bound, static_cast<unsigned long long>(in.budget_remaining),
        static_cast<unsigned long long>(config.degrade_floor));
    return d;
  }

  // Runnable — but only in a free run slot. Degraded runs are subject to the
  // same slots as full admits: concurrency stays bounded under overload, and
  // a queued caller is re-decided against fresh budget state when its slot
  // frees (so a queued admit can still become a degrade, and vice versa).
  const size_t max_running = config.max_running == 0 ? 1 : config.max_running;
  if (in.running < max_running) {
    if (fits) {
      d.action = AdmitAction::kAdmit;
      d.sub_budget = in.budget_unlimited ? 0 : need;
      d.reason = StrFormat("bound %.0f fits remaining budget", in.static_bound);
      return d;
    }
    // The bound exceeds what is left of the lease but a useful sub-budget
    // remains: the query runs under the residual budget and returns a sound
    // Degraded<T> extent (a genuine subset of the answer).
    d.action = AdmitAction::kDegrade;
    d.sub_budget = in.budget_remaining;
    d.reason = StrFormat("bound %.0f exceeds remaining %llu; degraded lease",
                         in.static_bound,
                         static_cast<unsigned long long>(in.budget_remaining));
    return d;
  }

  // All run slots busy: bounded FIFO with per-class backpressure. The
  // caller holds the wait; a slot freeing within queue_timeout_ms turns
  // this into an admit/degrade, otherwise it becomes a queue-timeout shed.
  if (in.queued_total >= config.queue_capacity) {
    d.action = AdmitAction::kReject;
    d.reject = RejectReason::kQueueFull;
    d.retry_after_ms = config.queue_timeout_ms * (in.queued_total + 1);
    d.reason = StrFormat("queue at capacity (%zu)", config.queue_capacity);
    return d;
  }
  if (in.queued_in_class >= config.queue_class_capacity) {
    d.action = AdmitAction::kReject;
    d.reject = RejectReason::kQueueClassFull;
    d.retry_after_ms = config.queue_timeout_ms * (in.queued_in_class + 1);
    d.reason =
        StrFormat("bound-class '%s' queue share at capacity (%zu)",
                  BoundClassName(ClassifyBound(in.static_bound)),
                  config.queue_class_capacity);
    return d;
  }
  d.action = AdmitAction::kQueue;
  d.sub_budget = in.budget_unlimited ? 0 : (fits ? need : in.budget_remaining);
  d.reason = StrFormat("%zu running, %zu queued ahead", in.running,
                       in.queued_total);
  return d;
}

}  // namespace scalein::serve
