#include "serve/message.h"

#include <cstdio>

namespace scalein::serve {

std::string EncodeFrame(bool ok, std::string_view payload) {
  char head[32];
  const int n = std::snprintf(head, sizeof(head), "%c%zu\n", ok ? '+' : '-',
                              payload.size());
  std::string out(head, static_cast<size_t>(n));
  out.append(payload);
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) { buf_.append(bytes); }

bool FrameDecoder::Next(bool* ok, std::string* payload) {
  if (corrupt_) return false;
  if (buf_.empty()) return false;
  const char kind = buf_[0];
  if (kind != '+' && kind != '-') {
    corrupt_ = true;
    *ok = false;
    *payload = "frame error: expected '+' or '-' prefix";
    return true;
  }
  const size_t nl = buf_.find('\n');
  if (nl == std::string::npos) return false;
  size_t len = 0;
  for (size_t i = 1; i < nl; ++i) {
    const char c = buf_[i];
    if (c < '0' || c > '9') {
      corrupt_ = true;
      *ok = false;
      *payload = "frame error: non-numeric length";
      return true;
    }
    len = len * 10 + static_cast<size_t>(c - '0');
  }
  if (buf_.size() < nl + 1 + len) return false;
  *ok = kind == '+';
  payload->assign(buf_, nl + 1, len);
  buf_.erase(0, nl + 1 + len);
  return true;
}

}  // namespace scalein::serve
