#include "serve/port.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/flight_recorder.h"
#include "serve/message.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace scalein::serve {

Port::Port(Server* server, Options options)
    : server_(server), options_(options) {}

Port::~Port() { Shutdown(); }

Status Port::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind: " + err);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Port::AcceptLoop() {
  uint64_t next_conn = 0;
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR) continue;
      break;  // listener closed or broken: stop accepting
    }
    if (!SCALEIN_FAILPOINT("serve_accept").ok()) {
      // Injected accept fault: this connection is the blast radius —
      // count it, drop it, keep serving everyone else.
      server_->shell_metrics()->GetCounter("serve.io_faults").Increment();
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t conn_id = ++next_conn;
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    live_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd, conn_id] { Serve(fd, conn_id); });
  }
}

void Port::Serve(int fd, uint64_t conn_id) {
  const std::string sid = StrFormat("conn%llu",
                                    static_cast<unsigned long long>(conn_id));
  std::string pending;
  char chunk[4096];
  bool session_opened = false;
  bool faulted = false;
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (!SCALEIN_FAILPOINT("serve_read").ok()) {
      server_->shell_metrics()->GetCounter("serve.io_faults").Increment();
      faulted = true;
      break;
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // disconnect (or shutdown-induced error)
    pending.append(chunk, static_cast<size_t>(n));
    size_t nl;
    bool closing = false;
    while ((nl = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      const std::string_view stripped = StripWhitespace(line);
      Result<std::string> out = server_->HandleLine(sid, stripped);
      if (out.ok() && stripped == "hello") session_opened = true;
      const std::string frame =
          out.ok() ? EncodeFrame(true, *out)
                   : EncodeFrame(false, out.status().ToString() + "\n");
      if (!SCALEIN_FAILPOINT("serve_write").ok()) {
        server_->shell_metrics()->GetCounter("serve.io_faults").Increment();
        faulted = true;
        closing = true;
        break;
      }
      size_t written = 0;
      while (written < frame.size()) {
        const ssize_t w =
            ::write(fd, frame.data() + written, frame.size() - written);
        if (w <= 0) {
          closing = true;
          break;
        }
        written += static_cast<size_t>(w);
      }
      if (closing) break;
      // The flush phase: the response frame is on the wire. Unstamped (the
      // request's QueryId is not visible at the port layer), but adjacent
      // to the stamped serve-phase lifecycle event in the ring.
      obs::RecordFlightNums(obs::EventKind::kServePhase, "flush",
                            {{"bytes", static_cast<double>(frame.size())}});
      if (stripped == "bye") {
        session_opened = false;
        closing = true;
        break;
      }
    }
    if (closing) break;
  }
  (void)faulted;
  // Client disconnect is a preemption event: close the session so its
  // envelope's cancellation token stops any still-running evaluation.
  if (session_opened) (void)server_->CloseSession(sid);
  std::lock_guard<std::mutex> lock(mu_);
  if (live_fds_.erase(fd) != 0) ::close(fd);
}

void Port::CloseAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
}

void Port::Shutdown() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  CloseAll();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
}

}  // namespace scalein::serve
