#include "serve/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "util/failpoint.h"

namespace scalein::serve {

MetricsHttp::MetricsHttp(obs::MetricsRegistry* registry,
                         std::function<bool()> draining, Options options)
    : registry_(registry), draining_(std::move(draining)), options_(options) {}

MetricsHttp::~MetricsHttp() { Shutdown(); }

Status MetricsHttp::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind: " + err);
  }
  if (::listen(listen_fd_, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsHttp::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR) continue;
      break;  // listener closed or broken: stop accepting
    }
    if (!SCALEIN_FAILPOINT("serve_http").ok()) {
      // Injected scrape fault: this connection is the blast radius —
      // count it, drop it, keep answering everyone else.
      registry_->GetCounter("serve.io_faults").Increment();
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    live_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { Serve(fd); });
  }
}

namespace {

/// Minimal HTTP response; `body` ships verbatim with Content-Length so
/// curl and Prometheus both terminate cleanly despite Connection: close.
std::string HttpResponse(const char* status_line, const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status_line;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

void MetricsHttp::Serve(int fd) {
  // Read until the header terminator (or the client stops sending); only
  // the request line matters, but draining the headers keeps clients that
  // wait for us to read them from deadlocking against our write.
  std::string request;
  char chunk[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos &&
         request.size() < 64 * 1024) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    request.append(chunk, static_cast<size_t>(n));
    if (request.find('\n') != std::string::npos &&
        request.compare(0, 4, "GET ") != 0) {
      break;  // not a GET; no point waiting for more headers
    }
  }
  std::string response;
  const size_t line_end = request.find('\n');
  std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  // "GET <path> HTTP/1.x" — tolerate a missing version (HTTP/0.9-style).
  std::string path;
  if (line.compare(0, 4, "GET ") == 0) {
    path = line.substr(4);
    const size_t sp = path.find(' ');
    if (sp != std::string::npos) path.resize(sp);
  }
  if (path == "/metrics") {
    response = HttpResponse("200 OK", "text/plain; version=0.0.4",
                            registry_->ToPrometheusText());
  } else if (path == "/healthz") {
    const bool draining = draining_ != nullptr && draining_();
    response = draining ? HttpResponse("503 Service Unavailable",
                                       "text/plain", "draining\n")
                        : HttpResponse("200 OK", "text/plain", "ok\n");
  } else if (!path.empty()) {
    response = HttpResponse("404 Not Found", "text/plain", "not found\n");
  } else {
    response = HttpResponse("400 Bad Request", "text/plain", "bad request\n");
  }
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  registry_->GetCounter("serve.scrapes").Increment();
  size_t written = 0;
  while (written < response.size()) {
    const ssize_t w =
        ::write(fd, response.data() + written, response.size() - written);
    if (w <= 0) break;
    written += static_cast<size_t>(w);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (live_fds_.erase(fd) != 0) ::close(fd);
}

void MetricsHttp::Shutdown() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
}

}  // namespace scalein::serve
