#include "serve/access_log.h"

#include <fstream>

#include "obs/json.h"

namespace scalein::serve {

std::string AccessLogRecordJson(const AccessLogRecord& rec) {
  using obs::JsonEscape;
  using obs::JsonNumber;
  std::string out;
  out.reserve(256);  // typical record; keeps the hot append allocation-light
  out += "{\"query_id\":\"" + JsonEscape(rec.query_id) + "\"";
  if (!rec.client_tag.empty()) {
    out += ",\"client_tag\":\"" + JsonEscape(rec.client_tag) + "\"";
  }
  out += ",\"session\":\"" + JsonEscape(rec.session_id) + "\"";
  out += ",\"class\":\"";
  out += BoundClassName(rec.bound_class);
  out += "\",\"action\":\"";
  out += AdmitActionName(rec.action);
  out += "\"";
  if (rec.reject != RejectReason::kNone) {
    out += ",\"reject\":\"";
    out += RejectReasonName(rec.reject);
    out += "\"";
  }
  if (rec.static_bound >= 0) {
    out += ",\"static_bound\":" + JsonNumber(rec.static_bound);
  }
  out += ",\"lease\":" + std::to_string(rec.lease);
  out += ",\"fetches\":" + std::to_string(rec.fetches);
  out += ",\"answers\":" + std::to_string(rec.answers);
  out += ",\"queue_wait_ms\":" + JsonNumber(rec.queue_wait_ms);
  out += ",\"exec_ms\":" + JsonNumber(rec.exec_ms);
  out += ",\"e2e_ms\":" + JsonNumber(rec.e2e_ms);
  out += ",\"bytes_out\":" + std::to_string(rec.bytes_out);
  out += ",\"tripped\":";
  out += rec.tripped ? "true" : "false";
  if (!rec.trip_reason.empty()) {
    out += ",\"trip\":\"" + JsonEscape(rec.trip_reason) + "\"";
  }
  out += ",\"degraded\":";
  out += rec.degraded ? "true" : "false";
  out += "}";
  return out;
}

AccessLog::AccessLog(std::string path, uint64_t max_bytes)
    : file_(std::move(path), max_bytes, "access_log_append",
            "access_log_rotate") {}

Status AccessLog::Append(const AccessLogRecord& rec) {
  return file_.Append(AccessLogRecordJson(rec));
}

bool AdmitActionFromName(const std::string& name, AdmitAction* out) {
  for (AdmitAction a : {AdmitAction::kAdmit, AdmitAction::kQueue,
                        AdmitAction::kDegrade, AdmitAction::kReject}) {
    if (name == AdmitActionName(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

bool RejectReasonFromName(const std::string& name, RejectReason* out) {
  for (RejectReason r :
       {RejectReason::kNone, RejectReason::kNoStaticBound,
        RejectReason::kBudgetExhausted, RejectReason::kQueueFull,
        RejectReason::kQueueClassFull, RejectReason::kQueueTimeout,
        RejectReason::kDraining}) {
    if (name == RejectReasonName(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

bool BoundClassFromName(const std::string& name, BoundClass* out) {
  for (BoundClass c : {BoundClass::kSmall, BoundClass::kMedium,
                       BoundClass::kLarge, BoundClass::kHuge}) {
    if (name == BoundClassName(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

namespace {

Result<AccessLogRecord> RecordFromJsonValue(const obs::JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("access-log line is not an object");
  }
  AccessLogRecord rec;
  rec.query_id = v.StringOr("query_id", "");
  rec.client_tag = v.StringOr("client_tag", "");
  rec.session_id = v.StringOr("session", "");
  if (!BoundClassFromName(v.StringOr("class", ""), &rec.bound_class)) {
    return Status::InvalidArgument("access-log line has an unknown class");
  }
  if (!AdmitActionFromName(v.StringOr("action", ""), &rec.action)) {
    return Status::InvalidArgument("access-log line has an unknown action");
  }
  const std::string reject = v.StringOr("reject", "none");
  if (!RejectReasonFromName(reject, &rec.reject)) {
    return Status::InvalidArgument(
        "access-log line has an unknown reject reason");
  }
  rec.static_bound = v.NumberOr("static_bound", -1.0);
  rec.lease = static_cast<uint64_t>(v.NumberOr("lease", 0));
  rec.fetches = static_cast<uint64_t>(v.NumberOr("fetches", 0));
  rec.answers = static_cast<uint64_t>(v.NumberOr("answers", 0));
  rec.queue_wait_ms = v.NumberOr("queue_wait_ms", 0.0);
  rec.exec_ms = v.NumberOr("exec_ms", 0.0);
  rec.e2e_ms = v.NumberOr("e2e_ms", 0.0);
  rec.bytes_out = static_cast<uint64_t>(v.NumberOr("bytes_out", 0));
  rec.tripped = v.BoolOr("tripped", false);
  rec.trip_reason = v.StringOr("trip", "");
  rec.degraded = v.BoolOr("degraded", false);
  return rec;
}

}  // namespace

Result<std::vector<AccessLogRecord>> LoadAccessLogRecords(
    const std::string& path, AccessLogLoadReport* report) {
  AccessLogLoadReport local;
  std::vector<AccessLogRecord> out;
  // Oldest generation first, so replay order equals append order (mirrors
  // JournalStore::Load).
  for (int gen = obs::RotatingJsonlFile::kRotations; gen >= 0; --gen) {
    const std::string file =
        gen == 0 ? path : path + "." + std::to_string(gen);
    std::ifstream in(file);
    if (!in.is_open()) continue;
    ++local.files;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      Result<obs::JsonValue> parsed = obs::ParseJson(line);
      if (!parsed.ok()) {
        ++local.malformed;
        local.errors.push_back(file + ":" + std::to_string(lineno) + ": " +
                               parsed.status().message());
        continue;
      }
      Result<AccessLogRecord> rec = RecordFromJsonValue(*parsed);
      if (!rec.ok()) {
        ++local.malformed;
        local.errors.push_back(file + ":" + std::to_string(lineno) + ": " +
                               rec.status().message());
        continue;
      }
      ++local.records;
      out.push_back(std::move(rec).ValueOrDie());
    }
  }
  if (report != nullptr) *report = std::move(local);
  return out;
}

}  // namespace scalein::serve
