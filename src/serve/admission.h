#ifndef SCALEIN_SERVE_ADMISSION_H_
#define SCALEIN_SERVE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace scalein::serve {

/// What the admission controller decided to do with an arriving query.
/// The decision is made *before* execution from the query's static
/// Theorem 4.2 bound — the PIQL-style trick scale independence enables: a
/// conventional optimizer can only estimate what a query will touch, but
/// here the bound is a theorem, so admit/queue/degrade/reject is a sound
/// contract rather than a guess.
enum class AdmitAction {
  kAdmit,    ///< bound fits the envelope and a run slot is free
  kQueue,    ///< bound fits but all run slots are busy — bounded FIFO wait
  kDegrade,  ///< bound exceeds the remaining budget; run under a reduced
             ///< sub-budget yielding a sound Degraded<T> extent
  kReject,   ///< cannot be served within the SLA; structured refusal
};

/// Canonical lowercase name ("admit", "queue", "degrade", "reject").
const char* AdmitActionName(AdmitAction action);

/// Reasons a query is rejected (or shed after queueing). Stable names feed
/// `serve.rejected.<reason>` counters and the journaled verdict text.
enum class RejectReason {
  kNone = 0,
  kNoStaticBound,   ///< non-controllable: no finite bound to admit against
  kBudgetExhausted, ///< bound exceeds remaining budget, degrade not viable
  kQueueFull,       ///< bounded FIFO at capacity
  kQueueClassFull,  ///< this bound-class's queue share at capacity
  kQueueTimeout,    ///< queued, but no run slot freed within the timeout
  kDraining,        ///< server is shutting down; not accepting work
};

const char* RejectReasonName(RejectReason reason);

/// Per-query bound class for queue backpressure: queries are bucketed by
/// the magnitude of their static bound so a burst of heavy queries cannot
/// starve cheap interactive ones out of the bounded FIFO. Deterministic in
/// the bound alone.
enum class BoundClass { kSmall = 0, kMedium, kLarge, kHuge };
constexpr size_t kBoundClasses = 4;

BoundClass ClassifyBound(double static_bound);
const char* BoundClassName(BoundClass c);

/// The server's SLA contract, normally parsed from SCALEIN_SLA_* environment
/// variables (see FromEnv). Zero means "disabled/unlimited" for budgets and
/// deadlines, mirroring exec::GovernorLimits.
struct SlaConfig {
  /// Fetch budget leased to each session envelope at `hello` — the session's
  /// whole SLA allowance; admitted queries reserve their static bound
  /// against it and refund what they did not use. 0 = unlimited.
  uint64_t session_fetch_budget = 100000;
  /// Server-wide fetch capacity the per-session leases are carved from.
  /// 0 = unlimited (every session gets its full lease).
  uint64_t server_fetch_capacity = 0;
  uint64_t query_deadline_ms = 0;  ///< per-query wall-clock envelope
  uint64_t output_row_cap = 0;     ///< per-query emitted-row cap
  bool allow_degrade = true;
  /// Smallest sub-budget worth running a degraded query under; below this
  /// the query is rejected instead (a 3-tuple budget yields a useless
  /// extent but still pays planning + dispatch).
  uint64_t degrade_floor = 16;
  size_t queue_capacity = 64;        ///< bounded FIFO across all classes
  size_t queue_class_capacity = 16;  ///< per-BoundClass share of the FIFO
  uint64_t queue_timeout_ms = 100;   ///< max queue wait before shedding
  /// Concurrent run slots; 0 = worker-pool width at server start.
  size_t max_running = 0;

  /// Reads SCALEIN_SLA_SESSION_BUDGET, SCALEIN_SLA_SERVER_BUDGET,
  /// SCALEIN_SLA_QUERY_DEADLINE_MS, SCALEIN_SLA_ROW_CAP,
  /// SCALEIN_SLA_DEGRADE (0 disables), SCALEIN_SLA_DEGRADE_FLOOR,
  /// SCALEIN_SLA_QUEUE_CAP, SCALEIN_SLA_QUEUE_CLASS_CAP,
  /// SCALEIN_SLA_QUEUE_TIMEOUT_MS, SCALEIN_SLA_MAX_RUNNING over the
  /// defaults above; unset/garbage variables keep the default.
  static SlaConfig FromEnv();

  std::string ToString() const;
};

/// Everything the admission decision may depend on — captured explicitly so
/// the decision is a pure function and therefore byte-identical across
/// thread counts for a fixed arrival script (the determinism contract the
/// serve tests pin down).
struct AdmissionInput {
  double static_bound = -1.0;    ///< Theorem 4.2 bound; < 0 = none derived
  uint64_t budget_remaining = 0; ///< session envelope units still unreserved
  bool budget_unlimited = false; ///< envelope has no fetch budget armed
  size_t running = 0;            ///< queries currently holding run slots
  size_t queued_total = 0;       ///< bounded-FIFO occupancy, all classes
  size_t queued_in_class = 0;    ///< occupancy of this query's BoundClass
  bool draining = false;         ///< server is shutting down
};

/// The structured outcome: action, the bound that justified it, the
/// sub-budget an admitted/degraded run must execute under, and a
/// deterministic retry-after hint for rejections.
struct AdmissionDecision {
  AdmitAction action = AdmitAction::kReject;
  RejectReason reject = RejectReason::kNone;
  double static_bound = -1.0;
  /// Fetch lease for admit (= ceil(bound)) or degrade (= remaining budget);
  /// 0 when the envelope is unlimited (run unbudgeted) or on reject.
  uint64_t sub_budget = 0;
  /// Rejection hint: how long the client should wait before retrying.
  /// 0 = retrying will not help (e.g. the bound exceeds the whole lease).
  uint64_t retry_after_ms = 0;
  std::string reason;  ///< deterministic human-readable justification

  /// "admit bound=50 lease=50" / "reject(budget) bound=2500 remaining=100
  /// retry-after=100ms: ..." — no wall-clock content, so decision logs are
  /// byte-comparable across runs and thread counts.
  std::string ToString() const;
};

/// Derives the admit/queue/degrade/reject decision. Pure and allocation-light;
/// the server calls it under its session mutex so queue/run-slot state is
/// consistent, but nothing here reads a clock or global state.
AdmissionDecision DecideAdmission(const AdmissionInput& in,
                                  const SlaConfig& config);

}  // namespace scalein::serve

#endif  // SCALEIN_SERVE_ADMISSION_H_
