#include "serve/session.h"

namespace scalein::serve {

SessionEnvelope::SessionEnvelope(std::string id, uint64_t session_fp,
                                 uint64_t lease, exec::SharedLedger* ledger)
    : id_(std::move(id)), session_fp_(session_fp), ledger_(ledger) {
  if (lease == 0) {
    unlimited_ = true;
    return;
  }
  if (ledger_ != nullptr && !ledger_->unlimited()) {
    // Carve the lease out of the server-wide capacity; a late session gets
    // whatever is left (possibly zero — its queries then all shed at
    // admission, which is the intended overload behavior).
    lease_ = ledger_->Acquire(lease);
  } else {
    lease_ = lease;
  }
  remaining_ = lease_;
}

SessionEnvelope::~SessionEnvelope() {
  if (unlimited_) return;
  // Return the part of the lease this session never spent; what in-flight
  // reservations hold comes back through their Refund at completion, but a
  // preempted session's reservations die with it, so return those too.
  if (ledger_ != nullptr && !ledger_->unlimited()) {
    ledger_->Release(remaining_ + reserved_inflight_);
  }
}

bool SessionEnvelope::Reserve(uint64_t n) {
  if (unlimited_) return true;
  if (n > remaining_) return false;
  remaining_ -= n;
  reserved_inflight_ += n;
  return true;
}

void SessionEnvelope::Refund(uint64_t reserved, uint64_t spent) {
  if (unlimited_) return;
  const uint64_t held = reserved < reserved_inflight_ ? reserved
                                                      : reserved_inflight_;
  reserved_inflight_ -= held;
  const uint64_t unspent = spent < held ? held - spent : 0;
  remaining_ += unspent;
}

exec::GovernorLimits SessionEnvelope::LimitsFor(uint64_t sub_budget,
                                                const SlaConfig& config) const {
  exec::GovernorLimits limits;
  limits.fetch_budget = sub_budget;
  limits.deadline_ms = config.query_deadline_ms;
  limits.output_row_cap = config.output_row_cap;
  limits.has_cancel = true;
  limits.cancel = cancel_;
  return limits;
}

}  // namespace scalein::serve
