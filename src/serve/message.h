#ifndef SCALEIN_SERVE_MESSAGE_H_
#define SCALEIN_SERVE_MESSAGE_H_

#include <string>
#include <string_view>

namespace scalein::serve {

/// Wire protocol of the serve port (serve/port.h). Requests travel client →
/// server as newline-terminated text lines (exactly the Server::HandleLine
/// grammar). Responses travel server → client as length-prefixed frames:
///
///   (+|-)<decimal-length>\n<length payload bytes>
///
/// '+' prefixes a successful response body, '-' an error message (the
/// Status text of a refused protocol line — admission rejects are *not*
/// errors; they arrive as '+' frames whose body carries the structured
/// reject verdict and retry-after hint). Length-prefixing keeps multi-line
/// response bodies (answer sets, stats output) unambiguous on a stream.
std::string EncodeFrame(bool ok, std::string_view payload);

/// Incremental frame parser for the client side: Feed() arbitrary received
/// chunks, then drain complete frames with Next(). Malformed input (no
/// leading +/-, non-digit length) surfaces as an error frame so a confused
/// peer fails loudly instead of stalling.
class FrameDecoder {
 public:
  void Feed(std::string_view bytes);

  /// Pops the next complete frame into (*ok, *payload); returns false when
  /// more bytes are needed.
  bool Next(bool* ok, std::string* payload);

 private:
  std::string buf_;
  bool corrupt_ = false;
};

}  // namespace scalein::serve

#endif  // SCALEIN_SERVE_MESSAGE_H_
