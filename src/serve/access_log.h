#ifndef SCALEIN_SERVE_ACCESS_LOG_H_
#define SCALEIN_SERVE_ACCESS_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "serve/admission.h"
#include "util/status.h"

namespace scalein::serve {

/// One served request's lifecycle record — the structured access-log line.
/// Everything a capacity review needs to join a request's admission promise
/// (the static Theorem 4.2 bound it was admitted under) against what it
/// actually did (fetches, latency split by phase, bytes shipped). The
/// `query_id` is the same RenderQueryId stamped on the sealed certificate,
/// trace spans, and flight events, so one grep correlates all four.
struct AccessLogRecord {
  std::string query_id;    ///< RenderQueryId of the serving evaluation
  std::string client_tag;  ///< caller-supplied trace tag; empty = untagged
  std::string session_id;
  BoundClass bound_class = BoundClass::kHuge;
  AdmitAction action = AdmitAction::kReject;
  RejectReason reject = RejectReason::kNone;  ///< kNone unless rejected
  double static_bound = -1.0;  ///< Theorem 4.2 bound; < 0 = none derived
  uint64_t lease = 0;          ///< fetch sub-budget the run executed under
  uint64_t fetches = 0;        ///< base tuples actually read
  uint64_t answers = 0;
  double queue_wait_ms = 0.0;  ///< time parked in the bounded FIFO
  double exec_ms = 0.0;        ///< evaluation proper (EvalForServe)
  double e2e_ms = 0.0;         ///< arrival to response-ready
  uint64_t bytes_out = 0;      ///< response bytes handed back to the client
  bool tripped = false;        ///< governor stopped the run
  std::string trip_reason;
  bool degraded = false;       ///< ran under a reduced sub-budget
};

/// Deterministic JSONL rendering with stable field order; optional fields
/// (client_tag, reject, static_bound, trip) are omitted when unset so
/// untagged/clean records stay compact.
std::string AccessLogRecordJson(const AccessLogRecord& rec);

/// Structured access log: one AccessLogRecord JSONL line per served request,
/// written to SCALEIN_ACCESS_LOG_PATH with the same size-based rotation
/// contract as the certificate journal (`path` → `path.1` → `path.2`,
/// oldest dropped). Chaos sites "access_log_append"/"access_log_rotate"
/// mirror the journal's; an append failure is surfaced as a Status the
/// server turns into a warning, never a failed request.
class AccessLog {
 public:
  static constexpr uint64_t kDefaultMaxBytes = 1 << 20;

  explicit AccessLog(std::string path,
                     uint64_t max_bytes = kDefaultMaxBytes);
  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  const std::string& path() const { return file_.path(); }
  uint64_t max_bytes() const { return file_.max_bytes(); }

  Status Append(const AccessLogRecord& rec);

  uint64_t appended() const { return file_.appended(); }
  uint64_t rotations() const { return file_.rotations(); }

 private:
  obs::RotatingJsonlFile file_;
};

/// What a LoadAccessLogRecords pass found — malformed lines are counted and
/// skipped, never fatal, matching the journal loader's tolerance.
struct AccessLogLoadReport {
  size_t files = 0;
  size_t records = 0;
  size_t malformed = 0;
  std::vector<std::string> errors;
};

/// Replays every surviving generation oldest-first (`path.2`, `path.1`,
/// `path`), so record order equals append order. A missing file is an empty
/// log, not an error.
Result<std::vector<AccessLogRecord>> LoadAccessLogRecords(
    const std::string& path, AccessLogLoadReport* report = nullptr);

/// Name→enum parsers for the log's stable strings; return false on an
/// unknown name (the loader counts the line malformed).
bool AdmitActionFromName(const std::string& name, AdmitAction* out);
bool RejectReasonFromName(const std::string& name, RejectReason* out);
bool BoundClassFromName(const std::string& name, BoundClass* out);

}  // namespace scalein::serve

#endif  // SCALEIN_SERVE_ACCESS_LOG_H_
