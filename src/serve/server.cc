#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "par/worker_pool.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace scalein::serve {

namespace {

/// Stable per-session fingerprint: the process/session hash mixed with the
/// client session id, so two sessions' QueryIds never collide and a run with
/// SCALEIN_SESSION_ID set is fully reproducible.
uint64_t ServeSessionFingerprint(const std::string& sid) {
  return HashCombine(obs::SessionFingerprint(),
                     Fnv1a64(sid.data(), sid.size()));
}

/// Client trace tags are identifiers, not free text: they land in log lines,
/// metrics joins, and response echoes, so the grammar is deliberately tight.
bool ValidTraceTag(std::string_view tag) {
  if (tag.empty() || tag.size() > 64) return false;
  for (char c : tag) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Refusals split into overload sheds (retrying later can succeed) and
/// contract rejections (the query itself cannot be served under the SLA);
/// the per-class tallies and serve.shed.<class> counters keep them apart.
bool IsShedReason(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull:
    case RejectReason::kQueueClassFull:
    case RejectReason::kQueueTimeout:
    case RejectReason::kDraining:
      return true;
    case RejectReason::kNone:
    case RejectReason::kNoStaticBound:
    case RejectReason::kBudgetExhausted:
      return false;
  }
  return false;
}

/// Elapsed milliseconds between two monotonic stamps; 0 when the phase
/// never happened (either stamp unset) or the clock did not advance.
double PhaseMs(uint64_t start_ns, uint64_t end_ns) {
  if (start_ns == 0 || end_ns <= start_ns) return 0.0;
  return static_cast<double>(end_ns - start_ns) / 1e6;
}

}  // namespace

Server::Server(Shell* shell, Options options)
    : shell_(shell), options_(std::move(options)) {
  metrics_ = shell_->mutable_metrics();
}

Server::~Server() { Drain(); }

Status Server::Start() {
  SI_RETURN_IF_ERROR(shell_->PrepareServe());
  max_running_ = options_.sla.max_running != 0
                     ? options_.sla.max_running
                     : par::WorkerPool::Global().threads();
  if (max_running_ == 0) max_running_ = 1;
  if (options_.sla.server_fetch_capacity > 0) {
    // lanes=0: the ledger's capacity is exactly the SLA figure — session
    // leases are reservations, not charge streams, so no overdraft slack.
    ledger_.Init(options_.sla.server_fetch_capacity, /*lanes=*/0);
  }
  // Structured access log: Options wins; otherwise the same env-var pattern
  // as the shell's SCALEIN_JOURNAL_PATH.
  std::string log_path = options_.access_log_path;
  uint64_t log_max_bytes = options_.access_log_max_bytes;
  if (log_path.empty()) {
    if (const char* path = std::getenv("SCALEIN_ACCESS_LOG_PATH");
        path != nullptr && path[0] != '\0') {
      log_path = path;
    }
    if (const char* mb = std::getenv("SCALEIN_ACCESS_LOG_MAX_BYTES");
        mb != nullptr && mb[0] != '\0') {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(mb, &end, 10);
      if (end != nullptr && *end == '\0' && parsed > 0) {
        log_max_bytes = parsed;
      }
    }
  }
  if (!log_path.empty()) {
    access_log_ = std::make_unique<AccessLog>(std::move(log_path),
                                              log_max_bytes);
  }
  // Queue-depth gauges exist (at zero) from the first scrape, not from the
  // first enqueue: scrapers key on series presence, not just values.
  metrics_->GetGauge("serve.queue_depth").Set(0);
  for (size_t cls = 0; cls < kBoundClasses; ++cls) {
    metrics_
        ->GetGauge(std::string("serve.queue_depth.") +
                   BoundClassName(static_cast<BoundClass>(cls)))
        .Set(0);
  }
  started_ = true;
  return Status::OK();
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

size_t Server::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

size_t Server::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

Result<std::string> Server::OpenSession(const std::string& sid,
                                        const std::string& trace_tag) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_) return Status::FailedPrecondition("server not started");
  if (draining_) return Status::FailedPrecondition("server is draining");
  if (sessions_.count(sid) != 0) {
    return Status::AlreadyExists("session '" + sid + "' already open");
  }
  auto env = std::make_shared<SessionEnvelope>(
      sid, ServeSessionFingerprint(sid), options_.sla.session_fetch_budget,
      options_.sla.server_fetch_capacity > 0 ? &ledger_ : nullptr);
  env->set_trace_tag(trace_tag);
  std::string out;
  if (env->unlimited()) {
    out = StrFormat("session %s open budget=unlimited", sid.c_str());
  } else {
    out = StrFormat("session %s open budget=%llu", sid.c_str(),
                    static_cast<unsigned long long>(env->lease()));
  }
  // Echo the tag so clients can confirm what their artifacts are stamped
  // with; untagged sessions keep their exact historical bytes.
  if (!trace_tag.empty()) out += " tag=" + trace_tag;
  out += "\n";
  sessions_.emplace(sid, std::move(env));
  metrics_->GetGauge("serve.sessions")
      .Set(static_cast<int64_t>(sessions_.size()));
  return out;
}

Result<std::string> Server::CloseSession(const std::string& sid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(sid);
  if (it == sessions_.end()) {
    return Status::NotFound("no session '" + sid + "'");
  }
  // Preempt before erasing: an in-flight evaluation holds a shared_ptr to
  // the envelope and observes the cancel at its next governor checkpoint.
  it->second->Preempt();
  sessions_.erase(it);
  metrics_->GetGauge("serve.sessions")
      .Set(static_cast<int64_t>(sessions_.size()));
  cv_.notify_all();
  return StrFormat("session %s closed\n", sid.c_str());
}

void Server::CountDecision(const AdmissionDecision& decision) {
  metrics_->GetCounter(std::string("serve.") +
                       AdmitActionName(decision.action))
      .Increment();
  if (decision.action == AdmitAction::kReject) {
    metrics_->GetCounter(std::string("serve.rejected.") +
                         RejectReasonName(decision.reject))
        .Increment();
  }
}

std::string Server::RecordRefusal(const ServePlan& plan,
                                  const obs::QueryId& qid,
                                  const AdmissionDecision& decision,
                                  const std::string& client_tag) {
  obs::AccessCertificate cert;
  cert.query_fingerprint = plan.fingerprint;
  cert.query_id = obs::RenderQueryId(qid);
  cert.query_text = plan.query_text;
  cert.static_bound = decision.static_bound;
  // A refusal is a (zero-fetch) trip: the certificate's trip_reason carries
  // the full decision — action, the bound that justified it, and the
  // retry-after hint — inside the sealed payload, so `certify` proves the
  // server refused for the reason it claims.
  cert.tripped = true;
  cert.trip_reason = "admission: " + decision.ToString();
  return shell_->RecordServeVerdict(std::move(cert), /*elapsed_ms=*/0.0,
                                    client_tag);
}

std::string Server::EmitLifecycle(const ServePlan& plan,
                                  const obs::QueryId& qid,
                                  const std::string& sid,
                                  const std::string& client_tag,
                                  const AdmissionDecision& decision,
                                  const ServeEvalOutcome* outcome,
                                  const PhaseTiming& t, size_t bytes_out) {
  const BoundClass cls = ClassifyBound(decision.static_bound);
  const std::string cls_name = BoundClassName(cls);
  const double queue_wait_ms = PhaseMs(t.queue_enter_ns, t.queue_exit_ns);
  const double exec_ms = PhaseMs(t.exec_start_ns, t.exec_done_ns);
  const double e2e_ms = PhaseMs(t.arrive_ns, t.done_ns);

  // One terminal tally per request — the intermediate kQueue decision is
  // *not* terminal, so a queued-then-admitted request counts once as admit.
  const bool shed =
      decision.action == AdmitAction::kReject && IsShedReason(decision.reject);
  ClassTally& tally = class_tallies_[static_cast<size_t>(cls)];
  ++tally.total;
  switch (decision.action) {
    case AdmitAction::kAdmit:
      ++tally.admitted;
      break;
    case AdmitAction::kDegrade:
      ++tally.degraded;
      break;
    case AdmitAction::kReject:
      if (shed) {
        ++tally.shed;
      } else {
        ++tally.rejected;
      }
      break;
    case AdmitAction::kQueue:
      break;  // unreachable: queue resolves to a terminal action above
  }

  // Per-class SLO histograms — the series the scrape endpoint exposes as
  // serve_queue_wait_ms_<class>_bucket etc.
  metrics_
      ->GetHistogram("serve.queue_wait_ms." + cls_name,
                     obs::DefaultLatencyBucketsMs())
      .Observe(queue_wait_ms);
  metrics_
      ->GetHistogram("serve.exec_ms." + cls_name,
                     obs::DefaultLatencyBucketsMs())
      .Observe(exec_ms);
  metrics_
      ->GetHistogram("serve.e2e_ms." + cls_name,
                     obs::DefaultLatencyBucketsMs())
      .Observe(e2e_ms);
  if (shed) metrics_->GetCounter("serve.shed." + cls_name).Increment();

  std::string warnings;
  if (access_log_ != nullptr) {
    AccessLogRecord rec;
    rec.query_id = obs::RenderQueryId(qid);
    rec.client_tag = client_tag;
    rec.session_id = sid;
    rec.bound_class = cls;
    rec.action = decision.action;
    rec.reject = decision.action == AdmitAction::kReject ? decision.reject
                                                         : RejectReason::kNone;
    rec.static_bound = decision.static_bound;
    rec.lease = decision.sub_budget;
    if (outcome != nullptr) {
      rec.fetches = outcome->fetched;
      rec.answers = outcome->answers;
      rec.tripped = !outcome->complete;
      if (!outcome->complete) rec.trip_reason = outcome->trip.ToString();
    }
    rec.queue_wait_ms = queue_wait_ms;
    rec.exec_ms = exec_ms;
    rec.e2e_ms = e2e_ms;
    rec.bytes_out = bytes_out;
    rec.degraded = decision.action == AdmitAction::kDegrade;
    if (Status s = access_log_->Append(rec); !s.ok()) {
      warnings += "warning: access log append failed: " + s.message() + "\n";
    }
  }

  if (obs::FlightRecorderEnabled()) {
    // Stamp the event with this request's QueryId; Submit runs on the
    // connection's thread, outside EvalForServe's correlation scope.
    obs::ScopedQueryCorrelation correlate(qid);
    obs::RecordFlightNums(
        obs::EventKind::kServePhase, AdmitActionName(decision.action),
        {{"queue_wait_ms", queue_wait_ms},
         {"exec_ms", exec_ms},
         {"e2e_ms", e2e_ms},
         {"bytes_out", static_cast<double>(bytes_out)}});
  }

  // Retroactive phase spans: the timeline was stamped as the request moved,
  // so spans can be emitted after the fact without any scoped objects on
  // the hot path. Nothing is built while no tracer is installed.
  if (obs::Tracer* tracer = obs::Tracer::Global(); tracer != nullptr) {
    const std::string qid_arg = "\"" + obs::RenderQueryId(qid) + "\"";
    auto span = [&](const char* name, uint64_t start_ns, uint64_t end_ns) {
      if (start_ns == 0 || end_ns <= start_ns) return;
      obs::TraceEvent event;
      event.name = name;
      event.category = "serve";
      event.start_ns = start_ns;
      event.duration_ns = end_ns - start_ns;
      event.args.emplace_back("query_id", qid_arg);
      if (!client_tag.empty()) {
        event.args.emplace_back("client_tag",
                                "\"" + obs::JsonEscape(client_tag) + "\"");
      }
      tracer->Record(std::move(event));
    };
    span("serve.parse", t.arrive_ns, t.parse_done_ns);
    span("serve.admission", t.parse_done_ns, t.decided_ns);
    span("serve.queue_wait", t.queue_enter_ns, t.queue_exit_ns);
    span("serve.exec", t.exec_start_ns, t.exec_done_ns);
    span("serve.serialize", t.exec_done_ns, t.done_ns);
    span("serve.request", t.arrive_ns, t.done_ns);
  }
  (void)plan;
  return warnings;
}

std::string Server::RenderClasses() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const ClassTally& tally : class_tallies_) total += tally.total;
  std::string out = StrFormat("classes: %llu request(s)\n",
                              static_cast<unsigned long long>(total));
  // All four classes always, zero or not, so the rendering is positional
  // and scripts/serve_report.py can reproduce it byte-for-byte. No
  // wall-clock content: tallies are deterministic for a fixed arrival
  // script (modulo queue-timeout races, which scripted mode pins down).
  for (size_t i = 0; i < kBoundClasses; ++i) {
    const ClassTally& c = class_tallies_[i];
    const double shed_rate =
        c.total > 0 ? static_cast<double>(c.shed) /
                          static_cast<double>(c.total)
                    : 0.0;
    out += StrFormat(
        "  %s n=%llu admitted=%llu degraded=%llu rejected=%llu shed=%llu "
        "shed_rate=%.4f\n",
        BoundClassName(static_cast<BoundClass>(i)),
        static_cast<unsigned long long>(c.total),
        static_cast<unsigned long long>(c.admitted),
        static_cast<unsigned long long>(c.degraded),
        static_cast<unsigned long long>(c.rejected),
        static_cast<unsigned long long>(c.shed), shed_rate);
  }
  return out;
}

Result<std::string> Server::Submit(const std::string& sid,
                                   std::string_view rest) {
  SI_RETURN_IF_ERROR(SCALEIN_FAILPOINT("serve_admit"));
  PhaseTiming t;
  t.arrive_ns = obs::MonotonicNowNs();

  // Per-request trace tag: "eval @tag var=value,... <query>" overrides the
  // session tag for this one request. Stripped before planning, so the
  // query text and its fingerprint are tag-independent.
  std::string request_tag;
  bool request_tagged = false;
  if (!rest.empty() && rest.front() == '@') {
    const size_t sp = rest.find(' ');
    std::string_view tag =
        rest.substr(1, sp == std::string_view::npos ? rest.size() - 1
                                                    : sp - 1);
    if (!ValidTraceTag(tag)) {
      return Status::InvalidArgument(
          "invalid trace tag '@" + std::string(tag) +
          "' (want 1-64 chars of [A-Za-z0-9._-])");
    }
    request_tag = std::string(tag);
    request_tagged = true;
    rest = sp == std::string_view::npos
               ? std::string_view()
               : StripWhitespace(rest.substr(sp + 1));
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (!started_) return Status::FailedPrecondition("server not started");
  auto it = sessions_.find(sid);
  if (it == sessions_.end()) {
    return Status::FailedPrecondition("no session '" + sid +
                                      "' (send hello first)");
  }
  std::shared_ptr<SessionEnvelope> env = it->second;
  const std::string client_tag =
      request_tagged ? request_tag : env->trace_tag();
  // Echoed on the response's decision line so a client can confirm what
  // the request's artifacts are stamped with; empty tag echoes nothing and
  // keeps untagged responses byte-identical to the historical format.
  const std::string tag_echo =
      client_tag.empty() ? std::string() : " tag=" + client_tag;

  // Pre-execution facts: parse + memoized §4 analysis + the static bound
  // for this parameter set. Parse/analysis errors are protocol errors, not
  // admission verdicts.
  SI_ASSIGN_OR_RETURN(ServePlan plan, shell_->PlanForServe(rest));
  t.parse_done_ns = obs::MonotonicNowNs();
  const obs::QueryId qid = env->NextQueryId();

  AdmissionInput in;
  in.static_bound = plan.static_bound;
  in.budget_remaining = env->remaining();
  in.budget_unlimited = env->unlimited();
  in.running = EffectiveRunning();
  in.queued_total = queue_.size();
  in.queued_in_class =
      queued_by_class_[static_cast<size_t>(ClassifyBound(plan.static_bound))];
  in.draining = draining_;
  AdmissionDecision decision = DecideAdmission(in, options_.sla);
  t.decided_ns = obs::MonotonicNowNs();
  metrics_
      ->GetHistogram("serve.admission_latency_ms",
                     obs::DefaultLatencyBucketsMs())
      .Observe(static_cast<double>(t.decided_ns - t.arrive_ns) / 1e6);
  CountDecision(decision);

  if (decision.action == AdmitAction::kQueue) {
    // Bounded FIFO wait: hold this caller until it reaches the queue head
    // and a run slot frees, the queue timeout lapses, or the server drains.
    const size_t cls = static_cast<size_t>(ClassifyBound(plan.static_bound));
    QueueTicket ticket{next_ticket_++, static_cast<BoundClass>(cls)};
    queue_.push_back(ticket);
    ++queued_by_class_[cls];
    metrics_->GetGauge("serve.queue_depth")
        .Set(static_cast<int64_t>(queue_.size()));
    metrics_
        ->GetGauge(std::string("serve.queue_depth.") +
                   BoundClassName(ticket.cls))
        .Set(static_cast<int64_t>(queued_by_class_[cls]));
    t.queue_enter_ns = obs::MonotonicNowNs();
    const bool admitted = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.sla.queue_timeout_ms), [&] {
          return draining_ || (!queue_.empty() &&
                               queue_.front().id == ticket.id &&
                               EffectiveRunning() < max_running_);
        });
    t.queue_exit_ns = obs::MonotonicNowNs();
    // Leave the queue whatever happened (on admit we were at the front).
    for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
      if (qit->id == ticket.id) {
        queue_.erase(qit);
        break;
      }
    }
    --queued_by_class_[cls];
    metrics_->GetGauge("serve.queue_depth")
        .Set(static_cast<int64_t>(queue_.size()));
    metrics_
        ->GetGauge(std::string("serve.queue_depth.") +
                   BoundClassName(ticket.cls))
        .Set(static_cast<int64_t>(queued_by_class_[cls]));
    cv_.notify_all();  // the next ticket may now be at the front
    if (draining_) {
      decision.action = AdmitAction::kReject;
      decision.reject = RejectReason::kDraining;
      decision.sub_budget = 0;
      decision.retry_after_ms = 0;
      decision.reason = "server began draining while queued";
    } else if (!admitted) {
      decision.action = AdmitAction::kReject;
      decision.reject = RejectReason::kQueueTimeout;
      decision.sub_budget = 0;
      decision.retry_after_ms = options_.sla.queue_timeout_ms;
      decision.reason = StrFormat(
          "no run slot freed within %llums",
          static_cast<unsigned long long>(options_.sla.queue_timeout_ms));
    } else {
      // A slot is ours; the envelope may have changed while we waited, so
      // re-derive admit/degrade/reject against the fresh remaining budget.
      AdmissionInput again = in;
      again.budget_remaining = env->remaining();
      again.running = 0;
      again.queued_total = 0;
      again.queued_in_class = 0;
      decision = DecideAdmission(again, options_.sla);
    }
    CountDecision(decision);
  }

  if (decision.action == AdmitAction::kReject) {
    std::string warnings = RecordRefusal(plan, qid, decision, client_tag);
    std::string response =
        StrFormat("q%llu ", static_cast<unsigned long long>(qid.seq)) +
        decision.ToString() + tag_echo + "\n" + warnings;
    t.done_ns = obs::MonotonicNowNs();
    response += EmitLifecycle(plan, qid, sid, client_tag, decision,
                              /*outcome=*/nullptr, t, response.size());
    return response;
  }

  // Admit or degrade: reserve the sub-budget, run outside the lock, refund
  // the unspent remainder. The admission check makes Reserve infallible
  // here; a false would be an accounting bug, surfaced loudly.
  if (!env->Reserve(decision.sub_budget)) {
    return Status::Internal("envelope reservation failed after admission");
  }
  exec::GovernorLimits limits = env->LimitsFor(decision.sub_budget,
                                               options_.sla);
  ++running_;
  metrics_->GetGauge("serve.running").Set(static_cast<int64_t>(running_));
  lock.unlock();
  t.exec_start_ns = obs::MonotonicNowNs();
  Result<ServeEvalOutcome> evaled =
      shell_->EvalForServe(plan, limits, qid, client_tag);
  t.exec_done_ns = obs::MonotonicNowNs();
  lock.lock();
  --running_;
  metrics_->GetGauge("serve.running").Set(static_cast<int64_t>(running_));
  env->Refund(decision.sub_budget, evaled.ok() ? (*evaled).fetched : 0);
  cv_.notify_all();
  SI_RETURN_IF_ERROR(evaled.status());
  const ServeEvalOutcome& out = *evaled;

  if (out.complete) {
    metrics_->GetCounter("serve.completed").Increment();
  } else if (out.trip.kind == exec::LimitKind::kCancelled) {
    metrics_->GetCounter("serve.preempted").Increment();
  }
  std::string response =
      StrFormat("q%llu ", static_cast<unsigned long long>(qid.seq)) +
      decision.ToString() + tag_echo + "\n" + out.rendered +
      StrFormat("\n(%zu answers, %llu base tuples fetched%s)\n", out.answers,
                static_cast<unsigned long long>(out.fetched),
                out.complete ? "" : ", partial");
  if (!out.complete) response += "tripped: " + out.trip.ToString() + "\n";
  response += out.warnings;
  t.done_ns = obs::MonotonicNowNs();
  response += EmitLifecycle(plan, qid, sid, client_tag, decision, &out, t,
                            response.size());
  return response;
}

Result<std::string> Server::HandleLine(const std::string& sid,
                                       std::string_view line) {
  line = StripWhitespace(line);
  if (line.empty()) return std::string();
  if (line == "hello") return OpenSession(sid);
  if (StartsWith(line, "hello ")) {
    const std::string_view tag = StripWhitespace(line.substr(6));
    if (!ValidTraceTag(tag)) {
      return Status::InvalidArgument(
          "invalid trace tag '" + std::string(tag) +
          "' (want 1-64 chars of [A-Za-z0-9._-])");
    }
    return OpenSession(sid, std::string(tag));
  }
  if (line == "bye") return CloseSession(sid);
  if (line == "classes") return RenderClasses();
  if (line == "drain") {
    Drain();
    return std::string("draining\n");
  }
  if (line == "budget") {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(sid);
    if (it == sessions_.end()) {
      return Status::FailedPrecondition("no session '" + sid + "'");
    }
    const SessionEnvelope& env = *it->second;
    if (env.unlimited()) return std::string("budget unlimited\n");
    return StrFormat(
        "budget remaining=%llu lease=%llu inflight=%llu\n",
        static_cast<unsigned long long>(env.remaining()),
        static_cast<unsigned long long>(env.lease()),
        static_cast<unsigned long long>(env.reserved_inflight()));
  }
  if (StartsWith(line, "#busy")) {
    if (!options_.scripted) {
      return Status::InvalidArgument("#busy is a scripted-mode directive");
    }
    std::string arg(StripWhitespace(line.substr(5)));
    uint64_t n = 0;
    for (char c : arg) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("usage: #busy <n>");
      }
      n = n * 10 + static_cast<uint64_t>(c - '0');
    }
    std::lock_guard<std::mutex> lock(mu_);
    synthetic_running_ = static_cast<size_t>(n);
    return StrFormat("busy %zu\n", synthetic_running_);
  }
  if (StartsWith(line, "eval ")) {
    return Submit(sid, StripWhitespace(line.substr(5)));
  }
  // Read-only observability pass-through: these shell commands only touch
  // thread-safe sinks (metrics, journal ring/store, workload aggregator).
  if (line == "stats" || StartsWith(line, "stats ") || line == "journal" ||
      line == "certify" || StartsWith(line, "certify ") ||
      line == "workload" || StartsWith(line, "workload ")) {
    return shell_->Execute(line);
  }
  return Status::InvalidArgument(
      "unknown serve command (hello | eval | budget | classes | stats | "
      "journal | certify | workload | drain | bye)");
}

void Server::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!draining_) {
    draining_ = true;
    // Preemption primitive: every in-flight evaluation observes its
    // session's cancellation token at the next governor checkpoint; queued
    // callers wake and shed as draining.
    for (auto& [sid, env] : sessions_) env->Preempt();
    cv_.notify_all();
  }
  cv_.wait(lock, [&] { return running_ == 0; });
}

}  // namespace scalein::serve
