#include "serve/server.h"

#include <algorithm>
#include <chrono>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "par/worker_pool.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace scalein::serve {

namespace {

/// Stable per-session fingerprint: the process/session hash mixed with the
/// client session id, so two sessions' QueryIds never collide and a run with
/// SCALEIN_SESSION_ID set is fully reproducible.
uint64_t ServeSessionFingerprint(const std::string& sid) {
  return HashCombine(obs::SessionFingerprint(),
                     Fnv1a64(sid.data(), sid.size()));
}

}  // namespace

Server::Server(Shell* shell, Options options)
    : shell_(shell), options_(std::move(options)) {
  metrics_ = shell_->mutable_metrics();
}

Server::~Server() { Drain(); }

Status Server::Start() {
  SI_RETURN_IF_ERROR(shell_->PrepareServe());
  max_running_ = options_.sla.max_running != 0
                     ? options_.sla.max_running
                     : par::WorkerPool::Global().threads();
  if (max_running_ == 0) max_running_ = 1;
  if (options_.sla.server_fetch_capacity > 0) {
    // lanes=0: the ledger's capacity is exactly the SLA figure — session
    // leases are reservations, not charge streams, so no overdraft slack.
    ledger_.Init(options_.sla.server_fetch_capacity, /*lanes=*/0);
  }
  started_ = true;
  return Status::OK();
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

size_t Server::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

size_t Server::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

Result<std::string> Server::OpenSession(const std::string& sid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_) return Status::FailedPrecondition("server not started");
  if (draining_) return Status::FailedPrecondition("server is draining");
  if (sessions_.count(sid) != 0) {
    return Status::AlreadyExists("session '" + sid + "' already open");
  }
  auto env = std::make_shared<SessionEnvelope>(
      sid, ServeSessionFingerprint(sid), options_.sla.session_fetch_budget,
      options_.sla.server_fetch_capacity > 0 ? &ledger_ : nullptr);
  std::string out;
  if (env->unlimited()) {
    out = StrFormat("session %s open budget=unlimited\n", sid.c_str());
  } else {
    out = StrFormat("session %s open budget=%llu\n", sid.c_str(),
                    static_cast<unsigned long long>(env->lease()));
  }
  sessions_.emplace(sid, std::move(env));
  metrics_->GetGauge("serve.sessions")
      .Set(static_cast<int64_t>(sessions_.size()));
  return out;
}

Result<std::string> Server::CloseSession(const std::string& sid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(sid);
  if (it == sessions_.end()) {
    return Status::NotFound("no session '" + sid + "'");
  }
  // Preempt before erasing: an in-flight evaluation holds a shared_ptr to
  // the envelope and observes the cancel at its next governor checkpoint.
  it->second->Preempt();
  sessions_.erase(it);
  metrics_->GetGauge("serve.sessions")
      .Set(static_cast<int64_t>(sessions_.size()));
  cv_.notify_all();
  return StrFormat("session %s closed\n", sid.c_str());
}

void Server::CountDecision(const AdmissionDecision& decision) {
  metrics_->GetCounter(std::string("serve.") +
                       AdmitActionName(decision.action))
      .Increment();
  if (decision.action == AdmitAction::kReject) {
    metrics_->GetCounter(std::string("serve.rejected.") +
                         RejectReasonName(decision.reject))
        .Increment();
  }
}

std::string Server::RecordRefusal(const ServePlan& plan,
                                  const obs::QueryId& qid,
                                  const AdmissionDecision& decision) {
  obs::AccessCertificate cert;
  cert.query_fingerprint = plan.fingerprint;
  cert.query_id = obs::RenderQueryId(qid);
  cert.query_text = plan.query_text;
  cert.static_bound = decision.static_bound;
  // A refusal is a (zero-fetch) trip: the certificate's trip_reason carries
  // the full decision — action, the bound that justified it, and the
  // retry-after hint — inside the sealed payload, so `certify` proves the
  // server refused for the reason it claims.
  cert.tripped = true;
  cert.trip_reason = "admission: " + decision.ToString();
  return shell_->RecordServeVerdict(std::move(cert), /*elapsed_ms=*/0.0);
}

Result<std::string> Server::Submit(const std::string& sid,
                                   std::string_view rest) {
  SI_RETURN_IF_ERROR(SCALEIN_FAILPOINT("serve_admit"));
  const uint64_t arrive_ns = obs::MonotonicNowNs();
  std::unique_lock<std::mutex> lock(mu_);
  if (!started_) return Status::FailedPrecondition("server not started");
  auto it = sessions_.find(sid);
  if (it == sessions_.end()) {
    return Status::FailedPrecondition("no session '" + sid +
                                      "' (send hello first)");
  }
  std::shared_ptr<SessionEnvelope> env = it->second;

  // Pre-execution facts: parse + memoized §4 analysis + the static bound
  // for this parameter set. Parse/analysis errors are protocol errors, not
  // admission verdicts.
  SI_ASSIGN_OR_RETURN(ServePlan plan, shell_->PlanForServe(rest));
  const obs::QueryId qid = env->NextQueryId();

  AdmissionInput in;
  in.static_bound = plan.static_bound;
  in.budget_remaining = env->remaining();
  in.budget_unlimited = env->unlimited();
  in.running = EffectiveRunning();
  in.queued_total = queue_.size();
  in.queued_in_class =
      queued_by_class_[static_cast<size_t>(ClassifyBound(plan.static_bound))];
  in.draining = draining_;
  AdmissionDecision decision = DecideAdmission(in, options_.sla);
  metrics_
      ->GetHistogram("serve.admission_latency_ms",
                     obs::DefaultLatencyBucketsMs())
      .Observe(static_cast<double>(obs::MonotonicNowNs() - arrive_ns) / 1e6);
  CountDecision(decision);

  if (decision.action == AdmitAction::kQueue) {
    // Bounded FIFO wait: hold this caller until it reaches the queue head
    // and a run slot frees, the queue timeout lapses, or the server drains.
    const size_t cls = static_cast<size_t>(ClassifyBound(plan.static_bound));
    QueueTicket ticket{next_ticket_++, static_cast<BoundClass>(cls)};
    queue_.push_back(ticket);
    ++queued_by_class_[cls];
    metrics_->GetGauge("serve.queue_depth")
        .Set(static_cast<int64_t>(queue_.size()));
    const bool admitted = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.sla.queue_timeout_ms), [&] {
          return draining_ || (!queue_.empty() &&
                               queue_.front().id == ticket.id &&
                               EffectiveRunning() < max_running_);
        });
    // Leave the queue whatever happened (on admit we were at the front).
    for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
      if (qit->id == ticket.id) {
        queue_.erase(qit);
        break;
      }
    }
    --queued_by_class_[cls];
    metrics_->GetGauge("serve.queue_depth")
        .Set(static_cast<int64_t>(queue_.size()));
    cv_.notify_all();  // the next ticket may now be at the front
    if (draining_) {
      decision.action = AdmitAction::kReject;
      decision.reject = RejectReason::kDraining;
      decision.sub_budget = 0;
      decision.retry_after_ms = 0;
      decision.reason = "server began draining while queued";
    } else if (!admitted) {
      decision.action = AdmitAction::kReject;
      decision.reject = RejectReason::kQueueTimeout;
      decision.sub_budget = 0;
      decision.retry_after_ms = options_.sla.queue_timeout_ms;
      decision.reason = StrFormat(
          "no run slot freed within %llums",
          static_cast<unsigned long long>(options_.sla.queue_timeout_ms));
    } else {
      // A slot is ours; the envelope may have changed while we waited, so
      // re-derive admit/degrade/reject against the fresh remaining budget.
      AdmissionInput again = in;
      again.budget_remaining = env->remaining();
      again.running = 0;
      again.queued_total = 0;
      again.queued_in_class = 0;
      decision = DecideAdmission(again, options_.sla);
    }
    CountDecision(decision);
  }

  if (decision.action == AdmitAction::kReject) {
    std::string warnings = RecordRefusal(plan, qid, decision);
    return StrFormat("q%llu ", static_cast<unsigned long long>(qid.seq)) +
           decision.ToString() + "\n" + warnings;
  }

  // Admit or degrade: reserve the sub-budget, run outside the lock, refund
  // the unspent remainder. The admission check makes Reserve infallible
  // here; a false would be an accounting bug, surfaced loudly.
  if (!env->Reserve(decision.sub_budget)) {
    return Status::Internal("envelope reservation failed after admission");
  }
  exec::GovernorLimits limits = env->LimitsFor(decision.sub_budget,
                                               options_.sla);
  ++running_;
  metrics_->GetGauge("serve.running").Set(static_cast<int64_t>(running_));
  lock.unlock();
  Result<ServeEvalOutcome> evaled = shell_->EvalForServe(plan, limits, qid);
  lock.lock();
  --running_;
  metrics_->GetGauge("serve.running").Set(static_cast<int64_t>(running_));
  env->Refund(decision.sub_budget, evaled.ok() ? (*evaled).fetched : 0);
  cv_.notify_all();
  SI_RETURN_IF_ERROR(evaled.status());
  const ServeEvalOutcome& out = *evaled;

  if (out.complete) {
    metrics_->GetCounter("serve.completed").Increment();
  } else if (out.trip.kind == exec::LimitKind::kCancelled) {
    metrics_->GetCounter("serve.preempted").Increment();
  }
  std::string response =
      StrFormat("q%llu ", static_cast<unsigned long long>(qid.seq)) +
      decision.ToString() + "\n" + out.rendered +
      StrFormat("\n(%zu answers, %llu base tuples fetched%s)\n", out.answers,
                static_cast<unsigned long long>(out.fetched),
                out.complete ? "" : ", partial");
  if (!out.complete) response += "tripped: " + out.trip.ToString() + "\n";
  response += out.warnings;
  return response;
}

Result<std::string> Server::HandleLine(const std::string& sid,
                                       std::string_view line) {
  line = StripWhitespace(line);
  if (line.empty()) return std::string();
  if (line == "hello") return OpenSession(sid);
  if (line == "bye") return CloseSession(sid);
  if (line == "drain") {
    Drain();
    return std::string("draining\n");
  }
  if (line == "budget") {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(sid);
    if (it == sessions_.end()) {
      return Status::FailedPrecondition("no session '" + sid + "'");
    }
    const SessionEnvelope& env = *it->second;
    if (env.unlimited()) return std::string("budget unlimited\n");
    return StrFormat(
        "budget remaining=%llu lease=%llu inflight=%llu\n",
        static_cast<unsigned long long>(env.remaining()),
        static_cast<unsigned long long>(env.lease()),
        static_cast<unsigned long long>(env.reserved_inflight()));
  }
  if (StartsWith(line, "#busy")) {
    if (!options_.scripted) {
      return Status::InvalidArgument("#busy is a scripted-mode directive");
    }
    std::string arg(StripWhitespace(line.substr(5)));
    uint64_t n = 0;
    for (char c : arg) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("usage: #busy <n>");
      }
      n = n * 10 + static_cast<uint64_t>(c - '0');
    }
    std::lock_guard<std::mutex> lock(mu_);
    synthetic_running_ = static_cast<size_t>(n);
    return StrFormat("busy %zu\n", synthetic_running_);
  }
  if (StartsWith(line, "eval ")) {
    return Submit(sid, StripWhitespace(line.substr(5)));
  }
  // Read-only observability pass-through: these shell commands only touch
  // thread-safe sinks (metrics, journal ring/store, workload aggregator).
  if (line == "stats" || StartsWith(line, "stats ") || line == "journal" ||
      line == "certify" || StartsWith(line, "certify ") ||
      line == "workload" || StartsWith(line, "workload ")) {
    return shell_->Execute(line);
  }
  return Status::InvalidArgument(
      "unknown serve command (hello | eval | budget | stats | journal | "
      "certify | workload | drain | bye)");
}

void Server::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!draining_) {
    draining_ = true;
    // Preemption primitive: every in-flight evaluation observes its
    // session's cancellation token at the next governor checkpoint; queued
    // callers wake and shed as draining.
    for (auto& [sid, env] : sessions_) env->Preempt();
    cv_.notify_all();
  }
  cv_.wait(lock, [&] { return running_ == 0; });
}

}  // namespace scalein::serve
