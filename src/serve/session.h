#ifndef SCALEIN_SERVE_SESSION_H_
#define SCALEIN_SERVE_SESSION_H_

#include <cstdint>
#include <string>

#include "exec/governor.h"
#include "obs/correlation.h"
#include "serve/admission.h"

namespace scalein::serve {

/// One client session's governor envelope: a fetch-budget lease carved from
/// the server-wide exec::SharedLedger, the cancellation token that is the
/// session's preemption primitive (client disconnect, session timeout,
/// server drain all flip the same flag), and the per-session QueryId
/// sequence. Admitted queries reserve their static Theorem 4.2 bound against
/// the envelope up front and refund whatever they did not actually fetch at
/// completion — so "remaining budget" is always a sound upper bound on what
/// in-flight queries can still touch.
///
/// Not internally synchronized: the server mutates envelopes only under its
/// admission mutex. The cancellation token is the one concurrency-safe
/// member (it is designed to be flipped from any thread).
class SessionEnvelope {
 public:
  /// `lease` of 0 means an unlimited envelope (no fetch budget armed).
  /// When `ledger` is non-null the lease is carved from it: the envelope
  /// gets min(lease, what the ledger still has), so a server-wide capacity
  /// bounds the sum of all session leases.
  SessionEnvelope(std::string id, uint64_t session_fp, uint64_t lease,
                  exec::SharedLedger* ledger);
  ~SessionEnvelope();
  SessionEnvelope(const SessionEnvelope&) = delete;
  SessionEnvelope& operator=(const SessionEnvelope&) = delete;

  const std::string& id() const { return id_; }
  uint64_t session_fingerprint() const { return session_fp_; }

  /// Caller-supplied trace tag from `hello <tag>`; stamped on this session's
  /// access-log lines and journal siblings unless a per-request `@tag`
  /// overrides it. Empty = untagged. Mutated only under the server's mutex.
  const std::string& trace_tag() const { return trace_tag_; }
  void set_trace_tag(std::string tag) { trace_tag_ = std::move(tag); }

  bool unlimited() const { return unlimited_; }
  uint64_t lease() const { return lease_; }
  uint64_t remaining() const { return remaining_; }
  uint64_t reserved_inflight() const { return reserved_inflight_; }

  /// Reserves `n` budget units for a query about to run; false when the
  /// envelope no longer covers them (the admission decision pre-checks, so
  /// a false here means a bug, not a normal shed). Always true when
  /// unlimited.
  bool Reserve(uint64_t n);

  /// Completes a reservation: returns the unspent part (`reserved - spent`,
  /// clamped at zero) to the envelope. A degraded/tripped query that spent
  /// its whole sub-budget refunds nothing.
  void Refund(uint64_t reserved, uint64_t spent);

  /// Mints the next QueryId for this session. seq starts at 1.
  obs::QueryId NextQueryId() { return obs::QueryId{session_fp_, ++seq_}; }
  uint64_t queries() const { return seq_; }

  /// The session's cancellation token; hand copies to GovernorLimits.
  const exec::CancellationToken& cancel_token() const { return cancel_; }
  /// Preemption: every in-flight and future evaluation of this session
  /// observes the flip at its next governor checkpoint.
  void Preempt() { cancel_.Cancel(); }
  bool preempted() const { return cancel_.cancelled(); }

  /// Assembles the per-query governor envelope for an admitted/degraded run:
  /// `sub_budget` as the fetch budget (0 = unbudgeted), the SLA's deadline
  /// and row cap, and this session's cancellation token.
  exec::GovernorLimits LimitsFor(uint64_t sub_budget,
                                 const SlaConfig& config) const;

 private:
  const std::string id_;
  const uint64_t session_fp_;
  exec::SharedLedger* const ledger_;  ///< may be null (no server-wide cap)
  bool unlimited_ = false;
  uint64_t lease_ = 0;       ///< what this envelope was granted at hello
  uint64_t remaining_ = 0;   ///< lease minus live reservations and spend
  uint64_t reserved_inflight_ = 0;
  uint64_t seq_ = 0;
  std::string trace_tag_;
  exec::CancellationToken cancel_;
};

}  // namespace scalein::serve

#endif  // SCALEIN_SERVE_SESSION_H_
