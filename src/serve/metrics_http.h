#ifndef SCALEIN_SERVE_METRICS_HTTP_H_
#define SCALEIN_SERVE_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace scalein::serve {

/// The scrape side door: a deliberately tiny HTTP/1.0-ish responder on a
/// loopback port, enabled by SCALEIN_METRICS_PORT, serving exactly two
/// routes so a Prometheus scraper or load balancer needs no client library:
///
///   GET /metrics  → 200, the registry's text exposition (version 0.0.4)
///   GET /healthz  → 200 "ok" while serving, 503 "draining" once the
///                   server started draining (drain-aware, so an LB stops
///                   routing before the listener goes away)
///
/// Anything else is a 404. One request per connection (`Connection: close`),
/// which keeps the parser to "read until blank line, look at the first
/// line". Same lifecycle and blast-radius contract as serve::Port: one
/// accept thread, one short-lived thread per connection, a `serve_http`
/// failpoint whose injected faults count serve.io_faults and drop only
/// that connection.
class MetricsHttp {
 public:
  struct Options {
    uint16_t port = 0;  ///< 0 = ephemeral (resolved after Listen)
  };

  /// `registry` must outlive the endpoint. `draining` is polled per /healthz
  /// request; pass the server's draining() so health flips with drain.
  MetricsHttp(obs::MetricsRegistry* registry, std::function<bool()> draining,
              Options options);
  ~MetricsHttp();
  MetricsHttp(const MetricsHttp&) = delete;
  MetricsHttp& operator=(const MetricsHttp&) = delete;

  /// Binds 127.0.0.1:<port>, listens, and spawns the accept loop.
  Status Listen();

  /// The bound port (after Listen; ephemeral requests resolve here).
  uint16_t port() const { return port_; }

  /// Closes the listener and every live connection, then joins all
  /// threads. Idempotent; called by the destructor.
  void Shutdown();

  /// Requests answered (any route) over the endpoint's lifetime.
  uint64_t scrapes() const { return scrapes_.load(std::memory_order_relaxed); }

 private:
  void AcceptLoop();
  void Serve(int fd);

  obs::MetricsRegistry* const registry_;
  const std::function<bool()> draining_;
  Options options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> scrapes_{0};
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> conn_threads_;
  std::set<int> live_fds_;
};

}  // namespace scalein::serve

#endif  // SCALEIN_SERVE_METRICS_HTTP_H_
