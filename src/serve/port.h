#ifndef SCALEIN_SERVE_PORT_H_
#define SCALEIN_SERVE_PORT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "util/status.h"

namespace scalein::serve {

/// The TCP front door: accepts connections on a loopback port and pumps
/// each one through Server::HandleLine — one OS thread per connection (the
/// engine's morsel fan-out provides intra-query parallelism; connection
/// threads mostly block on the socket or in the admission queue). Requests
/// are newline-terminated lines, responses are serve/message.h frames.
///
/// Failure injection: `serve_accept`, `serve_read`, and `serve_write`
/// failpoint sites fire per accepted connection / read chunk / written
/// frame. A fired site counts serve.io_faults and closes that connection
/// gracefully — the server and its other sessions are unaffected, which is
/// exactly the blast-radius contract the chaos lane asserts.
class Port {
 public:
  struct Options {
    uint16_t port = 0;  ///< 0 = ephemeral (resolved after Listen)
  };

  /// `server` must be Start()ed and outlive the port.
  Port(Server* server, Options options);
  ~Port();
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  /// Binds 127.0.0.1:<port>, listens, and spawns the accept loop.
  Status Listen();

  /// The bound port (after Listen; ephemeral requests resolve here).
  uint16_t port() const { return port_; }

  /// Closes the listener and every live connection, then joins all
  /// threads. Idempotent; called by the destructor.
  void Shutdown();

  /// Connections accepted over the port's lifetime.
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void Serve(int fd, uint64_t conn_id);
  void CloseAll();

  Server* const server_;
  Options options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> accepted_{0};
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> conn_threads_;
  std::set<int> live_fds_;
};

}  // namespace scalein::serve

#endif  // SCALEIN_SERVE_PORT_H_
