#include "par/worker_pool.h"

#include <cstdlib>

namespace scalein::par {
namespace {

/// -1 outside the pool; 0 on a thread draining its own ParallelFor; >= 1 in a
/// worker. Doubles as the nested-call detector: any lane >= 0 runs nested
/// ParallelFor calls inline.
thread_local int tls_lane = -1;

}  // namespace

int CurrentLane() { return tls_lane; }

std::vector<std::pair<size_t, size_t>> SplitRanges(size_t total,
                                                   size_t max_pieces) {
  std::vector<std::pair<size_t, size_t>> out;
  if (total == 0) return out;
  if (max_pieces == 0) max_pieces = 1;
  const size_t pieces = total < max_pieces ? total : max_pieces;
  out.reserve(pieces);
  const size_t base = total / pieces;
  const size_t extra = total % pieces;  // first `extra` pieces get one more
  size_t begin = 0;
  for (size_t i = 0; i < pieces; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

WorkerPool::WorkerPool(size_t threads) { Resize(threads); }

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t WorkerPool::threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size() + 1;
}

void WorkerPool::Resize(size_t threads) {
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  const size_t lanes = threads == 0 ? 1 : threads;
  workers_.reserve(lanes - 1);
  for (size_t i = 1; i < lanes; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void WorkerPool::DrainJob(size_t n, const std::function<void(size_t)>& fn) {
  for (;;) {
    const size_t idx = job_next_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= n) break;
    fn(idx);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    if (job_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      // Last task: wake the submitter (it may be parked in cv_done_).
      std::lock_guard<std::mutex> lock(mu_);
      cv_done_.notify_all();
    }
  }
}

void WorkerPool::WorkerLoop(size_t lane) {
  tls_lane = static_cast<int>(lane);
  uint64_t seen_generation = 0;
  for (;;) {
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      n = job_n_;
      fn = job_fn_;
    }
    DrainJob(n, *fn);
  }
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  // Sequential fallbacks: a 1-lane pool, a single task, or a nested call from
  // inside a running task (running it inline keeps composition deadlock-free
  // and deterministic).
  bool inline_run = n == 1 || tls_lane >= 0;
  if (!inline_run) {
    std::lock_guard<std::mutex> lock(mu_);
    inline_run = workers_.empty();
  }
  if (inline_run) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_n_ = n;
    job_fn_ = &fn;
    job_next_.store(0, std::memory_order_relaxed);
    job_done_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  cv_work_.notify_all();
  // The submitting thread is lane 0 and participates in the drain.
  tls_lane = 0;
  DrainJob(n, fn);
  tls_lane = -1;
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock,
                [&] { return job_done_.load(std::memory_order_acquire) == n; });
  job_fn_ = nullptr;
}

WorkerPool& WorkerPool::Global() {
  // Leaked (Google-style static storage): worker threads must not be joined
  // during static destruction.
  static WorkerPool& pool = *new WorkerPool(EnvThreads());
  return pool;
}

size_t WorkerPool::EnvThreads() {
  const char* env = std::getenv("SCALEIN_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 1) return 1;
  return parsed > 64 ? 64 : static_cast<size_t>(parsed);
}

}  // namespace scalein::par
