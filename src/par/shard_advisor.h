#ifndef SCALEIN_PAR_SHARD_ADVISOR_H_
#define SCALEIN_PAR_SHARD_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/database.h"

namespace scalein::obs {
class MetricsRegistry;
}

namespace scalein::par {

/// One advisory verdict for a relation: what the advisor saw and what it
/// recommends (or applied).
struct ShardDecision {
  std::string relation;
  size_t rows = 0;            ///< relation cardinality at decision time
  uint64_t probes = 0;        ///< observed probe traffic (metrics feedback)
  size_t current_shards = 0;  ///< 0/1 = unsharded
  size_t advised_shards = 1;  ///< 1 = stay/become unsharded
  bool applied = false;       ///< Advise(apply=true) re-sharded the relation
  const char* reason = "";    ///< "cardinality" or "hot-probes"
};

/// Picks Relation::Shard(k) from relation cardinality and worker-pool width,
/// and re-shards *hot* relations — those with heavy observed probe traffic
/// in a MetricsRegistry — up to the full pool width even when cardinality
/// alone would not justify it. Sharding only changes index layout (probes
/// route to the one shard owning a key's hash), never accounting, so the
/// advisor can re-shard between evaluations without perturbing certificates.
///
/// Not thread-safe, and applying decisions rebuilds dropped sharded indexes
/// on next use: call it from a single control thread (the shell) between
/// evaluations, never while queries run.
class ShardAdvisor {
 public:
  /// Below this cardinality a relation stays unsharded — per-shard index
  /// maps would be too small to be worth the extra routing.
  static constexpr size_t kMinRowsToShard = 2048;
  /// Target rows per shard when cardinality drives the decision.
  static constexpr size_t kTargetRowsPerShard = 1024;
  static constexpr size_t kMaxShards = 64;
  /// Observed probe traffic (fetched-tuple counter) at which a relation
  /// counts as hot and is boosted to the full pool width.
  static constexpr uint64_t kHotProbeThreshold = 1024;

  /// Pure cardinality heuristic: shard count for a relation of `rows`
  /// tuples on a pool of `lanes` lanes (1 = don't shard).
  static size_t AdviseShardCount(size_t rows, size_t lanes);

  /// Scans every relation of `db` and records a decision per relation.
  /// `probe_prefix` + relation name keys the per-relation fetched counters
  /// in `metrics` ("shell.fetched." in the shell); missing counters read as
  /// zero without minting metrics. When `apply` is set, decisions that
  /// change the current shard count call Relation::Shard.
  std::vector<ShardDecision> Advise(Database* db,
                                    const obs::MetricsRegistry& metrics,
                                    const std::string& probe_prefix,
                                    size_t lanes, bool apply);

  const std::vector<ShardDecision>& last_decisions() const { return last_; }
  /// Total re-shards applied over this advisor's lifetime.
  uint64_t reshards() const { return reshards_; }

 private:
  std::vector<ShardDecision> last_;
  uint64_t reshards_ = 0;
};

}  // namespace scalein::par

#endif  // SCALEIN_PAR_SHARD_ADVISOR_H_
