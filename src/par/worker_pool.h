#ifndef SCALEIN_PAR_WORKER_POOL_H_
#define SCALEIN_PAR_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace scalein::par {

/// Fixed pool of worker threads executing index-addressed morsels — the
/// process-wide execution substrate for sharded index probes, per-shard index
/// builds, and `BoundedEvaluator` batch fan-out.
///
/// The scheduling model is deliberately minimal (morsel-driven, work-stealing
/// by atomic counter): one job at a time, `n` tasks addressed by index, every
/// lane — the `threads() - 1` workers plus the *calling* thread — grabs the
/// next unclaimed index until the job drains. `ParallelFor` blocks until all
/// tasks complete, so callers can merge per-task results afterwards without
/// any synchronization of their own; determinism is the caller's job and is
/// achieved by merging per-task slots in task-index order.
///
/// Tasks must not throw (the library reports failures through Status; a task
/// records its Status into its own slot). Nested `ParallelFor` calls — a task
/// that itself fans out — run inline on the calling lane, so composing
/// parallel components cannot deadlock the pool.
class WorkerPool {
 public:
  /// `threads` is the total lane count (callers + workers); the pool spawns
  /// `threads - 1` OS threads. 0 and 1 both mean "sequential".
  explicit WorkerPool(size_t threads = 1);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total execution lanes (>= 1).
  size_t threads() const;

  /// Joins the current workers and spawns `threads - 1` new ones. Must not be
  /// called concurrently with ParallelFor.
  void Resize(size_t threads);

  /// Runs fn(0), ..., fn(n-1), each exactly once, and returns when all have
  /// completed. Task start order is unspecified; with <= 1 lane (or a nested
  /// call from inside a task) the tasks run inline, in index order.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Lifetime totals, for metrics export ("pool.tasks", "pool.parallel_for").
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }
  uint64_t parallel_for_calls() const {
    return parallel_for_calls_.load(std::memory_order_relaxed);
  }

  /// The process-wide pool, lazily sized from SCALEIN_THREADS on first use
  /// (default 1 — fully sequential, the seed behavior). The shell's `threads`
  /// command resizes it at run time.
  static WorkerPool& Global();

  /// Parses SCALEIN_THREADS; 1 when unset/garbage, clamped to [1, 64].
  static size_t EnvThreads();

 private:
  void WorkerLoop(size_t lane);
  /// Drains tasks of the current job generation on the calling thread.
  void DrainJob(size_t n, const std::function<void(size_t)>& fn);

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< workers wait for a new generation
  std::condition_variable cv_done_;   ///< submitter waits for job completion
  std::mutex submit_mu_;              ///< serializes concurrent submitters
  std::vector<std::thread> workers_;
  bool stop_ = false;

  // Current job. Publication (generation bump + fn/n install) happens under
  // mu_; task claiming and completion counting are lock-free atomics.
  uint64_t generation_ = 0;
  size_t job_n_ = 0;
  const std::function<void(size_t)>* job_fn_ = nullptr;
  std::atomic<size_t> job_next_{0};
  std::atomic<size_t> job_done_{0};

  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> parallel_for_calls_{0};
};

/// Lane index of the pool lane running the current thread: 0 for a thread
/// currently submitting/draining a ParallelFor, 1..threads-1 inside a worker,
/// -1 outside any pool activity. Used for per-worker span/metric labels.
int CurrentLane();

/// Splits [0, total) into at most `max_pieces` near-equal contiguous
/// [begin, end) ranges — the morsel boundaries for range-parallel loops.
std::vector<std::pair<size_t, size_t>> SplitRanges(size_t total,
                                                   size_t max_pieces);

}  // namespace scalein::par

#endif  // SCALEIN_PAR_WORKER_POOL_H_
