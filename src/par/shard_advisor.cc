#include "par/shard_advisor.h"

#include <algorithm>

#include "obs/metrics.h"

namespace scalein::par {

size_t ShardAdvisor::AdviseShardCount(size_t rows, size_t lanes) {
  if (lanes <= 1 || rows < kMinRowsToShard) return 1;
  size_t k = std::min(lanes, rows / kTargetRowsPerShard);
  k = std::min(k, kMaxShards);
  return k < 2 ? 1 : k;
}

std::vector<ShardDecision> ShardAdvisor::Advise(
    Database* db, const obs::MetricsRegistry& metrics,
    const std::string& probe_prefix, size_t lanes, bool apply) {
  std::vector<ShardDecision> out;
  out.reserve(db->schema().relations().size());
  for (const RelationSchema& rs : db->schema().relations()) {
    Relation& rel = db->relation(rs.name());
    ShardDecision d;
    d.relation = rs.name();
    d.rows = rel.size();
    d.current_shards = rel.num_shards();
    const obs::Counter* probes =
        metrics.FindCounter(probe_prefix + rs.name());
    d.probes = probes == nullptr ? 0 : probes->value();
    d.advised_shards = AdviseShardCount(d.rows, lanes);
    d.reason = "cardinality";
    // Feedback loop: heavy observed probe traffic boosts a relation to the
    // full pool width, so every lane probes a private shard map.
    if (lanes > 1 && d.probes >= kHotProbeThreshold &&
        d.rows >= kTargetRowsPerShard &&
        d.advised_shards < std::min(lanes, kMaxShards)) {
      d.advised_shards = std::min(lanes, kMaxShards);
      d.reason = "hot-probes";
    }
    const size_t current = d.current_shards <= 1 ? 1 : d.current_shards;
    if (apply && current != d.advised_shards) {
      rel.Shard(d.advised_shards <= 1 ? 0 : d.advised_shards);
      d.applied = true;
      ++reshards_;
    }
    out.push_back(std::move(d));
  }
  last_ = out;
  return out;
}

}  // namespace scalein::par
