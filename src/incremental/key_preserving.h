#ifndef SCALEIN_INCREMENTAL_KEY_PRESERVING_H_
#define SCALEIN_INCREMENTAL_KEY_PRESERVING_H_

#include "core/access_schema.h"
#include "query/cq.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

/// Key-preserving CQs (§5, following [8]): the projection (head) attributes
/// include a key of *every* occurrence of every base relation in the query.
/// The paper notes that key-preserving queries admit CQ maintenance queries
/// under arbitrary updates (Theorem 5.2's assumption).
///
/// Keys are taken from the access schema: every plain statement with N = 1
/// declares its X a key of its relation.
Result<bool> IsKeyPreserving(const Cq& q, const Schema& schema,
                             const AccessSchema& access);

}  // namespace scalein

#endif  // SCALEIN_INCREMENTAL_KEY_PRESERVING_H_
