#ifndef SCALEIN_INCREMENTAL_DELTA_QSI_H_
#define SCALEIN_INCREMENTAL_DELTA_QSI_H_

#include <optional>
#include <vector>

#include "core/qdsi.h"
#include "incremental/delta_rules.h"
#include "query/cq.h"
#include "relational/database.h"

namespace scalein {

struct DeltaQsiOptions {
  /// Candidate insertion tuples defining the bounded update space ∆D (the
  /// checker quantifies over all insertion subsets of size ≤ k). Tuples
  /// already present in D are skipped.
  std::vector<TupleRef> insertion_universe;
  /// Cap on updates examined before answering kUnknown.
  uint64_t max_updates = 100'000;
  QdsiOptions qdsi;
};

struct DeltaQsiDecision {
  Verdict verdict = Verdict::kUnknown;
  /// For kNo: an update whose new answers cannot be derived from Q(D), ∆D
  /// and at most M old tuples.
  std::optional<Update> counterexample;
  uint64_t updates_checked = 0;
  /// Largest minimum number of old tuples needed across all checked updates.
  uint64_t worst_fetch = 0;
};

/// ∆QSI(CQ) for insertion-only updates (§5; the case the paper singles out as
/// admitting CQ maintenance queries computable in PTIME): decides whether for
/// EVERY insertion set ∆D ⊆ universe with |∆D| ≤ k, the delta
/// Q(D ⊕ ∆D) − Q(D) is computable by accessing at most M tuples of the
/// *old* database (tuples of ∆D itself are free — they arrive with the
/// update). Exhaustive over the bounded update space; per update the minimum
/// access cost is computed by the support-cover search with ∆-tuples
/// discounted.
DeltaQsiDecision DecideDeltaQsiCqInsertions(const Cq& q, const Database& d,
                                            uint64_t m, uint64_t k,
                                            const DeltaQsiOptions& options);

}  // namespace scalein

#endif  // SCALEIN_INCREMENTAL_DELTA_QSI_H_
