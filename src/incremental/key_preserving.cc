#include "incremental/key_preserving.h"

namespace scalein {

Result<bool> IsKeyPreserving(const Cq& q, const Schema& schema,
                             const AccessSchema& access) {
  SI_RETURN_IF_ERROR(access.Validate(schema));
  VarSet head_vars = q.HeadVars();

  for (const CqAtom& atom : q.atoms()) {
    const RelationSchema* rs = schema.FindRelation(atom.relation);
    if (rs == nullptr) {
      return Status::NotFound("unknown relation '" + atom.relation + "'");
    }
    if (rs->arity() != atom.args.size()) {
      return Status::InvalidArgument("arity mismatch on '" + atom.relation +
                                     "'");
    }
    // Some declared key of this relation must land entirely on head
    // variables or constants in this occurrence.
    bool covered = false;
    for (const AccessStatement* stmt : access.ForRelation(atom.relation)) {
      if (!stmt->is_plain() || stmt->max_tuples != 1) continue;  // not a key
      bool all_in_head = true;
      for (const std::string& attr : stmt->key_attrs) {
        std::optional<size_t> pos = rs->AttributePosition(attr);
        if (!pos.has_value()) {
          all_in_head = false;
          break;
        }
        const Term& t = atom.args[*pos];
        if (t.is_const()) continue;  // fixed value: trivially preserved
        if (!head_vars.count(t.var())) {
          all_in_head = false;
          break;
        }
      }
      if (all_in_head && !stmt->key_attrs.empty()) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace scalein
