#include "incremental/ucq_maintainer.h"

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace scalein {

Result<UcqMaintainer> UcqMaintainer::Create(const Ucq& q, const Schema& schema,
                                            const AccessSchema& access,
                                            const VarSet& params) {
  UcqMaintainer m(q, params);
  for (const Cq& disjunct : q.disjuncts()) {
    SI_ASSIGN_OR_RETURN(
        IncrementalMaintainer sub,
        IncrementalMaintainer::Create(disjunct, schema, access, params));
    m.maintainers_.push_back(std::move(sub));
  }
  m.disjunct_answers_.resize(m.maintainers_.size());
  return m;
}

bool UcqMaintainer::SupportsInsertions(const std::string& relation) const {
  for (const IncrementalMaintainer& m : maintainers_) {
    if (!m.SupportsInsertions(relation)) return false;
  }
  return true;
}

bool UcqMaintainer::SupportsDeletions() const {
  for (const IncrementalMaintainer& m : maintainers_) {
    if (!m.SupportsDeletions()) return false;
  }
  return true;
}

void UcqMaintainer::set_limits(const exec::GovernorLimits& limits) {
  limits_ = limits;
  for (IncrementalMaintainer& m : maintainers_) m.set_limits(limits);
}

Result<AnswerSet> UcqMaintainer::Initialize(Database* db,
                                            const Binding& params) {
  for (size_t i = 0; i < maintainers_.size(); ++i) {
    SI_ASSIGN_OR_RETURN(disjunct_answers_[i],
                        maintainers_[i].InitialAnswers(db, params));
  }
  initialized_ = true;
  return CurrentAnswers();
}

Result<AnswerSet> UcqMaintainer::Maintain(Database* db, const Update& u,
                                          const Binding& params,
                                          BoundedEvalStats* stats) {
  if (!initialized_) {
    return Status::FailedPrecondition("Initialize must run before Maintain");
  }
  obs::ScopedSpan span(obs::Tracer::Global(), "ucq.maintain", "incremental");
  if (span.enabled()) {
    span.Arg("disjuncts", static_cast<uint64_t>(maintainers_.size()));
  }
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kMaintenanceStep, "ucq.maintain",
        {obs::EventArg("disjuncts",
                       static_cast<uint64_t>(maintainers_.size()))});
  }
  SI_RETURN_IF_ERROR(u.Validate(*db));
  // One pinned deadline shared by every disjunct's phases; the relative
  // envelope is restored afterwards so the next Maintain gets a fresh clock.
  const exec::GovernorLimits pinned = limits_.Pinned();
  for (IncrementalMaintainer& m : maintainers_) m.set_limits(pinned);
  auto restore = [this] {
    for (IncrementalMaintainer& m : maintainers_) m.set_limits(limits_);
  };
  // Phase 1 for every disjunct before the update lands.
  std::vector<AnswerSet> candidates(maintainers_.size());
  {
    obs::ScopedSpan phase(obs::Tracer::Global(), "ucq.collect_candidates",
                          "incremental");
    for (size_t i = 0; i < maintainers_.size(); ++i) {
      Status s = maintainers_[i].CollectDeletionCandidates(db, u, params,
                                                           &candidates[i],
                                                           stats);
      if (!s.ok()) {
        restore();
        return s;
      }
    }
  }
  ApplyUpdate(db, u);
  {
    obs::ScopedSpan phase(obs::Tracer::Global(), "ucq.integrate_insertions",
                          "incremental");
    for (size_t i = 0; i < maintainers_.size(); ++i) {
      Status s = maintainers_[i].IntegrateInsertions(
          db, u, params, &disjunct_answers_[i], stats);
      if (!s.ok()) {
        restore();
        return s;
      }
    }
  }
  {
    obs::ScopedSpan phase(obs::Tracer::Global(), "ucq.recheck_candidates",
                          "incremental");
    for (size_t i = 0; i < maintainers_.size(); ++i) {
      Status s = maintainers_[i].RecheckCandidates(
          db, candidates[i], params, &disjunct_answers_[i], stats);
      if (!s.ok()) {
        restore();
        return s;
      }
    }
  }
  restore();
  return CurrentAnswers();
}

AnswerSet UcqMaintainer::CurrentAnswers() const {
  AnswerSet out;
  for (const AnswerSet& part : disjunct_answers_) {
    out.insert(part.begin(), part.end());
  }
  return out;
}

}  // namespace scalein
